package operon

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"operon/internal/obs"
)

// cancelOnRecord is an obs.Sink that cancels a context the first time a
// span or event with the given name is recorded — a machine-speed-
// independent way to cancel the flow at an exact pipeline point.
type cancelOnRecord struct {
	obs.Nop
	name   string
	cancel context.CancelFunc
	once   sync.Once
}

// Span implements obs.Sink.
func (c *cancelOnRecord) Span(r obs.SpanRecord) {
	if r.Name == c.name {
		c.once.Do(c.cancel)
	}
}

// Event implements obs.Sink.
func (c *cancelOnRecord) Event(r obs.EventRecord) {
	if r.Name == c.name {
		c.once.Do(c.cancel)
	}
}

// checkNoGoroutineLeak polls until the goroutine count returns to the
// pre-test baseline (cancelled runs must drain their worker pools, not
// abandon them); it dumps all stacks on timeout.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d before, %d after cancelled runs\n%s",
				before, runtime.NumGoroutine(), buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// requireFeasibleDegraded asserts the common contract of every degraded
// result: no error, Degraded set with the expected reason, and a routing
// that passes the independent design-rule checker.
func requireFeasibleDegraded(t *testing.T, res *Result, err error, cfg Config, reason StopReason) {
	t.Helper()
	if err != nil {
		t.Fatalf("degraded run errored: %v", err)
	}
	if !res.Degraded {
		t.Fatalf("Degraded not set (stop reason %q)", res.StopReason)
	}
	if res.StopReason != reason {
		t.Fatalf("StopReason = %q, want %q", res.StopReason, reason)
	}
	if res.PowerMW <= 0 {
		t.Fatalf("degraded result has no power: %v", res.PowerMW)
	}
	if len(res.Selection.Choice) != len(res.Nets) {
		t.Fatalf("selection covers %d of %d nets", len(res.Selection.Choice), len(res.Nets))
	}
	if issues := Verify(res, cfg); len(issues) > 0 {
		t.Fatalf("degraded result violates design rules: %v", issues)
	}
}

// TestRunContextExpiredReturnsFloorFast pins the bottom of the degradation
// ladder: a context that is already expired must still yield a feasible
// (all-electrical) routing, in well under 100 ms.
func TestRunContextExpiredReturnsFloorFast(t *testing.T) {
	d := determinismCases(t)[0]
	cfg := DefaultConfig()
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Minute))
	defer cancel()

	start := time.Now()
	res, err := RunContext(ctx, d, cfg)
	elapsed := time.Since(start)
	requireFeasibleDegraded(t, res, err, cfg, StopDeadline)
	if elapsed > 100*time.Millisecond {
		t.Errorf("expired-context run took %s, want < 100ms", elapsed)
	}
	for i, j := range res.Selection.Choice {
		if !res.Nets[i].Cands[j].AllElectrical {
			t.Fatalf("net %d: floor selected a non-electrical candidate", i)
		}
	}
	if len(res.Connections) != 0 {
		t.Errorf("floor result has %d optical connections, want 0", len(res.Connections))
	}
	checkNoGoroutineLeak(t, before)
}

// TestRunContextCancelMidILP cancels the flow deterministically right as
// the candidate stage closes, so the ILP solve starts under a cancelled
// context: it must report TimedOut with a feasible incumbent, the flow
// must run the LR fallback, and the combined result must stay legal.
func TestRunContextCancelMidILP(t *testing.T) {
	d := determinismCases(t)[0]
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := DefaultConfig()
	cfg.Mode = ModeILP
	cfg.Obs = obs.New(&cancelOnRecord{name: "stage/candidates", cancel: cancel})

	res, err := RunContext(ctx, d, cfg)
	requireFeasibleDegraded(t, res, err, cfg, StopCanceled)
	if res.ILP == nil || !res.ILP.TimedOut {
		t.Fatalf("cancelled ILP did not report TimedOut: %+v", res.ILP)
	}
	if res.LR == nil {
		t.Fatal("degraded ILP run did not record the LR fallback")
	}
	if got := cfg.Obs.Counter("flow.degraded").Value(); got < 1 {
		t.Errorf("flow.degraded counter = %d, want >= 1", got)
	}
	if err := cfg.Obs.Close(); err != nil {
		t.Fatal(err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestRunContextCancelMidLR cancels on the first lr/iterate event: the LR
// solver must stop at the next iteration boundary and still hand back a
// repaired, feasible selection.
func TestRunContextCancelMidLR(t *testing.T) {
	d := determinismCases(t)[0]
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := DefaultConfig()
	cfg.Obs = obs.New(&cancelOnRecord{name: "lr/iterate", cancel: cancel})

	res, err := RunContext(ctx, d, cfg)
	requireFeasibleDegraded(t, res, err, cfg, StopCanceled)
	if res.LR == nil || !res.LR.Stopped {
		t.Fatalf("cancelled LR did not report Stopped: %+v", res.LR)
	}
	if res.LR.Iters >= 10 {
		t.Errorf("LR ran all %d iterations despite cancellation", res.LR.Iters)
	}
	checkNoGoroutineLeak(t, before)
}
