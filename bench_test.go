// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (run with `go test -bench=. -benchmem`):
//
//   - BenchmarkTable1/* time the four Table-1 flows (Electrical [14],
//     Optical [4], OPERON-LR per case, OPERON-ILP on a reduced case);
//   - BenchmarkFig3b times the FD-BPM Y-branch cascade simulation (the
//     uncached solver; BenchmarkFig3bCached measures the memoized path);
//   - BenchmarkFig8 times the WDM placement + min-cost-flow assignment;
//   - BenchmarkFig9 times the hotspot-map computation;
//   - BenchmarkLRPricing times the Lagrangian selection stage alone;
//   - BenchmarkILP times the exact selection solve (branch and bound with
//     warm-started revised-simplex relaxations) root-to-proven-optimal;
//   - BenchmarkBI1S times the incremental Batched Iterated 1-Steiner.
//
// cmd/bench runs the same workloads programmatically and emits a
// machine-readable BENCH_<date>.json for the perf trajectory.
package operon_test

import (
	"math/rand"
	"testing"
	"time"

	operon "operon"
	"operon/internal/benchgen"
	"operon/internal/geom"
	"operon/internal/ilp"
	"operon/internal/obs"
	"operon/internal/optics/bpm"
	"operon/internal/selection"
	"operon/internal/signal"
	"operon/internal/steiner"
	"operon/internal/wdm"
)

// design loads a Table-1 benchmark, failing the benchmark on error.
func design(b *testing.B, name string) signal.Design {
	b.Helper()
	spec, err := benchgen.SpecByName(name)
	if err != nil {
		b.Fatal(err)
	}
	d, err := benchgen.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// ilpDesign is a reduced I3-style case on which the branch-and-bound ILP
// finishes quickly enough to benchmark.
func ilpDesign(b *testing.B) signal.Design {
	b.Helper()
	d, err := benchgen.Generate(benchgen.Spec{
		Name: "I3s", DieCM: 4, Groups: 24, BitsPerGroup: 30, BitsJitter: 1,
		MinSinkClusters: 1, MaxSinkClusters: 1, LocalFraction: 0.15,
		LocalSpanCM: 0.15, GlobalSpanCM: 1.9, RegionSpreadCM: 0.02,
		LanePitchCM: 0.2, Seed: 103,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkTable1(b *testing.B) {
	b.Run("Electrical/I2", func(b *testing.B) {
		d := design(b, "I2")
		cfg := operon.DefaultConfig()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := operon.RunElectrical(d, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Optical/I2", func(b *testing.B) {
		d := design(b, "I2")
		cfg := operon.DefaultConfig()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := operon.RunOptical(d, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, name := range []string{"I1", "I2", "I3", "I4", "I5"} {
		b.Run("OperonLR/"+name, func(b *testing.B) {
			d := design(b, name)
			cfg := operon.DefaultConfig()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := operon.Run(d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("OperonILP/I3small", func(b *testing.B) {
		d := ilpDesign(b)
		cfg := operon.DefaultConfig()
		cfg.Mode = operon.ModeILP
		cfg.ILPTimeLimit = 30 * time.Second
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := operon.Run(d, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.ILP.TimedOut {
				b.Fatal("ILP benchmark case timed out; shrink the case")
			}
		}
	})
}

// BenchmarkILP isolates the exact selection solve (branch and bound from
// the root relaxation to proven optimality) on the reduced I3-style case,
// excluding candidate generation. This is the workload the warm-started
// revised simplex is built for.
func BenchmarkILP(b *testing.B) {
	d := ilpDesign(b)
	cfg := operon.DefaultConfig()
	cfg.SkipWDM = true
	res, err := operon.Run(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := selection.NewInstance(res.Nets, cfg.Lib)
	if err != nil {
		b.Fatal(err)
	}
	// One throwaway solve warms the cross-loss caches.
	if _, err := selection.SolveILP(inst, selection.ILPOptions{TimeLimit: 60 * time.Second}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ir, err := selection.SolveILP(inst, selection.ILPOptions{TimeLimit: 60 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if ir.TimedOut || ir.Status != ilp.Optimal {
			b.Fatalf("ILP did not prove optimality (status %v, timedOut %v)", ir.Status, ir.TimedOut)
		}
	}
}

// BenchmarkObsOverhead measures the cost of the observability layer on the
// end-to-end flow: Nil is the production default (Config.Obs == nil, the
// whole instrumentation path reduces to nil checks), Telemetry is the
// operond serving configuration (counters and per-stage latency histograms
// recorded, spans discarded — obs.New(nil)), Nop pays span/event recording
// into a discarding sink, Collector additionally retains everything in
// memory. Nil vs the committed BENCH numbers is the < 2% regression budget;
// Nil vs Telemetry bounds what the serving metrics cost; Nil vs Nop bounds
// what turning tracing on costs.
func BenchmarkObsOverhead(b *testing.B) {
	d := design(b, "I1")
	for _, tc := range []struct {
		name   string
		tracer func() *obs.Tracer // nil = run uninstrumented
	}{
		{"Nil", nil},
		{"Telemetry", func() *obs.Tracer { return obs.New(nil) }},
		{"Nop", func() *obs.Tracer { return obs.New(obs.Nop{}) }},
		{"Collector", func() *obs.Tracer { return obs.New(&obs.Collector{}) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := operon.DefaultConfig()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if tc.tracer != nil {
					cfg.Obs = tc.tracer()
				}
				if _, err := operon.Run(d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig3b(b *testing.B) {
	cfg := bpm.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bpm.SimulateUncached(cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.ArmPowers) != 4 {
			b.Fatal("unexpected arm count")
		}
	}
}

func BenchmarkFig3bCached(b *testing.B) {
	// The memoized path most callers hit: one propagation per process, then
	// cache hits (a deep copy of the small Result).
	cfg := bpm.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bpm.Simulate(cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.ArmPowers) != 4 {
			b.Fatal("unexpected arm count")
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	// Time the §4 WDM pipeline (placement sweep + min-cost max-flow
	// assignment) on the optical connections of an OPERON run on I4, the
	// case with the richest consolidation structure.
	d := design(b, "I4")
	cfg := operon.DefaultConfig()
	cfg.SkipWDM = true
	res, err := operon.Run(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var conns []wdm.Connection
	for i, j := range res.Selection.Choice {
		for _, seg := range res.Nets[i].Cands[j].OpticalSegs {
			conns = append(conns, wdm.Connection{Seg: seg, Bits: res.Nets[i].Bits, Net: i})
		}
	}
	wcfg := wdm.Config{
		Capacity:        cfg.Lib.WDMCapacity,
		MinSpacingCM:    cfg.Lib.CrosstalkMinDistCM,
		MaxAssignDistCM: cfg.Lib.AssignMaxDistCM,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := wdm.Run(conns, wcfg); err != nil {
			b.Fatal(err)
		}
	}
}

// lrInstance builds a selection instance from the I2 candidate sets so the
// pricing stage can be benchmarked in isolation.
func lrInstance(b *testing.B) *selection.Instance {
	b.Helper()
	d := design(b, "I2")
	cfg := operon.DefaultConfig()
	cfg.SkipWDM = true
	res, err := operon.Run(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := selection.NewInstance(res.Nets, cfg.Lib)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the cross-loss cache so worker-count variants compare fairly.
	if _, err := selection.SolveLR(inst, selection.LROptions{}); err != nil {
		b.Fatal(err)
	}
	return inst
}

func BenchmarkLRPricing(b *testing.B) {
	inst := lrInstance(b)
	for _, bench := range []struct {
		name    string
		workers int
	}{{"Workers1", 1}, {"WorkersN", 0}} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				lr, err := selection.SolveLR(inst, selection.LROptions{Workers: bench.workers})
				if err != nil {
					b.Fatal(err)
				}
				if lr.Selection.Violations != 0 {
					b.Fatal("unrepaired violations")
				}
			}
		})
	}
}

func BenchmarkBI1S(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	terms := make([]geom.Point, 24)
	for i := range terms {
		terms[i] = geom.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}
	}
	for _, metric := range []steiner.Metric{steiner.Rectilinear, steiner.Euclidean} {
		b.Run(metric.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr := steiner.BI1S(terms, metric, steiner.BI1SConfig{})
				if err := tr.Validate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig9(b *testing.B) {
	// Time the hotspot-map binning for both layers on the I2 result.
	d := design(b, "I2")
	cfg := operon.DefaultConfig()
	res, err := operon.Run(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := operon.Hotspots(res, d.Die, 24, 48, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
