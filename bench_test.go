// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (run with `go test -bench=. -benchmem`):
//
//   - BenchmarkTable1/* time the four Table-1 flows (Electrical [14],
//     Optical [4], OPERON-LR per case, OPERON-ILP on a reduced case);
//   - BenchmarkFig3b times the FD-BPM Y-branch cascade simulation;
//   - BenchmarkFig8 times the WDM placement + min-cost-flow assignment;
//   - BenchmarkFig9 times the hotspot-map computation.
package operon_test

import (
	"testing"
	"time"

	operon "operon"
	"operon/internal/benchgen"
	"operon/internal/optics/bpm"
	"operon/internal/signal"
	"operon/internal/wdm"
)

// design loads a Table-1 benchmark, failing the benchmark on error.
func design(b *testing.B, name string) signal.Design {
	b.Helper()
	spec, err := benchgen.SpecByName(name)
	if err != nil {
		b.Fatal(err)
	}
	d, err := benchgen.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// ilpDesign is a reduced I3-style case on which the branch-and-bound ILP
// finishes quickly enough to benchmark.
func ilpDesign(b *testing.B) signal.Design {
	b.Helper()
	d, err := benchgen.Generate(benchgen.Spec{
		Name: "I3s", DieCM: 4, Groups: 24, BitsPerGroup: 30, BitsJitter: 1,
		MinSinkClusters: 1, MaxSinkClusters: 1, LocalFraction: 0.15,
		LocalSpanCM: 0.15, GlobalSpanCM: 1.9, RegionSpreadCM: 0.02,
		LanePitchCM: 0.2, Seed: 103,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkTable1(b *testing.B) {
	b.Run("Electrical/I2", func(b *testing.B) {
		d := design(b, "I2")
		cfg := operon.DefaultConfig()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := operon.RunElectrical(d, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Optical/I2", func(b *testing.B) {
		d := design(b, "I2")
		cfg := operon.DefaultConfig()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := operon.RunOptical(d, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, name := range []string{"I1", "I2", "I3", "I4", "I5"} {
		b.Run("OperonLR/"+name, func(b *testing.B) {
			d := design(b, name)
			cfg := operon.DefaultConfig()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := operon.Run(d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("OperonILP/I3small", func(b *testing.B) {
		d := ilpDesign(b)
		cfg := operon.DefaultConfig()
		cfg.Mode = operon.ModeILP
		cfg.ILPTimeLimit = 30 * time.Second
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := operon.Run(d, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.ILP.TimedOut {
				b.Fatal("ILP benchmark case timed out; shrink the case")
			}
		}
	})
}

func BenchmarkFig3b(b *testing.B) {
	cfg := bpm.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bpm.Simulate(cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.ArmPowers) != 4 {
			b.Fatal("unexpected arm count")
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	// Time the §4 WDM pipeline (placement sweep + min-cost max-flow
	// assignment) on the optical connections of an OPERON run on I4, the
	// case with the richest consolidation structure.
	d := design(b, "I4")
	cfg := operon.DefaultConfig()
	cfg.SkipWDM = true
	res, err := operon.Run(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var conns []wdm.Connection
	for i, j := range res.Selection.Choice {
		for _, seg := range res.Nets[i].Cands[j].OpticalSegs {
			conns = append(conns, wdm.Connection{Seg: seg, Bits: res.Nets[i].Bits, Net: i})
		}
	}
	wcfg := wdm.Config{
		Capacity:        cfg.Lib.WDMCapacity,
		MinSpacingCM:    cfg.Lib.CrosstalkMinDistCM,
		MaxAssignDistCM: cfg.Lib.AssignMaxDistCM,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := wdm.Run(conns, wcfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	// Time the hotspot-map binning for both layers on the I2 result.
	d := design(b, "I2")
	cfg := operon.DefaultConfig()
	res, err := operon.Run(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := operon.Hotspots(res, d.Die, 24, 48, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
