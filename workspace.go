package operon

import (
	"operon/internal/codesign"
	"operon/internal/obs"
	"operon/internal/parallel"
	"operon/internal/steiner"
)

// Workspace owns the reusable per-worker solver scratch of the flow: the
// co-design DP buffers, the incremental-Steiner buffers, and the label
// scratch each pool worker uses during candidate generation. A Workspace
// held across runs (RunContextWith) lets steady-state solves approach zero
// amortised allocation; each worker slot keeps its own scratch, so any
// Config.Workers count composes without locks. Results are bit-identical
// with and without a Workspace — scratch reuse only changes allocation
// behaviour.
//
// A Workspace must not be shared by concurrently executing runs: the pool
// hands slot w to worker w, so two overlapping runs would alias scratch.
// Serving layers keep one Workspace per queue slot instead
// (internal/serve), and sticky editing sessions own one for their whole
// lifetime (Session).
type Workspace struct {
	arena *parallel.Arena
}

// NewWorkspace returns an empty workspace; per-worker scratch is created on
// first use and reused afterwards.
func NewWorkspace() *Workspace { return &Workspace{arena: parallel.NewArena()} }

// arenaOf returns the workspace's arena, tolerating a nil receiver (a nil
// Workspace means per-run throwaway scratch).
func (w *Workspace) arenaOf() *parallel.Arena {
	if w == nil {
		return nil
	}
	return w.arena
}

// workerScratch bundles the per-worker package workspaces used by the
// candidate-generation stages.
type workerScratch struct {
	codesign *codesign.Workspace
	steiner  *steiner.Workspace
	labels   []codesign.Label
}

// grabScratch fetches the flow's worker scratch from s, creating it on
// first use. Creations and reuses are counted on t (ws.worker.create /
// ws.worker.reuse), so an instrumented run can report its workspace reuse
// rate as reuse / (create + reuse).
func grabScratch(s *parallel.Scratch, t *obs.Tracer) *workerScratch {
	created := false
	ws := s.Get("operon", func() any {
		created = true
		return &workerScratch{
			codesign: codesign.NewWorkspace(),
			steiner:  steiner.NewWorkspace(),
		}
	}).(*workerScratch)
	if created {
		t.Counter("ws.worker.create").Inc()
	} else {
		t.Counter("ws.worker.reuse").Inc()
	}
	return ws
}

// fillLabels returns a scratch label slice of length n with every entry set
// to v. The slice is only valid until the worker's next fillLabels call;
// codesign copies input labels into any candidate it returns, so handing it
// to Evaluate/Generate is safe.
func (ws *workerScratch) fillLabels(n int, v codesign.Label) []codesign.Label {
	if cap(ws.labels) < n {
		ws.labels = make([]codesign.Label, n)
	}
	ws.labels = ws.labels[:n]
	for i := range ws.labels {
		ws.labels[i] = v
	}
	return ws.labels
}
