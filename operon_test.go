package operon

import (
	"math"
	"testing"
	"time"

	"operon/internal/benchgen"
	"operon/internal/geom"
	"operon/internal/signal"
)

// smallDesign builds a fast mixed local/global design for flow tests.
func smallDesign(t *testing.T) signal.Design {
	t.Helper()
	d, err := benchgen.Generate(benchgen.Spec{
		Name: "small", DieCM: 4, Groups: 24, BitsPerGroup: 8, BitsJitter: 2,
		MinSinkClusters: 1, MaxSinkClusters: 3, LocalFraction: 0.3,
		LocalSpanCM: 0.3, GlobalSpanCM: 2.0, RegionSpreadCM: 0.02, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunLREndToEnd(t *testing.T) {
	d := smallDesign(t)
	res, err := Run(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.PowerMW <= 0 {
		t.Fatalf("power = %v", res.PowerMW)
	}
	if res.Selection.Violations != 0 {
		t.Fatalf("final selection has %d violations", res.Selection.Violations)
	}
	if res.LR == nil || res.ILP != nil {
		t.Error("LR mode should populate LR diagnostics only")
	}
	st := res.Stats()
	if st.HyperNets != len(res.Nets) {
		t.Errorf("stats hyper nets %d != nets %d", st.HyperNets, len(res.Nets))
	}
	if len(res.Connections) > 0 {
		if res.WDMStats.InitialWDMs == 0 {
			t.Error("optical connections but no WDMs placed")
		}
		if res.WDMStats.FinalWDMs > res.WDMStats.InitialWDMs {
			t.Error("assignment increased WDM count")
		}
	}
}

func TestRunILPBeatsOrMatchesLR(t *testing.T) {
	d := smallDesign(t)
	cfg := DefaultConfig()
	cfg.Mode = ModeILP
	cfg.ILPTimeLimit = 30 * time.Second
	ilpRes, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = ModeLR
	lrRes, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ilpRes.ILP == nil {
		t.Fatal("ILP diagnostics missing")
	}
	if !ilpRes.ILP.TimedOut && ilpRes.PowerMW > lrRes.PowerMW+1e-6 {
		t.Errorf("completed ILP %.4f worse than LR %.4f", ilpRes.PowerMW, lrRes.PowerMW)
	}
}

func TestBaselineOrdering(t *testing.T) {
	// The paper's headline shape: electrical >> optical > OPERON.
	d := smallDesign(t)
	cfg := DefaultConfig()
	e, err := RunElectrical(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o, err := RunOptical(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.PowerMW <= o.PowerMW {
		t.Errorf("electrical %.3f not above optical %.3f", e.PowerMW, o.PowerMW)
	}
	if p.PowerMW > o.PowerMW+1e-9 {
		t.Errorf("OPERON %.3f worse than optical-only %.3f", p.PowerMW, o.PowerMW)
	}
	if p.PowerMW > e.PowerMW+1e-9 {
		t.Errorf("OPERON %.3f worse than electrical %.3f", p.PowerMW, e.PowerMW)
	}
	// Ratio ballpark: electrical should cost at least 2x optical on this
	// mixed local/global design.
	if e.PowerMW < 2*o.PowerMW {
		t.Errorf("electrical/optical ratio %.2f below 2", e.PowerMW/o.PowerMW)
	}
}

func TestModeGreedy(t *testing.T) {
	d := smallDesign(t)
	cfg := DefaultConfig()
	cfg.Mode = ModeGreedy
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selection.Violations != 0 {
		t.Fatal("greedy selection illegal")
	}
}

func TestRunDeterministic(t *testing.T) {
	d := smallDesign(t)
	cfg := DefaultConfig()
	a, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.PowerMW-b.PowerMW) > 1e-9 {
		t.Fatalf("nondeterministic power: %v vs %v", a.PowerMW, b.PowerMW)
	}
	if a.WDMStats != b.WDMStats {
		t.Fatalf("nondeterministic WDM stats: %+v vs %+v", a.WDMStats, b.WDMStats)
	}
}

func TestSkipWDM(t *testing.T) {
	d := smallDesign(t)
	cfg := DefaultConfig()
	cfg.SkipWDM = true
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Connections) != 0 || res.WDMStats.InitialWDMs != 0 {
		t.Error("WDM stage ran despite SkipWDM")
	}
}

func TestHotspots(t *testing.T) {
	d := smallDesign(t)
	cfg := DefaultConfig()
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	maps, err := Hotspots(res, d.Die, 16, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Total electrical grid power must match the electrical part of the
	// selection's power.
	var elecP, convP float64
	for i, j := range res.Selection.Choice {
		c := res.Nets[i].Cands[j]
		elecP += cfg.Elec.BusPowerMW(c.ElecWirelenCM, res.Nets[i].Bits)
		convP += cfg.Lib.ConversionPowerMW(c.NumMod, c.NumDet) * float64(res.Nets[i].Bits)
	}
	if math.Abs(maps.Electrical.Total()-elecP) > 1e-6*math.Max(1, elecP) {
		t.Errorf("electrical grid total %v, want %v", maps.Electrical.Total(), elecP)
	}
	if math.Abs(maps.Optical.Total()-convP) > 1e-6*math.Max(1, convP) {
		t.Errorf("optical grid total %v, want %v", maps.Optical.Total(), convP)
	}
	// And electrical + conversion must equal the reported total power.
	if math.Abs(elecP+convP-res.PowerMW) > 1e-6 {
		t.Errorf("power decomposition %v + %v != %v", elecP, convP, res.PowerMW)
	}
}

func TestHotspotsOperonCoolerThanGlowElectrical(t *testing.T) {
	// Fig. 9's observation: OPERON's electrical layer is cooler than
	// GLOW's, because fewer nets fall back to all-electrical routes.
	d := smallDesign(t)
	cfg := DefaultConfig()
	// Tighten the budget so the optical-only baseline loses several nets
	// to the electrical fallback.
	cfg.Lib.MaxLossDB = 6
	glow, err := RunOptical(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	op, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gm, err := Hotspots(glow, d.Die, 16, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	om, err := Hotspots(op, d.Die, 16, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if om.Electrical.Total() > gm.Electrical.Total()+1e-9 {
		t.Errorf("OPERON electrical layer %.3f hotter than GLOW %.3f",
			om.Electrical.Total(), gm.Electrical.Total())
	}
}

func TestHotspotsRejectsIncompleteResult(t *testing.T) {
	if _, err := Hotspots(&Result{}, geom.Rect{Hi: geom.Point{X: 1, Y: 1}}, 4, 4, DefaultConfig()); err == nil {
		t.Error("incomplete result accepted")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	d := smallDesign(t)
	cfg := DefaultConfig()
	cfg.Lib.MaxLossDB = -1
	if _, err := Run(d, cfg); err == nil {
		t.Error("invalid library accepted")
	}
	cfg = DefaultConfig()
	cfg.Elec.VoltageV = 0
	if _, err := Run(d, cfg); err == nil {
		t.Error("invalid electrical model accepted")
	}
}

func TestRunEmptyDesign(t *testing.T) {
	if _, err := Run(signal.Design{Name: "empty"}, DefaultConfig()); err == nil {
		t.Error("empty design accepted")
	}
}
