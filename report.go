package operon

import (
	"fmt"
	"sort"
	"strings"
)

// RouteClass summarises how a hyper net was implemented.
type RouteClass int

const (
	// RouteElectrical is a pure copper route (the a_ie fallback).
	RouteElectrical RouteClass = iota
	// RouteOptical is a fully optical route.
	RouteOptical
	// RouteMixed combines optical segments with electrical ones
	// (partial-optical tails or relays).
	RouteMixed
)

// String implements fmt.Stringer.
func (c RouteClass) String() string {
	switch c {
	case RouteOptical:
		return "optical"
	case RouteMixed:
		return "mixed"
	default:
		return "electrical"
	}
}

// Classify returns the route class of net i's chosen candidate.
func (r *Result) Classify(i int) RouteClass {
	cand := r.Nets[i].Cands[r.Selection.Choice[i]]
	switch {
	case cand.AllElectrical:
		return RouteElectrical
	case len(cand.ElecSegs) == 0:
		return RouteOptical
	default:
		return RouteMixed
	}
}

// Report renders a human-readable per-net routing report: class, power,
// conversions and worst optical loss per hyper net, followed by aggregate
// counts. Nets are listed in descending power order, truncated to maxNets
// rows (0 = all).
func (r *Result) Report(maxNets int) string {
	if len(r.Nets) == 0 || len(r.Selection.Choice) != len(r.Nets) {
		return "no complete selection\n"
	}
	type row struct {
		net   int
		class RouteClass
		power float64
		mods  int
		dets  int
		loss  float64
	}
	rows := make([]row, len(r.Nets))
	counts := map[RouteClass]int{}
	for i := range r.Nets {
		cand := r.Nets[i].Cands[r.Selection.Choice[i]]
		rows[i] = row{
			net:   i,
			class: r.Classify(i),
			power: cand.PowerMW,
			mods:  cand.NumMod,
			dets:  cand.NumDet,
			loss:  cand.MaxFixedLossDB,
		}
		counts[rows[i].class]++
	}
	sort.SliceStable(rows, func(a, b int) bool { return rows[a].power > rows[b].power })
	if maxNets > 0 && len(rows) > maxNets {
		rows = rows[:maxNets]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "route report: %s via %s\n", r.Design, r.Flow)
	fmt.Fprintf(&b, "  %5s %11s %6s %12s %5s %5s %10s\n",
		"net", "class", "bits", "power (mW)", "mods", "dets", "loss (dB)")
	for _, rw := range rows {
		fmt.Fprintf(&b, "  %5d %11s %6d %12.3f %5d %5d %10.2f\n",
			rw.net, rw.class, r.Nets[rw.net].Bits, rw.power, rw.mods, rw.dets, rw.loss)
	}
	if maxNets > 0 && len(r.Nets) > maxNets {
		fmt.Fprintf(&b, "  ... %d more nets\n", len(r.Nets)-maxNets)
	}
	fmt.Fprintf(&b, "  totals: %d optical, %d mixed, %d electrical; %.2f mW\n",
		counts[RouteOptical], counts[RouteMixed], counts[RouteElectrical], r.PowerMW)
	return b.String()
}
