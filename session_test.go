package operon

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"operon/internal/benchgen"
	"operon/internal/geom"
	"operon/internal/signal"
)

// ecoDesign generates a small multi-group design for session tests.
func ecoDesign(t *testing.T, groups, bitsPerGroup int, seed int64) signal.Design {
	t.Helper()
	d, err := benchgen.Generate(benchgen.Spec{
		Name:  fmt.Sprintf("eco-%d-%d-%d", groups, bitsPerGroup, seed),
		DieCM: 2.0, Groups: groups, BitsPerGroup: float64(bitsPerGroup),
		BitsJitter: 1, MinSinkClusters: 1, MaxSinkClusters: 2,
		LocalFraction: 0.2, LocalSpanCM: 0.15, GlobalSpanCM: 1.2,
		RegionSpreadCM: 0.02, LanePitchCM: 0.2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// normalizeResult zeroes the wall-clock and tracer fields of a Result so
// two runs compare on solver output alone. Everything else — selections,
// candidates, placements, diagnostics — must match bit-for-bit.
func normalizeResult(r *Result) *Result {
	out := *r
	out.Times = StageTimes{}
	out.Obs = nil
	if r.LR != nil {
		lr := *r.LR
		lr.Elapsed = 0
		out.LR = &lr
	}
	if r.ILP != nil {
		ir := *r.ILP
		ir.Elapsed = 0
		ir.LPTime = 0
		out.ILP = &ir
	}
	return &out
}

// requireIdentical fails unless the session result matches the cold result
// bit-for-bit after normalization.
func requireIdentical(t *testing.T, label string, got, want *Result) {
	t.Helper()
	g, w := normalizeResult(got), normalizeResult(want)
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: session result differs from cold solve\n  session: power=%.6f viol=%d choice=%v degraded=%v\n  cold:    power=%.6f viol=%d choice=%v degraded=%v",
			label, g.PowerMW, g.Selection.Violations, g.Selection.Choice, g.Degraded,
			w.PowerMW, w.Selection.Violations, w.Selection.Choice, w.Degraded)
	}
}

// TestSessionDifferentialRandomEdits is the bit-identity oracle: across
// randomized edit scripts (mixed kinds, several seeds, Workers 0 and >1),
// every Session.Resolve must equal a cold RunContext on the session's
// pending design and config.
func TestSessionDifferentialRandomEdits(t *testing.T) {
	for _, workers := range []int{0, 4} {
		for seed := int64(1); seed <= 3; seed++ {
			workers, seed := workers, seed
			t.Run(fmt.Sprintf("w%d_seed%d", workers, seed), func(t *testing.T) {
				t.Parallel()
				d := ecoDesign(t, 4, 12, 400+seed)
				cfg := DefaultConfig()
				cfg.Workers = workers
				s := NewSession(d, cfg)
				for round := 0; round < 4; round++ {
					if round > 0 {
						ops := benchgen.EditScript(s.Design(), 3, seed*100+int64(round))
						edits, err := EditsFromOps(ops)
						if err != nil {
							t.Fatal(err)
						}
						if _, err := s.Apply(edits...); err != nil {
							t.Fatal(err)
						}
					}
					got, st, err := s.Resolve(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					want, err := RunContext(context.Background(), s.Design(), s.Config())
					if err != nil {
						t.Fatal(err)
					}
					requireIdentical(t, fmt.Sprintf("round %d (stats %+v)", round, st), got, want)
					if round == 0 && !st.Cold {
						t.Fatalf("first resolve should be cold, got %+v", st)
					}
				}
			})
		}
	}
}

// TestSessionEmptyEditScript checks the 100%-reuse path: resolving twice
// with no edits in between must skip every stage and still match cold.
func TestSessionEmptyEditScript(t *testing.T) {
	d := ecoDesign(t, 3, 10, 7)
	cfg := DefaultConfig()
	s := NewSession(d, cfg)
	first, _, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	second, st, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullReuse {
		t.Fatalf("no-edit resolve should be a full reuse, got %+v", st)
	}
	requireIdentical(t, "full reuse vs first", second, first)
	cold, err := Run(s.Design(), s.Config())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "full reuse vs cold", second, cold)
}

// TestSessionMoveBackIsFullReuse checks that dirtiness is content-derived,
// not edit-derived: moving a terminal and moving it back must fully reuse.
func TestSessionMoveBackIsFullReuse(t *testing.T) {
	d := ecoDesign(t, 3, 10, 11)
	s := NewSession(d, DefaultConfig())
	if _, _, err := s.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	orig := d.Groups[1].Bits[2].Driver
	moved := geom.Point{X: orig.X + 0.1, Y: orig.Y}
	if _, err := s.Apply(MoveTerminal(1, 2, -1, moved), MoveTerminal(1, 2, -1, orig)); err != nil {
		t.Fatal(err)
	}
	_, st, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullReuse {
		t.Fatalf("move-then-move-back should fully reuse, got %+v", st)
	}
}

// TestSessionSmallEditReuses checks that a single terminal move re-clusters
// only the touched group and reuses the untouched groups' trees and (where
// environments allow) candidate sets.
func TestSessionSmallEditReuses(t *testing.T) {
	d := ecoDesign(t, 4, 12, 21)
	s := NewSession(d, DefaultConfig())
	if _, _, err := s.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	p := d.Groups[2].Bits[0].Sinks[0]
	if _, err := s.Apply(MoveTerminal(2, 0, 0, geom.Point{X: p.X + 0.02, Y: p.Y})); err != nil {
		t.Fatal(err)
	}
	got, st, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.GroupsRebuilt != 1 || st.GroupsReused != 3 {
		t.Fatalf("expected exactly one dirty group, got %+v", st)
	}
	if st.TreesReused == 0 {
		t.Fatalf("expected tree reuse on clean groups, got %+v", st)
	}
	want, err := Run(s.Design(), s.Config())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "small edit", got, want)
}

// TestSessionEditEveryGroup checks the degenerate case: an edit script
// touching every group rebuilds everything and still matches cold.
func TestSessionEditEveryGroup(t *testing.T) {
	d := ecoDesign(t, 3, 8, 31)
	s := NewSession(d, DefaultConfig())
	if _, _, err := s.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	var edits []Edit
	for gi := range d.Groups {
		p := d.Groups[gi].Bits[0].Driver
		edits = append(edits, MoveTerminal(gi, 0, -1, geom.Point{X: p.X + 0.05, Y: p.Y + 0.05}))
	}
	if _, err := s.Apply(edits...); err != nil {
		t.Fatal(err)
	}
	got, st, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.GroupsReused != 0 || st.GroupsRebuilt != len(d.Groups) {
		t.Fatalf("expected every group dirty, got %+v", st)
	}
	want, err := Run(s.Design(), s.Config())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "all-groups edit", got, want)
}

// TestSessionBudgetEdit checks a config-only edit: changing the loss budget
// invalidates candidates but reuses clustering and trees, and matches cold.
func TestSessionBudgetEdit(t *testing.T) {
	d := ecoDesign(t, 3, 10, 41)
	s := NewSession(d, DefaultConfig())
	if _, _, err := s.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(SetMaxLossDB(DefaultConfig().Lib.MaxLossDB * 0.8)); err != nil {
		t.Fatal(err)
	}
	got, st, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.GroupsRebuilt != 0 {
		t.Fatalf("budget edit should not re-cluster, got %+v", st)
	}
	if st.CandsReused != 0 {
		t.Fatalf("budget edit must invalidate every candidate set, got %+v", st)
	}
	want, err := Run(s.Design(), s.Config())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "budget edit", got, want)
}

// TestSessionGroupAddRemove checks structural edits end to end against cold.
func TestSessionGroupAddRemove(t *testing.T) {
	d := ecoDesign(t, 3, 8, 51)
	s := NewSession(d, DefaultConfig())
	if _, _, err := s.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	extra := ecoDesign(t, 1, 6, 99).Groups[0]
	extra.Name = "eco_added"
	if _, err := s.Apply(AddGroup(extra)); err != nil {
		t.Fatal(err)
	}
	got, st, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.GroupsReused != 3 || st.GroupsRebuilt != 1 {
		t.Fatalf("append should dirty only the new group, got %+v", st)
	}
	want, err := Run(s.Design(), s.Config())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "add group", got, want)

	if _, err := s.Apply(RemoveGroup(0)); err != nil {
		t.Fatal(err)
	}
	got, _, err = s.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err = Run(s.Design(), s.Config())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "remove group", got, want)
}

// TestSessionModeILPDifferential runs the oracle under ModeILP: warm cross-
// cache seeding must not perturb the branch-and-bound trajectory.
func TestSessionModeILPDifferential(t *testing.T) {
	d := ecoDesign(t, 3, 8, 61)
	cfg := DefaultConfig()
	cfg.Mode = ModeILP
	cfg.ILPTimeLimit = 30 * time.Second
	s := NewSession(d, cfg)
	if _, _, err := s.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	p := d.Groups[0].Bits[1].Driver
	if _, err := s.Apply(MoveTerminal(0, 1, -1, geom.Point{X: p.X + 0.03, Y: p.Y})); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(s.Design(), s.Config())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "ilp edit", got, want)
}

// TestSessionConcurrentResolve runs distinct sessions concurrently (each
// owns its workspace) — primarily a race-detector target for `make race`.
func TestSessionConcurrentResolve(t *testing.T) {
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			d := ecoDesign(t, 3, 8, 70+int64(k))
			cfg := DefaultConfig()
			cfg.Workers = 2
			s := NewSession(d, cfg)
			for round := 0; round < 3; round++ {
				if round > 0 {
					ops := benchgen.MoveScript(s.Design(), 2, int64(k*10+round))
					edits, err := EditsFromOps(ops)
					if err != nil {
						errs <- err
						return
					}
					if _, err := s.Apply(edits...); err != nil {
						errs <- err
						return
					}
				}
				got, _, err := s.Resolve(context.Background())
				if err != nil {
					errs <- err
					return
				}
				want, err := RunContext(context.Background(), s.Design(), s.Config())
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(normalizeResult(got), normalizeResult(want)) {
					errs <- fmt.Errorf("session %d round %d: result mismatch", k, round)
					return
				}
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSessionDegradedNotCommitted checks the poisoning guard: a resolve
// degraded by an expired context is returned but not committed, and the
// next resolve still diffs against the last good state and matches cold.
func TestSessionDegradedNotCommitted(t *testing.T) {
	d := ecoDesign(t, 3, 10, 81)
	s := NewSession(d, DefaultConfig())
	if _, _, err := s.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	p := d.Groups[1].Bits[0].Driver
	if _, err := s.Apply(MoveTerminal(1, 0, -1, geom.Point{X: p.X + 0.03, Y: p.Y})); err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := s.Resolve(expired)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatalf("resolve under an expired ctx should degrade, got %+v", res.StopReason)
	}
	// The degraded result must not have been committed: a full resolve now
	// still rebuilds the dirty group and matches cold.
	got, st, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded {
		t.Fatal("second resolve should complete")
	}
	if st.GroupsRebuilt != 1 {
		t.Fatalf("degraded resolve must not commit; expected 1 dirty group, got %+v", st)
	}
	want, err := Run(s.Design(), s.Config())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "after degraded resolve", got, want)
}

// TestSessionWarmDualsFeasible checks the opt-in warm-dual mode: results
// need not match cold, but must stay feasible and commit correctly.
func TestSessionWarmDualsFeasible(t *testing.T) {
	d := ecoDesign(t, 3, 10, 91)
	s := NewSession(d, DefaultConfig())
	s.SetWarmDuals(true)
	if _, _, err := s.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		ops := benchgen.MoveScript(s.Design(), 2, int64(900+round))
		edits, err := EditsFromOps(ops)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Apply(edits...); err != nil {
			t.Fatal(err)
		}
		res, _, err := s.Resolve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Selection.Violations != 0 {
			t.Fatalf("warm-dual resolve round %d: %d violations", round, res.Selection.Violations)
		}
		if res.LR == nil || res.LR.Lambda == nil {
			t.Fatalf("warm-dual resolve round %d: missing returned duals", round)
		}
	}
}

// TestSessionApplyAtomic checks that a script failing mid-way applies none
// of its edits.
func TestSessionApplyAtomic(t *testing.T) {
	d := ecoDesign(t, 2, 6, 95)
	s := NewSession(d, DefaultConfig())
	before := s.Design()
	_, err := s.Apply(
		MoveTerminal(0, 0, -1, geom.Point{X: 1, Y: 1}),
		MoveTerminal(99, 0, -1, geom.Point{X: 1, Y: 1}), // out of range
	)
	if err == nil {
		t.Fatal("expected an error for the out-of-range edit")
	}
	after := s.Design()
	if !reflect.DeepEqual(before, after) {
		t.Fatal("failed Apply must leave the pending design untouched")
	}
}
