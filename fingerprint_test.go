package operon

import (
	"context"
	"reflect"
	"testing"
	"time"

	"operon/internal/geom"
	"operon/internal/obs"
	"operon/internal/signal"
)

// fpDesign builds a small fixed design for fingerprint tests.
func fpDesign() signal.Design {
	return signal.Design{
		Name: "fp-case",
		Die:  geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: 2, Y: 2}},
		Groups: []signal.Group{
			{Name: "a", Bits: []signal.Bit{
				{Driver: geom.Point{X: 0.1, Y: 0.1}, Sinks: []geom.Point{{X: 1.5, Y: 0.2}, {X: 1.8, Y: 1.9}}},
				{Driver: geom.Point{X: 0.2, Y: 0.1}, Sinks: []geom.Point{{X: 1.5, Y: 0.3}}},
			}},
			{Name: "b", Bits: []signal.Bit{
				{Driver: geom.Point{X: 0.3, Y: 1.7}, Sinks: []geom.Point{{X: 1.2, Y: 1.1}}},
			}},
		},
	}
}

// fpMutator perturbs exactly one field of a solve instance.
type fpMutator func(*signal.Design, *Config)

// fpSemanticConfig classifies every Config field (and, for embedded structs,
// every leaf field) as semantic: each mutator must change the fingerprint.
// TestFingerprintFieldCoverage fails when a Config field exists that appears
// in neither this map nor fpNonSemanticConfig, so adding a field to Config
// without deciding its fingerprint role breaks the build's tests.
var fpSemanticConfig = map[string]fpMutator{
	"Lib.AlphaDBPerCM":       func(_ *signal.Design, c *Config) { c.Lib.AlphaDBPerCM += 0.25 },
	"Lib.BetaDBPerCrossing":  func(_ *signal.Design, c *Config) { c.Lib.BetaDBPerCrossing += 0.25 },
	"Lib.ModulatorPJPerBit":  func(_ *signal.Design, c *Config) { c.Lib.ModulatorPJPerBit += 0.25 },
	"Lib.DetectorPJPerBit":   func(_ *signal.Design, c *Config) { c.Lib.DetectorPJPerBit += 0.25 },
	"Lib.BitRateGHz":         func(_ *signal.Design, c *Config) { c.Lib.BitRateGHz += 1 },
	"Lib.WDMCapacity":        func(_ *signal.Design, c *Config) { c.Lib.WDMCapacity++ },
	"Lib.MaxLossDB":          func(_ *signal.Design, c *Config) { c.Lib.MaxLossDB += 0.5 },
	"Lib.CrosstalkMinDistCM": func(_ *signal.Design, c *Config) { c.Lib.CrosstalkMinDistCM += 0.05 },
	"Lib.AssignMaxDistCM":    func(_ *signal.Design, c *Config) { c.Lib.AssignMaxDistCM += 0.05 },

	"Elec.SwitchingFactor": func(_ *signal.Design, c *Config) { c.Elec.SwitchingFactor += 0.05 },
	"Elec.FrequencyGHz":    func(_ *signal.Design, c *Config) { c.Elec.FrequencyGHz += 1 },
	"Elec.VoltageV":        func(_ *signal.Design, c *Config) { c.Elec.VoltageV += 0.1 },
	"Elec.UnitCapPFPerCM":  func(_ *signal.Design, c *Config) { c.Elec.UnitCapPFPerCM += 0.1 },

	"PinMergeThresholdCM": func(_ *signal.Design, c *Config) { c.PinMergeThresholdCM += 0.05 },
	"MaxBaselines":        func(_ *signal.Design, c *Config) { c.MaxBaselines++ },
	"SubdivideCM":         func(_ *signal.Design, c *Config) { c.SubdivideCM += 0.1 },
	"MaxCandidates":       func(_ *signal.Design, c *Config) { c.MaxCandidates++ },
	"MaxCandidatesPerNet": func(_ *signal.Design, c *Config) { c.MaxCandidatesPerNet++ },
	"Mode":                func(_ *signal.Design, c *Config) { c.Mode = ModeGreedy },
	"ILPTimeLimit":        func(_ *signal.Design, c *Config) { c.ILPTimeLimit += time.Second },
	"ILPMaxNodes":         func(_ *signal.Design, c *Config) { c.ILPMaxNodes += 100 },
	"Seed":                func(_ *signal.Design, c *Config) { c.Seed++ },
	"SkipWDM":             func(_ *signal.Design, c *Config) { c.SkipWDM = !c.SkipWDM },

	"LR.MaxIters":      func(_ *signal.Design, c *Config) { c.LR.MaxIters += 5 },
	"LR.ConvergeRatio": func(_ *signal.Design, c *Config) { c.LR.ConvergeRatio += 0.005 },
	"LR.StepScale":     func(_ *signal.Design, c *Config) { c.LR.StepScale += 0.5 },
	"LR.WarmStart":     func(_ *signal.Design, c *Config) { c.LR.WarmStart = []float64{0.5, 1.5} },
	"LR.ReturnLambda":  func(_ *signal.Design, c *Config) { c.LR.ReturnLambda = !c.LR.ReturnLambda },
}

// fpNonSemanticConfig classifies the execution-context fields: each mutator
// must leave the fingerprint unchanged, because results are bit-identical
// across these knobs.
var fpNonSemanticConfig = map[string]fpMutator{
	"Workers":    func(_ *signal.Design, c *Config) { c.Workers = 7 },
	"Obs":        func(_ *signal.Design, c *Config) { c.Obs = obs.New(nil) },
	"LR.Workers": func(_ *signal.Design, c *Config) { c.LR.Workers = 5 },
	"LR.Obs":     func(_ *signal.Design, c *Config) { c.LR.Obs = obs.New(nil) },
	"LR.Ctx":     func(_ *signal.Design, c *Config) { c.LR.Ctx = context.Background() },
}

// fpLeafFields lists every classification key a struct type demands: leaf
// struct fields are flattened one level ("Lib.MaxLossDB"), everything else
// is the plain field name.
func fpLeafFields(t *testing.T, typ reflect.Type, prefix string, flatten map[string]bool) []string {
	t.Helper()
	var keys []string
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if flatten[f.Name] && f.Type.Kind() == reflect.Struct {
			for j := 0; j < f.Type.NumField(); j++ {
				keys = append(keys, prefix+f.Name+"."+f.Type.Field(j).Name)
			}
			continue
		}
		keys = append(keys, prefix+f.Name)
	}
	return keys
}

// TestFingerprintFieldCoverage is the rot guard: every field reachable from
// Config (with Lib, Elec, and LR flattened to their leaves) must be
// classified in exactly one of fpSemanticConfig / fpNonSemanticConfig, and
// each classified mutator must behave as claimed — semantic deltas change
// the hash, non-semantic deltas collide.
func TestFingerprintFieldCoverage(t *testing.T) {
	keys := fpLeafFields(t, reflect.TypeOf(Config{}), "",
		map[string]bool{"Lib": true, "Elec": true, "LR": true})

	for _, k := range keys {
		_, sem := fpSemanticConfig[k]
		_, non := fpNonSemanticConfig[k]
		if sem && non {
			t.Errorf("field %s classified both semantic and non-semantic", k)
		}
		if !sem && !non {
			t.Errorf("field %s not classified: add it to fpSemanticConfig or fpNonSemanticConfig (and to Fingerprint if semantic)", k)
		}
	}
	if len(fpSemanticConfig)+len(fpNonSemanticConfig) != len(keys) {
		t.Errorf("classification maps name %d fields, Config has %d — remove stale entries",
			len(fpSemanticConfig)+len(fpNonSemanticConfig), len(keys))
	}

	base := Fingerprint(fpDesign(), DefaultConfig())
	for name, mut := range fpSemanticConfig {
		d, cfg := fpDesign(), DefaultConfig()
		mut(&d, &cfg)
		if Fingerprint(d, cfg) == base {
			t.Errorf("semantic mutation %s did not change the fingerprint", name)
		}
	}
	for name, mut := range fpNonSemanticConfig {
		d, cfg := fpDesign(), DefaultConfig()
		mut(&d, &cfg)
		if Fingerprint(d, cfg) != base {
			t.Errorf("non-semantic mutation %s changed the fingerprint", name)
		}
	}
}

// TestFingerprintDesignSensitivity asserts every part of the design is
// semantic: coordinates, ordering, names, and structure all land in the
// hash, while a value-identical copy collides.
func TestFingerprintDesignSensitivity(t *testing.T) {
	cfg := DefaultConfig()
	base := Fingerprint(fpDesign(), cfg)

	if got := Fingerprint(fpDesign(), DefaultConfig()); got != base {
		t.Fatal("identical instances produced different fingerprints")
	}

	muts := map[string]func(*signal.Design){
		"rename design":    func(d *signal.Design) { d.Name = "other" },
		"grow die":         func(d *signal.Design) { d.Die.Hi.X += 0.5 },
		"rename group":     func(d *signal.Design) { d.Groups[0].Name = "a2" },
		"move driver":      func(d *signal.Design) { d.Groups[0].Bits[0].Driver.X += 0.01 },
		"move sink":        func(d *signal.Design) { d.Groups[1].Bits[0].Sinks[0].Y += 0.01 },
		"drop sink":        func(d *signal.Design) { d.Groups[0].Bits[0].Sinks = d.Groups[0].Bits[0].Sinks[:1] },
		"swap group order": func(d *signal.Design) { d.Groups[0], d.Groups[1] = d.Groups[1], d.Groups[0] },
		"swap bit order": func(d *signal.Design) {
			bits := d.Groups[0].Bits
			bits[0], bits[1] = bits[1], bits[0]
		},
	}
	for name, mut := range muts {
		d := fpDesign()
		mut(&d)
		if Fingerprint(d, cfg) == base {
			t.Errorf("design mutation %q did not change the fingerprint", name)
		}
	}
}

// TestFingerprintNoBoundaryAliasing asserts the length-prefixed encoding
// keeps structurally different designs with the same flat value stream
// apart: moving a sink from one bit's list to the next bit's list must
// change the hash even though the concatenated coordinates are identical.
func TestFingerprintNoBoundaryAliasing(t *testing.T) {
	cfg := DefaultConfig()
	p1, p2 := geom.Point{X: 1.0, Y: 1.0}, geom.Point{X: 1.5, Y: 1.5}
	mk := func(sinksA, sinksB []geom.Point) signal.Design {
		return signal.Design{
			Name: "alias",
			Die:  geom.Rect{Hi: geom.Point{X: 2, Y: 2}},
			Groups: []signal.Group{{Name: "g", Bits: []signal.Bit{
				{Driver: geom.Point{X: 0.1, Y: 0.1}, Sinks: sinksA},
				{Driver: geom.Point{X: 0.2, Y: 0.2}, Sinks: sinksB},
			}}},
		}
	}
	a := Fingerprint(mk([]geom.Point{p1, p2}, nil), cfg)
	b := Fingerprint(mk([]geom.Point{p1}, []geom.Point{p2}), cfg)
	if a == b {
		t.Fatal("sink list boundary not captured by the encoding")
	}

	// Same aliasing check for the string fields: "ab"+"c" vs "a"+"bc".
	d1, d2 := fpDesign(), fpDesign()
	d1.Name, d1.Groups[0].Name = "ab", "c"
	d2.Name, d2.Groups[0].Name = "a", "bc"
	if Fingerprint(d1, cfg) == Fingerprint(d2, cfg) {
		t.Fatal("string boundary not captured by the encoding")
	}
}

// TestFingerprintWarmStartContents asserts WarmStart participates by value,
// not just by length.
func TestFingerprintWarmStartContents(t *testing.T) {
	d := fpDesign()
	c1, c2 := DefaultConfig(), DefaultConfig()
	c1.LR.WarmStart = []float64{1, 2, 3}
	c2.LR.WarmStart = []float64{1, 2, 4}
	if Fingerprint(d, c1) == Fingerprint(d, c2) {
		t.Fatal("WarmStart contents not captured")
	}
	c2.LR.WarmStart = []float64{1, 2, 3}
	if Fingerprint(d, c1) != Fingerprint(d, c2) {
		t.Fatal("equal WarmStart vectors did not collide")
	}
}
