package operon

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"operon/internal/benchgen"
	"operon/internal/geom"
)

func TestWriteSVG(t *testing.T) {
	d, err := benchgen.Generate(benchgen.Spec{
		Name: "svg", DieCM: 4, Groups: 12, BitsPerGroup: 8, BitsJitter: 1,
		MinSinkClusters: 1, MaxSinkClusters: 2, LocalFraction: 0.25,
		LocalSpanCM: 0.2, GlobalSpanCM: 1.2, RegionSpreadCM: 0.02,
		LanePitchCM: 0.2, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, res, d.Die, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`<svg xmlns="http://www.w3.org/2000/svg"`,
		`id="optical"`, `id="electrical"`, `id="wdms"`,
		`id="modulators"`, `id="detectors"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
	// Conversion-site circles match the selection's conversion counts.
	mods, dets := 0, 0
	for i, j := range res.Selection.Choice {
		mods += res.Nets[i].Cands[j].NumMod
		dets += res.Nets[i].Cands[j].NumDet
	}
	if got := strings.Count(out, "<circle"); got != mods+dets {
		t.Errorf("SVG has %d circles, want %d (mods %d + dets %d)",
			got, mods+dets, mods, dets)
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := WriteSVG(&buf2, res, d.Die, cfg); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("SVG output is nondeterministic")
	}
}

func TestWriteSVGValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSVG(&buf, nil, geom.Rect{Hi: geom.Point{X: 1, Y: 1}}, DefaultConfig()); err == nil {
		t.Error("nil result accepted")
	}
	if err := WriteSVG(&buf, &Result{}, geom.Rect{Hi: geom.Point{X: 1, Y: 1}}, DefaultConfig()); err == nil {
		t.Error("empty result accepted")
	}
}

func TestWriteSVGZeroAreaDie(t *testing.T) {
	res := verifyDesign(t)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, res, geom.Rect{}, DefaultConfig()); err == nil {
		t.Error("zero-area die accepted")
	}
}
