// Tradeoff sweeps the two knobs that decide where optical beats electrical
// interconnect: the detection budget l_m (which bounds how far and how
// often light can split before a detector stops seeing it) and the
// electrical unit capacitance (which scales wire power). For every setting
// it reports the OPERON power and the fraction of hyper nets routed
// optically — making the crossover the paper's introduction argues about
// directly visible.
package main

import (
	"fmt"
	"log"

	operon "operon"
	"operon/internal/benchgen"
)

func main() {
	log.SetFlags(0)

	design, err := benchgen.Generate(benchgen.Spec{
		Name:            "tradeoff",
		DieCM:           4,
		Groups:          80,
		BitsPerGroup:    6,
		BitsJitter:      2,
		MinSinkClusters: 1,
		MaxSinkClusters: 2,
		LocalFraction:   0.25,
		LocalSpanCM:     0.2,
		GlobalSpanCM:    1.1,
		RegionSpreadCM:  0.02,
		LanePitchCM:     0.2,
		Seed:            99,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sweep 1: detection budget l_m (dB) at default electrical cost")
	fmt.Printf("  %6s %12s %14s %12s\n", "l_m", "power (mW)", "optical nets", "violations")
	for _, lm := range []float64{4, 8, 12, 16, 20, 28} {
		cfg := operon.DefaultConfig()
		cfg.Lib.MaxLossDB = lm
		res, err := operon.Run(design, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %6.0f %12.2f %13.1f%% %12d\n",
			lm, res.PowerMW, 100*opticalFraction(res), res.Selection.Violations)
	}

	fmt.Println()
	fmt.Println("sweep 2: electrical unit capacitance (pF/cm) at default l_m")
	fmt.Printf("  %6s %12s %14s\n", "cap", "power (mW)", "optical nets")
	for _, cap := range []float64{1, 2, 4, 9, 16, 32} {
		cfg := operon.DefaultConfig()
		cfg.Elec.UnitCapPFPerCM = cap
		res, err := operon.Run(design, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %6.0f %12.2f %13.1f%%\n",
			cap, res.PowerMW, 100*opticalFraction(res))
	}
	fmt.Println()
	fmt.Println("reading: a tighter loss budget or cheaper copper pushes routes")
	fmt.Println("electrical; a looser budget or costlier copper pushes them optical.")
}

// opticalFraction returns the share of hyper nets whose chosen route uses
// any optical segment.
func opticalFraction(res *operon.Result) float64 {
	if len(res.Selection.Choice) == 0 {
		return 0
	}
	n := 0
	for i, j := range res.Selection.Choice {
		if !res.Nets[i].Cands[j].AllElectrical {
			n++
		}
	}
	return float64(n) / float64(len(res.Selection.Choice))
}
