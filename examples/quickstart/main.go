// Quickstart: generate a small synthetic design, run the OPERON flow with
// defaults, and print the power summary next to the two published
// baselines.
package main

import (
	"fmt"
	"log"

	operon "operon"
	"operon/internal/benchgen"
)

func main() {
	log.SetFlags(0)

	// A small design: 24 signal groups of ~8 bits on a 4 cm die, mixing
	// local and global bundles.
	design, err := benchgen.Generate(benchgen.Spec{
		Name:            "quickstart",
		DieCM:           4,
		Groups:          24,
		BitsPerGroup:    8,
		BitsJitter:      2,
		MinSinkClusters: 1,
		MaxSinkClusters: 2,
		LocalFraction:   0.25,
		LocalSpanCM:     0.2,
		GlobalSpanCM:    1.2,
		RegionSpreadCM:  0.02,
		LanePitchCM:     0.2,
		Seed:            42,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := operon.DefaultConfig()

	elec, err := operon.RunElectrical(design, cfg)
	if err != nil {
		log.Fatal(err)
	}
	glow, err := operon.RunOptical(design, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := operon.Run(design, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("design %q: %d bits in %d groups -> %d hyper nets\n",
		design.Name, design.NetCount(), len(design.Groups), res.Stats().HyperNets)
	fmt.Printf("  all-electrical power: %8.2f mW\n", elec.PowerMW)
	fmt.Printf("  all-optical power   : %8.2f mW\n", glow.PowerMW)
	fmt.Printf("  OPERON co-design    : %8.2f mW (%.1f%% below optical-only)\n",
		res.PowerMW, 100*(1-res.PowerMW/glow.PowerMW))
	fmt.Printf("  WDM waveguides      : %d placed, %d after assignment\n",
		res.WDMStats.InitialWDMs, res.WDMStats.FinalWDMs)
}
