// Nocmesh routes the links of a 4x4 mesh network-on-chip as OPERON signal
// groups — the optical-NoC setting of the related work the paper builds on
// (O-Router, GLOW, PROTON). Each mesh link is a 16-bit bundle between
// neighbouring routers; four long "express" links span the mesh diagonally
// and stress the loss budget.
//
// The example contrasts the three flows and shows which links the
// co-design keeps electrical (the short neighbour hops) and which become
// optical (the express spans).
package main

import (
	"fmt"
	"log"
	"math/rand"

	operon "operon"
	"operon/internal/geom"
	"operon/internal/signal"
)

const (
	meshDim   = 4
	linkBits  = 16
	pitchCM   = 0.18 // router pitch: neighbour hops sit below the O/E crossover
	expressBW = 32
)

func main() {
	log.SetFlags(0)

	design := buildMesh()
	cfg := operon.DefaultConfig()

	elec, err := operon.RunElectrical(design, cfg)
	if err != nil {
		log.Fatal(err)
	}
	glow, err := operon.RunOptical(design, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := operon.Run(design, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("4x4 mesh NoC: %d links, %d bits total\n", len(design.Groups), design.NetCount())
	fmt.Printf("  electrical %8.2f mW | optical %8.2f mW | OPERON %8.2f mW\n",
		elec.PowerMW, glow.PowerMW, res.PowerMW)

	// Per-link routing decision of the co-design.
	short, long := 0, 0
	shortOpt, longOpt := 0, 0
	for i, j := range res.Selection.Choice {
		c := res.Nets[i].Cands[j]
		span := res.HyperNets[i].Terminals()
		dist := span[0].Dist(span[1])
		isLong := dist > 1.5*pitchCM
		if isLong {
			long++
			if !c.AllElectrical {
				longOpt++
			}
		} else {
			short++
			if !c.AllElectrical {
				shortOpt++
			}
		}
	}
	fmt.Printf("  neighbour hops: %d/%d use optics; express links: %d/%d use optics\n",
		shortOpt, short, longOpt, long)
	fmt.Printf("  WDM waveguides: %d placed -> %d assigned\n",
		res.WDMStats.InitialWDMs, res.WDMStats.FinalWDMs)
}

func buildMesh() signal.Design {
	rng := rand.New(rand.NewSource(7))
	extent := pitchCM * float64(meshDim-1)
	margin := 0.3
	die := geom.Rect{Hi: geom.Point{X: extent + 2*margin, Y: extent + 2*margin}}
	d := signal.Design{Name: "nocmesh", Die: die}

	router := func(r, c int) geom.Point {
		return geom.Point{X: margin + float64(c)*pitchCM, Y: margin + float64(r)*pitchCM}
	}
	jitter := func(p geom.Point) geom.Point {
		return geom.Point{X: p.X + rng.Float64()*0.02, Y: p.Y + rng.Float64()*0.02}
	}
	link := func(name string, from, to geom.Point, bits int) signal.Group {
		g := signal.Group{Name: name}
		for b := 0; b < bits; b++ {
			g.Bits = append(g.Bits, signal.Bit{
				Driver: jitter(from),
				Sinks:  []geom.Point{jitter(to)},
			})
		}
		return g
	}

	for r := 0; r < meshDim; r++ {
		for c := 0; c < meshDim; c++ {
			if c+1 < meshDim {
				d.Groups = append(d.Groups, link(
					fmt.Sprintf("h_%d_%d", r, c), router(r, c), router(r, c+1), linkBits))
			}
			if r+1 < meshDim {
				d.Groups = append(d.Groups, link(
					fmt.Sprintf("v_%d_%d", r, c), router(r, c), router(r+1, c), linkBits))
			}
		}
	}
	// Express links across the mesh.
	d.Groups = append(d.Groups,
		link("exp_diag0", router(0, 0), router(meshDim-1, meshDim-1), expressBW),
		link("exp_diag1", router(0, meshDim-1), router(meshDim-1, 0), expressBW),
		link("exp_row", router(1, 0), router(1, meshDim-1), expressBW),
		link("exp_col", router(0, 2), router(meshDim-1, 2), expressBW),
	)
	return d
}
