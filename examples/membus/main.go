// Membus models the paper's motivating workload: wide performance-critical
// buses between processor tiles and memory interfaces ("the
// performance-critical signal bits are bound together for data
// communication between logic cells and memory interfaces", §2.3).
//
// Four CPU tiles in the die centre each read and write two 64-bit buses to
// memory controllers at the die edges. The example builds the design
// directly with the signal API (no generator) and shows how the flow
// splits the 64-bit bundles into capacity-respecting hyper nets, routes
// the long runs optically and keeps the short ones electrical.
package main

import (
	"fmt"
	"log"
	"math/rand"

	operon "operon"
	"operon/internal/geom"
	"operon/internal/signal"
)

func main() {
	log.SetFlags(0)

	design := buildDesign()
	cfg := operon.DefaultConfig()

	res, err := operon.Run(design, cfg)
	if err != nil {
		log.Fatal(err)
	}
	glow, err := operon.RunOptical(design, cfg)
	if err != nil {
		log.Fatal(err)
	}

	st := res.Stats()
	fmt.Printf("memory-bus design: %d bits in %d buses\n", design.NetCount(), len(design.Groups))
	fmt.Printf("  hyper nets %d (WDM capacity %d), hyper pins %d\n",
		st.HyperNets, cfg.Lib.WDMCapacity, st.HyperPins)

	optical, electrical, mixed := 0, 0, 0
	for i, j := range res.Selection.Choice {
		c := res.Nets[i].Cands[j]
		switch {
		case c.AllElectrical:
			electrical++
		case len(c.ElecSegs) == 0:
			optical++
		default:
			mixed++
		}
	}
	fmt.Printf("  route mix: %d fully optical, %d mixed O/E, %d electrical\n",
		optical, mixed, electrical)
	fmt.Printf("  OPERON power %8.2f mW vs optical-only %8.2f mW\n", res.PowerMW, glow.PowerMW)
	fmt.Printf("  WDM waveguides: %d placed -> %d assigned (%.1f%% saved)\n",
		res.WDMStats.InitialWDMs, res.WDMStats.FinalWDMs, 100*res.WDMStats.Reduction())
}

func buildDesign() signal.Design {
	rng := rand.New(rand.NewSource(2024))
	die := geom.Rect{Hi: geom.Point{X: 4, Y: 4}}
	d := signal.Design{Name: "membus", Die: die}

	cpus := []geom.Point{{X: 1.5, Y: 1.5}, {X: 2.5, Y: 1.5}, {X: 1.5, Y: 2.5}, {X: 2.5, Y: 2.5}}
	// Memory controllers sit on the left and right die edges.
	mems := []geom.Point{{X: 0.2, Y: 1.0}, {X: 0.2, Y: 3.0}, {X: 3.8, Y: 1.0}, {X: 3.8, Y: 3.0}}

	jitter := func(p geom.Point) geom.Point {
		return geom.Point{X: p.X + rng.Float64()*0.03, Y: p.Y + rng.Float64()*0.03}
	}
	bus := func(name string, from, to geom.Point, bits int) signal.Group {
		g := signal.Group{Name: name}
		for b := 0; b < bits; b++ {
			g.Bits = append(g.Bits, signal.Bit{
				Driver: jitter(from),
				Sinks:  []geom.Point{jitter(to)},
			})
		}
		return g
	}

	for ci, cpu := range cpus {
		mem := mems[ci] // each tile pairs with the nearest edge controller
		d.Groups = append(d.Groups,
			bus(fmt.Sprintf("cpu%d_rd", ci), mem, cpu, 64), // read data: mem -> cpu
			bus(fmt.Sprintf("cpu%d_wr", ci), cpu, mem, 64), // write data: cpu -> mem
		)
		// A short local control bundle between the tile and its register
		// bank under a millimetre away — below the optical crossover, so
		// the co-design keeps it on copper.
		bank := geom.Point{X: cpu.X + 0.08, Y: cpu.Y + 0.02}
		d.Groups = append(d.Groups, bus(fmt.Sprintf("ctl%d", ci), cpu, bank, 8))
	}
	return d
}
