package operon

import (
	"testing"

	"operon/internal/obs"
)

// runInstrumented executes the OPERON flow on the small design with a
// Collector sink attached and returns both.
func runInstrumented(t *testing.T, mutate func(*Config)) (*Result, *obs.Collector) {
	t.Helper()
	d := smallDesign(t)
	col := &obs.Collector{}
	cfg := DefaultConfig()
	cfg.Obs = obs.New(col)
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Obs.Close(); err != nil {
		t.Fatal(err)
	}
	return res, col
}

// TestStageTimesMatchObsSpans pins the derived-view contract: StageTimes is
// exactly the per-stage span durations, so Total() equals the sum of the
// recorded stage spans.
func TestStageTimesMatchObsSpans(t *testing.T) {
	res, col := runInstrumented(t, nil)

	stages := map[string]int64{
		"stage/process":    res.Times.Process.Nanoseconds(),
		"stage/candidates": res.Times.Candidates.Nanoseconds(),
		"stage/selection":  res.Times.Selection.Nanoseconds(),
		"stage/wdm":        res.Times.WDM.Nanoseconds(),
	}
	var sum int64
	for name, want := range stages {
		spans := col.SpansNamed(name)
		if len(spans) != 1 {
			t.Fatalf("%d %s spans, want 1", len(spans), name)
		}
		if got := spans[0].Dur.Nanoseconds(); got != want {
			t.Errorf("%s: span %dns, StageTimes %dns", name, got, want)
		}
		sum += spans[0].Dur.Nanoseconds()
	}
	if total := res.Times.Total().Nanoseconds(); total != sum {
		t.Errorf("StageTimes.Total() = %dns, stage spans sum to %dns", total, sum)
	}
}

// TestObsFlowSpansEventsCounters checks the rest of the instrumentation a
// full LR flow is expected to leave behind.
func TestObsFlowSpansEventsCounters(t *testing.T) {
	res, col := runInstrumented(t, nil)

	if res.Obs == nil {
		t.Error("Result.Obs not set")
	}
	// One candidate-generation span per hyper net, all on worker lanes.
	nc := col.SpansNamed("net/candidates")
	if len(nc) != len(res.Nets) {
		t.Errorf("%d net/candidates spans for %d nets", len(nc), len(res.Nets))
	}
	for _, s := range nc {
		if s.Lane == obs.LaneFlow {
			t.Error("net/candidates span on the flow lane")
			break
		}
	}
	// LR iterate events mirror the recorded history.
	if res.LR == nil {
		t.Fatal("LR diagnostics missing")
	}
	if evs := col.EventsNamed("lr/iterate"); len(evs) != len(res.LR.History) {
		t.Errorf("%d lr/iterate events for %d history entries", len(evs), len(res.LR.History))
	}
	// WDM stage instrumentation (the small design always has optical nets).
	if len(col.SpansNamed("wdm/place")) != 1 {
		t.Error("missing wdm/place span")
	}
	if len(col.SpansNamed("wdm/assign")) == 0 {
		t.Error("missing wdm/assign spans")
	}
	// Counters flushed at Close: min-cost-flow and arc-costing activity.
	vals := map[string]int64{}
	for _, cv := range col.CounterValues() {
		vals[cv.Name] = cv.Value
	}
	for _, name := range []string{"mcmf.augmentations", "wdm.arcs"} {
		if vals[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, vals[name])
		}
	}
}

// TestObsILPNodeEvents checks the branch-and-bound and LP instrumentation
// on an exact solve.
func TestObsILPNodeEvents(t *testing.T) {
	res, col := runInstrumented(t, func(cfg *Config) { cfg.Mode = ModeILP })

	if res.ILP == nil {
		t.Fatal("ILP diagnostics missing")
	}
	if sp := col.SpansNamed("selection/ilp"); len(sp) != 1 {
		t.Fatalf("%d selection/ilp spans, want 1", len(sp))
	}
	nodes := col.EventsNamed("ilp/node")
	if len(nodes) != res.ILP.Nodes {
		t.Errorf("%d ilp/node events for %d nodes", len(nodes), res.ILP.Nodes)
	}
	vals := map[string]int64{}
	for _, cv := range col.CounterValues() {
		vals[cv.Name] = cv.Value
	}
	if vals["ilp.nodes"] != int64(res.ILP.Nodes) {
		t.Errorf("ilp.nodes counter %d, ILPResult.Nodes %d", vals["ilp.nodes"], res.ILP.Nodes)
	}
	for _, name := range []string{"lp.solves", "lp.pivots"} {
		if vals[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, vals[name])
		}
	}
}

// TestObsDoesNotChangeResults pins the invariant that instrumentation is
// pure telemetry: an instrumented run selects bit-identical routes.
func TestObsDoesNotChangeResults(t *testing.T) {
	d := smallDesign(t)
	plain, err := Run(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	traced, _ := runInstrumented(t, nil)
	if plain.PowerMW != traced.PowerMW {
		t.Errorf("power %v with tracer vs %v without", traced.PowerMW, plain.PowerMW)
	}
	if len(plain.Selection.Choice) != len(traced.Selection.Choice) {
		t.Fatal("selection lengths differ")
	}
	for i := range plain.Selection.Choice {
		if plain.Selection.Choice[i] != traced.Selection.Choice[i] {
			t.Fatalf("net %d: choice %d with tracer vs %d without",
				i, traced.Selection.Choice[i], plain.Selection.Choice[i])
		}
	}
	if plain.WDMStats != traced.WDMStats {
		t.Errorf("WDM stats %+v with tracer vs %+v without", traced.WDMStats, plain.WDMStats)
	}
}
