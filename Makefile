GO ?= go

# Packages with parallel stages or shared caches; `make check` runs these
# under the race detector in addition to the normal test sweep.
RACE_PKGS = ./internal/parallel ./internal/selection ./internal/signal \
            ./internal/wdm ./internal/optics/bpm .

.PHONY: check test race vet bench

check: vet test race

vet:
	$(GO) vet ./...

test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# Emit the machine-readable benchmark report (BENCH_<date>.json).
bench:
	$(GO) run ./cmd/bench
