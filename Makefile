GO ?= go

# Packages with parallel stages or shared caches; `make check` runs these
# under the race detector in addition to the normal test sweep. internal/ilp
# is here for the speculative branch-and-bound workers (the determinism
# tests assert bit-identical trees at Workers=1,2,4,8 under -race).
RACE_PKGS = ./internal/parallel ./internal/selection ./internal/signal \
            ./internal/wdm ./internal/optics/bpm ./internal/obs \
            ./internal/serve ./internal/ilp .

.PHONY: check test race vet docs-lint serve-smoke bench trace-smoke bench-compare bench-alloc bench-scale bench-speedup load-smoke load-compare eco-smoke dup-smoke

check: vet docs-lint test race

vet:
	$(GO) vet ./...

# Enforce 100% doc-comment coverage on the public surface of the flow
# package and the solver substrate (see cmd/docscheck for the audited set).
docs-lint:
	$(GO) vet ./...
	$(GO) run ./cmd/docscheck

# Boot operond in-process, solve one benchmark over real HTTP under a 1 ms
# budget, and assert the response is degraded but valid (the ladder's
# electrical floor observed end to end).
serve-smoke:
	$(GO) run ./cmd/operond -smoke

test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# Emit the machine-readable benchmark report (BENCH_<date>.json).
bench:
	$(GO) run ./cmd/bench

# Produce a Chrome trace of a small benchgen case and validate it against
# the trace-event schema. -min-lanes is 1, not the worker count: lanes
# reflect actual goroutine scheduling, and a single-CPU runner funnels the
# whole pool through one lane.
trace-smoke:
	$(GO) run ./cmd/operon -bench I1 -workers 4 -trace /tmp/operon-trace-smoke.json >/dev/null
	$(GO) run ./cmd/tracecheck -stages -min-lanes 1 /tmp/operon-trace-smoke.json

# Diff the two newest BENCH_*.json reports; fails on a >10% regression of
# a guarded solver counter (LP pivots, MCMF augmentations, branch-and-bound
# nodes) or of any benchmark's allocation profile (allocs/op, bytes/op,
# above an absolute floor that exempts tiny entries).
bench-compare:
	$(GO) run ./cmd/benchcmp

# Allocation-regression smoke: re-measure the suite in quick mode (single
# benchmark iterations — wall-clock numbers are noise, allocation profiles
# are not) and gate it against the newest committed report. CI runs this on
# every push so hot-path allocation churn cannot land silently. The mega
# cases are excluded here (bench-scale owns them).
bench-alloc:
	$(GO) run ./cmd/bench -quick -mega none -out /tmp/operon-bench-alloc.json
	$(GO) run ./cmd/benchcmp $$(ls BENCH_*.json | sort | tail -1) /tmp/operon-bench-alloc.json

# Scale-frontier smoke: run the I6 mega case (~20k nets, 6 cm die) end to
# end — flow plus the exact-ILP slice under a tight node budget — so the
# 10^5-column path stays exercised on every push without mega-benchmark
# wall-clock cost.
bench-scale:
	$(GO) run ./cmd/bench -quick -mega I6 -mega-nodes 256 -out /tmp/operon-bench-scale.json

# Parallel-speedup gate for multicore runners: only the worker-pool pairs
# run (flow, LR pricing, deterministic parallel B&B), three iterations each,
# and each parallel path must actually beat its sequential twin. On a
# single-core machine the gate skips with a notice — the comparison would
# measure pool overhead, not parallelism.
bench-speedup:
	$(GO) run ./cmd/bench -speedup-only -benchtime 3x -min-par-speedup 1.05 -out /tmp/operon-bench-speedup.json

# SLO gate: replay a deterministic request mix (hot-key skew, bursts, mixed
# budgets) against the in-process serving stack and fail when client-observed
# p50/p95/p99 latency or the error rate regress beyond generous thresholds
# against the newest committed LOAD_*.json baseline. The *.tmp report path is
# gitignored, so CI never dirties the tree.
load-smoke:
	$(GO) run ./cmd/loadgen -requests 40 -check -out LOAD_smoke.json.tmp

# Fuller local run against the committed baseline: same gate, more requests,
# report left beside the baseline for inspection (still gitignored). The dup
# leg replays the duplicate-heavy mix against its own baseline and addition-
# ally gates the absolute dedup win: >= 5x fewer solves than items at the
# mix's 10:1 duplicate ratio, with bit-identical deduplicated payloads.
load-compare:
	$(GO) run ./cmd/loadgen -requests 120 -check -out LOAD_compare.json.tmp
	$(GO) run ./cmd/loadgen -mix dup -requests 120 -check -min-reduction 5 -min-cache-hits 1 -out LOAD_compare-dup.json.tmp

# Incremental re-synthesis smoke: a tiny concurrent edit-loop (sticky
# sessions, one-pin moves, full-reuse probes) against the in-process server.
# Any request error fails the gate; the session path must stay clean under
# concurrency.
eco-smoke:
	$(GO) run ./cmd/loadgen -mix eco -requests 24 -sessions 3 -max-errors 0 -no-write

# Dedup smoke: replay the duplicate-heavy mix (singles + /solve/batch,
# hot-key skew over six distinct instances) and gate the content-addressed
# serving win — at least 5x fewer solves executed than items issued, at
# least one result-cache hit, zero errors, zero payload mismatches (replayDup
# fails the run itself on any differential mismatch).
dup-smoke:
	$(GO) run ./cmd/loadgen -mix dup -requests 40 -min-reduction 5 -min-cache-hits 1 -max-errors 0 -no-write
