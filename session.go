package operon

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"operon/internal/benchgen"
	"operon/internal/geom"
	"operon/internal/obs"
	"operon/internal/optics/bpm"
	"operon/internal/parallel"
	"operon/internal/selection"
	"operon/internal/signal"
	"operon/internal/steiner"
)

// Session supports incremental (ECO) re-synthesis: it wraps a Workspace, a
// mutable copy of a design, and the committed state of the last successful
// solve, so that edit→re-solve loops skip every stage whose inputs did not
// change. Apply mutates the pending design/config; Resolve re-runs the flow
// reusing, for untouched signal groups, the per-group clustering, the
// baseline Steiner trees, and the co-design candidate sets of the previous
// solve, plus the crossing-loss memo of the selection instance for every
// carried-over net pair. The BPM simulation cache is process-global and is
// reused verbatim by construction.
//
// Correctness contract: Resolve is bit-identical to a cold RunContext on the
// same design and config — reuse is restricted to stage outputs whose inputs
// are provably identical, so the solver trajectory cannot diverge (verified
// by the differential suite in session_test.go). The one exception is the
// opt-in SetWarmDuals mode, which seeds the Lagrangian multipliers from the
// previous solve's final duals and deliberately trades bit-identity for
// faster convergence on large edits.
//
// A Session serialises its own methods; distinct sessions are independent
// (each owns its Workspace) and may resolve concurrently.
type Session struct {
	mu        sync.Mutex
	ws        *Workspace
	design    signal.Design
	cfg       Config
	warmDuals bool
	last      *sessionState
}

// sessionState is the committed snapshot of the last successful
// (non-degraded) solve — everything a later Resolve may reuse.
type sessionState struct {
	design     signal.Design // deep copy, immune to later edits
	cfg        Config
	groupHNets [][]signal.HyperNet
	groupStart []int // first net index of each group in the flat net order
	hnets      []signal.HyperNet
	trees      [][]steiner.Tree
	contribs   [][]int // per net, ascending env-contributor net indices
	nets       []selection.Net
	inst       *selection.Instance
	res        *Result
	lambda     []float64 // final LR duals, kept only under SetWarmDuals
}

// NewSession starts an editing session on a deep copy of d: later mutations
// of the caller's design do not leak in, and edits never leak out. The
// session owns a fresh Workspace; the first Resolve is a cold solve.
func NewSession(d signal.Design, cfg Config) *Session {
	return &Session{ws: NewWorkspace(), design: copyDesign(d), cfg: cfg}
}

// SetWarmDuals toggles the opt-in Lagrangian warm start: when on, Resolve
// records the final LR multipliers of each solve and seeds the next solve's
// multipliers from them (remapped onto surviving nets). Warm-started LR
// follows a different dual trajectory than a cold solve, so results are no
// longer guaranteed bit-identical to RunContext — still feasible, typically
// equal-or-better after fewer iterations. Off by default.
func (s *Session) SetWarmDuals(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.warmDuals = on
}

// Design returns a deep copy of the session's pending design (the last
// applied edits included) — the input a cold RunContext must see to
// reproduce the next Resolve bit-for-bit.
func (s *Session) Design() signal.Design {
	s.mu.Lock()
	defer s.mu.Unlock()
	return copyDesign(s.design)
}

// Config returns the session's pending configuration.
func (s *Session) Config() Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg
}

// EditKind discriminates the edit operations a Session accepts.
type EditKind int

const (
	// EditMoveTerminal moves one terminal (driver or sink) of a bit.
	EditMoveTerminal EditKind = iota
	// EditAddTerminal adds a sink terminal to a bit.
	EditAddTerminal
	// EditRemoveTerminal removes a sink terminal from a bit (a bit must
	// keep at least one sink).
	EditRemoveTerminal
	// EditAddGroup appends a new signal group to the design.
	EditAddGroup
	// EditRemoveGroup removes a signal group (the design must keep at least
	// one). Groups after it shift down and therefore re-cluster.
	EditRemoveGroup
	// EditSetMaxLoss changes the optical power budget Lib.MaxLossDB.
	EditSetMaxLoss
	// EditSetConfig replaces the whole configuration.
	EditSetConfig
)

// Edit is one delta against the session's pending design or config; build
// them with the constructor functions (MoveTerminal, AddGroup, ...).
type Edit struct {
	// Kind selects the operation and which of the fields below it reads.
	Kind EditKind
	// Group is the index of the edited group (terminal edits, RemoveGroup).
	Group int
	// Bit is the index of the edited bit within the group (terminal edits).
	Bit int
	// Sink is the sink index within the bit; -1 addresses the driver
	// (EditMoveTerminal only).
	Sink int
	// Pos is the new terminal position (move/add).
	Pos geom.Point
	// NewGroup is the group to append (EditAddGroup).
	NewGroup signal.Group
	// MaxLossDB is the new power budget (EditSetMaxLoss).
	MaxLossDB float64
	// Config is the replacement configuration (EditSetConfig).
	Config *Config
}

// MoveTerminal moves a terminal of bit (group, bit): sink -1 moves the
// driver, 0..len(Sinks)-1 moves that sink.
func MoveTerminal(group, bit, sink int, pos geom.Point) Edit {
	return Edit{Kind: EditMoveTerminal, Group: group, Bit: bit, Sink: sink, Pos: pos}
}

// AddTerminal appends a sink terminal at pos to bit (group, bit).
func AddTerminal(group, bit int, pos geom.Point) Edit {
	return Edit{Kind: EditAddTerminal, Group: group, Bit: bit, Pos: pos}
}

// RemoveTerminal removes sink index sink from bit (group, bit).
func RemoveTerminal(group, bit, sink int) Edit {
	return Edit{Kind: EditRemoveTerminal, Group: group, Bit: bit, Sink: sink}
}

// AddGroup appends a signal group to the design.
func AddGroup(g signal.Group) Edit { return Edit{Kind: EditAddGroup, NewGroup: g} }

// RemoveGroup removes the group at index i.
func RemoveGroup(i int) Edit { return Edit{Kind: EditRemoveGroup, Group: i} }

// SetMaxLossDB changes the optical detection budget (the "power budget"
// knob of the paper's ECO loop: tightening it demotes marginal nets to
// electrical wires, loosening it admits more optical routes).
func SetMaxLossDB(v float64) Edit { return Edit{Kind: EditSetMaxLoss, MaxLossDB: v} }

// SetConfig replaces the session's configuration wholesale.
func SetConfig(cfg Config) Edit { return Edit{Kind: EditSetConfig, Config: &cfg} }

// EditsFromOps converts flow-agnostic benchgen edit ops — the form edit
// scripts are generated and shipped over the session HTTP API in — into
// session edits. Index validation is left to Session.Apply.
func EditsFromOps(ops []benchgen.EditOp) ([]Edit, error) {
	edits := make([]Edit, 0, len(ops))
	for k, op := range ops {
		switch op.Kind {
		case "move":
			edits = append(edits, MoveTerminal(op.Group, op.Bit, op.Sink, geom.Point{X: op.X, Y: op.Y}))
		case "add_terminal":
			edits = append(edits, AddTerminal(op.Group, op.Bit, geom.Point{X: op.X, Y: op.Y}))
		case "remove_terminal":
			edits = append(edits, RemoveTerminal(op.Group, op.Bit, op.Sink))
		case "add_group":
			edits = append(edits, AddGroup(signal.Group{Name: op.Name, Bits: op.NewBits}))
		case "remove_group":
			edits = append(edits, RemoveGroup(op.Group))
		case "budget":
			edits = append(edits, SetMaxLossDB(op.Budget))
		default:
			return nil, fmt.Errorf("operon: op %d: unknown edit kind %q", k, op.Kind)
		}
	}
	return edits, nil
}

// Dirty previews the work an edit script implies: which groups must
// re-cluster and whether a config change is involved. It is advisory — the
// authoritative dirty set is recomputed by Resolve from design content, so
// a move-then-move-back script still reuses everything.
type Dirty struct {
	// All marks every group dirty (a clustering-relevant config change).
	All bool
	// Groups lists the touched group indices, ascending and deduplicated.
	Groups []int
	// Config reports that the edit script changed the configuration.
	Config bool
}

// Apply validates and applies an edit script atomically to the session's
// pending design/config: on error nothing is applied and the error names
// the offending edit's position. The returned Dirty summarises the touched
// groups; Resolve performs the actual re-solve.
func (s *Session) Apply(edits ...Edit) (Dirty, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := copyDesign(s.design)
	cfg := s.cfg
	var dirty Dirty
	for k, e := range edits {
		if err := applyEdit(&d, &cfg, e, &dirty); err != nil {
			return Dirty{}, fmt.Errorf("operon: edit %d: %w", k, err)
		}
	}
	sort.Ints(dirty.Groups)
	dirty.Groups = dedupInts(dirty.Groups)
	s.design, s.cfg = d, cfg
	return dirty, nil
}

// applyEdit applies one edit to the scratch design/config, accumulating the
// dirty preview. Bounds are validated here so Apply can be atomic.
func applyEdit(d *signal.Design, cfg *Config, e Edit, dirty *Dirty) error {
	touch := func(gi int) { dirty.Groups = append(dirty.Groups, gi) }
	bitAt := func() (*signal.Bit, error) {
		if e.Group < 0 || e.Group >= len(d.Groups) {
			return nil, fmt.Errorf("group %d out of range [0,%d)", e.Group, len(d.Groups))
		}
		g := &d.Groups[e.Group]
		if e.Bit < 0 || e.Bit >= len(g.Bits) {
			return nil, fmt.Errorf("group %d bit %d out of range [0,%d)", e.Group, e.Bit, len(g.Bits))
		}
		return &g.Bits[e.Bit], nil
	}
	switch e.Kind {
	case EditMoveTerminal:
		b, err := bitAt()
		if err != nil {
			return err
		}
		if e.Sink == -1 {
			b.Driver = e.Pos
		} else if e.Sink >= 0 && e.Sink < len(b.Sinks) {
			b.Sinks[e.Sink] = e.Pos
		} else {
			return fmt.Errorf("sink %d out of range [-1,%d)", e.Sink, len(b.Sinks))
		}
		touch(e.Group)
	case EditAddTerminal:
		b, err := bitAt()
		if err != nil {
			return err
		}
		b.Sinks = append(b.Sinks, e.Pos)
		touch(e.Group)
	case EditRemoveTerminal:
		b, err := bitAt()
		if err != nil {
			return err
		}
		if e.Sink < 0 || e.Sink >= len(b.Sinks) {
			return fmt.Errorf("sink %d out of range [0,%d)", e.Sink, len(b.Sinks))
		}
		if len(b.Sinks) == 1 {
			return fmt.Errorf("cannot remove the last sink of group %d bit %d", e.Group, e.Bit)
		}
		b.Sinks = append(b.Sinks[:e.Sink], b.Sinks[e.Sink+1:]...)
		touch(e.Group)
	case EditAddGroup:
		if err := e.NewGroup.Validate(); err != nil {
			return err
		}
		d.Groups = append(d.Groups, copyGroup(e.NewGroup))
		touch(len(d.Groups) - 1)
	case EditRemoveGroup:
		if e.Group < 0 || e.Group >= len(d.Groups) {
			return fmt.Errorf("group %d out of range [0,%d)", e.Group, len(d.Groups))
		}
		if len(d.Groups) == 1 {
			return fmt.Errorf("cannot remove the last group")
		}
		d.Groups = append(d.Groups[:e.Group], d.Groups[e.Group+1:]...)
		// Every surviving group at or after the removed index shifts down;
		// its clustering seed (Seed + index) changes with it.
		for gi := e.Group; gi < len(d.Groups); gi++ {
			touch(gi)
		}
	case EditSetMaxLoss:
		if e.MaxLossDB <= 0 {
			return fmt.Errorf("max loss %.3f dB must be positive", e.MaxLossDB)
		}
		cfg.Lib.MaxLossDB = e.MaxLossDB
		dirty.Config = true
	case EditSetConfig:
		if e.Config == nil {
			return fmt.Errorf("SetConfig edit carries no config")
		}
		if diffConfig(*cfg, *e.Config).proc {
			dirty.All = true
		}
		*cfg = *e.Config
		dirty.Config = true
	default:
		return fmt.Errorf("unknown edit kind %d", e.Kind)
	}
	return nil
}

// ResolveStats reports what a Resolve reused versus rebuilt.
type ResolveStats struct {
	// Cold reports the session's first solve (nothing to reuse).
	Cold bool
	// FullReuse reports that nothing was dirty: the previous result was
	// returned without re-running any stage.
	FullReuse bool
	// GroupsReused counts signal groups whose clustering was carried over.
	GroupsReused int
	// GroupsRebuilt counts signal groups re-clustered by this solve.
	GroupsRebuilt int
	// TreesReused counts hyper nets whose baseline trees were carried over.
	TreesReused int
	// TreesRebuilt counts hyper nets whose baseline trees were rebuilt.
	TreesRebuilt int
	// CandsReused counts hyper nets whose candidate sets were carried over.
	CandsReused int
	// CandsRebuilt counts hyper nets whose candidate sets were regenerated.
	CandsRebuilt int
	// CrossCacheSeeded counts crossing-loss memo entries transplanted into
	// the new selection instance.
	CrossCacheSeeded int
	// WDMReused reports that the WDM placement/assignment was carried over
	// (identical nets and selection choice).
	WDMReused bool
}

// Resolve re-solves the session's pending design under ctx, re-running only
// the stages whose inputs changed since the last committed solve (see the
// type doc for the reuse rules and DESIGN.md §12 for the reuse matrix). The
// result is bit-identical to RunContext(ctx, s.Design(), s.Config()) unless
// SetWarmDuals is on. Degraded results (ctx expired mid-solve) are returned
// but not committed: the next Resolve diffs against the last good state, so
// a cancelled resolve never poisons the session.
func (s *Session) Resolve(ctx context.Context) (*Result, ResolveStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	var st ResolveStats
	res, next, err := s.solve(ctx, &st)
	if err != nil {
		return nil, st, err
	}
	s.recordStats(st)
	if next != nil {
		s.last = next
	}
	return res, st, nil
}

// recordStats mirrors ResolveStats onto the session's tracer as
// ws.session.* counters, so serving and bench snapshots expose reuse rates.
func (s *Session) recordStats(st ResolveStats) {
	t := s.cfg.Obs
	t.Counter("ws.session.resolves").Inc()
	if st.Cold {
		t.Counter("ws.session.cold").Inc()
	}
	if st.FullReuse {
		t.Counter("ws.session.reuse/full").Inc()
	}
	if st.WDMReused {
		t.Counter("ws.session.reuse/wdm").Inc()
	}
	t.Counter("ws.session.reuse/groups").Add(int64(st.GroupsReused))
	t.Counter("ws.session.dirty/groups").Add(int64(st.GroupsRebuilt))
	t.Counter("ws.session.reuse/trees").Add(int64(st.TreesReused))
	t.Counter("ws.session.reuse/cands").Add(int64(st.CandsReused))
	t.Counter("ws.session.dirty/cands").Add(int64(st.CandsRebuilt))
	t.Counter("ws.session.reuse/crosscache").Add(int64(st.CrossCacheSeeded))
}

// solve is the incremental twin of RunContextWith: same stages, same shared
// helpers, same degradation ladder — plus a reuse decision ahead of each
// stage. It returns the committed state for the solve, or nil when the
// result must not be committed (degraded run).
func (s *Session) solve(ctx context.Context, st *ResolveStats) (*Result, *sessionState, error) {
	cfg := s.cfg
	d := s.design
	prev := s.last

	// Mirror process()'s validation order and messages exactly.
	if err := cfg.Lib.Validate(); err != nil {
		return nil, nil, err
	}
	if err := cfg.Elec.Validate(); err != nil {
		return nil, nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.Lib.WDMCapacity <= 0 {
		return nil, nil, fmt.Errorf("signal: WDM capacity %d must be positive", cfg.Lib.WDMCapacity)
	}

	var delta cfgDelta
	if prev != nil {
		delta = diffConfig(prev.cfg, cfg)
	} else {
		st.Cold = true
	}

	// Group-level dirty set, by content: group gi is clean iff the previous
	// committed design had an equal group at the same index (the clustering
	// seed is Seed+index, so position matters as much as content).
	nG := len(d.Groups)
	groupClean := make([]bool, nG)
	allClean := prev != nil && !delta.proc && nG == len(prev.design.Groups)
	if prev != nil && !delta.proc {
		for gi := 0; gi < nG; gi++ {
			if gi < len(prev.design.Groups) && groupsEqual(d.Groups[gi], prev.design.Groups[gi]) {
				groupClean[gi] = true
			} else {
				allClean = false
			}
		}
	}

	// Nothing dirty at all: hand back the committed result without running
	// any stage. (A cold run under an expired ctx would degrade; returning
	// the complete cached result is strictly better and still matches an
	// un-expired cold run bit-for-bit.)
	if allClean && !delta.any() && fullReuseSafe(cfg) {
		st.FullReuse = true
		st.GroupsReused = nG
		st.TreesReused = len(prev.hnets)
		st.CandsReused = len(prev.hnets)
		st.WDMReused = !cfg.SkipWDM
		out := *prev.res
		out.Times = StageTimes{}
		out.Obs = cfg.Obs
		return &out, prev, nil
	}

	res := &Result{Design: d.Name, Flow: "operon-" + cfg.Mode.String(), Obs: cfg.Obs}
	bpmHits0, bpmMisses0 := bpm.CacheCounters()
	var bpmSim0 obs.HistogramSnapshot
	if cfg.Obs != nil {
		bpmSim0 = bpm.SimDurations()
	}
	defer res.foldBPMCounters(cfg, bpmHits0, bpmMisses0, bpmSim0)

	// Stage 1: signal processing, per group, reusing clean groups' nets.
	stop := startStage(cfg.Obs, "stage/process", &res.Times.Process)
	procCfg := signal.ProcessConfig{
		WDMCapacity:         cfg.Lib.WDMCapacity,
		PinMergeThresholdCM: cfg.PinMergeThresholdCM,
		Seed:                cfg.Seed,
	}
	groupHNets := make([][]signal.HyperNet, nG)
	err := parallel.ForEach(nG, cfg.Workers, func(gi int) error {
		if groupClean[gi] {
			groupHNets[gi] = prev.groupHNets[gi]
			return nil
		}
		hns, err := signal.ProcessGroup(d.Groups[gi], gi, procCfg)
		if err != nil {
			return err
		}
		groupHNets[gi] = hns
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	groupStart := make([]int, nG)
	var hnets []signal.HyperNet
	for gi, g := range groupHNets {
		groupStart[gi] = len(hnets)
		hnets = append(hnets, g...)
	}
	if len(hnets) == 0 {
		return nil, nil, fmt.Errorf("operon: design %q produced no hyper nets", d.Name)
	}
	res.HyperNets = hnets
	stop(obs.I("hyper_nets", len(hnets)))
	for gi := range groupClean {
		if groupClean[gi] {
			st.GroupsReused++
		} else {
			st.GroupsRebuilt++
		}
	}

	if ctx.Err() != nil {
		if err := res.degradeToElectricalFloor(ctx, cfg, s.ws); err != nil {
			return nil, nil, err
		}
		return res, nil, nil
	}

	// Stage 2: baseline trees and candidate sets, per net. netPrev maps a
	// net in a clean group to its previous index (clean groups sit at the
	// same group index and ProcessGroup is deterministic, so within-group
	// net order carries over verbatim).
	stop = startStage(cfg.Obs, "stage/candidates", &res.Times.Candidates)
	nN := len(hnets)
	netGroup := make([]int, nN)
	for gi := range groupHNets {
		for k := range groupHNets[gi] {
			netGroup[groupStart[gi]+k] = gi
		}
	}
	netPrev := make([]int, nN)
	treeOK := make([]bool, nN)
	for i := 0; i < nN; i++ {
		gi := netGroup[i]
		if groupClean[gi] {
			netPrev[i] = prev.groupStart[gi] + (i - groupStart[gi])
			treeOK[i] = !delta.trees
		} else {
			netPrev[i] = -1
		}
	}

	blStart := time.Now()
	maxBl := cfg.MaxBaselines
	if maxBl <= 0 {
		maxBl = 3
	}
	trees := make([][]steiner.Tree, nN)
	var rebuildTrees []int
	for i := 0; i < nN; i++ {
		if treeOK[i] {
			trees[i] = prev.trees[netPrev[i]]
			st.TreesReused++
		} else {
			rebuildTrees = append(rebuildTrees, i)
			st.TreesRebuilt++
		}
	}
	err = parallel.ForEachScratchContext(ctx, s.ws.arenaOf(), len(rebuildTrees), cfg.Workers, func(w int, sc *parallel.Scratch, k int) error {
		i := rebuildTrees[k]
		scr := grabScratch(sc, cfg.Obs)
		trees[i] = steiner.BaselinesWS(hnets[i].Terminals(), steiner.Euclidean, maxBl, scr.steiner)
		return nil
	})
	if err != nil {
		stop(obs.I("nets", 0), obs.S("aborted", "context"))
		if err := res.degradeToElectricalFloor(ctx, cfg, s.ws); err != nil {
			return nil, nil, err
		}
		return res, nil, nil
	}
	cfg.Obs.Histogram("stage/baselines").RecordDuration(time.Since(blStart))

	// A net's candidates are reusable when its own trees carried over, no
	// candidate-relevant knob changed, and its crossing environment is
	// byte-identical: same contributors (mapped index-for-index onto the
	// previous solve) each with carried-over trees.
	envs, contribs := buildEnvsContrib(hnets, trees)
	candOK := make([]bool, nN)
	for i := 0; i < nN; i++ {
		candOK[i] = treeOK[i] && !delta.cands && contribsMatch(i, netPrev, treeOK, contribs, prev)
	}

	nets := make([]selection.Net, nN)
	var rebuildNets []int
	for i := 0; i < nN; i++ {
		if candOK[i] {
			nets[i] = prev.nets[netPrev[i]]
			st.CandsReused++
		} else {
			rebuildNets = append(rebuildNets, i)
			st.CandsRebuilt++
		}
	}
	netHist := cfg.Obs.Histogram("net/candidates")
	err = parallel.ForEachScratchContext(ctx, s.ws.arenaOf(), len(rebuildNets), cfg.Workers, func(w int, sc *parallel.Scratch, k int) error {
		i := rebuildNets[k]
		var sp obs.Span
		if cfg.Obs != nil {
			sp = cfg.Obs.Span("net/candidates", obs.WorkerLane(w), obs.I("net", i))
		}
		scr := grabScratch(sc, cfg.Obs)
		net, err := generateNetCandidates(i, hnets[i], trees[i], envs[i], cfg, scr)
		if err != nil {
			return err
		}
		nets[i] = net
		if cfg.Obs != nil {
			netHist.RecordDuration(sp.End(obs.I("cands", len(net.Cands))))
		}
		return nil
	})
	if err != nil {
		if ctx.Err() != nil {
			stop(obs.I("nets", 0), obs.S("aborted", "context"))
			if err := res.degradeToElectricalFloor(ctx, cfg, s.ws); err != nil {
				return nil, nil, err
			}
			return res, nil, nil
		}
		return nil, nil, err
	}
	res.Nets = nets
	stop(obs.I("nets", len(nets)))

	// Stage 3: selection. The instance is rebuilt (its index bookkeeping is
	// cheap) but seeded with every crossing-loss memo entry whose two nets
	// both carried their candidates over — a pure memo, so seeding cannot
	// change results.
	inst, err := selection.NewInstance(nets, cfg.Lib)
	if err != nil {
		return nil, nil, err
	}
	candMap := make([]int, nN)
	for i := 0; i < nN; i++ {
		if candOK[i] {
			candMap[i] = netPrev[i]
		} else {
			candMap[i] = -1
		}
	}
	if prev != nil && prev.inst != nil {
		st.CrossCacheSeeded = inst.SeedCrossCache(prev.inst, candMap)
	}
	stop = startStage(cfg.Obs, "stage/selection", &res.Times.Selection)
	lrOpt := lrOptions(ctx, cfg)
	if s.warmDuals {
		lrOpt.ReturnLambda = true
		if prev != nil && prev.lambda != nil {
			if warm := selection.RemapLambda(prev.inst, prev.lambda, inst, candMap); warm != nil {
				lrOpt.WarmStart = warm
			}
		}
	}
	if err := runSelection(ctx, cfg, s.ws, inst, lrOpt, res); err != nil {
		return nil, nil, err
	}
	stop(obs.S("mode", cfg.Mode.String()))
	res.PowerMW = res.Selection.PowerMW

	// Stage 4: WDM. Reusable only when its exact inputs recurred: identical
	// net list (every net carried over in place) and identical choice.
	if !cfg.SkipWDM {
		stop = startStage(cfg.Obs, "stage/wdm", &res.Times.WDM)
		if prev != nil && !delta.wdm && !prev.cfg.SkipWDM && prev.res != nil &&
			identityMap(candMap) && len(prev.nets) == nN &&
			intsEqual(res.Selection.Choice, prev.res.Selection.Choice) {
			st.WDMReused = true
			res.Connections = prev.res.Connections
			res.Placement = prev.res.Placement
			res.Assignment = prev.res.Assignment
			res.WDMStats = prev.res.WDMStats
		} else if err := res.assignWDMs(ctx, cfg); err != nil {
			return nil, nil, err
		}
		if res.WDMStats.Degraded {
			res.markDegraded(ctx, cfg, "wdm")
		}
		stop(obs.I("wdms_used", res.WDMStats.FinalWDMs))
	}

	if res.Degraded {
		return res, nil, nil
	}
	next := &sessionState{
		design:     copyDesign(d),
		cfg:        cfg,
		groupHNets: groupHNets,
		groupStart: groupStart,
		hnets:      hnets,
		trees:      trees,
		contribs:   contribs,
		nets:       nets,
		inst:       inst,
		res:        res,
	}
	if s.warmDuals && res.LR != nil {
		next.lambda = res.LR.Lambda
	}
	return res, next, nil
}

// contribsMatch reports whether net i's environment contributors map
// index-for-index onto its previous incarnation's, each with carried-over
// trees — the condition for the concatenated environment to be identical.
func contribsMatch(i int, netPrev []int, treeOK []bool, contribs [][]int, prev *sessionState) bool {
	pi := netPrev[i]
	if pi < 0 || prev == nil {
		return false
	}
	pc := prev.contribs[pi]
	if len(contribs[i]) != len(pc) {
		return false
	}
	for k, c := range contribs[i] {
		if !treeOK[c] || netPrev[c] != pc[k] {
			return false
		}
	}
	return true
}

// cfgDelta classifies a config change by the stages it invalidates.
// Workers and Obs are excluded throughout: they never affect results.
type cfgDelta struct {
	proc  bool // re-cluster every group
	trees bool // rebuild every baseline tree
	cands bool // regenerate every candidate set
	sel   bool // selection knobs changed (selection always re-runs anyway)
	wdm   bool // re-place/assign the WDM stage
}

// any reports whether the delta invalidates anything.
func (c cfgDelta) any() bool { return c.proc || c.trees || c.cands || c.sel || c.wdm }

// diffConfig classifies the differences between two configurations by the
// stages whose outputs they invalidate (the invalidation-trigger column of
// the DESIGN.md §12 reuse matrix). optics.Library and power.ElectricalModel
// are flat scalar structs, so == captures every knob.
func diffConfig(a, b Config) cfgDelta {
	var d cfgDelta
	if a.Lib.WDMCapacity != b.Lib.WDMCapacity ||
		a.PinMergeThresholdCM != b.PinMergeThresholdCM || a.Seed != b.Seed {
		d.proc = true
	}
	if a.MaxBaselines != b.MaxBaselines {
		d.trees = true
	}
	if a.Lib != b.Lib || a.Elec != b.Elec || a.SubdivideCM != b.SubdivideCM ||
		a.MaxCandidates != b.MaxCandidates || a.MaxCandidatesPerNet != b.MaxCandidatesPerNet {
		d.cands = true
	}
	if a.Lib != b.Lib || a.Mode != b.Mode || a.ILPTimeLimit != b.ILPTimeLimit ||
		a.ILPMaxNodes != b.ILPMaxNodes || a.LR.MaxIters != b.LR.MaxIters ||
		a.LR.ConvergeRatio != b.LR.ConvergeRatio || a.LR.StepScale != b.LR.StepScale {
		d.sel = true
	}
	if a.Lib.WDMCapacity != b.Lib.WDMCapacity ||
		a.Lib.CrosstalkMinDistCM != b.Lib.CrosstalkMinDistCM ||
		a.Lib.AssignMaxDistCM != b.Lib.AssignMaxDistCM || a.SkipWDM != b.SkipWDM {
		d.wdm = true
	}
	return d
}

// fullReuseSafe vetoes the full-reuse shortcut for configurations whose
// solves are not pure functions of (design, config): a pinned LR context
// can expire between solves and a caller-provided warm start already gave
// up cold-identity.
func fullReuseSafe(cfg Config) bool {
	return cfg.LR.Ctx == nil && len(cfg.LR.WarmStart) == 0
}

// groupsEqual compares two signal groups by content.
func groupsEqual(a, b signal.Group) bool {
	if a.Name != b.Name || len(a.Bits) != len(b.Bits) {
		return false
	}
	for i := range a.Bits {
		if a.Bits[i].Driver != b.Bits[i].Driver || len(a.Bits[i].Sinks) != len(b.Bits[i].Sinks) {
			return false
		}
		for j := range a.Bits[i].Sinks {
			if a.Bits[i].Sinks[j] != b.Bits[i].Sinks[j] {
				return false
			}
		}
	}
	return true
}

// copyDesign deep-copies a design so session snapshots and pending designs
// never alias caller- or edit-mutable memory.
func copyDesign(d signal.Design) signal.Design {
	out := d
	out.Groups = make([]signal.Group, len(d.Groups))
	for i, g := range d.Groups {
		out.Groups[i] = copyGroup(g)
	}
	return out
}

// copyGroup deep-copies one signal group.
func copyGroup(g signal.Group) signal.Group {
	out := g
	out.Bits = make([]signal.Bit, len(g.Bits))
	for i, b := range g.Bits {
		nb := b
		nb.Sinks = append([]geom.Point(nil), b.Sinks...)
		out.Bits[i] = nb
	}
	return out
}

// identityMap reports whether m maps every index to itself.
func identityMap(m []int) bool {
	for i, v := range m {
		if v != i {
			return false
		}
	}
	return true
}

// intsEqual compares two int slices element-wise.
func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dedupInts removes adjacent duplicates from a sorted slice.
func dedupInts(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
