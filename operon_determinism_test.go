package operon

import (
	"context"
	"reflect"
	"testing"
	"time"

	"operon/internal/benchgen"
	"operon/internal/signal"
)

// determinismCases are two structurally different benchgen cases: a mixed
// local/global bus design and a many-small-groups design with multiple sink
// clusters per bit.
func determinismCases(t *testing.T) []signal.Design {
	t.Helper()
	specs := []benchgen.Spec{
		{
			Name: "det-a", DieCM: 4, Groups: 24, BitsPerGroup: 8, BitsJitter: 2,
			MinSinkClusters: 1, MaxSinkClusters: 3, LocalFraction: 0.3,
			LocalSpanCM: 0.3, GlobalSpanCM: 2.0, RegionSpreadCM: 0.02, Seed: 7,
		},
		{
			Name: "det-b", DieCM: 5, Groups: 40, BitsPerGroup: 5, BitsJitter: 1,
			MinSinkClusters: 2, MaxSinkClusters: 4, LocalFraction: 0.15,
			LocalSpanCM: 0.2, GlobalSpanCM: 2.5, RegionSpreadCM: 0.03,
			LanePitchCM: 0.25, Seed: 42,
		},
	}
	out := make([]signal.Design, len(specs))
	for i, s := range specs {
		d, err := benchgen.Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = d
	}
	return out
}

// TestRunDeterministicAcrossWorkerCounts is the output-equivalence guarantee
// of the worker pool: every parallel stage (signal processing, baseline
// construction, candidate generation, LR pricing, WDM arc costing) must
// produce byte-identical results at Workers: 1 and Workers: 8.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, d := range determinismCases(t) {
		cfg := DefaultConfig()
		cfg.Workers = 1
		seq, err := Run(d, cfg)
		if err != nil {
			t.Fatalf("%s workers=1: %v", d.Name, err)
		}
		cfg.Workers = 8
		par, err := Run(d, cfg)
		if err != nil {
			t.Fatalf("%s workers=8: %v", d.Name, err)
		}
		if seq.PowerMW != par.PowerMW {
			t.Errorf("%s: PowerMW %v (workers=1) != %v (workers=8)",
				d.Name, seq.PowerMW, par.PowerMW)
		}
		if !reflect.DeepEqual(seq.Selection, par.Selection) {
			t.Errorf("%s: Selection differs across worker counts:\n1: %+v\n8: %+v",
				d.Name, seq.Selection, par.Selection)
		}
		if seq.WDMStats != par.WDMStats {
			t.Errorf("%s: WDMStats %+v (workers=1) != %+v (workers=8)",
				d.Name, seq.WDMStats, par.WDMStats)
		}
		if !reflect.DeepEqual(seq.Connections, par.Connections) {
			t.Errorf("%s: optical connections differ across worker counts", d.Name)
		}
		if !reflect.DeepEqual(seq.Assignment, par.Assignment) {
			t.Errorf("%s: WDM assignment differs across worker counts", d.Name)
		}
	}
}

// TestRunContextMatchesRun is the determinism guarantee of the cancellation
// machinery: with a deadline generous enough to never fire, RunContext must
// produce results bit-identical to Run — the ctx checks may cost time but
// must never alter control flow before the deadline.
func TestRunContextMatchesRun(t *testing.T) {
	for _, d := range determinismCases(t) {
		for _, mode := range []Mode{ModeLR, ModeILP} {
			cfg := DefaultConfig()
			cfg.Mode = mode
			plain, err := Run(d, cfg)
			if err != nil {
				t.Fatalf("%s/%s: Run: %v", d.Name, mode, err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
			bounded, err := RunContext(ctx, d, cfg)
			cancel()
			if err != nil {
				t.Fatalf("%s/%s: RunContext: %v", d.Name, mode, err)
			}
			if bounded.Degraded || bounded.StopReason != StopNone {
				t.Fatalf("%s/%s: unbounded-in-practice run degraded: %q",
					d.Name, mode, bounded.StopReason)
			}
			if plain.PowerMW != bounded.PowerMW {
				t.Errorf("%s/%s: PowerMW %v (Run) != %v (RunContext)",
					d.Name, mode, plain.PowerMW, bounded.PowerMW)
			}
			if !reflect.DeepEqual(plain.Selection, bounded.Selection) {
				t.Errorf("%s/%s: Selection differs between Run and RunContext", d.Name, mode)
			}
			if !reflect.DeepEqual(plain.Connections, bounded.Connections) {
				t.Errorf("%s/%s: optical connections differ", d.Name, mode)
			}
			if !reflect.DeepEqual(plain.Assignment, bounded.Assignment) {
				t.Errorf("%s/%s: WDM assignment differs", d.Name, mode)
			}
			if plain.WDMStats != bounded.WDMStats {
				t.Errorf("%s/%s: WDMStats %+v (Run) != %+v (RunContext)",
					d.Name, mode, plain.WDMStats, bounded.WDMStats)
			}
		}
	}
}
