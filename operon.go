// Package operon is a from-scratch reproduction of OPERON (Liu et al.,
// DAC 2018): optical-electrical power-efficient route synthesis for on-chip
// signals.
//
// The flow follows the paper's Fig. 2: signal processing clusters raw
// signal groups into hyper nets with hyper pins (§3.1); optical-electrical
// co-design derives candidate routes per hyper net over BI1S baseline
// topologies (§3.2); a selection stage picks one candidate per net under
// the detection constraints, either exactly by ILP (§3.3) or quickly by
// Lagrangian relaxation (§3.4); finally the optical connections are placed
// on and assigned to shared WDM waveguides by a min-cost max-flow (§4).
//
// Quick start:
//
//	design, _ := benchgen.Generate(spec)      // or build a signal.Design
//	res, err := operon.Run(design, operon.DefaultConfig())
//	fmt.Println(res.PowerMW, res.WDMStats)
//
// The two published baselines are available as RunElectrical (Streak-style
// all-electrical RSMT routing) and RunOptical (GLOW-style all-optical
// routing with electrical fallback on loss violations).
package operon

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"operon/internal/codesign"
	"operon/internal/geom"
	"operon/internal/obs"
	"operon/internal/optics"
	"operon/internal/optics/bpm"
	"operon/internal/parallel"
	"operon/internal/power"
	"operon/internal/selection"
	"operon/internal/signal"
	"operon/internal/steiner"
	"operon/internal/wdm"
)

// Mode selects the solution-determination algorithm.
type Mode int

const (
	// ModeLR uses the Lagrangian-relaxation algorithm of §3.4 (fast).
	ModeLR Mode = iota
	// ModeILP uses the exact branch-and-bound ILP of §3.3 (slow, optimal
	// within the time limit).
	ModeILP
	// ModeGreedy selects each net's cheapest candidate independently and
	// repairs violations; a cheap lower baseline used in ablations.
	ModeGreedy
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeILP:
		return "ilp"
	case ModeGreedy:
		return "greedy"
	default:
		return "lr"
	}
}

// Config collects every tunable of the flow. Obtain defaults from
// DefaultConfig and override as needed.
type Config struct {
	// Lib is the optical device and loss library.
	Lib optics.Library
	// Elec is the electrical wire power model.
	Elec power.ElectricalModel
	// PinMergeThresholdCM is the hyper-pin agglomeration distance (§3.1.2).
	PinMergeThresholdCM float64
	// MaxBaselines bounds the baseline topologies per hyper net (§3.2).
	MaxBaselines int
	// SubdivideCM splits baseline edges longer than this before co-design
	// labelling, enabling partial-optical routes and optical relays along
	// long connections (0 disables subdivision).
	SubdivideCM float64
	// MaxCandidates caps the co-design DP option lists.
	MaxCandidates int
	// MaxCandidatesPerNet caps the merged candidate set handed to the
	// selection stage (the electrical fallback always survives). Small
	// caps keep the ILP tractable, as the paper's per-net candidate lists
	// are short (Fig. 5(c) shows four).
	MaxCandidatesPerNet int
	// Mode picks the selection algorithm.
	Mode Mode
	// ILPTimeLimit bounds the ILP solve (the paper used 3000 s).
	ILPTimeLimit time.Duration
	// ILPMaxNodes bounds branch-and-bound nodes (0 = library default).
	ILPMaxNodes int
	// LR tunes the Lagrangian solver when Mode is ModeLR.
	LR selection.LROptions
	// Seed drives the deterministic clustering.
	Seed int64
	// SkipWDM disables the WDM placement/assignment stage.
	SkipWDM bool
	// Workers bounds the worker pool shared by every parallel stage of the
	// flow — per-group signal processing, baseline construction, candidate
	// generation, Lagrangian pricing, and WDM arc costing (0 = NumCPU).
	// Results are bit-identical regardless of the worker count.
	Workers int
	// Obs, when non-nil, receives the flow's spans, events, and counters:
	// stage spans ("stage/process", ...), per-hyper-net candidate spans on
	// worker lanes, LR iterate events, ILP node events, and the LP/MCMF/BPM
	// behaviour counters. Nil (the default) compiles the whole
	// instrumentation path down to nil checks — see BenchmarkObsOverhead.
	Obs *obs.Tracer
}

// DefaultConfig returns the paper's experimental setup.
func DefaultConfig() Config {
	return Config{
		Lib:                 optics.DefaultLibrary(),
		Elec:                power.DefaultElectricalModel(),
		PinMergeThresholdCM: 0.1,
		MaxBaselines:        3,
		SubdivideCM:         0.35,
		MaxCandidates:       24,
		MaxCandidatesPerNet: 6,
		Mode:                ModeLR,
		ILPTimeLimit:        60 * time.Second,
	}
}

// StageTimes records per-stage wall-clock durations.
type StageTimes struct {
	// Process is the signal-processing stage (§3.1).
	Process time.Duration
	// Candidates is the co-design candidate generation stage (§3.2).
	Candidates time.Duration
	// Selection is the solution-determination stage (§3.3/§3.4).
	Selection time.Duration
	// WDM is the waveguide placement/assignment stage (§4).
	WDM time.Duration
}

// Total returns the summed stage time.
func (s StageTimes) Total() time.Duration {
	return s.Process + s.Candidates + s.Selection + s.WDM
}

// startStage opens one "stage/..." span on the flow lane and returns its
// stop function. Stopping stores the span's own duration into slot, which
// keeps StageTimes an exact derived view of the recorded spans, and records
// the same duration into the tracer's per-stage latency histogram (so a
// long-lived tracer — a serving process — accumulates stage latency
// distributions across runs, not just the last run's means). With no tracer
// attached it degrades to a plain wall-clock measurement.
func startStage(t *obs.Tracer, name string, slot *time.Duration) func(attrs ...obs.Attr) {
	if t == nil {
		start := time.Now()
		return func(...obs.Attr) { *slot = time.Since(start) }
	}
	sp := t.Span(name, obs.LaneFlow)
	h := t.Histogram(name)
	return func(attrs ...obs.Attr) {
		d := sp.End(attrs...)
		*slot = d
		h.RecordDuration(d)
	}
}

// Result is the outcome of one flow run.
type Result struct {
	// Design echoes the input design's name.
	Design string
	// Flow names the pipeline that produced the result: "operon-lr",
	// "operon-ilp", "electrical", "optical", ...
	Flow string
	// HyperNets is the signal-processing output (§3.1).
	HyperNets []signal.HyperNet
	// Nets holds the candidate lists handed to the selection stage.
	Nets []selection.Net
	// Selection is the chosen candidate per net with its evaluation.
	Selection selection.Selection
	// PowerMW is the total power of the selected routes.
	PowerMW float64
	// ILP carries exact-solver diagnostics when ModeILP ran.
	ILP *selection.ILPResult
	// LR carries Lagrangian diagnostics when ModeLR ran (or when the ILP
	// degraded onto the LR fallback).
	LR *selection.LRResult
	// Connections is the optical connection set extracted from the
	// selection (empty when SkipWDM or no optical connections).
	Connections []wdm.Connection
	// Placement is the §4.2 waveguide placement of Connections.
	Placement wdm.Placement
	// Assignment is the §4.3 wavelength assignment of Connections.
	Assignment wdm.Assignment
	// WDMStats summarises the WDM pipeline (including its Degraded flag).
	WDMStats wdm.Stats
	// Degraded reports that the run hit a time budget (context deadline,
	// cancellation, or the deprecated ILPTimeLimit) and took a fallback rung
	// of the degradation ladder — LR incumbent instead of a finished ILP,
	// electrical-only routing instead of co-design candidates, or a
	// placement-derived WDM assignment instead of the min-cost flow. The
	// Selection is feasible either way; Degraded only flags that it may be
	// weaker than an unbounded run's.
	Degraded bool
	// StopReason says why a degraded run stopped early: StopDeadline or
	// StopCanceled. StopNone for complete runs.
	StopReason StopReason
	// Times is a derived view of the stage spans: each entry is exactly the
	// duration of the corresponding "stage/..." span recorded on Obs (or a
	// plain wall-clock measurement when no tracer is attached), so
	// Times.Total() equals the sum of the recorded stage spans.
	Times StageTimes
	// Obs echoes Config.Obs so callers holding only the Result can read the
	// counter snapshot of the run; nil when the run was uninstrumented.
	Obs *obs.Tracer
}

// Stats returns the hyper-net statistics of the run (Table 1's #HNet and
// #HPin columns).
func (r *Result) Stats() signal.Stats { return signal.Summarize(r.HyperNets) }

// Run executes the full OPERON flow on a design. It is RunContext with
// context.Background(): no deadline, no cancellation, no degradation.
func Run(d signal.Design, cfg Config) (*Result, error) {
	return RunContext(context.Background(), d, cfg)
}

// RunContext executes the full OPERON flow on a design under a context.
//
// Cancelling ctx (or letting its deadline expire) never errors the run out:
// the flow degrades along a fixed ladder and still returns a feasible
// routing, with Result.Degraded and Result.StopReason recording what
// happened. The rungs, from best to worst:
//
//  1. ILP cut short → the best branch-and-bound incumbent, cross-checked
//     against a Lagrangian-relaxation solve (the cheaper feasible selection
//     wins) — the paper's own ">3000 s" fallback.
//  2. LR cut short → the repaired selection of the last finished iteration.
//  3. Candidate generation cut short → all-electrical RSMT routing for every
//     hyper net (the floor; always feasible, runs even under an expired ctx).
//
// The WDM stage degrades independently: cancelled mid-assignment it falls
// back to the placement-derived wavelength assignment (wdm.Stats.Degraded).
//
// Cancellation is polled only at deterministic points (iteration and node
// boundaries, every few simplex pivots), so a run that completes before its
// deadline is bit-identical to Run on the same inputs. Each degradation
// emits a flow/degraded event and bumps the flow.degraded counter on
// Config.Obs. A nil ctx means context.Background().
func RunContext(ctx context.Context, d signal.Design, cfg Config) (*Result, error) {
	return RunContextWith(ctx, d, cfg, nil)
}

// RunContextWith is RunContext with a caller-held Workspace: the per-worker
// solver scratch survives across runs, so a caller solving many designs (or
// a serving queue slot) amortises candidate-generation allocation to near
// zero. A nil ws uses a run-local workspace (scratch still reused across
// nets within the run). The workspace never affects results — only
// allocation behaviour — and must not be shared by concurrent runs.
func RunContextWith(ctx context.Context, d signal.Design, cfg Config, ws *Workspace) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	res := &Result{Design: d.Name, Flow: "operon-" + cfg.Mode.String(), Obs: cfg.Obs}
	bpmHits0, bpmMisses0 := bpm.CacheCounters()
	var bpmSim0 obs.HistogramSnapshot
	if cfg.Obs != nil {
		bpmSim0 = bpm.SimDurations()
	}
	defer res.foldBPMCounters(cfg, bpmHits0, bpmMisses0, bpmSim0)

	stop := startStage(cfg.Obs, "stage/process", &res.Times.Process)
	hnets, err := process(d, cfg)
	if err != nil {
		return nil, err
	}
	res.HyperNets = hnets
	stop(obs.I("hyper_nets", len(hnets)))

	if ctx.Err() != nil {
		// The budget was gone before candidate generation even started:
		// straight to the floor.
		if err := res.degradeToElectricalFloor(ctx, cfg, ws); err != nil {
			return nil, err
		}
		return res, nil
	}

	stop = startStage(cfg.Obs, "stage/candidates", &res.Times.Candidates)
	nets, err := buildCoDesignNets(ctx, hnets, cfg, ws.arenaOf())
	if err != nil {
		if ctx.Err() != nil {
			stop(obs.I("nets", 0), obs.S("aborted", "context"))
			if err := res.degradeToElectricalFloor(ctx, cfg, ws); err != nil {
				return nil, err
			}
			return res, nil
		}
		return nil, err
	}
	res.Nets = nets
	stop(obs.I("nets", len(nets)))

	inst, err := selection.NewInstance(nets, cfg.Lib)
	if err != nil {
		return nil, err
	}
	stop = startStage(cfg.Obs, "stage/selection", &res.Times.Selection)
	if err := runSelection(ctx, cfg, ws, inst, lrOptions(ctx, cfg), res); err != nil {
		return nil, err
	}
	stop(obs.S("mode", cfg.Mode.String()))
	res.PowerMW = res.Selection.PowerMW

	if !cfg.SkipWDM {
		stop = startStage(cfg.Obs, "stage/wdm", &res.Times.WDM)
		if err := res.assignWDMs(ctx, cfg); err != nil {
			return nil, err
		}
		if res.WDMStats.Degraded {
			res.markDegraded(ctx, cfg, "wdm")
		}
		stop(obs.I("wdms_used", res.WDMStats.FinalWDMs))
	}
	return res, nil
}

// runSelection runs the configured solution-determination algorithm on inst
// and fills res.Selection (plus the ILP/LR diagnostics), marking res degraded
// when a solver hit its budget. lrOpt carries the resolved LR options — the
// cold path passes lrOptions(ctx, cfg); Session.Resolve may add an opt-in
// multiplier warm start on top. Shared by both so the selection trajectory is
// identical by construction.
func runSelection(ctx context.Context, cfg Config, ws *Workspace, inst *selection.Instance, lrOpt selection.LROptions, res *Result) error {
	switch cfg.Mode {
	case ModeILP:
		ir, err := selection.SolveILP(inst, selection.ILPOptions{
			Ctx: ctx, TimeLimit: cfg.ILPTimeLimit, MaxNodes: cfg.ILPMaxNodes,
			Workers: cfg.Workers, Arena: ws.arenaOf(), Obs: cfg.Obs,
		})
		if err != nil {
			return err
		}
		res.ILP = &ir
		res.Selection = ir.Selection
		if ir.TimedOut {
			// Rung 1 of the ladder: the paper falls back to the Lagrangian
			// relaxation when the ILP exceeds its budget. Both selections are
			// feasible; keep the cheaper one (ties go to the incumbent).
			lr, err := selection.SolveLR(inst, lrOpt)
			if err != nil {
				return err
			}
			res.LR = &lr
			if lr.Selection.PowerMW < ir.Selection.PowerMW {
				res.Selection = lr.Selection
			}
			res.markDegraded(ctx, cfg, "selection")
		}
	case ModeGreedy:
		sel, err := inst.GreedyIndependent()
		if err != nil {
			return err
		}
		res.Selection = sel
	default:
		lr, err := selection.SolveLR(inst, lrOpt)
		if err != nil {
			return err
		}
		res.LR = &lr
		res.Selection = lr.Selection
		if lr.Stopped {
			res.markDegraded(ctx, cfg, "selection")
		}
	}
	return nil
}

// lrOptions resolves Config.LR for a flow-level solve: the flow context
// bounds the solve unless the caller pinned an explicit one, and worker
// count and tracer default to the flow's.
func lrOptions(ctx context.Context, cfg Config) selection.LROptions {
	lrOpt := cfg.LR
	if lrOpt.Ctx == nil {
		lrOpt.Ctx = ctx
	}
	if lrOpt.Workers == 0 {
		lrOpt.Workers = cfg.Workers
	}
	if lrOpt.Obs == nil {
		lrOpt.Obs = cfg.Obs
	}
	return lrOpt
}

// foldBPMCounters adds the process-global BPM simulation-cache deltas of
// this run to the tracer's bpm.cache_hits / bpm.cache_misses counters, and
// merges the window's uncached-propagation latency delta into the tracer's
// bpm/simulate histogram. The cache is process-wide, so concurrent
// instrumented runs each fold in whatever traffic happened during their
// window.
func (r *Result) foldBPMCounters(cfg Config, hits0, misses0 int64, sim0 obs.HistogramSnapshot) {
	if cfg.Obs == nil {
		return
	}
	hits, misses := bpm.CacheCounters()
	cfg.Obs.Counter("bpm.cache_hits").Add(hits - hits0)
	cfg.Obs.Counter("bpm.cache_misses").Add(misses - misses0)
	if delta := bpm.SimDurations().Sub(sim0); delta.Count > 0 {
		// Same fixed default bounds on both sides, so the merge never fails.
		_ = cfg.Obs.Histogram("bpm/simulate").Merge(delta)
	}
}

// RunElectrical is the Streak-style baseline [14]: every hyper net is
// routed with an electrical rectilinear Steiner tree; power follows Eq. (6).
func RunElectrical(d signal.Design, cfg Config) (*Result, error) {
	return RunElectricalContext(context.Background(), d, cfg)
}

// RunElectricalContext is RunElectrical under a context — offered for API
// symmetry with RunContext. The electrical baseline is itself the flow's
// degradation floor, so it always runs to completion regardless of ctx and
// never sets Result.Degraded: aborting it could only return an error where
// a cheap feasible routing was available. A nil ctx means
// context.Background().
func RunElectricalContext(ctx context.Context, d signal.Design, cfg Config) (*Result, error) {
	_ = ctx // the floor ignores cancellation by design; see doc comment
	res := &Result{Design: d.Name, Flow: "electrical", Obs: cfg.Obs}
	stop := startStage(cfg.Obs, "stage/process", &res.Times.Process)
	hnets, err := process(d, cfg)
	if err != nil {
		return nil, err
	}
	res.HyperNets = hnets
	stop(obs.I("hyper_nets", len(hnets)))

	stop = startStage(cfg.Obs, "stage/candidates", &res.Times.Candidates)
	ws := NewWorkspace()
	nets := make([]selection.Net, len(hnets))
	if err := parallel.ForEachScratchContext(context.Background(), ws.arenaOf(), len(hnets), cfg.Workers, func(w int, s *parallel.Scratch, i int) error {
		var sp obs.Span
		if cfg.Obs != nil {
			sp = cfg.Obs.Span("net/electrical", obs.WorkerLane(w), obs.I("net", i))
		}
		cand, err := electricalCandidate(hnets[i], cfg, grabScratch(s, cfg.Obs))
		if err != nil {
			return err
		}
		nets[i] = selection.Net{Bits: hnets[i].BitCount(), Cands: []codesign.Candidate{cand}}
		if cfg.Obs != nil {
			sp.End()
		}
		return nil
	}); err != nil {
		return nil, err
	}
	res.Nets = nets
	stop(obs.I("nets", len(nets)))

	inst, err := selection.NewInstance(nets, cfg.Lib)
	if err != nil {
		return nil, err
	}
	sel, err := inst.AllElectrical()
	if err != nil {
		return nil, err
	}
	res.Selection = sel
	res.PowerMW = sel.PowerMW
	return res, nil
}

// RunOptical is the GLOW-style baseline [4]: every hyper net is routed
// fully optically on its Steiner baseline; nets that cannot meet the loss
// budget fall back to electrical wires. No optical-electrical mixing.
func RunOptical(d signal.Design, cfg Config) (*Result, error) {
	return RunOpticalContext(context.Background(), d, cfg)
}

// RunOpticalContext is RunOptical under a context, with the same
// degradation ladder as RunContext: candidate generation cut short drops to
// the all-electrical floor, and a WDM assignment cut short falls back to
// the placement-derived one. The selection step itself (evaluate + repair)
// is cheap and always completes. A nil ctx means context.Background().
func RunOpticalContext(ctx context.Context, d signal.Design, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res := &Result{Design: d.Name, Flow: "optical", Obs: cfg.Obs}
	stop := startStage(cfg.Obs, "stage/process", &res.Times.Process)
	hnets, err := process(d, cfg)
	if err != nil {
		return nil, err
	}
	res.HyperNets = hnets
	stop(obs.I("hyper_nets", len(hnets)))

	if ctx.Err() != nil {
		if err := res.degradeToElectricalFloor(ctx, cfg, nil); err != nil {
			return nil, err
		}
		return res, nil
	}

	stop = startStage(cfg.Obs, "stage/candidates", &res.Times.Candidates)
	ws := NewWorkspace()
	trees, err := baselineTrees(ctx, hnets, cfg, ws.arenaOf())
	if err != nil {
		if ctx.Err() == nil {
			return nil, err
		}
		stop(obs.I("nets", 0), obs.S("aborted", "context"))
		if err := res.degradeToElectricalFloor(ctx, cfg, ws); err != nil {
			return nil, err
		}
		return res, nil
	}
	envs := buildEnvs(hnets, trees)
	nets := make([]selection.Net, len(hnets))
	if err := parallel.ForEachScratchContext(ctx, ws.arenaOf(), len(hnets), cfg.Workers, func(w int, s *parallel.Scratch, i int) error {
		var sp obs.Span
		if cfg.Obs != nil {
			sp = cfg.Obs.Span("net/optical", obs.WorkerLane(w), obs.I("net", i))
		}
		scr := grabScratch(s, cfg.Obs)
		in := codesign.Input{
			Tree: trees[i][0],
			Bits: hnets[i].BitCount(),
			Lib:  cfg.Lib,
			Elec: cfg.Elec,
			Env:  envs[i],
		}
		allO := scr.fillLabels(len(trees[i][0].Edges), codesign.Optical)
		var cands []codesign.Candidate
		if cand, feasible := codesign.EvaluateWS(in, allO, scr.codesign); feasible {
			cands = append(cands, cand)
		}
		fallback, err := electricalCandidate(hnets[i], cfg, scr)
		if err != nil {
			return err
		}
		cands = append(cands, fallback)
		nets[i] = selection.Net{Bits: hnets[i].BitCount(), Cands: cands}
		if cfg.Obs != nil {
			sp.End(obs.I("cands", len(cands)))
		}
		return nil
	}); err != nil {
		if ctx.Err() == nil {
			return nil, err
		}
		stop(obs.I("nets", 0), obs.S("aborted", "context"))
		if err := res.degradeToElectricalFloor(ctx, cfg, ws); err != nil {
			return nil, err
		}
		return res, nil
	}
	res.Nets = nets
	stop(obs.I("nets", len(nets)))

	inst, err := selection.NewInstance(nets, cfg.Lib)
	if err != nil {
		return nil, err
	}
	stop = startStage(cfg.Obs, "stage/selection", &res.Times.Selection)
	// GLOW semantics: optical wherever feasible (candidate 0), electrical
	// only on loss violation (Repair demotes the violators).
	choice := make([]int, len(nets))
	sel, err := inst.Evaluate(choice)
	if err != nil {
		return nil, err
	}
	sel, err = inst.Repair(sel)
	if err != nil {
		return nil, err
	}
	res.Selection = sel
	res.PowerMW = sel.PowerMW
	stop(obs.I("violations", sel.Violations))

	if !cfg.SkipWDM {
		stop = startStage(cfg.Obs, "stage/wdm", &res.Times.WDM)
		if err := res.assignWDMs(ctx, cfg); err != nil {
			return nil, err
		}
		if res.WDMStats.Degraded {
			res.markDegraded(ctx, cfg, "wdm")
		}
		stop(obs.I("wdms_used", res.WDMStats.FinalWDMs))
	}
	return res, nil
}

// process runs signal processing; the caller times it via startStage.
func process(d signal.Design, cfg Config) ([]signal.HyperNet, error) {
	if err := cfg.Lib.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Elec.Validate(); err != nil {
		return nil, err
	}
	hnets, err := signal.Process(d, signal.ProcessConfig{
		WDMCapacity:         cfg.Lib.WDMCapacity,
		PinMergeThresholdCM: cfg.PinMergeThresholdCM,
		Seed:                cfg.Seed,
		Workers:             cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	if len(hnets) == 0 {
		return nil, fmt.Errorf("operon: design %q produced no hyper nets", d.Name)
	}
	return hnets, nil
}

// baselineTrees builds the optical baseline topologies per hyper net on the
// per-worker Steiner workspaces of arena (the returned trees own their
// memory — workspace scratch never escapes). The only possible error is
// ctx's: cancellation stops dispatch and surfaces ctx.Err(), on which
// callers degrade to the electrical floor.
func baselineTrees(ctx context.Context, hnets []signal.HyperNet, cfg Config, arena *parallel.Arena) ([][]steiner.Tree, error) {
	max := cfg.MaxBaselines
	if max <= 0 {
		max = 3
	}
	trees := make([][]steiner.Tree, len(hnets))
	err := parallel.ForEachScratchContext(ctx, arena, len(hnets), cfg.Workers, func(w int, s *parallel.Scratch, i int) error {
		scr := grabScratch(s, cfg.Obs)
		trees[i] = steiner.BaselinesWS(hnets[i].Terminals(), steiner.Euclidean, max, scr.steiner)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return trees, nil
}

// buildEnvs collects, for every hyper net, the primary-baseline optical
// segments of the other hyper nets whose bounding boxes overlap — the
// crossing-estimation environment for the co-design DP.
func buildEnvs(hnets []signal.HyperNet, trees [][]steiner.Tree) [][]geom.Segment {
	envs, _ := buildEnvsContrib(hnets, trees)
	return envs
}

// buildEnvsContrib is buildEnvs returning, alongside each net's environment,
// the ascending list of net indices that contributed segments to it. A net's
// environment is exactly the concatenation of its contributors' primary-tree
// segments in index order, so two solves whose contributor lists map to each
// other net-for-net (with identical trees) see byte-identical environments —
// the invariant incremental re-synthesis uses to decide candidate reuse.
func buildEnvsContrib(hnets []signal.HyperNet, trees [][]steiner.Tree) ([][]geom.Segment, [][]int) {
	type netGeom struct {
		segs []geom.Segment
		box  geom.Rect
	}
	geoms := make([]netGeom, len(hnets))
	for i := range hnets {
		segs := trees[i][0].Segments()
		g := netGeom{segs: segs}
		if len(segs) > 0 {
			g.box = segs[0].BBox()
			for _, s := range segs[1:] {
				g.box = g.box.Union(s.BBox())
			}
		}
		geoms[i] = g
	}
	envs := make([][]geom.Segment, len(hnets))
	contribs := make([][]int, len(hnets))
	for i := range hnets {
		for j := range hnets {
			if i == j || len(geoms[j].segs) == 0 || len(geoms[i].segs) == 0 {
				continue
			}
			if geoms[i].box.Overlaps(geoms[j].box) {
				envs[i] = append(envs[i], geoms[j].segs...)
				contribs[i] = append(contribs[i], j)
			}
		}
	}
	return envs, contribs
}

// buildCoDesignNets generates the full OPERON candidate sets. Cancelling
// ctx stops dispatch of further nets (in-flight ones finish — the pool's
// deterministic drain) and returns ctx.Err(); the caller then degrades to
// the electrical floor.
func buildCoDesignNets(ctx context.Context, hnets []signal.HyperNet, cfg Config, arena *parallel.Arena) ([]selection.Net, error) {
	blStart := time.Now()
	trees, err := baselineTrees(ctx, hnets, cfg, arena)
	if err != nil {
		return nil, err
	}
	// The baseline-topology sweep is the first half of the candidates
	// stage; its own histogram separates Steiner construction from the
	// co-design DP in the serving-side latency breakdown.
	cfg.Obs.Histogram("stage/baselines").RecordDuration(time.Since(blStart))
	envs := buildEnvs(hnets, trees)
	nets := make([]selection.Net, len(hnets))
	netHist := cfg.Obs.Histogram("net/candidates")
	// Candidate generation is the widest fan-out of the flow; each net is
	// tagged with the worker lane that produced it so the trace shows the
	// pool's parallel tracks. The lane feeds telemetry only — results stay
	// bit-identical across worker counts, with or without arena reuse.
	err = parallel.ForEachScratchContext(ctx, arena, len(hnets), cfg.Workers, func(w int, s *parallel.Scratch, i int) error {
		var sp obs.Span
		if cfg.Obs != nil {
			sp = cfg.Obs.Span("net/candidates", obs.WorkerLane(w), obs.I("net", i))
		}
		scr := grabScratch(s, cfg.Obs)
		net, err := generateNetCandidates(i, hnets[i], trees[i], envs[i], cfg, scr)
		if err != nil {
			return err
		}
		nets[i] = net
		if cfg.Obs != nil {
			netHist.RecordDuration(sp.End(obs.I("cands", len(nets[i].Cands))))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return nets, nil
}

// generateNetCandidates builds hyper net i's merged candidate list from its
// baseline topologies and crossing environment: the co-design DP per tree
// (subdividing loss-pressed ones), dominated-candidate thinning, and the
// RSMT electrical fallback. Pure in everything but scratch — the same
// (hn, trees, env, cfg) always yields the same candidates, which is what
// lets incremental re-synthesis skip it for untouched nets.
func generateNetCandidates(i int, hn signal.HyperNet, trees []steiner.Tree, env []geom.Segment, cfg Config, scr *workerScratch) (selection.Net, error) {
	bits := hn.BitCount()
	var cands []codesign.Candidate
	for _, tr := range trees {
		// Subdivide only loss-pressed topologies: relays and partial-
		// optical routes pay off when the detection budget binds, and
		// unconditional subdivision inflates every net's candidate set
		// (and with it the ILP).
		if cfg.SubdivideCM > 0 && lossPressed(tr, env, cfg.Lib, len(hn.Pins)-1) {
			tr = steiner.Subdivide(tr, cfg.SubdivideCM)
		}
		cs, err := codesign.GenerateWS(codesign.Input{
			Tree:       tr,
			Bits:       bits,
			Lib:        cfg.Lib,
			Elec:       cfg.Elec,
			Env:        env,
			MaxOptions: cfg.MaxCandidates,
		}, scr.codesign)
		if err != nil {
			return selection.Net{}, fmt.Errorf("operon: net %d: %w", i, err)
		}
		cands = append(cands, cs...)
	}
	// Replace the per-tree electrical fallbacks with a single RSMT-based
	// one (proper rectilinear Steiner tree, not the Euclidean baseline
	// re-measured in the Manhattan metric).
	kept := cands[:0]
	for _, c := range cands {
		if !c.AllElectrical {
			kept = append(kept, c)
		}
	}
	fallback, err := electricalCandidate(hn, cfg, scr)
	if err != nil {
		return selection.Net{}, err
	}
	kept = thinCandidates(kept, cfg.MaxCandidatesPerNet-1)
	return selection.Net{Bits: bits, Cands: append(kept, fallback)}, nil
}

// lossPressed estimates whether an all-optical implementation of the tree
// would approach the detection budget: propagation over the whole tree,
// crossing loss against the environment, and a single splitting stage per
// sink. Nets above 70%% of l_m get subdivided topologies.
func lossPressed(tr steiner.Tree, env []geom.Segment, lib optics.Library, sinks int) bool {
	loss := lib.PropagationLossDB(tr.EuclideanLength())
	for _, s := range tr.Segments() {
		loss += lib.CrossingLossDB(geom.CrossingsWithSegment(s, env))
	}
	loss += optics.SplittingLossDB(sinks)
	return loss > 0.7*lib.MaxLossDB
}

// thinCandidates reduces a merged candidate list to at most max entries:
// dominated candidates (in power and worst fixed loss) are dropped first,
// then the Pareto front is subsampled evenly along its power ordering so
// loss diversity survives. max <= 0 keeps everything.
func thinCandidates(cands []codesign.Candidate, max int) []codesign.Candidate {
	if max <= 0 || len(cands) <= max {
		return cands
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].PowerMW < cands[j].PowerMW })
	var front []codesign.Candidate
	bestLoss := math.Inf(1)
	for _, c := range cands {
		// Power-ascending scan: keep only candidates that strictly improve
		// the best loss seen so far (the Pareto front).
		if c.MaxFixedLossDB < bestLoss-1e-12 || len(front) == 0 {
			front = append(front, c)
			if c.MaxFixedLossDB < bestLoss {
				bestLoss = c.MaxFixedLossDB
			}
		}
	}
	if len(front) <= max {
		return front
	}
	if max == 1 {
		return front[:1] // the minimum-power candidate
	}
	out := make([]codesign.Candidate, 0, max)
	for k := 0; k < max; k++ {
		idx := k * (len(front) - 1) / (max - 1)
		out = append(out, front[idx])
	}
	return out
}

// electricalCandidate builds the a_ie fallback: an all-electrical RSMT
// route evaluated under Eq. (6), on the calling worker's scratch.
func electricalCandidate(hn signal.HyperNet, cfg Config, scr *workerScratch) (codesign.Candidate, error) {
	tree := steiner.BI1SWS(hn.Terminals(), steiner.Rectilinear, steiner.BI1SConfig{}, scr.steiner)
	in := codesign.Input{Tree: tree, Bits: hn.BitCount(), Lib: cfg.Lib, Elec: cfg.Elec}
	cand, _ := codesign.EvaluateWS(in, scr.fillLabels(len(tree.Edges), codesign.Electrical), scr.codesign)
	if !cand.AllElectrical {
		return codesign.Candidate{}, fmt.Errorf("operon: electrical fallback is not all-electrical")
	}
	return cand, nil
}

// extractConnections turns a selection into the optical connection set the
// WDM stage places: per chosen candidate, consecutive collinear optical
// chunks (from edge subdivision) merge into one physical waveguide. Pure, so
// two solves with identical nets and choices extract identical connections.
func extractConnections(nets []selection.Net, choice []int) []wdm.Connection {
	var conns []wdm.Connection
	for i, j := range choice {
		for _, seg := range geom.MergeCollinear(nets[i].Cands[j].OpticalSegs) {
			conns = append(conns, wdm.Connection{Seg: seg, Bits: nets[i].Bits, Net: i})
		}
	}
	return conns
}

// assignWDMs extracts the optical connections of the selection and runs
// the §4 WDM pipeline under ctx. Cancellation never errors: wdm.RunContext
// falls back to the placement-derived assignment and flags it in
// Stats.Degraded, which the caller folds into Result.Degraded.
func (r *Result) assignWDMs(ctx context.Context, cfg Config) error {
	r.Connections = extractConnections(r.Nets, r.Selection.Choice)
	pl, as, st, err := wdm.RunContext(ctx, r.Connections, wdm.Config{
		Capacity:        cfg.Lib.WDMCapacity,
		MinSpacingCM:    cfg.Lib.CrosstalkMinDistCM,
		MaxAssignDistCM: cfg.Lib.AssignMaxDistCM,
		Workers:         cfg.Workers,
		Obs:             cfg.Obs,
	})
	if err != nil {
		return err
	}
	r.Placement = pl
	r.Assignment = as
	r.WDMStats = st
	return nil
}
