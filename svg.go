package operon

import (
	"fmt"
	"io"

	"operon/internal/geom"
)

// svgScalePxPerCM fixes the rendering scale of WriteSVG.
const svgScalePxPerCM = 200.0

// WriteSVG renders a routed result as an SVG layout: the die outline, the
// electrical wires (implemented as L-shaped Manhattan routes), the optical
// waveguide segments, the shared WDM waveguides of the assignment stage,
// and the EO/OE conversion sites. The drawing is deterministic, so golden
// comparisons are stable.
func WriteSVG(w io.Writer, res *Result, die geom.Rect, cfg Config) error {
	if res == nil || len(res.Nets) == 0 || len(res.Selection.Choice) != len(res.Nets) {
		return fmt.Errorf("operon: result has no complete selection")
	}
	if die.Width() <= 0 || die.Height() <= 0 {
		return fmt.Errorf("operon: die %v has no area", die)
	}
	s := svgWriter{w: w, die: die}
	s.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		die.Width()*svgScalePxPerCM, die.Height()*svgScalePxPerCM,
		die.Width()*svgScalePxPerCM, die.Height()*svgScalePxPerCM)
	s.printf(`<rect x="0" y="0" width="%.0f" height="%.0f" fill="#fcfcf8" stroke="#333" stroke-width="2"/>`+"\n",
		die.Width()*svgScalePxPerCM, die.Height()*svgScalePxPerCM)

	// Shared WDM waveguides (under the routes).
	s.printf(`<g id="wdms" stroke="#9fd4ff" stroke-width="5" opacity="0.5">` + "\n")
	used := map[int]bool{}
	for _, shares := range res.Assignment.Shares {
		for _, sh := range shares {
			used[sh.WDM] = true
		}
	}
	for wi, wd := range res.Placement.WDMs {
		if !used[wi] {
			continue
		}
		if wd.Horizontal {
			a := geom.Point{X: die.Lo.X, Y: wd.CoordCM}
			b := geom.Point{X: die.Hi.X, Y: wd.CoordCM}
			s.line(a, b)
		} else {
			a := geom.Point{X: wd.CoordCM, Y: die.Lo.Y}
			b := geom.Point{X: wd.CoordCM, Y: die.Hi.Y}
			s.line(a, b)
		}
	}
	s.printf("</g>\n")

	// Electrical wires as L-shaped Manhattan routes.
	s.printf(`<g id="electrical" stroke="#e08214" stroke-width="1.5" fill="none">` + "\n")
	for i, j := range res.Selection.Choice {
		for _, seg := range res.Nets[i].Cands[j].ElecSegs {
			corner := geom.Point{X: seg.B.X, Y: seg.A.Y}
			s.line(seg.A, corner)
			s.line(corner, seg.B)
		}
	}
	s.printf("</g>\n")

	// Optical waveguide segments.
	s.printf(`<g id="optical" stroke="#2166ac" stroke-width="2" fill="none">` + "\n")
	for i, j := range res.Selection.Choice {
		for _, seg := range geom.MergeCollinear(res.Nets[i].Cands[j].OpticalSegs) {
			s.line(seg.A, seg.B)
		}
	}
	s.printf("</g>\n")

	// Conversion sites.
	s.printf(`<g id="modulators" fill="#1a9850" stroke="none">` + "\n")
	for i, j := range res.Selection.Choice {
		for _, p := range res.Nets[i].Cands[j].ModSites {
			s.circle(p, 4)
		}
	}
	s.printf("</g>\n")
	s.printf(`<g id="detectors" fill="#d73027" stroke="none">` + "\n")
	for i, j := range res.Selection.Choice {
		for _, p := range res.Nets[i].Cands[j].DetSites {
			s.circle(p, 4)
		}
	}
	s.printf("</g>\n")
	s.printf("</svg>\n")
	return s.err
}

// svgWriter accumulates the first write error so call sites stay linear.
type svgWriter struct {
	w   io.Writer
	die geom.Rect
	err error
}

func (s *svgWriter) printf(format string, args ...interface{}) {
	if s.err != nil {
		return
	}
	_, s.err = fmt.Fprintf(s.w, format, args...)
}

// px maps a die coordinate to SVG pixels (y axis flipped: SVG grows down).
func (s *svgWriter) px(p geom.Point) (float64, float64) {
	return (p.X - s.die.Lo.X) * svgScalePxPerCM,
		(s.die.Hi.Y - p.Y) * svgScalePxPerCM
}

func (s *svgWriter) line(a, b geom.Point) {
	x1, y1 := s.px(a)
	x2, y2 := s.px(b)
	s.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n", x1, y1, x2, y2)
}

func (s *svgWriter) circle(p geom.Point, r float64) {
	x, y := s.px(p)
	s.printf(`<circle cx="%.1f" cy="%.1f" r="%.1f"/>`+"\n", x, y, r)
}
