package operon

import (
	"context"

	"operon/internal/codesign"
	"operon/internal/obs"
	"operon/internal/parallel"
	"operon/internal/selection"
)

// StopReason explains why a flow run stopped before completing its full
// pipeline. It is set on Result alongside Degraded and maps the paper's
// ">3000 s" timeout rows onto machine-readable values (see EXPERIMENTS.md).
type StopReason string

const (
	// StopNone means the run completed its full pipeline (Degraded=false).
	StopNone StopReason = ""
	// StopDeadline means a time budget expired: the context deadline, the
	// deprecated Config.ILPTimeLimit, or the branch-and-bound node budget.
	StopDeadline StopReason = "deadline"
	// StopCanceled means the context was cancelled outright (shutdown or
	// caller abort rather than a deadline).
	StopCanceled StopReason = "canceled"
)

// stopReasonFor derives the StopReason for a degradation observed under
// ctx: explicit cancellation wins; everything else (ctx deadline, the
// deprecated ILP time limit, the node budget) is a deadline.
func stopReasonFor(ctx context.Context) StopReason {
	if ctx.Err() == context.Canceled {
		return StopCanceled
	}
	return StopDeadline
}

// markDegraded records that stage degraded the run and why, emitting the
// flow/degraded event and the flow.degraded counter. Only the first
// degradation sets the StopReason (later stages degrade for the same root
// cause); the event is emitted per degrading stage so traces show the full
// ladder.
func (r *Result) markDegraded(ctx context.Context, cfg Config, stage string) {
	reason := stopReasonFor(ctx)
	if !r.Degraded {
		r.Degraded = true
		r.StopReason = reason
	}
	cfg.Obs.Counter("flow.degraded").Inc()
	if cfg.Obs != nil {
		cfg.Obs.Event("flow/degraded", obs.LaneFlow,
			obs.S("stage", stage), obs.S("reason", string(reason)))
	}
}

// degradeToElectricalFloor is the bottom rung of the degradation ladder: it
// routes every hyper net of res (which must already carry HyperNets) with
// its all-electrical RSMT fallback and selects that candidate everywhere.
// The result is always feasible — electrical wires have no detection
// constraint — and cheap enough to compute that the floor deliberately
// ignores the (already cancelled) context; an expired deadline still yields
// a legal routing instead of an error. The WDM stage is skipped: an
// all-electrical selection has no optical connections. Candidate and
// selection stage spans are re-recorded for the floor work, so StageTimes
// reflects the path actually taken. The floor reuses the run's workspace (a
// nil ws means throwaway scratch) while keeping its ignore-the-context
// semantics: the pool runs under context.Background().
func (r *Result) degradeToElectricalFloor(ctx context.Context, cfg Config, ws *Workspace) error {
	r.markDegraded(ctx, cfg, "candidates")

	stop := startStage(cfg.Obs, "stage/candidates", &r.Times.Candidates)
	hnets := r.HyperNets
	nets := make([]selection.Net, len(hnets))
	if err := parallel.ForEachScratchContext(context.Background(), ws.arenaOf(), len(hnets), cfg.Workers, func(w int, s *parallel.Scratch, i int) error {
		var sp obs.Span
		if cfg.Obs != nil {
			sp = cfg.Obs.Span("net/electrical-floor", obs.WorkerLane(w), obs.I("net", i))
		}
		cand, err := electricalCandidate(hnets[i], cfg, grabScratch(s, cfg.Obs))
		if err != nil {
			return err
		}
		nets[i] = selection.Net{Bits: hnets[i].BitCount(), Cands: []codesign.Candidate{cand}}
		if cfg.Obs != nil {
			sp.End()
		}
		return nil
	}); err != nil {
		return err
	}
	r.Nets = nets
	stop(obs.I("nets", len(nets)), obs.S("degraded", "electrical-floor"))

	inst, err := selection.NewInstance(nets, cfg.Lib)
	if err != nil {
		return err
	}
	stop = startStage(cfg.Obs, "stage/selection", &r.Times.Selection)
	sel, err := inst.AllElectrical()
	if err != nil {
		return err
	}
	r.Selection = sel
	r.PowerMW = sel.PowerMW
	stop(obs.S("mode", "electrical-floor"))
	return nil
}
