package operon

import (
	"fmt"
	"strings"
	"testing"
)

func TestReport(t *testing.T) {
	res := verifyDesign(t)
	out := res.Report(5)
	for _, want := range []string{"route report", "class", "totals:", "mW"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Truncation marker appears when nets exceed the cap.
	if len(res.Nets) > 5 && !strings.Contains(out, "more nets") {
		t.Error("report not truncated")
	}
	// Full report lists every net.
	full := res.Report(0)
	if strings.Contains(full, "more nets") {
		t.Error("untruncated report claims truncation")
	}
	lines := strings.Count(full, "\n")
	if lines < len(res.Nets)+3 {
		t.Errorf("full report has %d lines for %d nets", lines, len(res.Nets))
	}
}

func TestClassify(t *testing.T) {
	res := verifyDesign(t)
	counts := map[RouteClass]int{}
	for i := range res.Nets {
		c := res.Classify(i)
		counts[c]++
		cand := res.Nets[i].Cands[res.Selection.Choice[i]]
		switch c {
		case RouteElectrical:
			if len(cand.OpticalSegs) != 0 {
				t.Errorf("net %d: electrical class with optical segments", i)
			}
		case RouteOptical:
			if len(cand.OpticalSegs) == 0 || len(cand.ElecSegs) != 0 {
				t.Errorf("net %d: optical class with wrong segments", i)
			}
		case RouteMixed:
			if len(cand.OpticalSegs) == 0 || len(cand.ElecSegs) == 0 {
				t.Errorf("net %d: mixed class with missing segments", i)
			}
		}
	}
	if counts[RouteOptical] == 0 {
		t.Error("no optical routes in the verify design")
	}
	for _, c := range []RouteClass{RouteElectrical, RouteOptical, RouteMixed} {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
}

// TestClassifyAcrossFlows pins the route-class breakdown of all three
// flows: the electrical baseline is copper-only, the GLOW-style optical
// baseline never mixes (optical where feasible, electrical fallback
// otherwise), and the co-design flow is the only one allowed to produce
// mixed routes.
func TestClassifyAcrossFlows(t *testing.T) {
	d := smallDesign(t)
	cfg := DefaultConfig()

	elec, err := RunElectrical(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range elec.Nets {
		if c := elec.Classify(i); c != RouteElectrical {
			t.Fatalf("electrical flow: net %d classified %v", i, c)
		}
	}
	if !strings.Contains(elec.Report(0), "0 optical, 0 mixed") {
		t.Error("electrical flow report counts optical routes")
	}

	opt, err := RunOptical(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	optCounts := map[RouteClass]int{}
	for i := range opt.Nets {
		c := opt.Classify(i)
		optCounts[c]++
		if c == RouteMixed {
			t.Fatalf("optical flow: net %d classified mixed", i)
		}
	}
	if optCounts[RouteOptical] == 0 {
		t.Error("optical flow produced no optical routes")
	}

	op, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opCounts := map[RouteClass]int{}
	for i := range op.Nets {
		opCounts[op.Classify(i)]++
	}
	if got := opCounts[RouteElectrical] + opCounts[RouteOptical] + opCounts[RouteMixed]; got != len(op.Nets) {
		t.Fatalf("classes cover %d of %d nets", got, len(op.Nets))
	}
	if opCounts[RouteOptical]+opCounts[RouteMixed] == 0 {
		t.Error("co-design flow selected no optical routes at all")
	}
	// The report's totals line agrees with Classify.
	want := fmt.Sprintf("totals: %d optical, %d mixed, %d electrical",
		opCounts[RouteOptical], opCounts[RouteMixed], opCounts[RouteElectrical])
	if out := op.Report(0); !strings.Contains(out, want) {
		t.Errorf("report totals do not match Classify: want %q in\n%s", want, out)
	}
}

func TestReportEmpty(t *testing.T) {
	var r Result
	if out := r.Report(3); !strings.Contains(out, "no complete selection") {
		t.Errorf("empty report: %q", out)
	}
}
