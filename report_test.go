package operon

import (
	"strings"
	"testing"
)

func TestReport(t *testing.T) {
	res := verifyDesign(t)
	out := res.Report(5)
	for _, want := range []string{"route report", "class", "totals:", "mW"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Truncation marker appears when nets exceed the cap.
	if len(res.Nets) > 5 && !strings.Contains(out, "more nets") {
		t.Error("report not truncated")
	}
	// Full report lists every net.
	full := res.Report(0)
	if strings.Contains(full, "more nets") {
		t.Error("untruncated report claims truncation")
	}
	lines := strings.Count(full, "\n")
	if lines < len(res.Nets)+3 {
		t.Errorf("full report has %d lines for %d nets", lines, len(res.Nets))
	}
}

func TestClassify(t *testing.T) {
	res := verifyDesign(t)
	counts := map[RouteClass]int{}
	for i := range res.Nets {
		c := res.Classify(i)
		counts[c]++
		cand := res.Nets[i].Cands[res.Selection.Choice[i]]
		switch c {
		case RouteElectrical:
			if len(cand.OpticalSegs) != 0 {
				t.Errorf("net %d: electrical class with optical segments", i)
			}
		case RouteOptical:
			if len(cand.OpticalSegs) == 0 || len(cand.ElecSegs) != 0 {
				t.Errorf("net %d: optical class with wrong segments", i)
			}
		case RouteMixed:
			if len(cand.OpticalSegs) == 0 || len(cand.ElecSegs) == 0 {
				t.Errorf("net %d: mixed class with missing segments", i)
			}
		}
	}
	if counts[RouteOptical] == 0 {
		t.Error("no optical routes in the verify design")
	}
	for _, c := range []RouteClass{RouteElectrical, RouteOptical, RouteMixed} {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
}

func TestReportEmpty(t *testing.T) {
	var r Result
	if out := r.Report(3); !strings.Contains(out, "no complete selection") {
		t.Errorf("empty report: %q", out)
	}
}
