module operon

go 1.23
