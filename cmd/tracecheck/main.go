// Command tracecheck validates a Chrome trace-event JSON file against the
// subset of the trace-event format the obs.ChromeWriter emits, so CI can
// assert that `operon -trace` output stays loadable by chrome://tracing and
// Perfetto without shipping a browser.
//
// Checks: the file is one JSON array; every event carries a name, a known
// phase, and pid/tid fields; "X" events have finite ts and non-negative
// dur; "i" events carry a scope; "M" events are process_name/thread_name
// metadata with a string name arg. With -stages, the four flow stage spans
// must all be present; -min-lanes asserts a minimum number of distinct
// span lanes (note that lanes reflect actual goroutine scheduling — a
// single-CPU runner legitimately funnels the pool through one lane).
//
// Usage:
//
//	tracecheck [-stages] [-min-lanes N] trace.json
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"flag"
)

// event mirrors the fields obs.ChromeWriter emits per trace entry.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

func main() {
	stages := flag.Bool("stages", false, "require all four flow stage spans (stage/process..stage/wdm)")
	minLanes := flag.Int("min-lanes", 0, "require at least this many distinct span lanes (tids)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-stages] [-min-lanes N] trace.json")
		os.Exit(2)
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var events []event
	if err := json.Unmarshal(data, &events); err != nil {
		fail("%s: not a JSON array of trace events: %v", path, err)
	}
	if len(events) == 0 {
		fail("%s: empty trace", path)
	}

	spanNames := map[string]int{}
	lanes := map[int]bool{}
	phases := map[string]int{}
	for i, e := range events {
		ctx := fmt.Sprintf("%s: event %d (%q)", path, i, e.Name)
		if e.Name == "" {
			fail("%s: missing name", ctx)
		}
		if e.Pid == nil || e.Tid == nil {
			fail("%s: missing pid/tid", ctx)
		}
		phases[e.Ph]++
		switch e.Ph {
		case "X":
			if e.Ts == nil || !finite(*e.Ts) {
				fail("%s: X event without finite ts", ctx)
			}
			if e.Dur == nil || !finite(*e.Dur) || *e.Dur < 0 {
				fail("%s: X event without non-negative dur", ctx)
			}
			spanNames[e.Name]++
			lanes[*e.Tid] = true
		case "i", "I":
			if e.Ts == nil || !finite(*e.Ts) {
				fail("%s: instant event without finite ts", ctx)
			}
			if e.S == "" {
				fail("%s: instant event without scope", ctx)
			}
		case "C":
			if e.Ts == nil || !finite(*e.Ts) {
				fail("%s: counter event without finite ts", ctx)
			}
			if len(e.Args) == 0 {
				fail("%s: counter event without args", ctx)
			}
		case "M":
			if e.Name != "process_name" && e.Name != "thread_name" {
				fail("%s: unknown metadata event", ctx)
			}
			if _, ok := e.Args["name"].(string); !ok {
				fail("%s: metadata event without string name arg", ctx)
			}
		default:
			fail("%s: unknown phase %q", ctx, e.Ph)
		}
	}

	if *stages {
		for _, want := range []string{"stage/process", "stage/candidates", "stage/selection", "stage/wdm"} {
			if spanNames[want] == 0 {
				fail("%s: missing stage span %q", path, want)
			}
		}
	}
	if len(lanes) < *minLanes {
		fail("%s: %d distinct span lanes, want >= %d", path, len(lanes), *minLanes)
	}

	fmt.Printf("%s: ok — %d events (%d spans, %d instants, %d counters, %d metadata), %d lanes\n",
		path, len(events), phases["X"], phases["i"]+phases["I"], phases["C"], phases["M"], len(lanes))
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
