package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	operon "operon"
	"operon/internal/benchgen"
	"operon/internal/signal"
)

// testDesign generates a small deterministic design for server tests.
func testDesign(t *testing.T) signal.Design {
	t.Helper()
	d, err := benchgen.Generate(benchgen.Spec{
		Name: "srv-a", DieCM: 4, Groups: 24, BitsPerGroup: 8, BitsJitter: 2,
		MinSinkClusters: 1, MaxSinkClusters: 3, LocalFraction: 0.3,
		LocalSpanCM: 0.3, GlobalSpanCM: 2.0, RegionSpreadCM: 0.02, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// post sends a JSON body to path and returns the response.
func post(t *testing.T, ts *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decode unmarshals a response body into v and closes it.
func decode(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// awaitState polls /jobs/{id} until the job reaches the wanted state.
func awaitState(t *testing.T, ts *httptest.Server, id string, want jobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var j job
		decode(t, resp, &j)
		if j.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, j.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQueueFullReturns429 fills the single queue slot behind a blocked
// solver and asserts the next request is rejected with 429 — and that the
// queue drains normally once the solver is released.
func TestQueueFullReturns429(t *testing.T) {
	srv := newServer(operon.DefaultConfig(), 1, 1, time.Minute, 0)
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	srv.solve = func(ctx context.Context, d signal.Design, cfg operon.Config, _ *operon.Workspace) (*operon.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &operon.Result{Design: d.Name, PowerMW: 1}, nil
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	d := testDesign(t)

	// Job 1 is picked up by the lone worker and blocks; job 2 occupies the
	// single queue slot; job 3 must bounce.
	var j1, j2 job
	decode(t, post(t, ts, "/solve", solveRequest{Design: &d, Async: true}), &j1)
	<-started
	decode(t, post(t, ts, "/solve", solveRequest{Design: &d, Async: true}), &j2)
	resp := post(t, ts, "/solve", solveRequest{Design: &d, Async: true})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third job got status %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()

	close(release)
	awaitState(t, ts, j1.ID, jobDone)
	awaitState(t, ts, j2.ID, jobDone)
	ts.Close()
	srv.shutdown()
}

// TestDeadlineExceededReturnsDegraded drives the real flow through the
// server under a hopeless 1 ms budget (benchmark I3 needs seconds): the
// response must be 200 with degraded=true and stop_reason "deadline" —
// never an error.
func TestDeadlineExceededReturnsDegraded(t *testing.T) {
	srv := newServer(operon.DefaultConfig(), 4, 1, time.Minute, 0)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp := post(t, ts, "/solve", solveRequest{Bench: "I3", TimeoutMS: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline-exceeded solve got status %d, want 200", resp.StatusCode)
	}
	var sr solveResponse
	decode(t, resp, &sr)
	if !sr.Degraded {
		t.Fatalf("1 ms budget did not degrade: %+v", sr)
	}
	if sr.StopReason != string(operon.StopDeadline) {
		t.Fatalf("stop_reason = %q, want %q", sr.StopReason, operon.StopDeadline)
	}
	if sr.PowerMW <= 0 {
		t.Fatalf("degraded result has no power: %+v", sr)
	}
	ts.Close()
	srv.shutdown()
}

// TestShutdownDegradesInFlight aborts the server while a synchronous solve
// is in flight: the waiting client must still receive a 200 with the
// degraded partial result, not a connection reset.
func TestShutdownDegradesInFlight(t *testing.T) {
	srv := newServer(operon.DefaultConfig(), 4, 1, time.Minute, 0)
	srv.solve = func(ctx context.Context, d signal.Design, cfg operon.Config, _ *operon.Workspace) (*operon.Result, error) {
		// Stand-in for RunContext's contract: block until cancelled, then
		// return the degraded-but-feasible result.
		<-ctx.Done()
		return &operon.Result{
			Design: d.Name, PowerMW: 2,
			Degraded: true, StopReason: operon.StopCanceled,
		}, nil
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	d := testDesign(t)

	type outcome struct {
		resp *http.Response
		err  error
	}
	resc := make(chan outcome, 1)
	go func() {
		buf, _ := json.Marshal(solveRequest{Design: &d, TimeoutMS: 60_000})
		resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(buf))
		resc <- outcome{resp, err}
	}()
	awaitState(t, ts, "job-1", jobRunning)

	srv.abort()
	out := <-resc
	if out.err != nil {
		t.Fatalf("in-flight solve failed during shutdown: %v", out.err)
	}
	if out.resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight solve got status %d, want 200", out.resp.StatusCode)
	}
	var sr solveResponse
	decode(t, out.resp, &sr)
	if !sr.Degraded || sr.StopReason != string(operon.StopCanceled) {
		t.Fatalf("in-flight solve not degraded-canceled: %+v", sr)
	}
	ts.Close()
	srv.shutdown()
}

// TestBadRequests pins the 400 paths: unparseable JSON, missing input,
// unknown benchmark, unknown mode.
func TestBadRequests(t *testing.T) {
	srv := newServer(operon.DefaultConfig(), 1, 1, time.Minute, 0)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	d := testDesign(t)

	for name, body := range map[string]any{
		"no input":      solveRequest{},
		"unknown bench": solveRequest{Bench: "nope"},
		"unknown mode":  solveRequest{Design: &d, Mode: "annealing"},
	} {
		resp := post(t, ts, "/solve", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewBufferString("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	jr, err := http.Get(ts.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	if jr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", jr.StatusCode)
	}
	jr.Body.Close()
	ts.Close()
	srv.shutdown()
}

// TestTimeoutClamp pins the budget resolution: zero → server default,
// above max → clamped to max.
func TestTimeoutClamp(t *testing.T) {
	srv := newServer(operon.DefaultConfig(), 4, 1, 7*time.Second, 9*time.Second)
	defer srv.shutdown()
	d := testDesign(t)
	for _, tc := range []struct {
		reqMS  int64
		wantMS int64
	}{
		{0, 7000},
		{5000, 5000},
		{60_000, 9000},
	} {
		j, err := srv.newJob(solveRequest{Design: &d, TimeoutMS: tc.reqMS})
		if err != nil {
			t.Fatal(err)
		}
		if got := j.timeout.Milliseconds(); got != tc.wantMS {
			t.Errorf("timeout_ms=%d: applied %d ms, want %d ms", tc.reqMS, got, tc.wantMS)
		}
		srv.dropJob(j)
	}
	// Unclamped server: the request's budget passes through.
	free := newServer(operon.DefaultConfig(), 4, 1, time.Second, 0)
	defer free.shutdown()
	j, err := free.newJob(solveRequest{Design: &d, TimeoutMS: 3_600_000})
	if err != nil {
		t.Fatal(err)
	}
	if got := j.timeout; got != time.Hour {
		t.Errorf("unclamped timeout = %s, want 1h", got)
	}
	free.dropJob(j)
}
