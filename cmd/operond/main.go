// Command operond serves the OPERON flow over HTTP/JSON.
//
// Every request carries its own time budget (timeout_ms), mapped onto a
// context deadline; an exceeded budget never errors — the flow degrades
// along its ladder (ILP incumbent → LR → electrical floor) and the response
// reports degraded=true with a stop_reason. Shutdown is graceful the same
// way: SIGINT/SIGTERM flips /healthz to 503 (the drain signal), cancels the
// in-flight solves, which return their degraded results to any waiting
// clients before the listener drains.
//
// Identical requests are deduplicated by content fingerprint
// (operon.Fingerprint): concurrent duplicates coalesce onto one solve,
// non-degraded results are cached (-cache-entries/-cache-ttl), and POST
// /solve/batch deduplicates within an array — responses carry cached/
// coalesced provenance and stay bit-identical to the solve they shadow.
//
// Telemetry: /metrics serves Prometheus text exposition (request and
// per-stage latency histograms, serving gauges, solver counters),
// /metrics.json the same snapshot as JSON; every request is logged as one
// structured slog record carrying the X-Request-Id echoed to the client.
//
// Usage:
//
//	operond -addr :8080 -queue 64 -concurrency 2
//	curl -s localhost:8080/solve -d '{"bench":"I2","timeout_ms":2000}'
//	curl -s localhost:8080/solve -d '{"bench":"I3","async":true}'
//	curl -s localhost:8080/solve/batch -d '[{"bench":"I1"},{"bench":"I1"}]'
//	curl -s localhost:8080/jobs/job-1
//	curl -s localhost:8080/sessions -d '{"bench":"I3","skip_wdm":true}'
//	curl -s localhost:8080/sessions/sess-1/edit -d '{"edits":[{"kind":"move","group":0,"bit":0,"sink":-1,"x":1.2,"y":0.8}]}'
//	curl -s localhost:8080/metrics
//
// See -h for all options and DESIGN.md §8 for the API reference.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	operon "operon"
	"operon/internal/obs"
	"operon/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("operond: ")

	var (
		addr        = flag.String("addr", "localhost:8080", "listen address")
		queueLen    = flag.Int("queue", 64, "job queue length (full queue returns 429)")
		concurrency = flag.Int("concurrency", 2, "solves run in parallel")
		workers     = flag.Int("workers", 0, "worker pool size per solve (0 = all CPUs)")
		defTimeout  = flag.Duration("default-timeout", 60*time.Second, "time budget for requests without timeout_ms")
		maxTimeout  = flag.Duration("max-timeout", 10*time.Minute, "upper clamp on requested budgets (0 = unclamped)")
		grace       = flag.Duration("grace", 30*time.Second, "shutdown grace period for draining handlers")
		logFormat   = flag.String("log", "text", "request log format: text, json or off")
		smoke       = flag.Bool("smoke", false, "self-test: solve one benchmark under a 1 ms budget in-process and exit")
		sessionTTL  = flag.Duration("session-ttl", 10*time.Minute, "idle lifetime of sticky editing sessions before eviction")
		maxSessions = flag.Int("max-sessions", 64, "cap on concurrent sticky sessions (LRU evicts past it)")
		cacheSize   = flag.Int("cache-entries", 256, "content-addressed result cache capacity (0 disables caching)")
		cacheTTL    = flag.Duration("cache-ttl", 5*time.Minute, "lifetime of cached solve results")
		maxBody     = flag.Int64("max-body-bytes", 8<<20, "request body size cap; exceeding it returns 413 (0 = unlimited)")
	)
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		log.Fatal(err)
	}
	cfg := operon.DefaultConfig()
	cfg.Workers = *workers
	// The flags use 0 for "off"; Options uses 0 for "default" — translate.
	cacheEntries := *cacheSize
	if cacheEntries == 0 {
		cacheEntries = -1
	}
	maxBodyBytes := *maxBody
	if maxBodyBytes == 0 {
		maxBodyBytes = -1
	}
	srv := serve.New(serve.Options{
		Config:         cfg,
		QueueLen:       *queueLen,
		Concurrency:    *concurrency,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		Logger:         logger,
		SessionTTL:     *sessionTTL,
		MaxSessions:    *maxSessions,
		CacheEntries:   cacheEntries,
		CacheTTL:       *cacheTTL,
		MaxBodyBytes:   maxBodyBytes,
	})

	if *smoke {
		if err := runSmoke(srv); err != nil {
			log.Fatal(err)
		}
		return
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down: cancelling in-flight solves")
	// Cancel the solves first so synchronous handlers receive their degraded
	// results (and /healthz starts answering 503), then drain the listener,
	// then stop the workers.
	srv.Abort()
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	srv.Shutdown()
	log.Print("bye")
}

// newLogger builds the slog request logger for the chosen wire format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "off":
		return slog.New(slog.NewTextHandler(io.Discard, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log format %q (want text, json or off)", format)
	}
}

// runSmoke drives one solve through a real HTTP round trip on an ephemeral
// port: a benchmark under a deliberately hopeless 1 ms budget must come
// back 200 with degraded=true, stop_reason="deadline", a non-zero feasible
// power, and an echoed X-Request-Id — the degradation ladder and the
// telemetry stack observed end to end. The Prometheus exposition is run
// through the line-by-line linter, and the JSON mirror must report the
// degradation counter and a populated end-to-end histogram. CI runs this as
// `make serve-smoke`.
func runSmoke(srv *serve.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	req, err := http.NewRequest(http.MethodPost, base+"/solve",
		bytes.NewBufferString(`{"bench":"I3","timeout_ms":1}`))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "smoke-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("smoke: /solve status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "smoke-1" {
		return fmt.Errorf("smoke: X-Request-Id %q, want smoke-1", got)
	}
	var sr serve.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return fmt.Errorf("smoke: decode /solve: %w", err)
	}
	if !sr.Degraded {
		return fmt.Errorf("smoke: 1 ms budget did not degrade: %+v", sr)
	}
	if sr.StopReason != string(operon.StopDeadline) {
		return fmt.Errorf("smoke: stop_reason %q, want %q", sr.StopReason, operon.StopDeadline)
	}
	if sr.PowerMW <= 0 {
		return fmt.Errorf("smoke: degraded result has no power: %+v", sr)
	}

	hr, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		return fmt.Errorf("smoke: /healthz status %d", hr.StatusCode)
	}

	pr, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	expo, err := io.ReadAll(pr.Body)
	pr.Body.Close()
	if err != nil {
		return err
	}
	if err := obs.LintExposition(expo); err != nil {
		return fmt.Errorf("smoke: /metrics exposition invalid: %w", err)
	}

	mr, err := http.Get(base + "/metrics.json")
	if err != nil {
		return err
	}
	var metrics struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
		Histograms []obs.HistogramSnapshot `json:"histograms"`
	}
	err = json.NewDecoder(mr.Body).Decode(&metrics)
	mr.Body.Close()
	if err != nil {
		return fmt.Errorf("smoke: decode /metrics.json: %w", err)
	}
	degradedCount := int64(0)
	for _, c := range metrics.Counters {
		if c.Name == "flow.degraded" {
			degradedCount = c.Value
		}
	}
	if degradedCount < 1 {
		return fmt.Errorf("smoke: flow.degraded counter not bumped")
	}
	e2e := false
	for _, h := range metrics.Histograms {
		if h.Name == "request/e2e" && h.Count >= 1 {
			e2e = true
		}
	}
	if !e2e {
		return fmt.Errorf("smoke: request/e2e histogram not populated")
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Abort()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	srv.Shutdown()
	if err := <-errc; err != http.ErrServerClosed {
		return err
	}
	fmt.Printf("serve-smoke ok: %s degraded to %s floor in %.1f ms (power %.2f mW)\n",
		sr.Design, sr.Flow, sr.ElapsedMS, sr.PowerMW)
	return nil
}
