// Command operond serves the OPERON flow over HTTP/JSON.
//
// Every request carries its own time budget (timeout_ms), mapped onto a
// context deadline; an exceeded budget never errors — the flow degrades
// along its ladder (ILP incumbent → LR → electrical floor) and the response
// reports degraded=true with a stop_reason. Shutdown is graceful the same
// way: SIGINT/SIGTERM cancels the in-flight solves, which return their
// degraded results to any waiting clients before the listener drains.
//
// Usage:
//
//	operond -addr :8080 -queue 64 -concurrency 2
//	curl -s localhost:8080/solve -d '{"bench":"I2","timeout_ms":2000}'
//	curl -s localhost:8080/solve -d '{"bench":"I3","async":true}'
//	curl -s localhost:8080/jobs/job-1
//	curl -s localhost:8080/metrics
//
// See -h for all options and DESIGN.md §8 for the API reference.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	operon "operon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("operond: ")

	var (
		addr        = flag.String("addr", "localhost:8080", "listen address")
		queueLen    = flag.Int("queue", 64, "job queue length (full queue returns 429)")
		concurrency = flag.Int("concurrency", 2, "solves run in parallel")
		workers     = flag.Int("workers", 0, "worker pool size per solve (0 = all CPUs)")
		defTimeout  = flag.Duration("default-timeout", 60*time.Second, "time budget for requests without timeout_ms")
		maxTimeout  = flag.Duration("max-timeout", 10*time.Minute, "upper clamp on requested budgets (0 = unclamped)")
		grace       = flag.Duration("grace", 30*time.Second, "shutdown grace period for draining handlers")
		smoke       = flag.Bool("smoke", false, "self-test: solve one benchmark under a 1 ms budget in-process and exit")
	)
	flag.Parse()

	cfg := operon.DefaultConfig()
	cfg.Workers = *workers
	srv := newServer(cfg, *queueLen, *concurrency, *defTimeout, *maxTimeout)

	if *smoke {
		if err := runSmoke(srv); err != nil {
			log.Fatal(err)
		}
		return
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down: cancelling in-flight solves")
	// Cancel the solves first so synchronous handlers receive their degraded
	// results, then drain the listener, then stop the workers.
	srv.abort()
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	srv.shutdown()
	log.Print("bye")
}

// runSmoke drives one solve through a real HTTP round trip on an ephemeral
// port: a benchmark under a deliberately hopeless 1 ms budget must come
// back 200 with degraded=true, stop_reason="deadline", and a non-zero
// feasible power — the degradation ladder observed end to end. CI runs this
// as `make serve-smoke`.
func runSmoke(srv *server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	resp, err := http.Post(base+"/solve", "application/json",
		bytes.NewBufferString(`{"bench":"I3","timeout_ms":1}`))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("smoke: /solve status %d, want 200", resp.StatusCode)
	}
	var sr solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return fmt.Errorf("smoke: decode /solve: %w", err)
	}
	if !sr.Degraded {
		return fmt.Errorf("smoke: 1 ms budget did not degrade: %+v", sr)
	}
	if sr.StopReason != string(operon.StopDeadline) {
		return fmt.Errorf("smoke: stop_reason %q, want %q", sr.StopReason, operon.StopDeadline)
	}
	if sr.PowerMW <= 0 {
		return fmt.Errorf("smoke: degraded result has no power: %+v", sr)
	}

	hr, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		return fmt.Errorf("smoke: /healthz status %d", hr.StatusCode)
	}
	mr, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	var metrics struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	err = json.NewDecoder(mr.Body).Decode(&metrics)
	mr.Body.Close()
	if err != nil {
		return fmt.Errorf("smoke: decode /metrics: %w", err)
	}
	degradedCount := int64(0)
	for _, c := range metrics.Counters {
		if c.Name == "flow.degraded" {
			degradedCount = c.Value
		}
	}
	if degradedCount < 1 {
		return fmt.Errorf("smoke: flow.degraded counter not bumped")
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.abort()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	srv.shutdown()
	if err := <-errc; err != http.ErrServerClosed {
		return err
	}
	fmt.Printf("serve-smoke ok: %s degraded to %s floor in %.1f ms (power %.2f mW)\n",
		sr.Design, sr.Flow, sr.ElapsedMS, sr.PowerMW)
	return nil
}
