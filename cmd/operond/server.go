package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	operon "operon"
	"operon/internal/benchgen"
	"operon/internal/obs"
	"operon/internal/signal"
)

// solveRequest is the JSON body of POST /solve. Exactly one of Bench or
// Design selects the input; the rest tune the solve.
type solveRequest struct {
	// Bench names a built-in benchmark (benchgen.SpecByName, "I1".."I5").
	Bench string `json:"bench,omitempty"`
	// Design is an inline signal.Design; used when Bench is empty.
	Design *signal.Design `json:"design,omitempty"`
	// Mode is the selection algorithm: "lr" (default), "ilp" or "greedy".
	Mode string `json:"mode,omitempty"`
	// TimeoutMS is the per-request time budget in milliseconds; it becomes
	// the context deadline of the solve. Zero means the server default, and
	// values above the server maximum are clamped down. An exceeded budget
	// never fails the request: the flow degrades and the response carries
	// degraded=true with a stop_reason.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// SkipWDM disables the WDM placement/assignment stage.
	SkipWDM bool `json:"skip_wdm,omitempty"`
	// Async enqueues the job and returns 202 with its id immediately; poll
	// GET /jobs/{id} for the result. Synchronous requests block until done.
	Async bool `json:"async,omitempty"`
}

// solveResponse is the JSON result of a finished solve.
type solveResponse struct {
	Design     string  `json:"design"`
	Flow       string  `json:"flow"`
	PowerMW    float64 `json:"power_mw"`
	Violations int     `json:"violations"`
	HyperNets  int     `json:"hyper_nets"`
	WDMsUsed   int     `json:"wdms_used"`
	// Degraded and StopReason mirror operon.Result: the routing is feasible
	// either way, but a degraded one took a fallback rung of the ladder.
	Degraded   bool   `json:"degraded"`
	StopReason string `json:"stop_reason,omitempty"`
	// TimeoutMS is the budget actually applied (after default/clamp).
	TimeoutMS int64   `json:"timeout_ms"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// jobState is the lifecycle of a queued solve.
type jobState string

const (
	jobQueued  jobState = "queued"
	jobRunning jobState = "running"
	jobDone    jobState = "done"
	jobFailed  jobState = "failed"
)

// job is one queued solve and its eventual outcome.
type job struct {
	ID     string         `json:"id"`
	State  jobState       `json:"state"`
	Result *solveResponse `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`

	design  signal.Design
	cfg     operon.Config
	timeout time.Duration
	done    chan struct{}
}

// solveFunc is the solver the job workers invoke; tests inject a stub here
// to exercise queueing and shutdown without running the real flow. The
// workspace is the calling queue slot's — reused across every job the slot
// serves, never shared between slots.
type solveFunc func(ctx context.Context, d signal.Design, cfg operon.Config, ws *operon.Workspace) (*operon.Result, error)

// server is the operond HTTP state: a bounded job queue drained by a fixed
// set of worker goroutines, all solving under a shared base context that
// shutdown cancels so in-flight solves degrade and return promptly.
type server struct {
	cfg            operon.Config
	tracer         *obs.Tracer
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	solve          solveFunc

	baseCtx context.Context
	cancel  context.CancelFunc
	queue   chan *job
	wg      sync.WaitGroup

	mu   sync.Mutex
	jobs map[string]*job
	seq  int
}

// newServer assembles a server and starts its worker goroutines. cfg is the
// per-solve template (workers, library); queueLen bounds the job queue
// (full queue → 429); concurrency is the number of solves run in parallel.
// Call shutdown (after the HTTP listener has drained) to stop the workers.
func newServer(cfg operon.Config, queueLen, concurrency int, defaultTimeout, maxTimeout time.Duration) *server {
	if queueLen < 1 {
		queueLen = 1
	}
	if concurrency < 1 {
		concurrency = 1
	}
	tracer := obs.New(nil) // counters only; spans/events are discarded
	cfg.Obs = tracer
	ctx, cancel := context.WithCancel(context.Background())
	s := &server{
		cfg:            cfg,
		tracer:         tracer,
		defaultTimeout: defaultTimeout,
		maxTimeout:     maxTimeout,
		solve:          operon.RunContextWith,
		baseCtx:        ctx,
		cancel:         cancel,
		queue:          make(chan *job, queueLen),
		jobs:           map[string]*job{},
	}
	for i := 0; i < concurrency; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// abort cancels the base context: every in-flight solve observes the
// cancellation at its next check point and degrades to a feasible result.
// The HTTP handlers stay up, so synchronous callers still receive those
// degraded payloads; call it before (or instead of) draining the listener.
func (s *server) abort() { s.cancel() }

// shutdown stops the workers after the listener has drained: no handler may
// enqueue concurrently with it. It cancels the base context (if abort has
// not already), closes the queue, and waits for the workers — queued jobs
// still execute, degrading instantly under the cancelled context.
func (s *server) shutdown() {
	s.cancel()
	close(s.queue)
	s.wg.Wait()
}

// worker drains the job queue until shutdown closes it. Each worker — one
// queue slot — owns a solver workspace for its whole lifetime, so the
// per-worker solver scratch inside the flow is reused across requests and
// steady-state serving stops allocating candidate-generation buffers.
// Workspaces are never shared between slots, so concurrent solves stay
// isolated.
func (s *server) worker() {
	defer s.wg.Done()
	ws := operon.NewWorkspace()
	for j := range s.queue {
		s.runJob(j, ws)
	}
}

// runJob executes one queued solve under the job's deadline, parented to
// the server's base context so shutdown degrades it too.
func (s *server) runJob(j *job, ws *operon.Workspace) {
	s.setState(j, jobRunning, nil, "")
	ctx, cancel := context.WithTimeout(s.baseCtx, j.timeout)
	defer cancel()
	start := time.Now()
	res, err := s.solve(ctx, j.design, j.cfg, ws)
	if err != nil {
		s.setState(j, jobFailed, nil, err.Error())
	} else {
		resp := responseOf(res, j.timeout, time.Since(start))
		s.setState(j, jobDone, resp, "")
	}
	close(j.done)
}

// responseOf projects an operon.Result onto the wire format.
func responseOf(res *operon.Result, timeout, elapsed time.Duration) *solveResponse {
	return &solveResponse{
		Design:     res.Design,
		Flow:       res.Flow,
		PowerMW:    res.PowerMW,
		Violations: res.Selection.Violations,
		HyperNets:  len(res.HyperNets),
		WDMsUsed:   res.WDMStats.FinalWDMs,
		Degraded:   res.Degraded,
		StopReason: string(res.StopReason),
		TimeoutMS:  timeout.Milliseconds(),
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
	}
}

// setState publishes a job transition under the server lock.
func (s *server) setState(j *job, st jobState, resp *solveResponse, errMsg string) {
	s.mu.Lock()
	j.State = st
	j.Result = resp
	j.Error = errMsg
	s.mu.Unlock()
}

// jobView returns a consistent copy of a job for serialisation.
func (s *server) jobView(j *job) job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return job{ID: j.ID, State: j.State, Result: j.Result, Error: j.Error}
}

// handler builds the operond route table:
//
//	POST /solve      run a solve (sync, or async with {"async":true})
//	GET  /jobs/{id}  poll an async job
//	GET  /healthz    liveness + queue depth
//	GET  /metrics    counter snapshot of the shared tracer
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// reqPool recycles request-decode scratch across handler invocations, and
// bufPool the response-encode buffers: the handler path allocates neither at
// steady state, matching the workspace reuse of the solve path.
var (
	reqPool = sync.Pool{New: func() any { return new(solveRequest) }}
	bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
)

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes v with the given status, encoding through a pooled
// buffer so a failed encode can still become a 500 and the handler path
// reuses its scratch.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(buf)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":"encode response: %v"}`, err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// handleSolve validates the request, enqueues a job (429 when the queue is
// full), and either returns its id (async) or blocks for the result.
func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	req := reqPool.Get().(*solveRequest)
	defer reqPool.Put(req)
	*req = solveRequest{}
	if err := json.NewDecoder(r.Body).Decode(req); err != nil {
		httpError(w, http.StatusBadRequest, "parse request: %v", err)
		return
	}
	j, err := s.newJob(*req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	select {
	case s.queue <- j:
	default:
		s.dropJob(j)
		httpError(w, http.StatusTooManyRequests, "job queue full (%d slots)", cap(s.queue))
		return
	}
	if req.Async {
		writeJSON(w, http.StatusAccepted, s.jobView(j))
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// The client went away; the job keeps running and stays pollable.
		httpError(w, http.StatusRequestTimeout, "client cancelled; poll /jobs/%s", j.ID)
		return
	}
	v := s.jobView(j)
	if v.State == jobFailed {
		httpError(w, http.StatusInternalServerError, "%s", v.Error)
		return
	}
	writeJSON(w, http.StatusOK, v.Result)
}

// newJob resolves a request into a registered, runnable job.
func (s *server) newJob(req solveRequest) (*job, error) {
	design, err := resolveDesign(req)
	if err != nil {
		return nil, err
	}
	cfg := s.cfg
	cfg.SkipWDM = req.SkipWDM
	if cfg.Mode, err = parseMode(req.Mode); err != nil {
		return nil, err
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.defaultTimeout
	}
	if s.maxTimeout > 0 && timeout > s.maxTimeout {
		timeout = s.maxTimeout
	}
	s.mu.Lock()
	s.seq++
	j := &job{
		ID:      fmt.Sprintf("job-%d", s.seq),
		State:   jobQueued,
		design:  design,
		cfg:     cfg,
		timeout: timeout,
		done:    make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.mu.Unlock()
	return j, nil
}

// dropJob unregisters a job that never made it into the queue.
func (s *server) dropJob(j *job) {
	s.mu.Lock()
	delete(s.jobs, j.ID)
	s.mu.Unlock()
}

// resolveDesign materialises the request's input design.
func resolveDesign(req solveRequest) (signal.Design, error) {
	if req.Bench != "" {
		spec, err := benchgen.SpecByName(req.Bench)
		if err != nil {
			return signal.Design{}, err
		}
		return benchgen.Generate(spec)
	}
	if req.Design == nil {
		return signal.Design{}, fmt.Errorf("request needs \"bench\" or \"design\"")
	}
	if err := req.Design.Validate(); err != nil {
		return signal.Design{}, err
	}
	return *req.Design, nil
}

// parseMode maps the wire mode string onto operon.Mode ("" = lr).
func parseMode(mode string) (operon.Mode, error) {
	switch mode {
	case "", "lr":
		return operon.ModeLR, nil
	case "ilp":
		return operon.ModeILP, nil
	case "greedy":
		return operon.ModeGreedy, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want lr, ilp or greedy)", mode)
	}
}

// handleJob serves GET /jobs/{id}.
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, s.jobView(j))
}

// handleHealth serves GET /healthz with liveness and queue depth.
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":          true,
		"queue_depth": len(s.queue),
		"queue_cap":   cap(s.queue),
	})
}

// handleMetrics serves GET /metrics: the sorted counter snapshot of the
// tracer shared by every solve (lp pivots, mcmf augmentations, bpm cache
// traffic, flow.degraded, ...).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"counters": s.tracer.Snapshot()})
}
