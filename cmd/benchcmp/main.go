// Command benchcmp diffs two cmd/bench reports and fails when a guarded
// measure regressed by more than a threshold. Two kinds of measures are
// gated:
//
//   - Behaviour counters (simplex pivots, min-cost-flow augmentations,
//     branch-and-bound nodes): deterministic for fixed workloads, so any
//     jump is an algorithmic regression, not noise.
//   - Allocation profiles (allocs_per_op / bytes_per_op of every benchmark
//     entry): deterministic up to benchtime amortisation, so a jump means
//     hot-path allocation churn crept back in. Tiny entries are exempted by
//     an absolute floor (16 allocs / 1024 bytes) — a 2→3 alloc change is
//     not a regression signal.
//
// Wall-clock numbers are reported for context but never gated.
//
// With no arguments the two newest BENCH_*.json files in the working
// directory (by name, which sorts by date) are compared; pass two paths to
// compare explicitly. Reports without a counters section (predating the
// obs layer) compare as trivially clean.
//
// Usage:
//
//	benchcmp [-threshold 0.10] [old.json new.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// report is the subset of the cmd/bench document benchcmp reads.
type report struct {
	Date       string `json:"date"`
	Benchmarks []struct {
		Name        string `json:"name"`
		AllocsPerOp int64  `json:"allocs_per_op"`
		BytesPerOp  int64  `json:"bytes_per_op"`
	} `json:"benchmarks"`
	Counters []struct {
		Name  string `json:"name"`
		Value int64  `json:"value"`
	} `json:"counters"`
}

// Absolute floors under which an allocation delta is never gated: relative
// thresholds on near-zero baselines (a 2-alloc cached hit, a 64-byte
// response) would flake on irrelevant single-allocation shifts.
const (
	allocFloor = 16
	bytesFloor = 1024
)

// guarded lists the counters whose growth fails the comparison: more
// pivots, augmentations, or nodes for the same fixed workloads means the
// solvers got algorithmically worse.
var guarded = map[string]bool{
	"lp.pivots":          true,
	"mcmf.augmentations": true,
	"ilp.nodes":          true,
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "maximum allowed fractional increase of a guarded counter")
	flag.Parse()

	var oldPath, newPath string
	switch flag.NArg() {
	case 0:
		matches, err := filepath.Glob("BENCH_*.json")
		if err != nil {
			fail("%v", err)
		}
		if len(matches) < 2 {
			fmt.Printf("benchcmp: %d BENCH_*.json file(s) found, need two — nothing to compare\n", len(matches))
			return
		}
		sort.Strings(matches) // BENCH_<ISO date>.json sorts chronologically
		oldPath, newPath = matches[len(matches)-2], matches[len(matches)-1]
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold 0.10] [old.json new.json]")
		os.Exit(2)
	}

	oldRep := load(oldPath)
	newRep := load(newPath)
	fmt.Printf("benchcmp: %s (%s) -> %s (%s)\n", oldPath, oldRep.Date, newPath, newRep.Date)

	failures := compareAllocs(oldRep, newRep, *threshold)

	if len(oldRep.Counters) == 0 {
		fmt.Println("benchcmp: old report has no counter snapshot; skipping counters")
	} else {
		oldVals := map[string]int64{}
		for _, c := range oldRep.Counters {
			oldVals[c.Name] = c.Value
		}
		for _, c := range newRep.Counters {
			old, ok := oldVals[c.Name]
			if !ok {
				fmt.Printf("  %-24s %12d  (new counter)\n", c.Name, c.Value)
				continue
			}
			delta := 0.0
			if old != 0 {
				delta = float64(c.Value-old) / float64(old)
			}
			status := ""
			if guarded[c.Name] && old > 0 && delta > *threshold {
				status = "  REGRESSION"
				failures++
			}
			fmt.Printf("  %-24s %12d -> %12d  (%+.1f%%)%s\n", c.Name, old, c.Value, 100*delta, status)
		}
	}
	if failures > 0 {
		fail("%d guarded measure(s) regressed more than %.0f%%", failures, 100**threshold)
	}
}

// compareAllocs gates the allocation profile of every benchmark entry both
// reports share: an entry fails when allocs_per_op or bytes_per_op grew by
// more than threshold AND the growth clears the absolute floor. Entries
// only one report has are informational.
func compareAllocs(oldRep, newRep report, threshold float64) int {
	type profile struct{ allocs, bytes int64 }
	oldVals := map[string]profile{}
	for _, b := range oldRep.Benchmarks {
		oldVals[b.Name] = profile{b.AllocsPerOp, b.BytesPerOp}
	}
	if len(oldVals) == 0 {
		fmt.Println("benchcmp: old report has no benchmarks section; skipping alloc gate")
		return 0
	}
	gate := func(old, new, floor int64) (string, bool) {
		delta := 0.0
		if old != 0 {
			delta = float64(new-old) / float64(old)
		}
		bad := new-old > floor && (old == 0 || delta > threshold)
		return fmt.Sprintf("%d -> %d (%+.1f%%)", old, new, 100*delta), bad
	}
	failures := 0
	for _, b := range newRep.Benchmarks {
		old, ok := oldVals[b.Name]
		if !ok {
			fmt.Printf("  %-32s allocs %12d, bytes %12d  (new entry)\n", b.Name, b.AllocsPerOp, b.BytesPerOp)
			continue
		}
		aStr, aBad := gate(old.allocs, b.AllocsPerOp, allocFloor)
		bStr, bBad := gate(old.bytes, b.BytesPerOp, bytesFloor)
		status := ""
		if aBad || bBad {
			status = "  REGRESSION"
			failures++
		}
		fmt.Printf("  %-32s allocs %s, bytes %s%s\n", b.Name, aStr, bStr, status)
	}
	return failures
}

func load(path string) report {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		fail("%s: %v", path, err)
	}
	return r
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcmp: "+format+"\n", args...)
	os.Exit(1)
}
