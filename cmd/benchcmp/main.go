// Command benchcmp diffs two cmd/bench reports and fails when a guarded
// measure regressed by more than a threshold. Two kinds of measures are
// gated:
//
//   - Behaviour counters (simplex pivots, min-cost-flow augmentations,
//     branch-and-bound nodes): deterministic for fixed workloads, so any
//     jump is an algorithmic regression, not noise.
//   - Allocation profiles (allocs_per_op / bytes_per_op of every benchmark
//     entry): deterministic up to benchtime amortisation, so a jump means
//     hot-path allocation churn crept back in. Tiny entries are exempted by
//     an absolute floor (16 allocs / 1024 bytes) — a 2→3 alloc change is
//     not a regression signal.
//   - Peak live heap (peak_heap_bytes, when both reports sampled it): the
//     footprint gate for the mega cases, with a 64 MiB absolute floor so
//     GC timing noise on small entries never trips it.
//
// Coverage is also gated: a benchmark present in the old report but absent
// from the new one fails the comparison unless the new report names it in
// its "skipped" list — losing a benchmark must be a decision, not an
// accident. Entries only the new report has are informational ("new, no
// baseline"). An entry named in the new report's "acknowledged" list is
// reported but never failed: the waiver for a deliberate time-vs-memory
// trade rides in the committed baseline where review can see it.
//
// Wall-clock numbers are reported for context but never gated.
//
// With no arguments the two newest BENCH_*.json files in the working
// directory (by name, which sorts by date) are compared; pass two paths to
// compare explicitly. Reports without a counters section (predating the
// obs layer) compare as trivially clean.
//
// Usage:
//
//	benchcmp [-threshold 0.10] [old.json new.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// report is the subset of the cmd/bench document benchcmp reads.
type report struct {
	Date       string `json:"date"`
	Benchmarks []struct {
		Name          string `json:"name"`
		AllocsPerOp   int64  `json:"allocs_per_op"`
		BytesPerOp    int64  `json:"bytes_per_op"`
		PeakHeapBytes int64  `json:"peak_heap_bytes"`
	} `json:"benchmarks"`
	// Skipped names the entries the new run deliberately did not execute
	// (mega cases outside its -mega selection); they are exempt from the
	// missing-benchmark gate.
	Skipped []string `json:"skipped"`
	// Acknowledged names entries whose allocation-profile change the new
	// report declares deliberate; they are reported but not gated.
	Acknowledged []string `json:"acknowledged"`
	Counters     []struct {
		Name  string `json:"name"`
		Value int64  `json:"value"`
	} `json:"counters"`
	// Histograms is the per-stage latency summary newer reports carry.
	// Wall-clock quantiles are machine-dependent, so the section is
	// reported for context and never gated.
	Histograms []struct {
		Name  string  `json:"name"`
		Count int64   `json:"count"`
		P99MS float64 `json:"p99_ms"`
	} `json:"histograms"`
}

// Absolute floors under which a delta is never gated: relative thresholds
// on near-zero baselines (a 2-alloc cached hit, a 64-byte response, a
// megabyte of idle heap) would flake on irrelevant shifts.
const (
	allocFloor = 16
	bytesFloor = 1024
	heapFloor  = 64 << 20 // peak live heap, 64 MiB
)

// guarded lists the counters whose growth fails the comparison: more
// pivots, augmentations, or nodes for the same fixed workloads means the
// solvers got algorithmically worse.
var guarded = map[string]bool{
	"lp.pivots":          true,
	"mcmf.augmentations": true,
	"ilp.nodes":          true,
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "maximum allowed fractional increase of a guarded counter")
	flag.Parse()

	var oldPath, newPath string
	switch flag.NArg() {
	case 0:
		matches, err := filepath.Glob("BENCH_*.json")
		if err != nil {
			fail("%v", err)
		}
		if len(matches) < 2 {
			fmt.Printf("benchcmp: %d BENCH_*.json file(s) found, need two — nothing to compare\n", len(matches))
			return
		}
		sort.Strings(matches) // BENCH_<ISO date>.json sorts chronologically
		oldPath, newPath = matches[len(matches)-2], matches[len(matches)-1]
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold 0.10] [old.json new.json]")
		os.Exit(2)
	}

	oldRep := load(oldPath)
	newRep := load(newPath)
	fmt.Printf("benchcmp: %s (%s) -> %s (%s)\n", oldPath, oldRep.Date, newPath, newRep.Date)

	failures := compareAllocs(oldRep, newRep, *threshold)

	if len(oldRep.Counters) == 0 {
		fmt.Println("benchcmp: old report has no counter snapshot; skipping counters")
	} else {
		oldVals := map[string]int64{}
		for _, c := range oldRep.Counters {
			oldVals[c.Name] = c.Value
		}
		for _, c := range newRep.Counters {
			old, ok := oldVals[c.Name]
			if !ok {
				fmt.Printf("  %-24s %12d  (new counter, no baseline)\n", c.Name, c.Value)
				continue
			}
			delta := 0.0
			if old != 0 {
				delta = float64(c.Value-old) / float64(old)
			}
			status := ""
			if guarded[c.Name] && old > 0 && delta > *threshold {
				status = "  REGRESSION"
				failures++
			}
			fmt.Printf("  %-24s %12d -> %12d  (%+.1f%%)%s\n", c.Name, old, c.Value, 100*delta, status)
		}
	}
	// Per-stage latency histograms: informational only. A histogram block in
	// the new report with no counterpart in the baseline is the expected
	// state right after the block was introduced — report it as new, never
	// gate it.
	if len(newRep.Histograms) > 0 {
		oldP99 := map[string]float64{}
		for _, h := range oldRep.Histograms {
			oldP99[h.Name] = h.P99MS
		}
		for _, h := range newRep.Histograms {
			if old, ok := oldP99[h.Name]; ok {
				fmt.Printf("  hist %-24s p99 %8.2f ms -> %8.2f ms (n=%d, not gated)\n", h.Name, old, h.P99MS, h.Count)
			} else {
				fmt.Printf("  hist %-24s p99 %8.2f ms (n=%d)  (new, no baseline)\n", h.Name, h.P99MS, h.Count)
			}
		}
	}

	if failures > 0 {
		fail("%d guarded measure(s) failed (regression beyond %.0f%% or lost coverage)", failures, 100**threshold)
	}
}

// compareAllocs gates the allocation profile of every benchmark entry both
// reports share: an entry fails when allocs_per_op, bytes_per_op, or the
// sampled peak heap grew by more than threshold AND the growth clears the
// matching absolute floor, unless the new report acknowledges the entry.
// Entries only the new report has are informational; entries only the old
// report has fail unless the new report's skipped list names them.
func compareAllocs(oldRep, newRep report, threshold float64) int {
	type profile struct{ allocs, bytes, peak int64 }
	oldVals := map[string]profile{}
	for _, b := range oldRep.Benchmarks {
		oldVals[b.Name] = profile{b.AllocsPerOp, b.BytesPerOp, b.PeakHeapBytes}
	}
	if len(oldVals) == 0 {
		fmt.Println("benchcmp: old report has no benchmarks section; skipping alloc gate")
		return 0
	}
	gate := func(old, new, floor int64) (string, bool) {
		delta := 0.0
		if old != 0 {
			delta = float64(new-old) / float64(old)
		}
		bad := new-old > floor && (old == 0 || delta > threshold)
		return fmt.Sprintf("%d -> %d (%+.1f%%)", old, new, 100*delta), bad
	}
	acked := map[string]bool{}
	for _, name := range newRep.Acknowledged {
		acked[name] = true
	}
	failures := 0
	seen := map[string]bool{}
	for _, b := range newRep.Benchmarks {
		seen[b.Name] = true
		old, ok := oldVals[b.Name]
		if !ok {
			fmt.Printf("  %-32s allocs %12d, bytes %12d  (new, no baseline)\n", b.Name, b.AllocsPerOp, b.BytesPerOp)
			continue
		}
		aStr, aBad := gate(old.allocs, b.AllocsPerOp, allocFloor)
		bStr, bBad := gate(old.bytes, b.BytesPerOp, bytesFloor)
		status := ""
		hBad := false
		if old.peak > 0 && b.PeakHeapBytes > 0 {
			_, hBad = gate(old.peak, b.PeakHeapBytes, heapFloor)
		}
		switch {
		case (aBad || bBad || hBad) && acked[b.Name]:
			// The new report declares this change deliberate; report it
			// without failing so the trade stays visible in the log.
			status = "  acknowledged"
		case aBad || bBad || hBad:
			status = "  REGRESSION"
			failures++
		}
		fmt.Printf("  %-32s allocs %s, bytes %s%s\n", b.Name, aStr, bStr, status)
	}
	// Coverage gate: every old entry must either still run or be declared
	// skipped by the new report.
	skipped := map[string]bool{}
	for _, name := range newRep.Skipped {
		skipped[name] = true
	}
	for _, b := range oldRep.Benchmarks {
		switch {
		case seen[b.Name]:
		case skipped[b.Name]:
			fmt.Printf("  %-32s (skipped by new report)\n", b.Name)
		default:
			fmt.Printf("  %-32s MISSING from new report (not in its skipped list)\n", b.Name)
			failures++
		}
	}
	return failures
}

func load(path string) report {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		fail("%s: %v", path, err)
	}
	return r
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcmp: "+format+"\n", args...)
	os.Exit(1)
}
