// Command benchcmp diffs the behaviour-counter snapshots of two cmd/bench
// reports and fails when a guarded solver counter regressed by more than a
// threshold. Unlike wall-clock numbers, the counters (simplex pivots,
// min-cost-flow augmentations, branch-and-bound nodes) are deterministic
// behaviour measures, so a jump is an algorithmic regression, not noise.
//
// With no arguments the two newest BENCH_*.json files in the working
// directory (by name, which sorts by date) are compared; pass two paths to
// compare explicitly. Reports without a counters section (predating the
// obs layer) compare as trivially clean.
//
// Usage:
//
//	benchcmp [-threshold 0.10] [old.json new.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// report is the subset of the cmd/bench document benchcmp reads.
type report struct {
	Date     string `json:"date"`
	Counters []struct {
		Name  string `json:"name"`
		Value int64  `json:"value"`
	} `json:"counters"`
}

// guarded lists the counters whose growth fails the comparison: more
// pivots, augmentations, or nodes for the same fixed workloads means the
// solvers got algorithmically worse.
var guarded = map[string]bool{
	"lp.pivots":          true,
	"mcmf.augmentations": true,
	"ilp.nodes":          true,
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "maximum allowed fractional increase of a guarded counter")
	flag.Parse()

	var oldPath, newPath string
	switch flag.NArg() {
	case 0:
		matches, err := filepath.Glob("BENCH_*.json")
		if err != nil {
			fail("%v", err)
		}
		if len(matches) < 2 {
			fmt.Printf("benchcmp: %d BENCH_*.json file(s) found, need two — nothing to compare\n", len(matches))
			return
		}
		sort.Strings(matches) // BENCH_<ISO date>.json sorts chronologically
		oldPath, newPath = matches[len(matches)-2], matches[len(matches)-1]
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold 0.10] [old.json new.json]")
		os.Exit(2)
	}

	oldRep := load(oldPath)
	newRep := load(newPath)
	fmt.Printf("benchcmp: %s (%s) -> %s (%s)\n", oldPath, oldRep.Date, newPath, newRep.Date)
	if len(oldRep.Counters) == 0 {
		fmt.Println("benchcmp: old report has no counter snapshot; nothing to compare")
		return
	}

	oldVals := map[string]int64{}
	for _, c := range oldRep.Counters {
		oldVals[c.Name] = c.Value
	}
	failures := 0
	for _, c := range newRep.Counters {
		old, ok := oldVals[c.Name]
		if !ok {
			fmt.Printf("  %-24s %12d  (new counter)\n", c.Name, c.Value)
			continue
		}
		delta := 0.0
		if old != 0 {
			delta = float64(c.Value-old) / float64(old)
		}
		status := ""
		if guarded[c.Name] && old > 0 && delta > *threshold {
			status = "  REGRESSION"
			failures++
		}
		fmt.Printf("  %-24s %12d -> %12d  (%+.1f%%)%s\n", c.Name, old, c.Value, 100*delta, status)
	}
	if failures > 0 {
		fail("%d guarded counter(s) regressed more than %.0f%%", failures, 100**threshold)
	}
}

func load(path string) report {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		fail("%s: %v", path, err)
	}
	return r
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcmp: "+format+"\n", args...)
	os.Exit(1)
}
