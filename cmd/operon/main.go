// Command operon runs the OPERON optical-electrical route-synthesis flow
// on a benchmark and prints a power/WDM summary.
//
// Usage:
//
//	operon -bench I3 -mode lr
//	operon -design mydesign.json -mode ilp -ilp-limit 120s
//	operon -bench I2 -compare            # electrical vs optical vs OPERON
//
// See -h for all options.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	operon "operon"
	"operon/internal/benchgen"
	"operon/internal/obs"
	"operon/internal/signal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("operon: ")

	var (
		benchName  = flag.String("bench", "I3", "built-in benchmark name (I1..I5)")
		designPath = flag.String("design", "", "JSON design file (overrides -bench)")
		mode       = flag.String("mode", "lr", "selection algorithm: lr, ilp or greedy")
		ilpLimit   = flag.Duration("ilp-limit", 60*time.Second, "ILP time limit")
		lossBudget = flag.Float64("loss-budget", 0, "override l_m in dB (0 = default)")
		compare    = flag.Bool("compare", false, "also run the electrical and optical baselines")
		hotspots   = flag.Bool("hotspots", false, "print hotspot maps of the result")
		verify     = flag.Bool("verify", false, "re-check the result against the design rules")
		svgPath    = flag.String("svg", "", "write the routed layout as SVG to this file")
		report     = flag.Int("report", 0, "print a per-net route report (top N nets; -1 = all)")
		workers    = flag.Int("workers", 0, "worker pool size for the parallel stages (0 = all CPUs, 1 = sequential)")
		tracePath  = flag.String("trace", "", "write a Chrome trace-event JSON file of the run (load in Perfetto or chrome://tracing)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")
		verbose    = flag.Bool("v", false, "print a live per-stage summary and counter snapshot to stderr")
	)
	flag.Parse()

	design, err := loadDesign(*designPath, *benchName)
	if err != nil {
		log.Fatal(err)
	}

	cfg := operon.DefaultConfig()
	cfg.ILPTimeLimit = *ilpLimit
	cfg.Workers = *workers
	if *lossBudget > 0 {
		cfg.Lib.MaxLossDB = *lossBudget
	}
	switch *mode {
	case "lr":
		cfg.Mode = operon.ModeLR
	case "ilp":
		cfg.Mode = operon.ModeILP
	case "greedy":
		cfg.Mode = operon.ModeGreedy
	default:
		log.Fatalf("unknown mode %q (want lr, ilp or greedy)", *mode)
	}

	var sinks []obs.Sink
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		traceFile = f
		sinks = append(sinks, obs.NewChromeWriter(f))
	}
	if *verbose {
		sinks = append(sinks, verboseSink{})
	}
	if len(sinks) > 0 {
		cfg.Obs = obs.New(obs.Multi(sinks...))
	}
	stopProfiles := startProfiles(*cpuProfile, *memProfile)

	if *compare {
		e, err := operon.RunElectrical(design, cfg)
		if err != nil {
			log.Fatal(err)
		}
		o, err := operon.RunOptical(design, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("electrical [Streak-style]: %10.2f mW\n", e.PowerMW)
		fmt.Printf("optical    [GLOW-style]  : %10.2f mW\n", o.PowerMW)
	}

	res, err := operon.Run(design, cfg)
	if err != nil {
		log.Fatal(err)
	}
	stopProfiles()
	if cfg.Obs != nil {
		if err := cfg.Obs.Close(); err != nil {
			log.Fatal(err)
		}
		if traceFile != nil {
			if err := traceFile.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  trace written to %s\n", *tracePath)
		}
	}
	printResult(res)

	if *verify {
		issues := operon.Verify(res, cfg)
		if len(issues) == 0 {
			fmt.Println("  DRC: clean")
		} else {
			for _, is := range issues {
				fmt.Println("  DRC:", is)
			}
			os.Exit(1)
		}
	}

	if *report != 0 {
		n := *report
		if n < 0 {
			n = 0
		}
		fmt.Print(res.Report(n))
	}

	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := operon.WriteSVG(f, res, design.Die, cfg); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  layout written to %s\n", *svgPath)
	}

	if *hotspots {
		maps, err := operon.Hotspots(res, design.Die, 24, 48, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("optical layer (EO/OE conversion power):")
		fmt.Print(maps.Optical.Normalized().Render())
		fmt.Println("electrical layer (wire power):")
		fmt.Print(maps.Electrical.Normalized().Render())
	}
}

// startProfiles begins CPU profiling and returns a stop function that ends
// it and writes the heap profile. Profiles are stopped explicitly (not via
// defer) because log.Fatal paths exit without running defers.
func startProfiles(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  cpu profile written to %s\n", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  heap profile written to %s\n", memPath)
		}
	}
}

// verboseSink streams stage-level spans, iteration events, and the final
// counter snapshot to stderr while the flow runs.
type verboseSink struct{}

func (verboseSink) Span(r obs.SpanRecord) {
	if !strings.HasPrefix(r.Name, "stage/") &&
		!strings.HasPrefix(r.Name, "selection/") &&
		!strings.HasPrefix(r.Name, "wdm/") {
		return
	}
	fmt.Fprintf(os.Stderr, "operon: %-18s %12s%s\n",
		r.Name, r.Dur.Round(time.Microsecond), attrString(r.Attrs))
}

func (verboseSink) Event(r obs.EventRecord) {
	// Per-node ILP events are too chatty for a console; keep the
	// iteration-level ones.
	if r.Name != "lr/iterate" && r.Name != "ilp/incumbent" {
		return
	}
	fmt.Fprintf(os.Stderr, "operon: %-18s @%11s%s\n",
		r.Name, r.Ts.Round(time.Microsecond), attrString(r.Attrs))
}

func (verboseSink) Counters(cs []obs.CounterValue) {
	for _, c := range cs {
		fmt.Fprintf(os.Stderr, "operon: counter %-24s %d\n", c.Name, c.Value)
	}
}

func attrString(attrs []obs.Attr) string {
	var b strings.Builder
	for _, a := range attrs {
		b.WriteString("  ")
		b.WriteString(a.Key)
		b.WriteByte('=')
		if a.IsNum {
			fmt.Fprintf(&b, "%g", a.Num)
		} else {
			b.WriteString(a.Str)
		}
	}
	return b.String()
}

func loadDesign(path, bench string) (signal.Design, error) {
	if path == "" {
		spec, err := benchgen.SpecByName(bench)
		if err != nil {
			return signal.Design{}, err
		}
		return benchgen.Generate(spec)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return signal.Design{}, err
	}
	var d signal.Design
	if err := json.Unmarshal(data, &d); err != nil {
		return signal.Design{}, fmt.Errorf("parse %s: %w", path, err)
	}
	if err := d.Validate(); err != nil {
		return signal.Design{}, err
	}
	return d, nil
}

func printResult(res *operon.Result) {
	st := res.Stats()
	fmt.Printf("design %s via %s\n", res.Design, res.Flow)
	fmt.Printf("  hyper nets %d, hyper pins %d\n", st.HyperNets, st.HyperPins)
	fmt.Printf("  total power        %10.2f mW\n", res.PowerMW)
	fmt.Printf("  loss violations    %10d\n", res.Selection.Violations)
	if res.ILP != nil {
		status := fmt.Sprintf("%.1fs", res.ILP.Elapsed.Seconds())
		if res.ILP.TimedOut {
			status = "> time limit"
		}
		fmt.Printf("  ILP: %s, %d nodes, %d vars, %d rows\n",
			status, res.ILP.Nodes, res.ILP.NumVars, res.ILP.NumRows)
	}
	if res.LR != nil {
		fmt.Printf("  LR: %d iterations in %s\n", res.LR.Iters, res.LR.Elapsed)
	}
	if res.WDMStats.Connections > 0 {
		fmt.Printf("  WDM: %d connections, %d placed -> %d after assignment (%.1f%% saved)\n",
			res.WDMStats.Connections, res.WDMStats.InitialWDMs,
			res.WDMStats.FinalWDMs, 100*res.WDMStats.Reduction())
	}
	fmt.Printf("  stage times: process %s, candidates %s, selection %s, wdm %s\n",
		res.Times.Process.Round(time.Millisecond),
		res.Times.Candidates.Round(time.Millisecond),
		res.Times.Selection.Round(time.Millisecond),
		res.Times.WDM.Round(time.Millisecond))
}
