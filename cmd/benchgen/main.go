// Command benchgen emits a synthetic OPERON benchmark as JSON, either one
// of the built-in Table-1 cases or a custom parameterisation.
//
// Usage:
//
//	benchgen -bench I2 > i2.json
//	benchgen -groups 64 -bits 8 -sinks 2 -span 1.2 -seed 7 > custom.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"operon/internal/benchgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgen: ")

	var (
		bench  = flag.String("bench", "", "built-in benchmark (I1..I5); empty = custom")
		groups = flag.Int("groups", 32, "custom: number of signal groups")
		bits   = flag.Float64("bits", 8, "custom: average bits per group")
		sinks  = flag.Int("sinks", 2, "custom: sink regions per group")
		span   = flag.Float64("span", 1.2, "custom: global driver-sink span in cm")
		local  = flag.Float64("local", 0.2, "custom: fraction of local groups")
		die    = flag.Float64("die", 4.0, "custom: die edge length in cm")
		seed   = flag.Int64("seed", 1, "custom: random seed")
		stats  = flag.Bool("stats", false, "print statistics instead of JSON")
	)
	flag.Parse()

	spec := benchgen.Spec{
		Name:            "custom",
		DieCM:           *die,
		Groups:          *groups,
		BitsPerGroup:    *bits,
		BitsJitter:      1,
		MinSinkClusters: *sinks,
		MaxSinkClusters: *sinks,
		LocalFraction:   *local,
		LocalSpanCM:     0.18,
		GlobalSpanCM:    *span,
		RegionSpreadCM:  0.02,
		LanePitchCM:     0.2,
		Seed:            *seed,
	}
	if *bench != "" {
		var err error
		spec, err = benchgen.SpecByName(*bench)
		if err != nil {
			log.Fatal(err)
		}
	}
	design, err := benchgen.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	if *stats {
		fmt.Printf("%s: %d groups, %d nets, die %.1f cm\n",
			design.Name, len(design.Groups), design.NetCount(), design.Die.Width())
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(design); err != nil {
		log.Fatal(err)
	}
}
