// Command experiments regenerates the paper's evaluation artifacts:
// Table 1, Fig. 3(b), Fig. 8 and Fig. 9.
//
// Usage:
//
//	experiments -all
//	experiments -table1 -skip-ilp          # fast Table 1 without the ILP
//	experiments -table1 -ilp-limit 300s    # the paper used 3000 s
//	experiments -fig3b -fig8 -fig9
//	experiments -eco                       # incremental re-synthesis sweep
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"operon/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		all      = flag.Bool("all", false, "run every experiment")
		table1   = flag.Bool("table1", false, "run Table 1 (power/CPU comparison)")
		fig3b    = flag.Bool("fig3b", false, "run Fig. 3(b) (Y-branch BPM simulation)")
		fig8     = flag.Bool("fig8", false, "run Fig. 8 (WDM placement/assignment)")
		fig9     = flag.Bool("fig9", false, "run Fig. 9 (power hotspots on I2)")
		ablation = flag.Bool("ablation", false, "run the design-choice ablation study")
		robust   = flag.Bool("robustness", false, "run the temperature guard-band extension study")
		eco      = flag.Bool("eco", false, "run the incremental re-synthesis (ECO) speedup sweep")
		skipILP  = flag.Bool("skip-ilp", false, "omit the ILP columns of Table 1")
		ilpLimit = flag.Duration("ilp-limit", 60*time.Second, "ILP time limit per case")
		cases    = flag.String("cases", "", "comma-separated case filter, e.g. I2,I3")
	)
	flag.Parse()
	if *all {
		*table1, *fig3b, *fig8, *fig9, *ablation, *robust, *eco = true, true, true, true, true, true, true
	}
	if !*table1 && !*fig3b && !*fig8 && !*fig9 && !*ablation && !*robust && !*eco {
		flag.Usage()
		return
	}

	var caseList []string
	if *cases != "" {
		for _, c := range splitComma(*cases) {
			caseList = append(caseList, c)
		}
	}

	var table1Rows []experiments.Table1Row
	if *table1 || *fig8 {
		var err error
		table1Rows, err = experiments.Table1(experiments.Table1Options{
			Cases:        caseList,
			ILPTimeLimit: *ilpLimit,
			SkipILP:      *skipILP || !*table1,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	if *table1 {
		fmt.Println("== Table 1: performance comparison among designs ==")
		fmt.Print(experiments.FormatTable1(table1Rows, *ilpLimit, *skipILP))
		fmt.Println()
	}
	if *fig3b {
		rows, err := experiments.Fig3b(2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatFig3b(rows))
		fmt.Println()
	}
	if *fig8 {
		fmt.Print(experiments.FormatFig8(experiments.Fig8(table1Rows)))
		fmt.Println()
	}
	if *fig9 {
		maps, err := experiments.Fig9("I2", 24, 48)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatFig9(maps))
		fmt.Println()
	}
	if *ablation {
		abl := []string{"I2", "I4"}
		rows, err := experiments.Ablation(experiments.AblationOptions{Cases: abl})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatAblation(rows, abl))
		fmt.Println()
	}
	if *robust {
		rows, err := experiments.Robustness("I2", nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatRobustness("I2", rows))
		fmt.Println()
	}
	if *eco {
		rows, err := experiments.ECO("I3")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatECO(rows))
	}
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
