// Command docscheck enforces doc-comment coverage on the repo's public
// surface: every exported identifier — package, function, method, type,
// constant, variable, struct field, and interface method — in the audited
// packages must carry a doc comment. `make docs-lint` runs it in CI.
//
// Usage:
//
//	docscheck [dir ...]
//
// With no arguments the audited set is the flow package, the solver
// substrate, and the serving layer: ., internal/lp, internal/ilp,
// internal/mcmf, internal/selection, internal/obs, internal/serve. Exit
// status 1 lists every uncommented identifier as file:line: name.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultDirs is the audited package set when no arguments are given.
var defaultDirs = []string{
	".",
	"internal/lp",
	"internal/ilp",
	"internal/mcmf",
	"internal/selection",
	"internal/obs",
	"internal/serve",
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: docscheck [dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	var missing []string
	total := 0
	for _, dir := range dirs {
		m, n, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		missing = append(missing, m...)
		total += n
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		for _, m := range missing {
			fmt.Println(m)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d of %d exported identifiers lack doc comments\n",
			len(missing), total)
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d exported identifiers documented across %d packages\n",
		total, len(dirs))
}

// checkDir audits one package directory, returning the flagged identifiers
// (as "file:line: name") and the total number of exported identifiers seen.
func checkDir(dir string) (missing []string, total int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	fset := token.NewFileSet()
	pkgDoc := false
	var files []*ast.File
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, 0, err
		}
		if f.Doc != nil {
			pkgDoc = true
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	if len(files) == 0 {
		return nil, 0, fmt.Errorf("%s: no Go files", dir)
	}
	total++ // the package clause itself
	if !pkgDoc {
		missing = append(missing, fmt.Sprintf("%s: package %s", dir, files[0].Name.Name))
	}
	flag := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, name))
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !exportedFunc(d) {
					continue
				}
				total++
				if d.Doc == nil {
					flag(d.Pos(), funcName(d))
				}
			case *ast.GenDecl:
				m, n := checkGenDecl(fset, d)
				missing = append(missing, m...)
				total += n
			}
		}
	}
	return missing, total, nil
}

// exportedFunc reports whether a function or method is part of the public
// surface: the name is exported and, for methods, the receiver's base type
// is too.
func exportedFunc(d *ast.FuncDecl) bool {
	if !d.Name.IsExported() {
		return false
	}
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	return ast.IsExported(receiverType(d.Recv.List[0].Type))
}

// funcName renders a method as Type.Name and a function as Name.
func funcName(d *ast.FuncDecl) string {
	if d.Recv != nil && len(d.Recv.List) > 0 {
		return receiverType(d.Recv.List[0].Type) + "." + d.Name.Name
	}
	return d.Name.Name
}

// receiverType unwraps pointers and generic instantiations down to the
// receiver's base type name.
func receiverType(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return receiverType(t.X)
	case *ast.IndexExpr:
		return receiverType(t.X)
	case *ast.Ident:
		return t.Name
	}
	return ""
}

// checkGenDecl audits one type/const/var declaration group. A group-level
// doc comment covers undocumented const/var specs inside it (the idiomatic
// enum-block form); type specs and their exported fields always need their
// own comments.
func checkGenDecl(fset *token.FileSet, d *ast.GenDecl) (missing []string, total int) {
	flag := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, name))
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			total++
			if s.Doc == nil && (len(d.Specs) > 1 || d.Doc == nil) {
				flag(s.Pos(), s.Name.Name)
			}
			m, n := checkFields(fset, s)
			missing = append(missing, m...)
			total += n
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				total++
				if s.Doc == nil && s.Comment == nil && d.Doc == nil {
					flag(name.Pos(), name.Name)
				}
			}
		}
	}
	return missing, total
}

// checkFields audits the exported fields of a struct type and the exported
// methods of an interface type; either a leading doc comment or a trailing
// line comment counts. Embedded fields are skipped — they are documented at
// their own declaration.
func checkFields(fset *token.FileSet, s *ast.TypeSpec) (missing []string, total int) {
	var fields *ast.FieldList
	switch t := s.Type.(type) {
	case *ast.StructType:
		fields = t.Fields
	case *ast.InterfaceType:
		fields = t.Methods
	default:
		return nil, 0
	}
	flag := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, name))
	}
	for _, f := range fields.List {
		if len(f.Names) == 0 {
			continue // embedded
		}
		for _, name := range f.Names {
			if !name.IsExported() {
				continue
			}
			total++
			if f.Doc == nil && f.Comment == nil {
				flag(name.Pos(), s.Name.Name+"."+name.Name)
			}
		}
	}
	return missing, total
}
