package main

import (
	"reflect"
	"testing"
)

// TestGenRequestsDeterministic pins the replayability contract: the same
// (mix, n, seed) triple yields an identical schedule, a different seed a
// different one.
func TestGenRequestsDeterministic(t *testing.T) {
	a := genRequests("smoke", 50, 7)
	b := genRequests("smoke", 50, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := genRequests("smoke", 50, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a) != 50 {
		t.Fatalf("schedule length %d, want 50", len(a))
	}
}

// TestGenRequestsMixShape checks hot-key skew and burst structure: the hot
// bench dominates the smoke mix and the schedule contains both back-to-back
// dispatches and pauses.
func TestGenRequestsMixShape(t *testing.T) {
	specs := genRequests("smoke", 400, 3)
	byBench := map[string]int{}
	zeroDelay, pauses := 0, 0
	for _, s := range specs {
		byBench[s.Bench]++
		if s.DelayMS == 0 {
			zeroDelay++
		} else {
			pauses++
		}
	}
	if hot := byBench["I1"]; hot < 200 {
		t.Errorf("hot key I1 got %d/400 requests, want majority", hot)
	}
	if zeroDelay == 0 || pauses == 0 {
		t.Errorf("schedule has no burst structure: %d immediate, %d paused", zeroDelay, pauses)
	}
	// The hopeless mix must be all 1 ms budgets.
	for _, s := range genRequests("hopeless", 50, 1) {
		if s.TimeoutMS != 1 {
			t.Fatalf("hopeless mix emitted timeout %d ms", s.TimeoutMS)
		}
	}
}

// TestCompareSLO pins the gate: within thresholds passes, latency blowups
// and error-rate growth fail, degraded/429 changes never gate.
func TestCompareSLO(t *testing.T) {
	base := &Report{
		LatencyMS: LatencyMS{P50: 100, P95: 200, P99: 300},
		Rates:     ReportRates{Error: 0.00, TooMany: 0.05, Degraded: 0.10},
		Counts:    ReportCounts{OK: 50},
	}
	slo := SLO{LatencyFactor: 10, ErrorPP: 2}

	ok := &Report{
		LatencyMS: LatencyMS{P50: 500, P95: 1500, P99: 2900},
		Rates:     ReportRates{Error: 0.01, TooMany: 0.50, Degraded: 0.90},
		Counts:    ReportCounts{OK: 40},
	}
	if v := compareSLO(base, ok, slo); len(v) != 0 {
		t.Errorf("within-threshold run flagged: %v", v)
	}

	slow := &Report{
		LatencyMS: LatencyMS{P50: 100, P95: 200, P99: 3100},
		Counts:    ReportCounts{OK: 40},
	}
	if v := compareSLO(base, slow, slo); len(v) != 1 {
		t.Errorf("p99 blowup: got %v, want 1 violation", v)
	}

	flaky := &Report{
		LatencyMS: LatencyMS{P50: 100, P95: 200, P99: 300},
		Rates:     ReportRates{Error: 0.05},
		Counts:    ReportCounts{OK: 40},
	}
	if v := compareSLO(base, flaky, slo); len(v) != 1 {
		t.Errorf("error-rate growth: got %v, want 1 violation", v)
	}

	dead := &Report{Counts: ReportCounts{OK: 0}}
	if v := compareSLO(base, dead, slo); len(v) == 0 {
		t.Error("all-failed run passed the gate")
	}

	// Dedup gating: a mismatch always fails, a reduction collapse below
	// half the baseline fails, jitter above that floor passes.
	dbase := &Report{Counts: ReportCounts{OK: 50}, Dedup: &DedupStats{EffectiveReduction: 10}}
	for _, tc := range []struct {
		name string
		ded  DedupStats
		want int
	}{
		{"jitter ok", DedupStats{EffectiveReduction: 6}, 0},
		{"collapse", DedupStats{EffectiveReduction: 4}, 1},
		{"mismatch", DedupStats{EffectiveReduction: 10, Mismatches: 2}, 1},
	} {
		ded := tc.ded
		cur := &Report{Counts: ReportCounts{OK: 50}, Dedup: &ded}
		if v := compareSLO(dbase, cur, slo); len(v) != tc.want {
			t.Errorf("dedup gate %s: got %v, want %d violations", tc.name, v, tc.want)
		}
	}
}

// TestBaselineRoundTrip writes reports, rediscovers the newest baseline of
// each mix, and reads them back intact — a dup baseline must never be
// picked up as a smoke baseline and vice versa.
func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	old := &Report{Mix: "smoke", LatencyMS: LatencyMS{P99: 1}}
	cur := &Report{Mix: "smoke", LatencyMS: LatencyMS{P99: 2}}
	dup := &Report{Mix: "dup", Dedup: &DedupStats{EffectiveReduction: 9}}
	if err := writeReport(dir+"/LOAD_2026-01-01.json", old); err != nil {
		t.Fatal(err)
	}
	if err := writeReport(dir+"/LOAD_2026-08-08.json", cur); err != nil {
		t.Fatal(err)
	}
	if err := writeReport(dir+"/LOAD_2026-09-09-dup.json", dup); err != nil {
		t.Fatal(err)
	}
	path, err := newestBaseline(dir, "smoke")
	if err != nil {
		t.Fatal(err)
	}
	if path != dir+"/LOAD_2026-08-08.json" {
		t.Fatalf("newest smoke baseline = %s", path)
	}
	got, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.LatencyMS.P99 != 2 {
		t.Fatalf("round-trip lost data: %+v", got)
	}
	dupPath, err := newestBaseline(dir, "dup")
	if err != nil {
		t.Fatal(err)
	}
	if dupPath != dir+"/LOAD_2026-09-09-dup.json" {
		t.Fatalf("newest dup baseline = %s", dupPath)
	}
	dupGot, err := readReport(dupPath)
	if err != nil {
		t.Fatal(err)
	}
	if dupGot.Dedup == nil || dupGot.Dedup.EffectiveReduction != 9 {
		t.Fatalf("dedup block lost in round trip: %+v", dupGot)
	}
	if _, err := newestBaseline(dir, "eco"); err == nil {
		t.Error("missing mix produced a baseline")
	}
	if _, err := newestBaseline(t.TempDir(), "smoke"); err == nil {
		t.Error("empty dir produced a baseline")
	}
}

// TestReplayEndToEnd replays a small hopeless mix against the real
// in-process serving stack: every request must come back 200+degraded
// (never an error), the latency summary must be populated, and the /metrics
// exposition must pass the lint before shutdown.
func TestReplayEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up the full serving stack")
	}
	base, shutdown, err := bootInProcess(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	specs := genRequests("hopeless", 6, 11)
	rep, err := replay(base, specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	if rep.Counts.Errors != 0 {
		t.Errorf("hopeless mix produced %d errors, want 0", rep.Counts.Errors)
	}
	if rep.Counts.OK+rep.Counts.TooMany != 6 {
		t.Errorf("outcomes don't add up: %+v", rep.Counts)
	}
	if rep.Counts.Degraded != rep.Counts.OK {
		t.Errorf("hopeless mix: %d/%d OK responses degraded, want all", rep.Counts.Degraded, rep.Counts.OK)
	}
	if rep.Counts.OK > 0 && rep.LatencyMS.P50 <= 0 {
		t.Errorf("latency summary empty: %+v", rep.LatencyMS)
	}
	if rep.ThroughputRPS <= 0 {
		t.Errorf("throughput %f, want > 0", rep.ThroughputRPS)
	}
}

// TestReplayDupEndToEnd replays the duplicate-heavy mix against the real
// in-process stack and pins the acceptance criterion: at a 10:1 duplicate
// ratio the server must run at least 5x fewer solves than items issued,
// with zero payload mismatches across deduplicated responses (replayDup
// errors on any mismatch).
func TestReplayDupEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up the full serving stack")
	}
	base, shutdown, err := bootInProcess(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := replayDup(base, 60, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	d := rep.Dedup
	if d == nil {
		t.Fatal("dup run produced no dedup block")
	}
	if d.DupRatio < 10 {
		t.Errorf("dup ratio %.1f:1, want >= 10:1", d.DupRatio)
	}
	if d.EffectiveReduction < 5 {
		t.Errorf("effective solve reduction %.1fx, want >= 5x (solves_run=%d of %d items)",
			d.EffectiveReduction, d.SolvesRun, d.Items)
	}
	if d.Mismatches != 0 {
		t.Errorf("%d payload mismatches, want 0", d.Mismatches)
	}
	if d.CacheHits+d.CoalesceJoins == 0 {
		t.Error("neither cache hits nor coalesce joins recorded")
	}
	if rep.Counts.Errors != 0 {
		t.Errorf("dup mix produced %d errors, want 0", rep.Counts.Errors)
	}
}
