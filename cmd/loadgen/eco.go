package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"operon/internal/benchgen"
	"operon/internal/obs"
	"operon/internal/serve"
)

// ecoBench is the benchmark the eco mix edits; small enough that an edit
// loop of tens of rounds stays inside the CI budget, large enough that the
// incremental resolve's reuse is visible in the latency split.
const ecoBench = "I3"

// replayEco drives the sticky-session edit loop against base: `sessions`
// concurrent sessions are created (POST /sessions, the cold solve), then
// each replays its own deterministic MoveScript one edit per request
// (POST /sessions/{id}/edit, the incremental resolve), probes a full-reuse
// empty script every eighth round, and finally deletes its session. Each
// session's script derives from seed+index, so the same (n, sessions, seed)
// triple replays byte-identical edit traffic. The report counts every HTTP
// request (creates, edits, deletes); the latency histogram covers the 200s,
// which makes the cold-create vs warm-edit split visible in the quantiles.
func replayEco(base string, n, sessions int, seed int64) (*Report, error) {
	if sessions < 1 {
		sessions = 1
	}
	editsPer := n / sessions
	if editsPer < 1 {
		editsPer = 1
	}
	spec, err := benchgen.SpecByName(ecoBench)
	if err != nil {
		return nil, err
	}
	design, err := benchgen.Generate(spec)
	if err != nil {
		return nil, err
	}

	hist := obs.NewHistogram("client/session", nil)
	var total, ok, tooMany, errs, degraded atomic.Int64

	// request posts one JSON body and folds the outcome into the tallies,
	// returning the decoded session response on 200.
	request := func(path string, body any) (*serve.SessionResponse, bool) {
		total.Add(1)
		buf, err := json.Marshal(body)
		if err != nil {
			errs.Add(1)
			return nil, false
		}
		start := time.Now()
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			errs.Add(1)
			return nil, false
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			hist.RecordDuration(time.Since(start))
			ok.Add(1)
			var sr serve.SessionResponse
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				errs.Add(1)
				return nil, false
			}
			if sr.Degraded {
				degraded.Add(1)
			}
			return &sr, true
		case http.StatusTooManyRequests:
			tooMany.Add(1)
		default:
			errs.Add(1)
		}
		return nil, false
	}

	start := time.Now()
	var wg sync.WaitGroup
	for si := 0; si < sessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sr, sok := request("/sessions", serve.SessionRequest{
				Bench: ecoBench, SkipWDM: true, TimeoutMS: 60_000,
			})
			if !sok {
				return
			}
			ops := benchgen.MoveScript(design, editsPer, seed+int64(si))
			for i, op := range ops {
				body := serve.EditRequest{Edits: []benchgen.EditOp{op}, TimeoutMS: 60_000}
				if i%8 == 7 {
					// Full-reuse probe: an empty script must still 200 fast.
					body.Edits = nil
				}
				if _, eok := request("/sessions/"+sr.SessionID+"/edit", body); !eok {
					return
				}
			}
			// Tear the session down so the run leaves no TTL garbage behind.
			total.Add(1)
			req, err := http.NewRequest(http.MethodDelete, base+"/sessions/"+sr.SessionID, nil)
			if err != nil {
				errs.Add(1)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs.Add(1)
				return
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				ok.Add(1)
			} else {
				errs.Add(1)
			}
		}(si)
	}
	wg.Wait()
	dur := time.Since(start)

	snap := hist.Snapshot()
	const ms = 1e6 // histogram values are nanoseconds
	tot := total.Load()
	rep := &Report{
		Requests:      int(tot),
		Concurrency:   sessions,
		DurationS:     dur.Seconds(),
		ThroughputRPS: float64(tot) / dur.Seconds(),
		Counts: ReportCounts{
			OK: ok.Load(), TooMany: tooMany.Load(),
			Errors: errs.Load(), Degraded: degraded.Load(),
		},
		LatencyMS: LatencyMS{
			P50:  snap.Quantile(0.50) / ms,
			P95:  snap.Quantile(0.95) / ms,
			P99:  snap.Quantile(0.99) / ms,
			Mean: snap.Mean() / ms,
		},
	}
	if tot > 0 {
		rep.Rates = ReportRates{
			Error:    float64(rep.Counts.Errors) / float64(tot),
			TooMany:  float64(rep.Counts.TooMany) / float64(tot),
			Degraded: float64(rep.Counts.Degraded) / float64(tot),
		}
	}
	if rep.Counts.OK == 0 {
		return rep, fmt.Errorf("eco mix: no successful requests (%d errors)", rep.Counts.Errors)
	}
	return rep, nil
}
