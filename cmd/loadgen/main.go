// Command loadgen replays deterministic request mixes against operond and
// gates the result on committed SLOs.
//
// The generator is seeded: a mix is a reproducible schedule of solve
// requests with hot-key skew (one benchmark dominates, like a production
// hot shard), burst arrivals (back-to-back dispatches separated by pauses)
// and mixed time budgets (generous, tight, and deliberately hopeless ones
// that must come back degraded, never failed). The eco mix is different in
// kind: it replays the interactive editing workload — concurrent sticky
// sessions each looping POST /sessions/{id}/edit with deterministic
// one-pin moves (and periodic empty-script full-reuse probes), exercising
// the incremental re-synthesis path end to end. The dup mix replays a
// duplicate-heavy sweep — six distinct instances hammered with hot-key
// skew as singles and /solve/batch arrays — and reports the server-side
// dedup win (effective solves per request from /metrics.json counter
// deltas) while differentially checking that deduplicated responses stay
// bit-identical. The target is either a remote operond (-url) or a full
// in-process serving stack — the real internal/serve Server on an
// ephemeral listener — so CI needs no daemon.
//
// After the run, loadgen reports client-observed p50/p95/p99 latency,
// throughput, and error/429/degraded rates, writes them to LOAD_<date>.json
// (or -out), and — with -check — compares against the newest committed
// LOAD_*.json baseline, exiting non-zero when latency or error SLOs
// regress beyond the (deliberately generous, CI-noise-tolerant)
// thresholds. In-process runs also lint the server's /metrics Prometheus
// exposition before shutting down.
//
// Usage:
//
//	go run ./cmd/loadgen -requests 60 -check -out LOAD_ci.json.tmp
//	go run ./cmd/loadgen -url http://prod-host:8080 -mix soak
//
// CI runs `make load-smoke`; `make load-compare` prints the delta against
// the committed baseline without rewriting it.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	operon "operon"
	"operon/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	var (
		url         = flag.String("url", "", "target operond base URL (empty = boot an in-process server)")
		mix         = flag.String("mix", "smoke", "request mix: smoke, soak, hopeless, eco (sticky-session edit loop) or dup (duplicate-heavy single+batch traffic)")
		requests    = flag.Int("requests", 60, "total requests to replay")
		concurrency = flag.Int("concurrency", 4, "client connections issuing requests")
		seed        = flag.Int64("seed", 1, "mix generator seed")
		queueLen    = flag.Int("queue", 16, "in-process server queue length")
		srvConc     = flag.Int("server-concurrency", 2, "in-process server solve concurrency")
		out         = flag.String("out", "", "report path (default LOAD_<date>.json; *.tmp paths are gitignored)")
		baseline    = flag.String("baseline", "", "baseline report to compare against (default: newest committed LOAD_*.json)")
		check       = flag.Bool("check", false, "exit non-zero when the run regresses the baseline SLOs")
		latFactor   = flag.Float64("slo-latency-factor", 10, "allowed p50/p95/p99 growth over baseline (CI machines vary widely)")
		errPP       = flag.Float64("slo-error-pp", 2, "allowed error-rate growth over baseline, percentage points")
		noWrite     = flag.Bool("no-write", false, "skip writing the report file")
		sessions    = flag.Int("sessions", 4, "concurrent sticky sessions (eco mix only)")
		maxErrors   = flag.Int("max-errors", -1, "exit non-zero when errors exceed this count (-1 = off)")
		minReduce   = flag.Float64("min-reduction", 0, "exit non-zero when the dup mix's effective solve reduction falls below this factor (0 = off)")
		minHits     = flag.Int64("min-cache-hits", 0, "exit non-zero when the dup mix sees fewer cache hits than this (0 = off)")
	)
	flag.Parse()

	base := *url
	var shutdown func() error
	if base == "" {
		var err error
		base, shutdown, err = bootInProcess(*queueLen, *srvConc)
		if err != nil {
			log.Fatal(err)
		}
	}

	var rep *Report
	var err error
	switch *mix {
	case "eco":
		rep, err = replayEco(base, *requests, *sessions, *seed)
	case "dup":
		rep, err = replayDup(base, *requests, *concurrency, *seed)
	default:
		rep, err = replay(base, genRequests(*mix, *requests, *seed), *concurrency)
	}
	if err != nil {
		log.Fatal(err)
	}
	rep.Mix = *mix
	rep.Seed = *seed
	rep.Generated = time.Now().UTC().Format(time.RFC3339)

	if shutdown != nil {
		if err := shutdown(); err != nil {
			log.Fatal(err)
		}
	}

	printReport(os.Stdout, rep)

	if *maxErrors >= 0 && rep.Counts.Errors > int64(*maxErrors) {
		log.Fatalf("error gate: %d errors > %d allowed", rep.Counts.Errors, *maxErrors)
	}
	if d := rep.Dedup; d != nil {
		if *minReduce > 0 && d.EffectiveReduction < *minReduce {
			log.Fatalf("dedup gate: effective solve reduction %.1fx < %.1fx required", d.EffectiveReduction, *minReduce)
		}
		if *minHits > 0 && d.CacheHits < *minHits {
			log.Fatalf("dedup gate: %d cache hits < %d required", d.CacheHits, *minHits)
		}
	}

	if !*noWrite {
		path := *out
		if path == "" {
			// The smoke mix keeps the historical unsuffixed name so old
			// baselines stay comparable; other mixes are suffixed.
			path = fmt.Sprintf("LOAD_%s.json", time.Now().UTC().Format("2006-01-02"))
			if *mix != "smoke" {
				path = fmt.Sprintf("LOAD_%s-%s.json", time.Now().UTC().Format("2006-01-02"), *mix)
			}
		}
		if err := writeReport(path, rep); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", path)
	}

	if *check {
		basePath := *baseline
		if basePath == "" {
			basePath, err = newestBaseline(".", rep.Mix)
			if err != nil {
				log.Fatal(err)
			}
		}
		baseRep, err := readReport(basePath)
		if err != nil {
			log.Fatal(err)
		}
		violations := compareSLO(baseRep, rep, SLO{LatencyFactor: *latFactor, ErrorPP: *errPP})
		fmt.Printf("\nSLO gate vs %s:\n", basePath)
		if len(violations) == 0 {
			fmt.Println("  ok — within thresholds")
			return
		}
		for _, v := range violations {
			fmt.Printf("  REGRESSION: %s\n", v)
		}
		os.Exit(1)
	}
}

// bootInProcess starts the real serving stack on an ephemeral listener and
// returns its base URL plus a shutdown hook that also lints the /metrics
// Prometheus exposition before tearing the server down.
func bootInProcess(queueLen, concurrency int) (string, func() error, error) {
	cfg := operon.DefaultConfig()
	srv := serve.New(serve.Options{
		Config:         cfg,
		QueueLen:       queueLen,
		Concurrency:    concurrency,
		DefaultTimeout: time.Minute,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	shutdown := func() error {
		if err := lintMetrics(base); err != nil {
			return err
		}
		srv.Abort()
		if err := httpSrv.Close(); err != nil {
			return err
		}
		srv.Shutdown()
		if err := <-errc; err != http.ErrServerClosed {
			return err
		}
		return nil
	}
	return base, shutdown, nil
}
