package main

import (
	"math/rand"
)

// reqSpec is one scheduled request of a mix: which benchmark, what time
// budget, and how long the dispatcher pauses before releasing it (zero
// inside a burst, tens of milliseconds between bursts).
type reqSpec struct {
	Bench     string
	TimeoutMS int64
	DelayMS   int
}

// kindWeight is one benchmark class of a mix with its selection weight:
// hot-key skew is expressed by giving one bench most of the mass.
type kindWeight struct {
	bench     string
	timeoutMS int64
	weight    float64
}

// mixKinds returns the weighted request classes of a named mix.
//
//	smoke    — the CI gate: hot-key skew onto I1 (production hot shard),
//	           some I2/I3, a tight-budget slice and a hopeless 1 ms slice
//	           that must degrade rather than fail.
//	soak     — the same shape over the bigger benches, generous budgets.
//	hopeless — every request under a 1 ms budget: pure degradation-ladder
//	           stress, every response must still be 200.
func mixKinds(mix string) []kindWeight {
	switch mix {
	case "soak":
		return []kindWeight{
			{bench: "I4", timeoutMS: 10_000, weight: 0.55},
			{bench: "I5", timeoutMS: 10_000, weight: 0.25},
			{bench: "I2", timeoutMS: 10_000, weight: 0.15},
			{bench: "I5", timeoutMS: 1, weight: 0.05},
		}
	case "hopeless":
		return []kindWeight{
			{bench: "I1", timeoutMS: 1, weight: 0.7},
			{bench: "I3", timeoutMS: 1, weight: 0.3},
		}
	default: // smoke
		return []kindWeight{
			{bench: "I1", timeoutMS: 2000, weight: 0.55},
			{bench: "I2", timeoutMS: 2000, weight: 0.15},
			{bench: "I3", timeoutMS: 2000, weight: 0.10},
			{bench: "I1", timeoutMS: 300, weight: 0.12},
			{bench: "I3", timeoutMS: 1, weight: 0.08},
		}
	}
}

// genRequests expands a named mix into a deterministic request schedule:
// the same (mix, n, seed) triple always yields byte-identical specs, so a
// regression hunt can replay the exact load that tripped the gate. Arrivals
// come in bursts: runs of 2–7 back-to-back dispatches separated by 5–25 ms
// pauses.
func genRequests(mix string, n int, seed int64) []reqSpec {
	rng := rand.New(rand.NewSource(seed))
	kinds := mixKinds(mix)
	total := 0.0
	for _, k := range kinds {
		total += k.weight
	}
	specs := make([]reqSpec, 0, n)
	burstLeft := 0
	for i := 0; i < n; i++ {
		delay := 0
		if burstLeft == 0 {
			burstLeft = 2 + rng.Intn(6)
			if i > 0 {
				delay = 5 + rng.Intn(21)
			}
		}
		burstLeft--
		pick := rng.Float64() * total
		k := kinds[len(kinds)-1]
		for _, cand := range kinds {
			if pick < cand.weight {
				k = cand
				break
			}
			pick -= cand.weight
		}
		specs = append(specs, reqSpec{Bench: k.bench, TimeoutMS: k.timeoutMS, DelayMS: delay})
	}
	return specs
}
