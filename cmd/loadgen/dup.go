package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"operon/internal/obs"
	"operon/internal/serve"
)

// The dup mix replays the duplicate-heavy traffic shape of a design-space
// sweep: a small set of distinct instances (benchmark × mode × WDM toggle)
// is hammered with hot-key skew, as singles and as /solve/batch arrays, all
// under generous budgets so every result is cacheable. The server-side
// efficiency win is read off the /metrics.json counters (solves actually
// run vs items issued), and every response is differentially checked
// against the first response of its key — dedup must be invisible in the
// payload, bit for bit.

// dupKey is one distinct instance of the dup mix.
type dupKey struct {
	bench   string
	mode    string
	skipWDM bool
	weight  float64 // hot-key skew: key 0 dominates
}

// dupKeys returns the mix's distinct instances. Budgets are uniform and
// generous (nothing may degrade: degraded results are timing artifacts,
// not cacheable, and not comparable).
func dupKeys() []dupKey {
	return []dupKey{
		{bench: "I1", mode: "lr", skipWDM: false, weight: 0.40},
		{bench: "I1", mode: "greedy", skipWDM: false, weight: 0.20},
		{bench: "I1", mode: "lr", skipWDM: true, weight: 0.12},
		{bench: "I1", mode: "greedy", skipWDM: true, weight: 0.10},
		{bench: "I2", mode: "lr", skipWDM: false, weight: 0.10},
		{bench: "I2", mode: "greedy", skipWDM: false, weight: 0.08},
	}
}

// dupSemantics is the content-determined part of a solve response — the
// fields that must be bit-identical across cold, coalesced, and cached
// answers of one key.
type dupSemantics struct {
	Design     string
	Flow       string
	PowerMW    float64
	Violations int
	HyperNets  int
	WDMsUsed   int
}

// semanticsOf projects a response onto its comparable core.
func semanticsOf(sr *serve.SolveResponse) dupSemantics {
	return dupSemantics{
		Design: sr.Design, Flow: sr.Flow, PowerMW: sr.PowerMW,
		Violations: sr.Violations, HyperNets: sr.HyperNets, WDMsUsed: sr.WDMsUsed,
	}
}

// fetchCounters snapshots the server's counter map from /metrics.json.
func fetchCounters(base string) (map[string]int64, error) {
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decode /metrics.json: %w", err)
	}
	out := make(map[string]int64, len(snap.Counters))
	for _, c := range snap.Counters {
		out[c.Name] = c.Value
	}
	return out, nil
}

// replayDup drives the duplicate-heavy mix against base: n dispatches with
// client-side concurrency, every seventh dispatch a 6-item /solve/batch
// drawn from the same skewed key distribution. The returned report carries
// the Dedup block; a payload mismatch across duplicates of one key is a
// hard error.
func replayDup(base string, n, concurrency int, seed int64) (*Report, error) {
	if concurrency < 1 {
		concurrency = 1
	}
	keys := dupKeys()
	before, err := fetchCounters(base)
	if err != nil {
		return nil, fmt.Errorf("counter snapshot before run: %w", err)
	}

	hist := obs.NewHistogram("client/dup", nil)
	var items, ok, tooMany, errs, degraded, mismatches atomic.Int64

	// Differential oracle: the first non-degraded response of each key is
	// the reference every later duplicate must equal exactly.
	var refMu sync.Mutex
	refs := make([]*dupSemantics, len(keys))
	checkResponse := func(ki int, sr *serve.SolveResponse) {
		if sr.Degraded {
			degraded.Add(1)
			return
		}
		got := semanticsOf(sr)
		refMu.Lock()
		defer refMu.Unlock()
		if refs[ki] == nil {
			refs[ki] = &got
			return
		}
		if *refs[ki] != got {
			mismatches.Add(1)
		}
	}

	reqOf := func(ki int) serve.SolveRequest {
		k := keys[ki]
		return serve.SolveRequest{
			Bench: k.bench, Mode: k.mode, SkipWDM: k.skipWDM, TimeoutMS: 60_000,
		}
	}

	// dispatch is one scheduled unit: a single /solve key or a batch of
	// keys for /solve/batch.
	type dispatch struct {
		single  int
		batch   []int
		delayMS int
	}
	rng := rand.New(rand.NewSource(seed))
	total := 0.0
	for _, k := range keys {
		total += k.weight
	}
	pickKey := func() int {
		pick := rng.Float64() * total
		for i, k := range keys {
			if pick < k.weight {
				return i
			}
			pick -= k.weight
		}
		return len(keys) - 1
	}
	var schedule []dispatch
	burstLeft := 0
	for i := 0; i < n; i++ {
		delay := 0
		if burstLeft == 0 {
			burstLeft = 2 + rng.Intn(6)
			if i > 0 {
				delay = 5 + rng.Intn(16)
			}
		}
		burstLeft--
		if i%7 == 6 {
			b := make([]int, 6)
			for j := range b {
				b[j] = pickKey()
			}
			schedule = append(schedule, dispatch{single: -1, batch: b, delayMS: delay})
			items.Add(6)
			continue
		}
		schedule = append(schedule, dispatch{single: pickKey(), delayMS: delay})
		items.Add(1)
	}

	work := make(chan dispatch)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range work {
				start := time.Now()
				if d.single >= 0 {
					body, _ := json.Marshal(reqOf(d.single))
					resp, err := http.Post(base+"/solve", "application/json", bytes.NewReader(body))
					if err != nil {
						errs.Add(1)
						continue
					}
					switch resp.StatusCode {
					case http.StatusOK:
						hist.RecordDuration(time.Since(start))
						ok.Add(1)
						var sr serve.SolveResponse
						if json.NewDecoder(resp.Body).Decode(&sr) == nil {
							checkResponse(d.single, &sr)
						}
					case http.StatusTooManyRequests:
						tooMany.Add(1)
					default:
						errs.Add(1)
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					continue
				}
				reqs := make([]serve.SolveRequest, len(d.batch))
				for j, ki := range d.batch {
					reqs[j] = reqOf(ki)
				}
				body, _ := json.Marshal(reqs)
				resp, err := http.Post(base+"/solve/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					errs.Add(int64(len(d.batch)))
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs.Add(int64(len(d.batch)))
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					continue
				}
				hist.RecordDuration(time.Since(start))
				var br serve.BatchResponse
				if err := json.NewDecoder(resp.Body).Decode(&br); err != nil || len(br.Results) != len(d.batch) {
					errs.Add(int64(len(d.batch)))
					resp.Body.Close()
					continue
				}
				resp.Body.Close()
				for j, item := range br.Results {
					if item.Error != "" {
						errs.Add(1)
						continue
					}
					ok.Add(1)
					sr := item.SolveResponse
					checkResponse(d.batch[j], &sr)
				}
			}
		}()
	}

	start := time.Now()
	for _, d := range schedule {
		if d.delayMS > 0 {
			time.Sleep(time.Duration(d.delayMS) * time.Millisecond)
		}
		work <- d
	}
	close(work)
	wg.Wait()
	dur := time.Since(start)

	after, err := fetchCounters(base)
	if err != nil {
		return nil, fmt.Errorf("counter snapshot after run: %w", err)
	}
	delta := func(name string) int64 { return after[name] - before[name] }

	snap := hist.Snapshot()
	const ms = 1e6 // histogram values are nanoseconds
	it := items.Load()
	rep := &Report{
		Requests:      int(it),
		Concurrency:   concurrency,
		DurationS:     dur.Seconds(),
		ThroughputRPS: float64(it) / dur.Seconds(),
		Counts: ReportCounts{
			OK: ok.Load(), TooMany: tooMany.Load(),
			Errors: errs.Load(), Degraded: degraded.Load(),
		},
		LatencyMS: LatencyMS{
			P50:  snap.Quantile(0.50) / ms,
			P95:  snap.Quantile(0.95) / ms,
			P99:  snap.Quantile(0.99) / ms,
			Mean: snap.Mean() / ms,
		},
	}
	if it > 0 {
		rep.Rates = ReportRates{
			Error:    float64(rep.Counts.Errors) / float64(it),
			TooMany:  float64(rep.Counts.TooMany) / float64(it),
			Degraded: float64(rep.Counts.Degraded) / float64(it),
		}
	}
	ded := &DedupStats{
		Items:         it,
		UniqueKeys:    len(keys),
		DupRatio:      float64(it) / float64(len(keys)),
		SolvesRun:     delta("http.solves_run"),
		CacheHits:     delta("http.cache_hits"),
		CoalesceJoins: delta("http.coalesce_joins"),
		Mismatches:    mismatches.Load(),
	}
	if ded.SolvesRun > 0 {
		ded.EffectiveReduction = float64(it) / float64(ded.SolvesRun)
	}
	rep.Dedup = ded
	if ded.Mismatches > 0 {
		return rep, fmt.Errorf("dup mix: %d duplicate responses differed from their key's reference payload", ded.Mismatches)
	}
	if rep.Counts.OK == 0 {
		return rep, fmt.Errorf("dup mix: no successful requests (%d errors)", rep.Counts.Errors)
	}
	return rep, nil
}
