package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"operon/internal/obs"
	"operon/internal/serve"
)

// Report is the wire format of a loadgen run — the LOAD_<date>.json files
// committed to the repo are exactly this struct, so a baseline is just a
// previous run.
type Report struct {
	// Generated is the RFC3339 UTC completion time of the run.
	Generated string `json:"generated"`
	// Mix, Seed, Requests and Concurrency reproduce the schedule.
	Mix         string `json:"mix"`
	Seed        int64  `json:"seed"`
	Requests    int    `json:"requests"`
	Concurrency int    `json:"concurrency"`
	// DurationS is the replay wall clock; ThroughputRPS = Requests/DurationS.
	DurationS     float64 `json:"duration_s"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// Counts are absolute outcome tallies, Rates the same as fractions of
	// the total (429s and degradations are expected outcomes of the mix,
	// not errors: a hopeless budget must degrade, a burst may bounce).
	Counts ReportCounts `json:"counts"`
	Rates  ReportRates  `json:"rates"`
	// LatencyMS summarises client-observed /solve wall clock over the
	// successful (200) requests only.
	LatencyMS LatencyMS `json:"latency_ms"`
	// Dedup is the server-side deduplication accounting of the dup mix
	// (nil for the other mixes). Requests counts items there: batch
	// dispatches contribute one item per array element.
	Dedup *DedupStats `json:"dedup,omitempty"`
}

// DedupStats quantifies how much work content-addressed coalescing, the
// result cache, and within-batch dedup saved during a dup-mix run. The
// solver-side numbers are /metrics.json counter deltas taken around the
// replay, so they measure what the server actually did, not what the
// client believes happened.
type DedupStats struct {
	// Items is the solve-item count issued (singles + batch elements);
	// UniqueKeys the distinct instances in the mix; DupRatio their ratio.
	Items      int64   `json:"items"`
	UniqueKeys int     `json:"unique_keys"`
	DupRatio   float64 `json:"dup_ratio"`
	// SolvesRun is the http.solves_run delta: solves that actually
	// executed. CacheHits and CoalesceJoins are the matching counter
	// deltas for items answered without running a solve.
	SolvesRun     int64 `json:"solves_run"`
	CacheHits     int64 `json:"cache_hits"`
	CoalesceJoins int64 `json:"coalesce_joins"`
	// EffectiveReduction is Items/SolvesRun — how many requests each
	// executed solve served on average.
	EffectiveReduction float64 `json:"effective_reduction"`
	// Mismatches counts duplicate responses whose semantic payload
	// differed from their key's reference — must be zero.
	Mismatches int64 `json:"mismatches"`
}

// ReportCounts are the absolute outcome tallies of a run.
type ReportCounts struct {
	// OK counts 200 responses, TooMany 429s, Errors everything else
	// (transport failures included). Degraded counts the subset of OK
	// responses that report degraded=true.
	OK       int64 `json:"ok"`
	TooMany  int64 `json:"too_many"`
	Errors   int64 `json:"errors"`
	Degraded int64 `json:"degraded"`
}

// ReportRates are the outcome tallies as fractions of total requests.
type ReportRates struct {
	// Error, TooMany and Degraded are Counts/Requests in [0,1].
	Error    float64 `json:"error"`
	TooMany  float64 `json:"too_many"`
	Degraded float64 `json:"degraded"`
}

// LatencyMS are client-observed latency quantiles in milliseconds.
type LatencyMS struct {
	// P50/P95/P99 are histogram-estimated quantiles; Mean is exact.
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
}

// replay dispatches the schedule against base with the given client
// concurrency and summarises the outcomes. Dispatch order and pacing follow
// the specs (bursts and pauses); completion order is whatever the server
// yields.
func replay(base string, specs []reqSpec, concurrency int) (*Report, error) {
	if concurrency < 1 {
		concurrency = 1
	}
	hist := obs.NewHistogram("client/solve", nil)
	var ok, tooMany, errs, degraded atomic.Int64

	work := make(chan reqSpec)
	var wg sync.WaitGroup
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range work {
				start := time.Now()
				resp, err := http.Post(base+"/solve", "application/json",
					strings.NewReader(fmt.Sprintf(`{"bench":%q,"timeout_ms":%d}`, spec.Bench, spec.TimeoutMS)))
				if err != nil {
					errs.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					hist.RecordDuration(time.Since(start))
					ok.Add(1)
					var sr serve.SolveResponse
					if json.NewDecoder(resp.Body).Decode(&sr) == nil && sr.Degraded {
						degraded.Add(1)
					}
				case http.StatusTooManyRequests:
					tooMany.Add(1)
				default:
					errs.Add(1)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	start := time.Now()
	for _, spec := range specs {
		if spec.DelayMS > 0 {
			time.Sleep(time.Duration(spec.DelayMS) * time.Millisecond)
		}
		work <- spec
	}
	close(work)
	wg.Wait()
	dur := time.Since(start)

	total := int64(len(specs))
	snap := hist.Snapshot()
	const ms = 1e6 // histogram values are nanoseconds
	rep := &Report{
		Requests:      len(specs),
		Concurrency:   concurrency,
		DurationS:     dur.Seconds(),
		ThroughputRPS: float64(total) / dur.Seconds(),
		Counts: ReportCounts{
			OK: ok.Load(), TooMany: tooMany.Load(),
			Errors: errs.Load(), Degraded: degraded.Load(),
		},
		LatencyMS: LatencyMS{
			P50:  snap.Quantile(0.50) / ms,
			P95:  snap.Quantile(0.95) / ms,
			P99:  snap.Quantile(0.99) / ms,
			Mean: snap.Mean() / ms,
		},
	}
	if total > 0 {
		rep.Rates = ReportRates{
			Error:    float64(rep.Counts.Errors) / float64(total),
			TooMany:  float64(rep.Counts.TooMany) / float64(total),
			Degraded: float64(rep.Counts.Degraded) / float64(total),
		}
	}
	return rep, nil
}

// printReport writes the human-readable run summary.
func printReport(w io.Writer, r *Report) {
	fmt.Fprintf(w, "loadgen: mix=%s seed=%d requests=%d concurrency=%d\n",
		r.Mix, r.Seed, r.Requests, r.Concurrency)
	fmt.Fprintf(w, "  duration    %.2fs (%.1f req/s)\n", r.DurationS, r.ThroughputRPS)
	fmt.Fprintf(w, "  outcomes    ok=%d 429=%d errors=%d degraded=%d\n",
		r.Counts.OK, r.Counts.TooMany, r.Counts.Errors, r.Counts.Degraded)
	fmt.Fprintf(w, "  rates       error=%.1f%% 429=%.1f%% degraded=%.1f%%\n",
		100*r.Rates.Error, 100*r.Rates.TooMany, 100*r.Rates.Degraded)
	fmt.Fprintf(w, "  latency_ms  p50=%.1f p95=%.1f p99=%.1f mean=%.1f\n",
		r.LatencyMS.P50, r.LatencyMS.P95, r.LatencyMS.P99, r.LatencyMS.Mean)
	if d := r.Dedup; d != nil {
		fmt.Fprintf(w, "  dedup       items=%d unique=%d (%.1f:1) solves_run=%d cache_hits=%d joins=%d\n",
			d.Items, d.UniqueKeys, d.DupRatio, d.SolvesRun, d.CacheHits, d.CoalesceJoins)
		fmt.Fprintf(w, "  dedup       effective reduction %.1fx, mismatches=%d\n",
			d.EffectiveReduction, d.Mismatches)
	}
}

// writeReport marshals the report to path.
func writeReport(path string, r *Report) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// readReport unmarshals a report from path.
func readReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// newestBaseline finds the lexicographically newest committed LOAD_*.json
// in dir whose recorded mix matches — the date-stamped naming makes
// lexicographic and chronological order agree, and filtering by mix keeps
// a dup baseline from gating a smoke run (their latency profiles differ by
// construction). Unreadable candidates are skipped.
func newestBaseline(dir, mix string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "LOAD_*.json"))
	if err != nil {
		return "", err
	}
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		r, err := readReport(matches[i])
		if err != nil {
			continue
		}
		if r.Mix == mix {
			return matches[i], nil
		}
	}
	return "", fmt.Errorf("no LOAD_*.json baseline for mix %q found in %s", mix, dir)
}

// SLO are the regression thresholds of the gate. They are deliberately
// loose: CI machines differ wildly from the machine that produced the
// committed baseline, so the gate is meant to catch order-of-magnitude
// latency collapses and correctness regressions (requests erroring), not
// single-digit-percent drift.
type SLO struct {
	// LatencyFactor bounds p50/p95/p99 growth: cur <= base*factor.
	LatencyFactor float64
	// ErrorPP bounds error-rate growth in percentage points.
	ErrorPP float64
}

// compareSLO returns the SLO violations of cur against base (empty = gate
// passes). Degraded and 429 rates are reported but never gated — both are
// legitimate, load-dependent outcomes the mix provokes on purpose.
func compareSLO(base, cur *Report, slo SLO) []string {
	var v []string
	if cur.Counts.OK == 0 {
		v = append(v, "no successful requests")
	}
	lat := []struct {
		name      string
		base, cur float64
	}{
		{"p50", base.LatencyMS.P50, cur.LatencyMS.P50},
		{"p95", base.LatencyMS.P95, cur.LatencyMS.P95},
		{"p99", base.LatencyMS.P99, cur.LatencyMS.P99},
	}
	for _, l := range lat {
		if l.base > 0 && l.cur > l.base*slo.LatencyFactor {
			v = append(v, fmt.Sprintf("latency %s %.1f ms > %.1f ms (baseline %.1f ms × %g)",
				l.name, l.cur, l.base*slo.LatencyFactor, l.base, slo.LatencyFactor))
		}
	}
	if allowed := base.Rates.Error + slo.ErrorPP/100; cur.Rates.Error > allowed {
		v = append(v, fmt.Sprintf("error rate %.2f%% > %.2f%% (baseline %.2f%% + %gpp)",
			100*cur.Rates.Error, 100*allowed, 100*base.Rates.Error, slo.ErrorPP))
	}
	// Dedup regressions (dup mix only): correctness is absolute, the
	// hit-rate gate allows half the baseline's reduction before failing —
	// scheduling jitter moves the cache/coalesce split between runs, but a
	// 2x collapse means dedup stopped working.
	if base.Dedup != nil && cur.Dedup != nil {
		if cur.Dedup.Mismatches > 0 {
			v = append(v, fmt.Sprintf("dedup payload mismatches: %d (must be 0)", cur.Dedup.Mismatches))
		}
		if floor := base.Dedup.EffectiveReduction / 2; cur.Dedup.EffectiveReduction < floor {
			v = append(v, fmt.Sprintf("effective solve reduction %.1fx < %.1fx (half of baseline %.1fx)",
				cur.Dedup.EffectiveReduction, floor, base.Dedup.EffectiveReduction))
		}
	}
	return v
}

// lintMetrics fetches /metrics from base and validates it line by line
// against the Prometheus text exposition format.
func lintMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	expo, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if err := obs.LintExposition(expo); err != nil {
		return fmt.Errorf("/metrics exposition invalid: %w", err)
	}
	return nil
}
