// Command bench is the benchmark-regression harness: it runs the
// Table-1 / Fig-3(b) / Fig-8 workloads plus the per-stage benchmarks
// (Lagrangian pricing, BI1S, the LP engines revised-vs-dense, the exact
// ILP selection with per-node LP accounting, min-cost max-flow)
// programmatically and emits a machine-readable BENCH_<date>.json with
// ns/op, allocs/op, bytes/op, and the wall-clock speedups of the parallel
// and memoized paths against their sequential / uncached baselines.
// Committed outputs establish the performance trajectory across PRs.
//
// The I6–I8 mega cases (20k–100k nets, cm-scale dies) sit beyond the
// paper's Table 1; -mega selects which of them run (default I6 — the
// largest that fits a single-core CI budget). Unselected mega entries are
// listed in the report's "skipped" array so cmd/benchcmp knows the omission
// was deliberate.
//
// Usage:
//
//	go run ./cmd/bench [-case I2] [-out BENCH_2006-01-02.json] [-quick]
//	                   [-mega I6,I7,I8|all|none] [-mega-nodes N]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	operon "operon"
	"operon/internal/benchgen"
	"operon/internal/geom"
	"operon/internal/ilp"
	"operon/internal/lp"
	"operon/internal/mcmf"
	"operon/internal/obs"
	"operon/internal/optics/bpm"
	"operon/internal/parallel"
	"operon/internal/selection"
	"operon/internal/serve"
	"operon/internal/signal"
	"operon/internal/steiner"
	"operon/internal/wdm"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// PeakHeapBytes is the maximum live heap (runtime.MemStats.HeapAlloc)
	// sampled while the benchmark ran — the measure that matters for the
	// mega cases, where footprint, not ns/op, is the scaling constraint.
	// benchcmp gates its growth above an absolute floor.
	PeakHeapBytes int64 `json:"peak_heap_bytes,omitempty"`
	// NodesPerSec is branch-and-bound throughput (ilp.nodes per second of
	// solve wall clock); only ILP entries fill it.
	NodesPerSec float64 `json:"ilp_nodes_per_sec,omitempty"`
}

// ILPStats describes one exact selection solve: branch-and-bound node
// count and the LP-engine work behind it (warm-started relaxations).
type ILPStats struct {
	Nodes          int     `json:"nodes"`
	LPSolves       int     `json:"lp_solves"`
	LPTimeNS       int64   `json:"lp_time_ns"`
	LPSolvesToNode float64 `json:"lp_solves_per_node"`
	LPNsPerSolve   float64 `json:"lp_ns_per_solve"`
	NodesPerSec    float64 `json:"nodes_per_sec"`
}

// Report is the JSON document cmd/bench emits.
type Report struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// GoMaxProcs is the scheduler's effective parallelism for the run
	// (runtime.GOMAXPROCS). Parallel-vs-sequential speedups only mean
	// something when it exceeds 1 — see SpeedupsNA.
	GoMaxProcs int     `json:"gomaxprocs"`
	Case       string  `json:"case"`
	Benchmarks []Entry `json:"benchmarks"`
	// ILP carries the per-node LP accounting of the ILP/Selection entry.
	ILP *ILPStats `json:"ilp,omitempty"`
	// Speedups relate pairs of benchmark entries: parallel vs sequential
	// and memoized vs uncached. Values > 1 are faster. Parallel-stage
	// speedups scale with the core count of the runner (CPUs above).
	// encoding/json marshals map keys in sorted order, so the emitted
	// document is byte-stable across runs of the same build.
	Speedups map[string]float64 `json:"speedups"`
	// SpeedupsNA lists speedup pairs that were not measured because they
	// cannot mean anything on this runner — parallel-vs-sequential
	// comparisons on a single-CPU machine measure pool overhead, not
	// parallelism, and would read as a regression.
	SpeedupsNA []string `json:"speedups_na,omitempty"`
	// Skipped lists benchmark entries this run intentionally did not
	// execute (mega cases outside the -mega selection). benchcmp treats a
	// baseline entry missing from a new report as a failure unless the new
	// report lists it here — dropping a benchmark must be explicit, never
	// an accident.
	Skipped []string `json:"skipped,omitempty"`
	// Acknowledged lists benchmark entries whose allocation profile changed
	// deliberately in this run (an algorithmic trade, e.g. presolve buying
	// fewer pivots with more working memory). benchcmp reports them but does
	// not gate them. Populated via -ack, so the waiver is a reviewed,
	// committed decision riding in the baseline itself.
	Acknowledged []string `json:"acknowledged,omitempty"`
	// Counters is the name-sorted obs counter snapshot of one untimed
	// instrumented pass over the solver workloads: LP pivots and
	// refactorisations, branch-and-bound nodes, min-cost-flow
	// augmentations, WDM arcs, and the BPM cache traffic. These are
	// behaviour measures, independent of machine speed — `make
	// bench-compare` diffs them across reports to catch algorithmic
	// regressions that wall-clock noise would hide. All entries except the
	// benchtime-dependent bpm.cache_* pair are deterministic.
	Counters []obs.CounterValue `json:"counters,omitempty"`
	// Histograms summarises the per-stage latency distributions of one
	// untimed instrumented flow run (its own tracer, so Counters above stay
	// comparable across reports): clustering, baselines, candidate
	// generation, selection, WDM, and the FD-BPM leaf. Wall-clock
	// quantiles are machine-dependent like ns/op; benchcmp reports them but
	// never gates on them.
	Histograms []HistEntry `json:"histograms,omitempty"`
}

// HistEntry is one per-stage latency histogram summary in the report.
type HistEntry struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
}

func main() {
	testing.Init() // registers test.benchtime before flag.Parse
	caseName := flag.String("case", "I2", "Table-1 case for the flow benchmarks")
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	quick := flag.Bool("quick", false, "single-iteration run (smoke test, noisy numbers)")
	mega := flag.String("mega", "I6", "comma-separated mega cases to run (I6,I7,I8; 'all', or '' to skip; skipped cases are listed in the report)")
	megaNodes := flag.Int("mega-nodes", 2000, "branch-and-bound node budget for the mega ILP entries")
	ack := flag.String("ack", "", "comma-separated benchmark names whose allocation-profile change is a deliberate trade (recorded in the report; benchcmp reports but does not gate them)")
	speedupOnly := flag.Bool("speedup-only", false, "run only the parallel-vs-sequential pairs (the multicore CI gate's fast path)")
	benchtime := flag.String("benchtime", "", "per-benchmark budget passed to testing (e.g. 3x or 2s; overrides -quick's 1x)")
	minPar := flag.Float64("min-par-speedup", 0, "fail when a parallel-vs-sequential speedup falls below this factor (0 = off; skipped with a notice when GOMAXPROCS=1)")
	flag.Parse()

	if *quick {
		// testing.Benchmark honours -test.benchtime via the flag package.
		if err := flag.Set("test.benchtime", "1x"); err != nil {
			fatal(err)
		}
	}
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fatal(err)
		}
	}

	// speedup guards against a zero denominator (possible under -quick when
	// a fast benchmark rounds to 0 ns/op) so the JSON never carries NaN.
	speedup := func(rep *Report, name string, num, den float64) {
		if den > 0 {
			rep.Speedups[name] = num / den
		}
	}
	rep := Report{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Case:       *caseName,
		Speedups:   map[string]float64{},
	}
	for _, name := range strings.Split(*ack, ",") {
		if name = strings.TrimSpace(name); name != "" {
			rep.Acknowledged = append(rep.Acknowledged, name)
		}
	}
	// parSpeedup records a parallel-vs-sequential speedup, or marks it n/a
	// on a single-CPU runner where the comparison could only measure pool
	// overhead.
	parSpeedup := func(rep *Report, name string, num, den float64) {
		if rep.GoMaxProcs <= 1 {
			rep.SpeedupsNA = append(rep.SpeedupsNA, name)
			return
		}
		speedup(rep, name, num, den)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", rep.Date)
	}
	// Fail on an unwritable output path now, not after minutes of benchmarks.
	if f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644); err != nil {
		fatal(err)
	} else {
		f.Close()
	}
	// Likewise fail on an unknown -mega selection up front.
	megaSel := map[string]bool{}
	switch *mega {
	case "", "none":
	case "all":
		for _, sp := range benchgen.MegaSpecs() {
			megaSel[sp.Name] = true
		}
	default:
		for _, name := range strings.Split(*mega, ",") {
			if name = strings.TrimSpace(name); name != "" {
				megaSel[name] = true
			}
		}
		known := map[string]bool{}
		for _, sp := range benchgen.MegaSpecs() {
			known[sp.Name] = true
		}
		for name := range megaSel {
			if !known[name] {
				fatal(fmt.Errorf("unknown mega case %q (have I6, I7, I8)", name))
			}
		}
	}

	d := mustDesign(*caseName)
	cfg := operon.DefaultConfig()
	// full is the normal run; -speedup-only keeps just the parallel-vs-
	// sequential pairs so the multicore CI job can gate them cheaply.
	full := !*speedupOnly
	// Shared between the full-run sections below (assigned in one, read in
	// another).
	var conns []wdm.Connection
	var wcfg wdm.Config
	var ilpInst *selection.Instance

	record := func(name string, fn func(b *testing.B)) Entry {
		fmt.Fprintf(os.Stderr, "bench: %s\n", name)
		sampler := startHeapSampler()
		r := testing.Benchmark(fn)
		peak := sampler.stop()
		e := Entry{
			Name:          name,
			N:             r.N,
			NsPerOp:       float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp:   r.AllocsPerOp(),
			BytesPerOp:    r.AllocedBytesPerOp(),
			PeakHeapBytes: peak,
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		return e
	}
	// setNodesPerSec back-fills the ILP throughput on the entry just
	// recorded (entries are appended, so the last one is the target).
	setNodesPerSec := func(nodes int, dur time.Duration) {
		if dur <= 0 || len(rep.Benchmarks) == 0 {
			return
		}
		rep.Benchmarks[len(rep.Benchmarks)-1].NodesPerSec =
			float64(nodes) / dur.Seconds()
	}
	runFlow := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			c := cfg
			c.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := operon.Run(d, c); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	// One untimed warm-up flow run fills the process-global caches (BPM
	// simulations, memoized geometry) so every benchmark below measures
	// steady state. This matters most under -quick, where a single
	// iteration would otherwise charge the cold-start allocations of those
	// caches to whichever benchmark runs first and make the allocation
	// profile incomparable with a full run's amortised numbers.
	if _, err := operon.Run(d, cfg); err != nil {
		fatal(err)
	}

	// Table 1: the OPERON-LR flow, sequential vs worker-pool.
	seq := record("Table1/OPERON-LR/"+*caseName+"/Workers1", runFlow(1))
	par := record("Table1/OPERON-LR/"+*caseName+"/WorkersN", runFlow(0))
	parSpeedup(&rep, "operon-lr workersN vs workers1", seq.NsPerOp, par.NsPerOp)

	if full {
		record("Table1/Electrical/"+*caseName, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := operon.RunElectrical(d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		record("Table1/Optical/"+*caseName, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := operon.RunOptical(d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})

		// Fig 3(b): the FD-BPM cascade, uncached solver vs process-wide cache.
		bcfg := bpm.DefaultConfig()
		uncached := record("Fig3b/Uncached", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bpm.SimulateUncached(bcfg, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
		// Warm the cache so Fig3b/Cached measures pure hits even under -quick's
		// single iteration; without this the lone iteration would be the miss.
		if _, err := bpm.Simulate(bcfg, 2); err != nil {
			fatal(err)
		}
		cached := record("Fig3b/Cached", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bpm.Simulate(bcfg, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
		speedup(&rep, "fig3b cached vs uncached", uncached.NsPerOp, cached.NsPerOp)

		// Fig 8: the WDM placement + min-cost-flow assignment.
		conns, wcfg = wdmInputs(d, cfg)
		record("Fig8/WDM", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := wdm.Run(conns, wcfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// LR pricing in isolation, sequential vs worker-pool.
	inst := mustInstance(d, cfg)
	runLR := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := selection.SolveLR(inst, selection.LROptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	lrSeq := record("LRPricing/Workers1", runLR(1))
	lrPar := record("LRPricing/WorkersN", runLR(0))
	parSpeedup(&rep, "lr-pricing workersN vs workers1", lrSeq.NsPerOp, lrPar.NsPerOp)

	if full {
		// LP engines head to head on a selection-shaped relaxation: the revised
		// simplex with native bounds vs the dense two-phase tableau oracle.
		lpProb := selectionShapedLP()
		lpRev := record("LP/Revised", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := lp.Solve(lpProb)
				if err != nil {
					b.Fatal(err)
				}
				if s.Status != lp.Optimal {
					b.Fatalf("revised status %v", s.Status)
				}
			}
		})
		lpDense := record("LP/Dense", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := lp.SolveDense(lpProb)
				if err != nil {
					b.Fatal(err)
				}
				if s.Status != lp.Optimal {
					b.Fatalf("dense status %v", s.Status)
				}
			}
		})
		speedup(&rep, "lp revised vs dense", lpDense.NsPerOp, lpRev.NsPerOp)

		// The exact selection solve (branch and bound, warm-started relaxations)
		// on the reduced I3-style case, with per-node LP accounting.
		ilpInst = mustInstance(mustILPDesign(), cfg)
		record("ILP/Selection", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ir, err := selection.SolveILP(ilpInst, selection.ILPOptions{TimeLimit: 60 * time.Second})
				if err != nil {
					b.Fatal(err)
				}
				if ir.TimedOut {
					b.Fatal("ILP benchmark case timed out")
				}
				if i == 0 {
					st := ILPStats{Nodes: ir.Nodes, LPSolves: ir.LPSolves, LPTimeNS: ir.LPTime.Nanoseconds()}
					if ir.Nodes > 0 {
						st.LPSolvesToNode = float64(ir.LPSolves) / float64(ir.Nodes)
					}
					if ir.LPSolves > 0 {
						st.LPNsPerSolve = float64(ir.LPTime.Nanoseconds()) / float64(ir.LPSolves)
					}
					if ir.Elapsed > 0 {
						st.NodesPerSec = float64(ir.Nodes) / ir.Elapsed.Seconds()
					}
					rep.ILP = &st
				}
			}
		})
		if rep.ILP != nil {
			rep.Benchmarks[len(rep.Benchmarks)-1].NodesPerSec = rep.ILP.NodesPerSec
		}
	}

	// The deterministic parallel branch and bound on a branchy equality
	// knapsack: Workers=4 must explore the exact same tree as Workers=1
	// (asserted here), and on a multi-core runner finish it faster.
	branchy := branchyProblem(20, 11)
	arena := parallel.NewArena()
	runBranchy := func(workers int, nodes *int, dur *time.Duration) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := ilp.Solve(branchy, ilp.Options{
					MaxNodes: 4000, Workers: workers, Arena: arena,
				})
				if err != nil {
					b.Fatal(err)
				}
				*nodes, *dur = r.Nodes, r.Elapsed
			}
		}
	}
	var nodes1, nodes4 int
	var dur1, dur4 time.Duration
	bw1 := record("ILP/Branchy/Workers1", runBranchy(1, &nodes1, &dur1))
	setNodesPerSec(nodes1, dur1)
	bw4 := record("ILP/Branchy/Workers4", runBranchy(4, &nodes4, &dur4))
	setNodesPerSec(nodes4, dur4)
	if nodes1 != nodes4 {
		fatal(fmt.Errorf("parallel ILP determinism violated: %d nodes at Workers=1, %d at Workers=4", nodes1, nodes4))
	}
	parSpeedup(&rep, "ilp workers4 vs workers1", bw1.NsPerOp, bw4.NsPerOp)

	if full {
		// Min-cost max-flow on a WDM-assignment-shaped network (build + solve).
		mcmfArcs := mcmfNetwork()
		record("MCMF", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := mcmf.NewWithEdgeHint(mcmfNodes, len(mcmfArcs))
				for _, a := range mcmfArcs {
					g.AddEdge(a.u, a.v, a.cap, a.cost)
				}
				if _, err := g.MaxFlow(mcmfSrc, mcmfSnk); err != nil {
					b.Fatal(err)
				}
			}
		})

		// BI1S with the incremental MST evaluation.
		rng := rand.New(rand.NewSource(11))
		terms := make([]geom.Point, 24)
		for i := range terms {
			terms[i] = geom.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}
		}
		for _, metric := range []steiner.Metric{steiner.Rectilinear, steiner.Euclidean} {
			record("BI1S/"+metric.String(), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					steiner.BI1S(terms, metric, steiner.BI1SConfig{})
				}
			})
		}

		// The I6–I8 mega cases. Each selected case records the full flow plus an
		// exact-ILP solve on the leading megaILPNets-net sub-instance — the full
		// mega programme (≈240k variables at I6) is beyond any exact solver's
		// root relaxation budget, so the slice is what keeps branch and bound an
		// honest, repeatable measurement at this scale. Unselected cases go to
		// rep.Skipped so benchcmp can tell a deliberate omission from a lost
		// benchmark.
		for _, spec := range benchgen.MegaSpecs() {
			flowName := "Table1/OPERON-LR/" + spec.Name + "/WorkersN"
			ilpName := fmt.Sprintf("ILP/%s/First%d", spec.Name, megaILPNets)
			if !megaSel[spec.Name] {
				rep.Skipped = append(rep.Skipped, flowName, ilpName)
				continue
			}
			md, err := benchgen.Generate(spec)
			if err != nil {
				fatal(err)
			}
			record(flowName, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := operon.Run(md, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
			mc := cfg
			mc.SkipWDM = true
			mres, err := operon.Run(md, mc)
			if err != nil {
				fatal(err)
			}
			sub, err := selection.NewInstance(mres.Nets[:megaILPNets], cfg.Lib)
			if err != nil {
				fatal(err)
			}
			var mNodes int
			var mElapsed time.Duration
			record(ilpName, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ir, err := selection.SolveILP(sub, selection.ILPOptions{
						TimeLimit: 120 * time.Second, MaxNodes: *megaNodes,
					})
					if err != nil {
						b.Fatal(err)
					}
					mNodes, mElapsed = ir.Nodes, ir.Elapsed
				}
			})
			setNodesPerSec(mNodes, mElapsed)
		}

		// ECO: incremental re-synthesis. A session re-solve after a one-pin edit
		// must beat the cold solve by >= 10x (the small-edit gate): only the
		// touched group re-clusters, its nets regenerate candidates, and the
		// untouched groups reuse clustering, trees, and candidate sets verbatim.
		// The pin alternates between two positions so every iteration dirties
		// exactly one group and the allocation profile is steady. WDM is skipped
		// on both sides so the gate compares the incremental stages, not the
		// (reused-anyway) placement.
		ecoD := mustDesign("I3")
		ecoCfg := cfg
		ecoCfg.SkipWDM = true
		ecoCold := record("ECO/Cold/I3", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := operon.Run(ecoD, ecoCfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		ecoP0 := ecoD.Groups[0].Bits[0].Driver
		ecoP1 := ecoP0
		ecoP1.X += 0.01
		sess := operon.NewSession(ecoD, ecoCfg)
		if _, _, err := sess.Resolve(context.Background()); err != nil {
			fatal(err)
		}
		ecoToggle := false
		ecoSmall := record("ECO/SmallEdit/I3", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := ecoP0
				if !ecoToggle {
					p = ecoP1
				}
				ecoToggle = !ecoToggle
				if _, err := sess.Apply(operon.MoveTerminal(0, 0, -1, p)); err != nil {
					b.Fatal(err)
				}
				if _, _, err := sess.Resolve(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
		speedup(&rep, "eco small-edit resolve vs cold", ecoCold.NsPerOp, ecoSmall.NsPerOp)
		if !*quick && ecoSmall.NsPerOp > 0 && ecoCold.NsPerOp/ecoSmall.NsPerOp < 10 {
			fatal(fmt.Errorf("ECO small-edit speedup %.1fx is below the 10x gate (cold %.0f ns/op, resolve %.0f ns/op)",
				ecoCold.NsPerOp/ecoSmall.NsPerOp, ecoCold.NsPerOp, ecoSmall.NsPerOp))
		}

		// The same one-pin edit through the full pipeline (WDM on) and an edit
		// touching every group — both informational, no gate: the first shows
		// what the end-to-end interactive latency looks like, the second bounds
		// the worst case (a resolve that reuses nothing still must not be slower
		// than cold by more than the dirty-tracking overhead).
		sessFull := operon.NewSession(ecoD, cfg)
		if _, _, err := sessFull.Resolve(context.Background()); err != nil {
			fatal(err)
		}
		fullToggle := false
		record("ECO/SmallEditFullPipeline/I3", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := ecoP0
				if !fullToggle {
					p = ecoP1
				}
				fullToggle = !fullToggle
				if _, err := sessFull.Apply(operon.MoveTerminal(0, 0, -1, p)); err != nil {
					b.Fatal(err)
				}
				if _, _, err := sessFull.Resolve(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
		sessAll := operon.NewSession(ecoD, ecoCfg)
		if _, _, err := sessAll.Resolve(context.Background()); err != nil {
			fatal(err)
		}
		allToggle := false
		record("ECO/AllGroups/I3", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dx := 0.01
				if allToggle {
					dx = 0
				}
				allToggle = !allToggle
				edits := make([]operon.Edit, len(ecoD.Groups))
				for gi := range ecoD.Groups {
					p := ecoD.Groups[gi].Bits[0].Driver
					p.X += dx
					edits[gi] = operon.MoveTerminal(gi, 0, -1, p)
				}
				if _, err := sessAll.Apply(edits...); err != nil {
					b.Fatal(err)
				}
				if _, _, err := sessAll.Resolve(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})

		// One untimed instrumented pass over the deterministic solver workloads
		// embeds the behaviour counters in the report. The Nop sink keeps the
		// pass cheap: only the atomic counters accumulate.
		tracer := obs.New(nil)
		if _, err := selection.SolveILP(ilpInst, selection.ILPOptions{
			TimeLimit: 60 * time.Second, Obs: tracer,
		}); err != nil {
			fatal(err)
		}
		wcfgObs := wcfg
		wcfgObs.Obs = tracer
		if _, _, _, err := wdm.Run(conns, wcfgObs); err != nil {
			fatal(err)
		}
		// The BPM cache is process-global; fold in the traffic the Fig-3(b)
		// benchmarks generated (hit count scales with -test.benchtime, the miss
		// count with the distinct configurations exercised).
		hits, misses := bpm.CacheCounters()
		tracer.Counter("bpm.cache_hits").Add(hits)
		tracer.Counter("bpm.cache_misses").Add(misses)
		rep.Counters = tracer.Snapshot()

		// One untimed instrumented session pass (cold solve + one-pin edit +
		// resolve) embeds the ws.session.* reuse counters. It runs on its own
		// tracer and only those counters are folded in: the resolve also bumps
		// lp.pivots & co., which must stay comparable with committed baselines.
		ecoTracer := obs.New(nil)
		ecoObsCfg := ecoCfg
		ecoObsCfg.Obs = ecoTracer
		es := operon.NewSession(ecoD, ecoObsCfg)
		if _, _, err := es.Resolve(context.Background()); err != nil {
			fatal(err)
		}
		if _, err := es.Apply(operon.MoveTerminal(0, 0, -1, ecoP1)); err != nil {
			fatal(err)
		}
		if _, _, err := es.Resolve(context.Background()); err != nil {
			fatal(err)
		}
		for _, c := range ecoTracer.Snapshot() {
			if strings.HasPrefix(c.Name, "ws.session.") {
				rep.Counters = append(rep.Counters, c)
			}
		}
		sort.Slice(rep.Counters, func(i, j int) bool { return rep.Counters[i].Name < rep.Counters[j].Name })

		// One more untimed instrumented flow run fills the per-stage latency
		// histograms. It runs on its own tracer: folding it into the counter
		// tracer above would shift lp.pivots & co. and break counter
		// comparability with committed baselines.
		histTracer := obs.New(nil)
		hcfg := cfg
		hcfg.Obs = histTracer
		if _, err := operon.Run(d, hcfg); err != nil {
			fatal(err)
		}
		const msPerNs = 1e-6
		for _, h := range histTracer.HistogramSnapshots() {
			rep.Histograms = append(rep.Histograms, HistEntry{
				Name:  h.Name,
				Count: h.Count,
				P50MS: h.Quantile(0.50) * msPerNs,
				P90MS: h.Quantile(0.90) * msPerNs,
				P99MS: h.Quantile(0.99) * msPerNs,
			})
		}

		// Serve/CoalesceHot: an identical /solve request answered from the
		// content-addressed result cache through the full HTTP handler path
		// (decode, fingerprint, cache lookup, encode) — the serving-stack
		// overhead a deduplicated request costs. The first request warms the
		// cache; the speedup relates it to the sequential cold flow above.
		ssrv := serve.New(serve.Options{
			Config: cfg, QueueLen: 4, Concurrency: 1, DefaultTimeout: time.Minute,
		})
		handler := ssrv.Handler()
		hotBody := []byte(fmt.Sprintf(`{"bench":%q,"timeout_ms":60000}`, *caseName))
		hotPost := func() int {
			req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(hotBody))
			req.Header.Set("Content-Type", "application/json")
			w := httptest.NewRecorder()
			handler.ServeHTTP(w, req)
			return w.Code
		}
		if code := hotPost(); code != http.StatusOK {
			fatal(fmt.Errorf("serve warm-up solve returned status %d", code))
		}
		hot := record("Serve/CoalesceHot", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if code := hotPost(); code != http.StatusOK {
					b.Fatalf("cache-hit request returned status %d", code)
				}
			}
		})
		ssrv.Abort()
		ssrv.Shutdown()
		speedup(&rep, "serve cache-hit vs cold solve", seq.NsPerOp, hot.NsPerOp)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks, %d CPUs)\n", path, len(rep.Benchmarks), rep.CPUs)

	// The parallel-speedup gate: on a multicore runner the worker-pool paths
	// must actually be faster than their sequential twins. A single-core
	// runner cannot measure this (the pairs land in SpeedupsNA), so the gate
	// skips there with a notice instead of passing vacuously silent.
	if *minPar > 0 {
		if rep.GoMaxProcs <= 1 {
			fmt.Fprintln(os.Stderr, "bench: -min-par-speedup skipped: GOMAXPROCS=1, parallel speedups are not measurable here")
			return
		}
		for _, name := range []string{
			"operon-lr workersN vs workers1",
			"lr-pricing workersN vs workers1",
			"ilp workers4 vs workers1",
		} {
			s, measured := rep.Speedups[name]
			if !measured {
				fatal(fmt.Errorf("parallel speedup gate: %q was not measured", name))
			}
			if s < *minPar {
				fatal(fmt.Errorf("parallel speedup gate: %s = %.2fx < %.2fx required", name, s, *minPar))
			}
		}
		fmt.Printf("parallel speedup gate ok (>= %.2fx on %d procs)\n", *minPar, rep.GoMaxProcs)
	}
}

func mustDesign(name string) signal.Design {
	spec, err := benchgen.SpecByName(name)
	if err != nil {
		fatal(err)
	}
	d, err := benchgen.Generate(spec)
	if err != nil {
		fatal(err)
	}
	return d
}

// mustInstance reproduces the selection instance of the case so SolveLR can
// be measured without the earlier stages.
func mustInstance(d signal.Design, cfg operon.Config) *selection.Instance {
	c := cfg
	c.SkipWDM = true
	res, err := operon.Run(d, c)
	if err != nil {
		fatal(err)
	}
	inst, err := selection.NewInstance(res.Nets, cfg.Lib)
	if err != nil {
		fatal(err)
	}
	// Warm the instance's cross-loss cache so the Workers1/WorkersN
	// comparison measures the pricing loops, not who fills the cache first.
	if _, err := selection.SolveLR(inst, selection.LROptions{}); err != nil {
		fatal(err)
	}
	return inst
}

// wdmInputs extracts the optical connections of the case for the Fig-8
// benchmark.
func wdmInputs(d signal.Design, cfg operon.Config) ([]wdm.Connection, wdm.Config) {
	c := cfg
	c.SkipWDM = true
	res, err := operon.Run(d, c)
	if err != nil {
		fatal(err)
	}
	var conns []wdm.Connection
	for i, j := range res.Selection.Choice {
		for _, seg := range res.Nets[i].Cands[j].OpticalSegs {
			conns = append(conns, wdm.Connection{Seg: seg, Bits: res.Nets[i].Bits, Net: i})
		}
	}
	return conns, wdm.Config{
		Capacity:        cfg.Lib.WDMCapacity,
		MinSpacingCM:    cfg.Lib.CrosstalkMinDistCM,
		MaxAssignDistCM: cfg.Lib.AssignMaxDistCM,
	}
}

// mustILPDesign is the reduced I3-style case on which branch and bound
// proves optimality quickly — the same spec bench_test.go's BenchmarkILP
// uses.
func mustILPDesign() signal.Design {
	d, err := benchgen.Generate(benchgen.Spec{
		Name: "I3s", DieCM: 4, Groups: 24, BitsPerGroup: 30, BitsJitter: 1,
		MinSinkClusters: 1, MaxSinkClusters: 1, LocalFraction: 0.15,
		LocalSpanCM: 0.15, GlobalSpanCM: 1.9, RegionSpreadCM: 0.02,
		LanePitchCM: 0.2, Seed: 103,
	})
	if err != nil {
		fatal(err)
	}
	return d
}

// selectionShapedLP builds a deterministic LP with the structure of the
// Formula-(3) relaxation: assignment equalities over candidate blocks,
// GE linearisation rows coupling pair variables, LE detection rows, and
// native [0,1] bounds on the assignment variables.
func selectionShapedLP() lp.Problem {
	rng := rand.New(rand.NewSource(29))
	const nets, cands = 12, 4
	var obj []float64
	var upper []float64
	var rows []lp.Row
	for i := 0; i < nets; i++ {
		row := lp.Row{Sense: lp.EQ, RHS: 1}
		for j := 0; j < cands; j++ {
			row.Terms = append(row.Terms, lp.Term{Var: i*cands + j, Coeff: 1})
			obj = append(obj, 1+rng.Float64()*4) // candidate power
			upper = append(upper, 1)
		}
		rows = append(rows, row)
	}
	// Pair variables coupling neighbouring nets, y >= a + b - 1.
	pair := func(a, b int) {
		v := len(obj)
		obj = append(obj, 0)
		upper = append(upper, mathInf)
		rows = append(rows, lp.Row{
			Terms: []lp.Term{{Var: v, Coeff: 1}, {Var: a, Coeff: -1}, {Var: b, Coeff: -1}},
			Sense: lp.GE, RHS: -1,
		})
		// Detection row: crossing loss bounded by the budget.
		rows = append(rows, lp.Row{
			Terms: []lp.Term{{Var: v, Coeff: 0.5 + rng.Float64()}, {Var: a, Coeff: 0.2}},
			Sense: lp.LE, RHS: 3,
		})
	}
	for i := 0; i+1 < nets; i++ {
		for j := 0; j < cands; j++ {
			pair(i*cands+j, (i+1)*cands+rng.Intn(cands))
		}
	}
	return lp.Problem{NumVars: len(obj), Objective: obj, Rows: rows, Upper: upper}
}

var mathInf = math.Inf(1)

// mcmfNetwork is the WDM-assignment-shaped flow network of BenchmarkMCMF:
// 200 connections, 60 WDMs, four candidate arcs per connection.
type mcmfArc struct {
	u, v, cap int
	cost      int64
}

const (
	mcmfNodes = 262
	mcmfSrc   = 0
	mcmfSnk   = 261
)

func mcmfNetwork() []mcmfArc {
	rng := rand.New(rand.NewSource(17))
	var arcs []mcmfArc
	nConn, nWDM := 200, 60
	for c := 0; c < nConn; c++ {
		arcs = append(arcs, mcmfArc{mcmfSrc, 1 + c, 2 + rng.Intn(20), 0})
		for w := 0; w < 4; w++ {
			arcs = append(arcs, mcmfArc{1 + c, 1 + nConn + rng.Intn(nWDM), 32, int64(rng.Intn(1000))})
		}
	}
	for w := 0; w < nWDM; w++ {
		arcs = append(arcs, mcmfArc{1 + nConn + w, mcmfSnk, 32, int64(1+w) * 5000})
	}
	return arcs
}

// megaILPNets is the size of the leading sub-instance the ILP mega entries
// solve. Calibrated on the reference single-core runner: 300 nets of I6
// prove optimal at the root in ≈2 s, while 600 nets push the root
// relaxation past two minutes — the knee of the exact frontier.
const megaILPNets = 300

// branchyProblem builds an equality knapsack with many near-symmetric
// fractional optima: the branch-and-bound tree is wide and deep, so the
// speculative workers genuinely overlap with the decision loop instead of
// starving behind a chain of forced moves.
func branchyProblem(n int, seed int64) ilp.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := ilp.Problem{LP: lp.Problem{NumVars: n, Objective: make([]float64, n)}}
	row := lp.Row{Sense: lp.EQ, RHS: float64(n)/4 + 0.5}
	for i := 0; i < n; i++ {
		p.LP.Objective[i] = 1 + rng.Float64()*0.001
		row.Terms = append(row.Terms, lp.Term{Var: i, Coeff: 1 + rng.Float64()*0.01})
		p.Binary = append(p.Binary, i)
	}
	p.LP.Rows = append(p.LP.Rows, row)
	return p
}

// heapSampler polls runtime.MemStats.HeapAlloc in the background and keeps
// the maximum observed. A 10 ms cadence is a lower bound on the true peak
// (spikes between samples are missed) but it is stable enough to gate
// footprint growth on the mega cases, where the live heap — not ns/op — is
// the scaling constraint.
type heapSampler struct {
	stopCh chan struct{}
	peakCh chan int64
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stopCh: make(chan struct{}), peakCh: make(chan int64, 1)}
	go func() {
		var ms runtime.MemStats
		var peak int64
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if int64(ms.HeapAlloc) > peak {
				peak = int64(ms.HeapAlloc)
			}
			select {
			case <-s.stopCh:
				s.peakCh <- peak
				return
			case <-tick.C:
			}
		}
	}()
	return s
}

// stop ends the sampling goroutine and returns the peak it saw.
func (s *heapSampler) stop() int64 {
	close(s.stopCh)
	return <-s.peakCh
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
