// Package serve implements the operond HTTP serving layer: a bounded job
// queue drained by per-slot workers (each owning a reusable solver
// workspace), per-request deadlines mapped onto context deadlines with
// graceful degradation, and the production telemetry stack — per-request
// and per-stage latency histograms, Prometheus text exposition at
// /metrics (JSON mirror at /metrics.json), structured slog request logs
// joined to traces by generated request IDs, and a drain-aware /healthz.
//
// The package exists so that cmd/operond (the daemon) and cmd/loadgen
// (the SLO harness) share one server implementation: loadgen can boot the
// real serving stack in-process and replay request mixes against it
// without a subprocess.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	operon "operon"
	"operon/internal/benchgen"
	"operon/internal/obs"
	"operon/internal/signal"
)

// SolveRequest is the JSON body of POST /solve. Exactly one of Bench or
// Design selects the input; the rest tune the solve.
type SolveRequest struct {
	// Bench names a built-in benchmark (benchgen.SpecByName, "I1".."I8").
	Bench string `json:"bench,omitempty"`
	// Design is an inline signal.Design; used when Bench is empty.
	Design *signal.Design `json:"design,omitempty"`
	// Mode is the selection algorithm: "lr" (default), "ilp" or "greedy".
	Mode string `json:"mode,omitempty"`
	// TimeoutMS is the per-request time budget in milliseconds; it becomes
	// the context deadline of the solve. Zero means the server default, and
	// values above the server maximum are clamped down. An exceeded budget
	// never fails the request: the flow degrades and the response carries
	// degraded=true with a stop_reason.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// SkipWDM disables the WDM placement/assignment stage.
	SkipWDM bool `json:"skip_wdm,omitempty"`
	// Async enqueues the job and returns 202 with its id immediately; poll
	// GET /jobs/{id} for the result. Synchronous requests block until done.
	Async bool `json:"async,omitempty"`
}

// SolveResponse is the JSON result of a finished solve.
type SolveResponse struct {
	Design     string  `json:"design"`     // design name
	Flow       string  `json:"flow"`       // flow identifier (operon version tag)
	PowerMW    float64 `json:"power_mw"`   // total routed power
	Violations int     `json:"violations"` // loss-budget violations after repair
	HyperNets  int     `json:"hyper_nets"` // hyper nets routed
	WDMsUsed   int     `json:"wdms_used"`  // WDM links placed
	// Degraded and StopReason mirror operon.Result: the routing is feasible
	// either way, but a degraded one took a fallback rung of the ladder.
	Degraded   bool   `json:"degraded"`
	StopReason string `json:"stop_reason,omitempty"` // why degradation fired
	// RequestID echoes the X-Request-Id the solve ran under, so async
	// pollers can join results to logs and traces too.
	RequestID string `json:"request_id,omitempty"`
	// TimeoutMS is the budget actually applied (after default/clamp).
	TimeoutMS int64 `json:"timeout_ms"`
	// QueueMS is how long the job waited in the bounded queue before a
	// worker picked it up.
	QueueMS   float64 `json:"queue_ms"`
	ElapsedMS float64 `json:"elapsed_ms"` // solve wall clock in milliseconds
	// Cached marks a response served from the content-addressed result
	// cache: no solve ran, ElapsedMS is the lookup time, and the payload is
	// bit-identical to the solve that populated the entry.
	Cached bool `json:"cached,omitempty"`
	// Coalesced marks a response fanned out from another request's solve:
	// this request joined an identical in-flight instance instead of
	// queueing its own.
	Coalesced bool `json:"coalesced,omitempty"`
}

// JobState is the lifecycle of a queued solve.
type JobState string

// The job lifecycle: queued -> running -> done | failed.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job is one queued solve and its eventual outcome, as serialised by
// GET /jobs/{id}.
type Job struct {
	ID     string         `json:"id"`               // job identifier ("job-N")
	State  JobState       `json:"state"`            // lifecycle state
	Result *SolveResponse `json:"result,omitempty"` // set once done
	Error  string         `json:"error,omitempty"`  // set once failed

	reqID    string
	design   signal.Design
	cfg      operon.Config
	timeout  time.Duration
	enqueued time.Time
	done     chan struct{}

	// fp is the content address of the instance; dedup marks jobs tracked
	// in the flight table (leaders). Shadow jobs (joiners) carry fp but are
	// never flight leaders until promoted. failStatus, when non-zero, is
	// the HTTP status a failure should map to (default 500).
	fp         [32]byte
	dedup      bool
	failStatus int
}

// SolveFunc is the solver the job workers invoke; tests inject a stub here
// to exercise queueing and shutdown without running the real flow. The
// workspace is the calling queue slot's — reused across every job the slot
// serves, never shared between slots.
type SolveFunc func(ctx context.Context, d signal.Design, cfg operon.Config, ws *operon.Workspace) (*operon.Result, error)

// Options configures New.
type Options struct {
	// Config is the per-solve template (workers, library, mode default).
	// Its Obs field is replaced by the server's own tracer so every solve
	// feeds the shared counters and stage histograms.
	Config operon.Config
	// QueueLen bounds the job queue; a full queue returns 429. Min 1.
	QueueLen int
	// Concurrency is the number of solves run in parallel (and the number
	// of long-lived solver workspaces). Min 1.
	Concurrency int
	// DefaultTimeout applies to requests without timeout_ms.
	DefaultTimeout time.Duration
	// MaxTimeout clamps requested budgets (0 = unclamped).
	MaxTimeout time.Duration
	// Logger receives the structured request and solve records; nil
	// discards them.
	Logger *slog.Logger
	// SessionTTL is the idle lifetime of sticky editing sessions before
	// eviction (0 = 10 minutes).
	SessionTTL time.Duration
	// MaxSessions caps concurrent sticky sessions; the least recently used
	// session is evicted when a create exceeds it (0 = 64).
	MaxSessions int
	// CacheEntries bounds the content-addressed result cache (0 = 256,
	// negative = caching disabled). Only non-degraded results are cached —
	// they are bit-identical to an unbounded solve of the same instance, so
	// the cache needs no invalidation.
	CacheEntries int
	// CacheTTL is the lifetime of a cached result (0 = 5 minutes).
	CacheTTL time.Duration
	// MaxBodyBytes caps request bodies on the decode paths (/solve,
	// /solve/batch, session endpoints); exceeding it returns 413
	// (0 = 8 MiB, negative = unlimited).
	MaxBodyBytes int64
}

// Server is the operond HTTP state: a bounded job queue drained by a fixed
// set of worker goroutines, all solving under a shared base context that
// shutdown cancels so in-flight solves degrade and return promptly, plus
// the telemetry registry every handler and worker reports into.
type Server struct {
	cfg            operon.Config
	tracer         *obs.Tracer
	reg            *obs.Registry
	log            *slog.Logger
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	solve          SolveFunc

	hQueueWait *obs.Histogram // request/queue_wait: enqueue -> worker pickup
	hSolve     *obs.Histogram // request/solve: solve wall clock
	hE2E       *obs.Histogram // request/e2e: enqueue -> result published
	hCacheHit  *obs.Histogram // request/cache_hit: fast-path lookup latency

	maxBodyBytes int64
	cache        *resultCache // nil when disabled

	baseCtx  context.Context
	cancel   context.CancelFunc
	queue    chan *Job
	wg       sync.WaitGroup
	start    time.Time
	inflight atomic.Int64
	draining atomic.Bool
	reqSeq   atomic.Int64

	mu      sync.Mutex
	jobs    map[string]*Job
	seq     int
	flights map[[32]byte]*Job // in-flight leader per fingerprint

	sessMu   sync.Mutex
	sessions map[string]*session
	sessSeq  int
	sessTTL  time.Duration
	sessMax  int
}

// New assembles a server, wires its telemetry registry, and starts its
// worker goroutines. Call Shutdown (after the HTTP listener has drained)
// to stop the workers.
func New(opts Options) *Server {
	if opts.QueueLen < 1 {
		opts.QueueLen = 1
	}
	if opts.Concurrency < 1 {
		opts.Concurrency = 1
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	tracer := obs.New(nil) // counters + histograms; spans/events are discarded
	cfg := opts.Config
	cfg.Obs = tracer
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:            cfg,
		tracer:         tracer,
		log:            logger,
		defaultTimeout: opts.DefaultTimeout,
		maxTimeout:     opts.MaxTimeout,
		solve:          operon.RunContextWith,
		hQueueWait:     tracer.Histogram("request/queue_wait"),
		hSolve:         tracer.Histogram("request/solve"),
		hE2E:           tracer.Histogram("request/e2e"),
		hCacheHit:      tracer.Histogram("request/cache_hit"),
		maxBodyBytes:   opts.MaxBodyBytes,
		cache:          newResultCache(opts.CacheEntries, opts.CacheTTL),
		baseCtx:        ctx,
		cancel:         cancel,
		queue:          make(chan *Job, opts.QueueLen),
		start:          time.Now(),
		jobs:           map[string]*Job{},
		flights:        map[[32]byte]*Job{},
	}
	if s.maxBodyBytes == 0 {
		s.maxBodyBytes = 8 << 20
	}
	s.reg = newRegistry(s)
	s.initSessions(opts)
	for i := 0; i < opts.Concurrency; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// SetSolve replaces the solver (tests inject stubs that block or fail).
// Call before serving traffic.
func (s *Server) SetSolve(fn SolveFunc) { s.solve = fn }

// Tracer returns the server's shared tracer (counters, stage and request
// histograms across every solve).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Registry returns the unified telemetry registry behind /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Abort cancels the base context: every in-flight solve observes the
// cancellation at its next check point and degrades to a feasible result.
// The HTTP handlers stay up, so synchronous callers still receive those
// degraded payloads — but /healthz flips to 503 immediately so load
// balancers stop routing new traffic here. Call it before (or instead of)
// draining the listener.
func (s *Server) Abort() {
	s.draining.Store(true)
	s.cancel()
}

// Shutdown stops the workers after the listener has drained: no handler may
// enqueue concurrently with it. It cancels the base context (if Abort has
// not already), closes the queue, and waits for the workers — queued jobs
// still execute, degrading instantly under the cancelled context.
func (s *Server) Shutdown() {
	s.draining.Store(true)
	s.cancel()
	close(s.queue)
	s.wg.Wait()
}

// worker drains the job queue until shutdown closes it. Each worker — one
// queue slot — owns a solver workspace for its whole lifetime, so the
// per-worker solver scratch inside the flow is reused across requests and
// steady-state serving stops allocating candidate-generation buffers.
// Workspaces are never shared between slots, so concurrent solves stay
// isolated.
func (s *Server) worker() {
	defer s.wg.Done()
	ws := operon.NewWorkspace()
	for j := range s.queue {
		s.runJob(j, ws)
	}
}

// runJob executes one queued solve under the job's deadline, parented to
// the server's base context so shutdown degrades it too. It owns the
// request-latency histograms (queue wait, solve wall, end-to-end) and the
// per-solve structured log record.
func (s *Server) runJob(j *Job, ws *operon.Workspace) {
	queueWait := time.Since(j.enqueued)
	s.hQueueWait.RecordDuration(queueWait)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	s.setState(j, JobRunning, nil, "")
	ctx, cancel := context.WithTimeout(s.baseCtx, j.timeout)
	defer cancel()
	// The span joins traces to logs through the request id; with the
	// default (discarding) sink only its attrs cost anything, and only
	// nanoseconds.
	sp := s.tracer.Span("request/solve", obs.LaneFlow, obs.S("request_id", j.reqID))
	s.tracer.Counter("http.solves_run").Inc()
	start := time.Now()
	res, err := s.solve(ctx, j.design, j.cfg, ws)
	solveDur := time.Since(start)
	s.hSolve.RecordDuration(solveDur)

	logAttrs := []any{
		"request_id", j.reqID,
		"job_id", j.ID,
		"design", j.design.Name,
		"mode", j.cfg.Mode.String(),
		"workers", j.cfg.Workers,
		"timeout_ms", j.timeout.Milliseconds(),
		"queue_ms", float64(queueWait) / float64(time.Millisecond),
		"solve_ms", float64(solveDur) / float64(time.Millisecond),
	}
	if err != nil {
		sp.End(obs.S("error", err.Error()))
		s.tracer.Counter("http.solve_errors").Inc()
		s.setState(j, JobFailed, nil, err.Error())
		s.releaseFlight(j)
		s.log.Error("solve failed", append(logAttrs, "error", err.Error())...)
	} else {
		sp.End(obs.S("stop_reason", string(res.StopReason)), obs.I("degraded", boolInt(res.Degraded)))
		if res.Degraded {
			s.tracer.Counter("http.degraded").Inc()
		}
		resp := s.responseOf(res, j, queueWait, solveDur)
		// Publish order matters: a non-degraded result enters the cache
		// BEFORE the flight key is released, so a request that misses the
		// flight table is guaranteed to hit the cache. Degraded results are
		// timing artifacts of this request's budget, never cached.
		if !res.Degraded {
			s.cachePut(j.fp, resp)
		}
		s.setState(j, JobDone, resp, "")
		s.releaseFlight(j)
		s.log.Info("solve done", append(logAttrs,
			"degraded", res.Degraded,
			"stop_reason", string(res.StopReason),
			"power_mw", res.PowerMW,
		)...)
	}
	s.hE2E.RecordDuration(time.Since(j.enqueued))
	close(j.done)
}

// releaseFlight removes a leader from the flight table; joiners attached to
// it are woken afterwards by close(j.done). The guard keeps a promoted
// successor's entry intact.
func (s *Server) releaseFlight(j *Job) {
	if !j.dedup {
		return
	}
	s.mu.Lock()
	if s.flights[j.fp] == j {
		delete(s.flights, j.fp)
	}
	s.mu.Unlock()
}

// boolInt maps a bool onto the 0/1 convention of numeric span attrs.
func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// responseOf projects an operon.Result onto the wire format.
func (s *Server) responseOf(res *operon.Result, j *Job, queueWait, elapsed time.Duration) *SolveResponse {
	return &SolveResponse{
		Design:     res.Design,
		Flow:       res.Flow,
		PowerMW:    res.PowerMW,
		Violations: res.Selection.Violations,
		HyperNets:  len(res.HyperNets),
		WDMsUsed:   res.WDMStats.FinalWDMs,
		Degraded:   res.Degraded,
		StopReason: string(res.StopReason),
		RequestID:  j.reqID,
		TimeoutMS:  j.timeout.Milliseconds(),
		QueueMS:    float64(queueWait) / float64(time.Millisecond),
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
	}
}

// setState publishes a job transition under the server lock.
func (s *Server) setState(j *Job, st JobState, resp *SolveResponse, errMsg string) {
	s.mu.Lock()
	j.State = st
	j.Result = resp
	j.Error = errMsg
	s.mu.Unlock()
}

// jobView returns a consistent copy of a job for serialisation.
func (s *Server) jobView(j *Job) Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Job{ID: j.ID, State: j.State, Result: j.Result, Error: j.Error}
}

// Handler builds the operond route table:
//
//	POST /solve         run a solve (sync, or async with {"async":true});
//	                    identical instances coalesce and hit the result cache
//	POST /solve/batch   run an array of solves in one scheduler pass with
//	                    within-batch dedup; positional results
//	GET  /jobs/{id}     poll an async job
//	POST /sessions      create a sticky editing session (runs the cold solve)
//	POST /sessions/{id}/edit  apply an edit script, re-solve incrementally
//	GET  /sessions/{id}       session metadata + resolve latency quantiles
//	DELETE /sessions/{id}     drop the session
//	GET  /healthz       liveness, queue depth, in-flight solves, uptime;
//	                    503 once shutdown has begun (drain signal)
//	GET  /metrics       Prometheus text exposition (histograms included)
//	GET  /metrics.json  the same registry snapshot as JSON
//
// Every request is wrapped in the request-ID + structured-log middleware:
// the response carries X-Request-Id (honouring one supplied by the client)
// and one slog record per request is emitted with method, path, status,
// and duration.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/solve/batch", s.handleBatch)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/sessions", s.handleSessions)
	mux.HandleFunc("/sessions/", s.handleSession)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	return s.withRequestLog(mux)
}

// statusWriter records the status a handler wrote so the request log can
// report it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader implements http.ResponseWriter.
func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Write implements io.Writer, defaulting the status to 200 like net/http.
func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// withRequestLog is the request-ID + structured-log middleware. The ID is
// taken from the client's X-Request-Id when present (truncated to 64
// bytes), generated otherwise, stored back into the request header for
// downstream handlers, and echoed on the response. One slog record per
// request carries method, path, status, and wall time; solve-level detail
// (queue wait, stop reason) is logged by runJob under the same request_id.
func (s *Server) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = fmt.Sprintf("r-%d", s.reqSeq.Add(1))
		} else if len(id) > 64 {
			id = id[:64]
		}
		r.Header.Set("X-Request-Id", id)
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.tracer.Counter("http.requests").Inc()
		if sw.status == http.StatusTooManyRequests {
			s.tracer.Counter("http.429").Inc()
		} else if sw.status >= 500 {
			s.tracer.Counter("http.5xx").Inc()
		}
		s.log.Info("request",
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_ms", float64(time.Since(start))/float64(time.Millisecond),
		)
	})
}

// reqPool recycles request-decode scratch across handler invocations, and
// bufPool the response-encode buffers: the handler path allocates neither at
// steady state, matching the workspace reuse of the solve path.
var (
	reqPool = sync.Pool{New: func() any { return new(SolveRequest) }}
	bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
)

// writeJSONError writes a JSON error body with the given status; every
// handler error path goes through it so clients always see
// Content-Type: application/json.
func writeJSONError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes v with the given status, encoding through a pooled
// buffer so a failed encode can still become a 500 and the handler path
// reuses its scratch.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(buf)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		body, _ := json.Marshal(map[string]string{"error": "encode response: " + err.Error()})
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write(body)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// decodeJSON decodes a request body into v under the server's body-size
// cap. On failure it writes the JSON error response (413 for an oversized
// body, 400 otherwise) and returns false.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := r.Body
	if s.maxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	}
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.tracer.Counter("http.body_too_large").Inc()
			writeJSONError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
			return false
		}
		writeJSONError(w, http.StatusBadRequest, "parse request: %v", err)
		return false
	}
	return true
}

// handleSolve validates the request and admits it through the dedup layer:
// cache hits answer immediately, identical in-flight instances coalesce,
// everything else enqueues a job (429 when the queue is full). The response
// is either the job id (async) or the blocking result.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	req := reqPool.Get().(*SolveRequest)
	defer reqPool.Put(req)
	*req = SolveRequest{}
	if !s.decodeJSON(w, r, req) {
		return
	}
	inst, err := s.resolveInstance(*req)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, status, err := s.admit(inst, r.Header.Get("X-Request-Id"), r.Context(), false)
	if err != nil {
		writeJSONError(w, status, "%v", err)
		return
	}
	if req.Async {
		writeJSON(w, http.StatusAccepted, s.jobView(j))
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// The client went away; the job keeps running and stays pollable.
		writeJSONError(w, http.StatusRequestTimeout, "client cancelled; poll /jobs/%s", j.ID)
		return
	}
	v := s.jobView(j)
	if v.State == JobFailed {
		writeJSONError(w, s.failStatusOf(j), "%s", v.Error)
		return
	}
	writeJSON(w, http.StatusOK, v.Result)
}

// instance is a fully resolved solve input: the materialised design, the
// effective config, the clamped budget, and the content address the dedup
// layer keys on.
type instance struct {
	design  signal.Design
	cfg     operon.Config
	timeout time.Duration
	fp      [32]byte
}

// resolveInstance materialises a request into an instance (design lookup,
// mode parse, budget default/clamp, fingerprint).
func (s *Server) resolveInstance(req SolveRequest) (instance, error) {
	design, err := resolveDesign(req)
	if err != nil {
		return instance{}, err
	}
	cfg := s.cfg
	cfg.SkipWDM = req.SkipWDM
	if cfg.Mode, err = ParseMode(req.Mode); err != nil {
		return instance{}, err
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.defaultTimeout
	}
	if s.maxTimeout > 0 && timeout > s.maxTimeout {
		timeout = s.maxTimeout
	}
	return instance{
		design:  design,
		cfg:     cfg,
		timeout: timeout,
		fp:      operon.Fingerprint(design, cfg),
	}, nil
}

// newJobLocked registers a job for an instance; the caller holds s.mu.
func (s *Server) newJobLocked(inst instance, reqID string) *Job {
	s.seq++
	j := &Job{
		ID:       fmt.Sprintf("job-%d", s.seq),
		State:    JobQueued,
		reqID:    reqID,
		design:   inst.design,
		cfg:      inst.cfg,
		timeout:  inst.timeout,
		enqueued: time.Now(),
		done:     make(chan struct{}),
		fp:       inst.fp,
	}
	s.jobs[j.ID] = j
	return j
}

// NewJob resolves a request into a registered, runnable job. reqID tags the
// job's telemetry; "" is valid (direct API use without the middleware). The
// job bypasses the dedup layer — callers that want coalescing and caching
// go through the handlers.
func (s *Server) NewJob(req SolveRequest, reqID string) (*Job, error) {
	inst, err := s.resolveInstance(req)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	j := s.newJobLocked(inst, reqID)
	s.mu.Unlock()
	return j, nil
}

// failStatusOf maps a failed job onto its HTTP status (500 unless the
// failure recorded a more specific one, e.g. 429 for a queue-full leader).
func (s *Server) failStatusOf(j *Job) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.failStatus != 0 {
		return j.failStatus
	}
	return http.StatusInternalServerError
}

// Timeout returns the budget resolved for the job (after default/clamp).
func (j *Job) Timeout() time.Duration { return j.timeout }

// DropJob unregisters a job that never made it into the queue.
func (s *Server) DropJob(j *Job) {
	s.mu.Lock()
	delete(s.jobs, j.ID)
	s.mu.Unlock()
}

// resolveDesign materialises the request's input design.
func resolveDesign(req SolveRequest) (signal.Design, error) {
	if req.Bench != "" {
		spec, err := benchgen.SpecByName(req.Bench)
		if err != nil {
			return signal.Design{}, err
		}
		return benchgen.Generate(spec)
	}
	if req.Design == nil {
		return signal.Design{}, fmt.Errorf("request needs \"bench\" or \"design\"")
	}
	if err := req.Design.Validate(); err != nil {
		return signal.Design{}, err
	}
	return *req.Design, nil
}

// ParseMode maps the wire mode string onto operon.Mode ("" = lr).
func ParseMode(mode string) (operon.Mode, error) {
	switch mode {
	case "", "lr":
		return operon.ModeLR, nil
	case "ilp":
		return operon.ModeILP, nil
	case "greedy":
		return operon.ModeGreedy, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want lr, ilp or greedy)", mode)
	}
}

// handleJob serves GET /jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeJSONError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, s.jobView(j))
}

// handleHealth serves GET /healthz: liveness, queue depth, in-flight
// solves, and uptime. Once shutdown has begun (Abort or Shutdown) it
// returns 503 with draining=true so load balancers stop routing new
// traffic while in-flight solves finish degrading.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	draining := s.draining.Load()
	if draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ok":             !draining,
		"draining":       draining,
		"queue_depth":    len(s.queue),
		"queue_cap":      cap(s.queue),
		"inflight":       s.inflight.Load(),
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format: every counter, gauge, and latency histogram of the registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	_ = obs.WritePrometheus(w, s.reg.Snapshot())
}

// handleMetricsJSON serves GET /metrics.json: the same registry snapshot
// as JSON. The "counters" key keeps the pre-Prometheus wire shape, so
// existing consumers (cmd/bench tooling, the smoke tests) parse it
// unchanged; gauges and histograms ride alongside.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}
