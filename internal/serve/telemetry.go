package serve

import (
	"time"

	"operon/internal/obs"
)

// newRegistry builds the server's unified telemetry registry: the shared
// tracer's counters and histograms plus sampled serving gauges (queue
// depth and capacity, in-flight solves, uptime, workspace reuse ratio)
// and the Go runtime gauges (live heap, goroutines, cumulative GC pause).
// Every gauge closure reads lock-free state, so scraping /metrics never
// contends with the solve path.
func newRegistry(s *Server) *obs.Registry {
	reg := obs.NewRegistry(s.tracer)
	reg.Gauge("queue_depth", "Jobs waiting in the bounded queue.",
		func() float64 { return float64(len(s.queue)) })
	reg.Gauge("queue_capacity", "Capacity of the bounded job queue.",
		func() float64 { return float64(cap(s.queue)) })
	reg.Gauge("inflight_solves", "Solves currently executing on workers.",
		func() float64 { return float64(s.inflight.Load()) })
	reg.Gauge("uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	// ws.worker.create / ws.worker.reuse are bumped inside the flow each
	// time a per-worker solver workspace is allocated vs recycled; their
	// ratio is the steady-state health of the allocation-reuse design
	// (→ 1.0 once every queue slot has warmed its workspace).
	create := s.tracer.Counter("ws.worker.create")
	reuse := s.tracer.Counter("ws.worker.reuse")
	reg.Gauge("workspace_reuse_ratio", "Fraction of worker-workspace checkouts served by reuse.",
		func() float64 {
			c, r := create.Value(), reuse.Value()
			if c+r == 0 {
				return 0
			}
			return float64(r) / float64(c+r)
		})
	reg.Gauge("sessions_active", "Live sticky editing sessions.",
		func() float64 { return float64(s.sessionCount()) })
	reg.Gauge("cache_entries", "Live entries in the content-addressed result cache.",
		func() float64 { return float64(s.cacheEntryCount()) })
	obs.RuntimeGauges(reg)
	return reg
}
