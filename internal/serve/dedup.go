package serve

import (
	"container/list"
	"context"
	"fmt"
	"net/http"
	"time"
)

// This file is the request-efficiency layer (DESIGN.md §13): content-
// addressed single-flight coalescing plus a bounded LRU+TTL result cache,
// both keyed by operon.Fingerprint. Identical in-flight instances share one
// solve (the leader; later arrivals become shadow jobs that wait on it),
// and non-degraded results are cached so repeats skip the queue entirely.
//
// The coalescing state machine, per fingerprint:
//
//	         ┌── admit: miss flight+cache ──► LEADER (queued job)
//	request ─┼── admit: flight hit ─────────► SHADOW (waits on leader.done)
//	         └── admit: cache hit ──────────► DONE   (cached=true)
//
//	leader done, not degraded ─► cache.Put, release flight, fan to shadows
//	leader done, degraded ─────► release flight; each shadow with remaining
//	                             budget re-admits (promotion: one becomes
//	                             the next leader), the rest fan the
//	                             degraded copy
//	leader failed ─────────────► release flight, shadows fail alike
//	shadow budget expires ─────► detach: solve inline under an already-
//	                             expired deadline → degradation-ladder
//	                             floor, leader unaffected
//
// Publish order makes the flight table and cache gap-free: a finishing
// leader writes the cache BEFORE releasing the flight key (runJob), and
// admit checks the flight table BEFORE the cache, so a request can never
// miss both for an instance whose solve already succeeded.

// resultCache is a bounded LRU+TTL map from fingerprint to SolveResponse.
// Entries are invalidation-free: the key is a content hash of the full
// instance, so a hit is bit-identical to re-solving. Expiry is lazy (Get
// drops a stale entry) plus capacity eviction on Put.
type resultCache struct {
	max     int
	ttl     time.Duration
	entries map[[32]byte]*list.Element
	order   *list.List // front = most recently used
}

// cacheEntry is one resultCache slot.
type cacheEntry struct {
	fp      [32]byte
	resp    SolveResponse
	expires time.Time
}

// newResultCache sizes a cache from the Options knobs: maxEntries 0 means
// the 256 default, negative disables caching (nil cache; every method is
// nil-safe).
func newResultCache(maxEntries int, ttl time.Duration) *resultCache {
	if maxEntries < 0 {
		return nil
	}
	if maxEntries == 0 {
		maxEntries = 256
	}
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	return &resultCache{
		max:     maxEntries,
		ttl:     ttl,
		entries: map[[32]byte]*list.Element{},
		order:   list.New(),
	}
}

// get returns a copy of the cached response for fp, if fresh. The caller
// holds s.mu (the cache has no lock of its own: every access happens under
// the server lock that also guards the flight table, which is what makes
// the flight-then-cache read sequence atomic).
func (c *resultCache) get(fp [32]byte) (SolveResponse, bool) {
	if c == nil {
		return SolveResponse{}, false
	}
	el, ok := c.entries[fp]
	if !ok {
		return SolveResponse{}, false
	}
	ce := el.Value.(*cacheEntry)
	if time.Now().After(ce.expires) {
		c.order.Remove(el)
		delete(c.entries, fp)
		return SolveResponse{}, false
	}
	c.order.MoveToFront(el)
	return ce.resp, true // struct copy: SolveResponse has no reference fields
}

// put inserts (or refreshes) a response, evicting the least recently used
// entries past capacity. Safe to call without s.mu held only via the
// Server.cache Put wrapper below.
func (c *resultCache) put(fp [32]byte, resp SolveResponse) {
	if c == nil {
		return
	}
	if el, ok := c.entries[fp]; ok {
		ce := el.Value.(*cacheEntry)
		ce.resp = resp
		ce.expires = time.Now().Add(c.ttl)
		c.order.MoveToFront(el)
		return
	}
	for len(c.entries) >= c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).fp)
	}
	c.entries[fp] = c.order.PushFront(&cacheEntry{fp: fp, resp: resp, expires: time.Now().Add(c.ttl)})
}

// len reports the live entry count (the cache_entries gauge); caller holds
// s.mu.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	return len(c.entries)
}

// Put caches a finished solve response under the server lock. The stored
// copy strips the per-request fields (request id, queue wait, elapsed) so a
// hit carries only content-determined payload plus its own bookkeeping.
func (s *Server) cachePut(fp [32]byte, resp *SolveResponse) {
	if s.cache == nil {
		return
	}
	stored := *resp
	stored.RequestID = ""
	stored.TimeoutMS = 0
	stored.QueueMS = 0
	stored.ElapsedMS = 0
	stored.Cached = false
	stored.Coalesced = false
	s.mu.Lock()
	s.cache.put(fp, stored)
	s.mu.Unlock()
}

// cacheEntryCount backs the cache_entries gauge.
func (s *Server) cacheEntryCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.len()
}

// admit routes a resolved instance through the dedup layer and returns a
// job whose done channel yields the result:
//
//   - flight hit: a shadow job joins the in-flight leader (coalesced)
//   - cache hit: an already-done job carrying the cached response
//   - miss: the job becomes the flight leader and is enqueued; with
//     block=false a full queue fails with 429, with block=true (batch) the
//     enqueue waits for a slot, bounded by rctx and server shutdown
//
// The returned status/error follow the writeJSONError convention and are
// only set when the job could not be admitted at all.
func (s *Server) admit(inst instance, reqID string, rctx context.Context, block bool) (*Job, int, error) {
	start := time.Now()
	s.mu.Lock()
	if leader, ok := s.flights[inst.fp]; ok {
		sh := s.newJobLocked(inst, reqID)
		s.mu.Unlock()
		s.tracer.Counter("http.coalesce_joins").Inc()
		go s.completeShadow(sh, leader, sh.enqueued.Add(sh.timeout))
		return sh, 0, nil
	}
	if resp, ok := s.cache.get(inst.fp); ok {
		j := s.newJobLocked(inst, reqID)
		s.mu.Unlock()
		s.tracer.Counter("http.cache_hits").Inc()
		resp.Cached = true
		resp.RequestID = reqID
		resp.TimeoutMS = inst.timeout.Milliseconds()
		resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
		s.hCacheHit.RecordDuration(time.Since(start))
		s.setState(j, JobDone, &resp, "")
		close(j.done)
		return j, 0, nil
	}
	j := s.newJobLocked(inst, reqID)
	j.dedup = true
	s.flights[inst.fp] = j
	if !block {
		// Enqueue inside the critical section: registration and the
		// queue-full check are atomic, so a 429'd leader can never have
		// picked up joiners.
		select {
		case s.queue <- j:
			s.mu.Unlock()
		default:
			delete(s.flights, inst.fp)
			delete(s.jobs, j.ID)
			s.mu.Unlock()
			return nil, http.StatusTooManyRequests,
				fmt.Errorf("job queue full (%d slots)", cap(s.queue))
		}
		s.tracer.Counter("http.cache_misses").Inc()
		return j, 0, nil
	}
	s.mu.Unlock()
	s.tracer.Counter("http.cache_misses").Inc()
	select {
	case s.queue <- j:
	case <-rctx.Done():
		s.failFlight(j, http.StatusRequestTimeout, "client cancelled before the solve was scheduled")
	case <-s.baseCtx.Done():
		s.failFlight(j, http.StatusServiceUnavailable, "server draining")
	}
	return j, 0, nil
}

// failFlight fails a leader that never reached a worker: it is removed from
// the flight table and published as failed, so its joiners (which may have
// attached while a blocking enqueue waited) fail alike instead of hanging.
func (s *Server) failFlight(j *Job, status int, msg string) {
	s.mu.Lock()
	if s.flights[j.fp] == j {
		delete(s.flights, j.fp)
	}
	j.State = JobFailed
	j.Error = msg
	j.failStatus = status
	s.mu.Unlock()
	close(j.done)
}

// completeShadow resolves one joiner against its leader's outcome. deadline
// is the shadow's own absolute budget: if it passes before the leader
// finishes, the shadow detaches — the leader keeps running for everyone
// else, while this request gets its usual expired-budget semantics. A
// leader that finishes degraded (its budget or a shutdown cut it short, a
// timing artifact this joiner need not inherit) triggers promotion: the
// shadow re-admits under its remaining budget, becoming the next leader if
// no one else has.
func (s *Server) completeShadow(sh *Job, leader *Job, deadline time.Time) {
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case <-leader.done:
		lv := s.jobView(leader)
		switch {
		case lv.State == JobDone && !lv.Result.Degraded:
			s.fanOut(sh, lv.Result)
		case lv.State == JobDone:
			s.promoteOrFan(sh, leader, lv.Result, deadline)
		default:
			s.failShadow(sh, lv.Error, s.failStatusOf(leader))
		}
	case <-timer.C:
		s.detach(sh)
	}
}

// fanOut publishes a copy of the leader's (or a degraded fallback's)
// response as the shadow's own result.
func (s *Server) fanOut(sh *Job, src *SolveResponse) {
	resp := *src // struct copy: no reference fields
	resp.Coalesced = true
	resp.RequestID = sh.reqID
	resp.TimeoutMS = sh.timeout.Milliseconds()
	resp.QueueMS = 0
	resp.ElapsedMS = float64(time.Since(sh.enqueued)) / float64(time.Millisecond)
	s.setState(sh, JobDone, &resp, "")
	s.hE2E.RecordDuration(time.Since(sh.enqueued))
	close(sh.done)
}

// failShadow propagates a leader failure to a joiner.
func (s *Server) failShadow(sh *Job, msg string, status int) {
	s.mu.Lock()
	sh.State = JobFailed
	sh.Error = msg
	sh.failStatus = status
	s.mu.Unlock()
	close(sh.done)
}

// promoteOrFan handles a degraded leader: a shadow with remaining budget
// re-enters the dedup layer (joining a newer flight, hitting the cache, or
// becoming the next leader itself — "leader cancellation promotes a
// surviving joiner"); one without budget accepts the degraded copy.
func (s *Server) promoteOrFan(sh *Job, old *Job, degraded *SolveResponse, deadline time.Time) {
	remaining := time.Until(deadline)
	if remaining <= 0 {
		s.fanOut(sh, degraded)
		return
	}
	s.mu.Lock()
	if leader, ok := s.flights[sh.fp]; ok && leader != old {
		s.mu.Unlock()
		s.tracer.Counter("http.coalesce_joins").Inc()
		s.completeShadow(sh, leader, deadline)
		return
	}
	if resp, ok := s.cache.get(sh.fp); ok {
		s.mu.Unlock()
		s.tracer.Counter("http.cache_hits").Inc()
		resp.Cached = true
		resp.RequestID = sh.reqID
		resp.TimeoutMS = sh.timeout.Milliseconds()
		s.setState(sh, JobDone, &resp, "")
		s.hE2E.RecordDuration(time.Since(sh.enqueued))
		close(sh.done)
		return
	}
	// Become the next leader under the remaining budget.
	sh.dedup = true
	sh.timeout = remaining
	s.flights[sh.fp] = sh
	select {
	case s.queue <- sh:
		s.mu.Unlock()
		s.tracer.Counter("http.coalesce_promotions").Inc()
	default:
		delete(s.flights, sh.fp)
		sh.dedup = false
		s.mu.Unlock()
		s.fanOut(sh, degraded) // queue full: the degraded copy is the answer
	}
}

// detach runs a shadow whose own budget expired before its leader
// finished: the solve executes inline under an already-expired deadline,
// which the degradation ladder turns into the electrical floor — the
// same response a solo request with this budget would have produced. The
// leader is untouched.
func (s *Server) detach(sh *Job) {
	s.tracer.Counter("http.coalesce_detach").Inc()
	s.setState(sh, JobRunning, nil, "")
	ctx, cancel := context.WithDeadline(s.baseCtx, time.Now())
	defer cancel()
	s.inflight.Add(1)
	start := time.Now()
	res, err := s.solve(ctx, sh.design, sh.cfg, nil)
	s.inflight.Add(-1)
	if err != nil {
		s.tracer.Counter("http.solve_errors").Inc()
		s.failShadow(sh, err.Error(), http.StatusInternalServerError)
		return
	}
	if res.Degraded {
		s.tracer.Counter("http.degraded").Inc()
	}
	resp := s.responseOf(res, sh, 0, time.Since(start))
	s.setState(sh, JobDone, resp, "")
	s.hE2E.RecordDuration(time.Since(sh.enqueued))
	close(sh.done)
}
