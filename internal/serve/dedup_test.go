package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	operon "operon"
	"operon/internal/benchgen"
	"operon/internal/signal"
)

// ctxDegraded is the stub-solver contract for an exhausted budget: block
// until the context dies, then return the degraded floor like RunContext.
func ctxDegraded(d signal.Design) *operon.Result {
	return &operon.Result{
		Design: d.Name, PowerMW: 1,
		Degraded: true, StopReason: operon.StopDeadline,
	}
}

// counter reads a tracer counter value.
func counter(srv *Server, name string) int64 {
	return srv.Tracer().Counter(name).Value()
}

// TestCoalesceJoin holds one solve in flight and posts an identical
// synchronous request: the joiner must receive the leader's response with
// coalesced=true, from exactly one solver invocation.
func TestCoalesceJoin(t *testing.T) {
	srv := newTestServer(4, 1, time.Minute, 0)
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	srv.SetSolve(func(ctx context.Context, d signal.Design, cfg operon.Config, _ *operon.Workspace) (*operon.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return ctxDegraded(d), nil
		}
		return &operon.Result{Design: d.Name, PowerMW: 42}, nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	d := testDesign(t)

	var leader Job
	decode(t, post(t, ts, "/solve", SolveRequest{Design: &d, Async: true}), &leader)
	<-started

	joined := make(chan SolveResponse, 1)
	go func() {
		var sr SolveResponse
		decode(t, post(t, ts, "/solve", SolveRequest{Design: &d}), &sr)
		joined <- sr
	}()
	// Wait until the joiner is attached (coalesce_joins counts at join time).
	deadline := time.Now().Add(5 * time.Second)
	for counter(srv, "http.coalesce_joins") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("joiner never attached to the flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	sr := <-joined
	if !sr.Coalesced {
		t.Errorf("joiner response not marked coalesced: %+v", sr)
	}
	if sr.PowerMW != 42 {
		t.Errorf("joiner power = %v, want the leader's 42", sr.PowerMW)
	}
	awaitState(t, ts, leader.ID, JobDone)
	if got := counter(srv, "http.solves_run"); got != 1 {
		t.Errorf("solves_run = %d, want 1 (the join must not solve)", got)
	}
	if got := counter(srv, "http.coalesce_joins"); got != 1 {
		t.Errorf("coalesce_joins = %d, want 1", got)
	}
	ts.Close()
	srv.Shutdown()
}

// TestJoinerCancelsEarly attaches a joiner whose budget is far shorter than
// the leader's solve: the joiner must detach with its usual degraded
// deadline semantics while the leader keeps running and completes normally.
func TestJoinerCancelsEarly(t *testing.T) {
	srv := newTestServer(4, 1, time.Minute, 0)
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	srv.SetSolve(func(ctx context.Context, d signal.Design, cfg operon.Config, _ *operon.Workspace) (*operon.Result, error) {
		if ctx.Err() != nil { // a detached joiner solves under a dead deadline
			return ctxDegraded(d), nil
		}
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return ctxDegraded(d), nil
		}
		return &operon.Result{Design: d.Name, PowerMW: 42}, nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	d := testDesign(t)

	var leader Job
	decode(t, post(t, ts, "/solve", SolveRequest{Design: &d, Async: true}), &leader)
	<-started

	var sr SolveResponse
	decode(t, post(t, ts, "/solve", SolveRequest{Design: &d, TimeoutMS: 20}), &sr)
	if !sr.Degraded || sr.StopReason != string(operon.StopDeadline) {
		t.Fatalf("detached joiner should degrade on its own deadline, got %+v", sr)
	}
	if got := counter(srv, "http.coalesce_detach"); got != 1 {
		t.Errorf("coalesce_detach = %d, want 1", got)
	}

	// The leader was NOT cancelled by the joiner's exit.
	close(release)
	awaitState(t, ts, leader.ID, JobDone)
	var j Job
	decode(t, mustGet(t, ts.URL+"/jobs/"+leader.ID), &j)
	if j.Result == nil || j.Result.Degraded {
		t.Fatalf("leader should finish un-degraded, got %+v", j.Result)
	}
	ts.Close()
	srv.Shutdown()
}

// TestLeaderCancelPromotesJoiner degrades the leader by its own short
// budget while a joiner with plenty of budget waits: the joiner must be
// promoted to a fresh solve of its own and come back un-degraded.
func TestLeaderCancelPromotesJoiner(t *testing.T) {
	srv := newTestServer(4, 1, time.Minute, 0)
	started := make(chan struct{}, 4)
	var calls int
	var mu sync.Mutex
	srv.SetSolve(func(ctx context.Context, d signal.Design, cfg operon.Config, _ *operon.Workspace) (*operon.Result, error) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			started <- struct{}{}
			<-ctx.Done() // the leader's 30 ms budget expires
			return ctxDegraded(d), nil
		}
		return &operon.Result{Design: d.Name, PowerMW: 42}, nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	d := testDesign(t)

	var leader Job
	decode(t, post(t, ts, "/solve", SolveRequest{Design: &d, Async: true, TimeoutMS: 30}), &leader)
	<-started

	var sr SolveResponse
	decode(t, post(t, ts, "/solve", SolveRequest{Design: &d, TimeoutMS: 60_000}), &sr)
	if sr.Degraded {
		t.Fatalf("promoted joiner should re-solve un-degraded, got %+v", sr)
	}
	if sr.PowerMW != 42 {
		t.Errorf("promoted joiner power = %v, want 42", sr.PowerMW)
	}
	if got := counter(srv, "http.coalesce_promotions"); got != 1 {
		t.Errorf("coalesce_promotions = %d, want 1", got)
	}
	if got := counter(srv, "http.solves_run"); got != 2 {
		t.Errorf("solves_run = %d, want 2 (degraded leader + promoted joiner)", got)
	}
	awaitState(t, ts, leader.ID, JobDone)
	ts.Close()
	srv.Shutdown()
}

// TestCacheHitDifferential runs the real flow twice on one instance: the
// second response must be served from the cache with a payload
// bit-identical to the cold solve's.
func TestCacheHitDifferential(t *testing.T) {
	srv := newTestServer(4, 1, time.Minute, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	d, err := benchgen.Generate(benchgen.Spec{
		Name: "dup-diff", DieCM: 3, Groups: 6, BitsPerGroup: 4, BitsJitter: 1,
		MinSinkClusters: 1, MaxSinkClusters: 2, LocalFraction: 0.4,
		LocalSpanCM: 0.3, GlobalSpanCM: 1.5, RegionSpreadCM: 0.02, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}

	var cold, hot SolveResponse
	decode(t, post(t, ts, "/solve", SolveRequest{Design: &d}), &cold)
	if cold.Degraded {
		t.Fatalf("cold solve degraded, cannot test the cache: %+v", cold)
	}
	decode(t, post(t, ts, "/solve", SolveRequest{Design: &d}), &hot)
	if !hot.Cached {
		t.Fatalf("second identical request not served from cache: %+v", hot)
	}
	// Bit-identical semantic payload (exact float equality included).
	if hot.Design != cold.Design || hot.Flow != cold.Flow ||
		hot.PowerMW != cold.PowerMW || hot.Violations != cold.Violations ||
		hot.HyperNets != cold.HyperNets || hot.WDMsUsed != cold.WDMsUsed ||
		hot.Degraded != cold.Degraded || hot.StopReason != cold.StopReason {
		t.Fatalf("cached response differs from cold solve:\ncold %+v\nhot  %+v", cold, hot)
	}
	if got := counter(srv, "http.cache_hits"); got != 1 {
		t.Errorf("cache_hits = %d, want 1", got)
	}
	if got := counter(srv, "http.solves_run"); got != 1 {
		t.Errorf("solves_run = %d, want 1", got)
	}
	if got := srv.cacheEntryCount(); got != 1 {
		t.Errorf("cache_entries = %d, want 1", got)
	}
	ts.Close()
	srv.Shutdown()
}

// TestCacheHitAfterEviction squeezes a 1-entry cache: A is cached, B evicts
// it, A must re-solve (miss) and then hit again.
func TestCacheHitAfterEviction(t *testing.T) {
	srv := New(Options{
		Config:         operon.DefaultConfig(),
		QueueLen:       4,
		Concurrency:    1,
		DefaultTimeout: time.Minute,
		CacheEntries:   1,
	})
	srv.SetSolve(func(ctx context.Context, d signal.Design, cfg operon.Config, _ *operon.Workspace) (*operon.Result, error) {
		return &operon.Result{Design: d.Name, PowerMW: 7}, nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	a, b := testDesignSeed(t, 7), testDesignSeed(t, 8)

	solve := func(d *signal.Design) SolveResponse {
		var sr SolveResponse
		decode(t, post(t, ts, "/solve", SolveRequest{Design: d}), &sr)
		return sr
	}
	if sr := solve(&a); sr.Cached {
		t.Fatal("first A must be a cold solve")
	}
	if sr := solve(&b); sr.Cached {
		t.Fatal("first B must be a cold solve")
	}
	if sr := solve(&a); sr.Cached {
		t.Fatal("A after eviction must re-solve, not hit")
	}
	if sr := solve(&a); !sr.Cached {
		t.Fatal("A immediately after re-solve must hit the cache")
	}
	if got := counter(srv, "http.solves_run"); got != 3 {
		t.Errorf("solves_run = %d, want 3 (A, B, A-again)", got)
	}
	if got := srv.cacheEntryCount(); got != 1 {
		t.Errorf("cache_entries = %d, want 1 (capacity bound)", got)
	}
	ts.Close()
	srv.Shutdown()
}

// TestCacheTTLExpiry ages an entry past a tiny TTL and asserts the next
// identical request misses.
func TestCacheTTLExpiry(t *testing.T) {
	srv := New(Options{
		Config:         operon.DefaultConfig(),
		QueueLen:       4,
		Concurrency:    1,
		DefaultTimeout: time.Minute,
		CacheTTL:       20 * time.Millisecond,
	})
	srv.SetSolve(func(ctx context.Context, d signal.Design, cfg operon.Config, _ *operon.Workspace) (*operon.Result, error) {
		return &operon.Result{Design: d.Name, PowerMW: 7}, nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	d := testDesign(t)

	var sr SolveResponse
	decode(t, post(t, ts, "/solve", SolveRequest{Design: &d}), &sr)
	time.Sleep(30 * time.Millisecond)
	decode(t, post(t, ts, "/solve", SolveRequest{Design: &d}), &sr)
	if sr.Cached {
		t.Fatal("entry older than the TTL must not hit")
	}
	if got := counter(srv, "http.solves_run"); got != 2 {
		t.Errorf("solves_run = %d, want 2", got)
	}
	ts.Close()
	srv.Shutdown()
}

// TestBatchAllDuplicates posts a batch of identical items: one solve runs,
// the rest are deduplicated with coalesced provenance and identical
// payloads.
func TestBatchAllDuplicates(t *testing.T) {
	srv := newTestServer(4, 1, time.Minute, 0)
	srv.SetSolve(func(ctx context.Context, d signal.Design, cfg operon.Config, _ *operon.Workspace) (*operon.Result, error) {
		return &operon.Result{Design: d.Name, PowerMW: 9}, nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	d := testDesign(t)

	batch := []SolveRequest{{Design: &d}, {Design: &d}, {Design: &d}, {Design: &d}}
	var br BatchResponse
	decode(t, post(t, ts, "/solve/batch", batch), &br)
	if br.Items != 4 || len(br.Results) != 4 {
		t.Fatalf("batch shape: items=%d results=%d, want 4/4", br.Items, len(br.Results))
	}
	if br.UniqueSolves != 1 || br.DupItems != 3 {
		t.Errorf("unique=%d dup=%d, want 1/3", br.UniqueSolves, br.DupItems)
	}
	if br.Results[0].Coalesced || br.Results[0].Cached {
		t.Errorf("first item should be the cold solve: %+v", br.Results[0])
	}
	for i := 1; i < 4; i++ {
		if !br.Results[i].Coalesced {
			t.Errorf("item %d not marked coalesced: %+v", i, br.Results[i])
		}
		if br.Results[i].PowerMW != br.Results[0].PowerMW {
			t.Errorf("item %d payload differs from item 0", i)
		}
	}
	if got := counter(srv, "http.solves_run"); got != 1 {
		t.Errorf("solves_run = %d, want 1", got)
	}
	if got := counter(srv, "http.batch_dup_items"); got != 3 {
		t.Errorf("batch_dup_items = %d, want 3", got)
	}
	ts.Close()
	srv.Shutdown()
}

// TestBatchMixed pins the per-item error contract: bad items carry their
// error in place, good items solve, the batch itself returns 200 — and a
// batch larger than the queue completes instead of 429ing.
func TestBatchMixed(t *testing.T) {
	srv := newTestServer(1, 1, time.Minute, 0) // queue of 1: batch must not bounce
	srv.SetSolve(func(ctx context.Context, d signal.Design, cfg operon.Config, _ *operon.Workspace) (*operon.Result, error) {
		return &operon.Result{Design: d.Name, PowerMW: 3}, nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	d1, d2, d3 := testDesignSeed(t, 7), testDesignSeed(t, 8), testDesignSeed(t, 9)

	batch := []SolveRequest{
		{Design: &d1},
		{Bench: "nope"},
		{Design: &d2},
		{Design: &d1, Async: true},
		{Design: &d3},
	}
	resp := post(t, ts, "/solve/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch status %d, want 200", resp.StatusCode)
	}
	var br BatchResponse
	decode(t, resp, &br)
	if br.Results[1].Error == "" {
		t.Error("unknown bench item should carry an error")
	}
	if br.Results[3].Error == "" {
		t.Error("async item should carry an error")
	}
	for _, i := range []int{0, 2, 4} {
		if br.Results[i].Error != "" || br.Results[i].PowerMW != 3 {
			t.Errorf("item %d should have solved: %+v", i, br.Results[i])
		}
	}
	if br.UniqueSolves != 3 {
		t.Errorf("unique_solves = %d, want 3", br.UniqueSolves)
	}
	ts.Close()
	srv.Shutdown()
}

// TestErrorResponsesAreJSON asserts every error path sets
// Content-Type: application/json — including the former http.Error paths.
func TestErrorResponsesAreJSON(t *testing.T) {
	srv := newTestServer(1, 1, time.Minute, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	check := func(name string, resp *http.Response, wantStatus int) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s: Content-Type %q, want application/json", name, ct)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Errorf("%s: body is not a JSON object: %v", name, err)
		} else if body["error"] == "" {
			t.Errorf("%s: missing error field: %v", name, body)
		}
	}

	get, err := http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	check("method not allowed", get, http.StatusMethodNotAllowed)

	bad, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewBufferString("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	check("malformed JSON", bad, http.StatusBadRequest)

	nf, err := http.Get(ts.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	check("unknown job", nf, http.StatusNotFound)

	sess, err := http.Get(ts.URL + "/sessions/sess-999")
	if err != nil {
		t.Fatal(err)
	}
	check("unknown session", sess, http.StatusNotFound)
	ts.Close()
	srv.Shutdown()
}

// TestBodyTooLarge posts bodies past MaxBodyBytes to every decode endpoint:
// each must return 413 with a JSON error, and the counter must tally them.
func TestBodyTooLarge(t *testing.T) {
	srv := New(Options{
		Config:         operon.DefaultConfig(),
		QueueLen:       4,
		Concurrency:    1,
		DefaultTimeout: time.Minute,
		MaxBodyBytes:   256,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big := `{"bench":"` + strings.Repeat("x", 1024) + `"}`
	for i, path := range []string{"/solve", "/solve/batch", "/sessions"} {
		body := big
		if path == "/solve/batch" {
			body = "[" + big + "]"
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s: Content-Type %q, want application/json", path, ct)
		}
		resp.Body.Close()
		if got := counter(srv, "http.body_too_large"); got != int64(i+1) {
			t.Errorf("body_too_large = %d after %s, want %d", got, path, i+1)
		}
	}
	ts.Close()
	srv.Shutdown()
}

// mustGet wraps http.Get with the test fatal contract.
func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
