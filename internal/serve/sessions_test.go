package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	operon "operon"
	"operon/internal/benchgen"
)

// sessionServer builds a server tuned for session tests.
func sessionServer(ttl time.Duration, maxSessions int) *Server {
	cfg := operon.DefaultConfig()
	cfg.SkipWDM = true
	return New(Options{
		Config:         cfg,
		QueueLen:       4,
		Concurrency:    2,
		DefaultTimeout: 30 * time.Second,
		SessionTTL:     ttl,
		MaxSessions:    maxSessions,
	})
}

// sessionDesign generates a small deterministic design for session tests.
func sessionDesign(t *testing.T, seed int64) benchgen.Spec {
	t.Helper()
	return benchgen.Spec{
		Name: fmt.Sprintf("sess-%d", seed), DieCM: 2, Groups: 4, BitsPerGroup: 6,
		BitsJitter: 1, MinSinkClusters: 1, MaxSinkClusters: 2, LocalFraction: 0.2,
		LocalSpanCM: 0.15, GlobalSpanCM: 1.2, RegionSpreadCM: 0.02,
		LanePitchCM: 0.2, Seed: seed,
	}
}

// createSession POSTs /sessions with an inline design and returns the reply.
func createSession(t *testing.T, ts *httptest.Server, seed int64) SessionResponse {
	t.Helper()
	d, err := benchgen.Generate(sessionDesign(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	resp := post(t, ts, "/sessions", SessionRequest{Design: &d, SkipWDM: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create session: status %d", resp.StatusCode)
	}
	var sr SessionResponse
	decode(t, resp, &sr)
	return sr
}

// TestSessionRoundtrip walks the whole session surface: create (cold solve),
// edit (incremental resolve with reuse), info, delete, and 404 after delete.
func TestSessionRoundtrip(t *testing.T) {
	s := sessionServer(0, 0)
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sr := createSession(t, ts, 11)
	if sr.SessionID == "" || !sr.Reuse.Cold || sr.Resolves != 1 {
		t.Fatalf("cold create: id=%q cold=%v resolves=%d", sr.SessionID, sr.Reuse.Cold, sr.Resolves)
	}
	if sr.Degraded {
		t.Fatalf("cold solve degraded: %s", sr.StopReason)
	}

	d, err := benchgen.Generate(sessionDesign(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	ops := benchgen.MoveScript(d, 2, 1)
	resp := post(t, ts, "/sessions/"+sr.SessionID+"/edit", EditRequest{Edits: ops})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edit: status %d", resp.StatusCode)
	}
	var er SessionResponse
	decode(t, resp, &er)
	if er.Reuse.Cold || er.Resolves != 2 {
		t.Fatalf("edit resolve: cold=%v resolves=%d", er.Reuse.Cold, er.Resolves)
	}
	if er.Reuse.GroupsReused+er.Reuse.GroupsRebuilt == 0 {
		t.Fatal("edit resolve reported no group accounting")
	}

	// Empty edit script: full reuse.
	resp = post(t, ts, "/sessions/"+sr.SessionID+"/edit", EditRequest{})
	var fr SessionResponse
	decode(t, resp, &fr)
	if !fr.Reuse.FullReuse {
		t.Fatalf("empty edit script: want full reuse, got %+v", fr.Reuse)
	}

	// Info carries the latency summary.
	resp, err = http.Get(ts.URL + "/sessions/" + sr.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	var info SessionInfo
	decode(t, resp, &info)
	if info.ID != sr.SessionID || info.Resolves != 3 || info.ResolveCount != 3 {
		t.Fatalf("info: %+v", info)
	}
	if info.ResolveP99MS <= 0 {
		t.Fatalf("info: want positive p99, got %v", info.ResolveP99MS)
	}

	// Delete, then the session is gone.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+sr.SessionID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	resp = post(t, ts, "/sessions/"+sr.SessionID+"/edit", EditRequest{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("edit after delete: status %d, want 404", resp.StatusCode)
	}
}

// TestSessionBenchInput exercises the bench-name input path and a bad edit
// (out-of-range group) returning 400 without killing the session.
func TestSessionBenchInput(t *testing.T) {
	s := sessionServer(0, 0)
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := post(t, ts, "/sessions", SessionRequest{Bench: "I1", SkipWDM: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create from bench: status %d", resp.StatusCode)
	}
	var sr SessionResponse
	decode(t, resp, &sr)

	resp = post(t, ts, "/sessions/"+sr.SessionID+"/edit", EditRequest{
		Edits: []benchgen.EditOp{{Kind: "move", Group: 9999, Bit: 0, Sink: -1, X: 1, Y: 1}},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad edit: status %d, want 400", resp.StatusCode)
	}
	// The session survives the rejected edit.
	resp = post(t, ts, "/sessions/"+sr.SessionID+"/edit", EditRequest{})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edit after rejected edit: status %d", resp.StatusCode)
	}
}

// TestSessionTTLEviction proves idle sessions expire: after the TTL, both the
// janitor path and the lazy lookup path report the session gone.
func TestSessionTTLEviction(t *testing.T) {
	s := sessionServer(50*time.Millisecond, 0)
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sr := createSession(t, ts, 21)
	deadline := time.Now().Add(5 * time.Second)
	for s.sessionCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("session not evicted by TTL janitor")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp := post(t, ts, "/sessions/"+sr.SessionID+"/edit", EditRequest{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("edit after TTL: status %d, want 404", resp.StatusCode)
	}
	if s.tracer.Counter("http.sessions_evicted/ttl").Value() == 0 {
		t.Fatal("TTL eviction counter not bumped")
	}
}

// TestSessionLRUEviction proves the MaxSessions cap evicts the least
// recently used session on create.
func TestSessionLRUEviction(t *testing.T) {
	s := sessionServer(0, 2)
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := createSession(t, ts, 31)
	time.Sleep(5 * time.Millisecond)
	b := createSession(t, ts, 32)
	time.Sleep(5 * time.Millisecond)
	// Touch a so b becomes the LRU.
	resp := post(t, ts, "/sessions/"+a.SessionID+"/edit", EditRequest{})
	resp.Body.Close()
	time.Sleep(5 * time.Millisecond)
	c := createSession(t, ts, 33)

	if got := s.sessionCount(); got != 2 {
		t.Fatalf("after LRU eviction: %d sessions, want 2", got)
	}
	resp = post(t, ts, "/sessions/"+b.SessionID+"/edit", EditRequest{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("LRU victim still alive: status %d, want 404", resp.StatusCode)
	}
	for _, id := range []string{a.SessionID, c.SessionID} {
		resp = post(t, ts, "/sessions/"+id+"/edit", EditRequest{})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("survivor %s: status %d", id, resp.StatusCode)
		}
	}
	if s.tracer.Counter("http.sessions_evicted/lru").Value() == 0 {
		t.Fatal("LRU eviction counter not bumped")
	}
}

// TestSessionEvictionMidResolve proves evicting a session while its resolve
// is in flight is safe: the in-flight handler holds the session pointer, so
// the resolve completes and returns a normal response even though the id is
// already gone from the table.
func TestSessionEvictionMidResolve(t *testing.T) {
	s := sessionServer(0, 0)
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sr := createSession(t, ts, 41)
	d, err := benchgen.Generate(sessionDesign(t, 41))
	if err != nil {
		t.Fatal(err)
	}
	ops := benchgen.MoveScript(d, 4, 2)

	// Race DELETE against the edit resolve. Whichever interleaving the
	// scheduler picks, the edit must either succeed (handler grabbed the
	// session first) or 404 (delete won) — never crash or hang.
	done := make(chan SessionResponse, 1)
	status := make(chan int, 1)
	go func() {
		resp := post(t, ts, "/sessions/"+sr.SessionID+"/edit", EditRequest{Edits: ops})
		defer resp.Body.Close()
		status <- resp.StatusCode
		var er SessionResponse
		if resp.StatusCode == http.StatusOK {
			decode(t, resp, &er)
		}
		done <- er
	}()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+sr.SessionID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	select {
	case st := <-status:
		er := <-done
		if st == http.StatusOK {
			if er.SessionID != sr.SessionID {
				t.Fatalf("in-flight resolve returned wrong session: %+v", er)
			}
		} else if st != http.StatusNotFound {
			t.Fatalf("edit racing delete: status %d, want 200 or 404", st)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("edit racing delete hung")
	}
	if s.sessionCount() != 0 {
		// The delete may have lost the race entirely (edit touched first,
		// delete then removed it) — either way the table must not leak.
		t.Fatalf("session table leaked: %d entries", s.sessionCount())
	}
}

// TestSessionMetricsExposeGauge proves sessions_active appears in the
// registry snapshot and tracks the live table.
func TestSessionMetricsExposeGauge(t *testing.T) {
	s := sessionServer(0, 0)
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	createSession(t, ts, 51)
	snap := s.Registry().Snapshot()
	for _, g := range snap.Gauges {
		if g.Name == "sessions_active" {
			if g.Value != 1 {
				t.Fatalf("sessions_active = %v, want 1", g.Value)
			}
			return
		}
	}
	t.Fatal("sessions_active gauge missing from registry snapshot")
}
