package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	operon "operon"
	"operon/internal/benchgen"
	"operon/internal/obs"
	"operon/internal/signal"
)

// Session endpoints implement sticky incremental re-synthesis over HTTP:
//
//	POST   /sessions            create a session and run its cold solve
//	POST   /sessions/{id}/edit  apply an edit script and re-solve warm
//	GET    /sessions/{id}       session metadata + latency summary
//	DELETE /sessions/{id}       drop the session
//
// Unlike /solve jobs, session solves run inline in the handler (bounded by
// MaxSessions and serialised per session): a session's reuse state is
// sticky to its operon.Session and cannot hop between queue slots. Sessions
// are evicted by idle TTL (a janitor sweeps; lookups also check lazily) and
// by LRU when MaxSessions is reached. Eviction mid-resolve is safe: the
// handler holds the session pointer and its lock for the duration, eviction
// only unlinks the id from the table.

// SessionRequest is the JSON body of POST /sessions. Input selection
// matches SolveRequest (bench or inline design).
type SessionRequest struct {
	// Bench names a built-in benchmark (benchgen.SpecByName, "I1".."I8").
	Bench string `json:"bench,omitempty"`
	// Design is an inline signal.Design; used when Bench is empty.
	Design *signal.Design `json:"design,omitempty"`
	// Mode is the selection algorithm: "lr" (default), "ilp" or "greedy".
	Mode string `json:"mode,omitempty"`
	// SkipWDM disables the WDM placement/assignment stage.
	SkipWDM bool `json:"skip_wdm,omitempty"`
	// WarmDuals opts into the Lagrangian warm start (faster, not
	// bit-identical to cold solves; see operon.Session.SetWarmDuals).
	WarmDuals bool `json:"warm_duals,omitempty"`
	// TimeoutMS bounds the initial solve like SolveRequest.TimeoutMS.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// EditRequest is the JSON body of POST /sessions/{id}/edit: an edit script
// applied atomically, followed by an incremental re-solve.
type EditRequest struct {
	// Edits is the ordered edit script (see benchgen.EditOp for the kinds).
	Edits []benchgen.EditOp `json:"edits"`
	// TimeoutMS bounds the re-solve like SolveRequest.TimeoutMS.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ReuseStats is the wire form of operon.ResolveStats: what the re-solve
// reused versus rebuilt.
type ReuseStats struct {
	// Cold marks the session's first solve.
	Cold bool `json:"cold,omitempty"`
	// FullReuse marks a no-op resolve (nothing dirty, nothing re-run).
	FullReuse bool `json:"full_reuse,omitempty"`
	// GroupsReused counts signal groups whose clustering carried over.
	GroupsReused int `json:"groups_reused"`
	// GroupsRebuilt counts signal groups re-clustered because they were dirty.
	GroupsRebuilt int `json:"groups_rebuilt"`
	// TreesReused counts hyper nets whose baseline trees carried over.
	TreesReused int `json:"trees_reused"`
	// CandsReused counts nets whose candidate sets carried over.
	CandsReused int `json:"cands_reused"`
	// CandsRebuilt counts nets whose candidate sets were regenerated.
	CandsRebuilt int `json:"cands_rebuilt"`
	// CrossCacheSeeded counts transplanted crossing-loss memo entries.
	CrossCacheSeeded int `json:"crosscache_seeded"`
	// WDMReused marks a carried-over WDM placement/assignment.
	WDMReused bool `json:"wdm_reused,omitempty"`
}

// SessionResponse is the JSON result of a session solve (create or edit).
type SessionResponse struct {
	SolveResponse
	// SessionID addresses the session in subsequent /sessions/{id} calls.
	SessionID string `json:"session_id"`
	// Resolves counts the solves this session has run (cold included).
	Resolves int `json:"resolves"`
	// Reuse reports what this resolve reused versus rebuilt.
	Reuse ReuseStats `json:"reuse"`
}

// SessionInfo is the JSON body of GET /sessions/{id}.
type SessionInfo struct {
	// ID is the session id.
	ID string `json:"id"`
	// Design names the session's design.
	Design string `json:"design"`
	// Resolves counts the solves run so far.
	Resolves int `json:"resolves"`
	// AgeSeconds is the time since session creation.
	AgeSeconds float64 `json:"age_seconds"`
	// IdleSeconds is the time since the session was last used.
	IdleSeconds float64 `json:"idle_seconds"`
	// ResolveP50MS is this session's median resolve latency.
	ResolveP50MS float64 `json:"resolve_p50_ms"`
	// ResolveP99MS is this session's tail resolve latency.
	ResolveP99MS float64 `json:"resolve_p99_ms"`
	// ResolveCount is the sample count behind the quantiles.
	ResolveCount int64 `json:"resolve_count"`
}

// session is one sticky server-side editing session. The server table lock
// (sessMu) guards lastUsed and table membership; mu serialises Apply/Resolve
// so concurrent edits to one session cannot interleave mid-solve.
type session struct {
	id      string
	mu      sync.Mutex
	sess    *operon.Session
	hist    *obs.Histogram // per-session resolve latency
	created time.Time

	resolves int       // guarded by mu
	lastUsed time.Time // guarded by the server's sessMu
}

// initSessions wires the session table; called from New.
func (s *Server) initSessions(opts Options) {
	s.sessTTL = opts.SessionTTL
	if s.sessTTL <= 0 {
		s.sessTTL = 10 * time.Minute
	}
	s.sessMax = opts.MaxSessions
	if s.sessMax <= 0 {
		s.sessMax = 64
	}
	s.sessions = map[string]*session{}
	s.wg.Add(1)
	go s.sessionJanitor()
}

// sessionJanitor sweeps idle sessions every quarter TTL until shutdown.
func (s *Server) sessionJanitor() {
	defer s.wg.Done()
	interval := s.sessTTL / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-tick.C:
			s.evictExpired()
		}
	}
}

// evictExpired drops every session idle beyond the TTL.
func (s *Server) evictExpired() {
	now := time.Now()
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	for id, se := range s.sessions {
		if now.Sub(se.lastUsed) > s.sessTTL {
			delete(s.sessions, id)
			s.tracer.Counter("http.sessions_evicted/ttl").Inc()
		}
	}
}

// getSession looks a session up, applying the lazy TTL check and touching
// its LRU timestamp.
func (s *Server) getSession(id string) (*session, bool) {
	now := time.Now()
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	se, ok := s.sessions[id]
	if !ok {
		return nil, false
	}
	if now.Sub(se.lastUsed) > s.sessTTL {
		delete(s.sessions, id)
		s.tracer.Counter("http.sessions_evicted/ttl").Inc()
		return nil, false
	}
	se.lastUsed = now
	return se, true
}

// putSession registers a new session, evicting the least-recently-used one
// when the table is full.
func (s *Server) putSession(se *session) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	for len(s.sessions) >= s.sessMax {
		var lruID string
		var lruAt time.Time
		for id, cand := range s.sessions {
			if lruID == "" || cand.lastUsed.Before(lruAt) {
				lruID, lruAt = id, cand.lastUsed
			}
		}
		delete(s.sessions, lruID)
		s.tracer.Counter("http.sessions_evicted/lru").Inc()
	}
	s.sessions[se.id] = se
	s.tracer.Counter("http.sessions_created").Inc()
}

// sessionCount returns the live session count (the sessions_active gauge).
func (s *Server) sessionCount() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}

// handleSessions serves POST /sessions: create a session, run the cold
// solve inline, and return the result with the session id.
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		writeJSONError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req SessionRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	design, err := resolveDesign(SolveRequest{Bench: req.Bench, Design: req.Design})
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg := s.cfg
	cfg.SkipWDM = req.SkipWDM
	if cfg.Mode, err = ParseMode(req.Mode); err != nil {
		writeJSONError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.sessMu.Lock()
	s.sessSeq++
	id := fmt.Sprintf("sess-%d", s.sessSeq)
	s.sessMu.Unlock()
	se := &session{
		id:       id,
		sess:     operon.NewSession(design, cfg),
		hist:     obs.NewHistogram("session/resolve", nil),
		created:  time.Now(),
		lastUsed: time.Now(),
	}
	se.sess.SetWarmDuals(req.WarmDuals)
	s.putSession(se)
	s.resolveSession(w, r, se, req.TimeoutMS)
}

// handleSession routes /sessions/{id} and /sessions/{id}/edit.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/sessions/")
	id, action, _ := strings.Cut(rest, "/")
	se, ok := s.getSession(id)
	if !ok {
		writeJSONError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	switch {
	case action == "" && r.Method == http.MethodGet:
		s.sessMu.Lock()
		idle := time.Since(se.lastUsed)
		s.sessMu.Unlock()
		se.mu.Lock()
		resolves := se.resolves
		design := se.sess.Design().Name
		se.mu.Unlock()
		snap := se.hist.Snapshot()
		writeJSON(w, http.StatusOK, SessionInfo{
			ID:           se.id,
			Design:       design,
			Resolves:     resolves,
			AgeSeconds:   time.Since(se.created).Seconds(),
			IdleSeconds:  idle.Seconds(),
			ResolveP50MS: snap.Quantile(0.50) / float64(time.Millisecond),
			ResolveP99MS: snap.Quantile(0.99) / float64(time.Millisecond),
			ResolveCount: snap.Count,
		})
	case action == "" && r.Method == http.MethodDelete:
		s.sessMu.Lock()
		delete(s.sessions, id)
		s.sessMu.Unlock()
		writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
	case action == "edit" && r.Method == http.MethodPost:
		var req EditRequest
		if !s.decodeJSON(w, r, &req) {
			return
		}
		edits, err := operon.EditsFromOps(req.Edits)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, "%v", err)
			return
		}
		se.mu.Lock()
		if _, err := se.sess.Apply(edits...); err != nil {
			se.mu.Unlock()
			writeJSONError(w, http.StatusBadRequest, "%v", err)
			return
		}
		se.mu.Unlock()
		s.resolveSession(w, r, se, req.TimeoutMS)
	default:
		writeJSONError(w, http.StatusMethodNotAllowed, "unsupported method %s for /sessions/%s/%s", r.Method, id, action)
	}
}

// resolveSession runs one session resolve inline under the request budget
// and writes the response. It serialises on the session's own lock, so
// concurrent edits to the same session queue up rather than interleave.
func (s *Server) resolveSession(w http.ResponseWriter, r *http.Request, se *session, timeoutMS int64) {
	timeout := time.Duration(timeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.defaultTimeout
	}
	if s.maxTimeout > 0 && timeout > s.maxTimeout {
		timeout = s.maxTimeout
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()

	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	se.mu.Lock()
	defer se.mu.Unlock()
	start := time.Now()
	res, st, err := se.sess.Resolve(ctx)
	elapsed := time.Since(start)
	se.hist.RecordDuration(elapsed)
	s.tracer.Histogram("session/resolve").RecordDuration(elapsed)
	reqID := r.Header.Get("X-Request-Id")
	if err != nil {
		s.tracer.Counter("http.solve_errors").Inc()
		s.log.Error("session resolve failed", "request_id", reqID, "session_id", se.id, "error", err.Error())
		writeJSONError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	se.resolves++
	if res.Degraded {
		s.tracer.Counter("http.degraded").Inc()
	}
	s.log.Info("session resolve",
		"request_id", reqID,
		"session_id", se.id,
		"design", res.Design,
		"degraded", res.Degraded,
		"full_reuse", st.FullReuse,
		"groups_rebuilt", st.GroupsRebuilt,
		"solve_ms", float64(elapsed)/float64(time.Millisecond),
	)
	writeJSON(w, http.StatusOK, SessionResponse{
		SolveResponse: SolveResponse{
			Design:     res.Design,
			Flow:       res.Flow,
			PowerMW:    res.PowerMW,
			Violations: res.Selection.Violations,
			HyperNets:  len(res.HyperNets),
			WDMsUsed:   res.WDMStats.FinalWDMs,
			Degraded:   res.Degraded,
			StopReason: string(res.StopReason),
			RequestID:  reqID,
			TimeoutMS:  timeout.Milliseconds(),
			ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
		},
		SessionID: se.id,
		Resolves:  se.resolves,
		Reuse: ReuseStats{
			Cold:             st.Cold,
			FullReuse:        st.FullReuse,
			GroupsReused:     st.GroupsReused,
			GroupsRebuilt:    st.GroupsRebuilt,
			TreesReused:      st.TreesReused,
			CandsReused:      st.CandsReused,
			CandsRebuilt:     st.CandsRebuilt,
			CrossCacheSeeded: st.CrossCacheSeeded,
			WDMReused:        st.WDMReused,
		},
	})
}
