package serve

import (
	"net/http"
	"time"
)

// BatchItem is one positional result of POST /solve/batch: either a solve
// response or a per-item error. Items never fail the whole batch — a bad
// item (unknown bench, invalid mode) carries its error in place while the
// rest solve normally.
type BatchItem struct {
	SolveResponse
	// Error is set when this item could not be resolved or its solve
	// failed; the other fields are zero then.
	Error string `json:"error,omitempty"`
}

// BatchResponse is the JSON result of POST /solve/batch. Results are
// positional: Results[i] answers the i-th request of the posted array.
type BatchResponse struct {
	// Results holds one item per posted request, in order.
	Results []BatchItem `json:"results"`
	// Items is the posted request count.
	Items int `json:"items"`
	// UniqueSolves counts the distinct instances this batch actually
	// scheduled (after within-batch dedup, coalescing, and cache hits).
	UniqueSolves int `json:"unique_solves"`
	// CacheHits counts items answered from the result cache.
	CacheHits int `json:"cache_hits"`
	// CoalesceJoins counts items that joined another in-flight solve
	// (within the batch or across requests).
	CoalesceJoins int `json:"coalesce_joins"`
	// DupItems counts items deduplicated against an earlier item of the
	// same batch.
	DupItems int `json:"dup_items"`
}

// handleBatch serves POST /solve/batch: an array of SolveRequest bodies is
// fingerprint-deduplicated, the unique instances are packed into one pass
// over the worker pool (enqueues block for a slot instead of 429ing, so a
// batch larger than the queue still completes), and the positional results
// report per-item cached/coalesced provenance. Per-item budgets degrade
// per item; the batch itself only fails on malformed JSON.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var reqs []SolveRequest
	if !s.decodeJSON(w, r, &reqs) {
		return
	}
	if len(reqs) == 0 {
		writeJSONError(w, http.StatusBadRequest, "empty batch")
		return
	}
	s.tracer.Counter("http.batch_requests").Inc()
	s.tracer.Counter("http.batch_items").Add(int64(len(reqs)))
	reqID := r.Header.Get("X-Request-Id")
	start := time.Now()

	resp := BatchResponse{Results: make([]BatchItem, len(reqs)), Items: len(reqs)}
	jobs := make([]*Job, len(reqs))    // per-item admitted job (firsts only)
	firstOf := map[[32]byte]int{}      // fingerprint -> first item index
	follower := make([]int, len(reqs)) // item -> index it duplicates, or -1
	for i, req := range reqs {
		follower[i] = -1
		if req.Async {
			resp.Results[i].Error = "async is not supported inside a batch"
			continue
		}
		inst, err := s.resolveInstance(req)
		if err != nil {
			resp.Results[i].Error = err.Error()
			continue
		}
		if first, ok := firstOf[inst.fp]; ok {
			follower[i] = first
			resp.DupItems++
			s.tracer.Counter("http.batch_dup_items").Inc()
			continue
		}
		firstOf[inst.fp] = i
		j, _, err := s.admit(inst, reqID, r.Context(), true)
		if err != nil {
			resp.Results[i].Error = err.Error()
			continue
		}
		jobs[i] = j
	}

	// One barrier over the unique jobs: every job's done channel closes —
	// by solve completion, per-item degradation, coalesce fan-out, or
	// shutdown failure — so the batch always terminates.
	for i, j := range jobs {
		if j == nil {
			continue
		}
		<-j.done
		v := s.jobView(j)
		if v.State == JobFailed {
			resp.Results[i].Error = v.Error
			continue
		}
		resp.Results[i].SolveResponse = *v.Result
		switch {
		case v.Result.Cached:
			resp.CacheHits++
		case v.Result.Coalesced:
			resp.CoalesceJoins++
		default:
			resp.UniqueSolves++
		}
	}

	// Followers copy their first's outcome with coalesced provenance: they
	// shared its solve the same way a cross-request joiner would have.
	for i, first := range follower {
		if first < 0 {
			continue
		}
		src := resp.Results[first]
		if src.Error != "" {
			resp.Results[i].Error = src.Error
			continue
		}
		item := src
		if !item.Cached {
			item.Coalesced = true
			resp.CoalesceJoins++
		} else {
			resp.CacheHits++
		}
		item.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
		resp.Results[i] = item
	}
	writeJSON(w, http.StatusOK, resp)
}
