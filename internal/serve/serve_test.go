package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	operon "operon"
	"operon/internal/benchgen"
	"operon/internal/obs"
	"operon/internal/signal"
)

// newTestServer builds a server with the given queue/concurrency/timeouts.
func newTestServer(queueLen, concurrency int, defTimeout, maxTimeout time.Duration) *Server {
	return New(Options{
		Config:         operon.DefaultConfig(),
		QueueLen:       queueLen,
		Concurrency:    concurrency,
		DefaultTimeout: defTimeout,
		MaxTimeout:     maxTimeout,
	})
}

// testDesign generates a small deterministic design for server tests.
func testDesign(t *testing.T) signal.Design {
	return testDesignSeed(t, 7)
}

// testDesignSeed generates a small deterministic design whose content (and
// so its fingerprint) varies with the seed — tests that must NOT coalesce
// use distinct seeds.
func testDesignSeed(t *testing.T, seed int64) signal.Design {
	t.Helper()
	d, err := benchgen.Generate(benchgen.Spec{
		Name: "srv-a", DieCM: 4, Groups: 24, BitsPerGroup: 8, BitsJitter: 2,
		MinSinkClusters: 1, MaxSinkClusters: 3, LocalFraction: 0.3,
		LocalSpanCM: 0.3, GlobalSpanCM: 2.0, RegionSpreadCM: 0.02, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// post sends a JSON body to path and returns the response.
func post(t *testing.T, ts *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decode unmarshals a response body into v and closes it.
func decode(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// awaitState polls /jobs/{id} until the job reaches the wanted state.
func awaitState(t *testing.T, ts *httptest.Server, id string, want JobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var j Job
		decode(t, resp, &j)
		if j.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, j.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQueueFullReturns429 fills the single queue slot behind a blocked
// solver and asserts the next request is rejected with 429 — and that the
// queue drains normally once the solver is released.
func TestQueueFullReturns429(t *testing.T) {
	srv := newTestServer(1, 1, time.Minute, 0)
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	srv.SetSolve(func(ctx context.Context, d signal.Design, cfg operon.Config, _ *operon.Workspace) (*operon.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &operon.Result{Design: d.Name, PowerMW: 1}, nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Three DISTINCT designs: identical ones would coalesce into a single
	// solve instead of filling the queue.
	d1, d2, d3 := testDesignSeed(t, 7), testDesignSeed(t, 8), testDesignSeed(t, 9)

	// Job 1 is picked up by the lone worker and blocks; job 2 occupies the
	// single queue slot; job 3 must bounce.
	var j1, j2 Job
	decode(t, post(t, ts, "/solve", SolveRequest{Design: &d1, Async: true}), &j1)
	<-started
	decode(t, post(t, ts, "/solve", SolveRequest{Design: &d2, Async: true}), &j2)
	resp := post(t, ts, "/solve", SolveRequest{Design: &d3, Async: true})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third job got status %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()

	close(release)
	awaitState(t, ts, j1.ID, JobDone)
	awaitState(t, ts, j2.ID, JobDone)

	// The middleware counted the rejection and the histograms saw the jobs.
	if v := srv.Tracer().Counter("http.429").Value(); v != 1 {
		t.Errorf("http.429 = %d, want 1", v)
	}
	ts.Close()
	srv.Shutdown()
}

// TestDeadlineExceededReturnsDegraded drives the real flow through the
// server under a hopeless 1 ms budget (benchmark I3 needs seconds): the
// response must be 200 with degraded=true and stop_reason "deadline" —
// never an error.
func TestDeadlineExceededReturnsDegraded(t *testing.T) {
	srv := newTestServer(4, 1, time.Minute, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := post(t, ts, "/solve", SolveRequest{Bench: "I3", TimeoutMS: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline-exceeded solve got status %d, want 200", resp.StatusCode)
	}
	var sr SolveResponse
	decode(t, resp, &sr)
	if !sr.Degraded {
		t.Fatalf("1 ms budget did not degrade: %+v", sr)
	}
	if sr.StopReason != string(operon.StopDeadline) {
		t.Fatalf("stop_reason = %q, want %q", sr.StopReason, operon.StopDeadline)
	}
	if sr.PowerMW <= 0 {
		t.Fatalf("degraded result has no power: %+v", sr)
	}
	ts.Close()
	srv.Shutdown()
}

// TestShutdownDegradesInFlight aborts the server while a synchronous solve
// is in flight: the waiting client must still receive a 200 with the
// degraded partial result, not a connection reset.
func TestShutdownDegradesInFlight(t *testing.T) {
	srv := newTestServer(4, 1, time.Minute, 0)
	srv.SetSolve(func(ctx context.Context, d signal.Design, cfg operon.Config, _ *operon.Workspace) (*operon.Result, error) {
		// Stand-in for RunContext's contract: block until cancelled, then
		// return the degraded-but-feasible result.
		<-ctx.Done()
		return &operon.Result{
			Design: d.Name, PowerMW: 2,
			Degraded: true, StopReason: operon.StopCanceled,
		}, nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	d := testDesign(t)

	type outcome struct {
		resp *http.Response
		err  error
	}
	resc := make(chan outcome, 1)
	go func() {
		buf, _ := json.Marshal(SolveRequest{Design: &d, TimeoutMS: 60_000})
		resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(buf))
		resc <- outcome{resp, err}
	}()
	awaitState(t, ts, "job-1", JobRunning)

	srv.Abort()
	out := <-resc
	if out.err != nil {
		t.Fatalf("in-flight solve failed during shutdown: %v", out.err)
	}
	if out.resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight solve got status %d, want 200", out.resp.StatusCode)
	}
	var sr SolveResponse
	decode(t, out.resp, &sr)
	if !sr.Degraded || sr.StopReason != string(operon.StopCanceled) {
		t.Fatalf("in-flight solve not degraded-canceled: %+v", sr)
	}
	ts.Close()
	srv.Shutdown()
}

// TestBadRequests pins the 400 paths: unparseable JSON, missing input,
// unknown benchmark, unknown mode.
func TestBadRequests(t *testing.T) {
	srv := newTestServer(1, 1, time.Minute, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	d := testDesign(t)

	for name, body := range map[string]any{
		"no input":      SolveRequest{},
		"unknown bench": SolveRequest{Bench: "nope"},
		"unknown mode":  SolveRequest{Design: &d, Mode: "annealing"},
	} {
		resp := post(t, ts, "/solve", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewBufferString("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	jr, err := http.Get(ts.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	if jr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", jr.StatusCode)
	}
	jr.Body.Close()
	ts.Close()
	srv.Shutdown()
}

// TestTimeoutClamp pins the budget resolution: zero → server default,
// above max → clamped to max.
func TestTimeoutClamp(t *testing.T) {
	srv := newTestServer(4, 1, 7*time.Second, 9*time.Second)
	defer srv.Shutdown()
	d := testDesign(t)
	for _, tc := range []struct {
		reqMS  int64
		wantMS int64
	}{
		{0, 7000},
		{5000, 5000},
		{60_000, 9000},
	} {
		j, err := srv.NewJob(SolveRequest{Design: &d, TimeoutMS: tc.reqMS}, "")
		if err != nil {
			t.Fatal(err)
		}
		if got := j.Timeout().Milliseconds(); got != tc.wantMS {
			t.Errorf("timeout_ms=%d: applied %d ms, want %d ms", tc.reqMS, got, tc.wantMS)
		}
		srv.DropJob(j)
	}
	// Unclamped server: the request's budget passes through.
	free := newTestServer(4, 1, time.Second, 0)
	defer free.Shutdown()
	j, err := free.NewJob(SolveRequest{Design: &d, TimeoutMS: 3_600_000}, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Timeout(); got != time.Hour {
		t.Errorf("unclamped timeout = %s, want 1h", got)
	}
	free.DropJob(j)
}

// healthz decodes one GET /healthz round trip.
func healthz(t *testing.T, ts *httptest.Server) (status int, body map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, &body)
	return resp.StatusCode, body
}

// TestHealthzDrainTransition covers /healthz across the shutdown sequence:
// healthy (200, ok=true, uptime and in-flight reported) while a solve is
// running, then 503 with draining=true the moment Abort is called — the
// drain signal load balancers key off — while the in-flight solve still
// completes and is delivered.
func TestHealthzDrainTransition(t *testing.T) {
	srv := newTestServer(4, 1, time.Minute, 0)
	started := make(chan struct{}, 1)
	srv.SetSolve(func(ctx context.Context, d signal.Design, cfg operon.Config, _ *operon.Workspace) (*operon.Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		return &operon.Result{Design: d.Name, PowerMW: 2, Degraded: true, StopReason: operon.StopCanceled}, nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	d := testDesign(t)

	var j1 Job
	decode(t, post(t, ts, "/solve", SolveRequest{Design: &d, Async: true}), &j1)
	<-started

	status, body := healthz(t, ts)
	if status != http.StatusOK {
		t.Fatalf("healthy /healthz status %d, want 200", status)
	}
	if body["ok"] != true || body["draining"] != false {
		t.Fatalf("healthy /healthz body: %v", body)
	}
	if body["inflight"].(float64) != 1 {
		t.Fatalf("inflight = %v, want 1", body["inflight"])
	}
	if body["uptime_seconds"].(float64) <= 0 {
		t.Fatalf("uptime_seconds = %v, want > 0", body["uptime_seconds"])
	}

	srv.Abort()
	status, body = healthz(t, ts)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz status %d, want 503", status)
	}
	if body["ok"] != false || body["draining"] != true {
		t.Fatalf("draining /healthz body: %v", body)
	}

	// The aborted solve still completes and stays pollable.
	awaitState(t, ts, j1.ID, JobDone)
	ts.Close()
	srv.Shutdown()
}

// TestRequestIDMiddleware pins the X-Request-Id contract: a client-supplied
// id is echoed verbatim, a missing one is generated, and either way the
// header is present on every response.
func TestRequestIDMiddleware(t *testing.T) {
	srv := newTestServer(4, 1, time.Minute, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-42" {
		t.Errorf("echoed X-Request-Id = %q, want trace-me-42", got)
	}

	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); !strings.HasPrefix(got, "r-") {
		t.Errorf("generated X-Request-Id = %q, want r-<n>", got)
	}
	ts.Close()
	srv.Shutdown()
}

// TestMetricsEndpoints runs one stubbed solve and asserts (a) /metrics is
// valid Prometheus text exposition containing the request histograms and
// serving gauges, and (b) /metrics.json keeps the legacy "counters" key
// alongside gauges and histograms.
func TestMetricsEndpoints(t *testing.T) {
	srv := newTestServer(4, 1, time.Minute, 0)
	srv.SetSolve(func(ctx context.Context, d signal.Design, cfg operon.Config, _ *operon.Workspace) (*operon.Result, error) {
		return &operon.Result{Design: d.Name, PowerMW: 1}, nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	d := testDesign(t)
	post(t, ts, "/solve", SolveRequest{Design: &d}).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, obs.PrometheusContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := buf.String()
	if err := obs.LintExposition(buf.Bytes()); err != nil {
		t.Fatalf("/metrics failed exposition lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		"operon_request_e2e_seconds_bucket",
		"operon_request_queue_wait_seconds_count",
		"operon_request_solve_seconds_sum",
		"operon_queue_capacity",
		"operon_inflight_solves",
		"operon_uptime_seconds",
		"go_goroutines",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var js struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
		Gauges     []obs.GaugeValue        `json:"gauges"`
		Histograms []obs.HistogramSnapshot `json:"histograms"`
	}
	jr, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, jr, &js)
	reqs := int64(0)
	for _, c := range js.Counters {
		if c.Name == "http.requests" {
			reqs = c.Value
		}
	}
	if reqs < 1 {
		t.Errorf("http.requests counter = %d, want >= 1", reqs)
	}
	if len(js.Gauges) == 0 {
		t.Error("/metrics.json has no gauges")
	}
	found := false
	for _, h := range js.Histograms {
		if h.Name == "request/e2e" && h.Count >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("/metrics.json missing populated request/e2e histogram: %+v", js.Histograms)
	}
	ts.Close()
	srv.Shutdown()
}
