package steiner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"operon/internal/geom"
)

func randTerminals(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}
	}
	return pts
}

func TestMetricDist(t *testing.T) {
	a, b := geom.Point{X: 0, Y: 0}, geom.Point{X: 3, Y: 4}
	if d := Rectilinear.Dist(a, b); math.Abs(d-7) > 1e-12 {
		t.Errorf("rect dist = %v", d)
	}
	if d := Euclidean.Dist(a, b); math.Abs(d-5) > 1e-12 {
		t.Errorf("euclid dist = %v", d)
	}
	if Rectilinear.String() == Euclidean.String() {
		t.Error("metric names collide")
	}
}

func TestMSTTwoPoints(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}
	tr := MST(pts, Euclidean)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Length()-math.Sqrt2) > 1e-12 {
		t.Errorf("Length = %v", tr.Length())
	}
}

func TestMSTSingle(t *testing.T) {
	tr := MST([]geom.Point{{X: 1, Y: 1}}, Rectilinear)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Edges) != 0 {
		t.Errorf("single-node MST has %d edges", len(tr.Edges))
	}
}

func TestMSTKnownCase(t *testing.T) {
	// Unit square in the Euclidean metric: MST length 3.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
	tr := MST(pts, Euclidean)
	if math.Abs(tr.Length()-3) > 1e-9 {
		t.Errorf("square MST = %v, want 3", tr.Length())
	}
}

func TestMSTMatchesBruteForce(t *testing.T) {
	// Compare Prim against exhaustive enumeration over all spanning trees
	// of 5 points (via brute-force Kruskal on all edge subsets is overkill;
	// instead compare against a second independent implementation:
	// Kruskal with union-find).
	for seed := int64(0); seed < 20; seed++ {
		pts := randTerminals(5, seed)
		for _, m := range []Metric{Rectilinear, Euclidean} {
			want := kruskalLength(pts, m)
			got := MST(pts, m).Length()
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("seed %d %v: Prim %v vs Kruskal %v", seed, m, got, want)
			}
		}
	}
}

func kruskalLength(pts []geom.Point, m Metric) float64 {
	type edge struct {
		u, v int
		d    float64
	}
	var edges []edge
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			edges = append(edges, edge{i, j, m.Dist(pts[i], pts[j])})
		}
	}
	for i := range edges {
		for j := i + 1; j < len(edges); j++ {
			if edges[j].d < edges[i].d {
				edges[i], edges[j] = edges[j], edges[i]
			}
		}
	}
	parent := make([]int, len(pts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	var total float64
	for _, e := range edges {
		ru, rv := find(e.u), find(e.v)
		if ru != rv {
			parent[ru] = rv
			total += e.d
		}
	}
	return total
}

func TestHananGrid(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 1}, {X: 1, Y: 3}}
	grid := HananGrid(pts)
	// 3x3 grid points minus the 3 terminals = 6.
	if len(grid) != 6 {
		t.Fatalf("Hanan grid size = %d, want 6", len(grid))
	}
	for _, g := range grid {
		for _, p := range pts {
			if g.Eq(p) {
				t.Errorf("grid contains terminal %v", p)
			}
		}
	}
}

func TestHananGridCollinear(t *testing.T) {
	// Collinear terminals: the Hanan grid is the terminals themselves.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	if grid := HananGrid(pts); len(grid) != 0 {
		t.Errorf("collinear Hanan grid = %v, want empty", grid)
	}
}

func TestFermatPointEquilateral(t *testing.T) {
	// Equilateral triangle: the Fermat point is the centroid.
	a := geom.Point{X: 0, Y: 0}
	b := geom.Point{X: 1, Y: 0}
	c := geom.Point{X: 0.5, Y: math.Sqrt(3) / 2}
	f := fermatPoint(a, b, c)
	cent := geom.Point{X: 0.5, Y: math.Sqrt(3) / 6}
	if f.Dist(cent) > 1e-6 {
		t.Errorf("Fermat point = %v, want %v", f, cent)
	}
}

func TestFermatPointObtuse(t *testing.T) {
	// For a very obtuse triangle (angle >= 120°) the Fermat point is the
	// obtuse vertex.
	a := geom.Point{X: 0, Y: 0}
	b := geom.Point{X: 10, Y: 0.1}
	c := geom.Point{X: -10, Y: 0.1}
	f := fermatPoint(a, b, c)
	if f.Dist(a) > 0.05 {
		t.Errorf("obtuse Fermat point = %v, want near %v", f, a)
	}
}

func TestBI1SImprovesOrMatchesMST(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		for _, n := range []int{3, 4, 6, 9} {
			pts := randTerminals(n, seed*31+int64(n))
			for _, m := range []Metric{Rectilinear, Euclidean} {
				mst := MST(pts, m).Length()
				tr := BI1S(pts, m, BI1SConfig{})
				if err := tr.Validate(); err != nil {
					t.Fatalf("seed %d n %d %v: invalid tree: %v", seed, n, m, err)
				}
				if tr.Length() > mst+1e-9 {
					t.Errorf("seed %d n %d %v: BI1S %.6f worse than MST %.6f",
						seed, n, m, tr.Length(), mst)
				}
				checkTerminalsPresent(t, tr, pts)
			}
		}
	}
}

func checkTerminalsPresent(t *testing.T, tr Tree, pts []geom.Point) {
	t.Helper()
	found := make([]bool, len(pts))
	for _, nd := range tr.Nodes {
		if nd.Terminal >= 0 {
			if nd.Terminal >= len(pts) {
				t.Fatalf("terminal index %d out of range", nd.Terminal)
			}
			if !nd.Pt.Eq(pts[nd.Terminal]) {
				t.Fatalf("terminal %d moved: %v vs %v", nd.Terminal, nd.Pt, pts[nd.Terminal])
			}
			found[nd.Terminal] = true
		}
	}
	for i, ok := range found {
		if !ok {
			t.Fatalf("terminal %d missing from tree", i)
		}
	}
}

func TestBI1SCross(t *testing.T) {
	// Four corners of a plus sign: the rectilinear Steiner tree uses the
	// centre, total length 4; MST is 6.
	pts := []geom.Point{{X: 1, Y: 0}, {X: -1, Y: 0}, {X: 0, Y: 1}, {X: 0, Y: -1}}
	tr := BI1S(pts, Rectilinear, BI1SConfig{})
	if math.Abs(tr.Length()-4) > 1e-9 {
		t.Errorf("plus-sign RSMT = %v, want 4", tr.Length())
	}
}

func TestBI1SEuclideanSteinerGain(t *testing.T) {
	// Equilateral triangle with unit side: MST = 2, Steiner tree = sqrt(3).
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0.5, Y: math.Sqrt(3) / 2},
	}
	tr := BI1S(pts, Euclidean, BI1SConfig{})
	want := math.Sqrt(3)
	if tr.Length() > want+0.01 {
		t.Errorf("equilateral Steiner = %v, want ≈%v", tr.Length(), want)
	}
}

func TestSteinerRatioProperty(t *testing.T) {
	// Property: BI1S result is between the Steiner lower bound
	// (sqrt(3)/2 of MST for Euclidean, 2/3 for rectilinear) and the MST.
	f := func(nn uint8, seed int64) bool {
		n := int(nn)%8 + 2
		pts := randTerminals(n, seed)
		for _, m := range []Metric{Rectilinear, Euclidean} {
			mst := MST(pts, m).Length()
			st := BI1S(pts, m, BI1SConfig{}).Length()
			lb := mst * 0.5 // loose lower bound, catches gross errors
			if st < lb-1e-9 || st > mst+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCleanupRemovesUselessSteiner(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		pts := randTerminals(7, seed)
		tr := BI1S(pts, Rectilinear, BI1SConfig{})
		adj := tr.Adjacency()
		for i, nd := range tr.Nodes {
			if nd.IsSteiner() && len(adj[i]) <= 2 {
				t.Fatalf("seed %d: Steiner node %d has degree %d", seed, i, len(adj[i]))
			}
		}
	}
}

func TestRSMTLength(t *testing.T) {
	if RSMTLength(nil) != 0 || RSMTLength([]geom.Point{{X: 1, Y: 1}}) != 0 {
		t.Error("degenerate RSMT length should be 0")
	}
	// Two points: RSMT = Manhattan distance.
	got := RSMTLength([]geom.Point{{X: 0, Y: 0}, {X: 2, Y: 3}})
	if math.Abs(got-5) > 1e-12 {
		t.Errorf("2-pin RSMT = %v, want 5", got)
	}
}

func TestBaselines(t *testing.T) {
	pts := randTerminals(6, 9)
	bs := Baselines(pts, Euclidean, 3)
	if len(bs) == 0 {
		t.Fatal("no baselines")
	}
	if len(bs) > 3 {
		t.Fatalf("too many baselines: %d", len(bs))
	}
	for i, b := range bs {
		if err := b.Validate(); err != nil {
			t.Fatalf("baseline %d invalid: %v", i, err)
		}
		checkTerminalsPresent(t, b, pts)
	}
	// Distinctness: no two baselines share identical length and size.
	for i := 0; i < len(bs); i++ {
		for j := i + 1; j < len(bs); j++ {
			if len(bs[i].Nodes) == len(bs[j].Nodes) &&
				math.Abs(bs[i].Length()-bs[j].Length()) < 1e-12 {
				t.Errorf("baselines %d and %d look identical", i, j)
			}
		}
	}
}

func TestBaselinesTwoPin(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 2}}
	bs := Baselines(pts, Euclidean, 3)
	if len(bs) != 1 {
		t.Fatalf("two-pin baselines = %d, want 1", len(bs))
	}
}

func TestTreeBends(t *testing.T) {
	// A straight path has no bends.
	straight := Tree{
		Metric: Euclidean,
		Nodes: []Node{
			{Pt: geom.Point{X: 0, Y: 0}, Terminal: 0},
			{Pt: geom.Point{X: 1, Y: 0}, Terminal: -1},
			{Pt: geom.Point{X: 2, Y: 0}, Terminal: 1},
		},
		Edges: []Edge{{0, 1}, {1, 2}},
	}
	if got := straight.Bends(); got != 0 {
		t.Errorf("straight path bends = %d, want 0", got)
	}
	// An L has one bend.
	ell := Tree{
		Metric: Euclidean,
		Nodes: []Node{
			{Pt: geom.Point{X: 0, Y: 0}, Terminal: 0},
			{Pt: geom.Point{X: 1, Y: 0}, Terminal: -1},
			{Pt: geom.Point{X: 1, Y: 1}, Terminal: 1},
		},
		Edges: []Edge{{0, 1}, {1, 2}},
	}
	if got := ell.Bends(); got != 1 {
		t.Errorf("L path bends = %d, want 1", got)
	}
}

func TestValidateCatchesBadTrees(t *testing.T) {
	if err := (Tree{}).Validate(); err == nil {
		t.Error("empty tree accepted")
	}
	disconnected := Tree{
		Nodes: []Node{{}, {}, {}, {}},
		Edges: []Edge{{0, 1}, {0, 1}, {2, 3}},
	}
	if err := disconnected.Validate(); err == nil {
		t.Error("disconnected tree accepted")
	}
	wrongCount := Tree{Nodes: []Node{{}, {}}, Edges: nil}
	if err := wrongCount.Validate(); err == nil {
		t.Error("edge-count mismatch accepted")
	}
}

func TestSegmentsMatchEdges(t *testing.T) {
	pts := randTerminals(5, 3)
	tr := MST(pts, Euclidean)
	segs := tr.Segments()
	if len(segs) != len(tr.Edges) {
		t.Fatalf("%d segments for %d edges", len(segs), len(tr.Edges))
	}
	var sum float64
	for _, s := range segs {
		sum += s.Length()
	}
	if math.Abs(sum-tr.EuclideanLength()) > 1e-9 {
		t.Errorf("segment length sum %v != tree length %v", sum, tr.EuclideanLength())
	}
}

func TestSubdivideNoOp(t *testing.T) {
	pts := randTerminals(4, 5)
	tr := BI1S(pts, Euclidean, BI1SConfig{})
	if got := Subdivide(tr, 0); len(got.Edges) != len(tr.Edges) {
		t.Errorf("maxLen 0 changed the tree")
	}
	// A huge max length keeps every edge whole.
	if got := Subdivide(tr, 1e9); len(got.Edges) != len(tr.Edges) {
		t.Errorf("huge maxLen changed the tree")
	}
}

func TestSubdividePreservesGeometry(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		pts := randTerminals(5, seed)
		tr := BI1S(pts, Euclidean, BI1SConfig{})
		sub := Subdivide(tr, 0.35)
		if err := sub.Validate(); err != nil {
			t.Fatalf("seed %d: invalid subdivided tree: %v", seed, err)
		}
		if math.Abs(sub.EuclideanLength()-tr.EuclideanLength()) > 1e-9 {
			t.Errorf("seed %d: length changed: %v vs %v",
				seed, sub.EuclideanLength(), tr.EuclideanLength())
		}
		// Every chunk respects the bound.
		for _, s := range sub.Segments() {
			if s.Length() > 0.35+1e-9 {
				t.Errorf("seed %d: chunk length %v exceeds 0.35", seed, s.Length())
			}
		}
		// Terminals survive with their indices.
		checkTerminalsPresent(t, sub, pts)
		// New nodes are Steiner points.
		for i := len(tr.Nodes); i < len(sub.Nodes); i++ {
			if !sub.Nodes[i].IsSteiner() {
				t.Errorf("seed %d: inserted node %d is not Steiner", seed, i)
			}
		}
	}
}

func TestSubdivideChunkCount(t *testing.T) {
	// A 1.0 edge at maxLen 0.35 must split into 3 chunks.
	tr := Tree{
		Metric: Euclidean,
		Nodes: []Node{
			{Pt: geom.Point{X: 0, Y: 0}, Terminal: 0},
			{Pt: geom.Point{X: 1, Y: 0}, Terminal: 1},
		},
		Edges: []Edge{{0, 1}},
	}
	sub := Subdivide(tr, 0.35)
	if len(sub.Edges) != 3 {
		t.Fatalf("chunks = %d, want 3", len(sub.Edges))
	}
}

func BenchmarkBI1SEuclidean(b *testing.B) {
	pts := randTerminals(8, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := BI1S(pts, Euclidean, BI1SConfig{})
		if len(tr.Nodes) == 0 {
			b.Fatal("empty tree")
		}
	}
}

func BenchmarkRSMT(b *testing.B) {
	pts := randTerminals(8, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if RSMTLength(pts) <= 0 {
			b.Fatal("zero RSMT")
		}
	}
}
