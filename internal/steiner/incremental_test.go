package steiner

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"operon/internal/geom"
)

// TestIncrementalMSTMatchesFull checks the Kruskal-over-star trial against
// the full Prim recompute it replaced: for random point sets and random
// candidate points, lengthWith must agree with mstLength to float tolerance
// in both metrics, and accept must keep base consistent.
func TestIncrementalMSTMatchesFull(t *testing.T) {
	for _, metric := range []Metric{Rectilinear, Euclidean} {
		for seed := int64(0); seed < 10; seed++ {
			rng := rand.New(rand.NewSource(seed))
			n := 3 + rng.Intn(15)
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}
			}
			inc := newIncrMST(pts, metric)
			if full := mstLength(pts, metric); math.Abs(inc.base-full) > 1e-9 {
				t.Fatalf("%v seed %d: base %v vs full %v", metric, seed, inc.base, full)
			}
			for trial := 0; trial < 25; trial++ {
				c := geom.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}
				got := inc.lengthWith(c)
				want := mstLength(append(append([]geom.Point(nil), inc.pts...), c), metric)
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("%v seed %d trial %d: incremental %v vs full %v",
						metric, seed, trial, got, want)
				}
				// Occasionally commit the point so later trials exercise a
				// tree containing accepted Steiner points.
				if trial%7 == 3 {
					inc.accept(c)
					if math.Abs(inc.base-want) > 1e-9 {
						t.Fatalf("%v seed %d: accept base %v vs %v", metric, seed, inc.base, want)
					}
				}
			}
		}
	}
}

// TestBI1SMatchesReference cross-checks the incremental BI1S against a
// reference implementation that re-scores every candidate with a full MST
// recompute, on a handful of random instances.
func TestBI1SMatchesReference(t *testing.T) {
	for _, metric := range []Metric{Rectilinear, Euclidean} {
		for seed := int64(1); seed <= 6; seed++ {
			pts := randTerminals(8, seed)
			got := BI1S(pts, metric, BI1SConfig{})
			want := referenceBI1S(pts, metric)
			if math.Abs(got.Length()-want) > 1e-6 {
				t.Errorf("%v seed %d: BI1S %v vs reference %v", metric, seed, got.Length(), want)
			}
		}
	}
}

// referenceBI1S is the pre-incremental algorithm: full mstLength recompute
// per candidate, no bending cost.
func referenceBI1S(terminals []geom.Point, metric Metric) float64 {
	pts := append([]geom.Point(nil), terminals...)
	base := mstLength(pts, metric)
	for round := 0; round < 8; round++ {
		cands := HananGrid(pts)
		if metric == Euclidean {
			cands = append(cands, fermatPoints(pts)...)
		}
		type scored struct {
			p    geom.Point
			gain float64
		}
		var pool []scored
		for _, c := range cands {
			if g := base - mstLength(append(pts, c), metric); g > geom.Eps {
				pool = append(pool, scored{p: c, gain: g})
			}
		}
		if len(pool) == 0 {
			break
		}
		sort.Slice(pool, func(i, j int) bool {
			if pool[i].gain != pool[j].gain {
				return pool[i].gain > pool[j].gain
			}
			pi, pj := pool[i].p, pool[j].p
			if pi.X != pj.X {
				return pi.X < pj.X
			}
			return pi.Y < pj.Y
		})
		accepted := 0
		for _, s := range pool {
			if g := base - mstLength(append(pts, s.p), metric); g > geom.Eps {
				pts = append(pts, s.p)
				base -= g
				accepted++
			}
		}
		if accepted == 0 {
			break
		}
	}
	return cleanup(treeOver(pts, terminals, metric)).Length()
}
