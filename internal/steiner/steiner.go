// Package steiner builds the routing topologies OPERON starts from: minimum
// spanning trees, Hanan-grid candidate Steiner points, and the Batched
// Iterated 1-Steiner (BI1S) heuristic, in both the rectilinear metric
// (electrical Manhattan wires, RSMT estimation per Streak/Eq. 6) and the
// Euclidean metric (optical waveguides, which "allow routing in any
// direction", paper §2.3).
//
// Per §3.2 the co-design stage wants several baseline topologies per hyper
// net; Baselines produces them by steering BI1S with different Steiner-point
// cost orderings (propagation-only vs propagation+bending).
package steiner

import (
	"fmt"
	"math"
	"sort"

	"operon/internal/geom"
)

// Metric selects the distance function a tree is built under.
type Metric int

const (
	// Rectilinear is the Manhattan metric of electrical routing.
	Rectilinear Metric = iota
	// Euclidean is the any-direction metric of optical routing.
	Euclidean
)

// Dist returns the distance between two points under the metric.
func (m Metric) Dist(a, b geom.Point) float64 {
	if m == Rectilinear {
		return a.ManhattanDist(b)
	}
	return a.Dist(b)
}

// String implements fmt.Stringer.
func (m Metric) String() string {
	if m == Rectilinear {
		return "rectilinear"
	}
	return "euclidean"
}

// Node is a tree vertex: either one of the original terminals or an added
// Steiner point.
type Node struct {
	Pt geom.Point
	// Terminal is the index of the terminal this node represents, or -1
	// for a Steiner point.
	Terminal int
}

// IsSteiner reports whether the node is an added Steiner point.
func (n Node) IsSteiner() bool { return n.Terminal < 0 }

// Edge connects two node indices.
type Edge struct {
	U, V int
}

// Tree is an undirected spanning topology over a terminal set. Node 0 is
// always terminal 0 (the routing source by convention).
type Tree struct {
	Metric Metric
	Nodes  []Node
	Edges  []Edge
}

// Length returns the total edge length of the tree under its metric.
func (t Tree) Length() float64 {
	var sum float64
	for _, e := range t.Edges {
		sum += t.Metric.Dist(t.Nodes[e.U].Pt, t.Nodes[e.V].Pt)
	}
	return sum
}

// EuclideanLength returns the total edge length under the Euclidean metric
// regardless of the tree's native metric.
func (t Tree) EuclideanLength() float64 {
	var sum float64
	for _, e := range t.Edges {
		sum += t.Nodes[e.U].Pt.Dist(t.Nodes[e.V].Pt)
	}
	return sum
}

// Segments returns the tree edges as geometric segments.
func (t Tree) Segments() []geom.Segment {
	out := make([]geom.Segment, len(t.Edges))
	for i, e := range t.Edges {
		out[i] = geom.Segment{A: t.Nodes[e.U].Pt, B: t.Nodes[e.V].Pt}
	}
	return out
}

// Adjacency returns the adjacency lists of the tree.
func (t Tree) Adjacency() [][]int {
	adj := make([][]int, len(t.Nodes))
	for _, e := range t.Edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	return adj
}

// Validate checks structural soundness: spanning, connected, acyclic.
func (t Tree) Validate() error {
	n := len(t.Nodes)
	if n == 0 {
		return fmt.Errorf("steiner: empty tree")
	}
	if len(t.Edges) != n-1 {
		return fmt.Errorf("steiner: %d nodes but %d edges", n, len(t.Edges))
	}
	adj := t.Adjacency()
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	if count != n {
		return fmt.Errorf("steiner: tree is disconnected (%d of %d reachable)", count, n)
	}
	return nil
}

// Bends returns the number of direction changes summed over the tree's
// internal nodes, the "bending cost" used to rank Steiner candidates.
// For each node with degree >= 2 we count pairs of incident edges whose
// directions differ.
func (t Tree) Bends() int {
	adj := t.Adjacency()
	bends := 0
	for u, neigh := range adj {
		if len(neigh) < 2 {
			continue
		}
		for i := 0; i < len(neigh); i++ {
			for j := i + 1; j < len(neigh); j++ {
				a := t.Nodes[neigh[i]].Pt.Sub(t.Nodes[u].Pt)
				b := t.Nodes[neigh[j]].Pt.Sub(t.Nodes[u].Pt)
				// Straight-through means the two incident directions are
				// opposite: cross ≈ 0 and dot < 0.
				crossz := a.X*b.Y - a.Y*b.X
				dot := a.X*b.X + a.Y*b.Y
				if math.Abs(crossz) > geom.Eps || dot > 0 {
					bends++
				}
			}
		}
	}
	return bends
}

// MST builds the minimum spanning tree over the terminals with Prim's
// algorithm in O(n²). It panics on an empty terminal set.
func MST(terminals []geom.Point, metric Metric) Tree {
	n := len(terminals)
	if n == 0 {
		panic("steiner: MST over empty terminal set")
	}
	t := Tree{Metric: metric, Nodes: make([]Node, n)}
	for i, p := range terminals {
		t.Nodes[i] = Node{Pt: p, Terminal: i}
	}
	if n == 1 {
		return t
	}
	inTree := make([]bool, n)
	bestDist := make([]float64, n)
	bestFrom := make([]int, n)
	for i := range bestDist {
		bestDist[i] = math.Inf(1)
	}
	inTree[0] = true
	for i := 1; i < n; i++ {
		bestDist[i] = metric.Dist(terminals[0], terminals[i])
		bestFrom[i] = 0
	}
	for added := 1; added < n; added++ {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !inTree[i] && bestDist[i] < best {
				u, best = i, bestDist[i]
			}
		}
		inTree[u] = true
		t.Edges = append(t.Edges, Edge{U: bestFrom[u], V: u})
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := metric.Dist(terminals[u], terminals[i]); d < bestDist[i] {
					bestDist[i] = d
					bestFrom[i] = u
				}
			}
		}
	}
	return t
}

// mstLength computes the MST length over a point set without materialising
// the tree, used for fast 1-Steiner gain evaluation.
func mstLength(pts []geom.Point, metric Metric) float64 {
	n := len(pts)
	if n <= 1 {
		return 0
	}
	inTree := make([]bool, n)
	bestDist := make([]float64, n)
	inTree[0] = true
	for i := 1; i < n; i++ {
		bestDist[i] = metric.Dist(pts[0], pts[i])
	}
	var total float64
	for added := 1; added < n; added++ {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !inTree[i] && bestDist[i] < best {
				u, best = i, bestDist[i]
			}
		}
		inTree[u] = true
		total += best
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := metric.Dist(pts[u], pts[i]); d < bestDist[i] {
					bestDist[i] = d
				}
			}
		}
	}
	return total
}

// wedge is a weighted candidate edge for the incremental Kruskal.
type wedge struct {
	u, v int
	w    float64
}

// incrMST maintains the MST over a growing point set and scores 1-Steiner
// candidate points incrementally. It exploits the classic property
// MST(P ∪ {c}) ⊆ MST(P) ∪ {(c,p) : p ∈ P}: instead of re-running Prim over
// all |P|² pairs for every candidate (the old mstLength path), each trial
// is a Kruskal over just 2|P|−1 edges — the current tree plus the
// candidate's star — dropping a BI1S round from O(k·n²) to O(k·n log n)
// distance evaluations for k candidates.
type incrMST struct {
	metric Metric
	pts    []geom.Point
	tree   []wedge // current MST edges with weights
	base   float64 // current MST length

	// Scratch buffers reused across trials to keep allocations flat.
	cand   []wedge
	sel    []wedge
	parent []int
}

// newIncrMST seeds the structure with the Prim MST over pts, so base is
// identical to what mstLength(pts, metric) returns.
func newIncrMST(pts []geom.Point, metric Metric) *incrMST {
	m := &incrMST{metric: metric, pts: append([]geom.Point(nil), pts...)}
	n := len(pts)
	if n <= 1 {
		return m
	}
	inTree := make([]bool, n)
	bestDist := make([]float64, n)
	bestFrom := make([]int, n)
	inTree[0] = true
	for i := 1; i < n; i++ {
		bestDist[i] = metric.Dist(pts[0], pts[i])
	}
	for added := 1; added < n; added++ {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !inTree[i] && bestDist[i] < best {
				u, best = i, bestDist[i]
			}
		}
		inTree[u] = true
		m.base += best
		m.tree = append(m.tree, wedge{u: bestFrom[u], v: u, w: best})
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := metric.Dist(pts[u], pts[i]); d < bestDist[i] {
					bestDist[i] = d
					bestFrom[i] = u
				}
			}
		}
	}
	return m
}

// find is path-halving union-find lookup over m.parent.
func (m *incrMST) find(x int) int {
	for m.parent[x] != x {
		m.parent[x] = m.parent[m.parent[x]]
		x = m.parent[x]
	}
	return x
}

// kruskalWith computes the MST length of pts ∪ {c} from the current tree
// plus c's star. When keep is set the selected edges are retained in m.sel
// for a subsequent commit.
func (m *incrMST) kruskalWith(c geom.Point, keep bool) float64 {
	n := len(m.pts)
	m.cand = append(m.cand[:0], m.tree...)
	for i := 0; i < n; i++ {
		m.cand = append(m.cand, wedge{u: i, v: n, w: m.metric.Dist(m.pts[i], c)})
	}
	// Deterministic order: ties broken by endpoint indices (the MST total
	// is unique either way; this fixes the edge set too).
	sort.Slice(m.cand, func(a, b int) bool {
		ea, eb := m.cand[a], m.cand[b]
		if ea.w != eb.w {
			return ea.w < eb.w
		}
		if ea.u != eb.u {
			return ea.u < eb.u
		}
		return ea.v < eb.v
	})
	if cap(m.parent) < n+1 {
		m.parent = make([]int, n+1)
	}
	m.parent = m.parent[:n+1]
	for i := range m.parent {
		m.parent[i] = i
	}
	if keep {
		m.sel = m.sel[:0]
	}
	var total float64
	taken := 0
	for _, e := range m.cand {
		ru, rv := m.find(e.u), m.find(e.v)
		if ru == rv {
			continue
		}
		m.parent[ru] = rv
		total += e.w
		if keep {
			m.sel = append(m.sel, e)
		}
		taken++
		if taken == n { // spanning n+1 nodes
			break
		}
	}
	return total
}

// lengthWith returns the MST length of pts ∪ {c} without mutating state.
func (m *incrMST) lengthWith(c geom.Point) float64 { return m.kruskalWith(c, false) }

// accept commits candidate c: the point joins the set and the tree/base
// are updated to the MST computed by the trial.
func (m *incrMST) accept(c geom.Point) {
	m.base = m.kruskalWith(c, true)
	m.pts = append(m.pts, c)
	m.tree = append(m.tree[:0], m.sel...)
}

// HananGrid returns the Hanan-grid points of the terminal set (all
// intersections of horizontal and vertical lines through terminals),
// excluding the terminals themselves.
func HananGrid(terminals []geom.Point) []geom.Point {
	xs := uniqueCoords(terminals, func(p geom.Point) float64 { return p.X })
	ys := uniqueCoords(terminals, func(p geom.Point) float64 { return p.Y })
	isTerminal := map[geom.Point]bool{}
	for _, t := range terminals {
		isTerminal[t] = true
	}
	var out []geom.Point
	for _, x := range xs {
		for _, y := range ys {
			p := geom.Point{X: x, Y: y}
			if !isTerminal[p] {
				out = append(out, p)
			}
		}
	}
	return out
}

func uniqueCoords(pts []geom.Point, get func(geom.Point) float64) []float64 {
	vals := make([]float64, 0, len(pts))
	for _, p := range pts {
		vals = append(vals, get(p))
	}
	sort.Float64s(vals)
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v > out[len(out)-1]+geom.Eps {
			out = append(out, v)
		}
	}
	return out
}

// fermatPoints returns approximate Fermat (Torricelli) points of terminal
// triples, the natural Steiner candidates in the Euclidean metric. To bound
// the candidate count only triples of mutually-nearest terminals are used.
func fermatPoints(terminals []geom.Point) []geom.Point {
	n := len(terminals)
	if n < 3 {
		return nil
	}
	var out []geom.Point
	limit := n
	if limit > 12 {
		limit = 12
	}
	for i := 0; i < limit; i++ {
		for j := i + 1; j < limit; j++ {
			for k := j + 1; k < limit; k++ {
				out = append(out, fermatPoint(terminals[i], terminals[j], terminals[k]))
			}
		}
	}
	return out
}

// fermatPoint computes the geometric median of three points via Weiszfeld
// iteration, which converges to the Fermat point for non-degenerate
// triangles.
func fermatPoint(a, b, c geom.Point) geom.Point {
	p := geom.Point{X: (a.X + b.X + c.X) / 3, Y: (a.Y + b.Y + c.Y) / 3}
	for iter := 0; iter < 50; iter++ {
		var wx, wy, wsum float64
		for _, q := range []geom.Point{a, b, c} {
			d := p.Dist(q)
			if d < geom.Eps {
				return q // median coincides with a vertex
			}
			w := 1 / d
			wx += q.X * w
			wy += q.Y * w
			wsum += w
		}
		next := geom.Point{X: wx / wsum, Y: wy / wsum}
		if next.Dist(p) < 1e-12 {
			return next
		}
		p = next
	}
	return p
}

// BI1SConfig tunes the Batched Iterated 1-Steiner heuristic.
type BI1SConfig struct {
	// BendWeight penalises candidates by BendWeight × the bending cost of
	// the tree they induce, steering baseline diversity (§3.2: "sorting the
	// Steiner points with the induced propagation and bending cost").
	BendWeight float64
	// MaxRounds bounds the batched iterations. Defaults to 8 when zero.
	MaxRounds int
}

// BI1S runs Batched Iterated 1-Steiner over the terminals: in each round
// every candidate Steiner point is scored by the MST-length reduction it
// yields, the candidates are sorted by gain (minus the bending penalty), and
// a batch of still-profitable candidates is accepted greedily; degree-<=2
// Steiner points are cleaned up at the end. The result spans all terminals.
func BI1S(terminals []geom.Point, metric Metric, cfg BI1SConfig) Tree {
	n := len(terminals)
	if n <= 2 {
		return MST(terminals, metric)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 8
	}

	inc := newIncrMST(terminals, metric)

	for round := 0; round < maxRounds; round++ {
		cands := HananGrid(inc.pts)
		if metric == Euclidean {
			cands = append(cands, fermatPoints(inc.pts)...)
		}
		type scored struct {
			p    geom.Point
			gain float64
		}
		var pool []scored
		for _, c := range cands {
			g := inc.base - inc.lengthWith(c)
			if g > geom.Eps {
				pool = append(pool, scored{p: c, gain: g})
			}
		}
		if len(pool) == 0 {
			break
		}
		if cfg.BendWeight > 0 {
			for i := range pool {
				tr := treeOver(append(inc.pts[:len(inc.pts):len(inc.pts)], pool[i].p), terminals, metric)
				pool[i].gain -= cfg.BendWeight * float64(tr.Bends()) * 1e-3
			}
		}
		sort.Slice(pool, func(i, j int) bool {
			if pool[i].gain != pool[j].gain {
				return pool[i].gain > pool[j].gain
			}
			pi, pj := pool[i].p, pool[j].p
			if pi.X != pj.X {
				return pi.X < pj.X
			}
			return pi.Y < pj.Y
		})
		accepted := 0
		for _, s := range pool {
			// Re-score against the tree as accepted points accumulate.
			if inc.base-inc.lengthWith(s.p) > geom.Eps {
				inc.accept(s.p)
				accepted++
			}
		}
		if accepted == 0 {
			break
		}
	}
	return cleanup(treeOver(inc.pts, terminals, metric))
}

// treeOver builds the MST over pts, marking the first len(terminals) points
// as terminals and the rest as Steiner points.
func treeOver(pts []geom.Point, terminals []geom.Point, metric Metric) Tree {
	t := MST(pts, metric)
	for i := range t.Nodes {
		if i < len(terminals) {
			t.Nodes[i].Terminal = i
		} else {
			t.Nodes[i].Terminal = -1
		}
	}
	return t
}

// cleanup removes useless Steiner points: degree-1 Steiner leaves are
// dropped, and degree-2 Steiner pass-throughs are spliced out.
func cleanup(t Tree) Tree {
	for {
		adj := t.Adjacency()
		removed := -1
		doSplice := false
		var splice [2]int
		for i, nd := range t.Nodes {
			if !nd.IsSteiner() {
				continue
			}
			switch len(adj[i]) {
			case 0, 1:
				removed = i
			case 2:
				removed = i
				doSplice = true
				splice = [2]int{adj[i][0], adj[i][1]}
			}
			if removed >= 0 {
				break
			}
		}
		if removed < 0 {
			return t
		}
		var edges []Edge
		for _, e := range t.Edges {
			if e.U != removed && e.V != removed {
				edges = append(edges, e)
			}
		}
		if doSplice {
			edges = append(edges, Edge{U: splice[0], V: splice[1]})
		}
		// Reindex nodes after dropping `removed`.
		nodes := make([]Node, 0, len(t.Nodes)-1)
		remap := make([]int, len(t.Nodes))
		for i, nd := range t.Nodes {
			if i == removed {
				remap[i] = -1
				continue
			}
			remap[i] = len(nodes)
			nodes = append(nodes, nd)
		}
		for i := range edges {
			edges[i].U = remap[edges[i].U]
			edges[i].V = remap[edges[i].V]
		}
		t = Tree{Metric: t.Metric, Nodes: nodes, Edges: edges}
	}
}

// Subdivide splits every edge longer than maxSegLen into equal chunks by
// inserting degree-2 Steiner nodes. The co-design stage labels each chunk
// independently, which lets a route switch between optical and electrical
// mid-edge (partial-optical routes and optical relays). Geometry and total
// length are unchanged.
func Subdivide(t Tree, maxSegLen float64) Tree {
	if maxSegLen <= 0 {
		return t
	}
	out := Tree{Metric: t.Metric, Nodes: append([]Node(nil), t.Nodes...)}
	for _, e := range t.Edges {
		a, b := t.Nodes[e.U].Pt, t.Nodes[e.V].Pt
		n := int(math.Ceil(a.Dist(b)/maxSegLen - geom.Eps))
		if n < 1 {
			n = 1
		}
		prev := e.U
		for k := 1; k < n; k++ {
			frac := float64(k) / float64(n)
			mid := geom.Point{
				X: a.X + frac*(b.X-a.X),
				Y: a.Y + frac*(b.Y-a.Y),
			}
			out.Nodes = append(out.Nodes, Node{Pt: mid, Terminal: -1})
			idx := len(out.Nodes) - 1
			out.Edges = append(out.Edges, Edge{U: prev, V: idx})
			prev = idx
		}
		out.Edges = append(out.Edges, Edge{U: prev, V: e.V})
	}
	return out
}

// RSMTLength estimates the rectilinear Steiner minimal tree length of the
// terminals, the wirelength model Streak-style electrical power uses.
func RSMTLength(terminals []geom.Point) float64 {
	if len(terminals) <= 1 {
		return 0
	}
	return BI1S(terminals, Rectilinear, BI1SConfig{}).Length()
}

// Baselines generates up to max distinct baseline topologies for the
// terminal set under the given metric: the plain MST plus BI1S variants
// under different bending-cost weights. Duplicate topologies (same length
// and node count) are removed. At least one topology is always returned.
func Baselines(terminals []geom.Point, metric Metric, max int) []Tree {
	if max <= 0 {
		max = 3
	}
	var out []Tree
	add := func(t Tree) {
		for _, prev := range out {
			if len(prev.Nodes) == len(t.Nodes) && math.Abs(prev.Length()-t.Length()) < geom.Eps {
				return
			}
		}
		out = append(out, t)
	}
	add(BI1S(terminals, metric, BI1SConfig{}))
	if len(out) < max {
		add(MST(terminals, metric))
	}
	for _, w := range []float64{0.5, 2.0, 8.0} {
		if len(out) >= max {
			break
		}
		add(BI1S(terminals, metric, BI1SConfig{BendWeight: w}))
	}
	return out
}
