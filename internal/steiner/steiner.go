// Package steiner builds the routing topologies OPERON starts from: minimum
// spanning trees, Hanan-grid candidate Steiner points, and the Batched
// Iterated 1-Steiner (BI1S) heuristic, in both the rectilinear metric
// (electrical Manhattan wires, RSMT estimation per Streak/Eq. 6) and the
// Euclidean metric (optical waveguides, which "allow routing in any
// direction", paper §2.3).
//
// Per §3.2 the co-design stage wants several baseline topologies per hyper
// net; Baselines produces them by steering BI1S with different Steiner-point
// cost orderings (propagation-only vs propagation+bending).
package steiner

import (
	"fmt"
	"math"
	"sort"

	"operon/internal/geom"
)

// Metric selects the distance function a tree is built under.
type Metric int

const (
	// Rectilinear is the Manhattan metric of electrical routing.
	Rectilinear Metric = iota
	// Euclidean is the any-direction metric of optical routing.
	Euclidean
)

// Dist returns the distance between two points under the metric.
func (m Metric) Dist(a, b geom.Point) float64 {
	if m == Rectilinear {
		return a.ManhattanDist(b)
	}
	return a.Dist(b)
}

// String implements fmt.Stringer.
func (m Metric) String() string {
	if m == Rectilinear {
		return "rectilinear"
	}
	return "euclidean"
}

// Node is a tree vertex: either one of the original terminals or an added
// Steiner point.
type Node struct {
	Pt geom.Point
	// Terminal is the index of the terminal this node represents, or -1
	// for a Steiner point.
	Terminal int
}

// IsSteiner reports whether the node is an added Steiner point.
func (n Node) IsSteiner() bool { return n.Terminal < 0 }

// Edge connects two node indices.
type Edge struct {
	U, V int
}

// Tree is an undirected spanning topology over a terminal set. Node 0 is
// always terminal 0 (the routing source by convention).
type Tree struct {
	Metric Metric
	Nodes  []Node
	Edges  []Edge
}

// Length returns the total edge length of the tree under its metric.
func (t Tree) Length() float64 {
	var sum float64
	for _, e := range t.Edges {
		sum += t.Metric.Dist(t.Nodes[e.U].Pt, t.Nodes[e.V].Pt)
	}
	return sum
}

// EuclideanLength returns the total edge length under the Euclidean metric
// regardless of the tree's native metric.
func (t Tree) EuclideanLength() float64 {
	var sum float64
	for _, e := range t.Edges {
		sum += t.Nodes[e.U].Pt.Dist(t.Nodes[e.V].Pt)
	}
	return sum
}

// Segments returns the tree edges as geometric segments.
func (t Tree) Segments() []geom.Segment {
	out := make([]geom.Segment, len(t.Edges))
	for i, e := range t.Edges {
		out[i] = geom.Segment{A: t.Nodes[e.U].Pt, B: t.Nodes[e.V].Pt}
	}
	return out
}

// Adjacency returns the adjacency lists of the tree.
func (t Tree) Adjacency() [][]int {
	adj := make([][]int, len(t.Nodes))
	for _, e := range t.Edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	return adj
}

// Validate checks structural soundness: spanning, connected, acyclic.
func (t Tree) Validate() error {
	n := len(t.Nodes)
	if n == 0 {
		return fmt.Errorf("steiner: empty tree")
	}
	if len(t.Edges) != n-1 {
		return fmt.Errorf("steiner: %d nodes but %d edges", n, len(t.Edges))
	}
	adj := t.Adjacency()
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	if count != n {
		return fmt.Errorf("steiner: tree is disconnected (%d of %d reachable)", count, n)
	}
	return nil
}

// Bends returns the number of direction changes summed over the tree's
// internal nodes, the "bending cost" used to rank Steiner candidates.
// For each node with degree >= 2 we count pairs of incident edges whose
// directions differ.
func (t Tree) Bends() int {
	adj := t.Adjacency()
	bends := 0
	for u, neigh := range adj {
		if len(neigh) < 2 {
			continue
		}
		for i := 0; i < len(neigh); i++ {
			for j := i + 1; j < len(neigh); j++ {
				a := t.Nodes[neigh[i]].Pt.Sub(t.Nodes[u].Pt)
				b := t.Nodes[neigh[j]].Pt.Sub(t.Nodes[u].Pt)
				// Straight-through means the two incident directions are
				// opposite: cross ≈ 0 and dot < 0.
				crossz := a.X*b.Y - a.Y*b.X
				dot := a.X*b.X + a.Y*b.Y
				if math.Abs(crossz) > geom.Eps || dot > 0 {
					bends++
				}
			}
		}
	}
	return bends
}

// MST builds the minimum spanning tree over the terminals with Prim's
// algorithm in O(n²). It panics on an empty terminal set.
func MST(terminals []geom.Point, metric Metric) Tree {
	n := len(terminals)
	if n == 0 {
		panic("steiner: MST over empty terminal set")
	}
	t := Tree{Metric: metric, Nodes: make([]Node, n)}
	for i, p := range terminals {
		t.Nodes[i] = Node{Pt: p, Terminal: i}
	}
	if n == 1 {
		return t
	}
	inTree := make([]bool, n)
	bestDist := make([]float64, n)
	bestFrom := make([]int, n)
	for i := range bestDist {
		bestDist[i] = math.Inf(1)
	}
	inTree[0] = true
	for i := 1; i < n; i++ {
		bestDist[i] = metric.Dist(terminals[0], terminals[i])
		bestFrom[i] = 0
	}
	for added := 1; added < n; added++ {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !inTree[i] && bestDist[i] < best {
				u, best = i, bestDist[i]
			}
		}
		inTree[u] = true
		t.Edges = append(t.Edges, Edge{U: bestFrom[u], V: u})
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := metric.Dist(terminals[u], terminals[i]); d < bestDist[i] {
					bestDist[i] = d
					bestFrom[i] = u
				}
			}
		}
	}
	return t
}

// mstLength computes the MST length over a point set without materialising
// the tree, used for fast 1-Steiner gain evaluation.
func mstLength(pts []geom.Point, metric Metric) float64 {
	n := len(pts)
	if n <= 1 {
		return 0
	}
	inTree := make([]bool, n)
	bestDist := make([]float64, n)
	inTree[0] = true
	for i := 1; i < n; i++ {
		bestDist[i] = metric.Dist(pts[0], pts[i])
	}
	var total float64
	for added := 1; added < n; added++ {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !inTree[i] && bestDist[i] < best {
				u, best = i, bestDist[i]
			}
		}
		inTree[u] = true
		total += best
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := metric.Dist(pts[u], pts[i]); d < bestDist[i] {
					bestDist[i] = d
				}
			}
		}
	}
	return total
}

// wedge is a weighted candidate edge for the incremental Kruskal.
type wedge struct {
	u, v int
	w    float64
}

// scored is a candidate Steiner point with its MST-length gain.
type scored struct {
	p    geom.Point
	gain float64
}

// Workspace owns every transient buffer of the BI1S pipeline — the
// incremental-MST structure, Prim scratch, Hanan/Fermat candidate lists,
// the per-round gain pool, and the cleanup maps — so repeated tree builds
// reuse memory instead of reallocating it. Returned trees never alias the
// workspace. Not safe for concurrent use; give each worker its own.
type Workspace struct {
	inc          incrMST
	primInTree   []bool
	primBestDist []float64
	primBestFrom []int
	coordVals    []float64
	xs, ys       []float64
	terminalSet  map[geom.Point]bool
	cands        []geom.Point
	pool         []scored
	deg          []int
	remap        []int
	bendPts      []geom.Point
	bendTree     Tree
	adjN         [][]int
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// wedgeLess is the deterministic ordering of candidate edges: weight, then
// endpoint indices. It is a strict total order over distinct edges, so any
// sorting algorithm produces the same sequence.
func wedgeLess(a, b wedge) bool {
	if a.w != b.w {
		return a.w < b.w
	}
	if a.u != b.u {
		return a.u < b.u
	}
	return a.v < b.v
}

// sortWedges is an in-place, allocation-free heapsort by wedgeLess
// (sort.Slice allocates a closure and swapper on every call, which used to
// dominate the BI1S allocation profile — one sort per candidate trial).
func sortWedges(s []wedge) {
	n := len(s)
	for i := n/2 - 1; i >= 0; i-- {
		siftWedge(s, i, n)
	}
	for i := n - 1; i > 0; i-- {
		s[0], s[i] = s[i], s[0]
		siftWedge(s, 0, i)
	}
}

func siftWedge(s []wedge, lo, hi int) {
	root := lo
	for {
		c := 2*root + 1
		if c >= hi {
			return
		}
		if c+1 < hi && wedgeLess(s[c], s[c+1]) {
			c++
		}
		if !wedgeLess(s[root], s[c]) {
			return
		}
		s[root], s[c] = s[c], s[root]
		root = c
	}
}

// scoredLess orders the per-round candidate pool: gain descending, then
// point coordinates (equal-gain equal-point entries are interchangeable).
func scoredLess(a, b scored) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	if a.p.X != b.p.X {
		return a.p.X < b.p.X
	}
	return a.p.Y < b.p.Y
}

// sortScored is an in-place, allocation-free heapsort by scoredLess.
func sortScored(s []scored) {
	n := len(s)
	for i := n/2 - 1; i >= 0; i-- {
		siftScored(s, i, n)
	}
	for i := n - 1; i > 0; i-- {
		s[0], s[i] = s[i], s[0]
		siftScored(s, 0, i)
	}
}

func siftScored(s []scored, lo, hi int) {
	root := lo
	for {
		c := 2*root + 1
		if c >= hi {
			return
		}
		if c+1 < hi && scoredLess(s[c], s[c+1]) {
			c++
		}
		if !scoredLess(s[root], s[c]) {
			return
		}
		s[root], s[c] = s[c], s[root]
		root = c
	}
}

// incrMST maintains the MST over a growing point set and scores 1-Steiner
// candidate points incrementally. It exploits the classic property
// MST(P ∪ {c}) ⊆ MST(P) ∪ {(c,p) : p ∈ P}: instead of re-running Prim over
// all |P|² pairs for every candidate (the old mstLength path), each trial
// is a Kruskal over just 2|P|−1 edges — the current tree plus the
// candidate's star — dropping a BI1S round from O(k·n²) to O(k·n log n)
// distance evaluations for k candidates.
type incrMST struct {
	metric Metric
	pts    []geom.Point
	tree   []wedge // current MST edges with weights
	base   float64 // current MST length

	// Scratch buffers reused across trials to keep allocations flat.
	cand   []wedge
	sel    []wedge
	parent []int
}

// init (re)seeds the structure with the Prim MST over pts, so base is
// identical to what mstLength(pts, metric) returns. Prim scratch is borrowed
// from the workspace; all incrMST buffers are reused across calls.
func (m *incrMST) init(pts []geom.Point, metric Metric, ws *Workspace) {
	m.metric = metric
	m.pts = append(m.pts[:0], pts...)
	m.tree = m.tree[:0]
	m.base = 0
	n := len(pts)
	if n <= 1 {
		return
	}
	inTree, bestDist, bestFrom := ws.primScratch(n)
	inTree[0] = true
	for i := 1; i < n; i++ {
		bestDist[i] = metric.Dist(pts[0], pts[i])
	}
	for added := 1; added < n; added++ {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !inTree[i] && bestDist[i] < best {
				u, best = i, bestDist[i]
			}
		}
		inTree[u] = true
		m.base += best
		m.tree = append(m.tree, wedge{u: bestFrom[u], v: u, w: best})
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := metric.Dist(pts[u], pts[i]); d < bestDist[i] {
					bestDist[i] = d
					bestFrom[i] = u
				}
			}
		}
	}
}

// newIncrMST seeds a standalone incremental MST with its own workspace;
// BI1SWS uses the workspace-resident instance instead.
func newIncrMST(pts []geom.Point, metric Metric) *incrMST {
	m := &incrMST{}
	m.init(pts, metric, NewWorkspace())
	return m
}

// fermatPoints is appendFermatPoints into a fresh slice.
func fermatPoints(terminals []geom.Point) []geom.Point {
	return appendFermatPoints(nil, terminals)
}

// treeOver builds the MST over pts with a throwaway workspace, marking the
// first len(terminals) points as terminals and the rest as Steiner points.
func treeOver(pts []geom.Point, terminals []geom.Point, metric Metric) Tree {
	ws := NewWorkspace()
	return ws.treeOver(pts, terminals, metric)
}

// cleanup is Workspace.cleanup with a throwaway workspace.
func cleanup(t Tree) Tree { return NewWorkspace().cleanup(t) }

// primScratch returns zeroed Prim working arrays of length n from the
// workspace, growing them as needed.
func (ws *Workspace) primScratch(n int) (inTree []bool, bestDist []float64, bestFrom []int) {
	if cap(ws.primInTree) < n {
		ws.primInTree = make([]bool, n)
		ws.primBestDist = make([]float64, n)
		ws.primBestFrom = make([]int, n)
	}
	inTree = ws.primInTree[:n]
	bestDist = ws.primBestDist[:n]
	bestFrom = ws.primBestFrom[:n]
	for i := 0; i < n; i++ {
		inTree[i] = false
		bestDist[i] = 0
		bestFrom[i] = 0
	}
	return inTree, bestDist, bestFrom
}

// mstWS is MST with Prim scratch borrowed from the workspace; the returned
// tree's node and edge slices are freshly allocated (they escape into
// candidates), only the working arrays are reused.
func (ws *Workspace) mstWS(terminals []geom.Point, metric Metric) Tree {
	n := len(terminals)
	if n == 0 {
		panic("steiner: MST over empty terminal set")
	}
	t := Tree{Metric: metric, Nodes: make([]Node, n)}
	for i, p := range terminals {
		t.Nodes[i] = Node{Pt: p, Terminal: i}
	}
	if n == 1 {
		return t
	}
	inTree, bestDist, bestFrom := ws.primScratch(n)
	inTree[0] = true
	for i := 1; i < n; i++ {
		bestDist[i] = metric.Dist(terminals[0], terminals[i])
		bestFrom[i] = 0
	}
	t.Edges = make([]Edge, 0, n-1)
	for added := 1; added < n; added++ {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !inTree[i] && bestDist[i] < best {
				u, best = i, bestDist[i]
			}
		}
		inTree[u] = true
		t.Edges = append(t.Edges, Edge{U: bestFrom[u], V: u})
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := metric.Dist(terminals[u], terminals[i]); d < bestDist[i] {
					bestDist[i] = d
					bestFrom[i] = u
				}
			}
		}
	}
	return t
}

// mstInto rebuilds t as the MST over pts, reusing t's node and edge
// capacity; used by the bending-cost scorer, whose trees are transient.
func (ws *Workspace) mstInto(pts []geom.Point, metric Metric, t *Tree) {
	n := len(pts)
	t.Metric = metric
	if cap(t.Nodes) < n {
		t.Nodes = make([]Node, n)
	}
	t.Nodes = t.Nodes[:n]
	for i, p := range pts {
		t.Nodes[i] = Node{Pt: p, Terminal: i}
	}
	t.Edges = t.Edges[:0]
	if n <= 1 {
		return
	}
	inTree, bestDist, bestFrom := ws.primScratch(n)
	inTree[0] = true
	for i := 1; i < n; i++ {
		bestDist[i] = metric.Dist(pts[0], pts[i])
		bestFrom[i] = 0
	}
	for added := 1; added < n; added++ {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !inTree[i] && bestDist[i] < best {
				u, best = i, bestDist[i]
			}
		}
		inTree[u] = true
		t.Edges = append(t.Edges, Edge{U: bestFrom[u], V: u})
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := metric.Dist(pts[u], pts[i]); d < bestDist[i] {
					bestDist[i] = d
					bestFrom[i] = u
				}
			}
		}
	}
}

// bends is Tree.Bends with the adjacency lists drawn from the workspace.
func (ws *Workspace) bends(t Tree) int {
	n := len(t.Nodes)
	for len(ws.adjN) < n {
		ws.adjN = append(ws.adjN, nil)
	}
	adj := ws.adjN[:n]
	for i := range adj {
		adj[i] = adj[i][:0]
	}
	for _, e := range t.Edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	bends := 0
	for u, neigh := range adj {
		if len(neigh) < 2 {
			continue
		}
		for i := 0; i < len(neigh); i++ {
			for j := i + 1; j < len(neigh); j++ {
				a := t.Nodes[neigh[i]].Pt.Sub(t.Nodes[u].Pt)
				b := t.Nodes[neigh[j]].Pt.Sub(t.Nodes[u].Pt)
				crossz := a.X*b.Y - a.Y*b.X
				dot := a.X*b.X + a.Y*b.Y
				if math.Abs(crossz) > geom.Eps || dot > 0 {
					bends++
				}
			}
		}
	}
	return bends
}

// find is path-halving union-find lookup over m.parent.
func (m *incrMST) find(x int) int {
	for m.parent[x] != x {
		m.parent[x] = m.parent[m.parent[x]]
		x = m.parent[x]
	}
	return x
}

// kruskalWith computes the MST length of pts ∪ {c} from the current tree
// plus c's star. When keep is set the selected edges are retained in m.sel
// for a subsequent commit.
func (m *incrMST) kruskalWith(c geom.Point, keep bool) float64 {
	n := len(m.pts)
	m.cand = append(m.cand[:0], m.tree...)
	for i := 0; i < n; i++ {
		m.cand = append(m.cand, wedge{u: i, v: n, w: m.metric.Dist(m.pts[i], c)})
	}
	// Deterministic order: ties broken by endpoint indices (the MST total
	// is unique either way; this fixes the edge set too).
	sortWedges(m.cand)
	if cap(m.parent) < n+1 {
		m.parent = make([]int, n+1)
	}
	m.parent = m.parent[:n+1]
	for i := range m.parent {
		m.parent[i] = i
	}
	if keep {
		m.sel = m.sel[:0]
	}
	var total float64
	taken := 0
	for _, e := range m.cand {
		ru, rv := m.find(e.u), m.find(e.v)
		if ru == rv {
			continue
		}
		m.parent[ru] = rv
		total += e.w
		if keep {
			m.sel = append(m.sel, e)
		}
		taken++
		if taken == n { // spanning n+1 nodes
			break
		}
	}
	return total
}

// lengthWith returns the MST length of pts ∪ {c} without mutating state.
func (m *incrMST) lengthWith(c geom.Point) float64 { return m.kruskalWith(c, false) }

// accept commits candidate c: the point joins the set and the tree/base
// are updated to the MST computed by the trial.
func (m *incrMST) accept(c geom.Point) {
	m.base = m.kruskalWith(c, true)
	m.pts = append(m.pts, c)
	m.tree = append(m.tree[:0], m.sel...)
}

// HananGrid returns the Hanan-grid points of the terminal set (all
// intersections of horizontal and vertical lines through terminals),
// excluding the terminals themselves.
func HananGrid(terminals []geom.Point) []geom.Point {
	out := NewWorkspace().hananGrid(terminals)
	return append([]geom.Point(nil), out...)
}

// hananGrid is HananGrid into the workspace's candidate buffer; the result
// is valid until the next hananGrid call on the same workspace.
func (ws *Workspace) hananGrid(terminals []geom.Point) []geom.Point {
	ws.xs = uniqueCoordsInto(ws.xs[:0], &ws.coordVals, terminals, false)
	ws.ys = uniqueCoordsInto(ws.ys[:0], &ws.coordVals, terminals, true)
	if ws.terminalSet == nil {
		ws.terminalSet = make(map[geom.Point]bool, len(terminals))
	} else {
		clear(ws.terminalSet)
	}
	for _, t := range terminals {
		ws.terminalSet[t] = true
	}
	out := ws.cands[:0]
	for _, x := range ws.xs {
		for _, y := range ws.ys {
			p := geom.Point{X: x, Y: y}
			if !ws.terminalSet[p] {
				out = append(out, p)
			}
		}
	}
	ws.cands = out
	return out
}

// uniqueCoordsInto appends the deduplicated sorted X (or Y when useY) values
// of pts to dst, staging them in *vals.
func uniqueCoordsInto(dst []float64, vals *[]float64, pts []geom.Point, useY bool) []float64 {
	v := (*vals)[:0]
	for _, p := range pts {
		if useY {
			v = append(v, p.Y)
		} else {
			v = append(v, p.X)
		}
	}
	sort.Float64s(v)
	*vals = v
	for i, x := range v {
		if i == 0 || x > dst[len(dst)-1]+geom.Eps {
			dst = append(dst, x)
		}
	}
	return dst
}

// appendFermatPoints appends approximate Fermat (Torricelli) points of
// terminal triples to dst, the natural Steiner candidates in the Euclidean
// metric. To bound the candidate count only triples of mutually-nearest
// terminals are used.
func appendFermatPoints(dst []geom.Point, terminals []geom.Point) []geom.Point {
	n := len(terminals)
	if n < 3 {
		return dst
	}
	limit := n
	if limit > 12 {
		limit = 12
	}
	for i := 0; i < limit; i++ {
		for j := i + 1; j < limit; j++ {
			for k := j + 1; k < limit; k++ {
				dst = append(dst, fermatPoint(terminals[i], terminals[j], terminals[k]))
			}
		}
	}
	return dst
}

// fermatPoint computes the geometric median of three points via Weiszfeld
// iteration, which converges to the Fermat point for non-degenerate
// triangles.
func fermatPoint(a, b, c geom.Point) geom.Point {
	p := geom.Point{X: (a.X + b.X + c.X) / 3, Y: (a.Y + b.Y + c.Y) / 3}
	for iter := 0; iter < 50; iter++ {
		var wx, wy, wsum float64
		for _, q := range []geom.Point{a, b, c} {
			d := p.Dist(q)
			if d < geom.Eps {
				return q // median coincides with a vertex
			}
			w := 1 / d
			wx += q.X * w
			wy += q.Y * w
			wsum += w
		}
		next := geom.Point{X: wx / wsum, Y: wy / wsum}
		if next.Dist(p) < 1e-12 {
			return next
		}
		p = next
	}
	return p
}

// BI1SConfig tunes the Batched Iterated 1-Steiner heuristic.
type BI1SConfig struct {
	// BendWeight penalises candidates by BendWeight × the bending cost of
	// the tree they induce, steering baseline diversity (§3.2: "sorting the
	// Steiner points with the induced propagation and bending cost").
	BendWeight float64
	// MaxRounds bounds the batched iterations. Defaults to 8 when zero.
	MaxRounds int
}

// BI1S runs Batched Iterated 1-Steiner over the terminals: in each round
// every candidate Steiner point is scored by the MST-length reduction it
// yields, the candidates are sorted by gain (minus the bending penalty), and
// a batch of still-profitable candidates is accepted greedily; degree-<=2
// Steiner points are cleaned up at the end. The result spans all terminals.
func BI1S(terminals []geom.Point, metric Metric, cfg BI1SConfig) Tree {
	return BI1SWS(terminals, metric, cfg, nil)
}

// BI1SWS is BI1S with an explicit workspace (nil allocates a throwaway
// one). The returned tree owns its slices; nothing aliases ws.
func BI1SWS(terminals []geom.Point, metric Metric, cfg BI1SConfig, ws *Workspace) Tree {
	n := len(terminals)
	if ws == nil {
		ws = NewWorkspace()
	}
	if n <= 2 {
		return ws.mstWS(terminals, metric)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 8
	}

	inc := &ws.inc
	inc.init(terminals, metric, ws)

	for round := 0; round < maxRounds; round++ {
		cands := ws.hananGrid(inc.pts)
		if metric == Euclidean {
			cands = appendFermatPoints(cands, inc.pts)
			ws.cands = cands
		}
		pool := ws.pool[:0]
		for _, c := range cands {
			g := inc.base - inc.lengthWith(c)
			if g > geom.Eps {
				pool = append(pool, scored{p: c, gain: g})
			}
		}
		ws.pool = pool
		if len(pool) == 0 {
			break
		}
		if cfg.BendWeight > 0 {
			for i := range pool {
				ws.bendPts = append(ws.bendPts[:0], inc.pts...)
				ws.bendPts = append(ws.bendPts, pool[i].p)
				ws.mstInto(ws.bendPts, metric, &ws.bendTree)
				pool[i].gain -= cfg.BendWeight * float64(ws.bends(ws.bendTree)) * 1e-3
			}
		}
		sortScored(pool)
		accepted := 0
		for _, s := range pool {
			// Re-score against the tree as accepted points accumulate.
			if inc.base-inc.lengthWith(s.p) > geom.Eps {
				inc.accept(s.p)
				accepted++
			}
		}
		if accepted == 0 {
			break
		}
	}
	return ws.cleanup(ws.treeOver(inc.pts, terminals, metric))
}

// treeOver builds the MST over pts, marking the first len(terminals) points
// as terminals and the rest as Steiner points.
func (ws *Workspace) treeOver(pts []geom.Point, terminals []geom.Point, metric Metric) Tree {
	t := ws.mstWS(pts, metric)
	for i := range t.Nodes {
		if i < len(terminals) {
			t.Nodes[i].Terminal = i
		} else {
			t.Nodes[i].Terminal = -1
		}
	}
	return t
}

// cleanup removes useless Steiner points: degree-1 Steiner leaves are
// dropped, and degree-2 Steiner pass-throughs are spliced out. It mutates
// t in place (t's slices are owned by the caller, fresh from treeOver) and
// preserves the exact removal and reindexing order of a naive rebuild, so
// results are unchanged; only the per-iteration allocations are gone.
func (ws *Workspace) cleanup(t Tree) Tree {
	for {
		if cap(ws.deg) < len(t.Nodes) {
			ws.deg = make([]int, len(t.Nodes))
		}
		deg := ws.deg[:len(t.Nodes)]
		for i := range deg {
			deg[i] = 0
		}
		for _, e := range t.Edges {
			deg[e.U]++
			deg[e.V]++
		}
		removed := -1
		doSplice := false
		var splice [2]int
		for i, nd := range t.Nodes {
			if !nd.IsSteiner() {
				continue
			}
			if deg[i] <= 2 {
				removed = i
				if deg[i] == 2 {
					doSplice = true
					// The splice endpoints in adjacency order: Adjacency
					// appends neighbours in edge order, so scan edges.
					k := 0
					for _, e := range t.Edges {
						if e.U == i {
							splice[k] = e.V
							k++
						} else if e.V == i {
							splice[k] = e.U
							k++
						}
						if k == 2 {
							break
						}
					}
				}
				break
			}
		}
		if removed < 0 {
			return t
		}
		k := 0
		for _, e := range t.Edges {
			if e.U != removed && e.V != removed {
				t.Edges[k] = e
				k++
			}
		}
		t.Edges = t.Edges[:k]
		if doSplice {
			t.Edges = append(t.Edges, Edge{U: splice[0], V: splice[1]})
		}
		// Reindex nodes after dropping `removed`.
		if cap(ws.remap) < len(t.Nodes) {
			ws.remap = make([]int, len(t.Nodes))
		}
		remap := ws.remap[:len(t.Nodes)]
		k = 0
		for i := range t.Nodes {
			if i == removed {
				remap[i] = -1
				continue
			}
			remap[i] = k
			t.Nodes[k] = t.Nodes[i]
			k++
		}
		t.Nodes = t.Nodes[:k]
		for i := range t.Edges {
			t.Edges[i].U = remap[t.Edges[i].U]
			t.Edges[i].V = remap[t.Edges[i].V]
		}
	}
}

// Subdivide splits every edge longer than maxSegLen into equal chunks by
// inserting degree-2 Steiner nodes. The co-design stage labels each chunk
// independently, which lets a route switch between optical and electrical
// mid-edge (partial-optical routes and optical relays). Geometry and total
// length are unchanged.
func Subdivide(t Tree, maxSegLen float64) Tree {
	if maxSegLen <= 0 {
		return t
	}
	out := Tree{Metric: t.Metric, Nodes: append([]Node(nil), t.Nodes...)}
	for _, e := range t.Edges {
		a, b := t.Nodes[e.U].Pt, t.Nodes[e.V].Pt
		n := int(math.Ceil(a.Dist(b)/maxSegLen - geom.Eps))
		if n < 1 {
			n = 1
		}
		prev := e.U
		for k := 1; k < n; k++ {
			frac := float64(k) / float64(n)
			mid := geom.Point{
				X: a.X + frac*(b.X-a.X),
				Y: a.Y + frac*(b.Y-a.Y),
			}
			out.Nodes = append(out.Nodes, Node{Pt: mid, Terminal: -1})
			idx := len(out.Nodes) - 1
			out.Edges = append(out.Edges, Edge{U: prev, V: idx})
			prev = idx
		}
		out.Edges = append(out.Edges, Edge{U: prev, V: e.V})
	}
	return out
}

// RSMTLength estimates the rectilinear Steiner minimal tree length of the
// terminals, the wirelength model Streak-style electrical power uses.
func RSMTLength(terminals []geom.Point) float64 {
	return RSMTLengthWS(terminals, nil)
}

// RSMTLengthWS is RSMTLength with an explicit workspace (nil allocates a
// throwaway one).
func RSMTLengthWS(terminals []geom.Point, ws *Workspace) float64 {
	if len(terminals) <= 1 {
		return 0
	}
	return BI1SWS(terminals, Rectilinear, BI1SConfig{}, ws).Length()
}

// Baselines generates up to max distinct baseline topologies for the
// terminal set under the given metric: the plain MST plus BI1S variants
// under different bending-cost weights. Duplicate topologies (same length
// and node count) are removed. At least one topology is always returned.
func Baselines(terminals []geom.Point, metric Metric, max int) []Tree {
	return BaselinesWS(terminals, metric, max, nil)
}

// BaselinesWS is Baselines with an explicit workspace (nil allocates a
// throwaway one). The returned trees own their slices.
func BaselinesWS(terminals []geom.Point, metric Metric, max int, ws *Workspace) []Tree {
	if max <= 0 {
		max = 3
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	if len(terminals) <= 2 {
		// Every topology over two or fewer terminals is the same tree:
		// BI1S, the MST, and all bend-weighted variants coincide, and the
		// dedup below would discard all but the first. Build it once.
		return []Tree{ws.mstWS(terminals, metric)}
	}
	var out []Tree
	add := func(t Tree) {
		for _, prev := range out {
			if len(prev.Nodes) == len(t.Nodes) && math.Abs(prev.Length()-t.Length()) < geom.Eps {
				return
			}
		}
		out = append(out, t)
	}
	add(BI1SWS(terminals, metric, BI1SConfig{}, ws))
	if len(out) < max {
		add(ws.mstWS(terminals, metric))
	}
	for _, w := range []float64{0.5, 2.0, 8.0} {
		if len(out) >= max {
			break
		}
		add(BI1SWS(terminals, metric, BI1SConfig{BendWeight: w}, ws))
	}
	return out
}
