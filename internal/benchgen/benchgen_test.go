package benchgen

import (
	"fmt"
	"testing"

	"operon/internal/optics"
	"operon/internal/signal"
)

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Name: "g0", Groups: 0, BitsPerGroup: 2, DieCM: 1, MinSinkClusters: 1, MaxSinkClusters: 1},
		{Name: "b0", Groups: 1, BitsPerGroup: 0.5, DieCM: 1, MinSinkClusters: 1, MaxSinkClusters: 1},
		{Name: "d0", Groups: 1, BitsPerGroup: 2, DieCM: 0, MinSinkClusters: 1, MaxSinkClusters: 1},
		{Name: "s0", Groups: 1, BitsPerGroup: 2, DieCM: 1, MinSinkClusters: 2, MaxSinkClusters: 1},
		{Name: "lf", Groups: 1, BitsPerGroup: 2, DieCM: 1, MinSinkClusters: 1, MaxSinkClusters: 1,
			LocalFraction: 2},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %s accepted", s.Name)
		}
	}
}

func TestGenerateExactNetCounts(t *testing.T) {
	wantNets := map[string]int{"I1": 2660, "I2": 1782, "I3": 5072, "I4": 3224, "I5": 1994}
	for _, spec := range Table1Specs() {
		d, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: invalid design: %v", spec.Name, err)
		}
		if got := d.NetCount(); got != wantNets[spec.Name] {
			t.Errorf("%s: #Net = %d, want %d", spec.Name, got, wantNets[spec.Name])
		}
		if len(d.Groups) != spec.Groups {
			t.Errorf("%s: groups = %d, want %d", spec.Name, len(d.Groups), spec.Groups)
		}
	}
}

func TestGeneratePinsInsideDie(t *testing.T) {
	spec, err := SpecByName("I1")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range d.Groups {
		for _, b := range g.Bits {
			if !d.Die.Contains(b.Driver) {
				t.Fatalf("driver %v outside die", b.Driver)
			}
			for _, s := range b.Sinks {
				if !d.Die.Contains(s) {
					t.Fatalf("sink %v outside die", s)
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := SpecByName("I3")
	a, _ := Generate(spec)
	b, _ := Generate(spec)
	if len(a.Groups) != len(b.Groups) {
		t.Fatal("nondeterministic group count")
	}
	for i := range a.Groups {
		if len(a.Groups[i].Bits) != len(b.Groups[i].Bits) {
			t.Fatalf("group %d bit count differs", i)
		}
		if a.Groups[i].Bits[0].Driver != b.Groups[i].Bits[0].Driver {
			t.Fatalf("group %d geometry differs", i)
		}
	}
}

func TestHyperNetStatisticsNearPaper(t *testing.T) {
	// The whole point of the generator: signal processing over the
	// synthetic designs must land near the published #HNet / #HPin.
	want := map[string][2]int{
		"I1": {356, 1306},
		"I2": {837, 1701},
		"I3": {168, 336},
		"I4": {403, 1474},
		"I5": {933, 1897},
	}
	lib := optics.DefaultLibrary()
	for _, spec := range Table1Specs() {
		d, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		nets, err := signal.Process(d, signal.ProcessConfig{
			WDMCapacity:         lib.WDMCapacity,
			PinMergeThresholdCM: 0.1,
			Seed:                spec.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		st := signal.Summarize(nets)
		w := want[spec.Name]
		// Within 15% of the published statistics.
		if !within(st.HyperNets, w[0], 0.15) {
			t.Errorf("%s: #HNet = %d, want ≈%d", spec.Name, st.HyperNets, w[0])
		}
		if !within(st.HyperPins, w[1], 0.15) {
			t.Errorf("%s: #HPin = %d, want ≈%d", spec.Name, st.HyperPins, w[1])
		}
	}
}

func within(got, want int, frac float64) bool {
	d := float64(got - want)
	if d < 0 {
		d = -d
	}
	return d <= frac*float64(want)
}

func TestSpecByNameUnknown(t *testing.T) {
	if _, err := SpecByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestMegaSpecsNetCounts(t *testing.T) {
	// The scale-frontier cases hit their target net counts; counting goes
	// through the streaming generator so the 100k-net I8 never has to be
	// materialised as one design.
	wantNets := map[string]int{"I6": 20000, "I7": 50000, "I8": 102500}
	for _, spec := range MegaSpecs() {
		groups, nets := 0, 0
		if err := GenerateGroups(spec, func(g signal.Group) error {
			groups++
			nets += len(g.Bits)
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if nets != wantNets[spec.Name] {
			t.Errorf("%s: #Net = %d, want %d", spec.Name, nets, wantNets[spec.Name])
		}
		if groups != spec.Groups {
			t.Errorf("%s: groups = %d, want %d", spec.Name, groups, spec.Groups)
		}
	}
}

func TestGenerateGroupsMatchesGenerate(t *testing.T) {
	// The streaming and materialised paths are the same generator: group
	// order, sizes, and geometry must agree exactly.
	spec, err := SpecByName("I6")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	err = GenerateGroups(spec, func(g signal.Group) error {
		if i >= len(d.Groups) {
			t.Fatalf("stream produced more than %d groups", len(d.Groups))
		}
		ref := d.Groups[i]
		if g.Name != ref.Name || len(g.Bits) != len(ref.Bits) {
			t.Fatalf("group %d: stream %s/%d bits vs generate %s/%d bits",
				i, g.Name, len(g.Bits), ref.Name, len(ref.Bits))
		}
		if g.Bits[0].Driver != ref.Bits[0].Driver {
			t.Fatalf("group %d: geometry differs", i)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(d.Groups) {
		t.Fatalf("stream produced %d of %d groups", i, len(d.Groups))
	}
}

func TestGenerateGroupsStopsOnError(t *testing.T) {
	spec, err := SpecByName("I8")
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	sentinel := fmt.Errorf("stop")
	if err := GenerateGroups(spec, func(signal.Group) error {
		calls++
		if calls == 3 {
			return sentinel
		}
		return nil
	}); err != sentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times after early stop", calls)
	}
}
