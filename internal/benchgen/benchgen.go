// Package benchgen generates the synthetic signal-group benchmarks that
// stand in for the proprietary industrial test cases I1–I5 of the paper's
// Table 1. The generator is deterministic (seeded) and parameterised by the
// published per-case statistics: total bit count (#Net), target hyper-net
// count and the pin-cluster structure that determines #HPin. Geometry is
// up-scaled to a centimetre die, matching the paper's setup.
//
// Each signal group is a bundle of bits sharing a driver region and one or
// more sink regions. Region spreads are tight (tens of micrometres) so the
// signal-processing stage recovers one hyper pin per region; group spans
// mix local (sub-crossover) and global distances so optical-electrical
// co-design has real decisions to make. Like industrial block-to-block
// bundles, groups run along axis-aligned corridors on a snapped lane grid:
// parallel buses share lanes (which the WDM stage can consolidate) and
// only perpendicular corridors cross (which keeps the crossing loss of a
// waveguide physical rather than quadratic in design size).
package benchgen

import (
	"fmt"
	"math"
	"math/rand"

	"operon/internal/geom"
	"operon/internal/signal"
)

// Spec parameterises one synthetic benchmark.
type Spec struct {
	// Name labels the design (e.g. "I1").
	Name string
	// DieCM is the square die edge length in cm.
	DieCM float64
	// Groups is the number of signal groups.
	Groups int
	// BitsPerGroup is the average bits per group; actual group sizes vary
	// ±BitsJitter around it while the total hits Groups×BitsPerGroup
	// as closely as integer rounding allows.
	BitsPerGroup float64
	// BitsJitter is the maximum deviation of a group's bit count.
	BitsJitter int
	// MinSinkClusters and MaxSinkClusters bound the number of sink regions
	// per group (uniformly chosen).
	MinSinkClusters, MaxSinkClusters int
	// LocalFraction is the fraction of groups whose sink regions are close
	// to the driver (local nets, below the optical crossover distance).
	LocalFraction float64
	// LocalSpanCM and GlobalSpanCM scale driver-to-sink distances for the
	// two populations.
	LocalSpanCM, GlobalSpanCM float64
	// RegionSpreadCM is the pin jitter within one region.
	RegionSpreadCM float64
	// LanePitchCM is the spacing of the corridor lane grid that group
	// positions snap to (0 disables snapping).
	LanePitchCM float64
	// Seed drives all randomness.
	Seed int64
}

// Validate reports whether the spec is generatable.
func (s Spec) Validate() error {
	switch {
	case s.Groups <= 0:
		return fmt.Errorf("benchgen: %s: groups %d must be positive", s.Name, s.Groups)
	case s.BitsPerGroup < 1:
		return fmt.Errorf("benchgen: %s: bits per group %v must be >= 1", s.Name, s.BitsPerGroup)
	case s.DieCM <= 0:
		return fmt.Errorf("benchgen: %s: die %v must be positive", s.Name, s.DieCM)
	case s.MinSinkClusters < 1 || s.MaxSinkClusters < s.MinSinkClusters:
		return fmt.Errorf("benchgen: %s: bad sink cluster bounds", s.Name)
	case s.LocalFraction < 0 || s.LocalFraction > 1:
		return fmt.Errorf("benchgen: %s: local fraction %v outside [0,1]", s.Name, s.LocalFraction)
	}
	return nil
}

// Generate builds the design for a spec.
func Generate(spec Spec) (signal.Design, error) {
	die := geom.Rect{Hi: geom.Point{X: spec.DieCM, Y: spec.DieCM}}
	d := signal.Design{Name: spec.Name, Die: die}
	err := GenerateGroups(spec, func(g signal.Group) error {
		d.Groups = append(d.Groups, g)
		return nil
	})
	if err != nil {
		return signal.Design{}, err
	}
	return d, nil
}

// GenerateGroups streams the groups of a spec one at a time to fn, in the
// same deterministic order Generate materialises them. Mega-scale cases
// (I6–I8, up to 100k+ nets) can be consumed chunk by chunk — counted,
// filtered, or written out — without holding the whole design in memory;
// Generate itself is this stream plus an append. A non-nil error from fn
// stops the stream and is returned verbatim.
func GenerateGroups(spec Spec, fn func(signal.Group) error) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	die := geom.Rect{Hi: geom.Point{X: spec.DieCM, Y: spec.DieCM}}

	targetBits := int(float64(spec.Groups)*spec.BitsPerGroup + 0.5)
	remaining := targetBits
	for g := 0; g < spec.Groups; g++ {
		groupsLeft := spec.Groups - g
		base := remaining / groupsLeft
		jit := 0
		if spec.BitsJitter > 0 && groupsLeft > 1 {
			jit = rng.Intn(2*spec.BitsJitter+1) - spec.BitsJitter
		}
		bits := base + jit
		if bits < 1 {
			bits = 1
		}
		if bits > remaining-(groupsLeft-1) {
			bits = remaining - (groupsLeft - 1)
		}
		remaining -= bits

		local := rng.Float64() < spec.LocalFraction
		span := spec.GlobalSpanCM
		if local {
			span = spec.LocalSpanCM
		}
		grp := makeGroup(rng, fmt.Sprintf("%s_g%d", spec.Name, g),
			bits, spec.MinSinkClusters+rng.Intn(spec.MaxSinkClusters-spec.MinSinkClusters+1),
			die, span, spec.RegionSpreadCM, spec.LanePitchCM)
		if err := fn(grp); err != nil {
			return err
		}
	}
	return nil
}

// makeGroup builds one bundle: a driver region and nSinks sink regions at
// roughly `span` distance along an axis-aligned corridor, all within the
// die. The corridor's cross-axis coordinate snaps to the lane grid.
func makeGroup(rng *rand.Rand, name string, bits, nSinks int, die geom.Rect,
	span, spread, lanePitch float64) signal.Group {
	clamp := func(p geom.Point) geom.Point {
		if p.X < die.Lo.X {
			p.X = die.Lo.X
		}
		if p.Y < die.Lo.Y {
			p.Y = die.Lo.Y
		}
		if p.X > die.Hi.X {
			p.X = die.Hi.X
		}
		if p.Y > die.Hi.Y {
			p.Y = die.Hi.Y
		}
		return p
	}
	horizontal := rng.Intn(2) == 0
	// Cross-axis coordinate snapped to a lane; along-axis start random.
	cross := die.Lo.Y + rng.Float64()*die.Height()
	along := die.Lo.X + rng.Float64()*die.Width()
	if !horizontal {
		cross = die.Lo.X + rng.Float64()*die.Width()
		along = die.Lo.Y + rng.Float64()*die.Height()
	}
	if lanePitch > 0 {
		cross = math.Round(cross/lanePitch) * lanePitch
	}
	pt := func(a, c float64) geom.Point {
		if horizontal {
			return clamp(geom.Point{X: a, Y: c})
		}
		return clamp(geom.Point{X: c, Y: a})
	}
	driver := pt(along, cross)
	dir := 1.0
	if rng.Intn(2) == 0 {
		dir = -1
	}
	sinkBase := make([]geom.Point, nSinks)
	for s := range sinkBase {
		// Sinks spread along the corridor at [0.75, 1.25]×span steps, with
		// a small cross-axis offset so multi-sink topologies branch. A
		// floor keeps sink regions distinct under the hyper-pin merge
		// threshold even for local groups.
		dist := span * (0.75 + 0.5*rng.Float64()) * float64(s+1) / float64(nSinks)
		if min := 0.16 * float64(s+1); dist < min {
			dist = min
		}
		off := (rng.Float64() - 0.5) * 0.1
		sinkBase[s] = pt(along+dir*dist, cross+off)
	}
	jitter := func(p geom.Point) geom.Point {
		return clamp(geom.Point{
			X: p.X + (rng.Float64()-0.5)*2*spread,
			Y: p.Y + (rng.Float64()-0.5)*2*spread,
		})
	}
	grp := signal.Group{Name: name}
	for b := 0; b < bits; b++ {
		bit := signal.Bit{Driver: jitter(driver)}
		for _, sb := range sinkBase {
			bit.Sinks = append(bit.Sinks, jitter(sb))
		}
		grp.Bits = append(grp.Bits, bit)
	}
	return grp
}

// Table1Specs returns the five specs calibrated to the paper's published
// case statistics (#Net / #HNet / #HPin in Table 1):
//
//	I1: 2660 / 356 / 1306   (mid bundles, 2-3 sink regions)
//	I2: 1782 / 837 / 1701   (many tiny bundles, mostly 1 sink region)
//	I3: 5072 / 168 / 336    (wide 30-bit buses, single sink region)
//	I4: 3224 / 403 / 1474   (mid bundles, 2-3 sink regions)
//	I5: 1994 / 933 / 1897   (many tiny bundles, mostly 1 sink region)
func Table1Specs() []Spec {
	common := func(s Spec) Spec {
		s.DieCM = 4.0
		s.RegionSpreadCM = 0.02
		s.LocalSpanCM = 0.15
		s.LanePitchCM = 0.2
		return s
	}
	return []Spec{
		common(Spec{Name: "I1", Groups: 356, BitsPerGroup: 2660.0 / 356, BitsJitter: 2,
			MinSinkClusters: 2, MaxSinkClusters: 3, LocalFraction: 0.25,
			GlobalSpanCM: 1.3, Seed: 101}),
		common(Spec{Name: "I2", Groups: 837, BitsPerGroup: 1782.0 / 837, BitsJitter: 1,
			MinSinkClusters: 1, MaxSinkClusters: 1, LocalFraction: 0.12,
			GlobalSpanCM: 1.05, Seed: 102}),
		common(Spec{Name: "I3", Groups: 168, BitsPerGroup: 5072.0 / 168, BitsJitter: 1,
			MinSinkClusters: 1, MaxSinkClusters: 1, LocalFraction: 0.15,
			GlobalSpanCM: 1.9, Seed: 103}),
		common(Spec{Name: "I4", Groups: 403, BitsPerGroup: 3224.0 / 403, BitsJitter: 2,
			MinSinkClusters: 2, MaxSinkClusters: 3, LocalFraction: 0.25,
			GlobalSpanCM: 1.3, Seed: 104}),
		common(Spec{Name: "I5", Groups: 933, BitsPerGroup: 1994.0 / 933, BitsJitter: 1,
			MinSinkClusters: 1, MaxSinkClusters: 1, LocalFraction: 0.12,
			GlobalSpanCM: 1.05, Seed: 105}),
	}
}

// MegaSpecs returns the scale-frontier cases beyond the paper's Table 1:
// synthetic designs one to two orders of magnitude larger than I1–I5,
// probing where the flow's near-linear stages and the exact ILP's
// branch-and-bound wall actually sit.
//
//	I6:  ~20k nets,  2500 groups,  6 cm die
//	I7:  ~50k nets,  6250 groups,  8 cm die
//	I8: ~102k nets, 12500 groups, 10 cm die
//
// Like the Table-1 specs they are fully deterministic (fixed seeds); use
// GenerateGroups to consume them without materialising the whole design.
func MegaSpecs() []Spec {
	common := func(s Spec) Spec {
		s.BitsJitter = 2
		s.MinSinkClusters = 1
		s.MaxSinkClusters = 2
		s.LocalFraction = 0.2
		s.LocalSpanCM = 0.15
		s.RegionSpreadCM = 0.02
		s.LanePitchCM = 0.2
		return s
	}
	return []Spec{
		common(Spec{Name: "I6", DieCM: 6, Groups: 2500, BitsPerGroup: 8,
			GlobalSpanCM: 1.6, Seed: 106}),
		common(Spec{Name: "I7", DieCM: 8, Groups: 6250, BitsPerGroup: 8,
			GlobalSpanCM: 2.0, Seed: 107}),
		common(Spec{Name: "I8", DieCM: 10, Groups: 12500, BitsPerGroup: 8.2,
			GlobalSpanCM: 2.4, Seed: 108}),
	}
}

// SpecByName returns the Table-1 or mega-case spec with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Table1Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	for _, s := range MegaSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("benchgen: unknown benchmark %q", name)
}
