package benchgen

import (
	"fmt"
	"math/rand"

	"operon/internal/geom"
	"operon/internal/signal"
)

// EditOp is a flow-agnostic design edit used to drive incremental
// re-synthesis from benches, load generators, and the serving API. It
// mirrors the root package's Edit constructors without importing them
// (benchgen must stay import-light so the root package's tests can use it),
// and doubles as the JSON wire format of the /sessions/{id}/edit endpoint.
type EditOp struct {
	// Kind is one of "move", "add_terminal", "remove_terminal",
	// "add_group", "remove_group", "budget".
	Kind string `json:"kind"`
	// Group indexes the edited group (terminal edits, remove_group).
	Group int `json:"group,omitempty"`
	// Bit indexes the edited bit within the group (terminal edits).
	Bit int `json:"bit,omitempty"`
	// Sink indexes the sink within the bit; -1 addresses the driver.
	Sink int `json:"sink,omitempty"`
	// X is the new terminal x-coordinate in cm (move, add_terminal).
	X float64 `json:"x,omitempty"`
	// Y is the new terminal y-coordinate in cm (move, add_terminal).
	Y float64 `json:"y,omitempty"`
	// Budget is the new optical loss budget in dB (kind "budget").
	Budget float64 `json:"budget,omitempty"`
	// Name names the appended group (kind "add_group").
	Name string `json:"name,omitempty"`
	// NewBits carries the appended group's bits (kind "add_group").
	NewBits []signal.Bit `json:"new_bits,omitempty"`
}

// MoveScript generates n small terminal moves against design d: each op
// nudges one randomly chosen driver or sink by at most 2% of the die span,
// clamped to the die. Deterministic in (d, n, seed). Small moves keep the
// dirty set to the touched groups, making this the canonical "small edit"
// workload of the ECO benches.
func MoveScript(d signal.Design, n int, seed int64) []EditOp {
	rng := rand.New(rand.NewSource(seed))
	span := d.Die.Hi.X - d.Die.Lo.X
	if dy := d.Die.Hi.Y - d.Die.Lo.Y; dy > span {
		span = dy
	}
	ops := make([]EditOp, 0, n)
	for len(ops) < n {
		gi := rng.Intn(len(d.Groups))
		g := d.Groups[gi]
		bi := rng.Intn(len(g.Bits))
		b := g.Bits[bi]
		sink := rng.Intn(len(b.Sinks)+1) - 1 // -1 = driver
		var p geom.Point
		if sink < 0 {
			p = b.Driver
		} else {
			p = b.Sinks[sink]
		}
		p.X = clamp(p.X+(rng.Float64()-0.5)*0.04*span, d.Die.Lo.X, d.Die.Hi.X)
		p.Y = clamp(p.Y+(rng.Float64()-0.5)*0.04*span, d.Die.Lo.Y, d.Die.Hi.Y)
		ops = append(ops, EditOp{Kind: "move", Group: gi, Bit: bi, Sink: sink, X: p.X, Y: p.Y})
	}
	return ops
}

// EditScript generates a mixed, validity-aware edit script of n ops against
// design d: mostly terminal moves, with occasional terminal adds/removes,
// group adds/removes, and budget changes. Ops are generated against a
// scratch copy that each op is applied to, so every op's indices are valid
// at its position in the script. Deterministic in (d, n, seed).
func EditScript(d signal.Design, n int, seed int64) []EditOp {
	rng := rand.New(rand.NewSource(seed))
	cur := copyDesign(d)
	ops := make([]EditOp, 0, n)
	for len(ops) < n {
		op, ok := genOp(rng, &cur)
		if !ok {
			continue
		}
		ops = append(ops, op)
	}
	return ops
}

// genOp draws one valid op against cur and applies it so subsequent ops see
// the edited design. Returns ok=false when the drawn kind is inapplicable
// (e.g. remove_group on a one-group design).
func genOp(rng *rand.Rand, cur *signal.Design) (EditOp, bool) {
	d := *cur
	span := d.Die.Hi.X - d.Die.Lo.X
	if dy := d.Die.Hi.Y - d.Die.Lo.Y; dy > span {
		span = dy
	}
	randPt := func() geom.Point {
		return geom.Point{
			X: d.Die.Lo.X + rng.Float64()*(d.Die.Hi.X-d.Die.Lo.X),
			Y: d.Die.Lo.Y + rng.Float64()*(d.Die.Hi.Y-d.Die.Lo.Y),
		}
	}
	switch k := rng.Intn(10); {
	case k < 5: // move (half the mix)
		gi := rng.Intn(len(d.Groups))
		g := d.Groups[gi]
		bi := rng.Intn(len(g.Bits))
		b := &cur.Groups[gi].Bits[bi]
		sink := rng.Intn(len(b.Sinks)+1) - 1
		var p geom.Point
		if sink < 0 {
			p = b.Driver
		} else {
			p = b.Sinks[sink]
		}
		p.X = clamp(p.X+(rng.Float64()-0.5)*0.04*span, d.Die.Lo.X, d.Die.Hi.X)
		p.Y = clamp(p.Y+(rng.Float64()-0.5)*0.04*span, d.Die.Lo.Y, d.Die.Hi.Y)
		if sink < 0 {
			b.Driver = p
		} else {
			b.Sinks[sink] = p
		}
		return EditOp{Kind: "move", Group: gi, Bit: bi, Sink: sink, X: p.X, Y: p.Y}, true
	case k < 7: // add_terminal
		gi := rng.Intn(len(d.Groups))
		bi := rng.Intn(len(d.Groups[gi].Bits))
		p := randPt()
		cur.Groups[gi].Bits[bi].Sinks = append(cur.Groups[gi].Bits[bi].Sinks, p)
		return EditOp{Kind: "add_terminal", Group: gi, Bit: bi, X: p.X, Y: p.Y}, true
	case k < 8: // remove_terminal
		gi := rng.Intn(len(d.Groups))
		bi := rng.Intn(len(d.Groups[gi].Bits))
		b := &cur.Groups[gi].Bits[bi]
		if len(b.Sinks) < 2 {
			return EditOp{}, false
		}
		si := rng.Intn(len(b.Sinks))
		b.Sinks = append(b.Sinks[:si], b.Sinks[si+1:]...)
		return EditOp{Kind: "remove_terminal", Group: gi, Bit: bi, Sink: si}, true
	case k < 9: // add_group or remove_group, alternating by coin
		if rng.Intn(2) == 0 && len(d.Groups) > 1 {
			gi := rng.Intn(len(d.Groups))
			cur.Groups = append(cur.Groups[:gi], cur.Groups[gi+1:]...)
			return EditOp{Kind: "remove_group", Group: gi}, true
		}
		name := fmt.Sprintf("eco_g%d", rng.Intn(1<<20))
		bits := make([]signal.Bit, 2+rng.Intn(3))
		for i := range bits {
			bits[i] = signal.Bit{Driver: randPt(), Sinks: []geom.Point{randPt()}}
		}
		cur.Groups = append(cur.Groups, signal.Group{Name: name, Bits: bits})
		return EditOp{Kind: "add_group", Name: name, NewBits: bits}, true
	default: // budget nudge, ±10% around 10 dB
		return EditOp{Kind: "budget", Budget: 9 + 2*rng.Float64()}, true
	}
}

// copyDesign deep-copies a design for the generator's scratch tracking.
func copyDesign(d signal.Design) signal.Design {
	out := d
	out.Groups = make([]signal.Group, len(d.Groups))
	for i, g := range d.Groups {
		ng := g
		ng.Bits = make([]signal.Bit, len(g.Bits))
		for j, b := range g.Bits {
			nb := b
			nb.Sinks = append([]geom.Point(nil), b.Sinks...)
			ng.Bits[j] = nb
		}
		out.Groups[i] = ng
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
