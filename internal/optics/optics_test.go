package optics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultLibraryValid(t *testing.T) {
	if err := DefaultLibrary().Validate(); err != nil {
		t.Fatalf("default library invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Library)
	}{
		{"negative alpha", func(l *Library) { l.AlphaDBPerCM = -1 }},
		{"negative beta", func(l *Library) { l.BetaDBPerCrossing = -0.1 }},
		{"negative mod", func(l *Library) { l.ModulatorPJPerBit = -1 }},
		{"negative det", func(l *Library) { l.DetectorPJPerBit = -1 }},
		{"zero bitrate", func(l *Library) { l.BitRateGHz = 0 }},
		{"zero capacity", func(l *Library) { l.WDMCapacity = 0 }},
		{"zero budget", func(l *Library) { l.MaxLossDB = 0 }},
		{"negative disl", func(l *Library) { l.CrosstalkMinDistCM = -1 }},
		{"disl > disu", func(l *Library) { l.CrosstalkMinDistCM = 1; l.AssignMaxDistCM = 0.5 }},
	}
	for _, m := range mutations {
		l := DefaultLibrary()
		m.mut(&l)
		if err := l.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid library", m.name)
		}
	}
}

func TestSplittingLoss(t *testing.T) {
	if got := SplittingLossDB(1); got != 0 {
		t.Errorf("1 arm loss = %v, want 0", got)
	}
	if got := SplittingLossDB(0); got != 0 {
		t.Errorf("0 arm loss = %v, want 0", got)
	}
	// A 50-50 Y-branch halves the power: 10·log10(2) ≈ 3.0103 dB.
	if got := SplittingLossDB(2); math.Abs(got-3.0103) > 1e-3 {
		t.Errorf("Y-branch loss = %v, want ≈3.0103", got)
	}
	if got := SplittingLossDB(4); math.Abs(got-6.0206) > 1e-3 {
		t.Errorf("4-way loss = %v, want ≈6.0206", got)
	}
}

func TestCascadeSplittingLoss(t *testing.T) {
	// Two cascaded Y-branches (Fig. 3(b)): each halves the power, so a
	// leaf sees one quarter of the input = 6.02 dB.
	got := CascadeSplittingLossDB([]int{2, 2})
	if math.Abs(got-6.0206) > 1e-3 {
		t.Errorf("two-cascade loss = %v, want ≈6.0206", got)
	}
	if got := CascadeSplittingLossDB(nil); got != 0 {
		t.Errorf("empty cascade loss = %v, want 0", got)
	}
}

func TestPathLossComposition(t *testing.T) {
	l := DefaultLibrary()
	// 2 cm propagation + 3 crossings + one Y split.
	want := 1.5*2 + 0.52*3 + 10*math.Log10(2)
	got := l.PathLossDB(2, 3, []int{2})
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("PathLossDB = %v, want %v", got, want)
	}
}

func TestDetectable(t *testing.T) {
	l := DefaultLibrary()
	if !l.Detectable(l.MaxLossDB) {
		t.Error("budget-exact loss should be detectable")
	}
	if l.Detectable(l.MaxLossDB + 0.1) {
		t.Error("over-budget loss should not be detectable")
	}
}

func TestConversionPower(t *testing.T) {
	l := DefaultLibrary()
	// 1 modulator + 2 detectors at 1 Gbit/s.
	want := 0.511 + 2*0.374
	if got := l.ConversionPowerMW(1, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("ConversionPowerMW = %v, want %v", got, want)
	}
	// Doubling the bit rate doubles power.
	l.BitRateGHz = 2
	if got := l.ConversionPowerMW(1, 2); math.Abs(got-2*want) > 1e-12 {
		t.Errorf("2 GHz ConversionPowerMW = %v, want %v", got, 2*want)
	}
}

func TestFractionLossRoundTrip(t *testing.T) {
	f := func(loss float64) bool {
		loss = math.Abs(math.Mod(loss, 60)) // 0..60 dB
		if math.IsNaN(loss) {
			loss = 0
		}
		back := LossDBFromFraction(FractionRemaining(loss))
		return math.Abs(back-loss) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !math.IsInf(LossDBFromFraction(0), 1) {
		t.Error("zero fraction should be infinite loss")
	}
}

func TestHalfPowerIs3DB(t *testing.T) {
	if got := LossDBFromFraction(0.5); math.Abs(got-3.0103) > 1e-3 {
		t.Errorf("half power = %v dB, want ≈3.0103", got)
	}
	if got := FractionRemaining(3.0103); math.Abs(got-0.5) > 1e-4 {
		t.Errorf("3.01 dB remaining = %v, want ≈0.5", got)
	}
}

func TestSplitterTreeStages(t *testing.T) {
	cases := []struct {
		fanout, arms, stages int
	}{
		{1, 2, 0},
		{2, 2, 1},
		{3, 2, 2},
		{4, 2, 2},
		{5, 2, 3},
		{8, 2, 3},
		{9, 3, 2},
		{0, 2, 0},
	}
	for _, c := range cases {
		tr := SplitterTree{Fanout: c.fanout, Arms: c.arms}
		if got := tr.Stages(); got != c.stages {
			t.Errorf("fanout=%d arms=%d: Stages = %d, want %d", c.fanout, c.arms, got, c.stages)
		}
	}
}

func TestSplitterTreeWorstPathLoss(t *testing.T) {
	// Power-of-two fanout: worst path loss equals 10·log10(fanout).
	for _, fanout := range []int{2, 4, 8, 16, 32} {
		tr := SplitterTree{Fanout: fanout, Arms: 2}
		want := 10 * math.Log10(float64(fanout))
		if got := tr.WorstPathLossDB(); math.Abs(got-want) > 1e-9 {
			t.Errorf("fanout %d: worst loss = %v, want %v", fanout, got, want)
		}
	}
	// Degenerate arms fall back to 2.
	tr := SplitterTree{Fanout: 4, Arms: 0}
	if got := tr.WorstPathLossDB(); math.Abs(got-6.0206) > 1e-3 {
		t.Errorf("arms=0 worst loss = %v", got)
	}
}

func TestSplitterTreeMonotoneInFanout(t *testing.T) {
	f := func(a, b uint8) bool {
		fa, fb := int(a%64), int(b%64)
		if fa > fb {
			fa, fb = fb, fa
		}
		la := SplitterTree{Fanout: fa, Arms: 2}.WorstPathLossDB()
		lb := SplitterTree{Fanout: fb, Arms: 2}.WorstPathLossDB()
		return la <= lb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAtTemperature(t *testing.T) {
	l := DefaultLibrary()
	v := DefaultVariation()
	hot := l.AtTemperature(v, 50)
	if hot.AlphaDBPerCM <= l.AlphaDBPerCM {
		t.Error("temperature drift did not raise α")
	}
	if hot.MaxLossDB >= l.MaxLossDB {
		t.Error("temperature drift did not shrink the budget")
	}
	if err := hot.Validate(); err != nil {
		t.Errorf("derated library invalid: %v", err)
	}
	// Symmetric in the sign of the deviation.
	cold := l.AtTemperature(v, -50)
	if cold.AlphaDBPerCM != hot.AlphaDBPerCM || cold.MaxLossDB != hot.MaxLossDB {
		t.Error("derating not symmetric in ΔT")
	}
	// Zero deviation is the identity.
	same := l.AtTemperature(v, 0)
	if same != l {
		t.Error("ΔT=0 changed the library")
	}
	// The budget floors at 1 dB rather than going non-positive.
	extreme := l.AtTemperature(v, 1e6)
	if extreme.MaxLossDB != 1 {
		t.Errorf("extreme derating budget = %v, want floor 1", extreme.MaxLossDB)
	}
}
