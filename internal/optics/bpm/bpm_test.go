package bpm

import (
	"math"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Config){
		func(c *Config) { c.WavelengthUM = 0 },
		func(c *Config) { c.NCore = c.NClad },
		func(c *Config) { c.NClad = -1 },
		func(c *Config) { c.CoreWidthUM = 0 },
		func(c *Config) { c.WindowUM = c.CoreWidthUM },
		func(c *Config) { c.NX = 4 },
		func(c *Config) { c.StepUM = 0 },
		func(c *Config) { c.AbsorberStrength = -1 },
	}
	for i, m := range muts {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGaussianLaunch(t *testing.T) {
	cfg := DefaultConfig()
	f, err := NewGaussian(cfg, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Power() <= 0 {
		t.Fatal("launched field has no power")
	}
	f.Normalize()
	if math.Abs(f.Power()-1) > 1e-9 {
		t.Errorf("normalised power = %v", f.Power())
	}
	if _, err := NewGaussian(cfg, 0, 0); err == nil {
		t.Error("zero waist accepted")
	}
}

func TestStraightGuideConservesPower(t *testing.T) {
	cfg := DefaultConfig()
	f, err := FundamentalMode(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Propagate(Straight{Cfg: cfg, CenterUM: 0}, 600)
	// A settled mode propagating in a straight lossless guide keeps nearly
	// all its power (small residual radiates into the absorber).
	if p := f.Power(); p < 0.98 || p > 1.001 {
		t.Errorf("straight-guide power = %v, want ≈1", p)
	}
}

func TestModeStaysCentred(t *testing.T) {
	cfg := DefaultConfig()
	f, err := FundamentalMode(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	f.Propagate(Straight{Cfg: cfg, CenterUM: 5}, 400)
	inCore := f.PowerIn(5-cfg.CoreWidthUM, 5+cfg.CoreWidthUM)
	if inCore < 0.85 {
		t.Errorf("only %v of power near core", inCore)
	}
}

func TestSingleYBranchSplitsEvenly(t *testing.T) {
	res, err := Simulate(DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ArmPowers) != 2 {
		t.Fatalf("arm count = %d", len(res.ArmPowers))
	}
	// Symmetric Y-branch: each arm carries half the power; the observed
	// per-arm loss is the ideal 3.01 dB plus a small excess (< 0.5 dB).
	if math.Abs(res.ArmPowers[0]-res.ArmPowers[1]) > 0.01 {
		t.Errorf("asymmetric split: %v", res.ArmPowers)
	}
	for _, loss := range res.PerArmLossDB {
		if loss < res.IdealPerArmLossDB-0.05 {
			t.Errorf("arm loss %v below the ideal %v (non-physical)",
				loss, res.IdealPerArmLossDB)
		}
		if loss > res.IdealPerArmLossDB+0.5 {
			t.Errorf("arm loss %v far above ideal %v", loss, res.IdealPerArmLossDB)
		}
	}
	if res.TotalOut < 0.95 {
		t.Errorf("excess radiation loss: total out %v", res.TotalOut)
	}
}

func TestCascadedYBranchesQuarterPower(t *testing.T) {
	// The Fig. 3(b) observation: two cascaded 50-50 Y-branches leave each
	// of the four arms with ≈ one quarter of the input power.
	res, err := Simulate(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ArmPowers) != 4 {
		t.Fatalf("arm count = %d", len(res.ArmPowers))
	}
	for i, p := range res.ArmPowers {
		if p < 0.20 || p > 0.30 {
			t.Errorf("arm %d power = %v, want ≈0.25", i, p)
		}
	}
	// Mirror symmetry of the cascade.
	if math.Abs(res.ArmPowers[0]-res.ArmPowers[3]) > 0.01 ||
		math.Abs(res.ArmPowers[1]-res.ArmPowers[2]) > 0.01 {
		t.Errorf("cascade not symmetric: %v", res.ArmPowers)
	}
	if res.TotalOut < 0.93 {
		t.Errorf("cascade radiates too much: %v", res.TotalOut)
	}
}

func TestSplittingLossMatchesRouterModel(t *testing.T) {
	// The router charges 10·log10(2) dB per Y-branch stage. The full-wave
	// simulation must agree within a modest excess-loss margin — this is
	// the link between Fig. 3(b) and Eq. (2).
	for stages := 1; stages <= 2; stages++ {
		res, err := Simulate(DefaultConfig(), stages)
		if err != nil {
			t.Fatal(err)
		}
		ideal := float64(stages) * 10 * math.Log10(2)
		var worst float64
		for _, l := range res.PerArmLossDB {
			if l > worst {
				worst = l
			}
		}
		if worst < ideal-0.05 || worst > ideal+0.6 {
			t.Errorf("stages=%d: worst arm loss %v vs model %v", stages, worst, ideal)
		}
	}
}

func TestZeroStagesPassThrough(t *testing.T) {
	res, err := Simulate(DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ArmPowers) != 1 || res.ArmPowers[0] < 0.98 {
		t.Errorf("pass-through result: %+v", res)
	}
}

func TestCascadeValidation(t *testing.T) {
	if _, err := NewCascade(DefaultConfig(), -1); err == nil {
		t.Error("negative stages accepted")
	}
	if _, err := NewCascade(DefaultConfig(), 9); err == nil {
		t.Error("too many stages accepted")
	}
	bad := DefaultConfig()
	bad.NX = 1
	if _, err := NewCascade(bad, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestCascadeIndexProfile(t *testing.T) {
	cfg := DefaultConfig()
	cas, err := NewCascade(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	// At z=0 the input guide is at x=0.
	if cas.Index(0, 0) != cfg.NCore {
		t.Error("input core missing at origin")
	}
	if cas.Index(20, 0) != cfg.NClad {
		t.Error("cladding missing far from core")
	}
	// At the end of the stage the arms are at ±separation.
	sep := cas.SeparationsUM[0]
	zEnd := cas.StageLenUM
	if cas.Index(sep, zEnd) != cfg.NCore || cas.Index(-sep, zEnd) != cfg.NCore {
		t.Error("output arms missing")
	}
	if cas.Index(0, zEnd+1) != cfg.NClad {
		t.Error("centre should be cladding after the fork")
	}
}

func TestTridiagSolver(t *testing.T) {
	// Solve a known 3x3 complex tridiagonal system and verify A·x = b.
	lower := []complex128{0, 1i, 2}
	diag := []complex128{4, 5 + 1i, 6}
	upper := []complex128{1, 2, 0}
	b := []complex128{1 + 1i, 2, 3 - 1i}
	x := make([]complex128, 3)
	scratch := make([]complex128, 3)
	solveTridiag(lower, diag, upper, b, x, scratch)
	check := []complex128{
		diag[0]*x[0] + upper[0]*x[1],
		lower[1]*x[0] + diag[1]*x[1] + upper[1]*x[2],
		lower[2]*x[1] + diag[2]*x[2],
	}
	for i := range check {
		d := check[i] - b[i]
		if math.Hypot(real(d), imag(d)) > 1e-12 {
			t.Errorf("residual at %d: %v", i, d)
		}
	}
}

func TestGridConvergence(t *testing.T) {
	// Halving the transverse pitch and the z step must not change the
	// single-branch split measurably — the discretisation is converged.
	coarse := DefaultConfig()
	fine := DefaultConfig()
	fine.NX = 2 * fine.NX
	fine.StepUM = fine.StepUM / 2
	rc, err := Simulate(coarse, 1)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Simulate(fine, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rc.ArmPowers {
		if math.Abs(rc.ArmPowers[i]-rf.ArmPowers[i]) > 0.01 {
			t.Errorf("arm %d: coarse %v vs fine %v", i, rc.ArmPowers[i], rf.ArmPowers[i])
		}
	}
}

func TestOffsetLaunchLosesToAbsorber(t *testing.T) {
	// Launching far from any core radiates; the absorber must remove the
	// power rather than reflecting it back.
	cfg := DefaultConfig()
	f, err := NewGaussian(cfg, 20, 3) // 20 µm off the guide at 0
	if err != nil {
		t.Fatal(err)
	}
	f.Normalize()
	f.Propagate(Straight{Cfg: cfg, CenterUM: 0}, 1500)
	if p := f.Power(); p > 0.6 {
		t.Errorf("unguided launch kept %v of its power after 1.5 mm", p)
	}
}

func BenchmarkSimulateCascade(b *testing.B) {
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, 2); err != nil {
			b.Fatal(err)
		}
	}
}
