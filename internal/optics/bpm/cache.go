package bpm

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"operon/internal/obs"
)

// The FD-BPM solve is by far the most expensive leaf computation in the
// repo (hundreds of complex tridiagonal solves per call), and callers —
// the Fig. 3(b) harness, the splitting-loss validation, examples — keep
// asking for the same handful of (Config, stages) pairs. Each pair is
// therefore propagated once per process and served from this cache
// afterwards.

// simKey identifies one simulation: Config is a flat struct of scalars, so
// it is directly usable as a map key.
type simKey struct {
	cfg    Config
	stages int
}

var (
	simMu    sync.Mutex
	simCache = map[simKey]Result{}

	// Hit/miss tallies are process-global like the cache itself; they are
	// read by CacheCounters and folded into obs counter snapshots by
	// callers that want per-run deltas.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// simDurations tallies the wall-clock of every successful uncached
	// propagation into a process-global latency histogram. Like the
	// hit/miss counters it is cumulative; flow runs snapshot before and
	// after and fold the Sub delta into their own tracer, so the FD-BPM
	// tail is attributable per run even though the solver has no tracer
	// handle of its own.
	simDurations = obs.NewHistogram("bpm/simulate", nil)
)

// CacheCounters returns the cumulative simulation-cache hit and miss counts
// for this process. Callers wanting per-run numbers snapshot before and
// after and subtract.
func CacheCounters() (hits, misses int64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// SimDurations snapshots the process-global histogram of uncached FD-BPM
// propagation wall-clocks. Callers wanting per-run distributions snapshot
// before and after and Sub.
func SimDurations() obs.HistogramSnapshot {
	return simDurations.Snapshot()
}

// recordSimDuration feeds the global propagation histogram; kept out of
// line so both the cached and uncached entry points tally identically.
func recordSimDuration(start time.Time) {
	simDurations.RecordDuration(time.Since(start))
}

// simCached returns the memoised result for (cfg, stages), running
// SimulateUncachedContext on the first request. Concurrent first requests
// for the same key may both propagate; the computation is deterministic, so
// either result is the same. A cancelled propagation is never cached. The
// Result's slices are shared with the cache entry — a hit is allocation-free
// — so callers must treat ArmPowers and PerArmLossDB as immutable (every
// in-repo caller only reads them).
func simCached(ctx context.Context, cfg Config, stages int) (Result, error) {
	key := simKey{cfg: cfg, stages: stages}
	simMu.Lock()
	res, ok := simCache[key]
	simMu.Unlock()
	if ok {
		cacheHits.Add(1)
		return res, nil
	}
	cacheMisses.Add(1)
	res, err := SimulateUncachedContext(ctx, cfg, stages)
	if err != nil {
		return Result{}, err
	}
	simMu.Lock()
	simCache[key] = res
	simMu.Unlock()
	return res, nil
}

// ResetSimulationCache drops every memoised simulation (used by tests and
// benchmarks that need to measure the uncached path).
func ResetSimulationCache() {
	simMu.Lock()
	simCache = map[simKey]Result{}
	simMu.Unlock()
}
