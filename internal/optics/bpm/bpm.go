// Package bpm is a 2-D scalar finite-difference beam-propagation method
// (FD-BPM) used to reproduce the paper's Fig. 3(b): the simulated power
// distribution of cascaded 50-50 Y-branch splitters, which validates the
// 10·log10(n_s) splitting-loss model the router uses.
//
// The solver integrates the paraxial (Fresnel) wave equation
//
//	∂E/∂z = (i / 2·k·n0) · (∂²E/∂x² + k²·(n(x,z)² − n0²)·E)
//
// with a Crank–Nicolson scheme (complex tridiagonal solve per step) and a
// quadratic absorbing boundary. Units are micrometres.
package bpm

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"
)

// Config sets the numerical and material parameters.
type Config struct {
	// WavelengthUM is the vacuum wavelength (1.55 µm for on-chip optics).
	WavelengthUM float64
	// NCore and NClad are the core and cladding refractive indices. Low
	// contrast keeps the paraxial approximation accurate.
	NCore, NClad float64
	// CoreWidthUM is the waveguide core width.
	CoreWidthUM float64
	// WindowUM is the full transverse window width.
	WindowUM float64
	// NX is the number of transverse grid points.
	NX int
	// StepUM is the longitudinal step Δz.
	StepUM float64
	// AbsorberUM is the absorbing boundary thickness.
	AbsorberUM float64
	// AbsorberStrength scales the per-step boundary damping.
	AbsorberStrength float64
}

// DefaultConfig returns a configuration suitable for the Y-branch studies.
func DefaultConfig() Config {
	return Config{
		WavelengthUM:     1.55,
		NCore:            1.465,
		NClad:            1.445,
		CoreWidthUM:      4.0,
		WindowUM:         80.0,
		NX:               640,
		StepUM:           0.5,
		AbsorberUM:       8.0,
		AbsorberStrength: 0.08,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.WavelengthUM <= 0:
		return errors.New("bpm: wavelength must be positive")
	case c.NCore <= c.NClad:
		return errors.New("bpm: core index must exceed cladding index")
	case c.NClad <= 0:
		return errors.New("bpm: cladding index must be positive")
	case c.CoreWidthUM <= 0:
		return errors.New("bpm: core width must be positive")
	case c.WindowUM <= 4*c.CoreWidthUM:
		return errors.New("bpm: window too narrow")
	case c.NX < 16:
		return errors.New("bpm: too few grid points")
	case c.StepUM <= 0:
		return errors.New("bpm: step must be positive")
	case c.AbsorberUM < 0 || c.AbsorberStrength < 0:
		return errors.New("bpm: absorber parameters must be non-negative")
	}
	return nil
}

// dx returns the transverse grid pitch.
func (c Config) dx() float64 { return c.WindowUM / float64(c.NX-1) }

// x returns the coordinate of grid point i, centred on zero.
func (c Config) x(i int) float64 { return -c.WindowUM/2 + float64(i)*c.dx() }

// IndexProfile supplies the refractive index at (x, z).
type IndexProfile interface {
	Index(xUM, zUM float64) float64
}

// ZInvariant is an optional IndexProfile extension: profiles that can
// report z-invariance over a longitudinal range let Propagate reuse the
// discretised potentials instead of re-sampling Index at every step.
type ZInvariant interface {
	// ZInvariantOver reports whether Index(x, z) is constant in z for every
	// x over the closed range [z0UM, z1UM].
	ZInvariantOver(z0UM, z1UM float64) bool
}

// Field is the complex transverse field envelope at the current z.
type Field struct {
	cfg Config
	E   []complex128
	Z   float64

	// Crank–Nicolson scratch, allocated on the first propagation and reused
	// across steps and calls (a multi-segment route propagates the same
	// Field many times).
	diag1, diag2, rhs []complex128
	lower, upper, tri []complex128
	pot, potNext      []complex128
	damp              []float64
}

// NewGaussian launches a Gaussian beam centred at centerUM with the given
// 1/e field waist.
func NewGaussian(cfg Config, centerUM, waistUM float64) (*Field, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if waistUM <= 0 {
		return nil, errors.New("bpm: waist must be positive")
	}
	f := &Field{cfg: cfg, E: make([]complex128, cfg.NX)}
	for i := range f.E {
		d := (cfg.x(i) - centerUM) / waistUM
		f.E[i] = complex(math.Exp(-d*d), 0)
	}
	return f, nil
}

// Power returns the total guided power ∫|E|² dx.
func (f *Field) Power() float64 {
	var sum float64
	for _, e := range f.E {
		sum += real(e)*real(e) + imag(e)*imag(e)
	}
	return sum * f.cfg.dx()
}

// PowerIn returns the power within [loUM, hiUM].
func (f *Field) PowerIn(loUM, hiUM float64) float64 {
	var sum float64
	for i, e := range f.E {
		if x := f.cfg.x(i); x >= loUM && x <= hiUM {
			sum += real(e)*real(e) + imag(e)*imag(e)
		}
	}
	return sum * f.cfg.dx()
}

// Normalize scales the field to unit total power.
func (f *Field) Normalize() {
	p := f.Power()
	if p <= 0 {
		return
	}
	s := complex(1/math.Sqrt(p), 0)
	for i := range f.E {
		f.E[i] *= s
	}
}

// Propagate advances the field by lengthUM through the profile using
// Crank–Nicolson steps. It is PropagateContext with context.Background()
// — the propagation always runs to completion.
func (f *Field) Propagate(profile IndexProfile, lengthUM float64) {
	_ = f.PropagateContext(context.Background(), profile, lengthUM)
}

// PropagateContext is Propagate bounded by a context: cancellation is
// polled once per Crank–Nicolson step (the natural granularity — each step
// is one complex tridiagonal solve). On cancellation the field is left at
// the last completed step's plane (f.Z records how far it got) and
// ctx.Err() is returned; a propagation that completes before cancellation
// is bit-identical to Propagate.
func (f *Field) PropagateContext(ctx context.Context, profile IndexProfile, lengthUM float64) error {
	cfg := f.cfg
	n := cfg.NX
	k0 := 2 * math.Pi / cfg.WavelengthUM
	dx := cfg.dx()
	steps := int(math.Ceil(lengthUM / cfg.StepUM))
	dz := lengthUM / float64(steps)

	// Ĥ = (1/2k n0)(D2 + k²(n²−n0²)); CN: (I − i dz/2 Ĥ₂) E⁺ = (I + i dz/2 Ĥ₁) E.
	coef := complex(0, dz/2/(2*k0*cfg.NClad))
	off := coef * complex(1/(dx*dx), 0)

	f.growScratch(n)
	diag1, diag2, rhs := f.diag1, f.diag2, f.rhs
	lower, upper, scratch := f.lower, f.upper, f.tri

	// The off-diagonal bands depend only on this call's step size, not on z:
	// fill them once per propagation.
	for i := 0; i < n; i++ {
		lower[i] = -off
		upper[i] = -off
	}
	lower[0] = 0
	upper[n-1] = 0

	damp := f.absorberMask()

	// The potential at a step's entry plane equals the previous step's exit
	// plane, so one sampled array is carried across steps (pot) and only
	// the exit plane is re-sampled (potNext) — and not even that when the
	// profile declares itself z-invariant over the step.
	inv, hasInv := profile.(ZInvariant)
	fillPot := func(z float64, dst []complex128) {
		for i := 0; i < n; i++ {
			dst[i] = potential(profile.Index(cfg.x(i), z), cfg, k0, dx)
		}
	}
	pot, potNext := f.pot, f.potNext
	fillPot(f.Z, pot)

	for s := 0; s < steps; s++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		z1 := f.Z
		z2 := f.Z + dz
		if hasInv && inv.ZInvariantOver(z1, z2) {
			copy(potNext, pot)
		} else {
			fillPot(z2, potNext)
		}
		for i := 0; i < n; i++ {
			diag1[i] = 1 + coef*pot[i]
			diag2[i] = 1 - coef*potNext[i]
		}
		// rhs = (I + i dz/2 Ĥ₁) E with Dirichlet edges.
		for i := 0; i < n; i++ {
			v := diag1[i] * f.E[i]
			if i > 0 {
				v += off * f.E[i-1]
			}
			if i < n-1 {
				v += off * f.E[i+1]
			}
			rhs[i] = v
		}
		solveTridiag(lower, diag2, upper, rhs, f.E, scratch)
		for i := 0; i < n; i++ {
			f.E[i] *= complex(damp[i], 0)
		}
		f.Z = z2
		pot, potNext = potNext, pot
	}
	return nil
}

// potential returns the tridiagonal main-diagonal contribution of Ĥ at one
// point: −2/dx² + k²(n² − n0²).
func potential(nIdx float64, cfg Config, k0, dx float64) complex128 {
	return complex(-2/(dx*dx)+k0*k0*(nIdx*nIdx-cfg.NClad*cfg.NClad), 0)
}

// growScratch sizes the Crank–Nicolson scratch arrays for an n-point grid.
// Every array is fully written before it is read, so reuse needs no zeroing.
func (f *Field) growScratch(n int) {
	if len(f.diag1) == n {
		return
	}
	f.diag1 = make([]complex128, n)
	f.diag2 = make([]complex128, n)
	f.rhs = make([]complex128, n)
	f.lower = make([]complex128, n)
	f.upper = make([]complex128, n)
	f.tri = make([]complex128, n)
	f.pot = make([]complex128, n)
	f.potNext = make([]complex128, n)
}

// absorberMask returns the per-step boundary damping factors, computed once
// per Field (the mask depends only on the immutable Config).
func (f *Field) absorberMask() []float64 {
	cfg := f.cfg
	if len(f.damp) == cfg.NX {
		return f.damp
	}
	mask := make([]float64, cfg.NX)
	for i := range mask {
		mask[i] = 1
		x := cfg.x(i)
		edge := cfg.WindowUM / 2
		d := math.Min(edge-x, x+edge)
		if d < cfg.AbsorberUM && cfg.AbsorberUM > 0 {
			t := (cfg.AbsorberUM - d) / cfg.AbsorberUM
			mask[i] = math.Exp(-cfg.AbsorberStrength * t * t)
		}
	}
	f.damp = mask
	return mask
}

// solveTridiag solves a complex tridiagonal system with the Thomas
// algorithm: lower/diag/upper are the three bands, out receives the result.
func solveTridiag(lower, diag, upper, rhs, out, scratch []complex128) {
	n := len(diag)
	scratch[0] = upper[0] / diag[0]
	out[0] = rhs[0] / diag[0]
	for i := 1; i < n; i++ {
		m := diag[i] - lower[i]*scratch[i-1]
		scratch[i] = upper[i] / m
		out[i] = (rhs[i] - lower[i]*out[i-1]) / m
	}
	for i := n - 2; i >= 0; i-- {
		out[i] -= scratch[i] * out[i+1]
	}
}

// FundamentalMode relaxes a launched Gaussian into the guide's fundamental
// mode by propagating through a straight section (radiation escapes into
// the absorber) and renormalising.
func FundamentalMode(cfg Config, centerUM float64) (*Field, error) {
	f, err := NewGaussian(cfg, centerUM, cfg.CoreWidthUM*0.7)
	if err != nil {
		return nil, err
	}
	f.Propagate(Straight{Cfg: cfg, CenterUM: centerUM}, 200)
	f.Normalize()
	f.Z = 0
	return f, nil
}

// Straight is a straight waveguide index profile.
type Straight struct {
	Cfg      Config
	CenterUM float64
}

// Index implements IndexProfile.
func (s Straight) Index(x, _ float64) float64 {
	if math.Abs(x-s.CenterUM) <= s.Cfg.CoreWidthUM/2 {
		return s.Cfg.NCore
	}
	return s.Cfg.NClad
}

// ZInvariantOver implements ZInvariant: a straight guide never varies in z.
func (s Straight) ZInvariantOver(_, _ float64) bool { return true }

// guidePath is one branch arm: a core centre moving linearly in z.
type guidePath struct {
	z0, z1 float64 // valid z range
	c0, c1 float64 // centre at z0 and z1
}

func (g guidePath) center(z float64) float64 {
	if z <= g.z0 {
		return g.c0
	}
	if z >= g.z1 {
		return g.c1
	}
	t := (z - g.z0) / (g.z1 - g.z0)
	return g.c0 + t*(g.c1-g.c0)
}

// Cascade is a tree of Y-branch splitters: Stages stages of simultaneous
// 1→2 splits. Stage k occupies z ∈ [k·StageLenUM, (k+1)·StageLenUM].
type Cascade struct {
	Cfg Config
	// Stages is the number of cascaded Y-branches along every path.
	Stages int
	// StageLenUM is the length of one branching stage.
	StageLenUM float64
	// SeparationsUM[k] is the +/- fork offset applied at stage k.
	SeparationsUM []float64

	paths []guidePath
}

// NewCascade builds an n-stage cascade with default geometry: a 600 µm
// stage length and fork offsets that keep all 2^n arms separated.
func NewCascade(cfg Config, stages int) (*Cascade, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if stages < 0 || stages > 3 {
		return nil, fmt.Errorf("bpm: %d stages outside supported range 0..3", stages)
	}
	seps := []float64{12, 5, 2.5}
	c := &Cascade{
		Cfg:           cfg,
		Stages:        stages,
		StageLenUM:    600,
		SeparationsUM: seps[:stages],
	}
	c.build()
	return c, nil
}

// build lays out the guide paths of every stage.
func (c *Cascade) build() {
	centres := []float64{0}
	c.paths = nil
	for k := 0; k < c.Stages; k++ {
		z0 := float64(k) * c.StageLenUM
		z1 := z0 + c.StageLenUM
		var next []float64
		for _, ctr := range centres {
			for _, sign := range []float64{-1, 1} {
				target := ctr + sign*c.SeparationsUM[k]
				c.paths = append(c.paths, guidePath{z0: z0, z1: z1, c0: ctr, c1: target})
				next = append(next, target)
			}
		}
		centres = next
	}
	// Output runway: straight continuations of the final arms.
	z0 := float64(c.Stages) * c.StageLenUM
	for _, ctr := range centres {
		c.paths = append(c.paths, guidePath{z0: z0, z1: z0 + c.StageLenUM, c0: ctr, c1: ctr})
	}
	if c.Stages == 0 {
		c.paths = append(c.paths, guidePath{z0: 0, z1: c.StageLenUM, c0: 0, c1: 0})
	}
}

// TotalLengthUM returns the full device length including the runway.
func (c *Cascade) TotalLengthUM() float64 {
	return float64(c.Stages+1) * c.StageLenUM
}

// ArmCentersUM returns the output arm centres.
func (c *Cascade) ArmCentersUM() []float64 {
	centres := []float64{0}
	for k := 0; k < c.Stages; k++ {
		var next []float64
		for _, ctr := range centres {
			next = append(next, ctr-c.SeparationsUM[k], ctr+c.SeparationsUM[k])
		}
		centres = next
	}
	return centres
}

// Index implements IndexProfile: core wherever any active arm covers x.
func (c *Cascade) Index(x, z float64) float64 {
	half := c.Cfg.CoreWidthUM / 2
	for _, g := range c.paths {
		if z < g.z0-1e-9 || z > g.z1+1e-9 {
			continue
		}
		if math.Abs(x-g.center(z)) <= half {
			return c.Cfg.NCore
		}
	}
	return c.Cfg.NClad
}

// ZInvariantOver implements ZInvariant: the profile is constant in z over
// [z0, z1] when every arm active somewhere in the range is straight
// (c0 == c1) — true throughout the output runway, which is a third to a
// quarter of the device length.
func (c *Cascade) ZInvariantOver(z0, z1 float64) bool {
	for _, g := range c.paths {
		if z1 < g.z0-1e-9 || z0 > g.z1+1e-9 {
			continue
		}
		if g.c0 != g.c1 {
			return false
		}
	}
	return true
}

// Result summarises a cascade simulation (the paper's Fig. 3(b)).
type Result struct {
	// ArmPowers holds each output arm's power, input-normalised.
	ArmPowers []float64
	// TotalOut is the summed guided output power (1 − radiation loss).
	TotalOut float64
	// PerArmLossDB is each arm's loss relative to the input.
	PerArmLossDB []float64
	// IdealPerArmLossDB is the 10·log10(2)·stages model value.
	IdealPerArmLossDB float64
}

// Simulate returns the cascade simulation result for (cfg, stages),
// propagating at most once per process: results are memoised in a
// package-level cache keyed by the full numerical configuration and the
// stage count (see cache.go). Use SimulateUncached to force a propagation.
func Simulate(cfg Config, stages int) (Result, error) {
	return SimulateContext(context.Background(), cfg, stages)
}

// SimulateContext is Simulate bounded by a context. A cache hit returns
// immediately regardless of the context's state; a miss propagates under
// ctx and, on cancellation, returns ctx.Err() without caching the partial
// field — the next call re-propagates from scratch.
func SimulateContext(ctx context.Context, cfg Config, stages int) (Result, error) {
	return simCached(ctx, cfg, stages)
}

// SimulateUncached runs the fundamental mode through the cascade and
// measures the output power split, bypassing the process-wide cache.
func SimulateUncached(cfg Config, stages int) (Result, error) {
	return SimulateUncachedContext(context.Background(), cfg, stages)
}

// SimulateUncachedContext is SimulateUncached bounded by a context; the
// propagation polls ctx once per Crank–Nicolson step and returns ctx.Err()
// on cancellation.
func SimulateUncachedContext(ctx context.Context, cfg Config, stages int) (Result, error) {
	start := time.Now()
	cas, err := NewCascade(cfg, stages)
	if err != nil {
		return Result{}, err
	}
	f, err := FundamentalMode(cfg, 0)
	if err != nil {
		return Result{}, err
	}
	if err := f.PropagateContext(ctx, cas, cas.TotalLengthUM()); err != nil {
		return Result{}, err
	}

	centres := cas.ArmCentersUM()
	res := Result{IdealPerArmLossDB: float64(stages) * 10 * math.Log10(2)}
	for _, ctr := range centres {
		w := cfg.CoreWidthUM * 1.75
		p := f.PowerIn(ctr-w, ctr+w)
		res.ArmPowers = append(res.ArmPowers, p)
		res.TotalOut += p
		if p > 0 {
			res.PerArmLossDB = append(res.PerArmLossDB, -10*math.Log10(p))
		} else {
			res.PerArmLossDB = append(res.PerArmLossDB, math.Inf(1))
		}
	}
	recordSimDuration(start)
	return res, nil
}
