package bpm

import (
	"math"
	"testing"
)

// hideInvariance wraps a profile so Propagate cannot see its ZInvariant
// implementation, forcing the full per-step Index resampling.
type hideInvariance struct{ p IndexProfile }

func (h hideInvariance) Index(x, z float64) float64 { return h.p.Index(x, z) }

// TestPropagateInvarianceBitIdentical checks the z-invariant potential
// reuse is exact: propagating through a cascade with and without the
// ZInvariant fast path must give bit-identical fields.
func TestPropagateInvarianceBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NX = 200
	cfg.WindowUM = 40
	cas, err := NewCascade(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	launch := func() *Field {
		f, err := NewGaussian(cfg, 0, cfg.CoreWidthUM*0.7)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	fast := launch()
	fast.Propagate(cas, cas.TotalLengthUM())
	slow := launch()
	slow.Propagate(hideInvariance{p: cas}, cas.TotalLengthUM())
	for i := range fast.E {
		if fast.E[i] != slow.E[i] {
			t.Fatalf("field differs at %d: %v vs %v", i, fast.E[i], slow.E[i])
		}
	}
}

func TestCascadeZInvariantOver(t *testing.T) {
	cfg := DefaultConfig()
	cas, err := NewCascade(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Branching stages taper, so they are not invariant.
	if cas.ZInvariantOver(10, 11) {
		t.Error("taper stage reported z-invariant")
	}
	// The output runway is straight arms only.
	z0 := float64(cas.Stages)*cas.StageLenUM + 1
	if !cas.ZInvariantOver(z0, z0+1) {
		t.Error("runway not reported z-invariant")
	}
	if !(Straight{Cfg: cfg}).ZInvariantOver(0, 1e9) {
		t.Error("straight guide not z-invariant")
	}
}

// TestSimulateCacheMatchesUncached checks the process-wide memoization is
// transparent: cached results equal a fresh propagation exactly.
func TestSimulateCacheMatchesUncached(t *testing.T) {
	ResetSimulationCache()
	cfg := DefaultConfig()
	cfg.NX = 160
	cfg.WindowUM = 40

	fresh, err := SimulateUncached(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Simulate(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Simulate(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh.ArmPowers {
		if fresh.ArmPowers[i] != first.ArmPowers[i] || first.ArmPowers[i] != second.ArmPowers[i] {
			t.Fatalf("arm %d: cached %v/%v vs fresh %v",
				i, first.ArmPowers[i], second.ArmPowers[i], fresh.ArmPowers[i])
		}
	}
	if fresh.TotalOut != first.TotalOut || math.IsNaN(first.TotalOut) {
		t.Fatalf("TotalOut cached %v vs fresh %v", first.TotalOut, fresh.TotalOut)
	}
}

// TestSimulateCacheHitZeroAlloc pins the hit path at zero allocations: the
// cached Result's slices are handed out shared (and documented immutable)
// precisely so steady-state callers pay nothing per lookup.
func TestSimulateCacheHitZeroAlloc(t *testing.T) {
	ResetSimulationCache()
	cfg := DefaultConfig()
	cfg.NX = 160
	cfg.WindowUM = 40
	if _, err := Simulate(cfg, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := Simulate(cfg, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %v per call, want 0", allocs)
	}
}
