// Package optics models the on-chip photonic devices used by OPERON: the
// WDM waveguide infrastructure, modulators and detectors at the EO/OE
// boundaries, and the optical loss model of the paper's Eq. (2)
//
//	loss = α·WL + β·n_x + 10·Σ log10(n_s)   [dB]
//
// together with the optical power model of Eq. (1)
//
//	p_o = p_mod·n_mod + p_det·n_det.
//
// Device energies are per-bit (pJ/bit); multiplying by the bit rate turns
// them into mW. The default parameter values are the ones used in the
// paper's evaluation (α, β from Boos et al. [5]; modulator/detector energies
// from Sun et al. [2]; WDM capacity 32 from GLOW [4]).
package optics

import (
	"errors"
	"fmt"
	"math"
)

// Library collects the optical device and loss parameters. The zero value is
// not useful; obtain a populated Library from DefaultLibrary and override
// fields as needed.
type Library struct {
	// AlphaDBPerCM is the waveguide propagation loss α in dB/cm.
	AlphaDBPerCM float64
	// BetaDBPerCrossing is the waveguide crossing loss β in dB per crossing.
	BetaDBPerCrossing float64
	// ModulatorPJPerBit is the EO modulator energy p_mod in pJ/bit.
	ModulatorPJPerBit float64
	// DetectorPJPerBit is the OE detector (receiver) energy p_det in pJ/bit.
	DetectorPJPerBit float64
	// BitRateGHz is the per-channel signalling rate f in Gbit/s, used to
	// convert pJ/bit device energies into mW.
	BitRateGHz float64
	// WDMCapacity is the number of wavelength channels one waveguide carries.
	WDMCapacity int
	// MaxLossDB is the detection budget l_m: the maximum tolerable
	// source-to-sink optical loss in dB.
	MaxLossDB float64
	// CrosstalkMinDistCM is dis_l: the minimum spacing between two parallel
	// WDM waveguides, below which crosstalk is assumed.
	CrosstalkMinDistCM float64
	// AssignMaxDistCM is dis_u: the maximum displacement allowed when
	// assigning a connection to a shared WDM waveguide.
	AssignMaxDistCM float64
}

// DefaultLibrary returns the parameter set used in the paper's experiments.
func DefaultLibrary() Library {
	return Library{
		AlphaDBPerCM:       1.5,   // [5]
		BetaDBPerCrossing:  0.52,  // [5]
		ModulatorPJPerBit:  0.511, // [2]
		DetectorPJPerBit:   0.374, // [2]
		BitRateGHz:         1.0,
		WDMCapacity:        32, // [4]
		MaxLossDB:          20.0,
		CrosstalkMinDistCM: 0.0005, // 5 µm
		AssignMaxDistCM:    0.05,   // 500 µm
	}
}

// Validate reports whether the library parameters are physically meaningful.
func (l Library) Validate() error {
	switch {
	case l.AlphaDBPerCM < 0:
		return errors.New("optics: negative propagation loss α")
	case l.BetaDBPerCrossing < 0:
		return errors.New("optics: negative crossing loss β")
	case l.ModulatorPJPerBit < 0 || l.DetectorPJPerBit < 0:
		return errors.New("optics: negative device energy")
	case l.BitRateGHz <= 0:
		return errors.New("optics: bit rate must be positive")
	case l.WDMCapacity <= 0:
		return errors.New("optics: WDM capacity must be positive")
	case l.MaxLossDB <= 0:
		return errors.New("optics: loss budget l_m must be positive")
	case l.CrosstalkMinDistCM < 0 || l.AssignMaxDistCM < 0:
		return errors.New("optics: negative WDM distance bound")
	case l.CrosstalkMinDistCM > l.AssignMaxDistCM:
		return errors.New("optics: dis_l exceeds dis_u")
	}
	return nil
}

// Variation models the physical-variation sensitivity of the optical
// devices — the resilience concern of the optical-NoC literature the paper
// builds on (GLOW's thermal reliability, Mohamed et al.'s variation-aware
// management). Temperature drift raises waveguide loss (thermo-optic
// detuning of resonant devices re-expressed as an effective per-cm excess)
// and erodes the receiver's sensitivity margin.
type Variation struct {
	// AlphaDriftDBPerCMPerC is the extra propagation loss per cm per °C of
	// deviation from the calibration temperature.
	AlphaDriftDBPerCMPerC float64
	// BudgetDriftDBPerC is the detection-budget erosion per °C (receiver
	// sensitivity plus laser wall-plug degradation).
	BudgetDriftDBPerC float64
}

// DefaultVariation returns a conservative silicon-photonics drift model.
func DefaultVariation() Variation {
	return Variation{
		AlphaDriftDBPerCMPerC: 0.01,
		BudgetDriftDBPerC:     0.05,
	}
}

// AtTemperature returns the library re-derated for a |deltaC| degree
// deviation from the calibration point under the variation model: α grows
// and the loss budget l_m shrinks (never below 1 dB). Routing with a
// derated library buys variation resilience at a power cost — the trade
// the robustness experiment sweeps.
func (l Library) AtTemperature(v Variation, deltaC float64) Library {
	if deltaC < 0 {
		deltaC = -deltaC
	}
	out := l
	out.AlphaDBPerCM += v.AlphaDriftDBPerCMPerC * deltaC
	out.MaxLossDB -= v.BudgetDriftDBPerC * deltaC
	if out.MaxLossDB < 1 {
		out.MaxLossDB = 1
	}
	return out
}

// SplittingLossDB returns the ideal splitting loss in dB incurred when one
// input splits into arms output arms: 10·log10(arms). A pass-through
// (arms <= 1) splits nothing and loses nothing.
func SplittingLossDB(arms int) float64 {
	if arms <= 1 {
		return 0
	}
	return 10 * math.Log10(float64(arms))
}

// CascadeSplittingLossDB returns the accumulated splitting loss of a chain
// of splitters, 10·Σ log10(n_s), per the paper's Eq. (2).
func CascadeSplittingLossDB(armCounts []int) float64 {
	var total float64
	for _, n := range armCounts {
		total += SplittingLossDB(n)
	}
	return total
}

// PropagationLossDB returns α·WL for a waveguide of the given length.
func (l Library) PropagationLossDB(lengthCM float64) float64 {
	return l.AlphaDBPerCM * lengthCM
}

// CrossingLossDB returns β·n_x for the given number of waveguide crossings.
func (l Library) CrossingLossDB(crossings int) float64 {
	return l.BetaDBPerCrossing * float64(crossings)
}

// PathLossDB evaluates Eq. (2) for one source-to-sink path: propagation over
// lengthCM, crossings waveguide crossings, and the splitter cascade armCounts
// encountered along the path.
func (l Library) PathLossDB(lengthCM float64, crossings int, armCounts []int) float64 {
	return l.PropagationLossDB(lengthCM) + l.CrossingLossDB(crossings) +
		CascadeSplittingLossDB(armCounts)
}

// Detectable reports whether a path with the given loss satisfies the
// detection constraint loss <= l_m.
func (l Library) Detectable(lossDB float64) bool {
	return lossDB <= l.MaxLossDB+1e-9
}

// ConversionPowerMW evaluates Eq. (1) for a single wavelength channel:
// the power in mW of nMod modulators and nDet detectors running at the
// library bit rate. Multiply by the channel (bit) count for a full bundle.
func (l Library) ConversionPowerMW(nMod, nDet int) float64 {
	pj := l.ModulatorPJPerBit*float64(nMod) + l.DetectorPJPerBit*float64(nDet)
	// pJ/bit × Gbit/s = mW.
	return pj * l.BitRateGHz
}

// FractionRemaining converts a loss in dB to the fraction of optical power
// remaining, 10^(−loss/10).
func FractionRemaining(lossDB float64) float64 {
	return math.Pow(10, -lossDB/10)
}

// LossDBFromFraction converts a power fraction to loss in dB,
// −10·log10(frac). It returns +Inf for a non-positive fraction.
func LossDBFromFraction(frac float64) float64 {
	if frac <= 0 {
		return math.Inf(1)
	}
	return -10 * math.Log10(frac)
}

// SplitterTree describes an ideal 1-to-N splitter cascade built from
// ns-way splitters, used to budget the worst-case splitting loss of a
// hyper-net branch before routing.
type SplitterTree struct {
	Fanout int // number of leaf outputs
	Arms   int // arms per splitter stage (>= 2)
}

// Stages returns the number of cascaded splitter stages needed to reach the
// fanout: ⌈log_arms(fanout)⌉.
func (t SplitterTree) Stages() int {
	if t.Fanout <= 1 {
		return 0
	}
	arms := t.Arms
	if arms < 2 {
		arms = 2
	}
	stages := 0
	reach := 1
	for reach < t.Fanout {
		reach *= arms
		stages++
	}
	return stages
}

// WorstPathLossDB returns the splitting loss along the deepest root-to-leaf
// path of the cascade. For an ideal cascade this is stages · 10·log10(arms),
// which equals 10·log10(fanout) when fanout is an exact power of arms.
func (t SplitterTree) WorstPathLossDB() float64 {
	arms := t.Arms
	if arms < 2 {
		arms = 2
	}
	return float64(t.Stages()) * SplittingLossDB(arms)
}

// String implements fmt.Stringer.
func (t SplitterTree) String() string {
	return fmt.Sprintf("splitter-tree{fanout=%d arms=%d stages=%d}", t.Fanout, t.Arms, t.Stages())
}
