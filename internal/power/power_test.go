package power

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"operon/internal/geom"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultElectricalModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	muts := []func(*ElectricalModel){
		func(m *ElectricalModel) { m.SwitchingFactor = 0 },
		func(m *ElectricalModel) { m.SwitchingFactor = 1.5 },
		func(m *ElectricalModel) { m.FrequencyGHz = -1 },
		func(m *ElectricalModel) { m.VoltageV = 0 },
		func(m *ElectricalModel) { m.UnitCapPFPerCM = 0 },
	}
	for i, mut := range muts {
		m := DefaultElectricalModel()
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestWirePower(t *testing.T) {
	m := ElectricalModel{SwitchingFactor: 0.5, FrequencyGHz: 2, VoltageV: 1, UnitCapPFPerCM: 2}
	// 0.5 · 2 GHz · 1 V² · 2 pF/cm · 3 cm = 6 mW.
	if got := m.WirePowerMW(3); math.Abs(got-6) > 1e-12 {
		t.Errorf("WirePowerMW = %v, want 6", got)
	}
	if got := m.BusPowerMW(3, 4); math.Abs(got-24) > 1e-12 {
		t.Errorf("BusPowerMW = %v, want 24", got)
	}
}

func TestWirePowerLinearity(t *testing.T) {
	m := DefaultElectricalModel()
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 10))
		b = math.Abs(math.Mod(b, 10))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		sum := m.WirePowerMW(a) + m.WirePowerMW(b)
		return math.Abs(m.WirePowerMW(a+b)-sum) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func die() geom.Rect { return geom.Rect{Hi: geom.Point{X: 4, Y: 4}} }

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(die(), 0, 4); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := NewGrid(geom.Rect{}, 4, 4); err == nil {
		t.Error("zero-area die accepted")
	}
}

func TestGridPointDeposit(t *testing.T) {
	g, err := NewGrid(die(), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g.AddPoint(geom.Point{X: 0.5, Y: 0.5}, 2) // cell (0,0)
	g.AddPoint(geom.Point{X: 3.9, Y: 3.9}, 3) // cell (3,3)
	g.AddPoint(geom.Point{X: -1, Y: 99}, 1)   // clamped to (3,0)
	if g.Cell[0][0] != 2 || g.Cell[3][3] != 3 || g.Cell[3][0] != 1 {
		t.Fatalf("deposits wrong: %+v", g.Cell)
	}
	if math.Abs(g.Total()-6) > 1e-12 {
		t.Errorf("Total = %v, want 6", g.Total())
	}
	if g.Max() != 3 {
		t.Errorf("Max = %v, want 3", g.Max())
	}
}

func TestGridSegmentConservesPower(t *testing.T) {
	g, _ := NewGrid(die(), 8, 8)
	g.AddSegment(geom.Segment{A: geom.Point{X: 0.2, Y: 0.2}, B: geom.Point{X: 3.8, Y: 3.1}}, 5)
	if math.Abs(g.Total()-5) > 1e-9 {
		t.Errorf("segment deposit total = %v, want 5", g.Total())
	}
}

func TestGridSegmentSpreads(t *testing.T) {
	g, _ := NewGrid(die(), 1, 4)
	// Horizontal wire across the full die: all 4 columns should receive power.
	g.AddSegment(geom.Segment{A: geom.Point{X: 0.1, Y: 2}, B: geom.Point{X: 3.9, Y: 2}}, 4)
	for c := 0; c < 4; c++ {
		if g.Cell[0][c] <= 0 {
			t.Errorf("column %d received no power", c)
		}
	}
}

func TestGridDegenerateSegment(t *testing.T) {
	g, _ := NewGrid(die(), 4, 4)
	g.AddSegment(geom.Segment{A: geom.Point{X: 1, Y: 1}, B: geom.Point{X: 1, Y: 1}}, 7)
	if math.Abs(g.Total()-7) > 1e-12 {
		t.Errorf("degenerate segment total = %v", g.Total())
	}
}

func TestNormalized(t *testing.T) {
	g, _ := NewGrid(die(), 2, 2)
	g.Cell[0][0] = 2
	g.Cell[1][1] = 8
	n := g.Normalized()
	if n.Cell[1][1] != 1 || math.Abs(n.Cell[0][0]-0.25) > 1e-12 {
		t.Fatalf("Normalized = %+v", n.Cell)
	}
	// Zero grid normalises to zero, not NaN.
	z, _ := NewGrid(die(), 2, 2)
	nz := z.Normalized()
	if nz.Max() != 0 {
		t.Errorf("zero grid normalised to %v", nz.Max())
	}
}

func TestRender(t *testing.T) {
	g, _ := NewGrid(die(), 2, 3)
	g.Cell[1][2] = 10
	out := g.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 3 {
		t.Fatalf("Render shape wrong: %q", out)
	}
	// Hottest cell renders as the densest ramp character '@', and it is in
	// the top row because row 1 is rendered first.
	if lines[0][2] != '@' {
		t.Errorf("hot cell rendered as %q", lines[0][2])
	}
	if lines[1][0] != ' ' {
		t.Errorf("cold cell rendered as %q", lines[1][0])
	}
}

func TestCSV(t *testing.T) {
	g, _ := NewGrid(die(), 2, 2)
	g.Cell[0][1] = 1.5
	out := g.CSV()
	if !strings.Contains(out, "0,1.5") {
		t.Errorf("CSV missing value: %q", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("CSV rows = %d, want 2", lines)
	}
}
