// Package power models electrical interconnect power (paper Eq. 6) and the
// per-layer power-density hotspot grids of Fig. 9.
//
// Electrical dynamic power for one wire is
//
//	p_e = γ · f · V² · Cap,   Cap = UnitCapPFPerCM · wirelength
//
// with γ the switching factor, f the system frequency, V the supply voltage
// and Cap the wire capacitance proportional to the (rectilinear) wirelength.
// Powers are reported in mW for consistency with the optical model.
package power

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"operon/internal/geom"
)

// ElectricalModel holds the Eq. (6) parameters.
type ElectricalModel struct {
	// SwitchingFactor is γ, the signal activity factor.
	SwitchingFactor float64
	// FrequencyGHz is the system frequency f in GHz.
	FrequencyGHz float64
	// VoltageV is the supply voltage V in volts.
	VoltageV float64
	// UnitCapPFPerCM is the wire capacitance per centimetre, in pF/cm.
	UnitCapPFPerCM float64
}

// DefaultElectricalModel returns parameters representative of the paper's
// performance-critical global signals at centimetre scale. They are the
// calibration knob for the Electrical/Optical power ratio (paper: ≈3.565).
// The unit capacitance is an effective value for repeated global wires
// (wire plus repeater load) on the up-scaled centimetre-size die.
func DefaultElectricalModel() ElectricalModel {
	return ElectricalModel{
		SwitchingFactor: 0.5,
		FrequencyGHz:    1.0,
		VoltageV:        1.0,
		UnitCapPFPerCM:  9.0,
	}
}

// Validate reports whether the model parameters are physically meaningful.
func (m ElectricalModel) Validate() error {
	switch {
	case m.SwitchingFactor <= 0 || m.SwitchingFactor > 1:
		return errors.New("power: switching factor must be in (0,1]")
	case m.FrequencyGHz <= 0:
		return errors.New("power: frequency must be positive")
	case m.VoltageV <= 0:
		return errors.New("power: voltage must be positive")
	case m.UnitCapPFPerCM <= 0:
		return errors.New("power: unit capacitance must be positive")
	}
	return nil
}

// WirePowerMW returns the dynamic power in mW of a single wire of the given
// rectilinear length: γ · f · V² · c · WL. (GHz × pF × V² = mW.)
func (m ElectricalModel) WirePowerMW(lengthCM float64) float64 {
	return m.SwitchingFactor * m.FrequencyGHz * m.VoltageV * m.VoltageV *
		m.UnitCapPFPerCM * lengthCM
}

// BusPowerMW returns WirePowerMW scaled by the number of parallel bits.
func (m ElectricalModel) BusPowerMW(lengthCM float64, bits int) float64 {
	return m.WirePowerMW(lengthCM) * float64(bits)
}

// Grid is a 2-D power-density histogram over the die, used to render the
// hotspot maps of Fig. 9. Cells are indexed [row][col] with row 0 at the
// bottom (minimum Y).
type Grid struct {
	Die  geom.Rect
	Rows int
	Cols int
	Cell [][]float64
}

// NewGrid returns an empty grid over the die with the given resolution.
func NewGrid(die geom.Rect, rows, cols int) (*Grid, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("power: grid %dx%d must be positive", rows, cols)
	}
	if die.Width() <= 0 || die.Height() <= 0 {
		return nil, fmt.Errorf("power: die %v has no area", die)
	}
	g := &Grid{Die: die, Rows: rows, Cols: cols, Cell: make([][]float64, rows)}
	for r := range g.Cell {
		g.Cell[r] = make([]float64, cols)
	}
	return g, nil
}

// clampIndex maps a coordinate fraction to a valid cell index.
func clampIndex(frac float64, n int) int {
	i := int(frac * float64(n))
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// cellOf returns the (row, col) containing p, clamped to the die.
func (g *Grid) cellOf(p geom.Point) (int, int) {
	fr := (p.Y - g.Die.Lo.Y) / g.Die.Height()
	fc := (p.X - g.Die.Lo.X) / g.Die.Width()
	return clampIndex(fr, g.Rows), clampIndex(fc, g.Cols)
}

// AddPoint deposits power at a single location (e.g. an EO/OE conversion
// site).
func (g *Grid) AddPoint(p geom.Point, mw float64) {
	r, c := g.cellOf(p)
	g.Cell[r][c] += mw
}

// AddSegment distributes power uniformly along a wire segment by sampling.
// The sample pitch adapts to the cell size so every traversed cell receives
// its share.
func (g *Grid) AddSegment(s geom.Segment, mw float64) {
	length := s.Length()
	if length <= geom.Eps {
		g.AddPoint(s.A, mw)
		return
	}
	pitch := math.Min(g.Die.Width()/float64(g.Cols), g.Die.Height()/float64(g.Rows)) / 2
	n := int(length/pitch) + 1
	share := mw / float64(n)
	for i := 0; i < n; i++ {
		t := (float64(i) + 0.5) / float64(n)
		p := geom.Point{
			X: s.A.X + t*(s.B.X-s.A.X),
			Y: s.A.Y + t*(s.B.Y-s.A.Y),
		}
		g.AddPoint(p, share)
	}
}

// Total returns the sum over all cells.
func (g *Grid) Total() float64 {
	var sum float64
	for _, row := range g.Cell {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// Max returns the hottest cell value.
func (g *Grid) Max() float64 {
	best := 0.0
	for _, row := range g.Cell {
		for _, v := range row {
			if v > best {
				best = v
			}
		}
	}
	return best
}

// Normalized returns a copy of the grid scaled so that the hottest cell is
// 1.0. An all-zero grid normalises to all zeros.
func (g *Grid) Normalized() *Grid {
	out, _ := NewGrid(g.Die, g.Rows, g.Cols)
	max := g.Max()
	if max == 0 {
		return out
	}
	for r := range g.Cell {
		for c := range g.Cell[r] {
			out.Cell[r][c] = g.Cell[r][c] / max
		}
	}
	return out
}

// Render draws the grid as an ASCII heat map, top row first, using a ramp
// of shading characters. It is the textual stand-in for the colour maps of
// Fig. 9.
func (g *Grid) Render() string {
	ramp := []byte(" .:-=+*#%@")
	max := g.Max()
	var b strings.Builder
	for r := g.Rows - 1; r >= 0; r-- {
		for c := 0; c < g.Cols; c++ {
			idx := 0
			if max > 0 {
				idx = int(g.Cell[r][c] / max * float64(len(ramp)-1))
				if idx >= len(ramp) {
					idx = len(ramp) - 1
				}
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV serialises the grid as comma-separated rows (bottom row first) for
// external plotting.
func (g *Grid) CSV() string {
	var b strings.Builder
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			if c > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%.6g", g.Cell[r][c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
