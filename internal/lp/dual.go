package lp

import "math"

// dualFeasible reports whether every nonbasic column's reduced cost under
// the problem objective is sign-compatible with the bound it rests at
// (rc >= 0 at lower, rc <= 0 at upper) — the precondition for dual simplex.
func (s *BoundedSolver) dualFeasible() bool {
	for r := 0; r < s.m; r++ {
		s.y[r] = s.c[s.basic[r]]
	}
	s.etas.btran(s.y)
	for j := 0; j < s.nTot; j++ {
		if s.pos[j] >= 0 || s.lo[j] == s.up[j] {
			continue
		}
		rc := s.c[j] - s.A.dot(s.y, j)
		if s.atUp[j] {
			if rc > dualTol {
				return false
			}
		} else if rc < -dualTol {
			return false
		}
	}
	return true
}

// dualSimplex restores primal feasibility from a dual-feasible basis —
// the warm-start path of branch and bound, where a child node re-solves
// the parent's optimal basis under tightened variable bounds. Each pivot
// drives the most-violating basic variable to its violated bound, choosing
// the entering column by the dual ratio test (minimum |rc|/|α|, preserving
// dual feasibility). Returns (Optimal, true) when primal feasible,
// (Infeasible, true) when a violated row admits no entering column (the
// Farkas certificate of an empty feasible region), (IterLimit, true) on
// budget exhaustion, or ok=false to bail to the cold primal path on
// numerical trouble.
func (s *BoundedSolver) dualSimplex() (Status, bool) {
	badPivots := 0
	for {
		if s.expired() {
			return IterLimit, true
		}
		// Leaving row: largest bound violation.
		leave := -1
		worst := bndTol
		above := false
		for r := 0; r < s.m; r++ {
			j := s.basic[r]
			if v := s.xB[r] - s.up[j]; v > worst {
				worst = v
				leave = r
				above = true
			}
			if v := s.lo[j] - s.xB[r]; v > worst {
				worst = v
				leave = r
				above = false
			}
		}
		if leave < 0 {
			return Optimal, true
		}
		lv := s.basic[leave]

		// rho = row `leave` of B⁻¹; y = simplex multipliers for rc.
		for r := 0; r < s.m; r++ {
			s.rho[r] = 0
			s.y[r] = s.c[s.basic[r]]
		}
		s.rho[leave] = 1
		s.etas.btran(s.rho)
		s.etas.btran(s.y)

		// Dual ratio test. delta orients the row so the leaving variable
		// moves toward its violated bound.
		delta := 1.0
		if !above {
			delta = -1
		}
		enter := -1
		bestRatio := math.Inf(1)
		for j := 0; j < s.nTot; j++ {
			if s.pos[j] >= 0 || s.lo[j] == s.up[j] {
				continue
			}
			alpha := s.A.dot(s.rho, j)
			da := delta * alpha
			var ok bool
			if s.atUp[j] {
				ok = da < -tol
			} else {
				ok = da > tol
			}
			if !ok {
				continue
			}
			rc := s.c[j] - s.A.dot(s.y, j)
			ratio := math.Abs(rc) / math.Abs(alpha)
			if s.stall >= blandAfter {
				// Bland: first eligible column.
				enter = j
				break
			}
			if ratio < bestRatio-tol || (ratio < bestRatio+tol && (enter < 0 || j < enter)) {
				bestRatio = ratio
				enter = j
			}
		}
		if enter < 0 {
			return Infeasible, true
		}

		d := s.dir
		for i := range d {
			d[i] = 0
		}
		s.A.scatter(d, enter, 1)
		s.etas.ftran(d)
		if math.Abs(d[leave]) < pivTol {
			// Disagreement between rho-based alpha and the FTRANed column:
			// refactorise and retry; bail if it persists.
			badPivots++
			if badPivots > 3 {
				return 0, false
			}
			if err := s.refactor(); err != nil {
				return 0, false
			}
			s.computeXB()
			continue
		}

		var bound float64
		if above {
			bound = s.up[lv]
		} else {
			bound = s.lo[lv]
		}
		tE := (s.xB[leave] - bound) / d[leave]
		for r := 0; r < s.m; r++ {
			if r != leave && d[r] != 0 {
				s.xB[r] -= tE * d[r]
			}
		}
		s.pos[lv] = -1
		s.atUp[lv] = above
		s.basic[leave] = int32(enter)
		s.pos[enter] = int32(leave)
		s.xB[leave] = s.valOf(enter) + tE
		// valOf(enter) above read the post-pivot state: enter is already
		// basic, but valOf only consults bounds and atUp, both unchanged.
		if !s.etas.push(d, int32(leave)) || s.etas.len() >= refactorEvery {
			if err := s.refactor(); err != nil {
				return 0, false
			}
			s.computeXB()
		}
		if math.Abs(tE) > tol {
			s.stall = 0
		} else {
			s.stall++
		}
	}
}
