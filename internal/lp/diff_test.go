package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomProblem generates a random LP whose shape matches the OPERON
// selection programmes: mixed senses, optional upper bounds, mostly
// bounded objectives.
func randomProblem(rng *rand.Rand) Problem {
	n := 1 + rng.Intn(8)
	m := 1 + rng.Intn(10)
	p := Problem{NumVars: n, Objective: make([]float64, n)}
	for i := range p.Objective {
		p.Objective[i] = rng.Float64()*6 - 2
	}
	withUpper := rng.Intn(2) == 0
	if withUpper {
		p.Upper = make([]float64, n)
		for i := range p.Upper {
			if rng.Intn(4) == 0 {
				p.Upper[i] = math.Inf(1)
			} else {
				p.Upper[i] = rng.Float64() * 4
			}
		}
	}
	// Box rows keep variables without native bounds from making the LP
	// unbounded in most trials (a few unbounded instances are fine — both
	// solvers must agree on the status).
	for i := 0; i < n; i++ {
		if rng.Intn(3) > 0 {
			p.Rows = append(p.Rows, Row{
				Terms: []Term{{Var: i, Coeff: 1}}, Sense: LE, RHS: 0.5 + rng.Float64()*4,
			})
		}
	}
	for k := 0; k < m; k++ {
		row := Row{RHS: rng.Float64()*4 - 1}
		switch rng.Intn(3) {
		case 0:
			row.Sense = LE
		case 1:
			row.Sense = GE
		default:
			row.Sense = EQ
			row.RHS = math.Abs(row.RHS)
		}
		terms := 1 + rng.Intn(n)
		for t := 0; t < terms; t++ {
			row.Terms = append(row.Terms, Term{
				Var: rng.Intn(n), Coeff: rng.Float64()*4 - 2,
			})
		}
		p.Rows = append(p.Rows, row)
	}
	return p
}

// TestRevisedMatchesDenseOracle solves ~200 random LPs with both engines
// and asserts matching status and objective. This is the differential
// oracle contract: lp.Solve (revised simplex) must agree with
// lp.SolveDense (two-phase tableau) on every instance.
func TestRevisedMatchesDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 220; trial++ {
		p := randomProblem(rng)
		got, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: revised: %v", trial, err)
		}
		want, err := SolveDense(p)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		if got.Status != want.Status {
			t.Fatalf("trial %d: status %v (revised) vs %v (dense)\nproblem: %+v",
				trial, got.Status, want.Status, p)
		}
		if got.Status != Optimal {
			continue
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Fatalf("trial %d: objective %v (revised) vs %v (dense)\nproblem: %+v",
				trial, got.Objective, want.Objective, p)
		}
		if !feasible(p, got.X) {
			t.Fatalf("trial %d: revised solution infeasible: %v", trial, got.X)
		}
		if p.Upper != nil {
			for i, u := range p.Upper {
				if got.X[i] > u+1e-6 {
					t.Fatalf("trial %d: x[%d]=%v above upper bound %v", trial, i, got.X[i], u)
				}
			}
		}
	}
}

// TestRevisedDeterministic pins that repeated solves of the same problem
// produce bit-identical solutions (deterministic pivot rules).
func TestRevisedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(rng)
		a, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if a.Status != b.Status || a.Objective != b.Objective {
			t.Fatalf("trial %d: nondeterministic: %v/%v vs %v/%v",
				trial, a.Status, a.Objective, b.Status, b.Objective)
		}
		for i := range a.X {
			if a.X[i] != b.X[i] {
				t.Fatalf("trial %d: X[%d] differs: %v vs %v", trial, i, a.X[i], b.X[i])
			}
		}
	}
}

// TestBoundedSolverWarmStartMatchesCold tightens bounds on an optimal basis
// and checks the dual-simplex warm start reaches the same objective as a
// cold solve under the same bounds.
func TestBoundedSolverWarmStartMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		p := randomProblem(rng)
		s, err := NewBoundedSolver(p)
		if err != nil {
			t.Fatal(err)
		}
		root, basis, err := s.SolveBounds(nil, nil, nil, Options{})
		if err != nil {
			t.Fatalf("trial %d: root: %v", trial, err)
		}
		if root.Status != Optimal {
			continue
		}
		// Fix a random variable to a random integer within its range —
		// the branch-and-bound child-node shape.
		v := rng.Intn(p.NumVars)
		val := math.Round(rng.Float64() * 2)
		lo := make([]float64, p.NumVars)
		up := make([]float64, p.NumVars)
		for i := range up {
			if p.Upper != nil {
				up[i] = p.Upper[i]
			} else {
				up[i] = math.Inf(1)
			}
		}
		lo[v], up[v] = val, val

		warm, _, err := s.SolveBounds(lo, up, basis, Options{})
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		s2, err := NewBoundedSolver(p)
		if err != nil {
			t.Fatal(err)
		}
		cold, _, err := s2.SolveBounds(lo, up, nil, Options{})
		if err != nil {
			t.Fatalf("trial %d: cold: %v", trial, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v vs cold %v (fix x%d=%v)\nproblem: %+v",
				trial, warm.Status, cold.Status, v, val, p)
		}
		if warm.Status == Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-6 {
			t.Fatalf("trial %d: warm objective %v vs cold %v (fix x%d=%v)",
				trial, warm.Objective, cold.Objective, v, val)
		}
	}
}

// TestUpperBoundsNative checks bounds are honoured without any rows.
func TestUpperBoundsNative(t *testing.T) {
	// max x + y with x <= 1.5, y <= 2 as native bounds, no rows.
	p := Problem{
		NumVars:   2,
		Objective: []float64{-1, -1},
		Upper:     []float64{1.5, 2},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.Objective-(-3.5)) > 1e-9 {
		t.Fatalf("got %v obj %v, want optimal -3.5", s.Status, s.Objective)
	}
	// The dense oracle materialises the same bounds as rows.
	d, err := SolveDense(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.Status != Optimal || math.Abs(d.Objective-(-3.5)) > 1e-9 {
		t.Fatalf("dense got %v obj %v, want optimal -3.5", d.Status, d.Objective)
	}
}

// TestFixedVariableBounds solves with lo == up (the B&B fixing shape).
func TestFixedVariableBounds(t *testing.T) {
	// min 3a + b s.t. a + b >= 2, with a fixed to 1: b = 1, obj 4.
	p := Problem{
		NumVars:   2,
		Objective: []float64{3, 1},
		Rows: []Row{
			{Terms: []Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}}, Sense: GE, RHS: 2},
		},
	}
	s, err := NewBoundedSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := s.SolveBounds([]float64{1, 0}, []float64{1, math.Inf(1)}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-4) > 1e-9 {
		t.Fatalf("got %v obj %v, want optimal 4", sol.Status, sol.Objective)
	}
	if math.Abs(sol.X[0]-1) > 1e-9 {
		t.Fatalf("X = %v, want x0 = 1", sol.X)
	}
}

// TestSolverReuse re-solves different bound sets on one BoundedSolver,
// interleaving warm and cold starts, and checks each against a fresh
// dense solve with the bounds materialised as rows.
func TestSolverReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := randomProblem(rng)
	for p.NumVars < 3 {
		p = randomProblem(rng)
	}
	s, err := NewBoundedSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	_, basis, err := s.SolveBounds(nil, nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		lo := make([]float64, p.NumVars)
		up := make([]float64, p.NumVars)
		for i := range up {
			if p.Upper != nil {
				up[i] = p.Upper[i]
			} else {
				up[i] = math.Inf(1)
			}
		}
		v := rng.Intn(p.NumVars)
		val := float64(rng.Intn(2))
		lo[v], up[v] = val, val

		var warm *Basis
		if trial%2 == 0 {
			warm = basis
		}
		got, _, err := s.SolveBounds(lo, up, warm, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		q := p
		q.Rows = append(append([]Row(nil), p.Rows...), Row{
			Terms: []Term{{Var: v, Coeff: 1}}, Sense: EQ, RHS: val,
		})
		want, err := SolveDense(q)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		if got.Status != want.Status {
			t.Fatalf("trial %d: status %v vs dense %v (fix x%d=%v)", trial, got.Status, want.Status, v, val)
		}
		if got.Status == Optimal && math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Fatalf("trial %d: objective %v vs dense %v", trial, got.Objective, want.Objective)
		}
	}
}

// selectionShaped builds the Formula-(3) relaxation structure at a size
// that forces periodic eta-file refactorisations: assignment equalities
// over candidate blocks, GE linearisation rows over pair variables, LE
// detection rows, native [0,1] bounds on the assignment columns.
func selectionShaped(nets, cands int, seed int64) Problem {
	rng := rand.New(rand.NewSource(seed))
	var obj, upper []float64
	var rows []Row
	for i := 0; i < nets; i++ {
		row := Row{Sense: EQ, RHS: 1}
		for j := 0; j < cands; j++ {
			row.Terms = append(row.Terms, Term{Var: i*cands + j, Coeff: 1})
			obj = append(obj, 1+rng.Float64()*4)
			upper = append(upper, 1)
		}
		rows = append(rows, row)
	}
	pair := func(a, b int) {
		v := len(obj)
		obj = append(obj, 0)
		upper = append(upper, math.Inf(1))
		rows = append(rows, Row{
			Terms: []Term{{Var: v, Coeff: 1}, {Var: a, Coeff: -1}, {Var: b, Coeff: -1}},
			Sense: GE, RHS: -1,
		})
		rows = append(rows, Row{
			Terms: []Term{{Var: v, Coeff: 0.5 + rng.Float64()}, {Var: a, Coeff: 0.2}},
			Sense: LE, RHS: 3,
		})
	}
	for i := 0; i+1 < nets; i++ {
		for j := 0; j < cands; j++ {
			pair(i*cands+j, (i+1)*cands+rng.Intn(cands))
		}
	}
	return Problem{NumVars: len(obj), Objective: obj, Rows: rows, Upper: upper}
}

// TestRevisedSelectionShapedOracle pins the revised engine on LPs large
// enough to cross the refactorEvery threshold mid-solve — the shape that
// exposed a refactorisation deadlock the small random family cannot reach
// (refactor must be free to re-pair basis columns with pivot rows).
func TestRevisedSelectionShapedOracle(t *testing.T) {
	for _, tc := range []struct{ nets, cands int }{
		{6, 3}, {10, 3}, {12, 4}, {16, 4},
	} {
		for seed := int64(29); seed < 32; seed++ {
			p := selectionShaped(tc.nets, tc.cands, seed)
			got, err := Solve(p)
			if err != nil {
				t.Fatalf("nets=%d cands=%d seed=%d: %v", tc.nets, tc.cands, seed, err)
			}
			want, err := SolveDense(p)
			if err != nil {
				t.Fatalf("nets=%d cands=%d seed=%d dense: %v", tc.nets, tc.cands, seed, err)
			}
			if got.Status != want.Status {
				t.Fatalf("nets=%d cands=%d seed=%d: status %v vs %v",
					tc.nets, tc.cands, seed, got.Status, want.Status)
			}
			if got.Status == Optimal && math.Abs(got.Objective-want.Objective) > 1e-6 {
				t.Fatalf("nets=%d cands=%d seed=%d: objective %v vs %v",
					tc.nets, tc.cands, seed, got.Objective, want.Objective)
			}
		}
	}
}
