package lp

import (
	"math"
	"slices"
)

// Presolve tolerances. feasTol decides infeasibility of a forced row;
// improveTol is the minimum bound improvement worth recording (it also
// guards the propagation loop against asymptotic tightening).
const (
	preFeasTol    = 1e-7
	preImproveTol = 1e-7
	preZeroTol    = 1e-12
)

// PresolveOutcome classifies a presolve pass.
type PresolveOutcome int

const (
	// PresolveReduced means a (possibly smaller) problem remains to solve.
	PresolveReduced PresolveOutcome = iota
	// PresolveSolved means presolve fixed every variable; Postsolve with an
	// empty reduced solution yields the full assignment and Offset its
	// objective.
	PresolveSolved
	// PresolveInfeasible means presolve proved the constraints inconsistent.
	PresolveInfeasible
	// PresolveUnbounded means presolve proved the objective unbounded below
	// (a negative-cost column subject to no constraint at all).
	PresolveUnbounded
)

// String implements fmt.Stringer.
func (o PresolveOutcome) String() string {
	switch o {
	case PresolveReduced:
		return "reduced"
	case PresolveSolved:
		return "solved"
	case PresolveInfeasible:
		return "infeasible"
	default:
		return "unbounded"
	}
}

// Presolved is the result of Presolve: the reduced problem plus everything
// needed to reinflate a reduced-space solution to the original variable
// space. The reductions are deterministic (fixed scan orders, lowest-index
// tie-breaks), so the reduced problem is identical across runs and worker
// counts.
type Presolved struct {
	// Outcome classifies the pass; P/Lo/Up/Integer are meaningful only for
	// PresolveReduced.
	Outcome PresolveOutcome
	// P is the reduced problem over the surviving columns and rows.
	P Problem
	// Lo and Up are the reduced per-column bounds (propagation can raise a
	// lower bound above the default 0, so solve with SolveBounds, not the
	// Problem defaults).
	Lo, Up []float64
	// Integer carries the integrality flags into the reduced space; nil when
	// Presolve was called without flags.
	Integer []bool
	// Offset is the objective contribution of the eliminated columns;
	// original objective = reduced objective + Offset.
	Offset float64
	// RowsRemoved and ColsRemoved count the eliminated rows and columns.
	RowsRemoved, ColsRemoved int

	origN   int
	colMap  []int32 // reduced column -> original column
	actions []preAction
}

// preAction is one eliminated-variable record, replayed in reverse by
// Postsolve. Column indices are in the original space.
type preAction struct {
	kind  int
	col   int32
	val   float64 // fix value, or the column's lower bound for absorb
	coeff float64 // absorb: coefficient of col in the removed row
	rhs   float64 // absorb: RHS of the removed row
	terms []Term  // absorb: the removed row's other terms
}

const (
	actFix = iota
	// actAbsorb restores a cost-free column singleton that was eliminated
	// together with its only row: x = max(lo, (rhs − Σ other terms)/coeff)
	// satisfies the row at no objective cost.
	actAbsorb
)

// preRow is one working constraint during presolve.
type preRow struct {
	terms []Term
	sense Sense
	rhs   float64
	alive bool
}

// presolver carries the working state of one Presolve call.
type presolver struct {
	n        int
	c        []float64
	wlo, wup []float64
	integer  []bool
	rows     []preRow
	colRows  [][]int32 // original row membership per column
	colAlive []bool
	colNNZ   []int // alive rows containing the column
	aliveR   int   // alive row count
	aliveC   int   // alive column count

	offset     float64
	actions    []preAction
	changed    bool
	infeasible bool
}

// Presolve applies deterministic reductions to min cᵀx subject to p.Rows
// and lo <= x <= up (nil slices mean the Problem defaults: lower 0, upper
// p.Upper or +Inf). integer optionally flags integral variables, letting
// bound propagation round their implied bounds inward; nil means all
// continuous. The reductions — empty and fixed column removal, singleton-row
// substitution, bound propagation, redundant-row removal, cost-free column
// singleton absorption, and dominated-binary-column elimination on
// selection-shaped assignment rows — are exactly objective-preserving:
// every optimal solution of the reduced problem postsolves to an optimal
// solution of the original.
func Presolve(p Problem, lo, up []float64, integer []bool) (*Presolved, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ps := &presolver{n: p.NumVars}
	ps.init(p, lo, up, integer)

	for pass := 0; pass < 10; pass++ {
		ps.changed = false
		ps.scanRows()
		ps.scanCols()
		ps.propagate()
		ps.dominatedBinaries()
		if ps.infeasible || !ps.changed {
			break
		}
	}
	return ps.finish(p)
}

// init copies the problem into merged working form.
func (ps *presolver) init(p Problem, lo, up []float64, integer []bool) {
	n := ps.n
	ps.c = p.Objective
	ps.wlo = make([]float64, n)
	ps.wup = make([]float64, n)
	for j := 0; j < n; j++ {
		if lo != nil {
			ps.wlo[j] = lo[j]
		}
		switch {
		case up != nil:
			ps.wup[j] = up[j]
		case p.Upper != nil:
			ps.wup[j] = p.Upper[j]
		default:
			ps.wup[j] = math.Inf(1)
		}
	}
	if integer != nil {
		ps.integer = integer
	} else {
		ps.integer = make([]bool, n)
	}
	ps.rows = make([]preRow, len(p.Rows))
	ps.colRows = make([][]int32, n)
	ps.colNNZ = make([]int, n)
	// All rows' working terms live in one backing array (merged counts never
	// exceed the raw total, so the appends below never reallocate and every
	// row's three-index window stays valid). Rows only ever shrink in place,
	// so the shared storage survives the whole pass — and finish hands the
	// windows to the reduced problem without another copy.
	total := 0
	for _, r := range p.Rows {
		total += len(r.Terms)
	}
	backing := make([]Term, 0, total)
	var scratch []Term
	for i, r := range p.Rows {
		// Merge duplicate variables and drop zero coefficients, matching
		// buildCSC, so activity bounds and substitutions are exact.
		scratch = append(scratch[:0], r.Terms...)
		slices.SortFunc(scratch, func(a, b Term) int { return a.Var - b.Var })
		start := len(backing)
		for _, t := range scratch {
			if k := len(backing); k > start && backing[k-1].Var == t.Var {
				backing[k-1].Coeff += t.Coeff
			} else {
				backing = append(backing, t)
			}
		}
		kept := backing[start:start:len(backing)]
		for _, t := range backing[start:] {
			if t.Coeff != 0 {
				kept = append(kept, t)
			}
		}
		backing = backing[:start+len(kept)]
		kept = backing[start:len(backing):len(backing)]
		ps.rows[i] = preRow{terms: kept, sense: r.Sense, rhs: r.RHS, alive: true}
		for _, t := range kept {
			ps.colNNZ[t.Var]++
		}
	}
	// Column → row membership, likewise carved from one backing array.
	colBacking := make([]int32, 0, len(backing))
	off := 0
	for j := 0; j < n; j++ {
		ps.colRows[j] = colBacking[off:off : off+ps.colNNZ[j]]
		off += ps.colNNZ[j]
	}
	for i := range ps.rows {
		for _, t := range ps.rows[i].terms {
			ps.colRows[t.Var] = append(ps.colRows[t.Var], int32(i))
		}
	}
	ps.colAlive = make([]bool, n)
	for j := range ps.colAlive {
		ps.colAlive[j] = true
	}
	ps.aliveR = len(p.Rows)
	ps.aliveC = n
}

// killRow retires row r, releasing its columns' membership counts.
func (ps *presolver) killRow(r int32) {
	row := &ps.rows[r]
	if !row.alive {
		return
	}
	row.alive = false
	ps.aliveR--
	for _, t := range row.terms {
		ps.colNNZ[t.Var]--
	}
	ps.changed = true
}

// fixColumn eliminates column j at value v: the objective absorbs c_j·v,
// every alive row substitutes it into the RHS, and Postsolve restores it.
func (ps *presolver) fixColumn(j int, v float64) {
	ps.offset += ps.c[j] * v
	for _, r := range ps.colRows[j] {
		row := &ps.rows[r]
		if !row.alive {
			continue
		}
		kept := row.terms[:0]
		for _, t := range row.terms {
			if t.Var == j {
				row.rhs -= t.Coeff * v
			} else {
				kept = append(kept, t)
			}
		}
		row.terms = kept
	}
	ps.colAlive[j] = false
	ps.aliveC--
	ps.colNNZ[j] = 0
	ps.actions = append(ps.actions, preAction{kind: actFix, col: int32(j), val: v})
	ps.changed = true
}

// tightenLo raises column j's lower bound to v (rounded up for integers).
func (ps *presolver) tightenLo(j int, v float64) {
	if math.IsInf(v, -1) {
		return
	}
	if ps.integer[j] {
		v = math.Ceil(v - 1e-6)
	}
	if v > ps.wlo[j]+preImproveTol {
		ps.wlo[j] = v
		ps.changed = true
	}
}

// tightenUp lowers column j's upper bound to v (rounded down for integers).
func (ps *presolver) tightenUp(j int, v float64) {
	if math.IsInf(v, 1) {
		return
	}
	if ps.integer[j] {
		v = math.Floor(v + 1e-6)
	}
	if v < ps.wup[j]-preImproveTol {
		ps.wup[j] = v
		ps.changed = true
	}
}

// scanRows handles empty rows (feasibility check) and singleton rows
// (substituted into the variable's bounds).
func (ps *presolver) scanRows() {
	for i := range ps.rows {
		row := &ps.rows[i]
		if !row.alive {
			continue
		}
		switch len(row.terms) {
		case 0:
			ok := true
			switch row.sense {
			case LE:
				ok = 0 <= row.rhs+preFeasTol
			case GE:
				ok = 0 >= row.rhs-preFeasTol
			case EQ:
				ok = math.Abs(row.rhs) <= preFeasTol
			}
			if !ok {
				ps.infeasible = true
				return
			}
			ps.killRow(int32(i))
		case 1:
			t := row.terms[0]
			if math.Abs(t.Coeff) < preZeroTol {
				continue
			}
			v := row.rhs / t.Coeff
			switch {
			case row.sense == EQ:
				ps.tightenLo(t.Var, v)
				ps.tightenUp(t.Var, v)
				// An equality pins the variable exactly even when the pin
				// is within the improve tolerance of both bounds.
				if v >= ps.wlo[t.Var]-preFeasTol && v <= ps.wup[t.Var]+preFeasTol {
					ps.wlo[t.Var], ps.wup[t.Var] = v, v
				}
			case (row.sense == LE) == (t.Coeff > 0):
				ps.tightenUp(t.Var, v)
			default:
				ps.tightenLo(t.Var, v)
			}
			ps.killRow(int32(i))
		}
	}
}

// scanCols handles crossed bounds (infeasible), fixed columns, empty
// columns, and cost-free column singletons that can absorb their only row.
func (ps *presolver) scanCols() {
	for j := 0; j < ps.n; j++ {
		if !ps.colAlive[j] {
			continue
		}
		if ps.wlo[j] > ps.wup[j]+preFeasTol {
			ps.infeasible = true
			return
		}
		if ps.wup[j]-ps.wlo[j] <= preFeasTol {
			v := ps.wlo[j]
			if ps.integer[j] {
				v = math.Round(v)
			}
			ps.fixColumn(j, v)
			continue
		}
		if ps.colNNZ[j] == 0 {
			switch {
			case ps.c[j] >= 0:
				ps.fixColumn(j, ps.wlo[j])
			case !math.IsInf(ps.wup[j], 1):
				ps.fixColumn(j, ps.wup[j])
			}
			// Negative cost and no upper bound: unbounded iff the rest of
			// the problem is feasible, which presolve may not know yet —
			// leave the column alive; finish classifies it once all rows
			// are gone, the simplex does otherwise.
			continue
		}
		if ps.colNNZ[j] == 1 && ps.c[j] == 0 && !ps.integer[j] && math.IsInf(ps.wup[j], 1) {
			ps.absorbSingleton(j)
		}
	}
}

// absorbSingleton eliminates cost-free column j together with its only
// row when raising j always satisfies the row (GE with positive coefficient
// or LE with negative): the selection programme's crossing variables y land
// here once their detection rows go redundant.
func (ps *presolver) absorbSingleton(j int) {
	var rowIdx int32 = -1
	for _, r := range ps.colRows[j] {
		if ps.rows[r].alive {
			rowIdx = r
			break
		}
	}
	if rowIdx < 0 {
		return
	}
	row := &ps.rows[rowIdx]
	var coeff float64
	for _, t := range row.terms {
		if t.Var == j {
			coeff = t.Coeff
			break
		}
	}
	if !(row.sense == GE && coeff > preZeroTol || row.sense == LE && coeff < -preZeroTol) {
		return
	}
	terms := make([]Term, 0, len(row.terms)-1)
	for _, t := range row.terms {
		if t.Var != j {
			terms = append(terms, t)
		}
	}
	ps.actions = append(ps.actions, preAction{
		kind: actAbsorb, col: int32(j), val: ps.wlo[j],
		coeff: coeff, rhs: row.rhs, terms: terms,
	})
	ps.killRow(rowIdx)
	ps.colAlive[j] = false
	ps.aliveC--
	ps.colNNZ[j] = 0
	ps.changed = true
}

// propagate derives implied bounds from row activity ranges, removes
// redundant rows, and detects forced infeasibility.
func (ps *presolver) propagate() {
	for i := range ps.rows {
		row := &ps.rows[i]
		if !row.alive || len(row.terms) == 0 {
			continue
		}
		var minAct, maxAct float64
		nMinInf, nMaxInf := 0, 0
		for _, t := range row.terms {
			var locon, upcon float64
			if t.Coeff > 0 {
				locon, upcon = t.Coeff*ps.wlo[t.Var], t.Coeff*ps.wup[t.Var]
			} else {
				locon, upcon = t.Coeff*ps.wup[t.Var], t.Coeff*ps.wlo[t.Var]
			}
			if math.IsInf(locon, -1) {
				nMinInf++
			} else {
				minAct += locon
			}
			if math.IsInf(upcon, 1) {
				nMaxInf++
			} else {
				maxAct += upcon
			}
		}
		if row.sense != GE && nMinInf == 0 && minAct > row.rhs+preFeasTol {
			ps.infeasible = true
			return
		}
		if row.sense != LE && nMaxInf == 0 && maxAct < row.rhs-preFeasTol {
			ps.infeasible = true
			return
		}
		if row.sense == LE && nMaxInf == 0 && maxAct <= row.rhs+preImproveTol {
			ps.killRow(int32(i))
			continue
		}
		if row.sense == GE && nMinInf == 0 && minAct >= row.rhs-preImproveTol {
			ps.killRow(int32(i))
			continue
		}
		// Implied bounds from the <= direction (LE and EQ rows).
		if row.sense != GE && nMinInf <= 1 {
			for _, t := range row.terms {
				var locon float64
				if t.Coeff > 0 {
					locon = t.Coeff * ps.wlo[t.Var]
				} else {
					locon = t.Coeff * ps.wup[t.Var]
				}
				inf := math.IsInf(locon, -1)
				if nMinInf == 1 && !inf {
					continue // some other column's contribution is unbounded
				}
				rest := minAct
				if !inf {
					rest -= locon
				}
				if t.Coeff > 0 {
					ps.tightenUp(t.Var, (row.rhs-rest)/t.Coeff)
				} else {
					ps.tightenLo(t.Var, (row.rhs-rest)/t.Coeff)
				}
			}
		}
		// Implied bounds from the >= direction (GE and EQ rows).
		if row.sense != LE && nMaxInf <= 1 {
			for _, t := range row.terms {
				var upcon float64
				if t.Coeff > 0 {
					upcon = t.Coeff * ps.wup[t.Var]
				} else {
					upcon = t.Coeff * ps.wlo[t.Var]
				}
				inf := math.IsInf(upcon, 1)
				if nMaxInf == 1 && !inf {
					continue
				}
				rest := maxAct
				if !inf {
					rest -= upcon
				}
				if t.Coeff > 0 {
					ps.tightenLo(t.Var, (row.rhs-rest)/t.Coeff)
				} else {
					ps.tightenUp(t.Var, (row.rhs-rest)/t.Coeff)
				}
			}
		}
	}
}

// dominatedBinaries eliminates dominated candidates inside selection-shaped
// assignment rows: an EQ row with RHS 1 and all-ones coefficients over
// binary [0,1] columns picks exactly one of them, so a candidate that is no
// cheaper and no looser in every other row than a sibling can be fixed to
// zero (any solution using it swaps to the dominating sibling without
// loss). Ties keep the lowest column index.
func (ps *presolver) dominatedBinaries() {
	if ps.infeasible {
		return
	}
	var cands []int
	coeffs := map[int]map[int32]float64{}
	for i := range ps.rows {
		row := &ps.rows[i]
		if !row.alive || row.sense != EQ || math.Abs(row.rhs-1) > preZeroTol || len(row.terms) < 2 {
			continue
		}
		ok := true
		cands = cands[:0]
		for _, t := range row.terms {
			j := t.Var
			if t.Coeff != 1 || !ps.integer[j] || ps.wlo[j] != 0 || ps.wup[j] != 1 {
				ok = false
				break
			}
			cands = append(cands, j)
		}
		if !ok {
			continue
		}
		for _, j := range cands {
			if coeffs[j] == nil {
				m := map[int32]float64{}
				for _, r := range ps.colRows[j] {
					if int(r) == i || !ps.rows[r].alive {
						continue
					}
					for _, t := range ps.rows[r].terms {
						if t.Var == j {
							m[r] = t.Coeff
							break
						}
					}
				}
				coeffs[j] = m
			}
		}
		for a := 0; a < len(cands); a++ {
			j := cands[a]
			if !ps.colAlive[j] || ps.wup[j] == 0 {
				continue
			}
			for b := a + 1; b < len(cands); b++ {
				k := cands[b]
				if !ps.colAlive[k] || ps.wup[k] == 0 {
					continue
				}
				if ps.dominates(j, k, coeffs) {
					ps.tightenUp(k, 0)
				} else if ps.dominates(k, j, coeffs) {
					ps.tightenUp(j, 0)
					break
				}
			}
		}
	}
}

// dominates reports that swapping candidate k for candidate j in any
// solution keeps every remaining row satisfied at no extra cost.
func (ps *presolver) dominates(j, k int, coeffs map[int]map[int32]float64) bool {
	if ps.c[j] > ps.c[k]+preZeroTol {
		return false
	}
	cj, ck := coeffs[j], coeffs[k]
	for r, aj := range cj {
		if !ps.rows[r].alive {
			continue
		}
		if !coeffDominates(ps.rows[r].sense, aj, ck[r]) {
			return false
		}
	}
	for r, ak := range ck {
		if !ps.rows[r].alive {
			continue
		}
		if _, seen := cj[r]; seen {
			continue
		}
		if !coeffDominates(ps.rows[r].sense, 0, ak) {
			return false
		}
	}
	return true
}

// coeffDominates compares one row's coefficients under its sense: the
// dominating candidate must consume no more of a <= budget, contribute no
// less to a >= requirement, and match exactly on equalities.
func coeffDominates(sense Sense, aj, ak float64) bool {
	switch sense {
	case LE:
		return aj <= ak+preZeroTol
	case GE:
		return aj >= ak-preZeroTol
	default:
		return math.Abs(aj-ak) <= preZeroTol
	}
}

// finish compacts the surviving rows and columns into the reduced problem.
func (ps *presolver) finish(p Problem) (*Presolved, error) {
	out := &Presolved{
		origN:   ps.n,
		actions: ps.actions,
		Offset:  ps.offset,
	}
	out.RowsRemoved = len(p.Rows) - ps.aliveR
	out.ColsRemoved = ps.n - ps.aliveC
	if ps.infeasible {
		out.Outcome = PresolveInfeasible
		return out, nil
	}
	// Re-check crossed bounds over the survivors (the pass cap can leave a
	// conflict undetected), then classify free-floating negative-cost
	// columns: with zero rows left they prove unboundedness outright.
	for j := 0; j < ps.n; j++ {
		if ps.colAlive[j] && ps.wlo[j] > ps.wup[j]+preFeasTol {
			out.Outcome = PresolveInfeasible
			return out, nil
		}
	}
	if ps.aliveR == 0 {
		for j := 0; j < ps.n; j++ {
			if ps.colAlive[j] && ps.c[j] < 0 && math.IsInf(ps.wup[j], 1) {
				out.Outcome = PresolveUnbounded
				return out, nil
			}
		}
	}
	if ps.aliveC == 0 {
		// Every column is fixed; any surviving rows are empty and must
		// already be satisfied (the pass-cap case re-checks them here).
		for i := range ps.rows {
			row := &ps.rows[i]
			if !row.alive {
				continue
			}
			act := 0.0
			bad := false
			switch row.sense {
			case LE:
				bad = act > row.rhs+preFeasTol
			case GE:
				bad = act < row.rhs-preFeasTol
			case EQ:
				bad = math.Abs(act-row.rhs) > preFeasTol
			}
			if bad {
				out.Outcome = PresolveInfeasible
				return out, nil
			}
		}
		out.Outcome = PresolveSolved
		return out, nil
	}

	out.Outcome = PresolveReduced
	inv := make([]int32, ps.n)
	out.colMap = make([]int32, 0, ps.aliveC)
	for j := 0; j < ps.n; j++ {
		if ps.colAlive[j] {
			inv[j] = int32(len(out.colMap))
			out.colMap = append(out.colMap, int32(j))
		} else {
			inv[j] = -1
		}
	}
	nr := len(out.colMap)
	obj := make([]float64, nr)
	out.Lo = make([]float64, nr)
	out.Up = make([]float64, nr)
	upper := make([]float64, nr)
	out.Integer = make([]bool, nr)
	for r, oc := range out.colMap {
		obj[r] = ps.c[oc]
		out.Lo[r] = ps.wlo[oc]
		out.Up[r] = ps.wup[oc]
		upper[r] = ps.wup[oc]
		out.Integer[r] = ps.integer[oc]
	}
	rows := make([]Row, 0, ps.aliveR)
	for i := range ps.rows {
		row := &ps.rows[i]
		if !row.alive {
			continue
		}
		// The working terms are presolve-owned copies (never aliasing the
		// caller's Problem), so remap them to reduced indices in place and
		// hand the windows to the reduced problem without another copy.
		for t := range row.terms {
			row.terms[t].Var = int(inv[row.terms[t].Var])
		}
		rows = append(rows, Row{Terms: row.terms, Sense: row.sense, RHS: row.rhs})
	}
	out.P = Problem{NumVars: nr, Objective: obj, Rows: rows, Upper: upper}
	return out, nil
}

// Postsolve reinflates a reduced-space solution to the original variable
// space, replaying the elimination actions in reverse. dst is reused when
// it has capacity; xRed may be nil when the outcome was PresolveSolved.
func (ps *Presolved) Postsolve(xRed, dst []float64) []float64 {
	if cap(dst) < ps.origN {
		dst = make([]float64, ps.origN)
	}
	dst = dst[:ps.origN]
	for i := range dst {
		dst[i] = 0
	}
	for r, oc := range ps.colMap {
		dst[oc] = xRed[r]
	}
	for i := len(ps.actions) - 1; i >= 0; i-- {
		a := &ps.actions[i]
		switch a.kind {
		case actFix:
			dst[a.col] = a.val
		case actAbsorb:
			sum := 0.0
			for _, t := range a.terms {
				sum += t.Coeff * dst[t.Var]
			}
			if v := (a.rhs - sum) / a.coeff; v > a.val {
				dst[a.col] = v
			} else {
				dst[a.col] = a.val
			}
		}
	}
	return dst
}
