package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"operon/internal/obs"
)

// ErrNumerical reports an unrecoverable numerical breakdown of the revised
// engine (singular refactorisation); SolveWithOptions falls back to the
// dense oracle on it.
var ErrNumerical = errors.New("lp: revised simplex numerical breakdown")

const (
	// bndTol is the primal feasibility tolerance on variable bounds.
	bndTol = 1e-7
	// dualTol is the dual feasibility tolerance on reduced costs.
	dualTol = 1e-7
	// refactorEvery bounds the eta-file length before a refactorisation.
	refactorEvery = 100
)

// BoundedSolver is a revised primal/dual simplex over the sparse column
// form of one Problem, with native variable bounds lo <= x <= up. The
// constraint rows are converted once to equalities with one slack column
// per row (the slack's bounds encode the sense); branch-and-bound callers
// re-solve with changed structural bounds and a warm-start basis without
// ever touching the rows.
//
// A BoundedSolver is reusable but not safe for concurrent use.
type BoundedSolver struct {
	prob Problem
	// A is the column-compressed constraint matrix (structural plus slack
	// columns), capitalised after the conventional simplex notation Ax = b.
	A csc
	// ar is the row-compressed mirror of A, built once and shared by clones;
	// the devex weight update walks it row-wise.
	ar   csr
	m    int // rows
	n    int // structural columns
	nTot int // n + m (slacks)

	c []float64 // costs, zero on slacks
	b []float64 // RHS

	// Per-column bounds for the current solve. Structural entries are set
	// from SolveBounds arguments; slack entries are fixed by row sense:
	// LE -> [0, +Inf), GE -> (-Inf, 0], EQ -> [0, 0].
	lo, up []float64

	basic []int32 // row -> basic column
	pos   []int32 // column -> basis row, or -1 when nonbasic
	atUp  []bool  // nonbasic column rests at its upper bound
	xB    []float64

	etas etaFile
	// etaBase is the eta-file length right after the last refactorisation
	// (one eta per basis column); only update etas beyond it count against
	// refactorEvery.
	etaBase int

	// Dense scratch vectors, length m.
	dir, rho, y, sigma []float64

	// Devex reference weights per column plus the update-pass scratch: dvAcc
	// accumulates the pivot row's entries (length nTot, kept zeroed between
	// updates), dvTouch lists the columns written so only they are re-zeroed.
	dw, dvAcc []float64
	dvTouch   []int32

	// Factorisation scratch, reused across refactorisations (refactor ran
	// hot enough that its ~15 per-call allocations dominated the LP
	// allocation profile).
	fOrder, fHints         []int32
	fRowStart, fRowSlot    []int32
	fColCnt, fRowCnt       []int32
	fCursor                []int32
	fColActive, fRowActive []bool
	fRowQ, fColQ           []int32
	fBackSlots, fBackRows  []int32
	fCols                  []int32
	fRowTaken              []bool

	ctx      context.Context
	deadline time.Time
	iter     int
	maxIter  int
	stall    int
	scanAt   int // partial-pricing cursor

	// Behaviour counters, fetched from Options.Obs per solve; nil counters
	// make the increments no-ops (a nil check per pivot, nothing more).
	cPivots, cFlips, cRefactors *obs.Counter
	// numErr records a numerical breakdown inside the pivot loop (singular
	// refactorisation); SolveBounds surfaces it as ErrNumerical so callers
	// can fall back to the dense engine.
	numErr error
}

// NewBoundedSolver validates p and builds the sparse column storage once.
func NewBoundedSolver(p Problem) (*BoundedSolver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &BoundedSolver{prob: p}
	s.A = buildCSC(p)
	s.ar = buildCSR(&s.A)
	s.m = len(p.Rows)
	s.n = p.NumVars
	s.nTot = s.A.n
	s.c = make([]float64, s.nTot)
	copy(s.c, p.Objective)
	s.b = make([]float64, s.m)
	for i, r := range p.Rows {
		s.b[i] = r.RHS
	}
	s.allocState()
	return s, nil
}

// allocState allocates the per-solver mutable state (bounds, basis, scratch
// vectors, devex weights); the immutable problem matrices are not touched.
func (s *BoundedSolver) allocState() {
	s.lo = make([]float64, s.nTot)
	s.up = make([]float64, s.nTot)
	s.basic = make([]int32, s.m)
	s.pos = make([]int32, s.nTot)
	s.atUp = make([]bool, s.nTot)
	s.xB = make([]float64, s.m)
	s.dir = make([]float64, s.m)
	s.rho = make([]float64, s.m)
	s.y = make([]float64, s.m)
	s.sigma = make([]float64, s.m)
	s.dw = make([]float64, s.nTot)
	s.dvAcc = make([]float64, s.nTot)
}

// Clone returns an independent solver over the same problem, sharing the
// immutable matrices (CSC columns, CSR rows, costs, RHS) with the receiver
// and allocating fresh mutable state. Sharing is read-only, so the clone is
// safe to drive from a different goroutine than the receiver; parallel
// branch and bound hands each worker one clone instead of rebuilding the
// sparse storage per worker.
func (s *BoundedSolver) Clone() *BoundedSolver {
	c := &BoundedSolver{
		prob: s.prob, A: s.A, ar: s.ar,
		m: s.m, n: s.n, nTot: s.nTot,
		c: s.c, b: s.b,
	}
	c.allocState()
	return c
}

// NumRows returns the constraint-row count of the underlying problem; it is
// invariant across SolveBounds calls (branch and bound asserts this).
func (s *BoundedSolver) NumRows() int { return s.m }

// workspaceBytes estimates the revised-simplex working memory (the CSC
// store plus its CSR mirror, per-column state incl. devex weights, and the
// dense row scratch).
func (s *BoundedSolver) workspaceBytes() int64 {
	return int64(s.A.nnz())*24 + int64(s.nTot)*41 + int64(s.m)*44 +
		int64(refactorEvery)*16
}

// SolveBounds solves min cᵀx subject to the problem rows and lo <= x <= up
// over the structural variables (nil slices mean the Problem defaults:
// lower 0, upper Problem.Upper or +Inf). A non-nil warm basis — typically
// the returned Basis of a parent solve with looser bounds — skips phase 1:
// primal feasibility is restored by dual simplex pivots. The returned
// Basis snapshot is independent of solver state and safe to retain.
func (s *BoundedSolver) SolveBounds(lo, up []float64, warm *Basis, opt Options) (Solution, *Basis, error) {
	var sol Solution
	out := &Basis{}
	if err := s.SolveBoundsInto(lo, up, warm, opt, &sol, out); err != nil {
		return Solution{}, nil, err
	}
	return sol, out, nil
}

// SolveInto solves with the Problem's default bounds into reusable outputs;
// it is SolveBoundsInto with nil bound overrides.
func (s *BoundedSolver) SolveInto(warm *Basis, opt Options, sol *Solution, out *Basis) error {
	return s.SolveBoundsInto(nil, nil, warm, opt, sol, out)
}

// SolveBoundsInto is the reusable-workspace form of SolveBounds: the
// solution is written into sol (reusing sol.X's capacity) and the basis
// snapshot into out (reusing its slices), so a steady-state caller holding
// both across solves allocates nothing here. sol and out must be non-nil;
// out may be the same *Basis passed as warm (the warm basis is consumed
// before the snapshot is written).
func (s *BoundedSolver) SolveBoundsInto(lo, up []float64, warm *Basis, opt Options, sol *Solution, out *Basis) error {
	maxBytes := opt.MaxTableauBytes
	if maxBytes == 0 {
		maxBytes = 3 << 29 // 1.5 GiB
	}
	if bytes := s.workspaceBytes(); bytes > maxBytes {
		return fmt.Errorf("%w: needs %d bytes", ErrTooLarge, bytes)
	}
	if lo != nil && len(lo) != s.n {
		return fmt.Errorf("lp: %d lower bounds for %d variables", len(lo), s.n)
	}
	if up != nil && len(up) != s.n {
		return fmt.Errorf("lp: %d upper bounds for %d variables", len(up), s.n)
	}
	s.setBounds(lo, up)
	s.ctx, s.deadline = opt.effectiveBudget()
	s.iter = 0
	s.maxIter = 200 * (s.m + s.nTot)
	s.stall = 0
	s.scanAt = 0
	s.numErr = nil
	if opt.Obs != nil {
		opt.Obs.Counter("lp.solves").Inc()
		s.cPivots = opt.Obs.Counter("lp.pivots")
		s.cFlips = opt.Obs.Counter("lp.bound_flips")
		s.cRefactors = opt.Obs.Counter("lp.refactors")
	} else {
		s.cPivots, s.cFlips, s.cRefactors = nil, nil, nil
	}

	warmLoaded := s.loadBasis(warm)
	if err := s.refactor(); err != nil {
		if !warmLoaded {
			return err
		}
		// A stale warm basis can be singular under the new bounds; restart
		// cold rather than failing the solve.
		warmLoaded = false
		s.loadBasis(nil)
		if err := s.refactor(); err != nil {
			return err
		}
	}
	s.computeXB()

	st := s.solveLoaded(warmLoaded)
	if s.numErr != nil {
		return s.numErr
	}
	sol.Status, sol.Iterations, sol.Objective = st, s.iter, 0
	sol.X = sol.X[:0]
	if st == Optimal {
		sol.X = s.extractInto(sol.X)
		for i, cv := range s.prob.Objective {
			sol.Objective += cv * sol.X[i]
		}
	}
	s.snapshotInto(out)
	return nil
}

// solveLoaded runs the simplex phases on the already-factorised basis.
func (s *BoundedSolver) solveLoaded(warm bool) Status {
	if warm && s.dualFeasible() {
		st, ok := s.dualSimplex()
		if ok {
			switch st {
			case Infeasible, IterLimit:
				return st
			}
			// Primal feasible and dual feasible: phase 2 confirms
			// optimality (normally zero iterations).
			return s.primal(phase2)
		}
		// Dual simplex bailed on numerics: fall through to the cold path.
	}
	st := s.primal(phase1)
	if st != Optimal {
		return st
	}
	return s.primal(phase2)
}

// setBounds installs structural bounds and the sense-derived slack bounds.
func (s *BoundedSolver) setBounds(lo, up []float64) {
	for j := 0; j < s.n; j++ {
		if lo != nil {
			s.lo[j] = lo[j]
		} else {
			s.lo[j] = 0
		}
		switch {
		case up != nil:
			s.up[j] = up[j]
		case s.prob.Upper != nil:
			s.up[j] = s.prob.Upper[j]
		default:
			s.up[j] = math.Inf(1)
		}
	}
	for i, r := range s.prob.Rows {
		j := s.n + i
		switch r.Sense {
		case LE:
			s.lo[j], s.up[j] = 0, math.Inf(1)
		case GE:
			s.lo[j], s.up[j] = math.Inf(-1), 0
		case EQ:
			s.lo[j], s.up[j] = 0, 0
		}
	}
}

// loadBasis installs warm (when structurally valid) or the all-slack basis,
// reporting whether the warm basis was used.
func (s *BoundedSolver) loadBasis(warm *Basis) bool {
	for j := range s.pos {
		s.pos[j] = -1
		s.atUp[j] = false
	}
	if warm != nil && len(warm.Basic) == s.m && len(warm.AtUpper) == s.nTot {
		valid := true
		for r, col := range warm.Basic {
			if col < 0 || int(col) >= s.nTot || s.pos[col] >= 0 {
				valid = false
				break
			}
			s.basic[r] = col
			s.pos[col] = int32(r)
		}
		if valid {
			for j := 0; j < s.nTot; j++ {
				if s.pos[j] >= 0 {
					continue
				}
				s.atUp[j] = warm.AtUpper[j]
				// Keep nonbasic columns on a finite bound.
				if s.atUp[j] && math.IsInf(s.up[j], 1) {
					s.atUp[j] = false
				}
				if !s.atUp[j] && math.IsInf(s.lo[j], -1) {
					s.atUp[j] = true
				}
			}
			return true
		}
		for j := range s.pos {
			s.pos[j] = -1
		}
	}
	for i := 0; i < s.m; i++ {
		j := s.n + i
		s.basic[i] = int32(j)
		s.pos[j] = int32(i)
	}
	// GE slacks are the only columns with an infinite lower bound; they all
	// start basic, and structural columns start at their (finite) lower.
	return false
}

// snapshotInto exports the current basis into b for warm starts, reusing
// its slices when they have capacity.
func (s *BoundedSolver) snapshotInto(b *Basis) {
	if cap(b.Basic) < s.m {
		b.Basic = make([]int32, s.m)
	}
	b.Basic = b.Basic[:s.m]
	copy(b.Basic, s.basic)
	if cap(b.AtUpper) < s.nTot {
		b.AtUpper = make([]bool, s.nTot)
	}
	b.AtUpper = b.AtUpper[:s.nTot]
	copy(b.AtUpper, s.atUp)
}

// valOf returns the resting value of nonbasic column j.
func (s *BoundedSolver) valOf(j int) float64 {
	if s.atUp[j] {
		if u := s.up[j]; !math.IsInf(u, 1) {
			return u
		}
		return s.lo[j]
	}
	if l := s.lo[j]; !math.IsInf(l, -1) {
		return l
	}
	return s.up[j]
}

// factorOrder computes a fill-reducing elimination order for the current
// basis. Rows with a single entry across the active columns pivot first
// (forward triangular: their pivot row never reappears, so the eta is the
// untouched sparse column), columns with a single active row pivot last
// (backward triangular — slack columns all land here), and the irreducible
// bump in between is ordered by a Markowitz-style min-count rule. Without
// this ordering a product-form refactorisation densifies: each eta's fill
// feeds the FTRAN of every later column, costing O(m³) on bases this size.
//
// Returned are the basis columns in elimination order and a suggested pivot
// row per column. The rows are hints — the factorisation pass verifies each
// against a stability threshold and falls back to the largest free pivot.
func (s *BoundedSolver) factorOrder() (order, hints []int32) {
	m := s.m
	order = s.fOrder[:0]
	if cap(order) < m {
		order = make([]int32, 0, m)
	}
	hints = s.fHints[:0]
	if cap(hints) < m {
		hints = make([]int32, 0, m)
	}

	// Row-wise view of the basis: rowSlot[rowStart[r]:rowStart[r+1]] lists
	// the basis slots whose column contains row r. rowStart is the only
	// scratch array that must arrive zeroed (it accumulates counts); the
	// rest are fully overwritten before use.
	rowStart := i32Scratch(&s.fRowStart, m+1)
	for i := range rowStart {
		rowStart[i] = 0
	}
	colCnt := i32Scratch(&s.fColCnt, m)
	for k := 0; k < m; k++ {
		ri, _ := s.A.col(int(s.basic[k]))
		colCnt[k] = int32(len(ri))
		for _, r := range ri {
			rowStart[r+1]++
		}
	}
	rowCnt := i32Scratch(&s.fRowCnt, m)
	for r := 0; r < m; r++ {
		rowCnt[r] = rowStart[r+1]
		rowStart[r+1] += rowStart[r]
	}
	rowSlot := i32Scratch(&s.fRowSlot, int(rowStart[m]))
	cursor := i32Scratch(&s.fCursor, m)
	copy(cursor, rowStart[:m])
	for k := 0; k < m; k++ {
		ri, _ := s.A.col(int(s.basic[k]))
		for _, r := range ri {
			rowSlot[cursor[r]] = int32(k)
			cursor[r]++
		}
	}

	colActive := boolScratch(&s.fColActive, m)
	rowActive := boolScratch(&s.fRowActive, m)
	rowQ, colQ := s.fRowQ[:0], s.fColQ[:0]
	for k := 0; k < m; k++ {
		colActive[k] = true
		rowActive[k] = true
	}
	for r := int32(0); r < int32(m); r++ {
		if rowCnt[r] == 1 {
			rowQ = append(rowQ, r)
		}
	}
	for k := int32(0); k < int32(m); k++ {
		if colCnt[k] == 1 {
			colQ = append(colQ, k)
		}
	}

	backSlots, backRows := s.fBackSlots[:0], s.fBackRows[:0]
	processed := 0
	deactivate := func(k, r int32) {
		colActive[k] = false
		rowActive[r] = false
		ri, _ := s.A.col(int(s.basic[k]))
		for _, rr := range ri {
			if rowActive[rr] {
				if rowCnt[rr]--; rowCnt[rr] == 1 {
					rowQ = append(rowQ, rr)
				}
			}
		}
		for t := rowStart[r]; t < rowStart[r+1]; t++ {
			if kk := rowSlot[t]; colActive[kk] {
				if colCnt[kk]--; colCnt[kk] == 1 {
					colQ = append(colQ, kk)
				}
			}
		}
		processed++
	}
	for processed < m {
		if len(rowQ) > 0 {
			r := rowQ[len(rowQ)-1]
			rowQ = rowQ[:len(rowQ)-1]
			if !rowActive[r] || rowCnt[r] != 1 {
				continue
			}
			k := int32(-1)
			for t := rowStart[r]; t < rowStart[r+1]; t++ {
				if colActive[rowSlot[t]] {
					k = rowSlot[t]
					break
				}
			}
			if k < 0 {
				rowActive[r] = false
				continue
			}
			order = append(order, k)
			hints = append(hints, r)
			deactivate(k, r)
			continue
		}
		if len(colQ) > 0 {
			k := colQ[len(colQ)-1]
			colQ = colQ[:len(colQ)-1]
			if !colActive[k] || colCnt[k] != 1 {
				continue
			}
			r := int32(-1)
			ri, _ := s.A.col(int(s.basic[k]))
			for _, rr := range ri {
				if rowActive[rr] {
					r = rr
					break
				}
			}
			if r < 0 {
				colActive[k] = false
				continue
			}
			backSlots = append(backSlots, k)
			backRows = append(backRows, r)
			deactivate(k, r)
			continue
		}
		// Bump: no singleton available. Take the active column with the
		// fewest active rows (lowest slot on ties, for determinism) and pair
		// it with its least-populated active row.
		bk, bc := int32(-1), int32(1<<30)
		for k := int32(0); k < int32(m); k++ {
			if colActive[k] && colCnt[k] < bc {
				bk, bc = k, colCnt[k]
			}
		}
		if bk < 0 {
			break // remaining rows are uncovered; factor pass reports singular
		}
		br, brc := int32(-1), int32(1<<30)
		ri, _ := s.A.col(int(s.basic[bk]))
		for _, rr := range ri {
			if rowActive[rr] && rowCnt[rr] < brc {
				br, brc = rr, rowCnt[rr]
			}
		}
		if br < 0 {
			colActive[bk] = false
			processed++
			order = append(order, bk)
			hints = append(hints, -1)
			continue
		}
		order = append(order, bk)
		hints = append(hints, br)
		deactivate(bk, br)
	}
	for i := len(backSlots) - 1; i >= 0; i-- {
		order = append(order, backSlots[i])
		hints = append(hints, backRows[i])
	}
	// Park the grown buffers for the next refactorisation; refactor consumes
	// order/hints before factorOrder can run again, so handing them back out
	// next call is safe.
	s.fOrder, s.fHints = order, hints
	s.fRowQ, s.fColQ = rowQ, colQ
	s.fBackSlots, s.fBackRows = backSlots, backRows
	return order, hints
}

// i32Scratch resizes *buf to length n without zeroing, reallocating only on
// capacity growth; callers must fully overwrite the result (or zero it
// themselves) before reading.
func i32Scratch(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// boolScratch resizes *buf to length n without zeroing, reallocating only on
// capacity growth; callers must fully overwrite the result (or zero it
// themselves) before reading.
func boolScratch(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// refactor rebuilds the eta file from the current basic set in the
// fill-reducing order of factorOrder: each basis column is FTRANed through
// the file built so far and pivoted on its suggested row when numerically
// sound, else on the largest-magnitude entry among rows not yet pivoted.
// The basis is a column set — which row a column pivots on is bookkeeping —
// so basic/pos are relabelled to the chosen rows; callers recompute xB
// afterwards. Free row choice makes the factorisation succeed for every
// nonsingular basis (pinning columns to fixed rows can deadlock on a zero
// transformed diagonal even when the basis is fine).
func (s *BoundedSolver) refactor() error {
	s.cRefactors.Inc()
	order, hints := s.factorOrder()
	cols := i32Scratch(&s.fCols, s.m)
	copy(cols, s.basic)
	s.etas.reset()
	rowTaken := boolScratch(&s.fRowTaken, s.m)
	for i := range rowTaken {
		rowTaken[i] = false
	}
	d := s.dir
	for t, k := range order {
		j := cols[k]
		for i := range d {
			d[i] = 0
		}
		s.A.scatter(d, int(j), 1)
		s.etas.ftran(d)
		pivRow, pivAbs := -1, 0.0
		for r := 0; r < s.m; r++ {
			if rowTaken[r] {
				continue
			}
			if a := math.Abs(d[r]); a > pivAbs {
				pivRow, pivAbs = r, a
			}
		}
		if pivRow < 0 || pivAbs < pivTol {
			return ErrNumerical // column dependent on those already pivoted
		}
		// Prefer the fill-reducing hint row when it is within a stability
		// threshold of the best available pivot.
		if h := hints[t]; h >= 0 && !rowTaken[h] && int(h) != pivRow {
			if a := math.Abs(d[h]); a >= pivTol && a >= 0.01*pivAbs {
				pivRow = int(h)
			}
		}
		rowTaken[pivRow] = true
		s.etas.push(d, int32(pivRow))
		s.basic[pivRow] = j
		s.pos[j] = int32(pivRow)
	}
	if len(order) < s.m {
		return ErrNumerical
	}
	s.etaBase = s.etas.len()
	return nil
}

// computeXB recomputes basic values xB = B⁻¹(b − Σ_nonbasic A_j·x_j).
func (s *BoundedSolver) computeXB() {
	rhs := s.rho
	copy(rhs, s.b)
	for j := 0; j < s.nTot; j++ {
		if s.pos[j] >= 0 {
			continue
		}
		if v := s.valOf(j); v != 0 {
			s.A.scatter(rhs, j, -v)
		}
	}
	s.etas.ftran(rhs)
	copy(s.xB, rhs)
}

// expired reports whether the context, deadline, or iteration budget is
// exhausted; it increments the shared iteration counter. The context and
// clock are polled every 32 pivots so the check stays off the critical path
// of the pivot loop; see DESIGN.md §8 for the cancellation-latency budget.
func (s *BoundedSolver) expired() bool {
	s.iter++
	if s.iter > s.maxIter {
		return true
	}
	if s.iter%32 == 0 {
		if s.ctx.Err() != nil {
			return true
		}
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			return true
		}
	}
	return false
}

type phaseKind int

const (
	phase1 phaseKind = iota
	phase2
)

// primal runs bounded primal simplex pivots. In phase 1 the objective is
// the total bound violation of the basic variables (recomputed gradient per
// iteration); in phase 2 it is the problem objective over a primal-feasible
// basis. Returns Optimal (phase 1: feasible), Infeasible (phase 1 only),
// Unbounded (phase 2 only), or IterLimit.
func (s *BoundedSolver) primal(kind phaseKind) Status {
	// Each phase starts a fresh devex reference framework: the phase-1
	// gradient and the problem objective price against different costs, so
	// weights learned in one phase are meaningless in the other.
	s.resetDevex()
	for {
		if s.expired() {
			return IterLimit
		}
		var cost []float64
		if kind == phase1 {
			if !s.infeasGradient() {
				return Optimal // primal feasible
			}
			copy(s.y, s.sigma)
		} else {
			for r := 0; r < s.m; r++ {
				s.y[r] = s.c[s.basic[r]]
			}
		}
		s.etas.btran(s.y)
		if kind == phase2 {
			cost = s.c
		}
		enter, dir := s.priceEnter(s.y, cost)
		if enter < 0 {
			if kind == phase1 {
				return Infeasible // violations remain at phase-1 optimum
			}
			return Optimal
		}
		d := s.dir
		for i := range d {
			d[i] = 0
		}
		s.A.scatter(d, enter, 1)
		s.etas.ftran(d)

		var t float64
		var leave int
		var leaveAtUp bool
		if kind == phase1 {
			t, leave, leaveAtUp = s.ratioPhase1(enter, dir, d)
		} else {
			t, leave, leaveAtUp = s.ratioPhase2(enter, dir, d)
		}
		if math.IsInf(t, 1) {
			if kind == phase1 {
				// The phase-1 objective is bounded below by zero; an
				// unbounded ray indicates numerical trouble. Refactorise
				// and retry once per occurrence.
				if err := s.refactor(); err != nil {
					s.numErr = err
					return IterLimit
				}
				s.computeXB()
				continue
			}
			return Unbounded
		}
		if leave >= 0 {
			// Must run against the pre-pivot basis: it BTRANs e_leave
			// through the eta file applyStep is about to extend.
			s.devexUpdate(enter, leave, d)
		}
		if err := s.applyStep(enter, dir, d, t, leave, leaveAtUp); err != nil {
			s.numErr = err
			return IterLimit
		}
		if t > tol {
			s.stall = 0
		} else {
			s.stall++
		}
	}
}

// infeasGradient fills sigma with the phase-1 gradient (+1 above upper,
// −1 below lower, 0 feasible) and reports whether any violation exists.
func (s *BoundedSolver) infeasGradient() bool {
	any := false
	for r := 0; r < s.m; r++ {
		j := s.basic[r]
		switch {
		case s.xB[r] > s.up[j]+bndTol:
			s.sigma[r] = 1
			any = true
		case s.xB[r] < s.lo[j]-bndTol:
			s.sigma[r] = -1
			any = true
		default:
			s.sigma[r] = 0
		}
	}
	return any
}

// priceEnter chooses the entering column: partial pricing over cyclic
// chunks with devex reference-weight scoring (rc²/weight, largest wins)
// within the first chunk containing a candidate, and Bland's lowest-index
// rule under stall. Devex approximates steepest-edge pricing at a fraction
// of the cost — long thin columns that barely move the objective per unit
// step score low — and on the selection-shaped LPs cuts the pivot count
// well below Dantzig's. cost is nil in phase 1 (nonbasic columns have zero
// infeasibility cost). Returns (-1, 0) at phase optimality, otherwise the
// column and +1 (enter rising from lower) or −1 (falling from upper).
func (s *BoundedSolver) priceEnter(y []float64, cost []float64) (int, int) {
	rcOf := func(j int) float64 {
		rc := -s.A.dot(y, j)
		if cost != nil {
			rc += cost[j]
		}
		return rc
	}
	eligible := func(j int) (float64, int) {
		if s.pos[j] >= 0 || s.lo[j] == s.up[j] {
			return 0, 0
		}
		rc := rcOf(j)
		if !s.atUp[j] && rc < -tol {
			return rc, 1
		}
		if s.atUp[j] && rc > tol {
			return -rc, -1
		}
		return 0, 0
	}
	if s.stall >= blandAfter {
		for j := 0; j < s.nTot; j++ {
			if _, dir := eligible(j); dir != 0 {
				return j, dir
			}
		}
		return -1, 0
	}
	chunk := s.nTot / 16
	if chunk < 32 {
		chunk = 32
	}
	scanned := 0
	for scanned < s.nTot {
		bestScore := 0.0
		best, bestDir := -1, 0
		end := scanned + chunk
		for ; scanned < end && scanned < s.nTot; scanned++ {
			j := (s.scanAt + scanned) % s.nTot
			if rc, dir := eligible(j); dir != 0 {
				// Devex score: squared reduced cost over the reference
				// weight. Exact comparisons with lowest-column-index ties
				// keep the choice deterministic.
				score := rc * rc / s.dw[j]
				if score > bestScore || (score == bestScore && best >= 0 && j < best) {
					bestScore = score
					best, bestDir = j, dir
				}
			}
		}
		if best >= 0 {
			s.scanAt = (s.scanAt + scanned) % s.nTot
			return best, bestDir
		}
	}
	return -1, 0
}

// devexResetAbove bounds the devex weights; a weight outgrowing it resets
// the reference framework (Forrest–Goldfarb's safeguard against drift).
const devexResetAbove = 1e7

// resetDevex restores the devex reference framework: every column weight 1,
// making the first pricing pass of a phase pure Dantzig.
func (s *BoundedSolver) resetDevex() {
	for j := range s.dw {
		s.dw[j] = 1
	}
}

// devexUpdate refreshes the devex reference weights after the ratio test
// picked (enter, leave): each nonbasic column's weight grows to at least
// its squared pivot-row ratio times the entering weight, and the leaving
// column re-enters the nonbasic set with the entering column's weight
// transferred through the pivot element. It BTRANs e_leave through the
// current eta file and walks the touched rows of the CSR mirror, so it must
// run against the pre-pivot basis (before applyStep extends the file).
func (s *BoundedSolver) devexUpdate(enter, leave int, d []float64) {
	aq := d[leave]
	if math.Abs(aq) < pivTol {
		return
	}
	wq := s.dw[enter]
	// sigma is free scratch here: phase 1 rebuilds its gradient at the top
	// of every iteration and phase 2 never reads it.
	rho := s.sigma
	for i := range rho {
		rho[i] = 0
	}
	rho[leave] = 1
	s.etas.btran(rho)
	acc, touched := s.dvAcc, s.dvTouch[:0]
	for i := 0; i < s.m; i++ {
		if rho[i] == 0 {
			continue
		}
		for t, end := s.ar.rowStart[i], s.ar.rowStart[i+1]; t < end; t++ {
			j := s.ar.colIdx[t]
			if acc[j] == 0 {
				touched = append(touched, j)
			}
			acc[j] += rho[i] * s.ar.val[t]
		}
	}
	reset := false
	for _, j := range touched {
		alpha := acc[j]
		acc[j] = 0
		if int(j) == enter || s.pos[j] >= 0 {
			continue
		}
		r := alpha / aq
		if cand := r * r * wq; cand > s.dw[j] {
			s.dw[j] = cand
			if cand > devexResetAbove {
				reset = true
			}
		}
	}
	s.dvTouch = touched
	if w := wq / (aq * aq); w > 1 {
		s.dw[s.basic[leave]] = w
	} else {
		s.dw[s.basic[leave]] = 1
	}
	if reset {
		s.resetDevex()
	}
}

// ratioPhase2 finds the blocking step for a primal-feasible basis.
// dir·d is the rate of decrease of each basic variable per unit of the
// entering variable's move. leave < 0 with finite t means a bound flip.
func (s *BoundedSolver) ratioPhase2(enter, dir int, d []float64) (float64, int, bool) {
	t := s.up[enter] - s.lo[enter] // bound flip distance (may be +Inf)
	leave := -1
	leaveAtUp := false
	for r := 0; r < s.m; r++ {
		dd := float64(dir) * d[r]
		j := s.basic[r]
		var lim float64
		var hitUp bool
		if dd > tol {
			if math.IsInf(s.lo[j], -1) {
				continue
			}
			lim = (s.xB[r] - s.lo[j]) / dd
		} else if dd < -tol {
			if math.IsInf(s.up[j], 1) {
				continue
			}
			lim = (s.up[j] - s.xB[r]) / -dd
			hitUp = true
		} else {
			continue
		}
		if lim < 0 {
			lim = 0
		}
		if lim < t-tol || (lim < t+tol && (leave < 0 || j < s.basic[leave])) {
			t = lim
			leave = r
			leaveAtUp = hitUp
		}
	}
	return t, leave, leaveAtUp
}

// ratioPhase1 finds the blocking step while basic variables may be outside
// their bounds: a feasible basic blocks at the bound it approaches, an
// infeasible one blocks where it regains feasibility, and a basic moving
// deeper into infeasibility never blocks (the gradient accounts for it).
func (s *BoundedSolver) ratioPhase1(enter, dir int, d []float64) (float64, int, bool) {
	t := s.up[enter] - s.lo[enter]
	leave := -1
	leaveAtUp := false
	for r := 0; r < s.m; r++ {
		dd := float64(dir) * d[r]
		j := s.basic[r]
		var lim float64
		var hitUp bool
		if dd > tol { // basic decreasing
			switch {
			case s.xB[r] > s.up[j]+bndTol:
				lim = (s.xB[r] - s.up[j]) / dd
				hitUp = true
			case s.xB[r] >= s.lo[j]-bndTol && !math.IsInf(s.lo[j], -1):
				lim = (s.xB[r] - s.lo[j]) / dd
			default:
				continue // below lower and falling: gradient handles it
			}
		} else if dd < -tol { // basic increasing
			switch {
			case s.xB[r] < s.lo[j]-bndTol:
				lim = (s.lo[j] - s.xB[r]) / -dd
			case s.xB[r] <= s.up[j]+bndTol && !math.IsInf(s.up[j], 1):
				lim = (s.up[j] - s.xB[r]) / -dd
				hitUp = true
			default:
				continue
			}
		} else {
			continue
		}
		if lim < 0 {
			lim = 0
		}
		if lim < t-tol || (lim < t+tol && (leave < 0 || j < s.basic[leave])) {
			t = lim
			leave = r
			leaveAtUp = hitUp
		}
	}
	return t, leave, leaveAtUp
}

// applyStep moves the entering variable by t (in direction dir off its
// bound), updates the basic values, and pivots (or bound-flips when
// leave < 0). The eta file grows by one; it is refactorised periodically
// or when the pivot element is numerically unusable.
func (s *BoundedSolver) applyStep(enter, dir int, d []float64, t float64, leave int, leaveAtUp bool) error {
	if t != 0 {
		step := float64(dir) * t
		for r := 0; r < s.m; r++ {
			if d[r] != 0 {
				s.xB[r] -= step * d[r]
			}
		}
	}
	if leave < 0 {
		s.cFlips.Inc()
		s.atUp[enter] = !s.atUp[enter]
		return nil
	}
	s.cPivots.Inc()
	lv := s.basic[leave]
	s.pos[lv] = -1
	s.atUp[lv] = leaveAtUp
	enterVal := s.valOf(enter) + float64(dir)*t
	s.basic[leave] = int32(enter)
	s.pos[enter] = int32(leave)
	s.xB[leave] = enterVal
	pushed := s.etas.push(d, int32(leave))
	if !pushed || s.etas.len()-s.etaBase >= refactorEvery {
		if err := s.refactor(); err != nil {
			return err
		}
		s.computeXB()
	}
	return nil
}

// extractInto reads the structural solution into x, reusing its capacity.
func (s *BoundedSolver) extractInto(x []float64) []float64 {
	if cap(x) < s.n {
		x = make([]float64, s.n)
	}
	x = x[:s.n]
	for j := 0; j < s.n; j++ {
		if r := s.pos[j]; r >= 0 {
			x[j] = s.xB[r]
		} else {
			x[j] = s.valOf(j)
		}
	}
	for i, v := range x {
		if v < 0 && v > -1e-7 {
			x[i] = 0
		}
	}
	return x
}
