package lp

import "sort"

// csc is a sparse matrix in compressed-sparse-column form. The revised
// simplex stores the constraint matrix A extended with one slack column per
// row: columns [0, n) are structural, [n, n+m) are unit slack columns
// (coefficient +1; the slack's bounds encode the row sense).
type csc struct {
	m, n     int // rows, columns (including slacks)
	colStart []int32
	rowIdx   []int32
	val      []float64
}

// col returns the non-zeros of column j.
func (a *csc) col(j int) ([]int32, []float64) {
	s, e := a.colStart[j], a.colStart[j+1]
	return a.rowIdx[s:e], a.val[s:e]
}

// nnz returns the stored non-zero count.
func (a *csc) nnz() int { return len(a.val) }

// dot returns yᵀ·A_j, the sparse dot product of a dense vector with
// column j.
func (a *csc) dot(y []float64, j int) float64 {
	var sum float64
	for s, e := a.colStart[j], a.colStart[j+1]; s < e; s++ {
		sum += y[a.rowIdx[s]] * a.val[s]
	}
	return sum
}

// scatter adds t·A_j into the dense vector v.
func (a *csc) scatter(v []float64, j int, t float64) {
	for s, e := a.colStart[j], a.colStart[j+1]; s < e; s++ {
		v[a.rowIdx[s]] += a.val[s] * t
	}
}

// csr is a row-compressed mirror of a csc matrix. The revised simplex keeps
// one for the devex weight update, which walks the rows touched by the
// BTRANed pivot row — a column-only store would make that O(nnz) per row
// probe instead of a direct slice scan.
type csr struct {
	rowStart []int32
	colIdx   []int32
	val      []float64
}

// buildCSR transposes a into row-major form; column indices are ascending
// within each row (deterministic scan order for the devex update).
func buildCSR(a *csc) csr {
	r := csr{
		rowStart: make([]int32, a.m+1),
		colIdx:   make([]int32, len(a.val)),
		val:      make([]float64, len(a.val)),
	}
	for _, ri := range a.rowIdx {
		r.rowStart[ri+1]++
	}
	for i := 0; i < a.m; i++ {
		r.rowStart[i+1] += r.rowStart[i]
	}
	cursor := make([]int32, a.m)
	copy(cursor, r.rowStart[:a.m])
	for j := 0; j < a.n; j++ {
		for t := a.colStart[j]; t < a.colStart[j+1]; t++ {
			i := a.rowIdx[t]
			r.colIdx[cursor[i]] = int32(j)
			r.val[cursor[i]] = a.val[t]
			cursor[i]++
		}
	}
	return r
}

// buildCSC assembles the extended matrix [A | I] from the problem rows.
// Duplicate terms on the same (row, variable) pair accumulate, matching the
// dense engine. Entries within each column are sorted by row index.
func buildCSC(p Problem) csc {
	m := len(p.Rows)
	n := p.NumVars
	a := csc{m: m, n: n + m}

	// Merge duplicates per row and count entries per structural column.
	type ent struct {
		col int32
		val float64
	}
	merged := make([][]ent, m)
	counts := make([]int32, a.n+1)
	var scratch []ent
	for i, r := range p.Rows {
		scratch = scratch[:0]
		for _, t := range r.Terms {
			scratch = append(scratch, ent{col: int32(t.Var), val: t.Coeff})
		}
		sort.Slice(scratch, func(x, y int) bool { return scratch[x].col < scratch[y].col })
		row := make([]ent, 0, len(scratch))
		for _, e := range scratch {
			if k := len(row); k > 0 && row[k-1].col == e.col {
				row[k-1].val += e.val
			} else {
				row = append(row, e)
			}
		}
		// Drop exact zeros after accumulation.
		kept := row[:0]
		for _, e := range row {
			if e.val != 0 {
				kept = append(kept, e)
			}
		}
		merged[i] = kept
		for _, e := range kept {
			counts[e.col+1]++
		}
		counts[int32(n+i)+1]++ // slack
	}
	a.colStart = make([]int32, a.n+1)
	for j := 0; j < a.n; j++ {
		a.colStart[j+1] = a.colStart[j] + counts[j+1]
	}
	total := a.colStart[a.n]
	a.rowIdx = make([]int32, total)
	a.val = make([]float64, total)
	cursor := make([]int32, a.n)
	copy(cursor, a.colStart[:a.n])
	for i := 0; i < m; i++ {
		for _, e := range merged[i] {
			at := cursor[e.col]
			a.rowIdx[at] = int32(i)
			a.val[at] = e.val
			cursor[e.col]++
		}
		j := int32(n + i)
		a.rowIdx[cursor[j]] = int32(i)
		a.val[cursor[j]] = 1
		cursor[j]++
	}
	return a
}
