package lp

import "math"

// Basis is an exportable snapshot of a simplex basis, used to warm-start a
// BoundedSolver from a parent node's optimal basis in branch and bound.
// Basic[r] is the column basic in row r (structural columns are < NumVars,
// slack columns are NumVars+row); AtUpper marks nonbasic columns sitting at
// their upper bound.
type Basis struct {
	// Basic[r] is the column basic in row r.
	Basic []int32
	// AtUpper[c] marks nonbasic column c as sitting at its upper bound.
	AtUpper []bool
}

// clone deep-copies the snapshot so callers can retain it across solves.
func (b *Basis) clone() *Basis {
	if b == nil {
		return nil
	}
	c := &Basis{
		Basic:   make([]int32, len(b.Basic)),
		AtUpper: make([]bool, len(b.AtUpper)),
	}
	copy(c.Basic, b.Basic)
	copy(c.AtUpper, b.AtUpper)
	return c
}

// etaFile is a product-form representation of the basis inverse:
// B = E_1·E_2·…·E_k where each E is the identity with one column replaced
// by a pivot direction d = B'⁻¹·A_enter. FTRAN applies the inverses in
// creation order, BTRAN transposed in reverse order. The file is rebuilt
// from scratch (refactorisation) periodically to bound its length and
// squash numerical drift.
type etaFile struct {
	pivRow []int32   // pivot row per eta
	piv    []float64 // pivot element d[pivRow]
	starts []int32   // offsets into idx/val; len = len(pivRow)+1
	idx    []int32   // off-pivot row indices
	val    []float64 // off-pivot values of d
}

// dropTol discards near-zero eta entries; pivTol rejects pivots too small
// to divide by safely.
const (
	dropTol = 1e-12
	pivTol  = 1e-9
)

func (e *etaFile) reset() {
	e.pivRow = e.pivRow[:0]
	e.piv = e.piv[:0]
	if len(e.starts) == 0 {
		e.starts = append(e.starts, 0)
	}
	e.starts = e.starts[:1]
	e.idx = e.idx[:0]
	e.val = e.val[:0]
}

func (e *etaFile) len() int { return len(e.pivRow) }

// push appends the eta for pivot direction d (dense, length m) with pivot
// row r. It returns false if the pivot element is numerically unusable.
func (e *etaFile) push(d []float64, r int32) bool {
	p := d[r]
	if math.Abs(p) < pivTol {
		return false
	}
	e.pivRow = append(e.pivRow, r)
	e.piv = append(e.piv, p)
	for i, v := range d {
		if int32(i) != r && math.Abs(v) > dropTol {
			e.idx = append(e.idx, int32(i))
			e.val = append(e.val, v)
		}
	}
	e.starts = append(e.starts, int32(len(e.idx)))
	return true
}

// ftran solves B·w = v in place (w = B⁻¹·v): apply E⁻¹ in creation order.
// For E with column r = d: w_r = v_r/d_r, w_i = v_i − d_i·w_r.
func (e *etaFile) ftran(v []float64) {
	for k := range e.pivRow {
		r := e.pivRow[k]
		t := v[r] / e.piv[k]
		if t != 0 {
			for s := e.starts[k]; s < e.starts[k+1]; s++ {
				v[e.idx[s]] -= e.val[s] * t
			}
		}
		v[r] = t
	}
}

// btran solves Bᵀ·w = v in place (w = B⁻ᵀ·v): apply E⁻ᵀ in reverse order.
// For E with column r = d: w_r = (v_r − Σ_{i≠r} d_i·v_i)/d_r, w_i = v_i.
func (e *etaFile) btran(v []float64) {
	for k := len(e.pivRow) - 1; k >= 0; k-- {
		r := e.pivRow[k]
		sum := v[r]
		for s := e.starts[k]; s < e.starts[k+1]; s++ {
			sum -= e.val[s] * v[e.idx[s]]
		}
		v[r] = sum / e.piv[k]
	}
}
