package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestDeadlineAborts(t *testing.T) {
	// A moderately large random LP with an already-expired deadline must
	// return IterLimit immediately rather than solving.
	rng := rand.New(rand.NewSource(2))
	n, m := 60, 60
	p := Problem{NumVars: n, Objective: make([]float64, n)}
	for i := range p.Objective {
		p.Objective[i] = rng.Float64()
	}
	for i := 0; i < m; i++ {
		row := Row{Sense: GE, RHS: 1}
		for j := 0; j < n; j++ {
			row.Terms = append(row.Terms, Term{j, rng.Float64()})
		}
		p.Rows = append(p.Rows, row)
	}
	s, err := SolveWithOptions(p, Options{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != IterLimit {
		t.Fatalf("status %v, want iteration-limit on expired deadline", s.Status)
	}
}

func TestTableauMemoryBudget(t *testing.T) {
	// Coupled GE rows so presolve cannot solve the problem outright (a
	// presolve-solved problem never allocates solver workspace at all).
	p := Problem{NumVars: 4, Objective: []float64{1, 1, 1, 1}}
	for i := 0; i < 4; i++ {
		p.Rows = append(p.Rows, Row{
			Terms: []Term{{i, 1}, {(i + 1) % 4, 1}}, Sense: GE, RHS: 1,
		})
	}
	// A budget too small for even this tiny tableau triggers ErrTooLarge.
	_, err := SolveWithOptions(p, Options{MaxTableauBytes: 8})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	// The default budget solves it.
	s, err := SolveWithOptions(p, Options{})
	if err != nil || s.Status != Optimal {
		t.Fatalf("default budget failed: %v %v", s.Status, err)
	}
}

func TestTransportationProblem(t *testing.T) {
	// Classic 2-supply / 3-demand transportation problem with a known
	// optimum. Supplies: 20, 30. Demands: 10, 25, 15.
	// Costs:      d1 d2 d3
	//   s1:        2  3  1
	//   s2:        5  4  8
	// Optimal plan: s1→d3:15, s1→d1:5, s2→d1:5, s2→d2:25
	// cost = 15·1 + 5·2 + 5·5 + 25·4 = 150.
	// Variables x[s][d] flattened: x00 x01 x02 x10 x11 x12.
	p := Problem{
		NumVars:   6,
		Objective: []float64{2, 3, 1, 5, 4, 8},
		Rows: []Row{
			{Terms: []Term{{0, 1}, {1, 1}, {2, 1}}, Sense: EQ, RHS: 20}, // supply 1
			{Terms: []Term{{3, 1}, {4, 1}, {5, 1}}, Sense: EQ, RHS: 30}, // supply 2
			{Terms: []Term{{0, 1}, {3, 1}}, Sense: EQ, RHS: 10},         // demand 1
			{Terms: []Term{{1, 1}, {4, 1}}, Sense: EQ, RHS: 25},         // demand 2
			{Terms: []Term{{2, 1}, {5, 1}}, Sense: EQ, RHS: 15},         // demand 3
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-150) > 1e-6 {
		t.Fatalf("status %v obj %v, want optimal 150", s.Status, s.Objective)
	}
}

func TestDietProblem(t *testing.T) {
	// Tiny Stigler-style diet: minimise 0.6a + 0.35b
	// s.t. 30a + 20b >= 60 (nutrient 1), 10a + 40b >= 40 (nutrient 2).
	// Vertices: (2,0) violates nutrient 2; intersection (1.6,0.6) costs
	// 1.17; the all-b corner (0,3) satisfies both and costs 1.05 — optimal.
	p := Problem{
		NumVars:   2,
		Objective: []float64{0.6, 0.35},
		Rows: []Row{
			{Terms: []Term{{0, 30}, {1, 20}}, Sense: GE, RHS: 60},
			{Terms: []Term{{0, 10}, {1, 40}}, Sense: GE, RHS: 40},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-1.05) > 1e-6 {
		t.Fatalf("status %v obj %v, want optimal 1.05", s.Status, s.Objective)
	}
	if math.Abs(s.X[0]) > 1e-6 || math.Abs(s.X[1]-3) > 1e-6 {
		t.Fatalf("X = %v, want (0, 3)", s.X)
	}
}

func TestDualityGapZero(t *testing.T) {
	// Weak LP duality spot-check on random bounded problems: the optimum
	// must satisfy all constraints with complementary tightness — verified
	// indirectly by perturbation: decreasing any positive variable must not
	// keep feasibility with a lower objective.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(3)
		p := Problem{NumVars: n, Objective: make([]float64, n)}
		for i := range p.Objective {
			p.Objective[i] = 0.5 + rng.Float64()
		}
		row := Row{Sense: GE, RHS: 2}
		for j := 0; j < n; j++ {
			row.Terms = append(row.Terms, Term{j, 0.5 + rng.Float64()})
		}
		p.Rows = append(p.Rows, row)
		s := solveOK(t, p)
		if s.Status != Optimal {
			t.Fatalf("trial %d: %v", trial, s.Status)
		}
		// Single covering constraint: optimum puts everything on the best
		// cost/coefficient ratio variable, and the constraint is tight.
		var lhs float64
		for _, term := range row.Terms {
			lhs += term.Coeff * s.X[term.Var]
		}
		if math.Abs(lhs-2) > 1e-6 {
			t.Errorf("trial %d: covering constraint slack at optimum: %v", trial, lhs)
		}
	}
}

func BenchmarkSolveDense(b *testing.B) {
	// An OPERON-selection-shaped LP: assignment equalities plus covering
	// rows, ~200 variables.
	rng := rand.New(rand.NewSource(3))
	nNets, cands := 50, 4
	n := nNets * cands
	p := Problem{NumVars: n, Objective: make([]float64, n)}
	for i := range p.Objective {
		p.Objective[i] = 1 + rng.Float64()*5
	}
	for i := 0; i < nNets; i++ {
		row := Row{Sense: EQ, RHS: 1}
		for j := 0; j < cands; j++ {
			row.Terms = append(row.Terms, Term{i*cands + j, 1})
		}
		p.Rows = append(p.Rows, row)
	}
	for k := 0; k < 30; k++ {
		row := Row{Sense: LE, RHS: 10}
		for j := 0; j < n; j += 3 {
			row.Terms = append(row.Terms, Term{j, rng.Float64()})
		}
		p.Rows = append(p.Rows, row)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			b.Fatalf("%v %v", s.Status, err)
		}
	}
}
