// Package lp implements linear-programming solvers for problems in the form
//
//	min  cᵀx
//	s.t. aᵢᵀx {<=,=,>=} bᵢ
//	     0 <= x <= u   (u optional, +Inf by default)
//
// It is the substrate under OPERON's ILP stage (paper §3.3), standing in
// for the commercial solver the authors used. Two engines are provided:
//
//   - Solve / SolveWithOptions — a revised simplex over sparse column
//     storage (CSC) with a product-form eta representation of B⁻¹, partial
//     pricing, native bounded variables, and a dual-simplex phase used to
//     warm-start from a near-optimal basis (see BoundedSolver). This is the
//     production path.
//   - SolveDense / SolveDenseWithOptions — the original dense two-phase
//     tableau simplex, retained as a cross-check oracle for tests and as a
//     fallback on numerical breakdown of the revised engine.
//
// Both engines use deterministic pivot rules (Dantzig/partial pricing with
// a Bland anti-cycling fallback, lowest-index tie-breaks), so results are
// bit-identical across runs and worker counts.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"operon/internal/obs"
)

// Sense is a constraint direction.
type Sense int

const (
	// LE is aᵀx <= b.
	LE Sense = iota
	// GE is aᵀx >= b.
	GE
	// EQ is aᵀx = b.
	EQ
)

// Term is one non-zero coefficient of a constraint row.
type Term struct {
	// Var is the variable index in [0, Problem.NumVars).
	Var int
	// Coeff is the coefficient of Var in the row.
	Coeff float64
}

// Row is one constraint.
type Row struct {
	// Terms holds the non-zero coefficients of the row.
	Terms []Term
	// Sense relates the row to RHS: LE, GE, or EQ.
	Sense Sense
	// RHS is the constraint's right-hand side.
	RHS float64
}

// Problem is a linear programme over NumVars non-negative variables.
type Problem struct {
	// NumVars is the number of structural variables.
	NumVars int
	// Objective is minimised; length NumVars.
	Objective []float64
	// Rows lists the constraints.
	Rows []Row
	// Upper optionally gives per-variable upper bounds (0 <= x_i <= Upper[i]).
	// A nil slice, or a +Inf entry, means unbounded above. The revised
	// simplex handles these natively in the ratio test; the dense oracle
	// materialises them as LE rows.
	Upper []float64
}

// Validate checks structural consistency.
func (p Problem) Validate() error {
	if p.NumVars <= 0 {
		return errors.New("lp: no variables")
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("lp: objective has %d coefficients for %d variables",
			len(p.Objective), p.NumVars)
	}
	if p.Upper != nil {
		if len(p.Upper) != p.NumVars {
			return fmt.Errorf("lp: %d upper bounds for %d variables",
				len(p.Upper), p.NumVars)
		}
		for i, u := range p.Upper {
			if math.IsNaN(u) || u < 0 {
				return fmt.Errorf("lp: invalid upper bound %v on variable %d", u, i)
			}
		}
	}
	for i, r := range p.Rows {
		for _, t := range r.Terms {
			if t.Var < 0 || t.Var >= p.NumVars {
				return fmt.Errorf("lp: row %d references variable %d", i, t.Var)
			}
			if math.IsNaN(t.Coeff) || math.IsInf(t.Coeff, 0) {
				return fmt.Errorf("lp: row %d has non-finite coefficient", i)
			}
		}
		if math.IsNaN(r.RHS) || math.IsInf(r.RHS, 0) {
			return fmt.Errorf("lp: row %d has non-finite rhs", i)
		}
	}
	return nil
}

// Status describes the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
	// IterLimit means the iteration budget was exhausted.
	IterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "iteration-limit"
	}
}

// Solution is the result of Solve.
type Solution struct {
	// Status classifies the solve outcome.
	Status Status
	// X is the primal solution (length Problem.NumVars).
	X []float64
	// Objective is the objective value of X.
	Objective float64
	// Iterations counts simplex pivots consumed by the solve (both engines
	// fill it; diagnostic only).
	Iterations int
}

// ErrTooLarge reports that the solver workspace would exceed the memory
// budget; callers treat it like a resource limit.
var ErrTooLarge = errors.New("lp: problem exceeds solver memory budget")

// Options bound a solve beyond the problem statement.
type Options struct {
	// Ctx, when non-nil, bounds the solve: its deadline (if any) aborts the
	// pivot loop with Status IterLimit once passed, and cancellation is
	// observed every few pivots with the same effect. This is the single
	// time-budget mechanism of the solver substrate; the legacy Deadline
	// field below folds into it. A nil Ctx means context.Background().
	Ctx context.Context
	// Deadline aborts the solve with Status IterLimit once passed.
	// The zero time means no deadline.
	//
	// Deprecated: Deadline is a thin wrapper over the context deadline —
	// it is merged with Ctx's deadline (the earlier one wins). New callers
	// should pass a context with a deadline via Ctx instead.
	Deadline time.Time
	// MaxTableauBytes caps the solver workspace allocation; Solve returns
	// ErrTooLarge above it. Zero means 1.5 GiB. The revised simplex needs
	// far less memory than the dense tableau, so the same budget admits
	// much larger problems.
	MaxTableauBytes int64
	// Obs, when non-nil, receives the revised engine's behaviour counters:
	// lp.solves, lp.pivots, lp.bound_flips, and lp.refactors. The dense
	// oracle is not instrumented. Nil costs the pivot loop one nil check.
	Obs *obs.Tracer
}

// effectiveBudget resolves the time budget of opt into the context to poll
// for cancellation and the earliest applicable deadline: the legacy Deadline
// field merged with the context's own deadline (zero time when neither is
// set). Both simplex engines call it once per solve; it delegates to
// ResolveBudget so all layers share one deadline source.
func (opt Options) effectiveBudget() (context.Context, time.Time) {
	return ResolveBudget(opt.Ctx, opt.Deadline)
}

const (
	tol = 1e-8
	// blandAfter switches to Bland's rule after this many consecutive
	// non-improving pivots, guaranteeing termination.
	blandAfter = 64
)

// Solve runs the revised simplex method on p with default options.
func Solve(p Problem) (Solution, error) {
	return SolveWithOptions(p, Options{})
}

// SolveWithOptions runs presolve and then the revised simplex method on the
// reduced problem under the given resource bounds, falling back to the
// dense oracle on numerical breakdown (singular refactorisation that cannot
// be recovered). The solution is postsolved back to the full variable
// space, so callers never see the reduction.
func SolveWithOptions(p Problem, opt Options) (Solution, error) {
	ps, err := Presolve(p, nil, nil, nil)
	if err != nil {
		return Solution{}, err
	}
	if opt.Obs != nil {
		opt.Obs.Counter("lp.presolve_rows").Add(int64(ps.RowsRemoved))
		opt.Obs.Counter("lp.presolve_cols").Add(int64(ps.ColsRemoved))
	}
	switch ps.Outcome {
	case PresolveInfeasible:
		return Solution{Status: Infeasible}, nil
	case PresolveUnbounded:
		return Solution{Status: Unbounded}, nil
	case PresolveSolved:
		return Solution{Status: Optimal, Objective: ps.Offset, X: ps.Postsolve(nil, nil)}, nil
	}
	s, err := NewBoundedSolver(ps.P)
	if err != nil {
		return Solution{}, err
	}
	sol, _, err := s.SolveBounds(ps.Lo, ps.Up, nil, opt)
	if errors.Is(err, ErrNumerical) {
		return SolveDenseWithOptions(p, opt)
	}
	if err != nil {
		return Solution{}, err
	}
	if sol.Status == Optimal {
		sol.X = ps.Postsolve(sol.X, nil)
		sol.Objective += ps.Offset
	}
	return sol, nil
}
