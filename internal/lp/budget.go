package lp

import (
	"context"
	"time"
)

// ResolveBudget is the single deadline-plumbing helper shared by every
// solver layer: it folds an optional explicit deadline into a context,
// returning the context to poll for cancellation (never nil) and the
// earliest applicable deadline (the explicit one merged with the context's
// own; zero when neither is set). The deprecated lp.Options.Deadline and
// ilp.Options.TimeLimit wrappers both delegate here, so the branch-and-bound
// workers and the pivot loop observe exactly one time-budget source.
func ResolveBudget(ctx context.Context, deadline time.Time) (context.Context, time.Time) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	return ctx, deadline
}

// BudgetExpired reports whether a budget resolved by ResolveBudget is
// exhausted: the context is cancelled or the deadline has passed.
func BudgetExpired(ctx context.Context, deadline time.Time) bool {
	if ctx != nil && ctx.Err() != nil {
		return true
	}
	return !deadline.IsZero() && time.Now().After(deadline)
}
