package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"
)

// SolveDense runs the dense two-phase tableau simplex on p with default
// options. It is retained as a cross-check oracle for the revised simplex
// (see Solve) and as a fallback on numerical breakdown; the implementation
// favours clarity and robustness (Bland's anti-cycling rule after a stall)
// over raw speed.
func SolveDense(p Problem) (Solution, error) {
	return SolveDenseWithOptions(p, Options{})
}

// SolveDenseWithOptions runs the dense two-phase simplex method on p under
// the given resource bounds. Problem.Upper bounds are materialised as LE
// rows (the dense engine has no native bound handling).
func SolveDenseWithOptions(p Problem, opt Options) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if p.Upper != nil {
		q := p
		q.Rows = make([]Row, len(p.Rows), len(p.Rows)+len(p.Upper))
		copy(q.Rows, p.Rows)
		for i, u := range p.Upper {
			if !math.IsInf(u, 1) {
				q.Rows = append(q.Rows, Row{
					Terms: []Term{{Var: i, Coeff: 1}}, Sense: LE, RHS: u,
				})
			}
		}
		q.Upper = nil
		p = q
	}
	maxBytes := opt.MaxTableauBytes
	if maxBytes == 0 {
		maxBytes = 3 << 29 // 1.5 GiB
	}
	if bytes := tableauBytes(p); bytes > maxBytes {
		return Solution{}, fmt.Errorf("%w: needs %d bytes", ErrTooLarge, bytes)
	}
	t := newTableau(p)
	t.ctx, t.deadline = opt.effectiveBudget()
	// Phase 1: drive artificial variables to zero.
	if t.nArt > 0 {
		status := t.iterate(t.phase1Cost(), t.nCols)
		if status == Unbounded {
			// Phase-1 objective is bounded below by 0; unbounded indicates
			// a numerical breakdown.
			return Solution{}, errors.New("lp: phase-1 became unbounded (numerical failure)")
		}
		if status == IterLimit {
			return Solution{Status: IterLimit}, nil
		}
		if t.phase1Value() > 1e-6 {
			return Solution{Status: Infeasible}, nil
		}
		t.driveOutArtificials()
	}
	// Phase 2: optimise the real objective. Artificial columns are excluded
	// from entering the basis (their cost is zero, not penalised, so a
	// still-basic artificial on a redundant row cannot poison pricing).
	status := t.iterate(t.phase2Cost(), t.nVars+t.nSlack)
	sol := Solution{Status: status}
	if status == Optimal {
		sol.X = t.extract()
		sol.Objective = 0
		for i, c := range p.Objective {
			sol.Objective += c * sol.X[i]
		}
	}
	return sol, nil
}

// tableau holds the dense simplex working state.
//
// Column layout: [0, nVars) structural, [nVars, nVars+nSlack) slack/surplus,
// [nVars+nSlack, nCols) artificial. b holds the RHS, basis[r] the basic
// column of row r.
type tableau struct {
	p        Problem
	nVars    int
	nSlack   int
	nArt     int
	nCols    int
	a        [][]float64
	b        []float64
	basis    []int
	maxIter  int
	ctx      context.Context
	deadline time.Time
}

// tableauBytes estimates the dense tableau allocation for p.
func tableauBytes(p Problem) int64 {
	m := int64(len(p.Rows))
	cols := int64(p.NumVars)
	for _, r := range p.Rows {
		switch r.Sense {
		case LE:
			cols++
		case GE:
			cols += 2
		case EQ:
			cols++
		}
	}
	return m * cols * 8
}

func newTableau(p Problem) *tableau {
	m := len(p.Rows)
	t := &tableau{p: p, nVars: p.NumVars}
	// Count slacks and artificials. Rows are normalised to RHS >= 0 first.
	type rowShape struct {
		coeffs []float64
		rhs    float64
		sense  Sense
	}
	rows := make([]rowShape, m)
	for i, r := range p.Rows {
		coeffs := make([]float64, p.NumVars)
		for _, term := range r.Terms {
			coeffs[term.Var] += term.Coeff
		}
		rhs := r.RHS
		sense := r.Sense
		if rhs < 0 {
			for j := range coeffs {
				coeffs[j] = -coeffs[j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		rows[i] = rowShape{coeffs: coeffs, rhs: rhs, sense: sense}
		switch sense {
		case LE:
			t.nSlack++
		case GE:
			t.nSlack++
			t.nArt++
		case EQ:
			t.nArt++
		}
	}
	t.nCols = t.nVars + t.nSlack + t.nArt
	t.a = make([][]float64, m)
	t.b = make([]float64, m)
	t.basis = make([]int, m)
	t.maxIter = 200 * (m + t.nCols)

	slackAt := t.nVars
	artAt := t.nVars + t.nSlack
	for i, r := range rows {
		row := make([]float64, t.nCols)
		copy(row, r.coeffs)
		t.b[i] = r.rhs
		switch r.sense {
		case LE:
			row[slackAt] = 1
			t.basis[i] = slackAt
			slackAt++
		case GE:
			row[slackAt] = -1
			slackAt++
			row[artAt] = 1
			t.basis[i] = artAt
			artAt++
		case EQ:
			row[artAt] = 1
			t.basis[i] = artAt
			artAt++
		}
		t.a[i] = row
	}
	return t
}

// phase1Cost is 1 on artificial columns.
func (t *tableau) phase1Cost() []float64 {
	c := make([]float64, t.nCols)
	for j := t.nVars + t.nSlack; j < t.nCols; j++ {
		c[j] = 1
	}
	return c
}

// phase2Cost is the original objective extended with zero costs on slack
// and artificial columns; artificials are kept out of the basis by the
// entering-column restriction in iterate.
func (t *tableau) phase2Cost() []float64 {
	c := make([]float64, t.nCols)
	copy(c, t.p.Objective)
	return c
}

// phase1Value returns the current sum of artificial variables.
func (t *tableau) phase1Value() float64 {
	var sum float64
	for r, col := range t.basis {
		if col >= t.nVars+t.nSlack {
			sum += t.b[r]
		}
	}
	return sum
}

// reducedCosts computes c_j − c_Bᵀ B⁻¹ a_j for all columns under cost c.
func (t *tableau) reducedCosts(c []float64) []float64 {
	m := len(t.a)
	// y = c_B (costs of basic columns per row).
	y := make([]float64, m)
	for r, col := range t.basis {
		y[r] = c[col]
	}
	rc := make([]float64, t.nCols)
	for j := 0; j < t.nCols; j++ {
		sum := c[j]
		for r := 0; r < m; r++ {
			if y[r] != 0 && t.a[r][j] != 0 {
				sum -= y[r] * t.a[r][j]
			}
		}
		rc[j] = sum
	}
	return rc
}

// iterate performs primal simplex pivots under cost c until optimality.
// Only columns below maxCol may enter the basis.
func (t *tableau) iterate(c []float64, maxCol int) Status {
	m := len(t.a)
	if m == 0 {
		return Optimal
	}
	stall := 0
	prevObj := math.Inf(1)
	for iter := 0; iter < t.maxIter; iter++ {
		if iter%32 == 0 {
			if t.ctx.Err() != nil {
				return IterLimit
			}
			if !t.deadline.IsZero() && time.Now().After(t.deadline) {
				return IterLimit
			}
		}
		rc := t.reducedCosts(c)
		// Choose the entering column: Dantzig normally, Bland under stall.
		enter := -1
		if stall < blandAfter {
			best := -tol
			for j := 0; j < maxCol; j++ {
				if rc[j] < best {
					best = rc[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < maxCol; j++ {
				if rc[j] < -tol {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test for the leaving row (Bland tie-break on basis index).
		leave := -1
		bestRatio := math.Inf(1)
		for r := 0; r < m; r++ {
			if t.a[r][enter] > tol {
				ratio := t.b[r] / t.a[r][enter]
				if ratio < bestRatio-tol ||
					(ratio < bestRatio+tol && (leave < 0 || t.basis[r] < t.basis[leave])) {
					bestRatio = ratio
					leave = r
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
		obj := t.objectiveValue(c)
		if obj < prevObj-tol {
			stall = 0
		} else {
			stall++
		}
		prevObj = obj
	}
	return IterLimit
}

func (t *tableau) objectiveValue(c []float64) float64 {
	var sum float64
	for r, col := range t.basis {
		sum += c[col] * t.b[r]
	}
	return sum
}

// pivot makes column `enter` basic in row `leave` via Gauss-Jordan.
func (t *tableau) pivot(leave, enter int) {
	pr := t.a[leave]
	pv := pr[enter]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	t.b[leave] *= inv
	pr[enter] = 1 // exact
	for r := range t.a {
		if r == leave {
			continue
		}
		f := t.a[r][enter]
		if f == 0 {
			continue
		}
		row := t.a[r]
		for j := range row {
			row[j] -= f * pr[j]
		}
		row[enter] = 0 // exact
		t.b[r] -= f * t.b[leave]
	}
	t.basis[leave] = enter
}

// driveOutArtificials pivots any artificial variable still basic at zero
// level out of the basis where possible; rows that cannot pivot are
// redundant and left in place (their artificial stays at zero).
func (t *tableau) driveOutArtificials() {
	artStart := t.nVars + t.nSlack
	for r, col := range t.basis {
		if col < artStart {
			continue
		}
		for j := 0; j < artStart; j++ {
			if math.Abs(t.a[r][j]) > tol {
				t.pivot(r, j)
				break
			}
		}
	}
}

// extract reads the structural variable values from the tableau.
func (t *tableau) extract() []float64 {
	x := make([]float64, t.nVars)
	for r, col := range t.basis {
		if col < t.nVars {
			x[col] = t.b[r]
		}
	}
	// Clamp tiny negatives from roundoff.
	for i, v := range x {
		if v < 0 && v > -1e-7 {
			x[i] = 0
		}
	}
	return x
}
