package lp

import (
	"math"
	"math/rand"
	"testing"
)

// solveViaPresolve runs the explicit presolve → reduced solve → postsolve
// pipeline, returning the full-space solution.
func solveViaPresolve(t *testing.T, p Problem) Solution {
	t.Helper()
	ps, err := Presolve(p, nil, nil, nil)
	if err != nil {
		t.Fatalf("presolve: %v", err)
	}
	switch ps.Outcome {
	case PresolveInfeasible:
		return Solution{Status: Infeasible}
	case PresolveUnbounded:
		return Solution{Status: Unbounded}
	case PresolveSolved:
		return Solution{Status: Optimal, Objective: ps.Offset, X: ps.Postsolve(nil, nil)}
	}
	s, err := NewBoundedSolver(ps.P)
	if err != nil {
		t.Fatalf("reduced solver: %v", err)
	}
	sol, _, err := s.SolveBounds(ps.Lo, ps.Up, nil, Options{})
	if err != nil {
		t.Fatalf("reduced solve: %v", err)
	}
	if sol.Status == Optimal {
		sol.X = ps.Postsolve(sol.X, nil)
		sol.Objective += ps.Offset
	}
	return sol
}

// TestPresolveMatchesDenseOracle is the presolve differential contract:
// on randomized bounded LPs the presolved pipeline must agree with the
// dense oracle on status and objective, and its postsolved solution must be
// feasible for the ORIGINAL problem — the reinflation is checked directly,
// not just the reduced optimum.
func TestPresolveMatchesDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(rng)
		got := solveViaPresolve(t, p)
		want, err := SolveDense(p)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		if got.Status != want.Status {
			t.Fatalf("trial %d: status %v (presolved) vs %v (dense)\nproblem: %+v",
				trial, got.Status, want.Status, p)
		}
		if got.Status != Optimal {
			continue
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Fatalf("trial %d: objective %v (presolved) vs %v (dense)\nproblem: %+v",
				trial, got.Objective, want.Objective, p)
		}
		if !feasible(p, got.X) {
			t.Fatalf("trial %d: postsolved solution infeasible: %v\nproblem: %+v",
				trial, got.X, p)
		}
		if p.Upper != nil {
			for i, u := range p.Upper {
				if got.X[i] > u+1e-6 {
					t.Fatalf("trial %d: x[%d]=%v above upper %v", trial, i, got.X[i], u)
				}
			}
		}
	}
}

// TestPresolveSelectionShapedOracle runs the same contract on the
// Formula-(3) relaxation structure, where the singleton-absorb and
// redundant-row reductions actually fire.
func TestPresolveSelectionShapedOracle(t *testing.T) {
	for _, tc := range []struct{ nets, cands int }{
		{6, 3}, {12, 4},
	} {
		for seed := int64(29); seed < 32; seed++ {
			p := selectionShaped(tc.nets, tc.cands, seed)
			got := solveViaPresolve(t, p)
			want, err := SolveDense(p)
			if err != nil {
				t.Fatalf("dense: %v", err)
			}
			if got.Status != want.Status {
				t.Fatalf("nets=%d cands=%d seed=%d: status %v vs %v",
					tc.nets, tc.cands, seed, got.Status, want.Status)
			}
			if got.Status == Optimal && math.Abs(got.Objective-want.Objective) > 1e-6 {
				t.Fatalf("nets=%d cands=%d seed=%d: objective %v vs %v",
					tc.nets, tc.cands, seed, got.Objective, want.Objective)
			}
			if got.Status == Optimal && !feasible(p, got.X) {
				t.Fatalf("nets=%d cands=%d seed=%d: postsolved X infeasible",
					tc.nets, tc.cands, seed)
			}
		}
	}
}

// TestPresolveDetectsInfeasible pins direct infeasibility detection inside
// presolve — conflicting singletons and forced rows never reach a solver.
func TestPresolveDetectsInfeasible(t *testing.T) {
	cases := []Problem{
		// x >= 3 and x <= 1.
		{NumVars: 1, Objective: []float64{1}, Rows: []Row{
			{Terms: []Term{{0, 1}}, Sense: GE, RHS: 3},
			{Terms: []Term{{0, 1}}, Sense: LE, RHS: 1},
		}},
		// x + y >= 5 with x <= 1, y <= 1.
		{NumVars: 2, Objective: []float64{1, 1}, Upper: []float64{1, 1}, Rows: []Row{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: GE, RHS: 5},
		}},
		// Empty row 0 = 2 after fixing x = 1 via an equality singleton.
		{NumVars: 2, Objective: []float64{1, 1}, Rows: []Row{
			{Terms: []Term{{0, 1}}, Sense: EQ, RHS: 1},
			{Terms: []Term{{0, 1}}, Sense: EQ, RHS: 3},
		}},
	}
	for i, p := range cases {
		ps, err := Presolve(p, nil, nil, nil)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if ps.Outcome != PresolveInfeasible {
			t.Fatalf("case %d: outcome %v, want infeasible", i, ps.Outcome)
		}
		// The full pipeline agrees with the dense oracle.
		d, err := SolveDense(p)
		if err != nil {
			t.Fatalf("case %d dense: %v", i, err)
		}
		if d.Status != Infeasible {
			t.Fatalf("case %d: dense says %v — test case is wrong", i, d.Status)
		}
	}
}

// TestPresolveDetectsUnbounded pins the one shape presolve may classify as
// unbounded itself: a negative-cost unconstrained column once no rows
// remain. With rows still alive the column must be left for the simplex
// (the instance could be infeasible instead).
func TestPresolveDetectsUnbounded(t *testing.T) {
	p := Problem{NumVars: 2, Objective: []float64{-1, 2}, Rows: []Row{
		{Terms: []Term{{1, 1}}, Sense: LE, RHS: 4},
	}}
	ps, err := Presolve(p, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Outcome != PresolveUnbounded {
		t.Fatalf("outcome %v, want unbounded", ps.Outcome)
	}
	// Same column, but an infeasible row elsewhere: presolve must NOT claim
	// unbounded; whichever layer decides, the final status is Infeasible.
	q := Problem{NumVars: 2, Objective: []float64{-1, 1}, Upper: []float64{math.Inf(1), 1}, Rows: []Row{
		{Terms: []Term{{1, 1}}, Sense: GE, RHS: 5},
	}}
	sol, err := SolveWithOptions(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

// TestPresolveSolvesFully covers the PresolveSolved outcome: singleton
// equalities pin every variable, no solver ever runs, and Postsolve
// rebuilds the exact assignment with the objective in Offset.
func TestPresolveSolvesFully(t *testing.T) {
	p := Problem{NumVars: 3, Objective: []float64{2, 3, 5}, Rows: []Row{
		{Terms: []Term{{0, 1}}, Sense: EQ, RHS: 1},
		{Terms: []Term{{1, 2}}, Sense: EQ, RHS: 3},
		{Terms: []Term{{0, 1}, {1, 1}, {2, 1}}, Sense: LE, RHS: 10},
	}}
	ps, err := Presolve(p, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Outcome != PresolveSolved {
		t.Fatalf("outcome %v, want solved", ps.Outcome)
	}
	x := ps.Postsolve(nil, nil)
	want := []float64{1, 1.5, 0}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("X = %v, want %v", x, want)
		}
	}
	if math.Abs(ps.Offset-6.5) > 1e-9 {
		t.Fatalf("Offset = %v, want 6.5", ps.Offset)
	}
}

// TestPresolveDominatedBinary checks the selection-shaped reduction: in an
// assignment row where candidate 0 is cheaper and no looser than candidate
// 1 in every other row, the dominated candidate is fixed to zero, and the
// reduced optimum matches the original.
func TestPresolveDominatedBinary(t *testing.T) {
	// Two candidates for one net; both consume the same LE budget, the
	// first is cheaper → the second is dominated.
	p := Problem{
		NumVars:   2,
		Objective: []float64{1, 4},
		Upper:     []float64{1, 1},
		Rows: []Row{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: EQ, RHS: 1},
			{Terms: []Term{{0, 2}, {1, 2}}, Sense: LE, RHS: 8},
		},
	}
	ps, err := Presolve(p, nil, nil, []bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Outcome != PresolveSolved {
		t.Fatalf("outcome %v (cols removed %d), want fully solved by dominance",
			ps.Outcome, ps.ColsRemoved)
	}
	x := ps.Postsolve(nil, nil)
	if x[0] != 1 || x[1] != 0 {
		t.Fatalf("X = %v, want [1 0]", x)
	}
	if ps.Offset != 1 {
		t.Fatalf("Offset = %v, want 1", ps.Offset)
	}
}

// TestPresolveIntegerBoundRounding checks integer-aware propagation: an
// implied fractional bound on an integral column rounds inward.
func TestPresolveIntegerBoundRounding(t *testing.T) {
	// 2x <= 3 with x integer in [0, 5] → x <= 1. The GE row keeps both
	// columns alive so the rounded bound is observable in the reduction.
	p := Problem{NumVars: 2, Objective: []float64{-1, 0}, Upper: []float64{5, 1}, Rows: []Row{
		{Terms: []Term{{0, 2}}, Sense: LE, RHS: 3},
		{Terms: []Term{{0, 1}, {1, 1}}, Sense: GE, RHS: 0.5},
	}}
	ps, err := Presolve(p, nil, nil, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Outcome != PresolveReduced {
		t.Fatalf("outcome %v, want reduced", ps.Outcome)
	}
	for r, oc := range ps.colMap {
		if oc == 0 && ps.Up[r] != 1 {
			t.Fatalf("Up[x] = %v, want 1 (rounded from 1.5)", ps.Up[r])
		}
	}
}

// TestPresolveDeterministic pins bit-identical reduced problems across
// repeated presolves of the same instance.
func TestPresolveDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 40; trial++ {
		p := randomProblem(rng)
		a, err := Presolve(p, nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Presolve(p, nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a.Outcome != b.Outcome || a.Offset != b.Offset ||
			a.RowsRemoved != b.RowsRemoved || a.ColsRemoved != b.ColsRemoved {
			t.Fatalf("trial %d: presolve nondeterministic", trial)
		}
		if a.Outcome != PresolveReduced {
			continue
		}
		if a.P.NumVars != b.P.NumVars || len(a.P.Rows) != len(b.P.Rows) {
			t.Fatalf("trial %d: reduced shapes differ", trial)
		}
		for i := range a.Lo {
			if a.Lo[i] != b.Lo[i] || a.Up[i] != b.Up[i] {
				t.Fatalf("trial %d: reduced bounds differ at %d", trial, i)
			}
		}
	}
}
