package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p Problem) Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidate(t *testing.T) {
	if err := (Problem{}).Validate(); err == nil {
		t.Error("empty problem accepted")
	}
	if err := (Problem{NumVars: 2, Objective: []float64{1}}).Validate(); err == nil {
		t.Error("objective length mismatch accepted")
	}
	p := Problem{NumVars: 1, Objective: []float64{1},
		Rows: []Row{{Terms: []Term{{Var: 5, Coeff: 1}}, Sense: LE, RHS: 1}}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range variable accepted")
	}
	p = Problem{NumVars: 1, Objective: []float64{1},
		Rows: []Row{{Terms: []Term{{Var: 0, Coeff: math.NaN()}}, Sense: LE, RHS: 1}}}
	if err := p.Validate(); err == nil {
		t.Error("NaN coefficient accepted")
	}
}

func TestSimpleMaximisation(t *testing.T) {
	// max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18  (classic; optimum 36 at (2,6)).
	p := Problem{
		NumVars:   2,
		Objective: []float64{-3, -5},
		Rows: []Row{
			{Terms: []Term{{0, 1}}, Sense: LE, RHS: 4},
			{Terms: []Term{{1, 2}}, Sense: LE, RHS: 12},
			{Terms: []Term{{0, 3}, {1, 2}}, Sense: LE, RHS: 18},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if math.Abs(s.Objective-(-36)) > 1e-6 {
		t.Errorf("objective = %v, want -36", s.Objective)
	}
	if math.Abs(s.X[0]-2) > 1e-6 || math.Abs(s.X[1]-6) > 1e-6 {
		t.Errorf("X = %v, want (2,6)", s.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y = 3, x <= 1 → x=1, y=2, obj 5.
	p := Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Rows: []Row{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: EQ, RHS: 3},
			{Terms: []Term{{0, 1}}, Sense: LE, RHS: 1},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-5) > 1e-6 {
		t.Fatalf("status %v obj %v, want optimal 5", s.Status, s.Objective)
	}
}

func TestGEConstraint(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 4, x <= 3 → (3,1): 9.
	p := Problem{
		NumVars:   2,
		Objective: []float64{2, 3},
		Rows: []Row{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: GE, RHS: 4},
			{Terms: []Term{{0, 1}}, Sense: LE, RHS: 3},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-9) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 9", s.Status, s.Objective)
	}
}

func TestNegativeRHSNormalisation(t *testing.T) {
	// -x - y <= -4 is x + y >= 4.
	p := Problem{
		NumVars:   2,
		Objective: []float64{2, 3},
		Rows: []Row{
			{Terms: []Term{{0, -1}, {1, -1}}, Sense: LE, RHS: -4},
			{Terms: []Term{{0, 1}}, Sense: LE, RHS: 3},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-9) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 9", s.Status, s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := Problem{
		NumVars:   1,
		Objective: []float64{1},
		Rows: []Row{
			{Terms: []Term{{0, 1}}, Sense: GE, RHS: 5},
			{Terms: []Term{{0, 1}}, Sense: LE, RHS: 2},
		},
	}
	s := solveOK(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with x >= 0 only.
	p := Problem{
		NumVars:   1,
		Objective: []float64{-1},
		Rows:      []Row{{Terms: []Term{{0, 1}}, Sense: GE, RHS: 0}},
	}
	s := solveOK(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", s.Status)
	}
}

func TestNoRows(t *testing.T) {
	// min x with no constraints: x = 0.
	p := Problem{NumVars: 1, Objective: []float64{1}}
	s := solveOK(t, p)
	if s.Status != Optimal || s.Objective != 0 {
		t.Fatalf("got %v obj %v", s.Status, s.Objective)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Duplicate equality rows leave a basic artificial on a redundant row;
	// phase 2 must still solve correctly.
	p := Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Rows: []Row{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: EQ, RHS: 2},
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: EQ, RHS: 2},
			{Terms: []Term{{0, 1}}, Sense: GE, RHS: 1},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-2) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 2", s.Status, s.Objective)
	}
}

func TestDegenerate(t *testing.T) {
	// A degenerate vertex (several constraints meet): must not cycle.
	p := Problem{
		NumVars:   2,
		Objective: []float64{-1, -1},
		Rows: []Row{
			{Terms: []Term{{0, 1}}, Sense: LE, RHS: 1},
			{Terms: []Term{{1, 1}}, Sense: LE, RHS: 1},
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: LE, RHS: 2},
			{Terms: []Term{{0, 1}, {1, -1}}, Sense: LE, RHS: 0},
			{Terms: []Term{{0, -1}, {1, 1}}, Sense: LE, RHS: 0},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-(-2)) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal -2", s.Status, s.Objective)
	}
}

// feasible reports whether x satisfies all rows of p within tolerance.
func feasible(p Problem, x []float64) bool {
	for _, v := range x {
		if v < -1e-6 {
			return false
		}
	}
	for _, r := range p.Rows {
		var lhs float64
		for _, term := range r.Terms {
			lhs += term.Coeff * x[term.Var]
		}
		switch r.Sense {
		case LE:
			if lhs > r.RHS+1e-6 {
				return false
			}
		case GE:
			if lhs < r.RHS-1e-6 {
				return false
			}
		case EQ:
			if math.Abs(lhs-r.RHS) > 1e-6 {
				return false
			}
		}
	}
	return true
}

func TestRandomProblemsSolutionFeasibleAndNotBeatenBySampling(t *testing.T) {
	// Property: on random bounded LPs, the simplex solution is feasible and
	// no random feasible sample achieves a lower objective.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		p := Problem{NumVars: n, Objective: make([]float64, n)}
		for i := range p.Objective {
			p.Objective[i] = rng.Float64()*4 - 1 // mostly positive
		}
		// Box constraints keep it bounded.
		for i := 0; i < n; i++ {
			p.Rows = append(p.Rows, Row{
				Terms: []Term{{i, 1}}, Sense: LE, RHS: 1 + rng.Float64()*4,
			})
		}
		for i := 0; i < m; i++ {
			row := Row{Sense: GE, RHS: rng.Float64()}
			for j := 0; j < n; j++ {
				row.Terms = append(row.Terms, Term{j, rng.Float64()})
			}
			p.Rows = append(p.Rows, row)
		}
		s := solveOK(t, p)
		if s.Status == Infeasible {
			continue
		}
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		if !feasible(p, s.X) {
			t.Fatalf("trial %d: solution infeasible: %v", trial, s.X)
		}
		// Sample random feasible points; none should beat the optimum.
		for k := 0; k < 200; k++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 5
			}
			if feasible(p, x) {
				var obj float64
				for j := range x {
					obj += p.Objective[j] * x[j]
				}
				if obj < s.Objective-1e-5 {
					t.Fatalf("trial %d: sample %v beats optimum (%v < %v)",
						trial, x, obj, s.Objective)
				}
			}
		}
	}
}

func TestDuplicateTermsAccumulate(t *testing.T) {
	// Two terms on the same variable must sum: x + x <= 4 means x <= 2.
	p := Problem{
		NumVars:   1,
		Objective: []float64{-1},
		Rows: []Row{
			{Terms: []Term{{0, 1}, {0, 1}}, Sense: LE, RHS: 4},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.X[0]-2) > 1e-6 {
		t.Fatalf("X = %v, want 2", s.X)
	}
}

func TestStatusString(t *testing.T) {
	for _, st := range []Status{Optimal, Infeasible, Unbounded, IterLimit} {
		if st.String() == "" {
			t.Errorf("empty name for status %d", st)
		}
	}
}

func TestAssignmentLikeLP(t *testing.T) {
	// The OPERON selection shape: pick one candidate per net. LP relaxation
	// of min 3a + 1b s.t. a + b = 1 → b = 1, obj 1.
	p := Problem{
		NumVars:   2,
		Objective: []float64{3, 1},
		Rows:      []Row{{Terms: []Term{{0, 1}, {1, 1}}, Sense: EQ, RHS: 1}},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-1) > 1e-9 {
		t.Fatalf("got %v obj %v", s.Status, s.Objective)
	}
	if math.Abs(s.X[1]-1) > 1e-9 {
		t.Fatalf("X = %v", s.X)
	}
}
