package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 237
		seen := make([]int32, n)
		if err := ForEach(n, workers, func(i int) error {
			atomic.AddInt32(&seen[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachWorkerIDsInRangeAndComplete(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		n := 97
		seen := make([]int32, n)
		byWorker := make([]int32, workers)
		if err := ForEachWorker(n, workers, func(w, i int) error {
			if w < 0 || w >= workers {
				return fmt.Errorf("worker %d out of range", w)
			}
			atomic.AddInt32(&byWorker[w], 1)
			atomic.AddInt32(&seen[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
		var total int32
		for _, c := range byWorker {
			total += c
		}
		if total != int32(n) {
			t.Fatalf("workers=%d: worker counts sum to %d", workers, total)
		}
		// The sequential path attributes everything to worker 0.
		if workers == 1 && byWorker[0] != int32(n) {
			t.Fatal("sequential path did not report worker 0")
		}
	}
}

func TestForEachDeterministicResults(t *testing.T) {
	n := 100
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 3, 16} {
		got := make([]int, n)
		if err := ForEach(n, workers, func(i int) error {
			got[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d]=%d", workers, i, got[i])
			}
		}
	}
}

// TestForEachShortCircuits is the regression test for the old eachNet
// behaviour, which kept draining every remaining item after the first
// error: a poisoned item must cancel the outstanding work.
func TestForEachShortCircuits(t *testing.T) {
	const n = 10000
	for _, workers := range []int{1, 4} {
		var calls int32
		err := ForEach(n, workers, func(i int) error {
			atomic.AddInt32(&calls, 1)
			if i == 10 {
				return fmt.Errorf("poisoned net %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "poisoned net 10" {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		// In-flight items may finish, but the bulk of the 10k items must
		// never have been dispatched.
		if c := atomic.LoadInt32(&calls); c > n/10 {
			t.Fatalf("workers=%d: %d of %d items ran after poisoning", workers, c, n)
		}
	}
}

// TestForEachLowestIndexError checks the error is deterministic across
// worker counts: always the lowest failing index, as a sequential loop
// would report.
func TestForEachLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for trial := 0; trial < 20; trial++ {
			err := ForEach(500, workers, func(i int) error {
				if i == 41 || i == 42 || i == 400 {
					return fmt.Errorf("fail %d", i)
				}
				return nil
			})
			if err == nil || err.Error() != "fail 41" {
				t.Fatalf("workers=%d: err = %v, want fail 41", workers, err)
			}
		}
	}
}

func TestForEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls int32
	err := ForEachContext(ctx, 100000, 2, func(i int) error {
		if atomic.AddInt32(&calls, 1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c := atomic.LoadInt32(&calls); c > 1000 {
		t.Fatalf("%d items ran after cancellation", c)
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(4, 2); w != 2 {
		t.Errorf("Workers(4,2) = %d", w)
	}
	if w := Workers(2, 100); w != 2 {
		t.Errorf("Workers(2,100) = %d", w)
	}
	if w := Workers(0, 100); w < 1 {
		t.Errorf("Workers(0,100) = %d", w)
	}
}
