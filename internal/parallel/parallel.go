// Package parallel provides the shared bounded worker pool every
// independent-per-item stage of the flow runs on: candidate generation,
// per-group signal processing, Lagrangian pricing, and WDM arc costing.
//
// The pool guarantees deterministic behaviour regardless of worker count:
// callers write results by item index (never by completion order), and on
// failure ForEach always returns the error of the lowest-indexed failing
// item — exactly what a sequential loop would have returned — while
// cancelling all not-yet-dispatched work.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: non-positive means one worker per
// CPU, and the count is clamped to the item count n.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(i) for every i in [0,n) on a bounded worker pool.
// See ForEachContext.
func ForEach(n, workers int, fn func(int) error) error {
	return ForEachContext(context.Background(), n, workers, fn)
}

// ForEachWorker is ForEach with the worker's pool index (0..Workers-1)
// passed to fn alongside the item index. Instrumented stages use it to
// attribute per-item spans to observability lanes; the sequential path
// reports worker 0. The determinism and error contracts of ForEachContext
// hold unchanged: the worker index must only feed telemetry, never results.
func ForEachWorker(n, workers int, fn func(worker, i int) error) error {
	return forEach(context.Background(), n, workers, fn)
}

// ForEachWorkerContext is ForEachWorker bounded by a context, with the
// cancellation and drain semantics of ForEachContext: cancelling ctx stops
// dispatch of new items, in-flight calls run to completion (the
// deterministic drain — no fn invocation is ever abandoned halfway), and
// ctx.Err() is returned unless an item error takes precedence.
func ForEachWorkerContext(ctx context.Context, n, workers int, fn func(worker, i int) error) error {
	return forEach(ctx, n, workers, fn)
}

// Scratch is a per-worker scratch arena: a keyed bag of reusable buffers a
// stage can stash package-specific workspaces in (keyed by package name,
// fetched with a type assertion). A Scratch is handed to exactly one worker
// goroutine at a time by ForEachScratchContext, so its methods need no
// locking; it must not be shared across concurrently running workers.
type Scratch struct {
	slots map[string]any
}

// Get returns the scratch slot for key, creating it with mk on first use.
// The returned value is whatever mk produced the first time, so callers
// type-assert it to their package's workspace type. mk runs at most once
// per key per Scratch, which makes it a natural hook for workspace-creation
// counters (reuse rate = uses - creations).
func (s *Scratch) Get(key string, mk func() any) any {
	if s.slots == nil {
		s.slots = make(map[string]any)
	}
	v, ok := s.slots[key]
	if !ok {
		v = mk()
		s.slots[key] = v
	}
	return v
}

// Arena owns one Scratch per worker slot and hands the same slot to the
// same worker index on every ForEachScratchContext invocation, so per-worker
// workspaces persist across pool runs (across nets, LR iterations, and —
// when the Arena is held by a serving queue slot — across requests).
// The zero value is ready to use. Arena is safe for use from sequential
// pool invocations; the pool itself guarantees slot i is only touched by
// worker i while a run is in flight.
type Arena struct {
	mu        sync.Mutex
	scratches []*Scratch
}

// NewArena returns an empty arena; scratches are created on demand.
func NewArena() *Arena { return &Arena{} }

// grab returns the first w scratch slots, growing the arena as needed.
func (a *Arena) grab(w int) []*Scratch {
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.scratches) < w {
		a.scratches = append(a.scratches, &Scratch{})
	}
	return a.scratches[:w]
}

// ForEachScratchContext is ForEachWorkerContext with a per-worker *Scratch
// from the arena passed to fn alongside the worker index. Worker w always
// receives arena slot w, so buffers cached in a Scratch are reused across
// invocations without locks. A nil arena gets a throwaway one (no reuse
// across calls, but the per-call reuse within one pool run still applies).
// The determinism contract of ForEachContext holds: scratch contents must
// only affect allocation behaviour, never results.
func ForEachScratchContext(ctx context.Context, a *Arena, n, workers int, fn func(worker int, s *Scratch, i int) error) error {
	if a == nil {
		a = NewArena()
	}
	sc := a.grab(Workers(workers, n))
	return forEach(ctx, n, workers, func(worker, i int) error { return fn(worker, sc[worker], i) })
}

// ForEachContext runs fn(i) for every i in [0,n) on at most Workers(workers,
// n) goroutines. The first error short-circuits: no new items are
// dispatched, in-flight calls finish, and the error of the lowest failing
// index is returned (deterministic across worker counts). Cancelling ctx
// likewise stops dispatch and returns ctx.Err() unless an item error takes
// precedence. The drain is deterministic: every dispatched fn call runs to
// completion before ForEachContext returns and every worker goroutine has
// exited by then, so cancellation never leaks goroutines or leaves an item
// half-processed — callers either see all per-index writes of an item or
// none.
//
// fn must confine its writes to per-index state (results[i]); the pool
// provides a happens-before edge between every fn call and ForEachContext's
// return, so no further synchronisation is needed for such writes.
func ForEachContext(ctx context.Context, n int, workers int, fn func(int) error) error {
	return forEach(ctx, n, workers, func(_, i int) error { return fn(i) })
}

// forEach is the shared pool core behind ForEach/ForEachWorker.
func forEach(ctx context.Context, n int, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		errIdx   = -1
		firstErr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return errIdx >= 0
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range next {
				if err := fn(worker, i); err != nil {
					fail(i, err)
				}
			}
		}(w)
	}
dispatch:
	for i := 0; i < n; i++ {
		if failed() {
			break
		}
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
