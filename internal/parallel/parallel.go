// Package parallel provides the shared bounded worker pool every
// independent-per-item stage of the flow runs on: candidate generation,
// per-group signal processing, Lagrangian pricing, and WDM arc costing.
//
// The pool guarantees deterministic behaviour regardless of worker count:
// callers write results by item index (never by completion order), and on
// failure ForEach always returns the error of the lowest-indexed failing
// item — exactly what a sequential loop would have returned — while
// cancelling all not-yet-dispatched work.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: non-positive means one worker per
// CPU, and the count is clamped to the item count n.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(i) for every i in [0,n) on a bounded worker pool.
// See ForEachContext.
func ForEach(n, workers int, fn func(int) error) error {
	return ForEachContext(context.Background(), n, workers, fn)
}

// ForEachContext runs fn(i) for every i in [0,n) on at most Workers(workers,
// n) goroutines. The first error short-circuits: no new items are
// dispatched, in-flight calls finish, and the error of the lowest failing
// index is returned (deterministic across worker counts). Cancelling ctx
// likewise stops dispatch and returns ctx.Err() unless an item error takes
// precedence.
//
// fn must confine its writes to per-index state (results[i]); the pool
// provides a happens-before edge between every fn call and ForEachContext's
// return, so no further synchronisation is needed for such writes.
func ForEachContext(ctx context.Context, n int, workers int, fn func(int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		errIdx   = -1
		firstErr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return errIdx >= 0
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					fail(i, err)
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		if failed() {
			break
		}
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
