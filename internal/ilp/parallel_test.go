package ilp

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"operon/internal/lp"
	"operon/internal/obs"
	"operon/internal/parallel"
)

// branchyILP builds an equality-knapsack family with many near-symmetric
// solutions — the branch-and-bound tree is wide and deep, so speculation
// actually overlaps with the decision loop.
func branchyILP(n int, seed int64) Problem {
	rng := rand.New(rand.NewSource(seed))
	p := Problem{LP: lp.Problem{NumVars: n, Objective: make([]float64, n)}}
	row := lp.Row{Sense: lp.EQ, RHS: float64(n)/4 + 0.5}
	for i := 0; i < n; i++ {
		p.LP.Objective[i] = 1 + rng.Float64()*0.001
		row.Terms = append(row.Terms, lp.Term{Var: i, Coeff: 1 + rng.Float64()*0.01})
		p.Binary = append(p.Binary, i)
	}
	p.LP.Rows = append(p.LP.Rows, row)
	return p
}

// deterministicCounters filters a snapshot down to the counters covered by
// the determinism contract: everything except the scheduling diagnostics
// (ilp.spec_* and ilp.basis_reuse vary with worker timing by design).
func deterministicCounters(t *obs.Tracer) []obs.CounterValue {
	var out []obs.CounterValue
	for _, cv := range t.Snapshot() {
		if strings.HasPrefix(cv.Name, "ilp.spec_") || cv.Name == "ilp.basis_reuse" {
			continue
		}
		out = append(out, cv)
	}
	return out
}

// ilpEvents extracts the (name, attrs) stream of the search's own events;
// timestamps are dropped, order is preserved.
func ilpEvents(col *obs.Collector) [][]obs.Attr {
	var out [][]obs.Attr
	for _, e := range col.Events() {
		if e.Name == "ilp/node" || e.Name == "ilp/incumbent" {
			out = append(out, append([]obs.Attr{obs.S("event", e.Name)}, e.Attrs...))
		}
	}
	return out
}

// TestParallelILPDeterministic is the tentpole contract: at every worker
// count the explored tree (the full ilp/node and ilp/incumbent event
// streams), the result, and all deterministic counters are bit-identical
// to the serial Workers=1 run. Runs under -race in make check.
func TestParallelILPDeterministic(t *testing.T) {
	arena := parallel.NewArena()
	problems := []Problem{
		branchyILP(18, 11),
		branchyILP(14, 7),
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		problems = append(problems, randomILP(rng))
	}

	for pi, p := range problems {
		type outcome struct {
			res      Result
			counters []obs.CounterValue
			events   [][]obs.Attr
		}
		var ref outcome
		for _, workers := range []int{1, 2, 4, 8} {
			col := &obs.Collector{}
			tr := obs.New(col)
			r, err := Solve(p, Options{
				MaxNodes: 3000,
				Workers:  workers,
				Arena:    arena,
				Obs:      tr,
			})
			if err != nil {
				t.Fatalf("problem %d workers %d: %v", pi, workers, err)
			}
			got := outcome{res: r, counters: deterministicCounters(tr), events: ilpEvents(col)}
			// Wall-clock fields are not part of the contract.
			got.res.Elapsed = 0
			got.res.LPTime = 0
			if workers == 1 {
				ref = got
				continue
			}
			if got.res.Status != ref.res.Status || got.res.Nodes != ref.res.Nodes ||
				got.res.TimedOut != ref.res.TimedOut || got.res.LPSolves != ref.res.LPSolves ||
				got.res.LPRows != ref.res.LPRows || got.res.Objective != ref.res.Objective {
				t.Fatalf("problem %d workers %d: result diverged\n got %+v\nwant %+v",
					pi, workers, got.res, ref.res)
			}
			if !reflect.DeepEqual(got.res.X, ref.res.X) {
				t.Fatalf("problem %d workers %d: incumbent diverged\n got %v\nwant %v",
					pi, workers, got.res.X, ref.res.X)
			}
			if !reflect.DeepEqual(got.counters, ref.counters) {
				t.Fatalf("problem %d workers %d: counters diverged\n got %v\nwant %v",
					pi, workers, got.counters, ref.counters)
			}
			if !reflect.DeepEqual(got.events, ref.events) {
				t.Fatalf("problem %d workers %d: explored tree diverged (%d vs %d events)",
					pi, workers, len(got.events), len(ref.events))
			}
		}
	}
}

// TestParallelILPMatchesBruteForce cross-checks parallel correctness
// against exhaustive enumeration, independent of the serial reference.
func TestParallelILPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		p := randomILP(rng)
		r, err := Solve(p, Options{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(t, p)
		if math.IsInf(want, 1) {
			if r.Status != Infeasible {
				t.Fatalf("trial %d: brute force infeasible but solver says %v", trial, r.Status)
			}
			continue
		}
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, r.Status)
		}
		if math.Abs(r.Objective-want) > 1e-5 {
			t.Fatalf("trial %d: objective %v, want %v", trial, r.Objective, want)
		}
	}
}
