// Package ilp solves mixed 0-1 integer linear programmes with best-first
// branch and bound over the simplex relaxation in internal/lp. It is the
// stand-in for the commercial ILP solver of the paper's §3.3; like the
// paper's experiments it supports a wall-clock time limit and reports
// whether the limit was hit (the paper's ">3000 s" entries).
package ilp

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"

	"operon/internal/lp"
)

// Problem is a linear programme plus a set of variables restricted to {0,1}.
type Problem struct {
	LP lp.Problem
	// Binary lists variable indices constrained to {0,1}. Variables not
	// listed remain continuous and non-negative.
	Binary []int
}

// Validate checks structural consistency.
func (p Problem) Validate() error {
	if err := p.LP.Validate(); err != nil {
		return err
	}
	seen := map[int]bool{}
	for _, v := range p.Binary {
		if v < 0 || v >= p.LP.NumVars {
			return fmt.Errorf("ilp: binary variable %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("ilp: binary variable %d listed twice", v)
		}
		seen[v] = true
	}
	return nil
}

// Options tunes the search.
type Options struct {
	// TimeLimit bounds the wall-clock solve time; zero means no limit.
	TimeLimit time.Duration
	// MaxNodes bounds the number of branch-and-bound nodes; zero means
	// 200000.
	MaxNodes int
	// MaxTableauBytes caps the LP tableau allocation (zero = lp default).
	// Oversized relaxations end the solve with TimedOut set.
	MaxTableauBytes int64
}

// Status describes the outcome.
type Status int

const (
	// Optimal means the incumbent is proven optimal.
	Optimal Status = iota
	// Feasible means a feasible integer solution was found but optimality
	// was not proven before a limit was reached.
	Feasible
	// Infeasible means no integer solution exists.
	Infeasible
	// Limit means a limit was reached with no incumbent.
	Limit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	default:
		return "limit"
	}
}

// Result is the outcome of Solve.
type Result struct {
	Status    Status
	X         []float64
	Objective float64
	Nodes     int
	Elapsed   time.Duration
	TimedOut  bool
}

const intTol = 1e-6

type node struct {
	bound float64
	fixed map[int]float64
}

type nodeQueue []node

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].bound < q[j].bound }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(node)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Solve runs best-first branch and bound.
func Solve(p Problem, opt Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	maxNodes := opt.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200000
	}
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = start.Add(opt.TimeLimit)
	}

	res := Result{Status: Limit, Objective: math.Inf(1)}
	var incumbent []float64

	relax := func(fixed map[int]float64) (lp.Solution, error) {
		q := p.LP
		rows := make([]lp.Row, len(q.Rows), len(q.Rows)+len(fixed)+len(p.Binary))
		copy(rows, q.Rows)
		for v, val := range fixed {
			rows = append(rows, lp.Row{
				Terms: []lp.Term{{Var: v, Coeff: 1}}, Sense: lp.EQ, RHS: val,
			})
		}
		// Upper bounds x <= 1 for unfixed binaries keep the relaxation tight.
		for _, v := range p.Binary {
			if _, ok := fixed[v]; !ok {
				rows = append(rows, lp.Row{
					Terms: []lp.Term{{Var: v, Coeff: 1}}, Sense: lp.LE, RHS: 1,
				})
			}
		}
		q.Rows = rows
		return lp.SolveWithOptions(q, lp.Options{
			Deadline:        deadline,
			MaxTableauBytes: opt.MaxTableauBytes,
		})
	}

	record := func(x []float64, obj float64) {
		if obj < res.Objective-1e-9 {
			incumbent = append(incumbent[:0], x...)
			res.Objective = obj
		}
	}

	// tryRound fixes every binary to its rounded relaxation value and
	// re-solves; a feasible result seeds or improves the incumbent.
	tryRound := func(x []float64) {
		fixed := make(map[int]float64, len(p.Binary))
		for _, v := range p.Binary {
			if x[v] >= 0.5 {
				fixed[v] = 1
			} else {
				fixed[v] = 0
			}
		}
		s, err := relax(fixed)
		if err == nil && s.Status == lp.Optimal {
			record(s.X, s.Objective)
		}
	}

	rootSol, err := relax(nil)
	if errors.Is(err, lp.ErrTooLarge) {
		// The relaxation alone exceeds the memory budget; report a limit so
		// callers fall back, mirroring the paper's ">3000 s" outcomes.
		res.TimedOut = true
		res.Elapsed = time.Since(start)
		return res, nil
	}
	if err != nil {
		return Result{}, err
	}
	switch rootSol.Status {
	case lp.Infeasible:
		res.Status = Infeasible
		res.Elapsed = time.Since(start)
		return res, nil
	case lp.Unbounded:
		return Result{}, errors.New("ilp: relaxation unbounded")
	case lp.IterLimit:
		res.Elapsed = time.Since(start)
		res.TimedOut = true
		return res, nil
	}

	pq := &nodeQueue{{bound: rootSol.Objective, fixed: nil}}
	heap.Init(pq)

	for pq.Len() > 0 {
		res.Nodes++
		if res.Nodes > maxNodes {
			res.TimedOut = true
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.TimedOut = true
			break
		}
		nd := heap.Pop(pq).(node)
		if nd.bound >= res.Objective-1e-9 {
			continue // pruned by incumbent
		}
		sol, err := relax(nd.fixed)
		if err != nil {
			return Result{}, err
		}
		if sol.Status != lp.Optimal {
			continue // infeasible or numerically stuck subtree
		}
		if sol.Objective >= res.Objective-1e-9 {
			continue
		}
		// Find the most fractional binary.
		branchVar, frac := -1, 0.0
		for _, v := range p.Binary {
			if _, ok := nd.fixed[v]; ok {
				continue
			}
			f := math.Abs(sol.X[v] - math.Round(sol.X[v]))
			if f > intTol && f > frac {
				frac = f
				branchVar = v
			}
		}
		if branchVar < 0 {
			// Integral: incumbent.
			record(sol.X, sol.Objective)
			continue
		}
		if incumbent == nil {
			tryRound(sol.X)
		}
		for _, val := range []float64{math.Round(sol.X[branchVar]), 1 - math.Round(sol.X[branchVar])} {
			child := make(map[int]float64, len(nd.fixed)+1)
			for k, v := range nd.fixed {
				child[k] = v
			}
			child[branchVar] = val
			heap.Push(pq, node{bound: sol.Objective, fixed: child})
		}
	}

	res.Elapsed = time.Since(start)
	if incumbent != nil {
		res.X = incumbent
		if res.TimedOut || pq.Len() > 0 && (*pq)[0].bound < res.Objective-1e-9 {
			res.Status = Feasible
		} else {
			res.Status = Optimal
		}
	} else if !res.TimedOut {
		res.Status = Infeasible
	}
	return res, nil
}
