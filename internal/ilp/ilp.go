// Package ilp solves mixed 0-1 integer linear programmes with best-first
// branch and bound over the revised-simplex relaxation in internal/lp. It
// is the stand-in for the commercial ILP solver of the paper's §3.3; like
// the paper's experiments it supports a wall-clock time limit and reports
// whether the limit was hit (the paper's ">3000 s" entries).
//
// Branching never touches the constraint rows: a node tightens one binary
// variable's bounds (x fixed to 0 or 1), stored as a persistent diff chain
// back to the root, and each child re-solves from its parent's optimal
// basis via the solver's dual-simplex warm start. The row set is therefore
// invariant across the whole tree — a property the tests assert.
//
// Before the search starts, the problem goes through integer-aware LP
// presolve (lp.Presolve): fixed and dominated binaries are eliminated,
// singleton rows fold into bounds, and the branch and bound runs on the
// reduced problem. The incumbent is postsolved back to the full variable
// space, so callers never see the reduction (Result.X always has
// LP.NumVars entries; Result.LPRows reports the reduced row count).
//
// The search is deterministically parallel. Options.Workers > 1 adds
// speculative LP workers that pre-solve frontier nodes, but every decision
// — which node is expanded next, what is pruned, when an incumbent is
// recorded, every counter and event — is taken by a single decision loop
// in strict (bound, node-id) order. Node ids are assigned at creation, so
// the explored tree, Result.Nodes, Result.LPSolves, the ilp.nodes /
// ilp.incumbents counters, and the lp.* pivot counters are bit-identical
// at any worker count; only wall-clock time changes. Speculation is
// visible solely through the ilp.spec_solves / ilp.spec_wasted /
// ilp.basis_reuse scheduling diagnostics.
package ilp

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"operon/internal/lp"
	"operon/internal/obs"
	"operon/internal/parallel"
)

// Problem is a linear programme plus a set of variables restricted to {0,1}.
type Problem struct {
	// LP is the underlying relaxation; its Upper bounds must already cap the
	// binary variables at 1 (buildProgram does).
	LP lp.Problem
	// Binary lists variable indices constrained to {0,1}. Variables not
	// listed remain continuous and non-negative.
	Binary []int
}

// Validate checks structural consistency.
func (p Problem) Validate() error {
	if err := p.LP.Validate(); err != nil {
		return err
	}
	seen := map[int]bool{}
	for _, v := range p.Binary {
		if v < 0 || v >= p.LP.NumVars {
			return fmt.Errorf("ilp: binary variable %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("ilp: binary variable %d listed twice", v)
		}
		seen[v] = true
	}
	return nil
}

// Options tunes the search.
type Options struct {
	// Ctx, when non-nil, bounds the search: the node loop polls it once per
	// branch-and-bound node and the LP relaxations underneath poll it every
	// few pivots. Cancellation or an expired deadline ends the solve with
	// TimedOut set, returning the best incumbent found so far (the paper's
	// ">3000 s" semantics). A nil Ctx means context.Background().
	Ctx context.Context
	// TimeLimit bounds the wall-clock solve time; zero means no limit.
	//
	// Deprecated: TimeLimit is a thin wrapper over the context deadline —
	// it folds into the budget via lp.ResolveBudget, so the earlier of
	// TimeLimit and Ctx's own deadline wins. New callers should pass a
	// context with a deadline via Ctx instead.
	TimeLimit time.Duration
	// MaxNodes bounds the number of branch-and-bound nodes; zero means
	// 200000.
	MaxNodes int
	// MaxTableauBytes caps the LP solver workspace (zero = lp default).
	// Oversized relaxations end the solve with TimedOut set.
	MaxTableauBytes int64
	// Workers sets the parallelism of the search: 1 solves every relaxation
	// inline on the decision thread (fully serial), W > 1 adds W-1
	// speculative workers that pre-solve frontier relaxations on cloned
	// solvers. Zero (or negative) means one worker per CPU. The explored
	// tree and all deterministic counters are identical at every value —
	// see the package comment for the contract.
	Workers int
	// Arena, when non-nil, supplies per-worker scratch (cloned solvers and
	// bound buffers) reused across Solve calls. An arena must not be shared
	// by concurrent Solve calls. Nil allocates fresh scratch per solve.
	Arena *parallel.Arena
	// Obs, when non-nil, receives an ilp/node event per branch-and-bound
	// node (depth, bound, warm-start pivot count), an ilp/incumbent event
	// per incumbent improvement, the ilp.nodes / ilp.incumbents counters,
	// and the lp.* counters of the relaxation engine underneath. Worker
	// speculation adds the ilp.spec_solves / ilp.spec_wasted diagnostics
	// (the only counters that may vary with Workers).
	Obs *obs.Tracer
}

// Status describes the outcome.
type Status int

const (
	// Optimal means the incumbent is proven optimal.
	Optimal Status = iota
	// Feasible means a feasible integer solution was found but optimality
	// was not proven before a limit was reached.
	Feasible
	// Infeasible means no integer solution exists.
	Infeasible
	// Limit means a limit was reached with no incumbent.
	Limit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	default:
		return "limit"
	}
}

// Result is the outcome of Solve.
type Result struct {
	// Status classifies the solve: Optimal, Feasible (incumbent under a
	// limit), Infeasible, or Limit (no incumbent before a budget ran out).
	Status Status
	// X is the best integral assignment found (length LP.NumVars); only
	// meaningful for Optimal and Feasible.
	X []float64
	// Objective is the objective value of X.
	Objective float64
	// Nodes counts branch-and-bound nodes explored.
	Nodes int
	// Elapsed is the wall-clock time of the solve.
	Elapsed time.Duration
	// TimedOut reports that a budget — the context deadline, the deprecated
	// TimeLimit, or MaxNodes — stopped the search before optimality.
	TimedOut bool
	// LPSolves counts LP relaxations solved (root, nodes, and rounding
	// heuristics). Discarded speculative solves are not counted, keeping
	// the value identical across worker counts.
	LPSolves int
	// LPTime is the wall clock spent inside the LP solver on consumed
	// solves (diagnostic; with Workers > 1 solves overlap, so this can
	// exceed Elapsed).
	LPTime time.Duration
	// LPRows is the constraint-row count of the relaxation solver after
	// presolve; it is invariant across the branch-and-bound tree because
	// nodes are expressed purely as variable-bound changes.
	LPRows int
}

const intTol = 1e-6

// lpCounterNames are the relaxation-engine counters the search forwards
// from speculative workers to the caller's tracer in consumption order, so
// their totals match the serial solve exactly.
var lpCounterNames = [4]string{"lp.solves", "lp.pivots", "lp.bound_flips", "lp.refactors"}

// nodeDepth counts the bound tightenings between nd and the root — the
// node's depth in the branch-and-bound tree.
func nodeDepth(nd *bnode) int {
	d := 0
	for c := nd; c != nil; c = c.parent {
		if c.v >= 0 {
			d++
		}
	}
	return d
}

// Node lifecycle under speculation. Only nodePending nodes may be picked
// up by a worker; every other state is owned by whoever set it.
const (
	nodePending int32 = iota // on the frontier, relaxation not started
	nodeClaimed              // decision loop solves (or has consumed) it
	nodeSolving              // a worker is speculatively solving it
	nodeDone                 // speculative result attached, awaiting consumption
	nodeDiscarded            // pruned; an in-flight result is dropped by its worker
)

// bnode is one branch-and-bound node: a single bound tightening relative
// to its parent (a persistent diff chain back to the root) plus the
// parent's optimal basis for the dual-simplex warm start.
type bnode struct {
	id     uint64  // creation order; ties in bound break toward lower id
	bound  float64 // parent relaxation objective: lower bound for the subtree
	v      int     // variable whose bounds this node tightens
	lo, up float64
	parent *bnode
	basis  *basisRef // parent's optimal basis (shared by both children)
	state  int32     // node lifecycle; guarded by search.mu when Workers > 1
	spec   *specResult
}

// basisRef wraps a basis snapshot with a reference count so the search can
// recycle the snapshot's slices once every holder (the creating node plus
// its two children) has consumed it. Steady-state branch and bound then
// keeps a small free pool of bases instead of allocating one per node.
type basisRef struct {
	b    lp.Basis
	refs int
}

// specResult is one speculative relaxation outcome produced by a worker:
// the solution, the child basis, and the worker-side lp.* counter deltas,
// folded into the real counters only when the decision loop consumes the
// node (so counter totals stay in serial order).
type specResult struct {
	sol    lp.Solution
	out    *basisRef
	err    error
	solves int // LP attempts, including the cold retry after ErrNumerical
	dur    time.Duration
	deltas [4]int64 // lpCounterNames deltas
}

// nodeQueue orders nodes by (bound, id): best lower bound first, creation
// order on ties. The id tiebreak makes extraction — and therefore the
// whole explored tree — independent of heap internals and worker count.
type nodeQueue []*bnode

func (q nodeQueue) Len() int { return len(q) }
func (q nodeQueue) Less(i, j int) bool {
	if q[i].bound != q[j].bound {
		return q[i].bound < q[j].bound
	}
	return q[i].id < q[j].id
}
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*bnode)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// search carries the state of one branch-and-bound run over the presolved
// problem. The decision loop owns everything except the fields documented
// as guarded by mu, which workers share.
type search struct {
	p        Problem // presolved (reduced) problem; Binary reindexed
	opt      Options
	offset   float64 // presolve objective offset, added to reported events
	ctx      context.Context
	deadline time.Time
	lpOpt    lp.Options
	maxNodes int

	solver *lp.BoundedSolver
	res    Result

	rootLo, rootUp   []float64
	lo, up           []float64 // per-node scratch, decision thread only
	savedLo, savedUp []float64
	nodeSol, roundSol *lp.Solution
	roundBasis       lp.Basis
	incumbent        []float64

	cNodes, cIncumbents, cBasisReuse *obs.Counter
	cSpecSolves, cSpecWasted         *obs.Counter
	cLP                              [4]*obs.Counter // lpCounterNames on the caller tracer

	pq     nodeQueue // decision frontier; decision thread only
	nextID uint64

	workers    int // speculative workers besides the decision thread
	specCancel context.CancelFunc
	workerDone chan struct{}

	mu        sync.Mutex
	cond      *sync.Cond
	spec      nodeQueue // speculation frontier (lazy-deleted mirror of pq)
	specFree  []*specResult
	basisFree []*basisRef
	incObj    float64 // mirror of res.Objective for worker-side pruning
	closed    bool
}

// workerSpace is the per-worker scratch cached in a parallel.Scratch slot:
// a cloned solver (sharing the immutable problem matrices), bound buffers,
// and a private tracer whose counters supply the worker's lp.* deltas.
type workerSpace struct {
	src    *lp.BoundedSolver
	solver *lp.BoundedSolver
	lo, up []float64
	tracer *obs.Tracer
	ctr    [4]*obs.Counter
}

func (ws *workerSpace) prepare(s *search) {
	if ws.tracer == nil {
		ws.tracer = obs.New(nil)
		for i, name := range lpCounterNames {
			ws.ctr[i] = ws.tracer.Counter(name)
		}
	}
	if ws.src != s.solver {
		ws.src = s.solver
		ws.solver = s.solver.Clone()
	}
	n := len(s.rootLo)
	if cap(ws.lo) < n {
		ws.lo = make([]float64, n)
		ws.up = make([]float64, n)
	}
	ws.lo, ws.up = ws.lo[:n], ws.up[:n]
}

// Solve runs presolve and then deterministic (optionally parallel)
// best-first branch and bound on the reduced problem.
func Solve(p Problem, opt Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	maxNodes := opt.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200000
	}
	// One time-budget mechanism: the legacy TimeLimit folds into the
	// context/deadline pair via lp.ResolveBudget; the node loop and every
	// LP relaxation underneath observe the same budget.
	var tl time.Time
	if opt.TimeLimit > 0 {
		tl = start.Add(opt.TimeLimit)
	}
	ctx, deadline := lp.ResolveBudget(opt.Ctx, tl)

	// Full-space root bounds: binaries capped at 1, continuous variables
	// keep the problem bounds.
	n := p.LP.NumVars
	fullUp := make([]float64, n)
	for i := range fullUp {
		if p.LP.Upper != nil {
			fullUp[i] = p.LP.Upper[i]
		} else {
			fullUp[i] = math.Inf(1)
		}
	}
	integer := make([]bool, n)
	for _, v := range p.Binary {
		integer[v] = true
		if fullUp[v] > 1 {
			fullUp[v] = 1
		}
	}

	// Integer-aware presolve: every reduction respects integrality (bounds
	// round inward, dominated binaries fix to 0), so a fully presolved
	// problem is already an optimal integral assignment.
	pre, err := lp.Presolve(p.LP, nil, fullUp, integer)
	if err != nil {
		return Result{}, err
	}
	if opt.Obs != nil {
		opt.Obs.Counter("lp.presolve_rows").Add(int64(pre.RowsRemoved))
		opt.Obs.Counter("lp.presolve_cols").Add(int64(pre.ColsRemoved))
	}
	cNodes := opt.Obs.Counter("ilp.nodes")
	cIncumbents := opt.Obs.Counter("ilp.incumbents")
	switch pre.Outcome {
	case lp.PresolveInfeasible:
		return Result{Status: Infeasible, Objective: math.Inf(1), Elapsed: time.Since(start)}, nil
	case lp.PresolveUnbounded:
		return Result{}, errors.New("ilp: relaxation unbounded")
	case lp.PresolveSolved:
		cNodes.Inc()
		cIncumbents.Inc()
		if opt.Obs != nil {
			opt.Obs.Event("ilp/node", obs.LaneFlow,
				obs.I("node", 1), obs.I("depth", 0),
				obs.F("bound", pre.Offset), obs.I("pivots", 0),
				obs.S("status", "optimal"))
			opt.Obs.Event("ilp/incumbent", obs.LaneFlow,
				obs.I("node", 1), obs.F("objective", pre.Offset))
		}
		return Result{
			Status: Optimal, X: pre.Postsolve(nil, nil), Objective: pre.Offset,
			Nodes: 1, Elapsed: time.Since(start),
		}, nil
	}

	// Branch and bound over the reduced problem.
	rp := Problem{LP: pre.P}
	for r, isInt := range pre.Integer {
		if isInt {
			rp.Binary = append(rp.Binary, r)
		}
	}
	solver, err := lp.NewBoundedSolver(pre.P)
	if err != nil {
		return Result{}, err
	}

	rn := pre.P.NumVars
	s := &search{
		p:        rp,
		opt:      opt,
		offset:   pre.Offset,
		ctx:      ctx,
		deadline: deadline,
		lpOpt:    lp.Options{Ctx: ctx, Deadline: deadline, MaxTableauBytes: opt.MaxTableauBytes, Obs: opt.Obs},
		maxNodes: maxNodes,
		solver:   solver,
		res:      Result{Status: Limit, Objective: math.Inf(1), LPRows: solver.NumRows()},
		rootLo:   pre.Lo,
		rootUp:   pre.Up,
		lo:       make([]float64, rn),
		up:       make([]float64, rn),
		savedLo:  make([]float64, rn),
		savedUp:  make([]float64, rn),
		nodeSol:  &lp.Solution{},
		roundSol: &lp.Solution{},

		cNodes:      cNodes,
		cIncumbents: cIncumbents,
		cBasisReuse: opt.Obs.Counter("ilp.basis_reuse"),
		cSpecSolves: opt.Obs.Counter("ilp.spec_solves"),
		cSpecWasted: opt.Obs.Counter("ilp.spec_wasted"),

		workers: parallel.Workers(opt.Workers, maxNodes) - 1,
		incObj:  math.Inf(1),
	}
	for i, name := range lpCounterNames {
		s.cLP[i] = opt.Obs.Counter(name)
	}
	s.cond = sync.NewCond(&s.mu)

	if err := s.run(); err != nil {
		return Result{}, err
	}
	res := s.res
	if s.incumbent != nil {
		res.X = pre.Postsolve(s.incumbent, nil)
		res.Objective += pre.Offset
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// materialize rebuilds the decision thread's bound scratch for nd from the
// diff chain. Diffs along a root path touch distinct variables (a fixed
// binary is never branched again), so application order is irrelevant.
func (s *search) materialize(nd *bnode) {
	copy(s.lo, s.rootLo)
	copy(s.up, s.rootUp)
	for c := nd; c != nil; c = c.parent {
		if c.v >= 0 {
			s.lo[c.v], s.up[c.v] = c.lo, c.up
		}
	}
}

// relax solves the current bound scratch on the decision thread's solver,
// retrying cold once when a warm basis is numerically hopeless.
func (s *search) relax(warm *lp.Basis, sol *lp.Solution, out *lp.Basis) error {
	t0 := time.Now()
	err := s.solver.SolveBoundsInto(s.lo, s.up, warm, s.lpOpt, sol, out)
	s.res.LPSolves++
	if warm != nil && errors.Is(err, lp.ErrNumerical) {
		err = s.solver.SolveBoundsInto(s.lo, s.up, nil, s.lpOpt, sol, out)
		s.res.LPSolves++
	}
	s.res.LPTime += time.Since(t0)
	return err
}

// Basis snapshots are pooled: a node's snapshot is held by the node itself
// plus its two children, and returns to the free pool once all three
// release it. The pool is shared with speculative workers, so access goes
// through the search mutex.
func (s *search) newBasisRef() *basisRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.newBasisRefLocked()
}

func (s *search) newBasisRefLocked() *basisRef {
	if n := len(s.basisFree); n > 0 {
		br := s.basisFree[n-1]
		s.basisFree = s.basisFree[:n-1]
		br.refs = 1
		s.cBasisReuse.Inc()
		return br
	}
	return &basisRef{refs: 1}
}

func (s *search) release(br *basisRef) {
	if br == nil {
		return
	}
	s.mu.Lock()
	s.releaseLocked(br)
	s.mu.Unlock()
}

func (s *search) releaseLocked(br *basisRef) {
	if br == nil {
		return
	}
	if br.refs--; br.refs == 0 {
		s.basisFree = append(s.basisFree, br)
	}
}

func (s *search) grabSpecLocked() *specResult {
	if n := len(s.specFree); n > 0 {
		sr := s.specFree[n-1]
		s.specFree = s.specFree[:n-1]
		return sr
	}
	return &specResult{}
}

func (s *search) recycleSpec(sr *specResult) {
	if sr == nil {
		return
	}
	s.mu.Lock()
	sr.out = nil
	sr.err = nil
	s.specFree = append(s.specFree, sr)
	s.mu.Unlock()
}

// record installs a new incumbent (decision thread only) and mirrors the
// objective for worker-side pruning.
func (s *search) record(x []float64, obj float64) {
	if obj >= s.res.Objective-1e-9 {
		return
	}
	s.incumbent = append(s.incumbent[:0], x...)
	s.res.Objective = obj
	s.cIncumbents.Inc()
	if s.workers > 0 {
		s.mu.Lock()
		s.incObj = obj
		s.mu.Unlock()
	}
	if s.opt.Obs != nil {
		s.opt.Obs.Event("ilp/incumbent", obs.LaneFlow,
			obs.I("node", s.res.Nodes), obs.F("objective", obj+s.offset))
	}
}

// fractionalVar returns the most fractional unfixed binary under the
// current bound scratch, or -1 when x is integral on all binaries.
func (s *search) fractionalVar(x []float64) int {
	branchVar, frac := -1, 0.0
	for _, v := range s.p.Binary {
		if s.lo[v] == s.up[v] {
			continue
		}
		f := math.Abs(x[v] - math.Round(x[v]))
		if f > intTol && f > frac {
			frac = f
			branchVar = v
		}
	}
	return branchVar
}

// tryRound fixes every binary to its rounded relaxation value and
// re-solves (warm-started); a feasible result seeds or improves the
// incumbent. The current lo/up scratch is saved and restored.
func (s *search) tryRound(x []float64, warm *lp.Basis) error {
	copy(s.savedLo, s.lo)
	copy(s.savedUp, s.up)
	for _, v := range s.p.Binary {
		if x[v] >= 0.5 {
			s.lo[v], s.up[v] = 1, 1
		} else {
			s.lo[v], s.up[v] = 0, 0
		}
	}
	err := s.relax(warm, s.roundSol, &s.roundBasis)
	copy(s.lo, s.savedLo)
	copy(s.up, s.savedUp)
	if err == nil && s.roundSol.Status == lp.Optimal {
		s.record(s.roundSol.X, s.roundSol.Objective)
	}
	if errors.Is(err, lp.ErrTooLarge) {
		err = nil
	}
	return err
}

func (s *search) nodeEvent(node, depth int, sol *lp.Solution, bound float64) {
	if s.opt.Obs == nil {
		return
	}
	s.opt.Obs.Event("ilp/node", obs.LaneFlow,
		obs.I("node", node), obs.I("depth", depth),
		obs.F("bound", bound+s.offset), obs.I("pivots", sol.Iterations),
		obs.S("status", sol.Status.String()))
}

// pushChildren creates both children of a branching, assigns their node
// ids, and publishes them to the decision frontier and (under speculation)
// the worker frontier.
func (s *search) pushChildren(parent *bnode, sol *lp.Solution, br *basisRef, branchVar int) {
	r := math.Round(sol.X[branchVar])
	s.mu.Lock()
	br.refs += 2
	for _, val := range []float64{r, 1 - r} {
		s.nextID++
		nd := &bnode{
			id:     s.nextID,
			bound:  sol.Objective,
			v:      branchVar,
			lo:     val,
			up:     val,
			parent: parent,
			basis:  br,
		}
		heap.Push(&s.pq, nd)
		if s.workers > 0 {
			heap.Push(&s.spec, nd)
		}
	}
	s.mu.Unlock()
	if s.workers > 0 {
		s.cond.Broadcast()
	}
}

// discard drops a pruned node, releasing its warm-start reference. Under
// speculation a worker may be mid-solve on the node; ownership of the
// releases then transfers to that worker (see speculate).
func (s *search) discard(nd *bnode) {
	if s.workers <= 0 {
		s.release(nd.basis)
		return
	}
	s.mu.Lock()
	switch nd.state {
	case nodeSolving:
		nd.state = nodeDiscarded // the worker frees the basis and result
	case nodeDone:
		sr := nd.spec
		nd.spec = nil
		nd.state = nodeDiscarded
		s.releaseLocked(sr.out)
		s.releaseLocked(nd.basis)
		sr.out = nil
		sr.err = nil
		s.specFree = append(s.specFree, sr)
		s.cSpecWasted.Inc()
	default:
		nd.state = nodeDiscarded
		s.releaseLocked(nd.basis)
	}
	s.mu.Unlock()
}

// resolveNode produces the relaxation of nd: either by consuming a
// speculative result (folding the worker's counters in consumption order)
// or by solving inline on the decision thread. The returned specResult is
// non-nil when the solution aliases pooled worker memory and must be
// recycled after use.
func (s *search) resolveNode(nd *bnode) (*lp.Solution, *basisRef, *specResult, error) {
	if s.workers > 0 {
		s.mu.Lock()
		for nd.state == nodeSolving {
			s.cond.Wait()
		}
		if nd.state == nodeDone {
			sr := nd.spec
			nd.spec = nil
			nd.state = nodeClaimed
			s.mu.Unlock()
			for i, c := range s.cLP {
				c.Add(sr.deltas[i])
			}
			s.res.LPSolves += sr.solves
			s.res.LPTime += sr.dur
			s.release(nd.basis) // warm start consumed by the worker
			return &sr.sol, sr.out, sr, sr.err
		}
		nd.state = nodeClaimed
		s.mu.Unlock()
	}
	childRef := s.newBasisRef()
	err := s.relax(&nd.basis.b, s.nodeSol, &childRef.b)
	s.release(nd.basis) // warm start consumed
	return s.nodeSol, childRef, nil, err
}

// processNode expands one popped node. It returns stop=true when a
// resource limit ends the whole search.
func (s *search) processNode(nd *bnode) (stop bool, err error) {
	s.materialize(nd)
	sol, childRef, sr, err := s.resolveNode(nd)
	defer s.recycleSpec(sr)
	if errors.Is(err, lp.ErrTooLarge) {
		s.res.TimedOut = true
		return true, nil
	}
	if err != nil {
		return false, err
	}
	bound := nd.bound
	if sol.Status == lp.Optimal {
		bound = sol.Objective
	}
	s.nodeEvent(s.res.Nodes, nodeDepth(nd), sol, bound)
	if sol.Status != lp.Optimal {
		s.release(childRef)
		return false, nil // infeasible or numerically stuck subtree
	}
	if sol.Objective >= s.res.Objective-1e-9 {
		s.release(childRef)
		return false, nil
	}
	branchVar := s.fractionalVar(sol.X)
	if branchVar < 0 {
		// Integral: incumbent.
		s.record(sol.X, sol.Objective)
		s.release(childRef)
		return false, nil
	}
	if s.incumbent == nil {
		if err := s.tryRound(sol.X, &childRef.b); err != nil {
			return false, err
		}
	}
	s.pushChildren(nd, sol, childRef, branchVar)
	s.release(childRef)
	return false, nil
}

// run executes the root relaxation and the decision loop. All search
// decisions happen here, on one goroutine, in (bound, id) order — workers
// only pre-compute LP results the loop would otherwise solve inline.
func (s *search) run() error {
	copy(s.lo, s.rootLo)
	copy(s.up, s.rootUp)
	rootRef := s.newBasisRef()
	err := s.relax(nil, s.nodeSol, &rootRef.b)
	if errors.Is(err, lp.ErrTooLarge) {
		// The relaxation alone exceeds the memory budget; report a limit so
		// callers fall back, mirroring the paper's ">3000 s" outcomes.
		s.res.TimedOut = true
		return nil
	}
	if err != nil {
		return err
	}
	s.res.Nodes = 1
	s.cNodes.Inc()
	s.nodeEvent(1, 0, s.nodeSol, s.nodeSol.Objective)
	switch s.nodeSol.Status {
	case lp.Infeasible:
		s.res.Status = Infeasible
		return nil
	case lp.Unbounded:
		return errors.New("ilp: relaxation unbounded")
	case lp.IterLimit:
		s.res.TimedOut = true
		return nil
	}

	rootBranch := s.fractionalVar(s.nodeSol.X)
	if rootBranch < 0 {
		// Integral root: proven optimal without branching.
		s.record(s.nodeSol.X, s.nodeSol.Objective)
		s.res.Status = Optimal
		return nil
	}
	// Round the root relaxation immediately so even a solve that hits its
	// limit before the first branch completes reports an incumbent when
	// one is that easy to find (affects how ">limit" rows are reported).
	if err := s.tryRound(s.nodeSol.X, &rootRef.b); err != nil {
		return err
	}

	heap.Init(&s.pq)
	s.pushChildren(nil, s.nodeSol, rootRef, rootBranch)
	s.release(rootRef)

	s.startWorkers()
	defer s.stopWorkers()

	for s.pq.Len() > 0 {
		s.res.Nodes++
		s.cNodes.Inc()
		if s.res.Nodes > s.maxNodes {
			s.res.TimedOut = true
			break
		}
		if lp.BudgetExpired(s.ctx, s.deadline) {
			s.res.TimedOut = true
			break
		}
		nd := heap.Pop(&s.pq).(*bnode)
		if nd.bound >= s.res.Objective-1e-9 {
			s.discard(nd) // pruned by incumbent
			continue
		}
		stop, err := s.processNode(nd)
		if err != nil {
			return err
		}
		if stop {
			break
		}
	}

	if s.incumbent != nil {
		if s.res.TimedOut || s.pq.Len() > 0 && s.pq[0].bound < s.res.Objective-1e-9 {
			s.res.Status = Feasible
		} else {
			s.res.Status = Optimal
		}
	} else if !s.res.TimedOut {
		s.res.Status = Infeasible
	}
	return nil
}

// startWorkers launches the speculative workers (no-op when Workers <= 1).
// parallel.ForEachScratchContext blocks until every worker returns, so it
// runs on its own goroutine; stopWorkers closes the frontier and waits.
func (s *search) startWorkers() {
	if s.workers <= 0 {
		return
	}
	sctx, cancel := context.WithCancel(s.ctx)
	s.specCancel = cancel
	s.workerDone = make(chan struct{})
	w := s.workers
	go func() {
		defer close(s.workerDone)
		parallel.ForEachScratchContext(context.Background(), s.opt.Arena, w, w,
			func(worker int, sc *parallel.Scratch, _ int) error {
				s.runWorker(sctx, sc)
				return nil
			})
	}()
}

func (s *search) stopWorkers() {
	if s.workers <= 0 || s.workerDone == nil {
		return
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.specCancel() // abort in-flight speculative pivot loops
	<-s.workerDone
	s.specCancel = nil
	s.workerDone = nil
}

// runWorker is one speculative worker: repeatedly pop the best pending
// frontier node and pre-solve its relaxation. Results never change search
// decisions — the decision loop consumes them in its own order.
func (s *search) runWorker(ctx context.Context, sc *parallel.Scratch) {
	ws := sc.Get("ilp", func() any { return &workerSpace{} }).(*workerSpace)
	ws.prepare(s)
	lpOpt := lp.Options{Ctx: ctx, Deadline: s.deadline, MaxTableauBytes: s.opt.MaxTableauBytes, Obs: ws.tracer}
	for {
		s.mu.Lock()
		var nd *bnode
		for nd == nil && !s.closed {
			for s.spec.Len() > 0 {
				top := s.spec[0]
				// Lazy deletion: skip nodes already claimed, solved, or
				// discarded, and nodes the incumbent will prune (incObj only
				// decreases, so a prunable node stays prunable).
				if top.state != nodePending || top.bound >= s.incObj-1e-9 {
					heap.Pop(&s.spec)
					continue
				}
				nd = heap.Pop(&s.spec).(*bnode)
				break
			}
			if nd == nil && !s.closed {
				s.cond.Wait()
			}
		}
		if nd == nil {
			s.mu.Unlock()
			return
		}
		nd.state = nodeSolving
		sr := s.grabSpecLocked()
		s.mu.Unlock()
		s.speculate(ws, lpOpt, nd, sr)
	}
}

// speculate solves nd's relaxation on the worker's cloned solver,
// replicating the decision thread's cold-retry policy bit for bit, and
// publishes the result — unless the node was discarded mid-solve, in which
// case the worker owns the cleanup (the decision loop has already moved
// on and must not race on the basis pool).
func (s *search) speculate(ws *workerSpace, lpOpt lp.Options, nd *bnode, sr *specResult) {
	copy(ws.lo, s.rootLo)
	copy(ws.up, s.rootUp)
	for c := nd; c != nil; c = c.parent {
		if c.v >= 0 {
			ws.lo[c.v], ws.up[c.v] = c.lo, c.up
		}
	}
	var before [4]int64
	for i, c := range ws.ctr {
		before[i] = c.Value()
	}
	out := s.newBasisRef()
	t0 := time.Now()
	err := ws.solver.SolveBoundsInto(ws.lo, ws.up, &nd.basis.b, lpOpt, &sr.sol, &out.b)
	sr.solves = 1
	if errors.Is(err, lp.ErrNumerical) {
		err = ws.solver.SolveBoundsInto(ws.lo, ws.up, nil, lpOpt, &sr.sol, &out.b)
		sr.solves = 2
	}
	sr.dur = time.Since(t0)
	sr.err = err
	sr.out = out
	for i, c := range ws.ctr {
		sr.deltas[i] = c.Value() - before[i]
	}

	s.mu.Lock()
	if nd.state == nodeDiscarded {
		s.releaseLocked(nd.basis)
		s.releaseLocked(out)
		sr.out = nil
		sr.err = nil
		s.specFree = append(s.specFree, sr)
		s.cSpecWasted.Inc()
		s.mu.Unlock()
		return
	}
	if s.closed {
		s.releaseLocked(out)
		sr.out = nil
		sr.err = nil
		s.specFree = append(s.specFree, sr)
		s.cSpecWasted.Inc()
		s.mu.Unlock()
		return
	}
	nd.spec = sr
	nd.state = nodeDone
	s.cSpecSolves.Inc()
	s.mu.Unlock()
	s.cond.Broadcast()
}
