// Package ilp solves mixed 0-1 integer linear programmes with best-first
// branch and bound over the revised-simplex relaxation in internal/lp. It
// is the stand-in for the commercial ILP solver of the paper's §3.3; like
// the paper's experiments it supports a wall-clock time limit and reports
// whether the limit was hit (the paper's ">3000 s" entries).
//
// Branching never touches the constraint rows: a node tightens one binary
// variable's bounds (x fixed to 0 or 1), stored as a persistent diff chain
// back to the root, and each child re-solves from its parent's optimal
// basis via the solver's dual-simplex warm start. The row set is therefore
// invariant across the whole tree — a property the tests assert.
package ilp

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"operon/internal/lp"
	"operon/internal/obs"
)

// Problem is a linear programme plus a set of variables restricted to {0,1}.
type Problem struct {
	// LP is the underlying relaxation; its Upper bounds must already cap the
	// binary variables at 1 (buildProgram does).
	LP lp.Problem
	// Binary lists variable indices constrained to {0,1}. Variables not
	// listed remain continuous and non-negative.
	Binary []int
}

// Validate checks structural consistency.
func (p Problem) Validate() error {
	if err := p.LP.Validate(); err != nil {
		return err
	}
	seen := map[int]bool{}
	for _, v := range p.Binary {
		if v < 0 || v >= p.LP.NumVars {
			return fmt.Errorf("ilp: binary variable %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("ilp: binary variable %d listed twice", v)
		}
		seen[v] = true
	}
	return nil
}

// Options tunes the search.
type Options struct {
	// Ctx, when non-nil, bounds the search: the node loop polls it once per
	// branch-and-bound node and the LP relaxations underneath poll it every
	// few pivots. Cancellation or an expired deadline ends the solve with
	// TimedOut set, returning the best incumbent found so far (the paper's
	// ">3000 s" semantics). A nil Ctx means context.Background().
	Ctx context.Context
	// TimeLimit bounds the wall-clock solve time; zero means no limit.
	//
	// Deprecated: TimeLimit is a thin wrapper over the context deadline —
	// a non-zero value derives a child context via context.WithTimeout, so
	// the earlier of TimeLimit and Ctx's own deadline wins. New callers
	// should pass a context with a deadline via Ctx instead.
	TimeLimit time.Duration
	// MaxNodes bounds the number of branch-and-bound nodes; zero means
	// 200000.
	MaxNodes int
	// MaxTableauBytes caps the LP solver workspace (zero = lp default).
	// Oversized relaxations end the solve with TimedOut set.
	MaxTableauBytes int64
	// Obs, when non-nil, receives an ilp/node event per branch-and-bound
	// node (depth, bound, warm-start pivot count), an ilp/incumbent event
	// per incumbent improvement, the ilp.nodes / ilp.incumbents counters,
	// and the lp.* counters of the relaxation engine underneath.
	Obs *obs.Tracer
}

// Status describes the outcome.
type Status int

const (
	// Optimal means the incumbent is proven optimal.
	Optimal Status = iota
	// Feasible means a feasible integer solution was found but optimality
	// was not proven before a limit was reached.
	Feasible
	// Infeasible means no integer solution exists.
	Infeasible
	// Limit means a limit was reached with no incumbent.
	Limit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	default:
		return "limit"
	}
}

// Result is the outcome of Solve.
type Result struct {
	// Status classifies the solve: Optimal, Feasible (incumbent under a
	// limit), Infeasible, or Limit (no incumbent before a budget ran out).
	Status Status
	// X is the best integral assignment found (length LP.NumVars); only
	// meaningful for Optimal and Feasible.
	X []float64
	// Objective is the objective value of X.
	Objective float64
	// Nodes counts branch-and-bound nodes explored.
	Nodes int
	// Elapsed is the wall-clock time of the solve.
	Elapsed time.Duration
	// TimedOut reports that a budget — the context deadline, the deprecated
	// TimeLimit, or MaxNodes — stopped the search before optimality.
	TimedOut bool
	// LPSolves counts LP relaxations solved (root, nodes, and rounding
	// heuristics).
	LPSolves int
	// LPTime is the wall clock spent inside the LP solver.
	LPTime time.Duration
	// LPRows is the constraint-row count of the relaxation solver; it is
	// invariant across the branch-and-bound tree because nodes are
	// expressed purely as variable-bound changes.
	LPRows int
}

const intTol = 1e-6

// nodeDepth counts the bound tightenings between nd and the root — the
// node's depth in the branch-and-bound tree.
func nodeDepth(nd *bnode) int {
	d := 0
	for c := nd; c != nil; c = c.parent {
		if c.v >= 0 {
			d++
		}
	}
	return d
}

// bnode is one branch-and-bound node: a single bound tightening relative
// to its parent (a persistent diff chain back to the root) plus the
// parent's optimal basis for the dual-simplex warm start.
type bnode struct {
	bound  float64 // parent relaxation objective: lower bound for the subtree
	v      int     // variable whose bounds this node tightens
	lo, up float64
	parent *bnode
	basis  *basisRef // parent's optimal basis (shared by both children)
}

// basisRef wraps a basis snapshot with a reference count so the search can
// recycle the snapshot's slices once every holder (the creating node plus
// its two children) has consumed it. Steady-state branch and bound then
// keeps a small free pool of bases instead of allocating one per node.
type basisRef struct {
	b    lp.Basis
	refs int
}

type nodeQueue []*bnode

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].bound < q[j].bound }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*bnode)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Solve runs best-first branch and bound.
func Solve(p Problem, opt Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	maxNodes := opt.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200000
	}
	// One time-budget mechanism: the legacy TimeLimit folds into the context
	// deadline, and both the node loop and the LP engine observe the context.
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.TimeLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.TimeLimit)
		defer cancel()
	}
	lpOpt := lp.Options{Ctx: ctx, MaxTableauBytes: opt.MaxTableauBytes, Obs: opt.Obs}
	cNodes := opt.Obs.Counter("ilp.nodes")
	cIncumbents := opt.Obs.Counter("ilp.incumbents")

	solver, err := lp.NewBoundedSolver(p.LP)
	if err != nil {
		return Result{}, err
	}
	res := Result{Status: Limit, Objective: math.Inf(1), LPRows: solver.NumRows()}

	// Root bounds: binaries live in [0,1] natively; continuous variables
	// keep the problem bounds.
	n := p.LP.NumVars
	rootLo := make([]float64, n)
	rootUp := make([]float64, n)
	for i := range rootUp {
		if p.LP.Upper != nil {
			rootUp[i] = p.LP.Upper[i]
		} else {
			rootUp[i] = math.Inf(1)
		}
	}
	for _, v := range p.Binary {
		if rootUp[v] > 1 {
			rootUp[v] = 1
		}
	}

	// Scratch bound arrays, rebuilt per node from the diff chain.
	lo := make([]float64, n)
	up := make([]float64, n)
	materialize := func(nd *bnode) {
		copy(lo, rootLo)
		copy(up, rootUp)
		// Diffs along a root path touch distinct variables (a fixed binary
		// is never branched again), so application order is irrelevant.
		for c := nd; c != nil; c = c.parent {
			if c.v >= 0 {
				lo[c.v], up[c.v] = c.lo, c.up
			}
		}
	}

	// The relaxation writes into caller-owned Solution/Basis scratch via
	// SolveBoundsInto, so the node loop re-solves without per-node
	// allocation. nodeSol carries the current node's relaxation; roundSol
	// and roundBasis are separate because tryRound runs while nodeSol's X
	// is still being branched on.
	nodeSol, roundSol := &lp.Solution{}, &lp.Solution{}
	var roundBasis lp.Basis
	relax := func(warm *lp.Basis, sol *lp.Solution, out *lp.Basis) error {
		t0 := time.Now()
		err := solver.SolveBoundsInto(lo, up, warm, lpOpt, sol, out)
		res.LPSolves++
		if warm != nil && errors.Is(err, lp.ErrNumerical) {
			// A warm basis can be numerically hopeless under the child
			// bounds; retry from the all-slack start before giving up.
			err = solver.SolveBoundsInto(lo, up, nil, lpOpt, sol, out)
			res.LPSolves++
		}
		res.LPTime += time.Since(t0)
		return err
	}

	// Basis snapshots are pooled: a node's snapshot is held by the node
	// itself plus its two children, and returns to the free pool once all
	// three release it.
	cBasisReuse := opt.Obs.Counter("ilp.basis_reuse")
	var basisFree []*basisRef
	newBasisRef := func() *basisRef {
		if n := len(basisFree); n > 0 {
			br := basisFree[n-1]
			basisFree = basisFree[:n-1]
			br.refs = 1
			cBasisReuse.Inc()
			return br
		}
		return &basisRef{refs: 1}
	}
	release := func(br *basisRef) {
		if br == nil {
			return
		}
		if br.refs--; br.refs == 0 {
			basisFree = append(basisFree, br)
		}
	}

	var incumbent []float64
	record := func(x []float64, obj float64) {
		if obj < res.Objective-1e-9 {
			incumbent = append(incumbent[:0], x...)
			res.Objective = obj
			cIncumbents.Inc()
			if opt.Obs != nil {
				opt.Obs.Event("ilp/incumbent", obs.LaneFlow,
					obs.I("node", res.Nodes), obs.F("objective", obj))
			}
		}
	}

	// fractionalVar returns the most fractional unfixed binary, or -1 when
	// x is integral on all binaries.
	fractionalVar := func(x []float64) int {
		branchVar, frac := -1, 0.0
		for _, v := range p.Binary {
			if lo[v] == up[v] {
				continue
			}
			f := math.Abs(x[v] - math.Round(x[v]))
			if f > intTol && f > frac {
				frac = f
				branchVar = v
			}
		}
		return branchVar
	}

	// tryRound fixes every binary to its rounded relaxation value and
	// re-solves (warm-started); a feasible result seeds or improves the
	// incumbent. The current lo/up scratch is saved and restored.
	savedLo := make([]float64, n)
	savedUp := make([]float64, n)
	tryRound := func(x []float64, warm *lp.Basis) error {
		copy(savedLo, lo)
		copy(savedUp, up)
		for _, v := range p.Binary {
			if x[v] >= 0.5 {
				lo[v], up[v] = 1, 1
			} else {
				lo[v], up[v] = 0, 0
			}
		}
		err := relax(warm, roundSol, &roundBasis)
		copy(lo, savedLo)
		copy(up, savedUp)
		if err == nil && roundSol.Status == lp.Optimal {
			record(roundSol.X, roundSol.Objective)
		}
		if errors.Is(err, lp.ErrTooLarge) {
			err = nil
		}
		return err
	}

	// Root relaxation.
	copy(lo, rootLo)
	copy(up, rootUp)
	rootRef := newBasisRef()
	err = relax(nil, nodeSol, &rootRef.b)
	if errors.Is(err, lp.ErrTooLarge) {
		// The relaxation alone exceeds the memory budget; report a limit so
		// callers fall back, mirroring the paper's ">3000 s" outcomes.
		res.TimedOut = true
		res.Elapsed = time.Since(start)
		return res, nil
	}
	if err != nil {
		return Result{}, err
	}
	res.Nodes = 1
	cNodes.Inc()
	if opt.Obs != nil {
		opt.Obs.Event("ilp/node", obs.LaneFlow,
			obs.I("node", 1), obs.I("depth", 0),
			obs.F("bound", nodeSol.Objective), obs.I("pivots", nodeSol.Iterations),
			obs.S("status", nodeSol.Status.String()))
	}
	switch nodeSol.Status {
	case lp.Infeasible:
		res.Status = Infeasible
		res.Elapsed = time.Since(start)
		return res, nil
	case lp.Unbounded:
		return Result{}, errors.New("ilp: relaxation unbounded")
	case lp.IterLimit:
		res.Elapsed = time.Since(start)
		res.TimedOut = true
		return res, nil
	}

	rootBranch := fractionalVar(nodeSol.X)
	if rootBranch < 0 {
		// Integral root: proven optimal without branching.
		record(nodeSol.X, nodeSol.Objective)
		res.Status = Optimal
		res.X = incumbent
		res.Elapsed = time.Since(start)
		return res, nil
	}
	// Round the root relaxation immediately so even a solve that hits its
	// limit before the first branch completes reports an incumbent when
	// one is that easy to find (affects how ">limit" rows are reported).
	if err := tryRound(nodeSol.X, &rootRef.b); err != nil {
		return Result{}, err
	}

	pq := &nodeQueue{}
	heap.Init(pq)
	pushChildren := func(parent *bnode, sol *lp.Solution, br *basisRef, branchVar int) {
		r := math.Round(sol.X[branchVar])
		br.refs += 2
		for _, val := range []float64{r, 1 - r} {
			heap.Push(pq, &bnode{
				bound:  sol.Objective,
				v:      branchVar,
				lo:     val,
				up:     val,
				parent: parent,
				basis:  br,
			})
		}
	}
	pushChildren(nil, nodeSol, rootRef, rootBranch)
	release(rootRef)

	for pq.Len() > 0 {
		res.Nodes++
		cNodes.Inc()
		if res.Nodes > maxNodes {
			res.TimedOut = true
			break
		}
		if ctx.Err() != nil {
			res.TimedOut = true
			break
		}
		nd := heap.Pop(pq).(*bnode)
		if nd.bound >= res.Objective-1e-9 {
			release(nd.basis)
			continue // pruned by incumbent
		}
		materialize(nd)
		childRef := newBasisRef()
		err := relax(&nd.basis.b, nodeSol, &childRef.b)
		release(nd.basis) // warm start consumed
		if errors.Is(err, lp.ErrTooLarge) {
			res.TimedOut = true
			break
		}
		if err != nil {
			return Result{}, err
		}
		if opt.Obs != nil {
			bound := nd.bound
			if nodeSol.Status == lp.Optimal {
				bound = nodeSol.Objective
			}
			opt.Obs.Event("ilp/node", obs.LaneFlow,
				obs.I("node", res.Nodes), obs.I("depth", nodeDepth(nd)),
				obs.F("bound", bound), obs.I("pivots", nodeSol.Iterations),
				obs.S("status", nodeSol.Status.String()))
		}
		if nodeSol.Status != lp.Optimal {
			release(childRef)
			continue // infeasible or numerically stuck subtree
		}
		if nodeSol.Objective >= res.Objective-1e-9 {
			release(childRef)
			continue
		}
		branchVar := fractionalVar(nodeSol.X)
		if branchVar < 0 {
			// Integral: incumbent.
			record(nodeSol.X, nodeSol.Objective)
			release(childRef)
			continue
		}
		if incumbent == nil {
			if err := tryRound(nodeSol.X, &childRef.b); err != nil {
				return Result{}, err
			}
		}
		pushChildren(nd, nodeSol, childRef, branchVar)
		release(childRef)
	}

	res.Elapsed = time.Since(start)
	if incumbent != nil {
		res.X = incumbent
		if res.TimedOut || pq.Len() > 0 && (*pq)[0].bound < res.Objective-1e-9 {
			res.Status = Feasible
		} else {
			res.Status = Optimal
		}
	} else if !res.TimedOut {
		res.Status = Infeasible
	}
	return res, nil
}
