package ilp

import (
	"math"
	"math/rand"
	"testing"

	"operon/internal/lp"
)

// randomILP builds a feasibility-biased random 0-1 programme with a few
// continuous variables, the same family TestAgainstBruteForce uses.
func randomILP(rng *rand.Rand) Problem {
	nB := 2 + rng.Intn(5)
	nC := rng.Intn(3)
	n := nB + nC
	p := Problem{LP: lp.Problem{NumVars: n, Objective: make([]float64, n)}}
	for i := 0; i < n; i++ {
		p.LP.Objective[i] = rng.Float64()*6 - 1
	}
	for i := 0; i < nB; i++ {
		p.Binary = append(p.Binary, i)
	}
	for i := nB; i < n; i++ {
		p.LP.Rows = append(p.LP.Rows, lp.Row{
			Terms: []lp.Term{{Var: i, Coeff: 1}}, Sense: lp.LE, RHS: 3,
		})
	}
	for k := 0; k < 1+rng.Intn(3); k++ {
		row := lp.Row{Sense: lp.GE, RHS: 0.5 + rng.Float64()}
		for j := 0; j < n; j++ {
			row.Terms = append(row.Terms, lp.Term{Var: j, Coeff: rng.Float64()})
		}
		p.LP.Rows = append(p.LP.Rows, row)
	}
	return p
}

// TestRowsInvariantAcrossTree asserts the branch-and-bound tree never
// materialises bound rows: the relaxation solver's row count equals the
// problem's own row count, and the problem rows are not mutated or grown
// by the solve.
func TestRowsInvariantAcrossTree(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		p := randomILP(rng)
		wantRows := len(p.LP.Rows)
		r, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(p.LP.Rows) != wantRows {
			t.Fatalf("trial %d: problem rows grew from %d to %d", trial, wantRows, len(p.LP.Rows))
		}
		// Presolve may shrink the row set; branching must never grow it.
		if r.LPRows > wantRows {
			t.Fatalf("trial %d: solver used %d rows for a %d-row problem (bounds must not become rows)",
				trial, r.LPRows, wantRows)
		}
		if r.Nodes > 1 && r.LPSolves < 2 {
			t.Fatalf("trial %d: %d nodes but only %d LP solves recorded", trial, r.Nodes, r.LPSolves)
		}
	}
}

// TestWarmStartMatchesColdObjective pins the warm-start contract at the
// branch-and-bound level: fixing a binary via the node bound mechanism
// (warm dual-simplex start) must reach the same objective as solving the
// equivalent problem from scratch with the fixing expressed as a row.
func TestWarmStartMatchesColdObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		p := randomILP(rng)
		warm, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Cold reference: same problem with every relaxation solved from
		// scratch — emulated by the dense brute force over all binary
		// assignments.
		want := bruteForce(t, p)
		if math.IsInf(want, 1) {
			if warm.Status != Infeasible {
				t.Fatalf("trial %d: brute force infeasible but solver says %v", trial, warm.Status)
			}
			continue
		}
		if warm.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, warm.Status)
		}
		if math.Abs(warm.Objective-want) > 1e-5 {
			t.Fatalf("trial %d: warm-started objective %v, want %v", trial, warm.Objective, want)
		}
	}
}

// TestRootRoundingSeedsIncumbent pins the root heuristic: a solve that
// stops at its node limit right after the root must still report the
// rounded-root incumbent (Feasible, not Limit) when rounding is feasible.
func TestRootRoundingSeedsIncumbent(t *testing.T) {
	// max 10a + 6b + 4c s.t. a+b+c <= 2.4: the root LP sits at a=b=1,
	// c=0.4, and rounding (c -> 0) is feasible with objective -16.
	p := Problem{
		LP: lp.Problem{
			NumVars:   3,
			Objective: []float64{-10, -6, -4},
			Rows: []lp.Row{
				{Terms: []lp.Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}, {Var: 2, Coeff: 1}},
					Sense: lp.LE, RHS: 2.4},
			},
		},
		Binary: []int{0, 1, 2},
	}
	r, err := Solve(p, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.X == nil {
		t.Fatalf("no incumbent despite feasible root rounding (status %v)", r.Status)
	}
	if r.Status != Feasible && r.Status != Optimal {
		t.Fatalf("status %v, want feasible or optimal with the rounded incumbent", r.Status)
	}
	if r.Objective > -16+1e-6 {
		t.Fatalf("rounded incumbent objective %v, want <= -16", r.Objective)
	}
}

// TestBinaryWithProblemUpperBounds checks binaries compose with native
// Problem.Upper bounds on continuous variables.
func TestBinaryWithProblemUpperBounds(t *testing.T) {
	// min 5b + y s.t. y >= 3 - 4b with y <= 2 native: b=0 infeasible
	// (y would need 3 > 2), so b=1, y=0: objective 5.
	p := Problem{
		LP: lp.Problem{
			NumVars:   2,
			Objective: []float64{5, 1},
			Rows: []lp.Row{
				{Terms: []lp.Term{{Var: 0, Coeff: 4}, {Var: 1, Coeff: 1}},
					Sense: lp.GE, RHS: 3},
			},
			Upper: []float64{math.Inf(1), 2},
		},
		Binary: []int{0},
	}
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Objective-5) > 1e-6 {
		t.Fatalf("status %v obj %v, want optimal 5", r.Status, r.Objective)
	}
}
