package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"operon/internal/lp"
)

func TestValidate(t *testing.T) {
	p := Problem{
		LP:     lp.Problem{NumVars: 2, Objective: []float64{1, 1}},
		Binary: []int{0, 5},
	}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range binary accepted")
	}
	p.Binary = []int{0, 0}
	if err := p.Validate(); err == nil {
		t.Error("duplicate binary accepted")
	}
}

func TestKnapsack(t *testing.T) {
	// max 10a + 6b + 4c s.t. a+b+c <= 2 (binary): pick a and b → 16.
	p := Problem{
		LP: lp.Problem{
			NumVars:   3,
			Objective: []float64{-10, -6, -4},
			Rows: []lp.Row{
				{Terms: []lp.Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}, {Var: 2, Coeff: 1}},
					Sense: lp.LE, RHS: 2},
			},
		},
		Binary: []int{0, 1, 2},
	}
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal {
		t.Fatalf("status %v", r.Status)
	}
	if math.Abs(r.Objective-(-16)) > 1e-6 {
		t.Errorf("objective %v, want -16", r.Objective)
	}
	if r.X[0] < 0.99 || r.X[1] < 0.99 || r.X[2] > 0.01 {
		t.Errorf("X = %v", r.X)
	}
}

func TestFractionalRelaxationForcesBranching(t *testing.T) {
	// max a + b s.t. a + b <= 1.5, binary: LP gives 1.5; ILP must give 1.
	p := Problem{
		LP: lp.Problem{
			NumVars:   2,
			Objective: []float64{-1, -1},
			Rows: []lp.Row{
				{Terms: []lp.Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}},
					Sense: lp.LE, RHS: 1.5},
			},
		},
		Binary: []int{0, 1},
	}
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Objective-(-1)) > 1e-6 {
		t.Fatalf("status %v obj %v, want optimal -1", r.Status, r.Objective)
	}
}

func TestInfeasibleILP(t *testing.T) {
	// a + b = 1.5 with both binary has no integer solution... relaxation is
	// feasible, so branching must prove infeasibility... actually a=1,b=0.5
	// is not integral; a=1,b=1 gives 2; none hit 1.5.
	p := Problem{
		LP: lp.Problem{
			NumVars:   2,
			Objective: []float64{1, 1},
			Rows: []lp.Row{
				{Terms: []lp.Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}},
					Sense: lp.EQ, RHS: 1.5},
			},
		},
		Binary: []int{0, 1},
	}
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", r.Status)
	}
}

func TestRootInfeasible(t *testing.T) {
	p := Problem{
		LP: lp.Problem{
			NumVars:   1,
			Objective: []float64{1},
			Rows: []lp.Row{
				{Terms: []lp.Term{{Var: 0, Coeff: 1}}, Sense: lp.GE, RHS: 2},
				{Terms: []lp.Term{{Var: 0, Coeff: 1}}, Sense: lp.LE, RHS: 1},
			},
		},
		Binary: []int{0},
	}
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Infeasible {
		t.Fatalf("status %v", r.Status)
	}
}

func TestMixedContinuousBinary(t *testing.T) {
	// min 5b + y s.t. y >= 3 - 4b, y >= 0, b binary.
	// b=0: y=3 → 3. b=1: y=0 → 5. Optimal 3.
	p := Problem{
		LP: lp.Problem{
			NumVars:   2,
			Objective: []float64{5, 1},
			Rows: []lp.Row{
				{Terms: []lp.Term{{Var: 0, Coeff: 4}, {Var: 1, Coeff: 1}},
					Sense: lp.GE, RHS: 3},
			},
		},
		Binary: []int{0},
	}
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Objective-3) > 1e-6 {
		t.Fatalf("status %v obj %v, want optimal 3", r.Status, r.Objective)
	}
}

// bruteForce enumerates all binary assignments and solves the continuous
// remainder, returning the best objective (or +Inf).
func bruteForce(t *testing.T, p Problem) float64 {
	t.Helper()
	best := math.Inf(1)
	nB := len(p.Binary)
	for mask := 0; mask < 1<<nB; mask++ {
		q := p.LP
		rows := append([]lp.Row(nil), q.Rows...)
		for i, v := range p.Binary {
			val := 0.0
			if mask&(1<<i) != 0 {
				val = 1
			}
			rows = append(rows, lp.Row{
				Terms: []lp.Term{{Var: v, Coeff: 1}}, Sense: lp.EQ, RHS: val,
			})
		}
		q.Rows = rows
		s, err := lp.Solve(q)
		if err != nil {
			t.Fatal(err)
		}
		if s.Status == lp.Optimal && s.Objective < best {
			best = s.Objective
		}
	}
	return best
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		nB := 2 + rng.Intn(5) // up to 6 binaries
		nC := rng.Intn(3)     // plus continuous vars
		n := nB + nC
		p := Problem{LP: lp.Problem{NumVars: n, Objective: make([]float64, n)}}
		for i := 0; i < n; i++ {
			p.LP.Objective[i] = rng.Float64()*6 - 1
		}
		for i := 0; i < nB; i++ {
			p.Binary = append(p.Binary, i)
		}
		// Continuous vars need upper bounds for boundedness.
		for i := nB; i < n; i++ {
			p.LP.Rows = append(p.LP.Rows, lp.Row{
				Terms: []lp.Term{{Var: i, Coeff: 1}}, Sense: lp.LE, RHS: 3,
			})
		}
		// Random covering constraints.
		for k := 0; k < 1+rng.Intn(3); k++ {
			row := lp.Row{Sense: lp.GE, RHS: 0.5 + rng.Float64()}
			for j := 0; j < n; j++ {
				row.Terms = append(row.Terms, lp.Term{Var: j, Coeff: rng.Float64()})
			}
			p.LP.Rows = append(p.LP.Rows, row)
		}
		want := bruteForce(t, p)
		r, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(want, 1) {
			if r.Status != Infeasible {
				t.Errorf("trial %d: brute force infeasible but solver says %v", trial, r.Status)
			}
			continue
		}
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, r.Status)
		}
		if math.Abs(r.Objective-want) > 1e-5 {
			t.Errorf("trial %d: objective %v, want %v", trial, r.Objective, want)
		}
	}
}

func TestSelectionShape(t *testing.T) {
	// The OPERON ILP shape: per net exactly one candidate, loss coupling via
	// a pair variable y >= a0 + b0 - 1 charged on a budget row.
	//   net A: cand a0 (power 1, loss-heavy), a1 (power 3)
	//   net B: cand b0 (power 1), b1 (power 3)
	//   budget: 2·y <= 1  → a0 and b0 cannot both be chosen.
	// Optimal: one net keeps its cheap candidate, the other upgrades: 4.
	p := Problem{
		LP: lp.Problem{
			NumVars:   5, // a0 a1 b0 b1 y
			Objective: []float64{1, 3, 1, 3, 0},
			Rows: []lp.Row{
				{Terms: []lp.Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}}, Sense: lp.EQ, RHS: 1},
				{Terms: []lp.Term{{Var: 2, Coeff: 1}, {Var: 3, Coeff: 1}}, Sense: lp.EQ, RHS: 1},
				// y >= a0 + b0 - 1
				{Terms: []lp.Term{{Var: 4, Coeff: 1}, {Var: 0, Coeff: -1}, {Var: 2, Coeff: -1}},
					Sense: lp.GE, RHS: -1},
				// 2y <= 1
				{Terms: []lp.Term{{Var: 4, Coeff: 2}}, Sense: lp.LE, RHS: 1},
			},
		},
		Binary: []int{0, 1, 2, 3},
	}
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Objective-4) > 1e-6 {
		t.Fatalf("status %v obj %v, want optimal 4", r.Status, r.Objective)
	}
}

func TestTimeLimit(t *testing.T) {
	// A crafted equality-knapsack family with many symmetric solutions is
	// slow to prove optimal; a tiny time limit must return promptly with
	// TimedOut set.
	rng := rand.New(rand.NewSource(11))
	n := 26
	p := Problem{LP: lp.Problem{NumVars: n, Objective: make([]float64, n)}}
	row := lp.Row{Sense: lp.EQ, RHS: 7.5}
	for i := 0; i < n; i++ {
		p.LP.Objective[i] = 1 + rng.Float64()*0.001
		row.Terms = append(row.Terms, lp.Term{Var: i, Coeff: 1 + rng.Float64()*0.01})
		p.Binary = append(p.Binary, i)
	}
	p.LP.Rows = append(p.LP.Rows, row)
	start := time.Now()
	r, err := Solve(p, Options{TimeLimit: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !r.TimedOut && r.Status == Optimal {
		// Fast machines may actually finish; that is acceptable, but then
		// the elapsed time must be under the limit.
		if time.Since(start) > time.Second {
			t.Error("solver neither timed out nor finished quickly")
		}
		return
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("time limit ignored: ran %v", time.Since(start))
	}
}

func TestNodeLimit(t *testing.T) {
	p := Problem{
		LP: lp.Problem{
			NumVars:   4,
			Objective: []float64{-1, -1, -1, -1},
			Rows: []lp.Row{
				{Terms: []lp.Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1},
					{Var: 2, Coeff: 1}, {Var: 3, Coeff: 1}}, Sense: lp.LE, RHS: 2.5},
			},
		},
		Binary: []int{0, 1, 2, 3},
	}
	r, err := Solve(p, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes > 2 {
		t.Errorf("node limit ignored: %d nodes", r.Nodes)
	}
	_ = r
}

func TestStatusStrings(t *testing.T) {
	for _, s := range []Status{Optimal, Feasible, Infeasible, Limit} {
		if s.String() == "" {
			t.Error("empty status name")
		}
	}
}

func TestMemoryBudgetEndsSolve(t *testing.T) {
	p := Problem{
		LP: lp.Problem{
			NumVars:   4,
			Objective: []float64{1, 1, 1, 1},
			Rows: []lp.Row{
				{Terms: []lp.Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1},
					{Var: 2, Coeff: 1}, {Var: 3, Coeff: 1}}, Sense: lp.GE, RHS: 2},
			},
		},
		Binary: []int{0, 1, 2, 3},
	}
	r, err := Solve(p, Options{MaxTableauBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !r.TimedOut || r.Status != Limit {
		t.Fatalf("tiny memory budget: status %v timedOut %v, want limit/true",
			r.Status, r.TimedOut)
	}
}
