package wdm

import (
	"math"
	"testing"

	"operon/internal/geom"
)

func TestDisplacementAccounting(t *testing.T) {
	// One connection exactly on its WDM: zero displacement. A second one
	// offset by 0.02 within reach: displacement = 0.02 × bits when the
	// flow keeps both on the first WDM.
	conns := []Connection{
		hconn(0.00, 0, 1, 10),
		hconn(0.02, 0, 1, 10),
	}
	pl, as, _, err := Run(conns, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.WDMs) != 1 {
		t.Fatalf("placement WDMs = %d, want 1", len(pl.WDMs))
	}
	want := 0.02 * 10
	if math.Abs(as.DisplacedBitCM-want) > 1e-9 {
		t.Errorf("DisplacedBitCM = %v, want %v", as.DisplacedBitCM, want)
	}
}

func TestVerticalOnlyPipeline(t *testing.T) {
	conns := []Connection{
		vconn(0.00, 0, 2, 12),
		vconn(0.01, 0, 2, 12),
		vconn(0.02, 0, 2, 12),
	}
	pl, as, st, err := Run(conns, cfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range pl.WDMs {
		if w.Horizontal {
			t.Fatal("vertical connections placed on a horizontal WDM")
		}
	}
	if st.FinalWDMs > st.InitialWDMs {
		t.Fatal("assignment increased WDMs")
	}
	total := 0
	for i := range conns {
		for _, s := range as.Shares[i] {
			total += s.Bits
		}
	}
	if total != 36 {
		t.Fatalf("shares cover %d bits, want 36", total)
	}
}

func TestDiagonalClassification(t *testing.T) {
	// A 45°+ε segment is vertical-dominant; placement must treat it as such.
	diag := Connection{
		Seg:  geom.Segment{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 0.5, Y: 0.8}},
		Bits: 4,
	}
	if diag.Horizontal() {
		t.Fatal("steep diagonal classified horizontal")
	}
	pl, err := Place([]Connection{diag}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.WDMs) != 1 || pl.WDMs[0].Horizontal {
		t.Fatalf("placement: %+v", pl.WDMs)
	}
	// Its placement coordinate is the midpoint x.
	if math.Abs(pl.WDMs[0].CoordCM-0.25) > 1e-9 {
		t.Errorf("coord = %v, want 0.25", pl.WDMs[0].CoordCM)
	}
}

func TestSingleConnectionSingleWDM(t *testing.T) {
	pl, as, st, err := Run([]Connection{hconn(1, 0, 3, 32)}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.WDMs) != 1 || st.FinalWDMs != 1 {
		t.Fatalf("single full connection: %d placed, %d final", len(pl.WDMs), st.FinalWDMs)
	}
	if len(as.Shares[0]) != 1 || as.Shares[0][0].Bits != 32 {
		t.Fatalf("shares: %+v", as.Shares[0])
	}
}
