package wdm

import (
	"math"
	"math/rand"
	"testing"

	"operon/internal/geom"
)

func cfg() Config {
	return Config{Capacity: 32, MinSpacingCM: 0.0005, MaxAssignDistCM: 0.05}
}

func hconn(y, x0, x1 float64, bits int) Connection {
	return Connection{
		Seg:  geom.Segment{A: geom.Point{X: x0, Y: y}, B: geom.Point{X: x1, Y: y}},
		Bits: bits,
	}
}

func vconn(x, y0, y1 float64, bits int) Connection {
	return Connection{
		Seg:  geom.Segment{A: geom.Point{X: x, Y: y0}, B: geom.Point{X: x, Y: y1}},
		Bits: bits,
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Capacity: 0, MaxAssignDistCM: 1},
		{Capacity: 4, MaxAssignDistCM: 0},
		{Capacity: 4, MinSpacingCM: -1, MaxAssignDistCM: 1},
		{Capacity: 4, MinSpacingCM: 2, MaxAssignDistCM: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := cfg().Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestPlaceRejectsBadConnections(t *testing.T) {
	if _, err := Place([]Connection{hconn(0, 0, 1, 0)}, cfg()); err == nil {
		t.Error("0-bit connection accepted")
	}
	if _, err := Place([]Connection{hconn(0, 0, 1, 33)}, cfg()); err == nil {
		t.Error("over-capacity connection accepted")
	}
}

func TestPlaceSharesNearbyConnections(t *testing.T) {
	// Three 10-bit connections within dis_u of each other share one WDM.
	conns := []Connection{
		hconn(0.00, 0, 1, 10),
		hconn(0.01, 0, 1, 10),
		hconn(0.02, 0, 1, 10),
	}
	pl, err := Place(conns, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.WDMs) != 1 {
		t.Fatalf("want 1 WDM, got %d", len(pl.WDMs))
	}
	if pl.WDMs[0].InitialLoad != 30 {
		t.Errorf("load %d, want 30", pl.WDMs[0].InitialLoad)
	}
}

func TestPlaceRespectsCapacity(t *testing.T) {
	// Paper Fig. 6: three 20-bit connections, capacity 32 → the sweep
	// opens a new WDM whenever capacity would overflow.
	conns := []Connection{
		hconn(0.00, 0, 1, 20),
		hconn(0.01, 0, 1, 20),
		hconn(0.02, 0, 1, 20),
	}
	pl, err := Place(conns, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.WDMs) != 3 {
		t.Fatalf("want 3 WDMs after sweep (20+20 > 32), got %d", len(pl.WDMs))
	}
	for i, w := range pl.WDMs {
		if w.InitialLoad > 32 {
			t.Errorf("WDM %d overloaded: %d", i, w.InitialLoad)
		}
	}
}

func TestPlaceRespectsDistance(t *testing.T) {
	// Two small connections far apart cannot share even with capacity room.
	conns := []Connection{
		hconn(0.0, 0, 1, 4),
		hconn(1.0, 0, 1, 4),
	}
	pl, err := Place(conns, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.WDMs) != 2 {
		t.Fatalf("distant connections share a WDM: %d", len(pl.WDMs))
	}
}

func TestPlaceSeparatesOrientations(t *testing.T) {
	conns := []Connection{
		hconn(0, 0, 1, 4),
		vconn(0, 0, 1, 4),
	}
	pl, err := Place(conns, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.WDMs) != 2 {
		t.Fatalf("want 2 WDMs (one per orientation), got %d", len(pl.WDMs))
	}
	if pl.WDMs[0].Horizontal == pl.WDMs[1].Horizontal {
		t.Error("orientations not separated")
	}
}

func TestLegalizeSpacing(t *testing.T) {
	c := cfg()
	c.MinSpacingCM = 0.01
	c.MaxAssignDistCM = 0.05
	// Connections so close that naive placement puts WDMs within dis_l —
	// each carries capacity-filling bits to force separate WDMs.
	conns := []Connection{
		hconn(0.000, 0, 1, 32),
		hconn(0.001, 0, 1, 32),
		hconn(0.002, 0, 1, 32),
	}
	pl, err := Place(conns, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.WDMs) != 3 {
		t.Fatalf("want 3 WDMs, got %d", len(pl.WDMs))
	}
	coords := []float64{pl.WDMs[0].CoordCM, pl.WDMs[1].CoordCM, pl.WDMs[2].CoordCM}
	for k := 1; k < 3; k++ {
		if coords[k]-coords[k-1] < c.MinSpacingCM-1e-12 {
			t.Errorf("WDMs %d,%d closer than dis_l: %v", k-1, k, coords)
		}
	}
}

func TestAssignConsolidates(t *testing.T) {
	// The paper's Fig. 6 example: three 20-bit connections on three WDMs
	// consolidate onto two (32 + 28).
	conns := []Connection{
		hconn(0.00, 0, 1, 20),
		hconn(0.01, 0, 1, 20),
		hconn(0.02, 0, 1, 20),
	}
	pl, as, st, err := Run(conns, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.WDMs) != 3 {
		t.Fatalf("placement WDMs = %d, want 3", len(pl.WDMs))
	}
	if st.FinalWDMs != 2 {
		t.Fatalf("final WDMs = %d, want 2 (Fig. 6 consolidation)", st.FinalWDMs)
	}
	// Shares must cover every connection's bits exactly.
	for i, c := range conns {
		total := 0
		for _, s := range as.Shares[i] {
			total += s.Bits
		}
		if total != c.Bits {
			t.Errorf("connection %d: shares cover %d of %d bits", i, total, c.Bits)
		}
	}
	if math.Abs(st.Reduction()-1.0/3.0) > 1e-9 {
		t.Errorf("reduction = %v, want 1/3", st.Reduction())
	}
}

func TestAssignRespectsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var conns []Connection
	for i := 0; i < 30; i++ {
		conns = append(conns, hconn(rng.Float64()*0.5, 0, 1, 1+rng.Intn(16)))
	}
	for i := 0; i < 20; i++ {
		conns = append(conns, vconn(rng.Float64()*0.5, 0, 1, 1+rng.Intn(16)))
	}
	pl, as, st, err := Run(conns, cfg())
	if err != nil {
		t.Fatal(err)
	}
	load := make(map[int]int)
	for i := range conns {
		for _, s := range as.Shares[i] {
			load[s.WDM] += s.Bits
			// Orientation must match.
			if pl.WDMs[s.WDM].Horizontal != conns[i].Horizontal() {
				t.Fatalf("connection %d assigned across orientations", i)
			}
			// Displacement must respect dis_u (unless it is the original).
			d := math.Abs(conns[i].coord() - pl.WDMs[s.WDM].CoordCM)
			if d > cfg().MaxAssignDistCM+1e-9 && s.WDM != pl.InitialAssign[i] {
				t.Fatalf("connection %d displaced %v > dis_u", i, d)
			}
		}
	}
	for w, l := range load {
		if l > cfg().Capacity {
			t.Errorf("WDM %d overloaded: %d", w, l)
		}
	}
	if st.FinalWDMs > st.InitialWDMs {
		t.Errorf("assignment increased WDM count: %d > %d", st.FinalWDMs, st.InitialWDMs)
	}
	if st.FinalWDMs != len(load) {
		t.Errorf("FinalWDMs %d != distinct used %d", st.FinalWDMs, len(load))
	}
}

func TestAssignNeverWorseThanPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		var conns []Connection
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				conns = append(conns, hconn(rng.Float64(), 0, 1+rng.Float64(), 1+rng.Intn(24)))
			} else {
				conns = append(conns, vconn(rng.Float64(), 0, 1+rng.Float64(), 1+rng.Intn(24)))
			}
		}
		_, _, st, err := Run(conns, cfg())
		if err != nil {
			t.Fatal(err)
		}
		if st.FinalWDMs > st.InitialWDMs {
			t.Errorf("trial %d: final %d > initial %d", trial, st.FinalWDMs, st.InitialWDMs)
		}
		if st.InitialWDMs > st.Connections {
			t.Errorf("trial %d: more WDMs than connections after sweep", trial)
		}
	}
}

func TestEmptyConnections(t *testing.T) {
	pl, as, st, err := Run(nil, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.WDMs) != 0 || as.Used() != 0 || st.Connections != 0 {
		t.Errorf("empty run: %+v %+v %+v", pl, as, st)
	}
	if st.Reduction() != 0 {
		t.Errorf("empty reduction = %v", st.Reduction())
	}
}

func TestAssignPlacementMismatch(t *testing.T) {
	conns := []Connection{hconn(0, 0, 1, 4)}
	if _, err := Assign(conns, Placement{}, cfg()); err == nil {
		t.Error("mismatched placement accepted")
	}
}
