// Package wdm implements OPERON's WDM stage (paper §4): the sweep placement
// that initialises waveguide locations under capacity and proximity bounds
// (§4.1) and the min-cost max-flow re-assignment that consolidates optical
// connections onto fewer WDMs (§4.2).
//
// Optical connections are classified by dominant orientation; horizontal
// and vertical WDMs are placed and assigned independently with the same
// procedure. Costs in the assignment network follow the paper: connection→
// WDM edges carry the (normalised) perpendicular displacement, WDM→sink
// edges carry usage costs, deliberately scaled to dominate displacement so
// the flow consolidates ("we normalize the costs of edges from VC to VW so
// that the WDMs' usages are emphasized").
package wdm

import (
	"context"
	"fmt"
	"math"
	"sort"

	"operon/internal/geom"
	"operon/internal/mcmf"
	"operon/internal/obs"
	"operon/internal/parallel"
)

// Connection is one point-to-point optical link of a routed hyper net.
type Connection struct {
	Seg geom.Segment
	// Bits is the number of wavelength channels the connection needs.
	Bits int
	// Net identifies the owning hyper net (for reporting only).
	Net int
}

// Horizontal reports the connection's dominant orientation.
func (c Connection) Horizontal() bool { return c.Seg.Horizontal() }

// coord returns the placement coordinate: the midpoint's y for horizontal
// connections, x for vertical ones.
func (c Connection) coord() float64 {
	if c.Horizontal() {
		return c.Seg.Midpoint().Y
	}
	return c.Seg.Midpoint().X
}

// Config carries the WDM parameters.
type Config struct {
	// Capacity is the channel capacity of one WDM waveguide.
	Capacity int
	// MinSpacingCM is dis_l: minimum spacing between adjacent WDMs
	// (crosstalk bound); placement legalises to it.
	MinSpacingCM float64
	// MaxAssignDistCM is dis_u: the maximum displacement allowed when
	// assigning a connection to a WDM.
	MaxAssignDistCM float64
	// Workers bounds the per-connection candidate-costing parallelism in
	// Assign (0 = NumCPU). Arc order, and therefore the flow result, does
	// not depend on the worker count.
	Workers int
	// Obs, when non-nil, receives wdm/place and wdm/assign spans, the
	// wdm.arcs counter, and the mcmf.augmentations counter of the
	// assignment flow. Nil disables all instrumentation.
	Obs *obs.Tracer
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Capacity <= 0:
		return fmt.Errorf("wdm: capacity %d must be positive", c.Capacity)
	case c.MinSpacingCM < 0 || c.MaxAssignDistCM <= 0:
		return fmt.Errorf("wdm: invalid distance bounds")
	case c.MinSpacingCM > c.MaxAssignDistCM:
		return fmt.Errorf("wdm: dis_l %v exceeds dis_u %v", c.MinSpacingCM, c.MaxAssignDistCM)
	}
	return nil
}

// WDM is one placed waveguide.
type WDM struct {
	Horizontal bool
	// CoordCM is the waveguide's fixed coordinate (y if horizontal).
	CoordCM float64
	// InitialLoad is the channel load after the sweep placement.
	InitialLoad int
}

// Placement is the §4.1 result.
type Placement struct {
	WDMs []WDM
	// InitialAssign maps each connection (by input index) to its WDM.
	InitialAssign []int
}

// Place runs the sweep placement: connections of each orientation are
// sorted by coordinate and greedily packed onto the current WDM while both
// the capacity and the dis_u proximity bound hold; otherwise a new WDM is
// opened at the connection's coordinate. Adjacent WDMs closer than dis_l
// are then legalised by shifting.
func Place(conns []Connection, cfg Config) (Placement, error) {
	if err := cfg.Validate(); err != nil {
		return Placement{}, err
	}
	for i, c := range conns {
		if c.Bits <= 0 {
			return Placement{}, fmt.Errorf("wdm: connection %d has %d bits", i, c.Bits)
		}
		if c.Bits > cfg.Capacity {
			return Placement{}, fmt.Errorf("wdm: connection %d needs %d bits > capacity %d",
				i, c.Bits, cfg.Capacity)
		}
	}
	sp := cfg.Obs.Span("wdm/place", obs.LaneFlow, obs.I("connections", len(conns)))
	pl := Placement{InitialAssign: make([]int, len(conns))}
	for _, horizontal := range []bool{true, false} {
		idxs := make([]int, 0, len(conns))
		for i, c := range conns {
			if c.Horizontal() == horizontal {
				idxs = append(idxs, i)
			}
		}
		sort.SliceStable(idxs, func(a, b int) bool {
			return conns[idxs[a]].coord() < conns[idxs[b]].coord()
		})
		cur := -1
		for _, ci := range idxs {
			c := conns[ci]
			if cur >= 0 &&
				pl.WDMs[cur].InitialLoad+c.Bits <= cfg.Capacity &&
				math.Abs(c.coord()-pl.WDMs[cur].CoordCM) <= cfg.MaxAssignDistCM {
				pl.WDMs[cur].InitialLoad += c.Bits
				pl.InitialAssign[ci] = cur
				continue
			}
			pl.WDMs = append(pl.WDMs, WDM{
				Horizontal:  horizontal,
				CoordCM:     c.coord(),
				InitialLoad: c.Bits,
			})
			cur = len(pl.WDMs) - 1
			pl.InitialAssign[ci] = cur
		}
		legalize(pl.WDMs, horizontal, cfg.MinSpacingCM)
	}
	sp.End(obs.I("wdms", len(pl.WDMs)))
	return pl, nil
}

// legalize shifts WDMs of one orientation so that adjacent coordinates are
// at least minSpacing apart, sweeping in coordinate order.
func legalize(wdms []WDM, horizontal bool, minSpacing float64) {
	if minSpacing <= 0 {
		return
	}
	idxs := make([]int, 0, len(wdms))
	for i, w := range wdms {
		if w.Horizontal == horizontal {
			idxs = append(idxs, i)
		}
	}
	sort.SliceStable(idxs, func(a, b int) bool {
		return wdms[idxs[a]].CoordCM < wdms[idxs[b]].CoordCM
	})
	for k := 1; k < len(idxs); k++ {
		prev, cur := idxs[k-1], idxs[k]
		if wdms[cur].CoordCM-wdms[prev].CoordCM < minSpacing {
			wdms[cur].CoordCM = wdms[prev].CoordCM + minSpacing
		}
	}
}

// Share is a portion of a connection routed on one WDM. The network model
// allows a connection's bits to split across waveguides (§4.2's edge
// capacities are bit counts).
type Share struct {
	WDM  int
	Bits int
}

// Assignment is the §4.2 result.
type Assignment struct {
	// Shares[i] lists the WDM shares of connection i.
	Shares [][]Share
	// UsedWDMs lists the WDM indices that carry flow after re-assignment.
	UsedWDMs []int
	// DisplacedBitCM is the total |displacement|·bits moved, a measure of
	// how much the routing result was disturbed.
	DisplacedBitCM float64
}

// Used returns the number of WDMs carrying at least one bit.
func (a Assignment) Used() int { return len(a.UsedWDMs) }

// Assign re-allocates the placed connections with a min-cost max-flow per
// orientation: source→connection edges (capacity = bits), connection→WDM
// edges within dis_u (cost = normalised displacement), WDM→sink edges
// (capacity = WDM capacity, cost = usage, growing with WDM order so the
// flow consolidates onto fewer waveguides). WDMs left idle are dropped.
// It is AssignContext with context.Background() — the flow always runs to
// completion.
func Assign(conns []Connection, pl Placement, cfg Config) (Assignment, error) {
	return AssignContext(context.Background(), conns, pl, cfg)
}

// AssignContext is Assign bounded by a context. Cancellation is observed by
// the candidate-costing worker pool and by the min-cost-flow augmentation
// loop; once the context is done, AssignContext abandons the re-assignment
// and returns ctx.Err(). Callers that must produce an answer anyway fall
// back to PlacementAssignment, which derives a feasible (capacity-
// respecting) assignment straight from the sweep placement. A run that
// completes before cancellation is bit-identical to Assign.
func AssignContext(ctx context.Context, conns []Connection, pl Placement, cfg Config) (Assignment, error) {
	if err := cfg.Validate(); err != nil {
		return Assignment{}, err
	}
	if len(pl.InitialAssign) != len(conns) {
		return Assignment{}, fmt.Errorf("wdm: placement covers %d of %d connections",
			len(pl.InitialAssign), len(conns))
	}
	out := Assignment{Shares: make([][]Share, len(conns))}
	used := make([]bool, len(pl.WDMs))
	cArcs := cfg.Obs.Counter("wdm.arcs")

	// Index scratch shared by the two orientation passes.
	connIdx := make([]int, 0, len(conns))
	wdmIdx := make([]int, 0, len(pl.WDMs))

	for _, horizontal := range []bool{true, false} {
		connIdx, wdmIdx = connIdx[:0], wdmIdx[:0]
		totalBits := 0
		for i, c := range conns {
			if c.Horizontal() == horizontal {
				connIdx = append(connIdx, i)
				totalBits += c.Bits
			}
		}
		for w, wd := range pl.WDMs {
			if wd.Horizontal == horizontal {
				wdmIdx = append(wdmIdx, w)
			}
		}
		if len(connIdx) == 0 {
			continue
		}
		orient := "vertical"
		if horizontal {
			orient = "horizontal"
		}
		spAssign := cfg.Obs.Span("wdm/assign", obs.LaneFlow,
			obs.S("orient", orient),
			obs.I("connections", len(connIdx)),
			obs.I("wdms", len(wdmIdx)))
		// Node layout: 0 source, 1..C connections, C+1..C+W WDMs, last sink.
		// Worst-case arc count: one per connection and WDM plus a full
		// connection×WDM bipartite layer.
		g := mcmf.NewWithEdgeHint(len(connIdx)+len(wdmIdx)+2,
			len(connIdx)+len(wdmIdx)+len(connIdx)*len(wdmIdx))
		src, snk := 0, len(connIdx)+len(wdmIdx)+1
		for k, ci := range connIdx {
			g.AddEdge(src, 1+k, conns[ci].Bits, 0)
		}
		// Costs are integers for exact flow arithmetic: displacement is
		// quantised to dispScale steps of dis_u; usage costs dominate —
		// one usage step exceeds any total displacement cost.
		const dispScale = 1000
		usageUnit := int64(totalBits)*dispScale + 1
		for q := range wdmIdx {
			g.AddEdge(1+len(connIdx)+q, snk, cfg.Capacity, usageUnit*int64(q+1))
		}
		// Candidate costing per connection (distance + quantised cost against
		// every WDM) is the O(C·W) part; connections are independent, so it
		// runs on the worker pool. Edges are then added sequentially in
		// (connection, WDM) order so the network — and the min-cost flow it
		// yields — is identical for every worker count.
		type arcCand struct {
			q      int // index into wdmIdx
			cost   int64
			distCM float64
		}
		// One flat candidate buffer with a per-connection stride (a
		// connection has at most one candidate per WDM): workers fill
		// disjoint rows, so the pass needs two allocations instead of one
		// per connection.
		stride := len(wdmIdx)
		candBuf := make([]arcCand, len(connIdx)*stride)
		candN := make([]int, len(connIdx))
		spCost := cfg.Obs.Span("wdm/cost-arcs", obs.LaneFlow, obs.S("orient", orient))
		err := parallel.ForEachContext(ctx, len(connIdx), cfg.Workers, func(k int) error {
			ci := connIdx[k]
			c := conns[ci]
			row := candBuf[k*stride : k*stride]
			for q, w := range wdmIdx {
				d := math.Abs(c.coord() - pl.WDMs[w].CoordCM)
				if d <= cfg.MaxAssignDistCM+geom.Eps || w == pl.InitialAssign[ci] {
					cost := int64(d / cfg.MaxAssignDistCM * dispScale)
					if cost > dispScale {
						cost = dispScale
					}
					row = append(row, arcCand{q: q, cost: cost, distCM: d})
				}
			}
			candN[k] = len(row)
			if len(row) == 0 {
				return fmt.Errorf("wdm: connection %d reaches no WDM", ci)
			}
			return nil
		})
		spCost.End()
		if err != nil {
			return Assignment{}, err
		}
		type connArc struct {
			id     int
			conn   int // index into conns
			wdm    int // index into pl.WDMs
			distCM float64
		}
		nArcs := 0
		for _, n := range candN {
			nArcs += n
		}
		arcs := make([]connArc, 0, nArcs)
		for k, ci := range connIdx {
			c := conns[ci]
			for _, a := range candBuf[k*stride : k*stride+candN[k]] {
				id := g.AddEdge(1+k, 1+len(connIdx)+a.q, c.Bits, a.cost)
				arcs = append(arcs, connArc{id: id, conn: ci, wdm: wdmIdx[a.q], distCM: a.distCM})
			}
		}
		cArcs.Add(int64(len(arcs)))
		g.Instrument(cfg.Obs)
		res, err := g.MaxFlowContext(ctx, src, snk)
		if err != nil {
			return Assignment{}, err
		}
		if res.Flow != totalBits {
			return Assignment{}, fmt.Errorf("wdm: assignment routed %d of %d bits",
				res.Flow, totalBits)
		}
		for _, a := range arcs {
			if f := g.Flow(a.id); f > 0 {
				out.Shares[a.conn] = append(out.Shares[a.conn], Share{WDM: a.wdm, Bits: f})
				out.DisplacedBitCM += a.distCM * float64(f)
				used[a.wdm] = true
			}
		}
		spAssign.End(obs.I("arcs", len(arcs)), obs.I("flow_bits", res.Flow))
	}
	for w := range pl.WDMs {
		if used[w] {
			out.UsedWDMs = append(out.UsedWDMs, w)
		}
	}
	return out, nil
}

// PlacementAssignment derives an Assignment directly from the sweep
// placement, without running the network-flow re-assignment: every
// connection keeps the WDM the placement packed it onto, whole. The result
// is feasible by construction — the sweep never exceeds a waveguide's
// capacity — but forgoes the §4.2 consolidation, so it uses as many WDMs as
// the placement opened. RunContext falls back to it when the context is
// cancelled mid-assignment (the graceful-degradation floor of the WDM
// stage; see DESIGN.md §8).
func PlacementAssignment(conns []Connection, pl Placement) Assignment {
	out := Assignment{Shares: make([][]Share, len(conns))}
	usedSet := map[int]bool{}
	for i, w := range pl.InitialAssign {
		out.Shares[i] = []Share{{WDM: w, Bits: conns[i].Bits}}
		usedSet[w] = true
	}
	for w := range pl.WDMs {
		if usedSet[w] {
			out.UsedWDMs = append(out.UsedWDMs, w)
		}
	}
	sort.Ints(out.UsedWDMs)
	return out
}

// Stats summarises the WDM pipeline for one design: the three bars of the
// paper's Fig. 8.
type Stats struct {
	// Connections counts the optical connections fed into the stage.
	Connections int
	// InitialWDMs counts the waveguides opened by the sweep placement.
	InitialWDMs int
	// FinalWDMs counts the waveguides still carrying flow after the
	// network-flow re-assignment (equals InitialWDMs when Degraded).
	FinalWDMs int
	// Degraded reports that the context was cancelled mid-assignment and the
	// result fell back to the placement-derived assignment: feasible, but
	// without the §4.2 consolidation.
	Degraded bool
}

// Reduction returns the fractional WDM saving of the assignment over the
// placement (the paper reports 8.9% on average).
func (s Stats) Reduction() float64 {
	if s.InitialWDMs == 0 {
		return 0
	}
	return 1 - float64(s.FinalWDMs)/float64(s.InitialWDMs)
}

// Run executes placement followed by assignment and returns everything.
// It is RunContext with context.Background() — never degraded.
func Run(conns []Connection, cfg Config) (Placement, Assignment, Stats, error) {
	return RunContext(context.Background(), conns, cfg)
}

// RunContext executes placement followed by assignment under ctx. The sweep
// placement always completes (it is the feasibility floor of the stage);
// when the context is cancelled during the network-flow re-assignment, the
// result degrades to PlacementAssignment and Stats.Degraded is set instead
// of returning an error. A run that completes before cancellation is
// bit-identical to Run.
func RunContext(ctx context.Context, conns []Connection, cfg Config) (Placement, Assignment, Stats, error) {
	pl, err := Place(conns, cfg)
	if err != nil {
		return Placement{}, Assignment{}, Stats{}, err
	}
	st := Stats{Connections: len(conns), InitialWDMs: len(pl.WDMs)}
	as, err := AssignContext(ctx, conns, pl, cfg)
	switch {
	case err == nil:
	case ctx.Err() != nil:
		// Cancelled mid-assignment: keep the placement's packing.
		as = PlacementAssignment(conns, pl)
		st.Degraded = true
	default:
		return Placement{}, Assignment{}, Stats{}, err
	}
	st.FinalWDMs = as.Used()
	return pl, as, st, nil
}
