package selection

import (
	"context"
	"math"
	"time"

	"operon/internal/geom"
	"operon/internal/obs"
	"operon/internal/parallel"
)

// LROptions tunes the Lagrangian-relaxation solver of §3.4.
type LROptions struct {
	// Ctx, when non-nil, bounds the solve: it is polled at each iteration
	// boundary (never inside the parallel pricing loop, which keeps partial
	// iterations — and with them nondeterminism — impossible). On
	// cancellation the iteration stops early, LRResult.Stopped is set, and
	// the current choice is still evaluated and repaired to legality, so
	// callers always receive a feasible selection. Nil means
	// context.Background().
	Ctx context.Context
	// MaxIters bounds the multiplier-update iterations; the paper stops at
	// 10. Defaults to 10 when zero.
	MaxIters int
	// ConvergeRatio stops the iteration when both the power decrease and
	// the violation decrease fall below this relative ratio. Defaults to
	// 0.01 when zero.
	ConvergeRatio float64
	// StepScale scales the sub-gradient step. Defaults to 1 when zero.
	StepScale float64
	// Workers bounds the per-net parallelism of the pricing and
	// multiplier-update steps (0 = NumCPU). Given fixed multipliers and the
	// previous iteration's selection, nets are independent, so the result
	// is bit-identical for every worker count.
	Workers int
	// Obs, when non-nil, receives a selection/lr span and one lr/iterate
	// event per iteration carrying power, violations, the dual lower bound,
	// the multiplier norm, and the sub-gradient step size.
	Obs *obs.Tracer
	// WarmStart, when its length equals the instance's total path count,
	// replaces the default multiplier initialisation with the given vector
	// (typically a previous solve's final multipliers remapped via
	// RemapLambda). A warm-started solve follows a different dual trajectory
	// than a cold one, so results are not bit-identical to a cold solve;
	// callers that promise bit-identity must leave it nil.
	WarmStart []float64
	// ReturnLambda requests the final multiplier vector in LRResult.Lambda
	// (an extra numPaths-float allocation, so it is opt-in).
	ReturnLambda bool
}

// LRResult is the outcome of SolveLR.
type LRResult struct {
	Selection
	// Iters counts the multiplier-update iterations actually run.
	Iters int
	// Elapsed is the wall-clock time of the solve, repair included.
	Elapsed time.Duration
	// Stopped reports that LROptions.Ctx was cancelled before the iteration
	// converged or reached MaxIters; the Selection is the repaired best
	// effort at that point (always feasible).
	Stopped bool
	// History records (power, violations) after each iteration.
	History []LRIterate
	// Lambda is the final multiplier vector, populated only when
	// LROptions.ReturnLambda is set; it is the warm-start seed for a
	// subsequent solve on an edited instance (see RemapLambda).
	Lambda []float64
}

// LRIterate is one iteration's snapshot.
type LRIterate struct {
	// PowerMW is the total power of the iteration's (unrepaired) selection.
	PowerMW float64
	// Violations counts detection-constraint violations in that selection.
	Violations int
	// LowerBoundMW is the linearised Lagrangian dual bound at this
	// iteration's multipliers: the sum of the per-net best pricing weights
	// minus MaxLossDB times the multiplier mass. It is a diagnostic on dual
	// progress — under the Eq. (5) linearisation it lower-bounds the
	// relaxed objective, not the repaired integer optimum.
	LowerBoundMW float64
	// MultiplierNorm is the L2 norm of the full multiplier vector λ at
	// pricing time.
	MultiplierNorm float64
	// Step is the sub-gradient step size used by this iteration's update.
	Step float64
}

// SolveLR runs Algorithm 1 of the paper: Lagrangian multipliers λ_p per
// optical path are initialised proportionally to each net's electrical
// power p_e; every iteration selects, per hyper net, the candidate with the
// best weight — its own power plus λ-weighted propagation/splitting loss
// plus the linearised crossing terms of Eq. (5) computed against the
// previous iteration's selection — then updates the multipliers by a
// sub-gradient step on the detection violations. The final selection is
// repaired to legality (violating nets drop to electrical wires).
func SolveLR(inst *Instance, opt LROptions) (LRResult, error) {
	start := time.Now()
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	maxIters := opt.MaxIters
	if maxIters == 0 {
		maxIters = 10
	}
	ratio := opt.ConvergeRatio
	if ratio == 0 {
		ratio = 0.01
	}
	stepScale := opt.StepScale
	if stepScale == 0 {
		stepScale = 1
	}

	// Multipliers, one per (net, cand, path); initialised proportional to
	// the net's electrical power (Algorithm 1, line 1) normalised by the
	// loss budget so that λ·loss is commensurate with power. The vector is
	// flat — one allocation — addressed through the instance's precomputed
	// (net, cand) path offsets.
	lambda := make([]float64, inst.numPaths)
	if len(opt.WarmStart) == inst.numPaths {
		copy(lambda, opt.WarmStart)
	} else {
		for i, n := range inst.Nets {
			ei := n.ElectricalIndex()
			pe := n.Cands[ei].PowerMW
			for j, c := range n.Cands {
				off := inst.pathOff[i][j]
				for p := range c.Paths {
					lambda[off+p] = 0.1 * pe / inst.Lib.MaxLossDB
				}
			}
		}
	}

	// Previous selection a'_ij for the Eq. (5) linearisation; start from
	// the independent greedy choice.
	prev := make([]int, len(inst.Nets))
	for i, n := range inst.Nets {
		best, bestP := 0, n.Cands[0].PowerMW
		for j, c := range n.Cands {
			if c.PowerMW < bestP {
				best, bestP = j, c.PowerMW
			}
		}
		prev[i] = best
	}

	sp := opt.Obs.Span("selection/lr", obs.LaneFlow, obs.I("nets", len(inst.Nets)))
	res := LRResult{}
	prevPower, prevViol := -1.0, -1
	choice := append([]int(nil), prev...)

	// Per-net partial sums for the dual diagnostics, written per index in
	// the parallel pricing loop and reduced sequentially in net order so the
	// reported bound and norm are bit-identical for every worker count.
	bestWArr := make([]float64, len(inst.Nets))
	lamSum := make([]float64, len(inst.Nets))
	lamSq := make([]float64, len(inst.Nets))

	for iter := 0; iter < maxIters; iter++ {
		// Cancellation is observed only here, between iterations: a finished
		// iteration is never partially applied, so a run that completes
		// before its deadline is bit-identical to an unbounded one.
		if ctx.Err() != nil {
			res.Stopped = true
			break
		}
		res.Iters = iter + 1
		// Pricing step: per net, the candidate with the best weight. Nets
		// are independent given the fixed multipliers and the previous
		// iteration's selection, so they are priced in parallel; each
		// worker only writes choice[i] and its own diagnostic slots.
		_ = parallel.ForEach(len(inst.Nets), opt.Workers, func(i int) error {
			n := inst.Nets[i]
			inter := inst.InteractingNets(i)
			var ls, lq float64
			for j, c := range n.Cands {
				off := inst.pathOff[i][j]
				for p := range c.Paths {
					l := lambda[off+p]
					ls += l
					lq += l * l
				}
			}
			lamSum[i], lamSq[i] = ls, lq
			bestJ, bestW := -1, 0.0
			for j, c := range n.Cands {
				w := c.PowerMW
				off := inst.pathOff[i][j]
				// Own paths: λ_p × (propagation + splitting + crossing from
				// the previous selection).
				for p, path := range c.Paths {
					loss := path.FixedLossDB
					for _, m := range inter {
						loss += inst.CrossLossDB(i, j, m, prev[m])[p]
					}
					w += lambda[off+p] * loss
				}
				// Symmetric linearised term: crossing loss this candidate
				// inflicts on the previously selected candidates' paths.
				for _, m := range inter {
					mj := prev[m]
					lx := inst.CrossLossDB(m, mj, i, j)
					moff := inst.pathOff[m][mj]
					for p := range lx {
						w += lambda[moff+p] * lx[p]
					}
				}
				if bestJ < 0 || w < bestW-geom.Eps {
					bestJ, bestW = j, w
				}
			}
			choice[i] = bestJ
			bestWArr[i] = bestW
			return nil
		})
		var sumBestW, sumLam, sumLamSq float64
		for i := range inst.Nets {
			sumBestW += bestWArr[i]
			sumLam += lamSum[i]
			sumLamSq += lamSq[i]
		}
		lowerBound := sumBestW - inst.Lib.MaxLossDB*sumLam
		multNorm := math.Sqrt(sumLamSq)

		// Violation measurement and sub-gradient multiplier update.
		sel, err := inst.Evaluate(choice)
		if err != nil {
			return LRResult{}, err
		}
		step := stepScale / float64(iter+1)
		// The sub-gradient update is likewise independent per net: worker i
		// writes only lambda[i] and reads the now-fixed choice vector.
		_ = parallel.ForEach(len(inst.Nets), opt.Workers, func(i int) error {
			n := inst.Nets[i]
			inter := inst.InteractingNets(i)
			for j, c := range n.Cands {
				selected := choice[i] == j
				off := inst.pathOff[i][j]
				for p, path := range c.Paths {
					var g float64
					if selected {
						loss := path.FixedLossDB
						for _, m := range inter {
							loss += inst.CrossLossDB(i, j, m, choice[m])[p]
						}
						g = loss - inst.Lib.MaxLossDB
					} else {
						// Constraint (3c) reads 0 <= l_m when a_ij = 0.
						g = -inst.Lib.MaxLossDB
					}
					lambda[off+p] += step * g * 0.01 * n.Cands[n.ElectricalIndex()].PowerMW /
						inst.Lib.MaxLossDB
					if lambda[off+p] < 0 {
						lambda[off+p] = 0
					}
				}
			}
			return nil
		})

		res.History = append(res.History, LRIterate{
			PowerMW:        sel.PowerMW,
			Violations:     sel.Violations,
			LowerBoundMW:   lowerBound,
			MultiplierNorm: multNorm,
			Step:           step,
		})
		if opt.Obs != nil {
			opt.Obs.Event("lr/iterate", obs.LaneFlow,
				obs.I("iter", iter+1),
				obs.F("power_mw", sel.PowerMW),
				obs.I("violations", sel.Violations),
				obs.F("lower_bound_mw", lowerBound),
				obs.F("multiplier_norm", multNorm),
				obs.F("step", step))
		}
		copy(prev, choice)

		// Convergence: both power and violations stopped improving.
		if prevPower >= 0 {
			powerImproves := sel.PowerMW < prevPower*(1-ratio)
			violImproves := sel.Violations < prevViol
			if !powerImproves && !violImproves && sel.Violations == 0 {
				break
			}
			if !powerImproves && !violImproves && iter >= 2 {
				break
			}
		}
		prevPower, prevViol = sel.PowerMW, sel.Violations
	}

	sel, err := inst.Evaluate(choice)
	if err != nil {
		return LRResult{}, err
	}
	sel, err = inst.Repair(sel)
	if err != nil {
		return LRResult{}, err
	}
	res.Selection = sel
	if opt.ReturnLambda {
		res.Lambda = lambda
	}
	res.Elapsed = time.Since(start)
	sp.End(obs.I("iters", res.Iters), obs.I("violations", sel.Violations))
	return res, nil
}
