package selection

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"operon/internal/codesign"
	"operon/internal/geom"
	"operon/internal/ilp"
	"operon/internal/optics"
	"operon/internal/power"
	"operon/internal/steiner"
)

// twoCandNet builds a net with one optical candidate (a single horizontal
// waveguide at height y from x0 to x1, with the given power and fixed loss)
// and one electrical fallback.
func twoCandNet(y, x0, x1, optPower, fixedLoss, elecPower float64) Net {
	seg := geom.Segment{A: geom.Point{X: x0, Y: y}, B: geom.Point{X: x1, Y: y}}
	opt := codesign.Candidate{
		Labels:  []codesign.Label{codesign.Optical},
		PowerMW: optPower,
		Paths: []codesign.Path{{
			Segs:        []geom.Segment{seg},
			FixedLossDB: fixedLoss,
		}},
		OpticalSegs:    []geom.Segment{seg},
		NumMod:         1,
		NumDet:         1,
		MaxFixedLossDB: fixedLoss,
	}
	elec := codesign.Candidate{
		Labels:        []codesign.Label{codesign.Electrical},
		PowerMW:       elecPower,
		AllElectrical: true,
	}
	return Net{Bits: 16, Cands: []codesign.Candidate{opt, elec}}
}

// crossingNet builds a net whose waveguide is vertical, crossing horizontal
// nets in its x range.
func crossingNet(x, y0, y1, optPower, fixedLoss, elecPower float64) Net {
	seg := geom.Segment{A: geom.Point{X: x, Y: y0}, B: geom.Point{X: x, Y: y1}}
	n := twoCandNet(0, 0, 0, optPower, fixedLoss, elecPower)
	n.Cands[0].Paths[0].Segs = []geom.Segment{seg}
	n.Cands[0].OpticalSegs = []geom.Segment{seg}
	return n
}

func TestNewInstanceValidation(t *testing.T) {
	lib := optics.DefaultLibrary()
	if _, err := NewInstance(nil, lib); err == nil {
		t.Error("empty instance accepted")
	}
	noFallback := Net{Bits: 1, Cands: []codesign.Candidate{{PowerMW: 1}}}
	if _, err := NewInstance([]Net{noFallback}, lib); err == nil {
		t.Error("net without electrical fallback accepted")
	}
	bad := lib
	bad.MaxLossDB = -1
	if _, err := NewInstance([]Net{twoCandNet(0, 0, 1, 1, 1, 2)}, bad); err == nil {
		t.Error("invalid library accepted")
	}
}

func TestEvaluatePowerAndLegal(t *testing.T) {
	lib := optics.DefaultLibrary()
	nets := []Net{
		twoCandNet(0, 0, 2, 1.0, 3.0, 4.0),
		twoCandNet(1, 0, 2, 1.5, 3.0, 5.0),
	}
	inst, err := NewInstance(nets, lib)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := inst.Evaluate([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel.PowerMW-2.5) > 1e-12 {
		t.Errorf("power %v, want 2.5", sel.PowerMW)
	}
	if sel.Violations != 0 {
		t.Errorf("parallel guides should not violate: %+v", sel)
	}
	sel, err = inst.Evaluate([]int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel.PowerMW-9) > 1e-12 {
		t.Errorf("electrical power %v, want 9", sel.PowerMW)
	}
}

func TestEvaluateRejectsBadChoice(t *testing.T) {
	lib := optics.DefaultLibrary()
	inst, _ := NewInstance([]Net{twoCandNet(0, 0, 1, 1, 1, 2)}, lib)
	if _, err := inst.Evaluate([]int{5}); err == nil {
		t.Error("out-of-range choice accepted")
	}
	if _, err := inst.Evaluate([]int{0, 0}); err == nil {
		t.Error("wrong-length choice accepted")
	}
}

func TestCrossingLossDetected(t *testing.T) {
	lib := optics.DefaultLibrary()
	// Horizontal net near the budget; a vertical net crosses it.
	nets := []Net{
		twoCandNet(0.5, 0, 2, 1.0, lib.MaxLossDB-0.1, 4.0),
		crossingNet(1.0, 0, 1, 1.0, 1.0, 4.0),
	}
	inst, err := NewInstance(nets, lib)
	if err != nil {
		t.Fatal(err)
	}
	lx := inst.CrossLossDB(0, 0, 1, 0)
	if math.Abs(lx[0]-lib.BetaDBPerCrossing) > 1e-12 {
		t.Fatalf("cross loss %v, want β=%v", lx[0], lib.BetaDBPerCrossing)
	}
	sel, err := inst.Evaluate([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Violations != 1 {
		t.Fatalf("want 1 violation from the crossing, got %d", sel.Violations)
	}
	// Selecting the vertical net's electrical candidate removes the
	// violation.
	sel, err = inst.Evaluate([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Violations != 0 {
		t.Fatalf("violation persists without the crossing: %+v", sel)
	}
}

func TestRepairProducesLegalSelection(t *testing.T) {
	lib := optics.DefaultLibrary()
	nets := []Net{
		twoCandNet(0.5, 0, 2, 1.0, lib.MaxLossDB-0.1, 4.0),
		crossingNet(1.0, 0, 1, 1.0, lib.MaxLossDB-0.1, 4.0),
	}
	inst, _ := NewInstance(nets, lib)
	sel, _ := inst.Evaluate([]int{0, 0})
	if sel.Violations == 0 {
		t.Fatal("test setup: expected initial violations")
	}
	repaired, err := inst.Repair(sel)
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Violations != 0 {
		t.Fatalf("repair left %d violations", repaired.Violations)
	}
	// Exactly one of the two nets should have been demoted.
	demoted := 0
	for i, j := range repaired.Choice {
		if j == nets[i].ElectricalIndex() {
			demoted++
		}
	}
	if demoted != 1 {
		t.Errorf("%d nets demoted, want 1", demoted)
	}
}

func TestInteractingNetsBBoxPrune(t *testing.T) {
	lib := optics.DefaultLibrary()
	nets := []Net{
		twoCandNet(0, 0, 1, 1, 1, 2),
		crossingNet(0.5, -0.5, 0.5, 1, 1, 2), // crosses net 0's span
		twoCandNet(50, 50, 51, 1, 1, 2),      // far away
	}
	inst, _ := NewInstance(nets, lib)
	inter := inst.InteractingNets(0)
	if len(inter) != 1 || inter[0] != 1 {
		t.Fatalf("InteractingNets(0) = %v, want [1]", inter)
	}
	if got := inst.InteractingNets(2); len(got) != 0 {
		t.Fatalf("InteractingNets(2) = %v, want empty", got)
	}
}

// bruteForceBest enumerates all choice vectors and returns the minimum
// legal power.
func bruteForceBest(t *testing.T, inst *Instance) float64 {
	t.Helper()
	best := math.Inf(1)
	var rec func(i int, choice []int)
	rec = func(i int, choice []int) {
		if i == len(inst.Nets) {
			sel, err := inst.Evaluate(choice)
			if err != nil {
				t.Fatal(err)
			}
			if sel.Violations == 0 && sel.PowerMW < best {
				best = sel.PowerMW
			}
			return
		}
		for j := range inst.Nets[i].Cands {
			choice[i] = j
			rec(i+1, choice)
		}
	}
	rec(0, make([]int, len(inst.Nets)))
	return best
}

func TestILPMatchesBruteForce(t *testing.T) {
	lib := optics.DefaultLibrary()
	// Three nets; the middle one crosses both others; budgets are tight so
	// at most one crossing is tolerable per path.
	nets := []Net{
		twoCandNet(0.5, 0, 2, 1.0, lib.MaxLossDB-0.6, 3.0),
		twoCandNet(1.5, 0, 2, 1.2, lib.MaxLossDB-0.6, 3.5),
		crossingNet(1.0, 0, 2, 0.8, lib.MaxLossDB-0.6, 2.5),
	}
	inst, err := NewInstance(nets, lib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveILP(inst, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("ILP selection illegal: %+v", res.Selection)
	}
	want := bruteForceBest(t, inst)
	if math.Abs(res.PowerMW-want) > 1e-6 {
		t.Errorf("ILP power %v, want brute-force %v", res.PowerMW, want)
	}
}

func TestILPRandomInstancesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lib := optics.DefaultLibrary()
	for trial := 0; trial < 8; trial++ {
		var nets []Net
		n := 3 + rng.Intn(2)
		for i := 0; i < n; i++ {
			loss := lib.MaxLossDB - 1.5 + rng.Float64()*1.4
			if i%2 == 0 {
				nets = append(nets, twoCandNet(float64(i)*0.4, 0, 2,
					0.5+rng.Float64(), loss, 2+rng.Float64()*2))
			} else {
				nets = append(nets, crossingNet(0.5+float64(i)*0.3, -1, 2,
					0.5+rng.Float64(), loss, 2+rng.Float64()*2))
			}
		}
		inst, err := NewInstance(nets, lib)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveILP(inst, ILPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceBest(t, inst)
		if res.Violations != 0 {
			t.Fatalf("trial %d: illegal ILP selection", trial)
		}
		if res.PowerMW > want+1e-6 {
			t.Errorf("trial %d: ILP power %v worse than brute force %v",
				trial, res.PowerMW, want)
		}
	}
}

func TestLRLegalAndReasonable(t *testing.T) {
	lib := optics.DefaultLibrary()
	nets := []Net{
		twoCandNet(0.5, 0, 2, 1.0, lib.MaxLossDB-0.6, 3.0),
		twoCandNet(1.5, 0, 2, 1.2, lib.MaxLossDB-0.6, 3.5),
		crossingNet(1.0, 0, 2, 0.8, lib.MaxLossDB-0.6, 2.5),
	}
	inst, err := NewInstance(nets, lib)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := SolveLR(inst, LROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lr.Violations != 0 {
		t.Fatalf("LR selection illegal: %+v", lr.Selection)
	}
	if lr.Iters < 1 || lr.Iters > 10 {
		t.Errorf("LR iters = %d, want 1..10", lr.Iters)
	}
	allE, _ := inst.AllElectrical()
	if lr.PowerMW > allE.PowerMW+1e-9 {
		t.Errorf("LR power %v worse than all-electrical %v", lr.PowerMW, allE.PowerMW)
	}
	want := bruteForceBest(t, inst)
	// LR is a heuristic: allow slack but it must be in the ballpark.
	if lr.PowerMW > want*1.5+1e-9 {
		t.Errorf("LR power %v far from optimum %v", lr.PowerMW, want)
	}
}

func TestGreedyIndependentLegal(t *testing.T) {
	lib := optics.DefaultLibrary()
	nets := []Net{
		twoCandNet(0.5, 0, 2, 1.0, lib.MaxLossDB-0.1, 3.0),
		crossingNet(1.0, 0, 1, 1.0, lib.MaxLossDB-0.1, 3.0),
	}
	inst, _ := NewInstance(nets, lib)
	sel, err := inst.GreedyIndependent()
	if err != nil {
		t.Fatal(err)
	}
	if sel.Violations != 0 {
		t.Fatalf("greedy selection illegal: %+v", sel)
	}
}

func TestILPTimeoutFallsBackLegally(t *testing.T) {
	lib := optics.DefaultLibrary()
	rng := rand.New(rand.NewSource(9))
	var nets []Net
	for i := 0; i < 12; i++ {
		y := rng.Float64() * 2
		nets = append(nets, twoCandNet(y, 0, 2, 0.5+rng.Float64(),
			lib.MaxLossDB-1+rng.Float64(), 2+rng.Float64()))
		nets = append(nets, crossingNet(rng.Float64()*2, 0, 2, 0.5+rng.Float64(),
			lib.MaxLossDB-1+rng.Float64(), 2+rng.Float64()))
	}
	inst, err := NewInstance(nets, lib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveILP(inst, ILPOptions{TimeLimit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("timed-out ILP returned illegal selection")
	}
	if len(res.Choice) != len(nets) {
		t.Fatalf("selection incomplete")
	}
}

func TestEndToEndWithCodesignCandidates(t *testing.T) {
	// Full integration: generate candidates with the real DP and select.
	lib := optics.DefaultLibrary()
	elec := power.DefaultElectricalModel()
	rng := rand.New(rand.NewSource(31))
	var nets []Net
	for i := 0; i < 6; i++ {
		var terms []geom.Point
		for k := 0; k < 3; k++ {
			terms = append(terms, geom.Point{X: rng.Float64() * 3, Y: rng.Float64() * 3})
		}
		tr := steiner.BI1S(terms, steiner.Euclidean, steiner.BI1SConfig{})
		cands, err := codesign.Generate(codesign.Input{
			Tree: tr, Bits: 16, Lib: lib, Elec: elec,
		})
		if err != nil {
			t.Fatal(err)
		}
		nets = append(nets, Net{Bits: 16, Cands: cands})
	}
	inst, err := NewInstance(nets, lib)
	if err != nil {
		t.Fatal(err)
	}
	ires, err := SolveILP(inst, ILPOptions{TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	lres, err := SolveLR(inst, LROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ires.Violations != 0 || lres.Violations != 0 {
		t.Fatal("illegal selections")
	}
	allE, _ := inst.AllElectrical()
	if ires.PowerMW > allE.PowerMW+1e-9 {
		t.Errorf("ILP %v worse than all-electrical %v", ires.PowerMW, allE.PowerMW)
	}
	if ires.Status == ilp.Optimal && lres.PowerMW < ires.PowerMW-1e-6 {
		t.Errorf("LR %v beats optimal ILP %v", lres.PowerMW, ires.PowerMW)
	}
}
