package selection

import (
	"context"
	"fmt"
	"math"
	"time"

	"operon/internal/geom"
	"operon/internal/ilp"
	"operon/internal/lp"
	"operon/internal/obs"
	"operon/internal/parallel"
)

// ILPOptions tunes the exact solver.
type ILPOptions struct {
	// Ctx, when non-nil, bounds the solve: the branch-and-bound node loop
	// and the LP relaxations underneath observe it, and on cancellation or
	// deadline SolveILP returns the best incumbent (or a repaired greedy
	// selection) with TimedOut set instead of erroring. Nil means
	// context.Background().
	Ctx context.Context
	// TimeLimit bounds the branch-and-bound wall clock; zero = unlimited.
	// The paper caps its runs at 3000 s and reports ">3000" on timeout,
	// falling back to the Lagrangian relaxation.
	//
	// Deprecated: TimeLimit is a thin wrapper over the context deadline
	// (the earlier of the two wins); pass a context with a deadline via Ctx
	// instead.
	TimeLimit time.Duration
	// MaxNodes bounds branch-and-bound nodes; zero = library default.
	MaxNodes int
	// MaxTableauBytes caps the LP tableau memory (zero = library default).
	MaxTableauBytes int64
	// Workers sets the parallelism of the branch-and-bound search (zero =
	// one per CPU, 1 = serial). The search is deterministic at any value —
	// see package ilp for the contract.
	Workers int
	// Arena, when non-nil, supplies per-worker solver scratch reused across
	// solves; it must not be shared by concurrent SolveILP calls.
	Arena *parallel.Arena
	// Obs, when non-nil, receives a selection/ilp span plus the branch-and-
	// bound node events and LP counters of the underlying solvers.
	Obs *obs.Tracer
}

// ILPResult is the outcome of SolveILP.
type ILPResult struct {
	Selection
	// Status is the branch-and-bound outcome (Optimal, Feasible, Limit).
	Status ilp.Status
	// TimedOut reports that a budget (context deadline, deprecated
	// TimeLimit, or MaxNodes) stopped the search before optimality.
	TimedOut bool
	// Elapsed is the wall-clock time of the solve, repair included.
	Elapsed time.Duration
	// Nodes counts branch-and-bound nodes explored.
	Nodes int
	// LPSolves counts LP relaxations solved across the branch-and-bound
	// tree (warm-started after the root).
	LPSolves int
	// LPTime is the wall clock spent inside the LP engine.
	LPTime time.Duration
	// NumVars and NumRows describe the built programme (after the
	// bounding-box speed-up of §3.3).
	NumVars, NumRows int
}

// SolveILP builds the mathematical programme of Formula (3) — one binary
// per candidate, an assignment equality per net, a detection constraint per
// optical path — with the quadratic crossing terms linearised exactly
// (y >= a_ij + a_mn − 1), and solves it by branch and bound. Crossing
// variables between hyper nets with non-overlapping bounding boxes are
// omitted, the paper's §3.3 speed-up.
//
// On timeout without a provably optimal solution, the best incumbent (or a
// repaired greedy selection when none exists) is returned with TimedOut set.
func SolveILP(inst *Instance, opt ILPOptions) (ILPResult, error) {
	start := time.Now()
	prob, varOf := buildProgram(inst)
	res := ILPResult{NumVars: prob.LP.NumVars, NumRows: len(prob.LP.Rows)}

	sp := opt.Obs.Span("selection/ilp", obs.LaneFlow,
		obs.I("vars", res.NumVars), obs.I("rows", res.NumRows))
	ir, err := ilp.Solve(prob, ilp.Options{
		Ctx:             opt.Ctx,
		TimeLimit:       opt.TimeLimit,
		MaxNodes:        opt.MaxNodes,
		MaxTableauBytes: opt.MaxTableauBytes,
		Workers:         opt.Workers,
		Arena:           opt.Arena,
		Obs:             opt.Obs,
	})
	sp.End(obs.I("nodes", ir.Nodes), obs.S("status", ir.Status.String()))
	if err != nil {
		return ILPResult{}, err
	}
	res.Status = ir.Status
	res.TimedOut = ir.TimedOut
	res.Nodes = ir.Nodes
	res.LPSolves = ir.LPSolves
	res.LPTime = ir.LPTime

	switch ir.Status {
	case ilp.Optimal, ilp.Feasible:
		choice := make([]int, len(inst.Nets))
		for i, n := range inst.Nets {
			best, bestV := n.ElectricalIndex(), 0.0
			for j := range n.Cands {
				if v := ir.X[varOf[i][j]]; v > bestV {
					best, bestV = j, v
				}
			}
			choice[i] = best
		}
		sel, err := inst.Evaluate(choice)
		if err != nil {
			return ILPResult{}, err
		}
		sel, err = inst.Repair(sel)
		if err != nil {
			return ILPResult{}, err
		}
		res.Selection = sel
	case ilp.Infeasible:
		return ILPResult{}, fmt.Errorf("selection: ILP infeasible despite electrical fallbacks")
	default:
		// No incumbent before the limit: fall back to a repaired greedy
		// selection so callers always get a legal design.
		sel, err := inst.GreedyIndependent()
		if err != nil {
			return ILPResult{}, err
		}
		res.Selection = sel
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// buildProgram constructs the linearised 0-1 programme of Formula (3) for
// the instance, returning it with the (net, candidate) → variable map.
func buildProgram(inst *Instance) (ilp.Problem, [][]int) {
	// Variable layout: one binary per (net, candidate), then one continuous
	// y per interacting candidate pair with non-zero crossing loss.
	varOf := make([][]int, len(inst.Nets))
	nv := 0
	for i, n := range inst.Nets {
		varOf[i] = make([]int, len(n.Cands))
		for j := range n.Cands {
			varOf[i][j] = nv
			nv++
		}
	}
	var obj []float64
	for _, n := range inst.Nets {
		for _, c := range n.Cands {
			obj = append(obj, c.PowerMW)
		}
	}
	var rows []lp.Row
	binary := make([]int, 0, nv)
	for i, n := range inst.Nets {
		row := lp.Row{Sense: lp.EQ, RHS: 1}
		for j := range n.Cands {
			row.Terms = append(row.Terms, lp.Term{Var: varOf[i][j], Coeff: 1})
			binary = append(binary, varOf[i][j])
		}
		rows = append(rows, row)
	}

	// Pair variables y_{ij,mn}, created on demand.
	pairVar := map[pairKey]int{}
	getPair := func(i, j, m, n int) int {
		// Canonical orientation: y is shared by both directions of the pair.
		k := pairKey{i, j, m, n}
		if i > m {
			k = pairKey{m, n, i, j}
		}
		if v, ok := pairVar[k]; ok {
			return v
		}
		v := len(obj)
		obj = append(obj, 0)
		pairVar[k] = v
		// y >= a_ij + a_mn − 1  ⇔  y − a_ij − a_mn >= −1.
		rows = append(rows, lp.Row{
			Terms: []lp.Term{
				{Var: v, Coeff: 1},
				{Var: varOf[k.i][k.j], Coeff: -1},
				{Var: varOf[k.m][k.n], Coeff: -1},
			},
			Sense: lp.GE, RHS: -1,
		})
		return v
	}

	// Detection constraint per optical path of every candidate.
	for i, n := range inst.Nets {
		inter := inst.InteractingNets(i)
		for j, c := range n.Cands {
			for p, path := range c.Paths {
				row := lp.Row{Sense: lp.LE, RHS: inst.Lib.MaxLossDB}
				row.Terms = append(row.Terms, lp.Term{
					Var: varOf[i][j], Coeff: path.FixedLossDB,
				})
				for _, m := range inter {
					for nn := range inst.Nets[m].Cands {
						lx := inst.CrossLossDB(i, j, m, nn)[p]
						if lx <= geom.Eps {
							continue
						}
						row.Terms = append(row.Terms, lp.Term{
							Var: getPair(i, j, m, nn), Coeff: lx,
						})
					}
				}
				if len(row.Terms) == 1 && path.FixedLossDB <= inst.Lib.MaxLossDB {
					continue // trivially satisfied, skip the row
				}
				rows = append(rows, row)
			}
		}
	}

	// Binary bounds ride natively on the variables (0 <= a <= 1) so the
	// revised simplex handles them in the ratio test; no x <= 1 rows are
	// ever materialised, here or per branch-and-bound node.
	upper := make([]float64, len(obj))
	for i := range upper {
		upper[i] = math.Inf(1)
	}
	for _, v := range binary {
		upper[v] = 1
	}
	return ilp.Problem{
		LP:     lp.Problem{NumVars: len(obj), Objective: obj, Rows: rows, Upper: upper},
		Binary: binary,
	}, varOf
}
