package selection

import (
	"testing"

	"operon/internal/obs"
	"operon/internal/optics"
)

func TestCrossLossCacheConsistency(t *testing.T) {
	lib := optics.DefaultLibrary()
	nets := []Net{
		twoCandNet(0.5, 0, 2, 1.0, 5, 4.0),
		crossingNet(1.0, 0, 1, 1.0, 5, 4.0),
	}
	inst, err := NewInstance(nets, lib)
	if err != nil {
		t.Fatal(err)
	}
	a := inst.CrossLossDB(0, 0, 1, 0)
	b := inst.CrossLossDB(0, 0, 1, 0) // cached path
	if &a[0] != &b[0] {
		t.Error("second lookup did not hit the cache")
	}
	// Self-interaction and electrical candidates produce zero loss.
	if got := inst.CrossLossDB(0, 0, 0, 0); got[0] != 0 {
		t.Errorf("self interaction loss = %v", got)
	}
	if got := inst.CrossLossDB(0, 1, 1, 0); len(got) != 0 {
		t.Errorf("electrical candidate has %d paths", len(got))
	}
	if got := inst.CrossLossDB(0, 0, 1, 1); got[0] != 0 {
		t.Errorf("loss against electrical candidate = %v", got)
	}
}

func TestLRHistoryRecorded(t *testing.T) {
	lib := optics.DefaultLibrary()
	nets := []Net{
		twoCandNet(0.5, 0, 2, 1.0, lib.MaxLossDB-0.3, 3.0),
		crossingNet(1.0, 0, 2, 0.8, lib.MaxLossDB-0.3, 2.5),
		twoCandNet(1.5, 0, 2, 1.2, lib.MaxLossDB-0.3, 3.5),
	}
	inst, err := NewInstance(nets, lib)
	if err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	lr, err := SolveLR(inst, LROptions{MaxIters: 6, Obs: obs.New(col)})
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.History) != lr.Iters {
		t.Fatalf("history %d entries for %d iterations", len(lr.History), lr.Iters)
	}
	for i, h := range lr.History {
		if h.PowerMW <= 0 {
			t.Errorf("iteration %d: power %v", i, h.PowerMW)
		}
		if h.Violations < 0 {
			t.Errorf("iteration %d: negative violations", i)
		}
		// The multipliers start strictly positive (proportional to p_e), so
		// their norm is positive; the step follows the 1/(iter+1) schedule.
		if h.MultiplierNorm <= 0 {
			t.Errorf("iteration %d: multiplier norm %v", i, h.MultiplierNorm)
		}
		if want := 1.0 / float64(i+1); h.Step != want {
			t.Errorf("iteration %d: step %v, want %v", i, h.Step, want)
		}
		// The linearised dual bound must not exceed the primal power of the
		// same multipliers' pricing by more than the relaxation slack allows;
		// at minimum it is finite and recorded.
		if h.LowerBoundMW != h.LowerBoundMW { // NaN guard
			t.Errorf("iteration %d: NaN lower bound", i)
		}
	}
	// The history is mirrored as lr/iterate obs events, one per iteration.
	if evs := col.EventsNamed("lr/iterate"); len(evs) != lr.Iters {
		t.Errorf("%d lr/iterate events for %d iterations", len(evs), lr.Iters)
	}
	if sp := col.SpansNamed("selection/lr"); len(sp) != 1 {
		t.Errorf("%d selection/lr spans, want 1", len(sp))
	}
	// The final (repaired) solution never has violations.
	if lr.Violations != 0 {
		t.Error("final LR selection illegal")
	}
}

func TestLROptionsRespected(t *testing.T) {
	lib := optics.DefaultLibrary()
	nets := []Net{twoCandNet(0.5, 0, 2, 1.0, 5, 3.0)}
	inst, _ := NewInstance(nets, lib)
	lr, err := SolveLR(inst, LROptions{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lr.Iters != 1 {
		t.Fatalf("iters = %d, want 1", lr.Iters)
	}
}

func TestRepairIdempotentOnLegal(t *testing.T) {
	lib := optics.DefaultLibrary()
	nets := []Net{
		twoCandNet(0.5, 0, 2, 1.0, 5, 3.0),
		twoCandNet(1.5, 0, 2, 1.0, 5, 3.0),
	}
	inst, _ := NewInstance(nets, lib)
	sel, err := inst.Evaluate([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Violations != 0 {
		t.Fatal("setup: selection should be legal")
	}
	repaired, err := inst.Repair(sel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range repaired.Choice {
		if repaired.Choice[i] != sel.Choice[i] {
			t.Fatal("repair modified a legal selection")
		}
	}
}

func BenchmarkSolveLR(b *testing.B) {
	lib := optics.DefaultLibrary()
	var nets []Net
	for i := 0; i < 60; i++ {
		y := float64(i) * 0.05
		nets = append(nets, twoCandNet(y, 0, 2, 1.0, lib.MaxLossDB-2, 3.0))
		nets = append(nets, crossingNet(0.5+float64(i)*0.02, 0, 2, 1.0, lib.MaxLossDB-2, 3.0))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := NewInstance(nets, lib)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := SolveLR(inst, LROptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
