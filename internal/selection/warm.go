package selection

// Cross-solve reuse helpers for incremental (ECO) re-synthesis. The crossing
// loss between two candidates is a pure function of the two candidates'
// geometry and the optical library, so cached values survive across solves
// whenever the nets that produced them are carried over unchanged — only the
// net indices move. These helpers remap index space; the caller (the root
// package's Session) is responsible for only mapping nets whose candidate
// lists are verbatim reuses of the previous solve.

// SeedCrossCache copies the crossing-loss memo of a previous instance into
// inst for every cached pair whose two nets both survive into the new
// instance. newToPrev[i] gives the previous index of new net i, or -1 when
// the net is new or rebuilt; mapped nets must carry candidate lists reused
// verbatim from the previous solve (same geometry, same order), which the
// bit-identity of the memoised values depends on. Value slices are shared,
// not copied — they are write-once. Returns the number of entries seeded;
// zero (and no seeding) when the libraries differ.
func (inst *Instance) SeedCrossCache(prev *Instance, newToPrev []int) int {
	if prev == nil || inst.Lib != prev.Lib || len(newToPrev) != len(inst.Nets) {
		return 0
	}
	prevToNew := make([]int, len(prev.Nets))
	for i := range prevToNew {
		prevToNew[i] = -1
	}
	for i, pi := range newToPrev {
		if pi >= 0 && pi < len(prev.Nets) {
			prevToNew[pi] = i
		}
	}
	prev.crossMu.RLock()
	defer prev.crossMu.RUnlock()
	inst.crossMu.Lock()
	defer inst.crossMu.Unlock()
	seeded := 0
	for k, v := range prev.crossCache {
		if k.i >= len(prevToNew) || k.m >= len(prevToNew) {
			continue
		}
		ni, nm := prevToNew[k.i], prevToNew[k.m]
		if ni < 0 || nm < 0 {
			continue
		}
		// Defensive bounds: a mapped net must still own the cached candidate
		// indices, and the path count must match the cached vector.
		if k.j >= len(inst.Nets[ni].Cands) || k.n >= len(inst.Nets[nm].Cands) {
			continue
		}
		if len(v) != len(inst.Nets[ni].Cands[k.j].Paths) {
			continue
		}
		inst.crossCache[pairKey{ni, k.j, nm, k.n}] = v
		seeded++
	}
	return seeded
}

// RemapLambda transfers a previous solve's final Lagrangian multipliers onto
// a new instance's path layout: new net i inherits the multiplier segment of
// previous net newToPrev[i] when the candidate structure matches (same
// candidate count and per-candidate path counts); new or rebuilt nets fall
// back to the standard initialisation (0.1 × electrical power / loss
// budget). Returns nil when prevLambda does not match prev's path layout, in
// which case callers should solve cold. The result is intended for
// LROptions.WarmStart — note that warm-started LR follows a different dual
// trajectory than a cold solve and is therefore opt-in (see Session.WarmDuals).
func RemapLambda(prev *Instance, prevLambda []float64, next *Instance, newToPrev []int) []float64 {
	if prev == nil || next == nil || len(prevLambda) != prev.numPaths ||
		len(newToPrev) != len(next.Nets) {
		return nil
	}
	lambda := make([]float64, next.numPaths)
	for i, n := range next.Nets {
		pi := newToPrev[i]
		if ok := pi >= 0 && pi < len(prev.Nets) && sameCandShape(n, prev.Nets[pi]); ok {
			for j, c := range n.Cands {
				copy(lambda[next.pathOff[i][j]:next.pathOff[i][j]+len(c.Paths)],
					prevLambda[prev.pathOff[pi][j]:prev.pathOff[pi][j]+len(c.Paths)])
			}
			continue
		}
		pe := n.Cands[n.ElectricalIndex()].PowerMW
		for j, c := range n.Cands {
			off := next.pathOff[i][j]
			for p := range c.Paths {
				lambda[off+p] = 0.1 * pe / next.Lib.MaxLossDB
			}
		}
	}
	return lambda
}

// sameCandShape reports whether two nets have identical candidate counts and
// per-candidate path counts — the condition for multiplier segments to be
// transferable between their layouts.
func sameCandShape(a, b Net) bool {
	if len(a.Cands) != len(b.Cands) {
		return false
	}
	for j := range a.Cands {
		if len(a.Cands[j].Paths) != len(b.Cands[j].Paths) {
			return false
		}
	}
	return true
}
