// Package selection implements OPERON's solution-determination stage: given
// the per-hyper-net candidate sets produced by internal/codesign, it picks
// exactly one candidate per hyper net so that total power is minimised and
// every optical detection path meets the loss budget, accounting for the
// crossing loss selected candidates inflict on each other.
//
// Two solvers are provided, mirroring the paper: SolveILP builds the exact
// quadratic 0-1 programme of §3.3 (linearised exactly) and solves it by
// branch and bound; SolveLR runs the Lagrangian-relaxation iteration of
// §3.4, trading a little quality for orders of magnitude less runtime.
package selection

import (
	"fmt"
	"math"
	"sync"

	"operon/internal/codesign"
	"operon/internal/geom"
	"operon/internal/optics"
)

// Net is one hyper net with its candidate solutions. The last candidate is
// expected to be the pure-electrical fallback a_ie (as produced by
// codesign.Generate), guaranteeing feasibility.
type Net struct {
	// Bits is the net's bit width (drives conversion power and WDM shares).
	Bits int
	// Cands lists the candidate implementations to choose from.
	Cands []codesign.Candidate
}

// ElectricalIndex returns the index of the electrical fallback candidate,
// or -1 if the net has none.
func (n Net) ElectricalIndex() int {
	for j := len(n.Cands) - 1; j >= 0; j-- {
		if n.Cands[j].AllElectrical {
			return j
		}
	}
	return -1
}

// Instance is a complete selection problem.
type Instance struct {
	// Nets is the hyper nets with their candidate lists.
	Nets []Net
	// Lib is the optical library supplying the loss budget and crossing loss.
	Lib optics.Library

	// candBox[i][j] is the bounding box of candidate (i,j)'s optical
	// segments; hasOpt[i][j] reports whether it has any.
	candBox [][]geom.Rect
	hasOpt  [][]bool
	// crossCache memoises per-path crossing loss between candidate pairs.
	// Guarded by crossMu: the LR pricing step queries it from many workers.
	// Values are pure functions of the instance, so a racing recompute
	// stores the same slice contents either way.
	crossMu    sync.RWMutex
	crossCache map[pairKey][]float64
	// crossSlab is the current slab block cached values are sub-sliced from
	// (guarded by crossMu); handing out slab regions instead of one heap
	// allocation per cache entry keeps the miss path to ~1 allocation per
	// 4096 path slots.
	crossSlab []float64
	crossOff  int
	// interactions[i] lists the nets whose candidate boxes overlap net i's;
	// precomputed in NewInstance so concurrent readers need no locking.
	interactions [][]int
	// pathOff[i][j] is the offset of candidate (i,j)'s paths in any flat
	// per-path vector of length numPaths (the LR multiplier layout).
	pathOff  [][]int
	numPaths int
	// evalExtra is scratch for evaluateInto (the sequential evaluate/repair
	// path); Evaluate stays pure and allocates its own.
	evalExtra []float64
}

type pairKey struct{ i, j, m, n int }

// NewInstance validates the nets and prepares interaction bookkeeping.
func NewInstance(nets []Net, lib optics.Library) (*Instance, error) {
	if len(nets) == 0 {
		return nil, fmt.Errorf("selection: no nets")
	}
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	inst := &Instance{
		Nets:       nets,
		Lib:        lib,
		crossCache: make(map[pairKey][]float64),
	}
	inst.candBox = make([][]geom.Rect, len(nets))
	inst.hasOpt = make([][]bool, len(nets))
	for i, n := range nets {
		if len(n.Cands) == 0 {
			return nil, fmt.Errorf("selection: net %d has no candidates", i)
		}
		if n.ElectricalIndex() < 0 {
			return nil, fmt.Errorf("selection: net %d lacks an electrical fallback", i)
		}
		inst.candBox[i] = make([]geom.Rect, len(n.Cands))
		inst.hasOpt[i] = make([]bool, len(n.Cands))
		for j, c := range n.Cands {
			if len(c.OpticalSegs) == 0 {
				continue
			}
			inst.hasOpt[i][j] = true
			box := c.OpticalSegs[0].BBox()
			for _, s := range c.OpticalSegs[1:] {
				box = box.Union(s.BBox())
			}
			inst.candBox[i][j] = box
		}
	}
	inst.pathOff = make([][]int, len(nets))
	off := 0
	for i, n := range nets {
		inst.pathOff[i] = make([]int, len(n.Cands))
		for j, c := range n.Cands {
			inst.pathOff[i][j] = off
			off += len(c.Paths)
		}
	}
	inst.numPaths = off
	inst.precomputeInteractions()
	return inst, nil
}

// precomputeInteractions fills interactions[i] for every net: the §3.3
// bounding-box pruning that drops crossing terms between non-overlapping
// hyper nets. Doing it eagerly keeps InteractingNets a lock-free read for
// the parallel pricing step.
func (inst *Instance) precomputeInteractions() {
	n := len(inst.Nets)
	netBox := make([]geom.Rect, n)
	netHas := make([]bool, n)
	for i := range inst.Nets {
		for j := range inst.Nets[i].Cands {
			if inst.hasOpt[i][j] {
				if !netHas[i] {
					netBox[i] = inst.candBox[i][j]
					netHas[i] = true
				} else {
					netBox[i] = netBox[i].Union(inst.candBox[i][j])
				}
			}
		}
	}
	inst.interactions = make([][]int, n)
	for i := 0; i < n; i++ {
		out := []int{}
		if netHas[i] {
			for m := 0; m < n; m++ {
				if m == i {
					continue
				}
				for j := range inst.Nets[m].Cands {
					if inst.hasOpt[m][j] && netBox[i].Overlaps(inst.candBox[m][j]) {
						out = append(out, m)
						break
					}
				}
			}
		}
		inst.interactions[i] = out
	}
}

// CrossLossDB returns, for each path of candidate (i,j), the crossing loss
// in dB inflicted by candidate (m,n)'s waveguides. Results are memoised;
// the cache is safe for concurrent use.
func (inst *Instance) CrossLossDB(i, j, m, n int) []float64 {
	key := pairKey{i, j, m, n}
	inst.crossMu.RLock()
	v, ok := inst.crossCache[key]
	inst.crossMu.RUnlock()
	if ok {
		return v
	}
	ci := inst.Nets[i].Cands[j]
	inst.crossMu.Lock()
	out := inst.slabAlloc(len(ci.Paths))
	inst.crossMu.Unlock()
	if i != m && inst.hasOpt[i][j] && inst.hasOpt[m][n] &&
		inst.candBox[i][j].Overlaps(inst.candBox[m][n]) {
		other := inst.Nets[m].Cands[n].OpticalSegs
		for p, path := range ci.Paths {
			crossings := geom.CountCrossings(path.Segs, other)
			out[p] = inst.Lib.CrossingLossDB(crossings)
		}
	}
	inst.crossMu.Lock()
	inst.crossCache[key] = out
	inst.crossMu.Unlock()
	return out
}

// slabAlloc carves a zeroed n-slot region out of the crossing-loss slab,
// starting a fresh block when the current one is exhausted. Callers must
// hold crossMu. Regions are handed out once and never recycled, so a fresh
// block's zeroing is all the initialisation they need.
func (inst *Instance) slabAlloc(n int) []float64 {
	if n == 0 {
		return nil
	}
	if len(inst.crossSlab)-inst.crossOff < n {
		size := 4096
		if n > size {
			size = n
		}
		inst.crossSlab = make([]float64, size)
		inst.crossOff = 0
	}
	s := inst.crossSlab[inst.crossOff : inst.crossOff+n : inst.crossOff+n]
	inst.crossOff += n
	return s
}

// InteractingNets returns, for net i, the other nets whose candidate
// bounding boxes overlap any of net i's — the §3.3 speed-up that drops
// crossing variables between non-overlapping hyper nets. The lists are
// precomputed, so this is a lock-free read.
func (inst *Instance) InteractingNets(i int) []int {
	return inst.interactions[i]
}

// Selection is a complete assignment of one candidate per net.
type Selection struct {
	// Choice[i] indexes the chosen candidate of net i.
	Choice []int
	// PowerMW is the total power of the chosen candidates.
	PowerMW float64
	// Violations counts detection-constraint violations under exact
	// pairwise crossing loss.
	Violations int
	// MaxViolationDB is the largest amount by which a path exceeds the
	// budget.
	MaxViolationDB float64
}

// Evaluate computes the exact power and loss legality of a choice vector.
// It reuses instance-owned scratch, so like Repair it must not be called
// from concurrent goroutines (the parallel pricing step only reads
// CrossLossDB, which stays safe for concurrent use).
func (inst *Instance) Evaluate(choice []int) (Selection, error) {
	if len(choice) != len(inst.Nets) {
		return Selection{}, fmt.Errorf("selection: choice length %d for %d nets",
			len(choice), len(inst.Nets))
	}
	sel := Selection{Choice: append([]int(nil), choice...)}
	for i, j := range choice {
		if j < 0 || j >= len(inst.Nets[i].Cands) {
			return Selection{}, fmt.Errorf("selection: net %d choice %d out of range", i, j)
		}
		sel.PowerMW += inst.Nets[i].Cands[j].PowerMW
	}
	for i, j := range choice {
		cand := inst.Nets[i].Cands[j]
		if len(cand.Paths) == 0 {
			continue
		}
		if cap(inst.evalExtra) < len(cand.Paths) {
			inst.evalExtra = make([]float64, len(cand.Paths))
		}
		extra := inst.evalExtra[:len(cand.Paths)]
		for p := range extra {
			extra[p] = 0
		}
		for _, m := range inst.InteractingNets(i) {
			lx := inst.CrossLossDB(i, j, m, choice[m])
			for p := range extra {
				extra[p] += lx[p]
			}
		}
		for p, path := range cand.Paths {
			loss := path.FixedLossDB + extra[p]
			if !inst.Lib.Detectable(loss) {
				sel.Violations++
				if v := loss - inst.Lib.MaxLossDB; v > sel.MaxViolationDB {
					sel.MaxViolationDB = v
				}
			}
		}
	}
	return sel, nil
}

// Repair demotes nets with violating optical paths to their electrical
// fallback until the selection is legal. It mirrors the paper's observation
// that "the residual nets have to be completed through electrical wires".
func (inst *Instance) Repair(sel Selection) (Selection, error) {
	cur := sel
	for cur.Violations > 0 {
		// Demote the net owning the worst violating path.
		worstNet, worstViol := -1, 0.0
		for i, j := range cur.Choice {
			cand := inst.Nets[i].Cands[j]
			if len(cand.Paths) == 0 {
				continue
			}
			for p, path := range cand.Paths {
				loss := path.FixedLossDB
				for _, m := range inst.InteractingNets(i) {
					loss += inst.CrossLossDB(i, j, m, cur.Choice[m])[p]
				}
				if v := loss - inst.Lib.MaxLossDB; v > worstViol {
					worstViol = v
					worstNet = i
				}
			}
		}
		if worstNet < 0 {
			break
		}
		cur.Choice[worstNet] = inst.Nets[worstNet].ElectricalIndex()
		next, err := inst.Evaluate(cur.Choice)
		if err != nil {
			return Selection{}, err
		}
		cur = next
	}
	return cur, nil
}

// GreedyIndependent picks, for every net, its cheapest candidate ignoring
// interactions, then repairs. It seeds the LR iteration and serves as a
// baseline.
func (inst *Instance) GreedyIndependent() (Selection, error) {
	choice := make([]int, len(inst.Nets))
	for i, n := range inst.Nets {
		best, bestP := 0, math.Inf(1)
		for j, c := range n.Cands {
			if c.PowerMW < bestP {
				best, bestP = j, c.PowerMW
			}
		}
		choice[i] = best
	}
	sel, err := inst.Evaluate(choice)
	if err != nil {
		return Selection{}, err
	}
	return inst.Repair(sel)
}

// AllElectrical returns the selection that routes every net electrically.
func (inst *Instance) AllElectrical() (Selection, error) {
	choice := make([]int, len(inst.Nets))
	for i, n := range inst.Nets {
		choice[i] = n.ElectricalIndex()
	}
	return inst.Evaluate(choice)
}
