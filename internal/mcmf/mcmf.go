// Package mcmf implements integral min-cost max-flow with the successive
// shortest paths algorithm and Johnson potentials. It replaces the LEMON
// network-flow library the paper used for the WDM assignment stage (§4.2):
// capacities are integers (signal bits), costs are integers (quantised
// displacement plus WDM usage costs, kept integral so the shortest-path
// arithmetic is exact), and the returned flow is integral — the
// uni-modularity property §4.2 relies on.
package mcmf

import (
	"context"
	"fmt"
	"math"

	"operon/internal/obs"
)

// edge is one directed arc plus its residual twin at index^1.
type edge struct {
	to   int32
	cap  int
	cost int64
}

// Graph is a flow network. Nodes are 0..N-1.
//
// Adjacency is kept in compressed (CSR) form, rebuilt lazily when edges
// were added since the last MaxFlow call: one contiguous arc-id slice plus
// per-node offsets instead of N growing slices. Dijkstra's working state
// (priority queue, distance and parent arrays) is allocated once per
// MaxFlow call and reused across augmentations.
type Graph struct {
	n     int
	edges []edge // twin arcs at 2k, 2k+1

	csrHead []int32 // per-node offsets into csrArcs; length n+1
	csrArcs []int32 // arc ids grouped by tail node
	csrAt   int     // len(edges) when the CSR was built

	cAug *obs.Counter // augmenting-path counter (nil = uninstrumented)
}

// Instrument attaches the mcmf.augmentations counter of t to this graph;
// every augmenting path MaxFlow pushes increments it. A nil tracer leaves
// the graph uninstrumented.
func (g *Graph) Instrument(t *obs.Tracer) {
	g.cAug = t.Counter("mcmf.augmentations")
}

// New returns an empty network on n nodes.
func New(n int) *Graph {
	return &Graph{n: n}
}

// NewWithEdgeHint returns an empty network on n nodes with capacity
// reserved for the given number of AddEdge calls, avoiding regrowth while
// the network is assembled.
func NewWithEdgeHint(n, edgeHint int) *Graph {
	g := New(n)
	if edgeHint > 0 {
		g.edges = make([]edge, 0, 2*edgeHint)
	}
	return g
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed arc u→v with the given capacity and per-unit
// cost, returning an edge handle for Flow. Costs are integers so that the
// successive-shortest-path arithmetic is exact — callers quantise real
// costs before building the network. It panics on invalid endpoints or
// negative capacity, which are programming errors.
func (g *Graph) AddEdge(u, v, capacity int, cost int64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("mcmf: edge %d→%d out of range", u, v))
	}
	if capacity < 0 {
		panic("mcmf: negative capacity")
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: int32(v), cap: capacity, cost: cost})
	g.edges = append(g.edges, edge{to: int32(u), cap: 0, cost: -cost})
	return id
}

// buildCSR (re)compresses the adjacency when edges changed. The twin arc
// of edge id lives at id^1, so each arc's tail is its twin's head.
func (g *Graph) buildCSR() {
	if g.csrAt == len(g.edges) && g.csrHead != nil {
		return
	}
	counts := make([]int32, g.n+1)
	for id := range g.edges {
		counts[g.edges[id^1].to+1]++
	}
	head := make([]int32, g.n+1)
	for i := 0; i < g.n; i++ {
		head[i+1] = head[i] + counts[i+1]
	}
	arcs := make([]int32, len(g.edges))
	cursor := make([]int32, g.n)
	copy(cursor, head[:g.n])
	for id := range g.edges {
		tail := g.edges[id^1].to
		arcs[cursor[tail]] = int32(id)
		cursor[tail]++
	}
	g.csrHead = head
	g.csrArcs = arcs
	g.csrAt = len(g.edges)
}

// Flow returns the flow currently routed on the edge with the given handle
// (the residual capacity of its twin).
func (g *Graph) Flow(id int) int {
	return g.edges[id^1].cap
}

// Result summarises a MaxFlow run.
type Result struct {
	// Flow is the total flow pushed from source to sink.
	Flow int
	// Cost is the total cost of that flow.
	Cost int64
}

// pqItem is a Dijkstra queue entry.
type pqItem struct {
	node int32
	dist int64
}

// pq is a binary min-heap on dist. It is hand-rolled rather than built on
// container/heap so pushes and pops move values without interface boxing —
// the queue is the inner-loop data structure of every augmentation.
type pq []pqItem

func (q *pq) push(it pqItem) {
	*q = append(*q, it)
	h := *q
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].dist <= h[i].dist {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func (q *pq) pop() pqItem {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	*q = h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && h[r].dist < h[l].dist {
			l = r
		}
		if h[i].dist <= h[l].dist {
			break
		}
		h[i], h[l] = h[l], h[i]
		i = l
	}
	return top
}

// MaxFlow pushes the maximum flow from s to t at minimum total cost.
// Negative edge costs are supported via a Bellman-Ford potential
// initialisation; negative cycles are not. It is MaxFlowContext with
// context.Background() — the solve runs to completion.
func (g *Graph) MaxFlow(s, t int) (Result, error) {
	return g.MaxFlowContext(context.Background(), s, t)
}

// MaxFlowContext is MaxFlow bounded by a context: the augmentation loop
// polls ctx before each shortest-path search (one Dijkstra per
// augmentation, the natural cancellation granularity) and, once cancelled,
// stops pushing flow and returns the partial Result together with
// ctx.Err(). The partial flow is a valid (capacity- and
// conservation-respecting) flow, just not maximal; callers that need a
// complete answer treat the error as a signal to fall back (see
// wdm.AssignContext). A run that completes before cancellation is
// bit-identical to MaxFlow.
func (g *Graph) MaxFlowContext(ctx context.Context, s, t int) (Result, error) {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		return Result{}, fmt.Errorf("mcmf: source/sink out of range")
	}
	if s == t {
		return Result{}, fmt.Errorf("mcmf: source equals sink")
	}
	g.buildCSR()
	pot := make([]int64, g.n)
	if g.hasNegativeCost() {
		if err := g.bellmanFord(s, pot); err != nil {
			return Result{}, err
		}
	}
	var res Result
	const unreached = math.MaxInt64
	dist := make([]int64, g.n)
	prevEdge := make([]int32, g.n)
	q := make(pq, 0, g.n)
	for {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		// Dijkstra on reduced costs (exact integer arithmetic). The queue
		// backing array is reused across augmentations.
		for i := range dist {
			dist[i] = unreached
			prevEdge[i] = -1
		}
		dist[s] = 0
		q = q[:0]
		q.push(pqItem{node: int32(s)})
		for len(q) > 0 {
			it := q.pop()
			if it.dist > dist[it.node] {
				continue
			}
			for a, end := g.csrHead[it.node], g.csrHead[it.node+1]; a < end; a++ {
				id := g.csrArcs[a]
				e := &g.edges[id]
				if e.cap <= 0 {
					continue
				}
				nd := it.dist + e.cost + pot[it.node] - pot[e.to]
				if nd < dist[e.to] {
					dist[e.to] = nd
					prevEdge[e.to] = id
					q.push(pqItem{node: e.to, dist: nd})
				}
			}
		}
		if dist[t] == unreached {
			break // no augmenting path remains
		}
		// Update potentials with dist capped at dist[t]: nodes beyond the
		// sink (or unreached this round) advance by dist[t], which keeps
		// every residual reduced cost non-negative even when reachability
		// changes between augmentations.
		for i := range pot {
			if dist[i] < dist[t] {
				pot[i] += dist[i]
			} else {
				pot[i] += dist[t]
			}
		}
		// Bottleneck along the path.
		bottleneck := math.MaxInt
		for v := int32(t); v != int32(s); {
			id := prevEdge[v]
			if g.edges[id].cap < bottleneck {
				bottleneck = g.edges[id].cap
			}
			v = g.edges[id^1].to
		}
		for v := int32(t); v != int32(s); {
			id := prevEdge[v]
			g.edges[id].cap -= bottleneck
			g.edges[id^1].cap += bottleneck
			res.Cost += int64(bottleneck) * g.edges[id].cost
			v = g.edges[id^1].to
		}
		res.Flow += bottleneck
		g.cAug.Inc()
	}
	return res, nil
}

func (g *Graph) hasNegativeCost() bool {
	for i := 0; i < len(g.edges); i += 2 {
		if g.edges[i].cost < 0 {
			return true
		}
	}
	return false
}

// bellmanFord fills pot with shortest distances from s over residual arcs,
// detecting negative cycles.
func (g *Graph) bellmanFord(s int, pot []int64) error {
	const unreached = math.MaxInt64
	for i := range pot {
		pot[i] = unreached
	}
	pot[s] = 0
	for iter := 0; iter < g.n; iter++ {
		changed := false
		for u := 0; u < g.n; u++ {
			if pot[u] == unreached {
				continue
			}
			for a, end := g.csrHead[u], g.csrHead[u+1]; a < end; a++ {
				e := &g.edges[g.csrArcs[a]]
				if e.cap > 0 && pot[u]+e.cost < pot[e.to] {
					pot[e.to] = pot[u] + e.cost
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if iter == g.n-1 {
			return fmt.Errorf("mcmf: negative cycle detected")
		}
	}
	// Unreached nodes would keep a sentinel potential; normalise to 0 so
	// reduced costs stay finite if flow later reaches them.
	for i, v := range pot {
		if v == unreached {
			pot[i] = 0
		}
	}
	return nil
}
