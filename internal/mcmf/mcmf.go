// Package mcmf implements integral min-cost max-flow with the successive
// shortest paths algorithm and Johnson potentials. It replaces the LEMON
// network-flow library the paper used for the WDM assignment stage (§4.2):
// capacities are integers (signal bits), costs are integers (quantised
// displacement plus WDM usage costs, kept integral so the shortest-path
// arithmetic is exact), and the returned flow is integral — the
// uni-modularity property §4.2 relies on.
package mcmf

import (
	"container/heap"
	"fmt"
	"math"
)

// edge is one directed arc plus its residual twin at index^1.
type edge struct {
	to   int
	cap  int
	cost int64
}

// Graph is a flow network. Nodes are 0..N-1.
type Graph struct {
	n     int
	edges []edge // twin arcs at 2k, 2k+1
	adj   [][]int
}

// New returns an empty network on n nodes.
func New(n int) *Graph {
	return &Graph{n: n, adj: make([][]int, n)}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed arc u→v with the given capacity and per-unit
// cost, returning an edge handle for Flow. Costs are integers so that the
// successive-shortest-path arithmetic is exact — callers quantise real
// costs before building the network. It panics on invalid endpoints or
// negative capacity, which are programming errors.
func (g *Graph) AddEdge(u, v, capacity int, cost int64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("mcmf: edge %d→%d out of range", u, v))
	}
	if capacity < 0 {
		panic("mcmf: negative capacity")
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: v, cap: capacity, cost: cost})
	g.edges = append(g.edges, edge{to: u, cap: 0, cost: -cost})
	g.adj[u] = append(g.adj[u], id)
	g.adj[v] = append(g.adj[v], id+1)
	return id
}

// Flow returns the flow currently routed on the edge with the given handle
// (the residual capacity of its twin).
func (g *Graph) Flow(id int) int {
	return g.edges[id^1].cap
}

// Result summarises a MaxFlow run.
type Result struct {
	Flow int
	Cost int64
}

// pqItem is a Dijkstra queue entry.
type pqItem struct {
	node int
	dist int64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// MaxFlow pushes the maximum flow from s to t at minimum total cost.
// Negative edge costs are supported via a Bellman-Ford potential
// initialisation; negative cycles are not.
func (g *Graph) MaxFlow(s, t int) (Result, error) {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		return Result{}, fmt.Errorf("mcmf: source/sink out of range")
	}
	if s == t {
		return Result{}, fmt.Errorf("mcmf: source equals sink")
	}
	pot := make([]int64, g.n)
	if g.hasNegativeCost() {
		if err := g.bellmanFord(s, pot); err != nil {
			return Result{}, err
		}
	}
	var res Result
	const unreached = math.MaxInt64
	dist := make([]int64, g.n)
	prevEdge := make([]int, g.n)
	for {
		// Dijkstra on reduced costs (exact integer arithmetic).
		for i := range dist {
			dist[i] = unreached
			prevEdge[i] = -1
		}
		dist[s] = 0
		q := &pq{{node: s}}
		for q.Len() > 0 {
			it := heap.Pop(q).(pqItem)
			if it.dist > dist[it.node] {
				continue
			}
			for _, id := range g.adj[it.node] {
				e := g.edges[id]
				if e.cap <= 0 {
					continue
				}
				nd := it.dist + e.cost + pot[it.node] - pot[e.to]
				if nd < dist[e.to] {
					dist[e.to] = nd
					prevEdge[e.to] = id
					heap.Push(q, pqItem{node: e.to, dist: nd})
				}
			}
		}
		if dist[t] == unreached {
			break // no augmenting path remains
		}
		// Update potentials with dist capped at dist[t]: nodes beyond the
		// sink (or unreached this round) advance by dist[t], which keeps
		// every residual reduced cost non-negative even when reachability
		// changes between augmentations.
		for i := range pot {
			if dist[i] < dist[t] {
				pot[i] += dist[i]
			} else {
				pot[i] += dist[t]
			}
		}
		// Bottleneck along the path.
		bottleneck := math.MaxInt
		for v := t; v != s; {
			id := prevEdge[v]
			if g.edges[id].cap < bottleneck {
				bottleneck = g.edges[id].cap
			}
			v = g.edges[id^1].to
		}
		for v := t; v != s; {
			id := prevEdge[v]
			g.edges[id].cap -= bottleneck
			g.edges[id^1].cap += bottleneck
			res.Cost += int64(bottleneck) * g.edges[id].cost
			v = g.edges[id^1].to
		}
		res.Flow += bottleneck
	}
	return res, nil
}

func (g *Graph) hasNegativeCost() bool {
	for i := 0; i < len(g.edges); i += 2 {
		if g.edges[i].cost < 0 {
			return true
		}
	}
	return false
}

// bellmanFord fills pot with shortest distances from s over residual arcs,
// detecting negative cycles.
func (g *Graph) bellmanFord(s int, pot []int64) error {
	const unreached = math.MaxInt64
	for i := range pot {
		pot[i] = unreached
	}
	pot[s] = 0
	for iter := 0; iter < g.n; iter++ {
		changed := false
		for u := 0; u < g.n; u++ {
			if pot[u] == unreached {
				continue
			}
			for _, id := range g.adj[u] {
				e := g.edges[id]
				if e.cap > 0 && pot[u]+e.cost < pot[e.to] {
					pot[e.to] = pot[u] + e.cost
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if iter == g.n-1 {
			return fmt.Errorf("mcmf: negative cycle detected")
		}
	}
	// Unreached nodes would keep a sentinel potential; normalise to 0 so
	// reduced costs stay finite if flow later reaches them.
	for i, v := range pot {
		if v == unreached {
			pot[i] = 0
		}
	}
	return nil
}
