package mcmf

import (
	"math"
	"math/rand"
	"testing"
)

func TestAddEdgePanics(t *testing.T) {
	g := New(2)
	for _, fn := range []func(){
		func() { g.AddEdge(-1, 0, 1, 0) },
		func() { g.AddEdge(0, 5, 1, 0) },
		func() { g.AddEdge(0, 1, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad AddEdge did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestMaxFlowValidation(t *testing.T) {
	g := New(3)
	if _, err := g.MaxFlow(0, 0); err == nil {
		t.Error("s == t accepted")
	}
	if _, err := g.MaxFlow(-1, 1); err == nil {
		t.Error("bad source accepted")
	}
}

func TestSimplePath(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5, 1)
	g.AddEdge(1, 2, 3, 2)
	res, err := g.MaxFlow(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 3 {
		t.Errorf("flow %d, want 3", res.Flow)
	}
	if res.Cost != 9 { // 3·1 + 3·2
		t.Errorf("cost %v, want 9", res.Cost)
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	// Two parallel 0→1 paths; cheap one saturates first.
	g := New(4)
	cheap := g.AddEdge(0, 1, 2, 1)
	exp := g.AddEdge(0, 2, 2, 10)
	g.AddEdge(1, 3, 2, 0)
	g.AddEdge(2, 3, 2, 0)
	res, err := g.MaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 4 {
		t.Fatalf("flow %d, want 4", res.Flow)
	}
	if g.Flow(cheap) != 2 || g.Flow(exp) != 2 {
		t.Errorf("flows: cheap %d expensive %d", g.Flow(cheap), g.Flow(exp))
	}
	if res.Cost != 22 {
		t.Errorf("cost %v, want 22", res.Cost)
	}
}

func TestResidualRerouting(t *testing.T) {
	// Classic case where min-cost flow must reroute through a residual arc.
	//   0→1 (1, 1), 0→2 (1, 2), 1→2 (1, 0 — tempting shortcut),
	//   1→3 (1, 2), 2→3 (1, 1)
	// Max flow 2: optimal sends 0→1→3 and 0→2→3 (cost 1+2+2+1 = 6).
	g := New(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(0, 2, 1, 2)
	g.AddEdge(1, 2, 1, 0)
	g.AddEdge(1, 3, 1, 2)
	g.AddEdge(2, 3, 1, 1)
	res, err := g.MaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 || res.Cost != 6 {
		t.Errorf("flow %d cost %v, want 2 and 6", res.Flow, res.Cost)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 4, 1)
	res, err := g.MaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 0 || res.Cost != 0 {
		t.Errorf("disconnected: %+v", res)
	}
}

func TestNegativeCosts(t *testing.T) {
	// A negative arc that the Bellman-Ford potentials must handle.
	g := New(3)
	g.AddEdge(0, 1, 2, -3)
	g.AddEdge(1, 2, 2, 1)
	res, err := g.MaxFlow(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 || res.Cost != -4 {
		t.Errorf("flow %d cost %v, want 2 and -4", res.Flow, res.Cost)
	}
}

func TestFlowConservationProperty(t *testing.T) {
	// Property: on random graphs, flow is conserved at every internal node
	// and no edge exceeds capacity.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(6)
		g := New(n)
		type arc struct {
			id, u, v, cap int
		}
		var arcs []arc
		for k := 0; k < n*3; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := 1 + rng.Intn(5)
			id := g.AddEdge(u, v, c, int64(rng.Intn(10)))
			arcs = append(arcs, arc{id, u, v, c})
		}
		s, t0 := 0, n-1
		res, err := g.MaxFlow(s, t0)
		if err != nil {
			t.Fatal(err)
		}
		net := make([]int, n)
		for _, a := range arcs {
			f := g.Flow(a.id)
			if f < 0 || f > a.cap {
				t.Fatalf("trial %d: edge flow %d outside [0,%d]", trial, f, a.cap)
			}
			net[a.u] -= f
			net[a.v] += f
		}
		for v := 0; v < n; v++ {
			switch v {
			case s:
				if net[v] != -res.Flow {
					t.Fatalf("trial %d: source net %d, want %d", trial, net[v], -res.Flow)
				}
			case t0:
				if net[v] != res.Flow {
					t.Fatalf("trial %d: sink net %d, want %d", trial, net[v], res.Flow)
				}
			default:
				if net[v] != 0 {
					t.Fatalf("trial %d: node %d violates conservation: %d", trial, v, net[v])
				}
			}
		}
	}
}

func TestMatchesBruteForceCost(t *testing.T) {
	// Property: on small random unit-capacity bipartite graphs, SSP cost
	// equals brute-force minimum assignment cost.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(3) // k left, k right
		cost := make([][]int64, k)
		for i := range cost {
			cost[i] = make([]int64, k)
			for j := range cost[i] {
				cost[i][j] = int64(rng.Intn(20))
			}
		}
		// Build: s=0, left 1..k, right k+1..2k, t=2k+1.
		g := New(2*k + 2)
		s, t0 := 0, 2*k+1
		for i := 0; i < k; i++ {
			g.AddEdge(s, 1+i, 1, 0)
			g.AddEdge(k+1+i, t0, 1, 0)
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				g.AddEdge(1+i, k+1+j, 1, cost[i][j])
			}
		}
		res, err := g.MaxFlow(s, t0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Flow != k {
			t.Fatalf("trial %d: flow %d, want %d", trial, res.Flow, k)
		}
		if want := bruteAssignment(cost); res.Cost != want {
			t.Errorf("trial %d: cost %v, want %v", trial, res.Cost, want)
		}
	}
}

// bruteAssignment returns the minimum-cost perfect assignment by permutation
// enumeration (k <= 4).
func bruteAssignment(cost [][]int64) int64 {
	k := len(cost)
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	best := int64(math.MaxInt64)
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			var c int64
			for r, col := range perm {
				c += cost[r][col]
			}
			if c < best {
				best = c
			}
			return
		}
		for j := i; j < k; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best
}

func TestWDMConsolidationShape(t *testing.T) {
	// The Fig. 6/7 scenario: three 20-bit connections, three candidate WDMs
	// of capacity 32, usage costs increasing with WDM index. The min-cost
	// flow should pack all 60 bits into the first two WDMs.
	g := New(8) // 0 s, 1-3 connections, 4-6 WDMs, 7 t
	s, t0 := 0, 7
	for c := 0; c < 3; c++ {
		g.AddEdge(s, 1+c, 20, 0)
	}
	wdmEdges := make([]int, 3)
	for w := 0; w < 3; w++ {
		wdmEdges[w] = g.AddEdge(4+w, t0, 32, 1000*int64(w+1)) // usage cost grows
	}
	// Every connection may reach every WDM (displacement cost « usage cost).
	for c := 0; c < 3; c++ {
		for w := 0; w < 3; w++ {
			disp := int64(c - w)
			if disp < 0 {
				disp = -disp
			}
			g.AddEdge(1+c, 4+w, 20, disp)
		}
	}
	res, err := g.MaxFlow(s, t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 60 {
		t.Fatalf("flow %d, want 60", res.Flow)
	}
	if g.Flow(wdmEdges[0]) != 32 || g.Flow(wdmEdges[1]) != 28 || g.Flow(wdmEdges[2]) != 0 {
		t.Errorf("WDM loads = %d/%d/%d, want 32/28/0",
			g.Flow(wdmEdges[0]), g.Flow(wdmEdges[1]), g.Flow(wdmEdges[2]))
	}
}

func BenchmarkMaxFlowWDMNetwork(b *testing.B) {
	// A WDM-assignment-shaped network: 200 connections, 60 WDMs.
	rng := rand.New(rand.NewSource(6))
	type arcSpec struct {
		u, v, cap int
		cost      int64
	}
	var arcs []arcSpec
	nConn, nWDM := 200, 60
	src, snk := 0, nConn+nWDM+1
	for c := 0; c < nConn; c++ {
		arcs = append(arcs, arcSpec{src, 1 + c, 2 + rng.Intn(20), 0})
		for w := 0; w < 4; w++ {
			arcs = append(arcs, arcSpec{1 + c, 1 + nConn + rng.Intn(nWDM), 32, int64(rng.Intn(1000))})
		}
	}
	for w := 0; w < nWDM; w++ {
		arcs = append(arcs, arcSpec{1 + nConn + w, snk, 32, int64(1+w) * 5000})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(nConn + nWDM + 2)
		for _, a := range arcs {
			g.AddEdge(a.u, a.v, a.cap, a.cost)
		}
		if _, err := g.MaxFlow(src, snk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCMF pins the allocation profile of a full build-and-solve on a
// WDM-assignment-shaped network: the CSR adjacency and the reused Dijkstra
// queue keep allocs/op flat in the number of augmentations.
func BenchmarkMCMF(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	type arcSpec struct {
		u, v, cap int
		cost      int64
	}
	var arcs []arcSpec
	nConn, nWDM := 200, 60
	src, snk := 0, nConn+nWDM+1
	for c := 0; c < nConn; c++ {
		arcs = append(arcs, arcSpec{src, 1 + c, 2 + rng.Intn(20), 0})
		for w := 0; w < 4; w++ {
			arcs = append(arcs, arcSpec{1 + c, 1 + nConn + rng.Intn(nWDM), 32, int64(rng.Intn(1000))})
		}
	}
	for w := 0; w < nWDM; w++ {
		arcs = append(arcs, arcSpec{1 + nConn + w, snk, 32, int64(1+w) * 5000})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewWithEdgeHint(nConn+nWDM+2, len(arcs))
		for _, a := range arcs {
			g.AddEdge(a.u, a.v, a.cap, a.cost)
		}
		if _, err := g.MaxFlow(src, snk); err != nil {
			b.Fatal(err)
		}
	}
}
