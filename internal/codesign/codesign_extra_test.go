package codesign

import (
	"math"
	"testing"

	"operon/internal/geom"
	"operon/internal/optics"
	"operon/internal/power"
	"operon/internal/steiner"
)

// chainInput builds a subdivided 2-pin net so the DP can switch O/E along
// the route.
func chainInput(lengthCM float64, chunks int, bits int) Input {
	tr := steiner.MST([]geom.Point{{X: 0, Y: 0}, {X: lengthCM, Y: 0}}, steiner.Euclidean)
	tr = steiner.Subdivide(tr, lengthCM/float64(chunks)+1e-9)
	return Input{
		Tree: tr,
		Bits: bits,
		Lib:  optics.DefaultLibrary(),
		Elec: power.DefaultElectricalModel(),
	}
}

func TestRelayDecodesToTwoConversionsPerDomain(t *testing.T) {
	// Hand-label an O,E,O chain: two optical domains, each with one
	// modulator and one detector. The evaluator must decode exactly that.
	in := chainInput(3, 3, 8)
	if len(in.Tree.Edges) != 3 {
		t.Fatalf("chunks = %d, want 3", len(in.Tree.Edges))
	}
	// Edge order after Subdivide follows the original edge direction from
	// terminal 0 to terminal 1.
	labels := []Label{Optical, Electrical, Optical}
	c, feasible := Evaluate(in, labels)
	if !feasible {
		t.Fatal("relay labeling infeasible")
	}
	if c.NumMod != 2 || c.NumDet != 2 {
		t.Fatalf("relay conversions: mod=%d det=%d, want 2/2", c.NumMod, c.NumDet)
	}
	if len(c.Paths) != 2 {
		t.Fatalf("relay paths = %d, want 2 (one per domain)", len(c.Paths))
	}
	// Each domain's propagation loss is for 1 cm only.
	for _, p := range c.Paths {
		if math.Abs(p.FixedLossDB-1.5) > 1e-9 {
			t.Errorf("domain loss = %v, want 1.5 (α·1cm)", p.FixedLossDB)
		}
	}
	if math.Abs(c.ElecWirelenCM-1) > 1e-9 {
		t.Errorf("electrical chunk length = %v, want 1", c.ElecWirelenCM)
	}
	if len(c.ModSites) != 2 || len(c.DetSites) != 2 {
		t.Fatalf("conversion sites: %d mods, %d dets", len(c.ModSites), len(c.DetSites))
	}
}

func TestRelayRescuesOverBudgetNet(t *testing.T) {
	// A run too long for a single optical domain: α·len > l_m. With a
	// relay, each half fits the budget and the DP should find an optical
	// solution cheaper than full electrical.
	lib := optics.DefaultLibrary()
	length := lib.MaxLossDB/lib.AlphaDBPerCM + 2 // ~15.3 cm, over budget
	// Fine chunks keep the relay's electrical hop short (a coarse grid
	// would make the copper gap costlier than a partial-optical tail).
	in := chainInput(length, 16, 16)
	cands, err := Generate(in)
	if err != nil {
		t.Fatal(err)
	}
	var best Candidate
	bestP := math.Inf(1)
	for _, c := range cands {
		if c.PowerMW < bestP {
			best, bestP = c, c.PowerMW
		}
	}
	if best.AllElectrical {
		t.Fatal("DP found no relay solution for the over-budget run")
	}
	if best.NumMod < 2 {
		t.Errorf("expected a relay (>=2 modulators), got %d", best.NumMod)
	}
	for _, p := range best.Paths {
		if !in.Lib.Detectable(p.TotalEstLossDB()) {
			t.Errorf("relay domain over budget: %v dB", p.TotalEstLossDB())
		}
	}
	// And it must beat the electrical fallback.
	elec := cands[len(cands)-1]
	if !elec.AllElectrical {
		t.Fatal("fallback missing")
	}
	if best.PowerMW >= elec.PowerMW {
		t.Errorf("relay %v mW not cheaper than electrical %v mW", best.PowerMW, elec.PowerMW)
	}
}

func TestPartialOpticalTail(t *testing.T) {
	// O,O,E: one optical domain ending in a detector, then wire to the
	// sink. One modulator, one detector, 1 cm of copper.
	in := chainInput(3, 3, 8)
	labels := []Label{Optical, Optical, Electrical}
	c, feasible := Evaluate(in, labels)
	if !feasible {
		t.Fatal("partial labeling infeasible")
	}
	if c.NumMod != 1 || c.NumDet != 1 {
		t.Fatalf("partial conversions: mod=%d det=%d, want 1/1", c.NumMod, c.NumDet)
	}
	if math.Abs(c.Paths[0].FixedLossDB-3.0) > 1e-9 {
		t.Errorf("optical run loss = %v, want 3.0 (α·2cm)", c.Paths[0].FixedLossDB)
	}
}

func TestConversionSitesMatchCounts(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := Input{
			Tree: steiner.BI1S(randTerminals(4, seed, 3), steiner.Euclidean, steiner.BI1SConfig{}),
			Bits: 8,
			Lib:  optics.DefaultLibrary(),
			Elec: power.DefaultElectricalModel(),
		}
		cands, err := Generate(in)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range cands {
			if len(c.ModSites) != c.NumMod {
				t.Errorf("seed %d cand %d: %d mod sites for %d mods",
					seed, i, len(c.ModSites), c.NumMod)
			}
			if len(c.DetSites) != c.NumDet {
				t.Errorf("seed %d cand %d: %d det sites for %d dets",
					seed, i, len(c.DetSites), c.NumDet)
			}
			// Paths and detectors correspond one-to-one.
			if len(c.Paths) != c.NumDet {
				t.Errorf("seed %d cand %d: %d paths for %d detectors",
					seed, i, len(c.Paths), c.NumDet)
			}
		}
	}
}

func TestPowerDecomposition(t *testing.T) {
	// PowerMW must equal electrical wire power plus conversion power.
	for seed := int64(0); seed < 8; seed++ {
		in := Input{
			Tree: steiner.BI1S(randTerminals(5, seed+50, 3), steiner.Euclidean, steiner.BI1SConfig{}),
			Bits: 12,
			Lib:  optics.DefaultLibrary(),
			Elec: power.DefaultElectricalModel(),
		}
		cands, err := Generate(in)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range cands {
			want := in.Elec.BusPowerMW(c.ElecWirelenCM, in.Bits) +
				in.Lib.ConversionPowerMW(c.NumMod, c.NumDet)*float64(in.Bits)
			if math.Abs(c.PowerMW-want) > 1e-9 {
				t.Errorf("seed %d cand %d: power %v != decomposition %v",
					seed, i, c.PowerMW, want)
			}
		}
	}
}

func TestDPOnSubdividedTreesMatchesOracle(t *testing.T) {
	// The DP/enumeration equivalence must also hold on chain-subdivided
	// trees (where relays live).
	for seed := int64(0); seed < 10; seed++ {
		terms := randTerminals(3, seed+200, 3)
		tr := steiner.Subdivide(
			steiner.BI1S(terms, steiner.Euclidean, steiner.BI1SConfig{}), 1.2)
		if len(tr.Edges) > 12 {
			continue
		}
		in := Input{Tree: tr, Bits: 8, Lib: optics.DefaultLibrary(),
			Elec: power.DefaultElectricalModel()}
		cands, err := Generate(in)
		if err != nil {
			t.Fatal(err)
		}
		dpBest := math.Inf(1)
		for _, c := range cands {
			if c.PowerMW < dpBest {
				dpBest = c.PowerMW
			}
		}
		oracle := enumerateBest(in)
		if math.Abs(dpBest-oracle) > 1e-6 {
			t.Errorf("seed %d: DP best %.6f vs oracle %.6f on subdivided tree",
				seed, dpBest, oracle)
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	in := Input{
		Tree: steiner.Subdivide(
			steiner.BI1S(randTerminals(4, 7, 3), steiner.Euclidean, steiner.BI1SConfig{}), 0.35),
		Bits: 16,
		Lib:  optics.DefaultLibrary(),
		Elec: power.DefaultElectricalModel(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(in); err != nil {
			b.Fatal(err)
		}
	}
}
