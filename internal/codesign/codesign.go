// Package codesign implements OPERON's optical-electrical route co-design
// (paper §3.2): given a baseline Steiner topology for a hyper net, it labels
// every tree edge as Optical or Electrical, producing a set of Pareto-optimal
// candidate solutions over (power, worst optical path loss).
//
// The algorithm is the bottom-up dynamic programme the paper derives from
// classic buffer insertion: each node keeps a pruned list of sub-solutions;
// an optical edge extends an open optical domain downward, an electrical
// edge seals domains with an EO modulator at their top; detectors (OE) are
// placed at every optical exit. Splitting loss 10·log10(arms) is charged at
// every node whose light fans out, per the paper's Eq. (2).
//
// A labeling alone decodes unambiguously into conversion sites because the
// DP never creates back-to-back OE→EO regeneration at a single node; see
// Evaluate for the decode rules.
package codesign

import (
	"fmt"
	"math"
	"sort"

	"operon/internal/geom"
	"operon/internal/optics"
	"operon/internal/power"
	"operon/internal/steiner"
)

// Label classifies a tree edge's implementation.
type Label uint8

const (
	// Electrical routes the edge as a Manhattan copper wire.
	Electrical Label = iota
	// Optical routes the edge as a waveguide segment.
	Optical
)

// String implements fmt.Stringer.
func (l Label) String() string {
	if l == Optical {
		return "O"
	}
	return "E"
}

// Input bundles everything candidate generation needs for one hyper net.
type Input struct {
	// Tree is a baseline topology (typically Euclidean BI1S). Terminal 0 is
	// the source hyper pin; all other terminals are sinks.
	Tree steiner.Tree
	// Bits is the number of parallel channels the hyper net carries; wire
	// power and conversion power scale with it.
	Bits int
	// Lib provides the optical loss and device parameters.
	Lib optics.Library
	// Elec provides the electrical wire power model.
	Elec power.ElectricalModel
	// Env holds optical segments of *other* hyper nets' baselines, used to
	// estimate crossing loss during the DP (the exact pairwise term is
	// re-evaluated in the selection stage).
	Env []geom.Segment
	// MaxOptions caps the per-node option list after Pareto pruning.
	// Defaults to 24 when zero.
	MaxOptions int
}

// Path is one source-to-exit optical detection path of a candidate.
type Path struct {
	// Segs are the waveguide segments the light traverses, in order.
	Segs []geom.Segment
	// FixedLossDB is the propagation plus splitting loss of the path.
	FixedLossDB float64
	// EstCrossLossDB is β times the estimated crossings against Env.
	EstCrossLossDB float64
}

// TotalEstLossDB returns the estimated total loss of the path.
func (p Path) TotalEstLossDB() float64 { return p.FixedLossDB + p.EstCrossLossDB }

// Candidate is one optical-electrical co-design solution a_ij (or the pure
// electrical alternative a_ie).
type Candidate struct {
	// Labels holds the per-edge implementation, indexed like Tree.Edges.
	Labels []Label
	// PowerMW is the candidate's total power: electrical wires plus EO/OE
	// conversions, scaled by the bit count.
	PowerMW float64
	// ElecWirelenCM is the total Manhattan length of electrical edges.
	ElecWirelenCM float64
	// NumMod and NumDet count modulator and detector sites (per channel).
	NumMod, NumDet int
	// Paths are the optical detection paths; each must satisfy the loss
	// budget once exact crossing loss is added.
	Paths []Path
	// OpticalSegs are all waveguide segments of the candidate.
	OpticalSegs []geom.Segment
	// ElecSegs are the electrical edges (as drawn in the baseline topology;
	// implemented as Manhattan wires of equivalent length).
	ElecSegs []geom.Segment
	// ModSites and DetSites locate the EO modulators and OE detectors,
	// used by the power-hotspot analysis (Fig. 9).
	ModSites, DetSites []geom.Point
	// AllElectrical marks the fallback candidate a_ie.
	AllElectrical bool
	// MaxFixedLossDB is the worst FixedLossDB over Paths (0 if none).
	MaxFixedLossDB float64
}

// rooted is the tree re-indexed as a rooted structure at terminal 0.
type rooted struct {
	tree     steiner.Tree
	parent   []int   // parent node index, -1 at root
	parentE  []int   // edge index to parent, -1 at root
	children [][]int // child node indices
	childE   [][]int // edge indices to children
	order    []int   // post-order traversal
	root     int
}

func buildRooted(t steiner.Tree) (*rooted, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	root := -1
	for i, n := range t.Nodes {
		if n.Terminal == 0 {
			root = i
			break
		}
	}
	if root < 0 {
		return nil, fmt.Errorf("codesign: tree has no terminal 0 (source)")
	}
	n := len(t.Nodes)
	r := &rooted{
		tree:     t,
		parent:   make([]int, n),
		parentE:  make([]int, n),
		children: make([][]int, n),
		childE:   make([][]int, n),
		root:     root,
	}
	type adjEntry struct{ node, edge int }
	adj := make([][]adjEntry, n)
	for ei, e := range t.Edges {
		adj[e.U] = append(adj[e.U], adjEntry{e.V, ei})
		adj[e.V] = append(adj[e.V], adjEntry{e.U, ei})
	}
	for i := range r.parent {
		r.parent[i] = -1
		r.parentE[i] = -1
	}
	// Iterative DFS producing children lists and a post-order.
	stack := []int{root}
	visited := make([]bool, n)
	visited[root] = true
	var pre []int
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pre = append(pre, u)
		for _, a := range adj[u] {
			if !visited[a.node] {
				visited[a.node] = true
				r.parent[a.node] = u
				r.parentE[a.node] = a.edge
				r.children[u] = append(r.children[u], a.node)
				r.childE[u] = append(r.childE[u], a.edge)
				stack = append(stack, a.node)
			}
		}
	}
	// Reverse preorder of a tree is a valid post-order (children before
	// parents).
	r.order = make([]int, len(pre))
	for i, u := range pre {
		r.order[len(pre)-1-i] = u
	}
	return r, nil
}

// isSink reports whether node u is a sink terminal.
func (r *rooted) isSink(u int) bool {
	term := r.tree.Nodes[u].Terminal
	return term > 0
}

func (r *rooted) edgeSeg(ei int) geom.Segment {
	e := r.tree.Edges[ei]
	return geom.Segment{A: r.tree.Nodes[e.U].Pt, B: r.tree.Nodes[e.V].Pt}
}

// Generate runs the co-design DP and returns the pruned candidate set,
// always including the pure-electrical fallback (last, marked
// AllElectrical). Candidates whose estimated worst path loss exceeds the
// budget are discarded during the DP.
func Generate(in Input) ([]Candidate, error) {
	if in.Bits <= 0 {
		return nil, fmt.Errorf("codesign: bits %d must be positive", in.Bits)
	}
	if err := in.Lib.Validate(); err != nil {
		return nil, err
	}
	if err := in.Elec.Validate(); err != nil {
		return nil, err
	}
	r, err := buildRooted(in.Tree)
	if err != nil {
		return nil, err
	}
	maxOpts := in.MaxOptions
	if maxOpts == 0 {
		maxOpts = 24
	}

	nEdges := len(in.Tree.Edges)
	bits := float64(in.Bits)
	modP := in.Lib.ConversionPowerMW(1, 0) * bits
	detP := in.Lib.ConversionPowerMW(0, 1) * bits

	edgeLossDB := make([]float64, nEdges)
	edgeElecP := make([]float64, nEdges)
	for ei := range in.Tree.Edges {
		seg := r.edgeSeg(ei)
		crossings := geom.CrossingsWithSegment(seg, in.Env)
		edgeLossDB[ei] = in.Lib.PropagationLossDB(seg.Length()) +
			in.Lib.CrossingLossDB(crossings)
		edgeElecP[ei] = in.Elec.BusPowerMW(seg.ManhattanLength(), in.Bits)
	}

	// option is a DP state at a node. mode SELF: no light requested from the
	// parent; all optical structure below is sealed. mode RECV: the node
	// expects light from an optical parent edge; recvLoss/recvDets describe
	// the open cone.
	type option struct {
		labels      []Label
		pow         float64
		recvLoss    float64
		sealedWorst float64
		domainAtTop bool // SELF only: a modulator sits at this node
	}

	selfOpts := make([][]option, len(in.Tree.Nodes))
	recvOpts := make([][]option, len(in.Tree.Nodes))

	newLabels := func() []Label { return make([]Label, nEdges) }
	mergeLabels := func(a, b []Label) []Label {
		out := make([]Label, nEdges)
		for i := range out {
			if a[i] == Optical || b[i] == Optical {
				out[i] = Optical
			}
		}
		return out
	}

	// partial is the in-progress merge state at a node.
	type partial struct {
		labels      []Label
		pow         float64
		arms        int
		maxArmLoss  float64
		sealedWorst float64
		hasEChild   bool
	}

	prunePartials := func(ps []partial) []partial {
		sort.Slice(ps, func(i, j int) bool { return ps[i].pow < ps[j].pow })
		var kept []partial
		for _, p := range ps {
			dominated := false
			for _, k := range kept {
				if k.pow <= p.pow+geom.Eps &&
					k.maxArmLoss <= p.maxArmLoss+geom.Eps &&
					k.arms <= p.arms &&
					k.sealedWorst <= p.sealedWorst+geom.Eps &&
					k.hasEChild == p.hasEChild {
					dominated = true
					break
				}
			}
			if !dominated {
				kept = append(kept, p)
				if len(kept) >= maxOpts*4 {
					break
				}
			}
		}
		return kept
	}

	pruneOptions := func(os []option, keepLoss bool) []option {
		sort.Slice(os, func(i, j int) bool { return os[i].pow < os[j].pow })
		var kept []option
		for _, o := range os {
			dominated := false
			for _, k := range kept {
				if k.pow <= o.pow+geom.Eps &&
					k.sealedWorst <= o.sealedWorst+geom.Eps &&
					(!keepLoss || k.recvLoss <= o.recvLoss+geom.Eps) &&
					k.domainAtTop == o.domainAtTop {
					dominated = true
					break
				}
			}
			if !dominated {
				kept = append(kept, o)
				if len(kept) >= maxOpts {
					break
				}
			}
		}
		return kept
	}

	for _, v := range r.order {
		partials := []partial{{labels: newLabels(), maxArmLoss: math.Inf(-1)}}
		for ci, c := range r.children[v] {
			ei := r.childE[v][ci]
			var next []partial
			for _, p := range partials {
				// Label the edge Electrical: consume the child's SELF options.
				for _, co := range selfOpts[c] {
					lb := mergeLabels(p.labels, co.labels)
					lb[ei] = Electrical
					next = append(next, partial{
						labels:      lb,
						pow:         p.pow + co.pow + edgeElecP[ei],
						arms:        p.arms,
						maxArmLoss:  p.maxArmLoss,
						sealedWorst: math.Max(p.sealedWorst, co.sealedWorst),
						hasEChild:   true,
					})
				}
				// Label the edge Optical.
				for _, co := range recvOpts[c] {
					lb := mergeLabels(p.labels, co.labels)
					lb[ei] = Optical
					next = append(next, partial{
						labels:      lb,
						pow:         p.pow + co.pow,
						arms:        p.arms + 1,
						maxArmLoss:  math.Max(p.maxArmLoss, edgeLossDB[ei]+co.recvLoss),
						sealedWorst: math.Max(p.sealedWorst, co.sealedWorst),
						hasEChild:   p.hasEChild,
					})
				}
				// Optical edge ending at a sealed child: a pure exit with a
				// detector at the child. Forbidden when the child hosts its
				// own modulator (no OEO regeneration at a single node).
				for _, co := range selfOpts[c] {
					if co.domainAtTop {
						continue
					}
					lb := mergeLabels(p.labels, co.labels)
					lb[ei] = Optical
					next = append(next, partial{
						labels:      lb,
						pow:         p.pow + co.pow + detP,
						arms:        p.arms + 1,
						maxArmLoss:  math.Max(p.maxArmLoss, edgeLossDB[ei]),
						sealedWorst: math.Max(p.sealedWorst, co.sealedWorst),
						hasEChild:   p.hasEChild,
					})
				}
			}
			partials = prunePartials(next)
		}

		// Finalize the node's options.
		var selfs, recvs []option
		for _, p := range partials {
			if p.arms == 0 {
				selfs = append(selfs, option{
					labels: p.labels, pow: p.pow, sealedWorst: p.sealedWorst,
				})
			} else {
				loss := p.maxArmLoss + optics.SplittingLossDB(p.arms)
				if in.Lib.Detectable(loss) {
					selfs = append(selfs, option{
						labels:      p.labels,
						pow:         p.pow + modP,
						sealedWorst: math.Max(p.sealedWorst, loss),
						domainAtTop: true,
					})
				}
			}
			if v != r.root {
				selfExit := r.isSink(v) || p.hasEChild || len(r.children[v]) == 0
				armsTotal := p.arms
				pow := p.pow
				if selfExit {
					armsTotal++
					pow += detP
				}
				if armsTotal == 0 {
					continue // light delivered to a node that uses none of it
				}
				split := optics.SplittingLossDB(armsTotal)
				worst := split
				if p.arms > 0 {
					worst = split + math.Max(p.maxArmLoss, 0)
					if !selfExit {
						worst = split + p.maxArmLoss
					}
				}
				if worst <= in.Lib.MaxLossDB { // quick bound; exact check at seal
					recvs = append(recvs, option{
						labels: p.labels, pow: pow, recvLoss: worst,
						sealedWorst: p.sealedWorst,
					})
				}
			}
		}
		selfOpts[v] = pruneOptions(selfs, false)
		recvOpts[v] = pruneOptions(recvs, true)
	}

	// Root SELF options are the candidate labelings.
	var out []Candidate
	sawAllE := false
	for _, o := range selfOpts[r.root] {
		cand, feasible := Evaluate(in, o.labels)
		if !feasible {
			continue
		}
		if cand.AllElectrical {
			if sawAllE {
				continue
			}
			sawAllE = true
		}
		out = append(out, cand)
	}
	if !sawAllE {
		allE, _ := Evaluate(in, make([]Label, nEdges))
		out = append(out, allE)
	}
	out = paretoFilter(out)
	// Order candidates by power, with the pure-electrical fallback last.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].AllElectrical != out[j].AllElectrical {
			return !out[i].AllElectrical
		}
		return out[i].PowerMW < out[j].PowerMW
	})
	return out, nil
}

// Evaluate decodes a labeling into a full Candidate. The decode rules are:
// a node with at least one Optical child edge hosts a modulator iff it is
// the root or its parent edge is Electrical; along optical domains a node
// takes a detector drop iff it is a sink terminal, has an Electrical child
// edge, or is a leaf; fan-out at a node splits the light over its optical
// child arms plus its own drop. The boolean result reports whether every
// optical path satisfies the loss budget under the Env-estimated crossing
// loss.
func Evaluate(in Input, labels []Label) (Candidate, bool) {
	r, err := buildRooted(in.Tree)
	if err != nil {
		return Candidate{}, false
	}
	if len(labels) != len(in.Tree.Edges) {
		return Candidate{}, false
	}
	bits := in.Bits
	c := Candidate{Labels: append([]Label(nil), labels...)}

	// Electrical power and optical segment collection.
	for ei, e := range in.Tree.Edges {
		seg := geom.Segment{A: in.Tree.Nodes[e.U].Pt, B: in.Tree.Nodes[e.V].Pt}
		if labels[ei] == Electrical {
			c.ElecWirelenCM += seg.ManhattanLength()
			c.ElecSegs = append(c.ElecSegs, seg)
		} else {
			c.OpticalSegs = append(c.OpticalSegs, seg)
		}
	}
	c.PowerMW = in.Elec.BusPowerMW(c.ElecWirelenCM, bits)
	c.AllElectrical = len(c.OpticalSegs) == 0

	// Decode optical domains.
	feasible := true
	for v := range in.Tree.Nodes {
		if !isDomainTop(r, labels, v) {
			continue
		}
		c.NumMod++
		c.PowerMW += in.Lib.ConversionPowerMW(1, 0) * float64(bits)
		c.ModSites = append(c.ModSites, in.Tree.Nodes[v].Pt)
		// Walk the domain from its top, accumulating loss along each path.
		type frame struct {
			node    int
			lossDB  float64
			crossDB float64
			segs    []geom.Segment
		}
		stack := []frame{{node: v}}
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			u := f.node
			var optChildren, optEdges []int
			hasEChild := false
			for ci, ch := range r.children[u] {
				if labels[r.childE[u][ci]] == Optical {
					optChildren = append(optChildren, ch)
					optEdges = append(optEdges, r.childE[u][ci])
				} else {
					hasEChild = true
				}
			}
			selfExit := u != v && (r.isSink(u) || hasEChild || len(r.children[u]) == 0)
			arms := len(optChildren)
			if selfExit {
				arms++
			}
			split := optics.SplittingLossDB(arms)
			if selfExit {
				c.NumDet++
				c.PowerMW += in.Lib.ConversionPowerMW(0, 1) * float64(bits)
				c.DetSites = append(c.DetSites, in.Tree.Nodes[u].Pt)
				p := Path{
					Segs:           append([]geom.Segment(nil), f.segs...),
					FixedLossDB:    f.lossDB + split,
					EstCrossLossDB: f.crossDB,
				}
				c.Paths = append(c.Paths, p)
				if !in.Lib.Detectable(p.TotalEstLossDB()) {
					feasible = false
				}
			}
			for i, ch := range optChildren {
				seg := r.edgeSeg(optEdges[i])
				crossings := geom.CrossingsWithSegment(seg, in.Env)
				stack = append(stack, frame{
					node:    ch,
					lossDB:  f.lossDB + split + in.Lib.PropagationLossDB(seg.Length()),
					crossDB: f.crossDB + in.Lib.CrossingLossDB(crossings),
					segs:    append(append([]geom.Segment(nil), f.segs...), seg),
				})
			}
		}
	}
	for _, p := range c.Paths {
		if p.FixedLossDB > c.MaxFixedLossDB {
			c.MaxFixedLossDB = p.FixedLossDB
		}
	}
	return c, feasible
}

// paretoFilter drops candidates strictly dominated in (power, worst fixed
// path loss) by another candidate. The electrical fallback (zero optical
// loss) is never dominated and always survives.
func paretoFilter(cands []Candidate) []Candidate {
	var kept []Candidate
	for i, c := range cands {
		dominated := false
		for j, o := range cands {
			if i == j {
				continue
			}
			// Strict domination in both coordinates, with index tie-break
			// to keep exactly one of exact duplicates.
			better := o.PowerMW < c.PowerMW-geom.Eps && o.MaxFixedLossDB < c.MaxFixedLossDB-geom.Eps
			duplicate := math.Abs(o.PowerMW-c.PowerMW) <= geom.Eps &&
				math.Abs(o.MaxFixedLossDB-c.MaxFixedLossDB) <= geom.Eps && j < i
			if better || duplicate {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, c)
		}
	}
	return kept
}

// isDomainTop reports whether node v hosts a modulator under the labeling:
// it has at least one Optical child edge and no Optical parent edge.
func isDomainTop(r *rooted, labels []Label, v int) bool {
	hasOptChild := false
	for ci := range r.children[v] {
		if labels[r.childE[v][ci]] == Optical {
			hasOptChild = true
			break
		}
	}
	if !hasOptChild {
		return false
	}
	return v == r.root || labels[r.parentE[v]] == Electrical
}
