// Package codesign implements OPERON's optical-electrical route co-design
// (paper §3.2): given a baseline Steiner topology for a hyper net, it labels
// every tree edge as Optical or Electrical, producing a set of Pareto-optimal
// candidate solutions over (power, worst optical path loss).
//
// The algorithm is the bottom-up dynamic programme the paper derives from
// classic buffer insertion: each node keeps a pruned list of sub-solutions;
// an optical edge extends an open optical domain downward, an electrical
// edge seals domains with an EO modulator at their top; detectors (OE) are
// placed at every optical exit. Splitting loss 10·log10(arms) is charged at
// every node whose light fans out, per the paper's Eq. (2).
//
// A labeling alone decodes unambiguously into conversion sites because the
// DP never creates back-to-back OE→EO regeneration at a single node; see
// Evaluate for the decode rules.
//
// The DP churns through many short-lived label vectors and option lists; a
// Workspace owns all of that scratch so repeated Generate/Evaluate calls
// (one per hyper net per flow) approach zero amortized allocation. All
// entry points accept a nil Workspace and fall back to a throwaway one.
package codesign

import (
	"fmt"
	"math"
	"sort"

	"operon/internal/geom"
	"operon/internal/optics"
	"operon/internal/power"
	"operon/internal/steiner"
)

// Label classifies a tree edge's implementation.
type Label uint8

const (
	// Electrical routes the edge as a Manhattan copper wire.
	Electrical Label = iota
	// Optical routes the edge as a waveguide segment.
	Optical
)

// String implements fmt.Stringer.
func (l Label) String() string {
	if l == Optical {
		return "O"
	}
	return "E"
}

// Input bundles everything candidate generation needs for one hyper net.
type Input struct {
	// Tree is a baseline topology (typically Euclidean BI1S). Terminal 0 is
	// the source hyper pin; all other terminals are sinks.
	Tree steiner.Tree
	// Bits is the number of parallel channels the hyper net carries; wire
	// power and conversion power scale with it.
	Bits int
	// Lib provides the optical loss and device parameters.
	Lib optics.Library
	// Elec provides the electrical wire power model.
	Elec power.ElectricalModel
	// Env holds optical segments of *other* hyper nets' baselines, used to
	// estimate crossing loss during the DP (the exact pairwise term is
	// re-evaluated in the selection stage).
	Env []geom.Segment
	// MaxOptions caps the per-node option list after Pareto pruning.
	// Defaults to 24 when zero.
	MaxOptions int
}

// Path is one source-to-exit optical detection path of a candidate.
type Path struct {
	// Segs are the waveguide segments the light traverses, in order.
	Segs []geom.Segment
	// FixedLossDB is the propagation plus splitting loss of the path.
	FixedLossDB float64
	// EstCrossLossDB is β times the estimated crossings against Env.
	EstCrossLossDB float64
}

// TotalEstLossDB returns the estimated total loss of the path.
func (p Path) TotalEstLossDB() float64 { return p.FixedLossDB + p.EstCrossLossDB }

// Candidate is one optical-electrical co-design solution a_ij (or the pure
// electrical alternative a_ie).
type Candidate struct {
	// Labels holds the per-edge implementation, indexed like Tree.Edges.
	Labels []Label
	// PowerMW is the candidate's total power: electrical wires plus EO/OE
	// conversions, scaled by the bit count.
	PowerMW float64
	// ElecWirelenCM is the total Manhattan length of electrical edges.
	ElecWirelenCM float64
	// NumMod and NumDet count modulator and detector sites (per channel).
	NumMod, NumDet int
	// Paths are the optical detection paths; each must satisfy the loss
	// budget once exact crossing loss is added.
	Paths []Path
	// OpticalSegs are all waveguide segments of the candidate.
	OpticalSegs []geom.Segment
	// ElecSegs are the electrical edges (as drawn in the baseline topology;
	// implemented as Manhattan wires of equivalent length).
	ElecSegs []geom.Segment
	// ModSites and DetSites locate the EO modulators and OE detectors,
	// used by the power-hotspot analysis (Fig. 9).
	ModSites, DetSites []geom.Point
	// AllElectrical marks the fallback candidate a_ie.
	AllElectrical bool
	// MaxFixedLossDB is the worst FixedLossDB over Paths (0 if none).
	MaxFixedLossDB float64
}

// rooted is the tree re-indexed as a rooted structure at terminal 0.
type rooted struct {
	tree     steiner.Tree
	parent   []int   // parent node index, -1 at root
	parentE  []int   // edge index to parent, -1 at root
	children [][]int // child node indices
	childE   [][]int // edge indices to children
	order    []int   // post-order traversal
	root     int
}

// adjEntry is one (neighbour, edge) pair of the undirected adjacency used
// while rooting the tree.
type adjEntry struct{ node, edge int }

// option is a DP state at a node. mode SELF: no light requested from the
// parent; all optical structure below is sealed. mode RECV: the node
// expects light from an optical parent edge; recvLoss describes the open
// cone.
type option struct {
	labels      []Label
	pow         float64
	recvLoss    float64
	sealedWorst float64
	domainAtTop bool // SELF only: a modulator sits at this node
}

// partial is the in-progress merge state at a node.
type partial struct {
	labels      []Label
	pow         float64
	arms        int
	maxArmLoss  float64
	sealedWorst float64
	hasEChild   bool
}

// frame is one node of the domain-decode walk in evaluateRooted. The
// waveguide path back to the domain top is reconstructed from the rooted
// parent chain at exit nodes, so frames carry only scalars.
type frame struct {
	node    int
	lossDB  float64
	crossDB float64
}

// Workspace owns every transient buffer Generate and Evaluate need: the
// rooted-tree index, the DP option/partial lists, the label arena, and the
// decode-walk scratch. Reusing one Workspace across calls makes steady-state
// candidate generation nearly allocation-free. A Workspace is not safe for
// concurrent use; give each worker its own (see internal/parallel.Scratch).
type Workspace struct {
	r       rooted
	adj     [][]adjEntry
	stack   []int
	visited []bool
	pre     []int

	labels     labelArena
	edgeLossDB []float64
	edgeElecP  []float64
	selfOpts   [][]option
	recvOpts   [][]option
	partials   []partial
	next       []partial
	selfs      []option
	recvs      []option

	frames []frame
	chain  []int
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// labelArena is a bump allocator for the DP's short-lived label vectors.
// All outstanding slices are invalidated by reset; slices that must outlive
// a Generate call (Candidate.Labels) are copied out.
type labelArena struct {
	blocks [][]Label
	cur    int
	off    int
}

// reset rewinds the arena, keeping its blocks for reuse.
func (a *labelArena) reset() { a.cur, a.off = 0, 0 }

// alloc returns an uninitialised label slice of length n from the arena.
func (a *labelArena) alloc(n int) []Label {
	if n == 0 {
		return nil
	}
	for {
		if a.cur < len(a.blocks) {
			b := a.blocks[a.cur]
			if len(b)-a.off >= n {
				s := b[a.off : a.off+n : a.off+n]
				a.off += n
				return s
			}
			a.cur++
			a.off = 0
			continue
		}
		size := 4096
		if n > size {
			size = n
		}
		a.blocks = append(a.blocks, make([]Label, size))
	}
}

// allocZero is alloc with every element set to Electrical.
func (a *labelArena) allocZero(n int) []Label {
	s := a.alloc(n)
	for i := range s {
		s[i] = Electrical
	}
	return s
}

// merge returns the element-wise Optical-union of x and y in a fresh arena
// slice of length n.
func (a *labelArena) merge(x, y []Label, n int) []Label {
	out := a.alloc(n)
	for i := range out {
		if x[i] == Optical || y[i] == Optical {
			out[i] = Optical
		} else {
			out[i] = Electrical
		}
	}
	return out
}

// growInts returns s resized to length n, reusing capacity when possible.
// Contents are unspecified.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growFloats is growInts for float64 slices.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// buildRooted roots the tree at terminal 0 into the workspace's reusable
// rooted index, validating shape and connectivity inline (the DFS visits
// every node exactly when the edge set forms one tree).
func (ws *Workspace) buildRooted(t steiner.Tree) (*rooted, error) {
	n := len(t.Nodes)
	if n == 0 {
		return nil, fmt.Errorf("codesign: empty tree")
	}
	if len(t.Edges) != n-1 {
		return nil, fmt.Errorf("codesign: %d nodes but %d edges", n, len(t.Edges))
	}
	root := -1
	for i, nd := range t.Nodes {
		if nd.Terminal == 0 {
			root = i
			break
		}
	}
	if root < 0 {
		return nil, fmt.Errorf("codesign: tree has no terminal 0 (source)")
	}
	r := &ws.r
	r.tree = t
	r.root = root
	r.parent = growInts(r.parent, n)
	r.parentE = growInts(r.parentE, n)
	r.order = growInts(r.order, n)
	for len(r.children) < n {
		r.children = append(r.children, nil)
	}
	for len(r.childE) < n {
		r.childE = append(r.childE, nil)
	}
	for len(ws.adj) < n {
		ws.adj = append(ws.adj, nil)
	}
	for i := 0; i < n; i++ {
		r.parent[i] = -1
		r.parentE[i] = -1
		r.children[i] = r.children[i][:0]
		r.childE[i] = r.childE[i][:0]
		ws.adj[i] = ws.adj[i][:0]
	}
	for ei, e := range t.Edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("codesign: edge %d endpoints out of range", ei)
		}
		ws.adj[e.U] = append(ws.adj[e.U], adjEntry{e.V, ei})
		ws.adj[e.V] = append(ws.adj[e.V], adjEntry{e.U, ei})
	}
	if cap(ws.visited) < n {
		ws.visited = make([]bool, n)
	}
	visited := ws.visited[:n]
	for i := range visited {
		visited[i] = false
	}
	// Iterative DFS producing children lists and a post-order.
	stack := ws.stack[:0]
	stack = append(stack, root)
	visited[root] = true
	pre := ws.pre[:0]
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pre = append(pre, u)
		for _, a := range ws.adj[u] {
			if !visited[a.node] {
				visited[a.node] = true
				r.parent[a.node] = u
				r.parentE[a.node] = a.edge
				r.children[u] = append(r.children[u], a.node)
				r.childE[u] = append(r.childE[u], a.edge)
				stack = append(stack, a.node)
			}
		}
	}
	ws.stack, ws.pre = stack, pre
	if len(pre) != n {
		return nil, fmt.Errorf("codesign: tree is disconnected (%d of %d reachable)", len(pre), n)
	}
	// Reverse preorder of a tree is a valid post-order (children before
	// parents).
	for i, u := range pre {
		r.order[len(pre)-1-i] = u
	}
	return r, nil
}

// isSink reports whether node u is a sink terminal.
func (r *rooted) isSink(u int) bool {
	term := r.tree.Nodes[u].Terminal
	return term > 0
}

func (r *rooted) edgeSeg(ei int) geom.Segment {
	e := r.tree.Edges[ei]
	return geom.Segment{A: r.tree.Nodes[e.U].Pt, B: r.tree.Nodes[e.V].Pt}
}

// sortPartialsByPow is an in-place, allocation-free heapsort of ps by
// ascending pow (sort.Slice allocates a closure and a swapper per call,
// which dominates the DP's allocation profile).
func sortPartialsByPow(ps []partial) {
	n := len(ps)
	for i := n/2 - 1; i >= 0; i-- {
		siftPartial(ps, i, n)
	}
	for i := n - 1; i > 0; i-- {
		ps[0], ps[i] = ps[i], ps[0]
		siftPartial(ps, 0, i)
	}
}

func siftPartial(ps []partial, lo, hi int) {
	root := lo
	for {
		c := 2*root + 1
		if c >= hi {
			return
		}
		if c+1 < hi && ps[c+1].pow > ps[c].pow {
			c++
		}
		if ps[c].pow <= ps[root].pow {
			return
		}
		ps[root], ps[c] = ps[c], ps[root]
		root = c
	}
}

// sortOptionsByPow is sortPartialsByPow for option lists.
func sortOptionsByPow(os []option) {
	n := len(os)
	for i := n/2 - 1; i >= 0; i-- {
		siftOption(os, i, n)
	}
	for i := n - 1; i > 0; i-- {
		os[0], os[i] = os[i], os[0]
		siftOption(os, 0, i)
	}
}

func siftOption(os []option, lo, hi int) {
	root := lo
	for {
		c := 2*root + 1
		if c >= hi {
			return
		}
		if c+1 < hi && os[c+1].pow > os[c].pow {
			c++
		}
		if os[c].pow <= os[root].pow {
			return
		}
		os[root], os[c] = os[c], os[root]
		root = c
	}
}

// prunePartials sorts ps by power and compacts it in place to the
// non-dominated prefix, capped at maxKeep entries.
func prunePartials(ps []partial, maxKeep int) []partial {
	sortPartialsByPow(ps)
	k := 0
	for i := range ps {
		p := ps[i]
		dominated := false
		for j := 0; j < k; j++ {
			kp := &ps[j]
			if kp.pow <= p.pow+geom.Eps &&
				kp.maxArmLoss <= p.maxArmLoss+geom.Eps &&
				kp.arms <= p.arms &&
				kp.sealedWorst <= p.sealedWorst+geom.Eps &&
				kp.hasEChild == p.hasEChild {
				dominated = true
				break
			}
		}
		if !dominated {
			ps[k] = p
			k++
			if k >= maxKeep {
				break
			}
		}
	}
	return ps[:k]
}

// pruneOptions is prunePartials over option lists; keepLoss additionally
// treats recvLoss as a pruning coordinate (RECV options).
func pruneOptions(os []option, keepLoss bool, maxKeep int) []option {
	sortOptionsByPow(os)
	k := 0
	for i := range os {
		o := os[i]
		dominated := false
		for j := 0; j < k; j++ {
			kp := &os[j]
			if kp.pow <= o.pow+geom.Eps &&
				kp.sealedWorst <= o.sealedWorst+geom.Eps &&
				(!keepLoss || kp.recvLoss <= o.recvLoss+geom.Eps) &&
				kp.domainAtTop == o.domainAtTop {
				dominated = true
				break
			}
		}
		if !dominated {
			os[k] = o
			k++
			if k >= maxKeep {
				break
			}
		}
	}
	return os[:k]
}

// Generate runs the co-design DP and returns the pruned candidate set,
// always including the pure-electrical fallback (last, marked
// AllElectrical). Candidates whose estimated worst path loss exceeds the
// budget are discarded during the DP.
func Generate(in Input) ([]Candidate, error) { return GenerateWS(in, nil) }

// GenerateWS is Generate with an explicit workspace; a nil ws allocates a
// throwaway one. The returned candidates own all their slices — nothing
// aliases ws — so the same workspace can serve the next net immediately.
func GenerateWS(in Input, ws *Workspace) ([]Candidate, error) {
	if ws == nil {
		ws = NewWorkspace()
	}
	if in.Bits <= 0 {
		return nil, fmt.Errorf("codesign: bits %d must be positive", in.Bits)
	}
	if err := in.Lib.Validate(); err != nil {
		return nil, err
	}
	if err := in.Elec.Validate(); err != nil {
		return nil, err
	}
	r, err := ws.buildRooted(in.Tree)
	if err != nil {
		return nil, err
	}
	maxOpts := in.MaxOptions
	if maxOpts == 0 {
		maxOpts = 24
	}

	nNodes := len(in.Tree.Nodes)
	nEdges := len(in.Tree.Edges)
	bits := float64(in.Bits)
	modP := in.Lib.ConversionPowerMW(1, 0) * bits
	detP := in.Lib.ConversionPowerMW(0, 1) * bits

	ws.edgeLossDB = growFloats(ws.edgeLossDB, nEdges)
	ws.edgeElecP = growFloats(ws.edgeElecP, nEdges)
	edgeLossDB, edgeElecP := ws.edgeLossDB, ws.edgeElecP
	for ei := range in.Tree.Edges {
		seg := r.edgeSeg(ei)
		crossings := geom.CrossingsWithSegment(seg, in.Env)
		edgeLossDB[ei] = in.Lib.PropagationLossDB(seg.Length()) +
			in.Lib.CrossingLossDB(crossings)
		edgeElecP[ei] = in.Elec.BusPowerMW(seg.ManhattanLength(), in.Bits)
	}

	for len(ws.selfOpts) < nNodes {
		ws.selfOpts = append(ws.selfOpts, nil)
	}
	for len(ws.recvOpts) < nNodes {
		ws.recvOpts = append(ws.recvOpts, nil)
	}
	selfOpts, recvOpts := ws.selfOpts, ws.recvOpts

	la := &ws.labels
	la.reset()

	for _, v := range r.order {
		partials := ws.partials[:0]
		partials = append(partials, partial{labels: la.allocZero(nEdges), maxArmLoss: math.Inf(-1)})
		next := ws.next
		for ci, c := range r.children[v] {
			ei := r.childE[v][ci]
			next = next[:0]
			for _, p := range partials {
				// Label the edge Electrical: consume the child's SELF options.
				for _, co := range selfOpts[c] {
					lb := la.merge(p.labels, co.labels, nEdges)
					lb[ei] = Electrical
					next = append(next, partial{
						labels:      lb,
						pow:         p.pow + co.pow + edgeElecP[ei],
						arms:        p.arms,
						maxArmLoss:  p.maxArmLoss,
						sealedWorst: math.Max(p.sealedWorst, co.sealedWorst),
						hasEChild:   true,
					})
				}
				// Label the edge Optical.
				for _, co := range recvOpts[c] {
					lb := la.merge(p.labels, co.labels, nEdges)
					lb[ei] = Optical
					next = append(next, partial{
						labels:      lb,
						pow:         p.pow + co.pow,
						arms:        p.arms + 1,
						maxArmLoss:  math.Max(p.maxArmLoss, edgeLossDB[ei]+co.recvLoss),
						sealedWorst: math.Max(p.sealedWorst, co.sealedWorst),
						hasEChild:   p.hasEChild,
					})
				}
				// Optical edge ending at a sealed child: a pure exit with a
				// detector at the child. Forbidden when the child hosts its
				// own modulator (no OEO regeneration at a single node).
				for _, co := range selfOpts[c] {
					if co.domainAtTop {
						continue
					}
					lb := la.merge(p.labels, co.labels, nEdges)
					lb[ei] = Optical
					next = append(next, partial{
						labels:      lb,
						pow:         p.pow + co.pow + detP,
						arms:        p.arms + 1,
						maxArmLoss:  math.Max(p.maxArmLoss, edgeLossDB[ei]),
						sealedWorst: math.Max(p.sealedWorst, co.sealedWorst),
						hasEChild:   p.hasEChild,
					})
				}
			}
			partials, next = prunePartials(next, maxOpts*4), partials
		}

		// Finalize the node's options.
		selfs, recvs := ws.selfs[:0], ws.recvs[:0]
		for _, p := range partials {
			if p.arms == 0 {
				selfs = append(selfs, option{
					labels: p.labels, pow: p.pow, sealedWorst: p.sealedWorst,
				})
			} else {
				loss := p.maxArmLoss + optics.SplittingLossDB(p.arms)
				if in.Lib.Detectable(loss) {
					selfs = append(selfs, option{
						labels:      p.labels,
						pow:         p.pow + modP,
						sealedWorst: math.Max(p.sealedWorst, loss),
						domainAtTop: true,
					})
				}
			}
			if v != r.root {
				selfExit := r.isSink(v) || p.hasEChild || len(r.children[v]) == 0
				armsTotal := p.arms
				pow := p.pow
				if selfExit {
					armsTotal++
					pow += detP
				}
				if armsTotal == 0 {
					continue // light delivered to a node that uses none of it
				}
				split := optics.SplittingLossDB(armsTotal)
				worst := split
				if p.arms > 0 {
					worst = split + math.Max(p.maxArmLoss, 0)
					if !selfExit {
						worst = split + p.maxArmLoss
					}
				}
				if worst <= in.Lib.MaxLossDB { // quick bound; exact check at seal
					recvs = append(recvs, option{
						labels: p.labels, pow: pow, recvLoss: worst,
						sealedWorst: p.sealedWorst,
					})
				}
			}
		}
		ws.selfs, ws.recvs = selfs, recvs
		// Copy the pruned option lists into the per-node buffers so the
		// shared selfs/recvs scratch can be reused at the next node.
		selfOpts[v] = append(selfOpts[v][:0], pruneOptions(selfs, false, maxOpts)...)
		recvOpts[v] = append(recvOpts[v][:0], pruneOptions(recvs, true, maxOpts)...)
		ws.partials, ws.next = partials, next
	}

	// Root SELF options are the candidate labelings.
	var out []Candidate
	sawAllE := false
	for _, o := range selfOpts[r.root] {
		cand, feasible := evaluateRooted(in, r, o.labels, ws)
		if !feasible {
			continue
		}
		if cand.AllElectrical {
			if sawAllE {
				continue
			}
			sawAllE = true
		}
		out = append(out, cand)
	}
	if !sawAllE {
		allE, _ := evaluateRooted(in, r, la.allocZero(nEdges), ws)
		out = append(out, allE)
	}
	out = paretoFilter(out)
	// Order candidates by power, with the pure-electrical fallback last.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].AllElectrical != out[j].AllElectrical {
			return !out[i].AllElectrical
		}
		return out[i].PowerMW < out[j].PowerMW
	})
	return out, nil
}

// Evaluate decodes a labeling into a full Candidate. The decode rules are:
// a node with at least one Optical child edge hosts a modulator iff it is
// the root or its parent edge is Electrical; along optical domains a node
// takes a detector drop iff it is a sink terminal, has an Electrical child
// edge, or is a leaf; fan-out at a node splits the light over its optical
// child arms plus its own drop. The boolean result reports whether every
// optical path satisfies the loss budget under the Env-estimated crossing
// loss.
func Evaluate(in Input, labels []Label) (Candidate, bool) {
	return EvaluateWS(in, labels, nil)
}

// EvaluateWS is Evaluate with an explicit workspace (nil allocates a
// throwaway one). The returned Candidate owns its slices; nothing aliases ws.
func EvaluateWS(in Input, labels []Label, ws *Workspace) (Candidate, bool) {
	if ws == nil {
		ws = NewWorkspace()
	}
	r, err := ws.buildRooted(in.Tree)
	if err != nil {
		return Candidate{}, false
	}
	return evaluateRooted(in, r, labels, ws)
}

// evaluateRooted is the decode core behind Evaluate; r must be ws.buildRooted
// of in.Tree, which lets Generate decode every root option without re-rooting
// the tree each time.
func evaluateRooted(in Input, r *rooted, labels []Label, ws *Workspace) (Candidate, bool) {
	if len(labels) != len(in.Tree.Edges) {
		return Candidate{}, false
	}
	bits := in.Bits
	c := Candidate{Labels: append([]Label(nil), labels...)}

	// Electrical power and optical segment collection, with exact-size
	// allocations (these slices escape into the candidate).
	nOpt := 0
	for _, l := range labels {
		if l == Optical {
			nOpt++
		}
	}
	if nOpt > 0 {
		c.OpticalSegs = make([]geom.Segment, 0, nOpt)
	}
	if nElec := len(labels) - nOpt; nElec > 0 {
		c.ElecSegs = make([]geom.Segment, 0, nElec)
	}
	for ei, e := range in.Tree.Edges {
		seg := geom.Segment{A: in.Tree.Nodes[e.U].Pt, B: in.Tree.Nodes[e.V].Pt}
		if labels[ei] == Electrical {
			c.ElecWirelenCM += seg.ManhattanLength()
			c.ElecSegs = append(c.ElecSegs, seg)
		} else {
			c.OpticalSegs = append(c.OpticalSegs, seg)
		}
	}
	c.PowerMW = in.Elec.BusPowerMW(c.ElecWirelenCM, bits)
	c.AllElectrical = len(c.OpticalSegs) == 0

	modP := in.Lib.ConversionPowerMW(1, 0) * float64(bits)
	detP := in.Lib.ConversionPowerMW(0, 1) * float64(bits)

	// Decode optical domains.
	feasible := true
	for v := range in.Tree.Nodes {
		if !isDomainTop(r, labels, v) {
			continue
		}
		c.NumMod++
		c.PowerMW += modP
		c.ModSites = append(c.ModSites, in.Tree.Nodes[v].Pt)
		// Walk the domain from its top, accumulating loss along each path.
		stack := ws.frames[:0]
		stack = append(stack, frame{node: v})
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			u := f.node
			nOptCh := 0
			hasEChild := false
			for ci := range r.children[u] {
				if labels[r.childE[u][ci]] == Optical {
					nOptCh++
				} else {
					hasEChild = true
				}
			}
			selfExit := u != v && (r.isSink(u) || hasEChild || len(r.children[u]) == 0)
			arms := nOptCh
			if selfExit {
				arms++
			}
			split := optics.SplittingLossDB(arms)
			if selfExit {
				c.NumDet++
				c.PowerMW += detP
				c.DetSites = append(c.DetSites, in.Tree.Nodes[u].Pt)
				p := Path{
					Segs:           pathSegs(r, v, u, ws),
					FixedLossDB:    f.lossDB + split,
					EstCrossLossDB: f.crossDB,
				}
				c.Paths = append(c.Paths, p)
				if !in.Lib.Detectable(p.TotalEstLossDB()) {
					feasible = false
				}
			}
			for ci, ch := range r.children[u] {
				ei := r.childE[u][ci]
				if labels[ei] != Optical {
					continue
				}
				seg := r.edgeSeg(ei)
				crossings := geom.CrossingsWithSegment(seg, in.Env)
				stack = append(stack, frame{
					node:    ch,
					lossDB:  f.lossDB + split + in.Lib.PropagationLossDB(seg.Length()),
					crossDB: f.crossDB + in.Lib.CrossingLossDB(crossings),
				})
			}
		}
		ws.frames = stack
	}
	for _, p := range c.Paths {
		if p.FixedLossDB > c.MaxFixedLossDB {
			c.MaxFixedLossDB = p.FixedLossDB
		}
	}
	return c, feasible
}

// pathSegs reconstructs the waveguide path from domain top to exit node u
// by walking the rooted parent chain — every edge on it is optical by
// construction of the domain walk. The result is a fresh exact-size slice
// (it escapes into the candidate); only the chain index buffer is reused.
func pathSegs(r *rooted, top, u int, ws *Workspace) []geom.Segment {
	chain := ws.chain[:0]
	for x := u; x != top; x = r.parent[x] {
		chain = append(chain, r.parentE[x])
	}
	ws.chain = chain
	segs := make([]geom.Segment, len(chain))
	for i := range segs {
		segs[i] = r.edgeSeg(chain[len(chain)-1-i])
	}
	return segs
}

// paretoFilter drops candidates strictly dominated in (power, worst fixed
// path loss) by another candidate. The electrical fallback (zero optical
// loss) is never dominated and always survives.
func paretoFilter(cands []Candidate) []Candidate {
	var kept []Candidate
	for i, c := range cands {
		dominated := false
		for j, o := range cands {
			if i == j {
				continue
			}
			// Strict domination in both coordinates, with index tie-break
			// to keep exactly one of exact duplicates.
			better := o.PowerMW < c.PowerMW-geom.Eps && o.MaxFixedLossDB < c.MaxFixedLossDB-geom.Eps
			duplicate := math.Abs(o.PowerMW-c.PowerMW) <= geom.Eps &&
				math.Abs(o.MaxFixedLossDB-c.MaxFixedLossDB) <= geom.Eps && j < i
			if better || duplicate {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, c)
		}
	}
	return kept
}

// isDomainTop reports whether node v hosts a modulator under the labeling:
// it has at least one Optical child edge and no Optical parent edge.
func isDomainTop(r *rooted, labels []Label, v int) bool {
	hasOptChild := false
	for ci := range r.children[v] {
		if labels[r.childE[v][ci]] == Optical {
			hasOptChild = true
			break
		}
	}
	if !hasOptChild {
		return false
	}
	return v == r.root || labels[r.parentE[v]] == Electrical
}
