package codesign

import (
	"math"
	"math/rand"
	"testing"

	"operon/internal/geom"
	"operon/internal/optics"
	"operon/internal/power"
	"operon/internal/steiner"
)

func testInput(terminals []geom.Point, bits int) Input {
	return Input{
		Tree: steiner.BI1S(terminals, steiner.Euclidean, steiner.BI1SConfig{}),
		Bits: bits,
		Lib:  optics.DefaultLibrary(),
		Elec: power.DefaultElectricalModel(),
	}
}

func randTerminals(n int, seed int64, spread float64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * spread, Y: rng.Float64() * spread}
	}
	return pts
}

func TestGenerateValidation(t *testing.T) {
	in := testInput(randTerminals(3, 1, 2), 8)
	in.Bits = 0
	if _, err := Generate(in); err == nil {
		t.Error("bits 0 accepted")
	}
	in = testInput(randTerminals(3, 1, 2), 8)
	in.Lib.MaxLossDB = 0
	if _, err := Generate(in); err == nil {
		t.Error("invalid library accepted")
	}
}

func TestGenerateAlwaysIncludesElectricalFallback(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := testInput(randTerminals(4, seed, 3), 16)
		cands, err := Generate(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) == 0 {
			t.Fatal("no candidates")
		}
		last := cands[len(cands)-1]
		if !last.AllElectrical {
			t.Fatal("last candidate is not the electrical fallback")
		}
		if last.NumMod != 0 || last.NumDet != 0 || len(last.OpticalSegs) != 0 {
			t.Fatalf("electrical fallback has optical content: %+v", last)
		}
		count := 0
		for _, c := range cands {
			if c.AllElectrical {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("%d electrical fallbacks, want 1", count)
		}
	}
}

func TestTwoPinCandidates(t *testing.T) {
	// A long 2-pin connection: candidates must include the fully optical
	// route (1 modulator, 1 detector) and the electrical fallback.
	in := testInput([]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}}, 16)
	cands, err := Generate(in)
	if err != nil {
		t.Fatal(err)
	}
	var optical *Candidate
	for i := range cands {
		if !cands[i].AllElectrical {
			optical = &cands[i]
		}
	}
	if optical == nil {
		t.Fatal("no optical candidate for a long 2-pin net")
	}
	if optical.NumMod != 1 || optical.NumDet != 1 {
		t.Errorf("optical 2-pin: mod=%d det=%d, want 1/1", optical.NumMod, optical.NumDet)
	}
	if len(optical.Paths) != 1 {
		t.Fatalf("optical 2-pin paths = %d, want 1", len(optical.Paths))
	}
	wantLoss := 1.5 * 3 // α · 3 cm, no splits, no crossings
	if math.Abs(optical.Paths[0].FixedLossDB-wantLoss) > 1e-9 {
		t.Errorf("path loss = %v, want %v", optical.Paths[0].FixedLossDB, wantLoss)
	}
	// Optical should beat electrical on power for this distance at 16 bits.
	elec := cands[len(cands)-1]
	if optical.PowerMW >= elec.PowerMW {
		t.Errorf("optical %v mW not cheaper than electrical %v mW",
			optical.PowerMW, elec.PowerMW)
	}
}

func TestShortNetPrefersElectrical(t *testing.T) {
	// A very short connection: EO/OE conversion overhead dominates, so the
	// cheapest candidate should be the electrical one.
	in := testInput([]geom.Point{{X: 0, Y: 0}, {X: 0.05, Y: 0}}, 4)
	cands, err := Generate(in)
	if err != nil {
		t.Fatal(err)
	}
	best := cands[0]
	for _, c := range cands {
		if c.PowerMW < best.PowerMW {
			best = c
		}
	}
	if !best.AllElectrical {
		t.Errorf("short net best candidate uses optics: %+v", best)
	}
}

func TestSplittingLossAccounted(t *testing.T) {
	// A symmetric 1-source 2-sink star: the fully-optical solution splits
	// at the source or at a Steiner point; either way each path must carry
	// ≈3.01 dB splitting loss.
	in := testInput([]geom.Point{
		{X: 0, Y: 0}, {X: 2, Y: 1}, {X: 2, Y: -1},
	}, 16)
	cands, err := Generate(in)
	if err != nil {
		t.Fatal(err)
	}
	var full *Candidate
	for i := range cands {
		c := &cands[i]
		if c.NumDet == 2 && c.NumMod == 1 {
			full = c
			break
		}
	}
	if full == nil {
		t.Skip("no fully-optical candidate survived (budget)")
	}
	for _, p := range full.Paths {
		if p.FixedLossDB < optics.SplittingLossDB(2)-1e-9 {
			t.Errorf("path loss %v lacks splitting loss", p.FixedLossDB)
		}
	}
}

func TestLossBudgetFiltersCandidates(t *testing.T) {
	// With a tiny budget nothing optical survives.
	in := testInput(randTerminals(5, 3, 4), 8)
	in.Lib.MaxLossDB = 0.01
	cands, err := Generate(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if !c.AllElectrical {
			t.Fatalf("candidate with optics survived a 0.01 dB budget: %+v", c)
		}
	}
}

func TestEvaluateMatchesGenerate(t *testing.T) {
	// Every candidate's recorded power must equal an independent
	// re-evaluation of its labeling.
	for seed := int64(0); seed < 15; seed++ {
		in := testInput(randTerminals(4, seed, 3), 8)
		cands, err := Generate(in)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range cands {
			re, feasible := Evaluate(in, c.Labels)
			if !feasible {
				t.Errorf("seed %d cand %d: infeasible on re-evaluation", seed, i)
			}
			if math.Abs(re.PowerMW-c.PowerMW) > 1e-9 {
				t.Errorf("seed %d cand %d: power %v vs re-eval %v",
					seed, i, c.PowerMW, re.PowerMW)
			}
			if re.NumMod != c.NumMod || re.NumDet != c.NumDet {
				t.Errorf("seed %d cand %d: conversions differ", seed, i)
			}
		}
	}
}

// enumerateBest exhaustively labels all edges and returns the minimum
// feasible power — the brute-force oracle for the DP.
func enumerateBest(in Input) float64 {
	nE := len(in.Tree.Edges)
	best := math.Inf(1)
	for mask := 0; mask < 1<<nE; mask++ {
		labels := make([]Label, nE)
		for i := 0; i < nE; i++ {
			if mask&(1<<i) != 0 {
				labels[i] = Optical
			}
		}
		c, feasible := Evaluate(in, labels)
		if feasible && c.PowerMW < best {
			best = c.PowerMW
		}
	}
	return best
}

func TestDPMatchesExhaustiveEnumeration(t *testing.T) {
	// Property: the DP's cheapest candidate equals the cheapest feasible
	// labeling found by brute force (over small trees).
	for seed := int64(0); seed < 25; seed++ {
		n := 3 + int(seed%3)
		in := testInput(randTerminals(n, seed*7+1, 3), 8)
		if len(in.Tree.Edges) > 12 {
			continue
		}
		cands, err := Generate(in)
		if err != nil {
			t.Fatal(err)
		}
		dpBest := math.Inf(1)
		for _, c := range cands {
			if c.PowerMW < dpBest {
				dpBest = c.PowerMW
			}
		}
		oracle := enumerateBest(in)
		if math.Abs(dpBest-oracle) > 1e-6 {
			t.Errorf("seed %d: DP best %.6f vs oracle %.6f", seed, dpBest, oracle)
		}
	}
}

func TestCrossingEnvironmentRaisesLoss(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}}
	base := testInput(pts, 8)
	noEnv, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	// Add many crossing waveguides over the route.
	withEnv := base
	for i := 0; i < 5; i++ {
		x := 0.5 + float64(i)*0.5
		withEnv.Env = append(withEnv.Env, geom.Segment{
			A: geom.Point{X: x, Y: -1}, B: geom.Point{X: x, Y: 1},
		})
	}
	envCands, err := Generate(withEnv)
	if err != nil {
		t.Fatal(err)
	}
	lossOf := func(cands []Candidate) float64 {
		for _, c := range cands {
			if !c.AllElectrical && len(c.Paths) > 0 {
				return c.Paths[0].TotalEstLossDB()
			}
		}
		return -1
	}
	l0, l1 := lossOf(noEnv), lossOf(envCands)
	if l0 < 0 || l1 < 0 {
		t.Skip("no optical candidates to compare")
	}
	want := 5 * 0.52
	if math.Abs((l1-l0)-want) > 1e-9 {
		t.Errorf("crossing env raised loss by %v, want %v", l1-l0, want)
	}
}

func TestCandidatesParetoOverPowerAndLoss(t *testing.T) {
	// Among non-electrical candidates, no candidate should be strictly
	// dominated in (power, max fixed loss) by another.
	for seed := int64(0); seed < 10; seed++ {
		in := testInput(randTerminals(5, seed+100, 4), 16)
		cands, err := Generate(in)
		if err != nil {
			t.Fatal(err)
		}
		var opt []Candidate
		for _, c := range cands {
			if !c.AllElectrical {
				opt = append(opt, c)
			}
		}
		for i := range opt {
			for j := range opt {
				if i == j {
					continue
				}
				if opt[j].PowerMW < opt[i].PowerMW-1e-9 &&
					opt[j].MaxFixedLossDB < opt[i].MaxFixedLossDB-1e-9 {
					t.Errorf("seed %d: candidate %d strictly dominated by %d", seed, i, j)
				}
			}
		}
	}
}

func TestFig5CandidateShapes(t *testing.T) {
	// Mirror of the paper's Fig. 5: a 4-pin hyper net with a two-level
	// topology produces a candidate list with mixed O/E configurations,
	// including at least one mixed candidate that saves conversion
	// overheads on a short bottom branch.
	pts := []geom.Point{
		{X: 0, Y: 0},      // 1: source
		{X: 1.5, Y: 0},    // 2
		{X: 2.0, Y: 0.6},  // 3
		{X: 2.0, Y: -0.6}, // 4
	}
	in := testInput(pts, 16)
	cands, err := Generate(in)
	if err != nil {
		t.Fatal(err)
	}
	var pureO, mixed, pureE bool
	for _, c := range cands {
		switch {
		case c.AllElectrical:
			pureE = true
		case c.ElecWirelenCM == 0:
			pureO = true
		default:
			mixed = true
		}
	}
	if !pureE {
		t.Error("missing pure electrical candidate")
	}
	if !pureO && !mixed {
		t.Error("missing any optical candidate")
	}
	if len(cands) < 2 {
		t.Errorf("only %d candidates; Fig. 5 produces several", len(cands))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	in := testInput(randTerminals(5, 77, 4), 8)
	a, err := Generate(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic candidate count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i].PowerMW-b[i].PowerMW) > 1e-12 {
			t.Fatalf("candidate %d power differs", i)
		}
	}
}

func TestLabelString(t *testing.T) {
	if Electrical.String() != "E" || Optical.String() != "O" {
		t.Error("label names wrong")
	}
}
