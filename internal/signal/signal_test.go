package signal

import (
	"math/rand"
	"testing"

	"operon/internal/geom"
)

// busGroup builds a bundle of bits whose drivers sit in one region and whose
// sinks sit in nClusters other regions.
func busGroup(name string, bits, nSinkClusters int, seed int64) Group {
	rng := rand.New(rand.NewSource(seed))
	driverBase := geom.Point{X: rng.Float64(), Y: rng.Float64()}
	sinkBases := make([]geom.Point, nSinkClusters)
	for i := range sinkBases {
		sinkBases[i] = geom.Point{X: 1 + rng.Float64()*2, Y: 1 + rng.Float64()*2}
	}
	g := Group{Name: name}
	for b := 0; b < bits; b++ {
		jit := func(p geom.Point) geom.Point {
			return geom.Point{X: p.X + rng.Float64()*0.01, Y: p.Y + rng.Float64()*0.01}
		}
		bit := Bit{Driver: jit(driverBase)}
		for _, sb := range sinkBases {
			bit.Sinks = append(bit.Sinks, jit(sb))
		}
		g.Bits = append(g.Bits, bit)
	}
	return g
}

func TestBitValidate(t *testing.T) {
	if err := (Bit{}).Validate(); err == nil {
		t.Error("bit with no sinks accepted")
	}
	b := Bit{Driver: geom.Point{}, Sinks: []geom.Point{{X: 1, Y: 1}}}
	if err := b.Validate(); err != nil {
		t.Errorf("valid bit rejected: %v", err)
	}
}

func TestBitCentroid(t *testing.T) {
	b := Bit{Driver: geom.Point{X: 0, Y: 0}, Sinks: []geom.Point{{X: 2, Y: 0}, {X: 1, Y: 3}}}
	if got := b.Centroid(); !got.Eq(geom.Point{X: 1, Y: 1}) {
		t.Errorf("Centroid = %v", got)
	}
	if got := b.PinCount(); got != 3 {
		t.Errorf("PinCount = %d", got)
	}
}

func TestDesignValidate(t *testing.T) {
	if err := (Design{Name: "empty"}).Validate(); err == nil {
		t.Error("design with no groups accepted")
	}
	d := Design{Name: "bad", Groups: []Group{{Name: "g"}}}
	if err := d.Validate(); err == nil {
		t.Error("design with empty group accepted")
	}
}

func TestNetCount(t *testing.T) {
	d := Design{Groups: []Group{busGroup("a", 5, 1, 1), busGroup("b", 7, 2, 2)}}
	if got := d.NetCount(); got != 12 {
		t.Errorf("NetCount = %d, want 12", got)
	}
}

func TestProcessCapacity(t *testing.T) {
	d := Design{
		Name:   "t",
		Die:    geom.Rect{Hi: geom.Point{X: 4, Y: 4}},
		Groups: []Group{busGroup("bus", 70, 2, 3)},
	}
	nets, err := Process(d, ProcessConfig{WDMCapacity: 32, PinMergeThresholdCM: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// 70 bits with capacity 32 → at least 3 hyper nets, none above capacity.
	if len(nets) < 3 {
		t.Fatalf("want >=3 hyper nets, got %d", len(nets))
	}
	seen := map[int]bool{}
	total := 0
	for _, n := range nets {
		if n.BitCount() > 32 {
			t.Errorf("hyper net exceeds capacity: %d bits", n.BitCount())
		}
		if n.BitCount() == 0 {
			t.Error("empty hyper net")
		}
		for _, b := range n.Bits {
			if seen[b] {
				t.Errorf("bit %d in two hyper nets", b)
			}
			seen[b] = true
			total++
		}
	}
	if total != 70 {
		t.Errorf("hyper nets cover %d of 70 bits", total)
	}
}

func TestProcessHyperPinsStructure(t *testing.T) {
	d := Design{
		Name:   "t",
		Groups: []Group{busGroup("bus", 16, 3, 5)},
	}
	nets, err := Process(d, ProcessConfig{WDMCapacity: 32, PinMergeThresholdCM: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 1 {
		t.Fatalf("want 1 hyper net, got %d", len(nets))
	}
	n := nets[0]
	// Drivers in one region, sinks in three: expect 4 hyper pins.
	if len(n.Pins) != 4 {
		t.Fatalf("want 4 hyper pins, got %d", len(n.Pins))
	}
	src := n.Pins[n.Source]
	if src.Drivers != 16 {
		t.Errorf("source hyper pin has %d drivers, want 16", src.Drivers)
	}
	for i, p := range n.Pins {
		if i == n.Source {
			continue
		}
		if p.Drivers != 0 {
			t.Errorf("sink hyper pin %d has %d drivers", i, p.Drivers)
		}
		if p.Bits != 16 {
			t.Errorf("sink hyper pin %d aggregates %d bits, want 16", i, p.Bits)
		}
	}
}

func TestProcessRejectsBadCapacity(t *testing.T) {
	d := Design{Groups: []Group{busGroup("bus", 4, 1, 1)}}
	if _, err := Process(d, ProcessConfig{WDMCapacity: 0}); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestProcessDegenerateLocalNet(t *testing.T) {
	// All pins within the merge threshold: the degenerate split must still
	// produce a routable 2-pin hyper net.
	g := Group{Name: "local"}
	for i := 0; i < 4; i++ {
		g.Bits = append(g.Bits, Bit{
			Driver: geom.Point{X: 0.001 * float64(i), Y: 0},
			Sinks:  []geom.Point{{X: 0.001 * float64(i), Y: 0.001}},
		})
	}
	d := Design{Groups: []Group{g}}
	nets, err := Process(d, ProcessConfig{WDMCapacity: 32, PinMergeThresholdCM: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nets {
		if len(n.Pins) < 2 {
			t.Fatalf("degenerate hyper net has %d pins", len(n.Pins))
		}
		if n.Pins[n.Source].Drivers == 0 {
			t.Error("source hyper pin has no drivers")
		}
	}
}

func TestTerminalsSourceFirst(t *testing.T) {
	n := HyperNet{
		Pins: []HyperPin{
			{Centre: geom.Point{X: 1, Y: 1}},
			{Centre: geom.Point{X: 2, Y: 2}, Drivers: 3},
			{Centre: geom.Point{X: 3, Y: 3}},
		},
		Source: 1,
	}
	ts := n.Terminals()
	if len(ts) != 3 || !ts[0].Eq(geom.Point{X: 2, Y: 2}) {
		t.Fatalf("Terminals = %v", ts)
	}
	sp := n.SinkPins()
	if len(sp) != 2 || sp[0] != 0 || sp[1] != 2 {
		t.Fatalf("SinkPins = %v", sp)
	}
}

func TestSummarize(t *testing.T) {
	nets := []HyperNet{
		{Pins: make([]HyperPin, 3)},
		{Pins: make([]HyperPin, 2)},
	}
	s := Summarize(nets)
	if s.HyperNets != 2 || s.HyperPins != 5 {
		t.Fatalf("Summarize = %+v", s)
	}
}

func TestProcessDeterministic(t *testing.T) {
	d := Design{Groups: []Group{busGroup("bus", 40, 2, 7), busGroup("b2", 33, 3, 8)}}
	cfg := ProcessConfig{WDMCapacity: 16, PinMergeThresholdCM: 0.05, Seed: 42}
	a, err := Process(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Process(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic: %d vs %d hyper nets", len(a), len(b))
	}
	for i := range a {
		if a[i].BitCount() != b[i].BitCount() || len(a[i].Pins) != len(b[i].Pins) {
			t.Fatalf("hyper net %d differs between runs", i)
		}
	}
}
