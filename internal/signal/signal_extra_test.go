package signal

import (
	"encoding/json"
	"reflect"
	"testing"

	"operon/internal/geom"
)

func TestDesignJSONRoundTrip(t *testing.T) {
	// cmd/operon accepts designs as JSON; the exported model must survive
	// a marshal/unmarshal round trip exactly.
	d := Design{
		Name: "roundtrip",
		Die:  geom.Rect{Hi: geom.Point{X: 4, Y: 4}},
		Groups: []Group{
			{
				Name: "bus0",
				Bits: []Bit{
					{Driver: geom.Point{X: 0.5, Y: 1}, Sinks: []geom.Point{{X: 2, Y: 1}, {X: 3, Y: 1.5}}},
					{Driver: geom.Point{X: 0.5, Y: 1.1}, Sinks: []geom.Point{{X: 2, Y: 1.1}}},
				},
			},
		},
	}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Design
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("round trip differs:\n%+v\nvs\n%+v", d, back)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHyperNetBitsWithinGroup(t *testing.T) {
	// Every bit index in a hyper net must refer into its own group.
	d := Design{Groups: []Group{busGroup("a", 40, 2, 1), busGroup("b", 50, 1, 2)}}
	nets, err := Process(d, ProcessConfig{WDMCapacity: 16, PinMergeThresholdCM: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int{"a": 40, "b": 50}
	perGroup := map[string]int{}
	for _, n := range nets {
		limit := sizes[n.Group]
		if limit == 0 {
			t.Fatalf("hyper net references unknown group %q", n.Group)
		}
		for _, b := range n.Bits {
			if b < 0 || b >= limit {
				t.Fatalf("group %s: bit index %d out of range %d", n.Group, b, limit)
			}
		}
		perGroup[n.Group] += n.BitCount()
	}
	if perGroup["a"] != 40 || perGroup["b"] != 50 {
		t.Fatalf("bit coverage per group: %v", perGroup)
	}
}

func TestHyperPinPinCountsConsistent(t *testing.T) {
	d := Design{Groups: []Group{busGroup("g", 20, 2, 9)}}
	nets, err := Process(d, ProcessConfig{WDMCapacity: 32, PinMergeThresholdCM: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nets {
		totalPins := 0
		for _, p := range n.Pins {
			if len(p.Pins) == 0 {
				t.Fatal("empty hyper pin")
			}
			if p.Bits <= 0 || p.Bits > n.BitCount() {
				t.Fatalf("hyper pin bit count %d outside 1..%d", p.Bits, n.BitCount())
			}
			totalPins += len(p.Pins)
		}
		// Each bit contributes 1 driver + 2 sinks = 3 pins.
		if want := n.BitCount() * 3; totalPins != want {
			t.Fatalf("hyper pins cover %d electrical pins, want %d", totalPins, want)
		}
	}
}
