// Package signal defines OPERON's on-chip signal model (paper §2.3) and the
// signal-processing stage (§3.1) that turns raw signal groups into hyper
// nets with hyper pins.
//
// A signal group is a bundle of performance-critical bits (e.g. a bus
// between logic and a memory interface). Each bit is a multi-pin net: one
// driver pin plus one or more sink pins. Signal processing partitions a
// group's bits into hyper nets respecting the WDM channel capacity
// (top-down capacitated K-Means) and merges neighbouring electrical pins
// into hyper pins (bottom-up agglomerative clustering), producing the
// reduced problem the router operates on.
package signal

import (
	"fmt"

	"operon/internal/cluster"
	"operon/internal/geom"
	"operon/internal/parallel"
)

// Bit is a single signal bit: a multi-pin net with one driver and at least
// one sink.
type Bit struct {
	Driver geom.Point
	Sinks  []geom.Point
}

// PinCount returns the total number of electrical pins of the bit.
func (b Bit) PinCount() int { return 1 + len(b.Sinks) }

// Centroid returns the gravity centre of all the bit's pins, used as the
// bit's location during hyper-net clustering.
func (b Bit) Centroid() geom.Point {
	pts := make([]geom.Point, 0, b.PinCount())
	pts = append(pts, b.Driver)
	pts = append(pts, b.Sinks...)
	return geom.Centroid(pts)
}

// Validate reports whether the bit is well-formed.
func (b Bit) Validate() error {
	if len(b.Sinks) == 0 {
		return fmt.Errorf("signal: bit has no sinks")
	}
	return nil
}

// Group is a named bundle of bits routed together.
type Group struct {
	Name string
	Bits []Bit
}

// Validate reports whether the group is well-formed.
func (g Group) Validate() error {
	if len(g.Bits) == 0 {
		return fmt.Errorf("signal: group %q has no bits", g.Name)
	}
	for i, b := range g.Bits {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("signal: group %q bit %d: %w", g.Name, i, err)
		}
	}
	return nil
}

// Design is a complete routing problem: the chip outline and the signal
// groups to route.
type Design struct {
	Name   string
	Die    geom.Rect
	Groups []Group
}

// NetCount returns the total number of signal bits in the design (the
// paper's "#Net" column).
func (d Design) NetCount() int {
	n := 0
	for _, g := range d.Groups {
		n += len(g.Bits)
	}
	return n
}

// Validate reports whether the design is well-formed.
func (d Design) Validate() error {
	if len(d.Groups) == 0 {
		return fmt.Errorf("signal: design %q has no groups", d.Name)
	}
	for _, g := range d.Groups {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// HyperPin is a pseudo pin representing a set of neighbouring electrical
// pins (paper §3.1.2). Centre is the gravity centre of its members; Pins
// lists the member pin locations; Bits counts the distinct bits whose pins
// it aggregates, i.e. the number of parallel connections entering the
// hyper pin; Drivers counts the member pins that are drivers.
type HyperPin struct {
	Centre  geom.Point
	Pins    []geom.Point
	Bits    int
	Drivers int
}

// HyperNet bundles the bits of one capacity-respecting cluster (paper
// §3.1.1) behind a set of hyper pins. Source indexes the hyper pin that
// holds the most driver pins; it is the root of the routing topology.
type HyperNet struct {
	Group  string
	Bits   []int // indices into the owning Group's Bits
	Pins   []HyperPin
	Source int
}

// BitCount returns the number of parallel bits (wavelength channels) the
// hyper net carries.
func (h HyperNet) BitCount() int { return len(h.Bits) }

// SinkPins returns the indices of the non-source hyper pins.
func (h HyperNet) SinkPins() []int {
	out := make([]int, 0, len(h.Pins)-1)
	for i := range h.Pins {
		if i != h.Source {
			out = append(out, i)
		}
	}
	return out
}

// Terminals returns the hyper-pin centres with the source first, the layout
// the routing stage expects.
func (h HyperNet) Terminals() []geom.Point {
	out := make([]geom.Point, 0, len(h.Pins))
	out = append(out, h.Pins[h.Source].Centre)
	for i, p := range h.Pins {
		if i != h.Source {
			out = append(out, p.Centre)
		}
	}
	return out
}

// ProcessConfig controls the signal-processing stage.
type ProcessConfig struct {
	// WDMCapacity bounds the number of bits per hyper net.
	WDMCapacity int
	// PinMergeThresholdCM is the agglomerative merge distance for hyper
	// pins: electrical pins whose cluster centres are closer than this are
	// represented by one pseudo pin.
	PinMergeThresholdCM float64
	// Seed drives the deterministic K-Means initialisation.
	Seed int64
	// Workers bounds the per-group clustering parallelism (0 = NumCPU).
	// Groups are independent, so the result does not depend on the count.
	Workers int
}

// Process runs the full signal-processing stage over a design and returns
// the hyper nets of all groups. Bits of a group are clustered into
// capacity-respecting hyper nets by their centroids; within each hyper net,
// all member electrical pins are agglomerated into hyper pins.
func Process(d Design, cfg ProcessConfig) ([]HyperNet, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if cfg.WDMCapacity <= 0 {
		return nil, fmt.Errorf("signal: WDM capacity %d must be positive", cfg.WDMCapacity)
	}
	// Groups are processed in parallel; perGroup[gi] keeps the hyper nets in
	// group order so the concatenated result is independent of scheduling.
	perGroup := make([][]HyperNet, len(d.Groups))
	err := parallel.ForEach(len(d.Groups), cfg.Workers, func(gi int) error {
		hns, err := ProcessGroup(d.Groups[gi], gi, cfg)
		if err != nil {
			return err
		}
		perGroup[gi] = hns
		return nil
	})
	if err != nil {
		return nil, err
	}
	var nets []HyperNet
	for _, g := range perGroup {
		nets = append(nets, g...)
	}
	return nets, nil
}

// ProcessGroup runs the signal-processing stage over a single group: bits
// are clustered into capacity-respecting hyper nets by their centroids
// (K-Means seeded with cfg.Seed plus the group's index gi, so a group's
// clustering depends only on its contents and position), then each cluster's
// electrical pins are agglomerated into hyper pins. Process is exactly the
// concatenation of ProcessGroup over all groups; incremental re-synthesis
// calls it directly to re-cluster only dirty groups.
func ProcessGroup(g Group, gi int, cfg ProcessConfig) ([]HyperNet, error) {
	centroids := make([]geom.Point, len(g.Bits))
	for i, b := range g.Bits {
		centroids[i] = b.Centroid()
	}
	clusters, err := cluster.KMeans(centroids, cluster.KMeansConfig{
		Capacity: cfg.WDMCapacity,
		Seed:     cfg.Seed + int64(gi),
	})
	if err != nil {
		return nil, fmt.Errorf("signal: group %q: %w", g.Name, err)
	}
	var out []HyperNet
	for _, members := range clusters {
		hn, err := buildHyperNet(g, members, cfg.PinMergeThresholdCM)
		if err != nil {
			return nil, fmt.Errorf("signal: group %q: %w", g.Name, err)
		}
		out = append(out, hn)
	}
	return out, nil
}

// buildHyperNet constructs the hyper pins of one bit cluster per §3.1.2.
func buildHyperNet(g Group, members []int, mergeThreshold float64) (HyperNet, error) {
	type pinRef struct {
		loc      geom.Point
		bit      int
		isDriver bool
	}
	var pins []pinRef
	for _, bi := range members {
		b := g.Bits[bi]
		pins = append(pins, pinRef{loc: b.Driver, bit: bi, isDriver: true})
		for _, s := range b.Sinks {
			pins = append(pins, pinRef{loc: s, bit: bi})
		}
	}
	locs := make([]geom.Point, len(pins))
	for i, p := range pins {
		locs[i] = p.loc
	}
	groups := cluster.Agglomerate(locs, mergeThreshold)

	hn := HyperNet{Group: g.Name, Bits: append([]int(nil), members...)}
	bestDrivers := -1
	for _, idxs := range groups {
		hp := HyperPin{}
		bitSet := map[int]bool{}
		memberLocs := make([]geom.Point, 0, len(idxs))
		for _, i := range idxs {
			hp.Pins = append(hp.Pins, pins[i].loc)
			memberLocs = append(memberLocs, pins[i].loc)
			bitSet[pins[i].bit] = true
			if pins[i].isDriver {
				hp.Drivers++
			}
		}
		hp.Centre = geom.Centroid(memberLocs)
		hp.Bits = len(bitSet)
		hn.Pins = append(hn.Pins, hp)
		if hp.Drivers > bestDrivers {
			bestDrivers = hp.Drivers
			hn.Source = len(hn.Pins) - 1
		}
	}
	if len(hn.Pins) < 2 {
		// All pins collapsed into one hyper pin: the connection is local,
		// but the router still needs at least a source and a sink. Split
		// drivers from sinks so the hyper net remains routable.
		hn = splitDegeneratePins(g, members)
	}
	if bestDrivers == 0 && len(hn.Pins) >= 2 {
		return hn, fmt.Errorf("hyper net has no driver pins")
	}
	return hn, nil
}

// splitDegeneratePins handles the corner case where the merge threshold
// swallowed every pin into a single hyper pin: it rebuilds two hyper pins,
// one holding all drivers and one holding all sinks.
func splitDegeneratePins(g Group, members []int) HyperNet {
	hn := HyperNet{Group: g.Name, Bits: append([]int(nil), members...)}
	var drv, snk HyperPin
	for _, bi := range members {
		b := g.Bits[bi]
		drv.Pins = append(drv.Pins, b.Driver)
		drv.Drivers++
		snk.Pins = append(snk.Pins, b.Sinks...)
	}
	drv.Centre = geom.Centroid(drv.Pins)
	snk.Centre = geom.Centroid(snk.Pins)
	drv.Bits = len(members)
	snk.Bits = len(members)
	hn.Pins = []HyperPin{drv, snk}
	hn.Source = 0
	return hn
}

// Stats summarises processed hyper nets: the paper's #HNet and #HPin
// columns.
type Stats struct {
	HyperNets int
	HyperPins int
}

// Summarize counts hyper nets and hyper pins.
func Summarize(nets []HyperNet) Stats {
	s := Stats{HyperNets: len(nets)}
	for _, n := range nets {
		s.HyperPins += len(n.Pins)
	}
	return s
}
