package experiments

import (
	"strings"
	"testing"
)

func TestAblation(t *testing.T) {
	cases := []string{"I2"}
	rows, err := Ablation(AblationOptions{Cases: cases})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("only %d variants", len(rows))
	}
	if rows[0].Variant != "full flow (LR)" {
		t.Fatalf("reference row is %q", rows[0].Variant)
	}
	ref := rows[0].PowerMW["I2"]
	if ref <= 0 {
		t.Fatal("reference power missing")
	}
	var noSub float64
	for _, r := range rows {
		p := r.PowerMW["I2"]
		if p <= 0 {
			t.Errorf("%s: no power recorded", r.Variant)
		}
		if r.Variant == "no edge subdivision" {
			noSub = p
		}
	}
	// The headline ablation finding: edge subdivision (partial-optical
	// routes) is load-bearing on the thin-bundle case.
	if noSub < ref*1.05 {
		t.Errorf("removing subdivision changed power only %v -> %v", ref, noSub)
	}
	out := FormatAblation(rows, cases)
	if !strings.Contains(out, "no edge subdivision") || !strings.Contains(out, "%") {
		t.Errorf("ablation output malformed:\n%s", out)
	}
}

func TestAblationUnknownCase(t *testing.T) {
	if _, err := Ablation(AblationOptions{Cases: []string{"nope"}}); err == nil {
		t.Error("unknown case accepted")
	}
}
