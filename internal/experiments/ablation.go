package experiments

import (
	"fmt"
	"strings"

	operon "operon"
	"operon/internal/benchgen"
)

// AblationRow reports one flow variant's power on each case.
type AblationRow struct {
	Variant string
	// PowerMW maps case name to total power.
	PowerMW map[string]float64
}

// AblationOptions tunes the ablation sweep.
type AblationOptions struct {
	// Cases restricts the benchmark set; nil runs a thin-bundle case (I2)
	// and a multi-sink case (I4), covering both ablated mechanisms.
	Cases []string
}

// ablationVariants returns the named configuration mutations studied: each
// removes one design decision from the full flow.
func ablationVariants() []struct {
	name string
	mut  func(*operon.Config)
} {
	return []struct {
		name string
		mut  func(*operon.Config)
	}{
		{"full flow (LR)", func(*operon.Config) {}},
		{"no edge subdivision", func(c *operon.Config) { c.SubdivideCM = 0 }},
		{"single baseline tree", func(c *operon.Config) { c.MaxBaselines = 1 }},
		{"2 candidates per net", func(c *operon.Config) { c.MaxCandidatesPerNet = 2 }},
		{"greedy selection", func(c *operon.Config) { c.Mode = operon.ModeGreedy }},
		{"1 LR iteration", func(c *operon.Config) { c.LR.MaxIters = 1 }},
	}
}

// Ablation runs every variant over the cases and returns one row per
// variant. The "full flow" row is the reference.
func Ablation(opt AblationOptions) ([]AblationRow, error) {
	names := opt.Cases
	if len(names) == 0 {
		names = []string{"I2", "I4"}
	}
	var rows []AblationRow
	for _, v := range ablationVariants() {
		row := AblationRow{Variant: v.name, PowerMW: map[string]float64{}}
		for _, name := range names {
			spec, err := benchgen.SpecByName(name)
			if err != nil {
				return nil, err
			}
			design, err := benchgen.Generate(spec)
			if err != nil {
				return nil, err
			}
			cfg := operon.DefaultConfig()
			v.mut(&cfg)
			cfg.SkipWDM = true
			res, err := operon.Run(design, cfg)
			if err != nil {
				return nil, fmt.Errorf("ablation %q on %s: %w", v.name, name, err)
			}
			if res.Selection.Violations != 0 {
				return nil, fmt.Errorf("ablation %q on %s: illegal selection", v.name, name)
			}
			row.PowerMW[name] = res.PowerMW
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAblation renders the variants against the full-flow reference.
func FormatAblation(rows []AblationRow, cases []string) string {
	if len(cases) == 0 {
		cases = []string{"I2", "I4"}
	}
	var b strings.Builder
	b.WriteString("Ablation: removing one design decision at a time (power in mW, Δ vs full flow)\n")
	fmt.Fprintf(&b, "  %-22s", "variant")
	for _, c := range cases {
		fmt.Fprintf(&b, " %10s %7s", c, "Δ")
	}
	b.WriteByte('\n')
	var ref map[string]float64
	for _, r := range rows {
		if ref == nil {
			ref = r.PowerMW
		}
		fmt.Fprintf(&b, "  %-22s", r.Variant)
		for _, c := range cases {
			p := r.PowerMW[c]
			delta := 0.0
			if ref[c] > 0 {
				delta = 100 * (p/ref[c] - 1)
			}
			fmt.Fprintf(&b, " %10.2f %+6.1f%%", p, delta)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
