package experiments

import (
	"fmt"
	"strings"

	operon "operon"
	"operon/internal/benchgen"
	"operon/internal/optics"
)

// RobustnessRow reports the flow's behaviour when routed for a given
// temperature guard band: the optical library is derated by ΔT before
// routing, so every chosen route stays legal across the whole band.
type RobustnessRow struct {
	DeltaC          float64
	PowerMW         float64
	OpticalFraction float64
	Violations      int
}

// Robustness sweeps temperature guard bands on one case (extension study:
// the variation-resilience concern of refs [4, 6]). Larger bands shrink the
// usable loss budget, pushing marginal nets back to electrical wires and
// raising power — the resilience-vs-power trade.
func Robustness(caseName string, deltas []float64) ([]RobustnessRow, error) {
	if caseName == "" {
		caseName = "I2"
	}
	if len(deltas) == 0 {
		deltas = []float64{0, 20, 40, 60, 80}
	}
	spec, err := benchgen.SpecByName(caseName)
	if err != nil {
		return nil, err
	}
	design, err := benchgen.Generate(spec)
	if err != nil {
		return nil, err
	}
	v := optics.DefaultVariation()
	var rows []RobustnessRow
	for _, dT := range deltas {
		cfg := operon.DefaultConfig()
		cfg.Lib = cfg.Lib.AtTemperature(v, dT)
		cfg.SkipWDM = true
		res, err := operon.Run(design, cfg)
		if err != nil {
			return nil, fmt.Errorf("robustness ΔT=%v on %s: %w", dT, caseName, err)
		}
		optical := 0
		for i, j := range res.Selection.Choice {
			if !res.Nets[i].Cands[j].AllElectrical {
				optical++
			}
		}
		rows = append(rows, RobustnessRow{
			DeltaC:          dT,
			PowerMW:         res.PowerMW,
			OpticalFraction: float64(optical) / float64(len(res.Nets)),
			Violations:      res.Selection.Violations,
		})
	}
	return rows, nil
}

// FormatRobustness renders the guard-band sweep.
func FormatRobustness(caseName string, rows []RobustnessRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness (extension): temperature guard band on %s\n", caseName)
	fmt.Fprintf(&b, "  %8s %12s %14s %11s\n", "ΔT (°C)", "power (mW)", "optical nets", "violations")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %8.0f %12.2f %13.1f%% %11d\n",
			r.DeltaC, r.PowerMW, 100*r.OpticalFraction, r.Violations)
	}
	b.WriteString("  guard-banding the optical library (higher α, smaller l_m) keeps\n" +
		"  routes legal across the band at the cost of power — marginal nets\n" +
		"  return to copper as the band widens.\n")
	return b.String()
}
