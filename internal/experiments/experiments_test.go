package experiments

import (
	"math"
	"strings"
	"testing"
	"time"
)

// table1Small runs Table 1 on the two fastest cases without ILP; it is the
// shared fixture for the harness tests.
func table1Small(t *testing.T) []Table1Row {
	t.Helper()
	rows, err := Table1(Table1Options{Cases: []string{"I2", "I5"}, SkipILP: true})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestTable1Shape(t *testing.T) {
	rows := table1Small(t)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	wantNets := map[string]int{"I2": 1782, "I5": 1994}
	for _, r := range rows {
		if r.Nets != wantNets[r.Name] {
			t.Errorf("%s: #Net = %d, want %d", r.Name, r.Nets, wantNets[r.Name])
		}
		if r.ElecPowerMW <= r.OptPowerMW {
			t.Errorf("%s: electrical %v not above optical %v",
				r.Name, r.ElecPowerMW, r.OptPowerMW)
		}
		if r.LRPowerMW > r.OptPowerMW+1e-9 {
			t.Errorf("%s: OPERON-LR %v worse than optical-only %v",
				r.Name, r.LRPowerMW, r.OptPowerMW)
		}
		// Paper shape: electrical roughly 3-4x optical on these cases.
		if ratio := r.ElecPowerMW / r.OptPowerMW; ratio < 2 || ratio > 6 {
			t.Errorf("%s: E/O ratio %v outside plausible band", r.Name, ratio)
		}
	}
}

func TestTable1UnknownCase(t *testing.T) {
	if _, err := Table1(Table1Options{Cases: []string{"bogus"}}); err == nil {
		t.Error("unknown case accepted")
	}
}

func TestFormatTable1(t *testing.T) {
	rows := table1Small(t)
	out := FormatTable1(rows, time.Minute, true)
	for _, want := range []string{"I2", "I5", "average", "ratio", "Electrical", "OPERON(LR)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
	// The ratio line normalises to the optical column (1.000).
	if !strings.Contains(out, "1.000") {
		t.Errorf("ratio line missing optical=1.000:\n%s", out)
	}
}

func TestFig3b(t *testing.T) {
	rows, err := Fig3b(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (stages 0..2)", len(rows))
	}
	if len(rows[1].ArmPowers) != 2 || len(rows[2].ArmPowers) != 4 {
		t.Fatalf("arm counts wrong: %v / %v", rows[1].ArmPowers, rows[2].ArmPowers)
	}
	// One stage halves, two stages quarter the power.
	for _, p := range rows[1].ArmPowers {
		if math.Abs(p-0.5) > 0.05 {
			t.Errorf("single-stage arm power %v, want ≈0.5", p)
		}
	}
	for _, p := range rows[2].ArmPowers {
		if math.Abs(p-0.25) > 0.05 {
			t.Errorf("two-stage arm power %v, want ≈0.25", p)
		}
	}
	out := FormatFig3b(rows)
	if !strings.Contains(out, "Y-branch") || !strings.Contains(out, "dB") {
		t.Errorf("Fig3b output malformed:\n%s", out)
	}
}

func TestFig8FromTable1(t *testing.T) {
	rows := table1Small(t)
	bars := Fig8(rows)
	if len(bars) != len(rows) {
		t.Fatalf("bars = %d", len(bars))
	}
	for _, bb := range bars {
		if bb.Connections == 0 {
			t.Errorf("%s: no optical connections", bb.Name)
		}
		if bb.InitialWDMs > bb.Connections {
			t.Errorf("%s: placement increased WDM count above connections", bb.Name)
		}
		if bb.FinalWDMs > bb.InitialWDMs {
			t.Errorf("%s: assignment increased WDMs", bb.Name)
		}
		if bb.Reduction() < 0 || bb.Reduction() > 1 {
			t.Errorf("%s: reduction %v outside [0,1]", bb.Name, bb.Reduction())
		}
	}
	out := FormatFig8(bars)
	if !strings.Contains(out, "average final-WDM reduction") {
		t.Errorf("Fig8 output malformed:\n%s", out)
	}
}

func TestFig9(t *testing.T) {
	m, err := Fig9("I2", 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's observation: the optical layers look alike (similar
	// conversion totals), while OPERON's electrical layer is cooler.
	if m.OperonElec.Total() > m.GlowElec.Total()+1e-9 {
		t.Errorf("OPERON electrical layer hotter: %v vs %v",
			m.OperonElec.Total(), m.GlowElec.Total())
	}
	if m.GlowOptical.Total() <= 0 || m.OperonOptical.Total() <= 0 {
		t.Error("optical layers empty")
	}
	ratio := m.OperonOptical.Total() / m.GlowOptical.Total()
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("optical layers dissimilar: ratio %v", ratio)
	}
	out := FormatFig9(m)
	for _, want := range []string{"GLOW optical", "OPERON electrical", "cooler"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig9 output missing %q", want)
		}
	}
}

func TestFig9UnknownCase(t *testing.T) {
	if _, err := Fig9("nope", 8, 8); err == nil {
		t.Error("unknown case accepted")
	}
}
