package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	operon "operon"
	"operon/internal/benchgen"
)

// ECORow reports the incremental re-synthesis speedup at one edit size:
// `Groups` groups of the case receive a one-pin move, and the session's
// warm Resolve is timed against a cold full solve of the same edited
// design. The two produce bit-identical results (the Session contract), so
// the time ratio is a pure reuse measurement.
type ECORow struct {
	// Case names the benchmark.
	Case string
	// EditedGroups is how many groups the edit script touched (0 = empty
	// script, the full-reuse probe).
	EditedGroups int
	// TotalGroups is the case's group count.
	TotalGroups int
	// ResolveMS is the warm incremental resolve wall clock.
	ResolveMS float64
	// ColdMS is the cold full solve wall clock on the same edited design.
	ColdMS float64
	// Speedup is ColdMS/ResolveMS.
	Speedup float64
	// GroupsReused and CandsReused report what the resolve carried over.
	GroupsReused int
	CandsReused  int
}

// ECO measures incremental re-synthesis speedup as a function of edit size
// on one case: an empty script, a single-group pin move, a quarter of the
// groups, and every group. Each measurement re-solves the session, then
// cold-solves the identical edited design for the ratio. WDM is skipped so
// the measurement isolates the incremental stages.
func ECO(caseName string) ([]ECORow, error) {
	if caseName == "" {
		caseName = "I3"
	}
	spec, err := benchgen.SpecByName(caseName)
	if err != nil {
		return nil, err
	}
	design, err := benchgen.Generate(spec)
	if err != nil {
		return nil, err
	}
	cfg := operon.DefaultConfig()
	cfg.SkipWDM = true

	sess := operon.NewSession(design, cfg)
	if _, _, err := sess.Resolve(context.Background()); err != nil {
		return nil, fmt.Errorf("eco %s: cold solve: %w", caseName, err)
	}
	nG := len(design.Groups)
	sizes := []int{0, 1, nG / 4, nG}
	var rows []ECORow
	for _, k := range sizes {
		// Move one pin in each of the first k groups by a sub-millimetre
		// nudge — enough to dirty the group, small enough to stay on-die.
		edits := make([]operon.Edit, 0, k)
		for gi := 0; gi < k; gi++ {
			p := sess.Design().Groups[gi].Bits[0].Driver
			p.X += 0.013
			if p.X > design.Die.Hi.X {
				p.X = design.Die.Hi.X
			}
			edits = append(edits, operon.MoveTerminal(gi, 0, -1, p))
		}
		if _, err := sess.Apply(edits...); err != nil {
			return nil, fmt.Errorf("eco %s: apply %d edits: %w", caseName, k, err)
		}
		start := time.Now()
		_, stats, err := sess.Resolve(context.Background())
		if err != nil {
			return nil, fmt.Errorf("eco %s: resolve %d edits: %w", caseName, k, err)
		}
		resolveMS := float64(time.Since(start)) / float64(time.Millisecond)
		start = time.Now()
		if _, err := operon.Run(sess.Design(), cfg); err != nil {
			return nil, fmt.Errorf("eco %s: cold reference: %w", caseName, err)
		}
		coldMS := float64(time.Since(start)) / float64(time.Millisecond)
		row := ECORow{
			Case: caseName, EditedGroups: k, TotalGroups: nG,
			ResolveMS: resolveMS, ColdMS: coldMS,
			GroupsReused: stats.GroupsReused, CandsReused: stats.CandsReused,
		}
		if resolveMS > 0 {
			row.Speedup = coldMS / resolveMS
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatECO renders the edit-size sweep as the EXPERIMENTS.md table.
func FormatECO(rows []ECORow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== ECO: incremental re-synthesis speedup vs edit size ==\n")
	fmt.Fprintf(&b, "%-6s %-14s %12s %10s %9s %13s %12s\n",
		"case", "edited groups", "resolve (ms)", "cold (ms)", "speedup", "groups reused", "cands reused")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %6d/%-7d %12.1f %10.1f %8.1fx %13d %12d\n",
			r.Case, r.EditedGroups, r.TotalGroups, r.ResolveMS, r.ColdMS, r.Speedup,
			r.GroupsReused, r.CandsReused)
	}
	return b.String()
}
