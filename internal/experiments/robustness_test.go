package experiments

import (
	"strings"
	"testing"
)

func TestRobustnessMonotone(t *testing.T) {
	rows, err := Robustness("I2", []float64{0, 40, 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Violations != 0 {
			t.Errorf("ΔT=%v: %d violations", r.DeltaC, r.Violations)
		}
		if i > 0 && r.PowerMW < rows[i-1].PowerMW-1e-9 {
			t.Errorf("power not monotone in guard band: %v then %v",
				rows[i-1].PowerMW, r.PowerMW)
		}
		if i > 0 && r.OpticalFraction > rows[i-1].OpticalFraction+1e-9 {
			t.Errorf("optical fraction grew with derating: %v then %v",
				rows[i-1].OpticalFraction, r.OpticalFraction)
		}
	}
	// The widest band must cost measurably more than the nominal point.
	if rows[2].PowerMW < rows[0].PowerMW*1.02 {
		t.Errorf("guard band has no power cost: %v vs %v", rows[0].PowerMW, rows[2].PowerMW)
	}
	out := FormatRobustness("I2", rows)
	if !strings.Contains(out, "guard band") {
		t.Errorf("robustness output malformed:\n%s", out)
	}
}

func TestRobustnessUnknownCase(t *testing.T) {
	if _, err := Robustness("nope", nil); err == nil {
		t.Error("unknown case accepted")
	}
}
