// Package experiments regenerates every table and figure of the paper's
// evaluation section (§5) on the synthetic I1–I5 benchmarks:
//
//   - Table 1 — power and CPU comparison of Electrical [14], Optical [4],
//     OPERON (ILP) and OPERON (LR), with the averages/ratio footer;
//   - Fig. 3(b) — FD-BPM power distribution of cascaded Y-branch splitters;
//   - Fig. 8 — number of optical connections vs initial vs final WDMs;
//   - Fig. 9 — optical/electrical power hotspot maps, GLOW vs OPERON.
//
// Each experiment returns structured rows plus a Format function that
// prints the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"strings"
	"time"

	operon "operon"
	"operon/internal/benchgen"
	"operon/internal/optics/bpm"
	"operon/internal/power"
)

// Table1Row is one benchmark line of Table 1.
type Table1Row struct {
	Name        string
	Nets        int
	HNets       int
	HPins       int
	ElecPowerMW float64
	OptPowerMW  float64
	ILPPowerMW  float64
	ILPCPU      time.Duration
	ILPTimedOut bool
	LRPowerMW   float64
	LRCPU       time.Duration
	// WDM is the OPERON-LR result, reused by Fig. 8.
	WDM operon.Result
}

// Table1Options tunes the Table 1 run.
type Table1Options struct {
	// Cases restricts the benchmark set; nil runs all five.
	Cases []string
	// ILPTimeLimit is the per-case ILP budget (the paper used 3000 s; the
	// default here is 60 s, scaled to this repository's solver).
	ILPTimeLimit time.Duration
	// SkipILP omits the ILP columns (useful for quick runs).
	SkipILP bool
	// Config overrides the flow configuration; zero value uses defaults.
	Config *operon.Config
}

// Table1 runs the full §5 comparison.
func Table1(opt Table1Options) ([]Table1Row, error) {
	names := opt.Cases
	if len(names) == 0 {
		names = []string{"I1", "I2", "I3", "I4", "I5"}
	}
	limit := opt.ILPTimeLimit
	if limit == 0 {
		limit = 60 * time.Second
	}
	var rows []Table1Row
	for _, name := range names {
		spec, err := benchgen.SpecByName(name)
		if err != nil {
			return nil, err
		}
		design, err := benchgen.Generate(spec)
		if err != nil {
			return nil, err
		}
		cfg := operon.DefaultConfig()
		if opt.Config != nil {
			cfg = *opt.Config
		}

		elec, err := operon.RunElectrical(design, cfg)
		if err != nil {
			return nil, err
		}
		glow, err := operon.RunOptical(design, cfg)
		if err != nil {
			return nil, err
		}
		cfg.Mode = operon.ModeLR
		lr, err := operon.Run(design, cfg)
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Name:        name,
			Nets:        design.NetCount(),
			HNets:       lr.Stats().HyperNets,
			HPins:       lr.Stats().HyperPins,
			ElecPowerMW: elec.PowerMW,
			OptPowerMW:  glow.PowerMW,
			LRPowerMW:   lr.PowerMW,
			LRCPU:       lr.Times.Selection,
			WDM:         *lr,
		}
		if !opt.SkipILP {
			icfg := cfg
			icfg.Mode = operon.ModeILP
			icfg.ILPTimeLimit = limit
			ilpRes, err := operon.Run(design, icfg)
			if err != nil {
				return nil, err
			}
			row.ILPPowerMW = ilpRes.PowerMW
			row.ILPCPU = ilpRes.ILP.Elapsed
			row.ILPTimedOut = ilpRes.ILP.TimedOut
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders the rows in the paper's layout, including the
// average and ratio footer. limit is printed for timed-out ILP entries
// (the paper's ">3000" style).
func FormatTable1(rows []Table1Row, limit time.Duration, skipILP bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %7s %7s %7s | %12s | %12s | %12s %10s | %12s %10s\n",
		"Bench", "#Net", "#HNet", "#HPin",
		"Electrical", "Optical", "OPERON(ILP)", "CPU(s)", "OPERON(LR)", "CPU(s)")
	var sumE, sumO, sumI, sumL float64
	anyTimeout := false
	for _, r := range rows {
		ilpPower, ilpCPU := "-", "-"
		if !skipILP {
			ilpPower = fmt.Sprintf("%.2f", r.ILPPowerMW)
			if r.ILPTimedOut {
				ilpCPU = fmt.Sprintf("> %.0f", limit.Seconds())
				anyTimeout = true
			} else {
				ilpCPU = fmt.Sprintf("%.1f", r.ILPCPU.Seconds())
			}
		}
		fmt.Fprintf(&b, "%-6s %7d %7d %7d | %12.2f | %12.2f | %12s %10s | %12.2f %10.3f\n",
			r.Name, r.Nets, r.HNets, r.HPins,
			r.ElecPowerMW, r.OptPowerMW, ilpPower, ilpCPU,
			r.LRPowerMW, r.LRCPU.Seconds())
		sumE += r.ElecPowerMW
		sumO += r.OptPowerMW
		sumI += r.ILPPowerMW
		sumL += r.LRPowerMW
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(&b, "%-6s %7s %7s %7s | %12.2f | %12.2f | %12.2f %10s | %12.2f %10s\n",
			"average", "-", "-", "-", sumE/n, sumO/n, sumI/n, "-", sumL/n, "-")
		fmt.Fprintf(&b, "%-6s %7s %7s %7s | %12.3f | %12.3f | %12.3f %10s | %12.3f %10s\n",
			"ratio", "-", "-", "-", sumE/sumO, 1.0, sumI/sumO, "-", sumL/sumO, "-")
	}
	if anyTimeout {
		b.WriteString("(ILP entries marked \"> t\" hit the time limit; the best feasible\n" +
			" solution found so far is reported, as in the paper's Table 1.)\n")
	}
	return b.String()
}

// Fig3bRow is one splitter-cascade measurement.
type Fig3bRow struct {
	Stages            int
	ArmPowers         []float64
	PerArmLossDB      []float64
	IdealPerArmLossDB float64
	TotalOut          float64
}

// Fig3b runs the FD-BPM Y-branch study for 0..maxStages cascaded splitters.
func Fig3b(maxStages int) ([]Fig3bRow, error) {
	if maxStages <= 0 {
		maxStages = 2
	}
	cfg := bpm.DefaultConfig()
	var rows []Fig3bRow
	for s := 0; s <= maxStages; s++ {
		res, err := bpm.Simulate(cfg, s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig3bRow{
			Stages:            s,
			ArmPowers:         res.ArmPowers,
			PerArmLossDB:      res.PerArmLossDB,
			IdealPerArmLossDB: res.IdealPerArmLossDB,
			TotalOut:          res.TotalOut,
		})
	}
	return rows, nil
}

// FormatFig3b renders the normalised power distribution of the cascades.
func FormatFig3b(rows []Fig3bRow) string {
	var b strings.Builder
	b.WriteString("Fig. 3(b): FD-BPM normalised power in cascaded 50-50 Y-branch splitters\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %d stage(s): arms =", r.Stages)
		for _, p := range r.ArmPowers {
			fmt.Fprintf(&b, " %.3f", p)
		}
		fmt.Fprintf(&b, "  (total %.3f, per-arm loss", r.TotalOut)
		for _, l := range r.PerArmLossDB {
			fmt.Fprintf(&b, " %.2f", l)
		}
		fmt.Fprintf(&b, " dB vs model %.2f dB)\n", r.IdealPerArmLossDB)
	}
	b.WriteString("  => each Y-branch halves the guided power, matching the\n" +
		"     10*log10(n_s) splitting-loss term of Eq. (2).\n")
	return b.String()
}

// Fig8Row is one benchmark's WDM bars.
type Fig8Row struct {
	Name        string
	Connections int
	InitialWDMs int
	FinalWDMs   int
}

// Reduction returns the final-over-initial WDM saving.
func (r Fig8Row) Reduction() float64 {
	if r.InitialWDMs == 0 {
		return 0
	}
	return 1 - float64(r.FinalWDMs)/float64(r.InitialWDMs)
}

// Fig8 extracts the WDM statistics of the OPERON-LR runs.
func Fig8(rows []Table1Row) []Fig8Row {
	out := make([]Fig8Row, len(rows))
	for i, r := range rows {
		out[i] = Fig8Row{
			Name:        r.Name,
			Connections: r.WDM.WDMStats.Connections,
			InitialWDMs: r.WDM.WDMStats.InitialWDMs,
			FinalWDMs:   r.WDM.WDMStats.FinalWDMs,
		}
	}
	return out
}

// FormatFig8 renders the three normalised bars per case plus the average
// reduction, as the paper's Fig. 8 reports.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	b.WriteString("Fig. 8: WDMs for optical connections (normalised to #connections = 100%)\n")
	fmt.Fprintf(&b, "  %-5s %12s %14s %12s %10s\n",
		"case", "#conn(100%)", "#initial WDMs", "#final WDMs", "reduction")
	var sumRed float64
	for _, r := range rows {
		init, fin := 0.0, 0.0
		if r.Connections > 0 {
			init = 100 * float64(r.InitialWDMs) / float64(r.Connections)
			fin = 100 * float64(r.FinalWDMs) / float64(r.Connections)
		}
		fmt.Fprintf(&b, "  %-5s %11d  %7d (%3.0f%%) %6d (%3.0f%%) %9.1f%%\n",
			r.Name, r.Connections, r.InitialWDMs, init, r.FinalWDMs, fin, 100*r.Reduction())
		sumRed += r.Reduction()
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "  average final-WDM reduction over placement: %.1f%%\n",
			100*sumRed/float64(len(rows)))
	}
	return b.String()
}

// Fig9Maps bundles the four hotspot grids of Fig. 9.
type Fig9Maps struct {
	Case          string
	GlowOptical   *power.Grid
	GlowElec      *power.Grid
	OperonOptical *power.Grid
	OperonElec    *power.Grid
}

// Fig9 computes the power-density maps of the optical and electrical
// layers for the GLOW-style baseline and OPERON on one case (the paper
// uses I2).
func Fig9(caseName string, rows, cols int) (Fig9Maps, error) {
	spec, err := benchgen.SpecByName(caseName)
	if err != nil {
		return Fig9Maps{}, err
	}
	design, err := benchgen.Generate(spec)
	if err != nil {
		return Fig9Maps{}, err
	}
	cfg := operon.DefaultConfig()
	glow, err := operon.RunOptical(design, cfg)
	if err != nil {
		return Fig9Maps{}, err
	}
	op, err := operon.Run(design, cfg)
	if err != nil {
		return Fig9Maps{}, err
	}
	gm, err := operon.Hotspots(glow, design.Die, rows, cols, cfg)
	if err != nil {
		return Fig9Maps{}, err
	}
	om, err := operon.Hotspots(op, design.Die, rows, cols, cfg)
	if err != nil {
		return Fig9Maps{}, err
	}
	return Fig9Maps{
		Case:          caseName,
		GlowOptical:   gm.Optical,
		GlowElec:      gm.Electrical,
		OperonOptical: om.Optical,
		OperonElec:    om.Electrical,
	}, nil
}

// FormatFig9 renders the four normalised heat maps side by side with the
// per-layer totals, mirroring the paper's hotspot comparison.
func FormatFig9(m Fig9Maps) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9: normalised power hotspots on %s\n", m.Case)
	pairs := []struct {
		title string
		grid  *power.Grid
	}{
		{"(a) GLOW optical layer", m.GlowOptical},
		{"(b) GLOW electrical layer", m.GlowElec},
		{"(c) OPERON optical layer", m.OperonOptical},
		{"(d) OPERON electrical layer", m.OperonElec},
	}
	for _, p := range pairs {
		fmt.Fprintf(&b, "%s  (total %.1f mW, peak cell %.2f mW)\n",
			p.title, p.grid.Total(), p.grid.Max())
		b.WriteString(indent(p.grid.Normalized().Render(), "  "))
	}
	fmt.Fprintf(&b, "electrical-layer total: GLOW %.1f mW vs OPERON %.1f mW (%.1f%% cooler)\n",
		m.GlowElec.Total(), m.OperonElec.Total(),
		100*(1-safeDiv(m.OperonElec.Total(), m.GlowElec.Total())))
	return b.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
