// Package obs is the flow-wide observability layer: wall-clock spans over
// the stages and per-net work of the OPERON flow, named goroutine-safe
// counters for the solver substrate (LP pivots, branch-and-bound nodes,
// min-cost-flow augmentations, cache hits), and instant events carrying
// solver iterates. Everything funnels into a pluggable Sink; three
// implementations ship with the package:
//
//   - Nop discards everything (counters still accumulate and can be
//     snapshotted — cmd/bench uses this to regress-check solver behaviour
//     without paying for span recording);
//   - Collector retains spans/events/counters in memory for queries;
//   - ChromeWriter streams Chrome trace-event JSON loadable by
//     chrome://tracing and Perfetto, with worker-pool lanes rendered as
//     parallel thread tracks.
//
// The entire API is nil-safe: a nil *Tracer (the Config.Obs default) makes
// every Span/Event/Counter call a no-op without allocation, so the
// instrumented hot paths cost nearly nothing when observability is off —
// the package benchmarks pin the per-call overhead, and the end-to-end
// budget (< 2% on the ILP benchmark) is tracked via cmd/bench.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LaneFlow is the lane (Chrome trace "thread") of the main flow goroutine;
// worker-pool goroutines use WorkerLane(w).
const LaneFlow = 0

// WorkerLane maps a parallel.ForEachWorker worker index to its lane ID, so
// the Config.Workers fan-out renders as parallel tracks in the trace.
func WorkerLane(worker int) int { return worker + 1 }

// LaneName returns the display name of a lane (used for Chrome thread
// metadata).
func LaneName(lane int) string {
	if lane == LaneFlow {
		return "flow"
	}
	return "worker-" + itoa(lane-1)
}

// itoa avoids strconv for the tiny lane numbers (no import weight; lanes
// are small non-negative integers).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 && i > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Attr is one span/event attribute: a key with either a numeric or a string
// value (a tagged union rather than interface{} so building attribute lists
// does not box).
type Attr struct {
	// Key is the attribute name.
	Key string
	// Str is the string value; meaningful when IsNum is false.
	Str string
	// Num is the numeric value; meaningful when IsNum is true.
	Num float64
	// IsNum selects between Num and Str.
	IsNum bool
}

// F builds a float attribute.
func F(key string, v float64) Attr { return Attr{Key: key, Num: v, IsNum: true} }

// I builds an integer attribute (stored as a float, which is exact for the
// counts the flow emits).
func I(key string, v int) Attr { return Attr{Key: key, Num: float64(v), IsNum: true} }

// S builds a string attribute.
func S(key, v string) Attr { return Attr{Key: key, Str: v} }

// Tracer is the per-run instrumentation hub. Create one with New and pass
// it through Config.Obs; a nil Tracer is valid and turns every call into a
// no-op. All methods are safe for concurrent use by worker goroutines.
type Tracer struct {
	sink  Sink
	epoch time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	closed   bool
}

// New returns a Tracer recording into sink (nil means Nop). The tracer's
// clock epoch is the moment of creation; all span/event timestamps are
// offsets from it.
func New(sink Sink) *Tracer {
	if sink == nil {
		sink = Nop{}
	}
	return &Tracer{
		sink:     sink,
		epoch:    time.Now(),
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
	}
}

// now returns the tracer-relative timestamp.
func (t *Tracer) now() time.Duration { return time.Since(t.epoch) }

// Span is an in-flight span handle. The zero Span (from a nil Tracer) is
// valid: End is a no-op returning 0.
type Span struct {
	t     *Tracer
	name  string
	lane  int
	start time.Duration
	attrs []Attr
}

// Span starts a span on the given lane. Attributes passed here are merged
// with those passed to End.
func (t *Tracer) Span(name string, lane int, attrs ...Attr) Span {
	if t == nil {
		return Span{}
	}
	var as []Attr
	if len(attrs) > 0 {
		as = append(as, attrs...)
	}
	return Span{t: t, name: name, lane: lane, start: t.now(), attrs: as}
}

// End closes the span, delivers it to the sink, and returns its duration as
// measured by the tracer clock (so derived views such as StageTimes agree
// exactly with the recorded trace).
func (s Span) End(attrs ...Attr) time.Duration {
	if s.t == nil {
		return 0
	}
	dur := s.t.now() - s.start
	as := s.attrs
	if len(attrs) > 0 {
		as = append(as, attrs...)
	}
	s.t.sink.Span(SpanRecord{Name: s.name, Lane: s.lane, Start: s.start, Dur: dur, Attrs: as})
	return dur
}

// Event records an instant event (solver iterates, branch-and-bound nodes).
func (t *Tracer) Event(name string, lane int, attrs ...Attr) {
	if t == nil {
		return
	}
	var as []Attr
	if len(attrs) > 0 {
		as = append([]Attr(nil), attrs...)
	}
	t.sink.Event(EventRecord{Name: name, Lane: lane, Ts: t.now(), Attrs: as})
}

// Counter is a named atomic counter. A nil *Counter (from a nil Tracer) is
// valid: Add/Inc are no-ops and Value returns 0, so hot loops increment
// unconditionally without branching on the tracer.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the counter's registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Counter returns the counter registered under name, creating it on first
// use. The returned pointer is stable for the tracer's lifetime — callers
// fetch it once per solve and increment it lock-free afterwards.
func (t *Tracer) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.counters[name]
	if !ok {
		c = &Counter{name: name}
		t.counters[name] = c
	}
	return c
}

// Histogram returns the latency histogram registered under name, creating
// it with the default LatencyBounds on first use. Like Counter, the
// returned pointer is stable for the tracer's lifetime and recording is
// lock-free; a nil tracer returns a nil (no-op) histogram. All histograms
// of a tracer share the default bounds, so any two are merge-able.
func (t *Tracer) Histogram(name string) *Histogram {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.hists[name]
	if !ok {
		h = NewHistogram(name, nil)
		t.hists[name] = h
	}
	return h
}

// HistogramSnapshots returns the current histogram states sorted by name
// (deterministic for JSON diffs), skipping histograms that never recorded.
func (t *Tracer) HistogramSnapshots() []HistogramSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	snaps := make([]HistogramSnapshot, 0, len(t.hists))
	for _, h := range t.hists {
		if s := h.Snapshot(); s.Count > 0 {
			snaps = append(snaps, s)
		}
	}
	t.mu.Unlock()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Name < snaps[j].Name })
	return snaps
}

// Snapshot returns the current counter values sorted by name (deterministic
// for JSON diffs).
func (t *Tracer) Snapshot() []CounterValue {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	vals := make([]CounterValue, 0, len(t.counters))
	for _, c := range t.counters {
		vals = append(vals, CounterValue{Name: c.name, Value: c.Value()})
	}
	t.mu.Unlock()
	sort.Slice(vals, func(i, j int) bool { return vals[i].Name < vals[j].Name })
	return vals
}

// Close flushes the counter snapshot to the sink and closes the sink if it
// implements io.Closer (the ChromeWriter finishes its JSON array there).
// Close is idempotent; a nil Tracer closes successfully.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	t.sink.Counters(t.Snapshot())
	if c, ok := t.sink.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}
