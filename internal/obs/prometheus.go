package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the text exposition format
// version this package writes.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4), hand-rolled — the repo takes no
// client-library dependency. Mapping:
//
//   - counters ("lp.pivots") become `operon_lp_pivots_total` counter
//     series;
//   - gauges keep their registered name under the operon_ prefix, except
//     names already starting with go_ (the runtime gauges), which are
//     conventional as-is;
//   - histograms ("request/e2e", nanosecond buckets) become
//     `operon_request_e2e_seconds` histogram families: cumulative
//     `_bucket{le="..."}` series in seconds ending at le="+Inf", plus
//     `_sum` (seconds) and `_count`.
//
// Families are emitted in the snapshot's (name-sorted) order, each with
// one # HELP and one # TYPE line, so output for a fixed snapshot is
// byte-deterministic.
func WritePrometheus(w io.Writer, snap RegistrySnapshot) error {
	var b strings.Builder
	for _, c := range snap.Counters {
		name := promName(c.Name)
		if !strings.HasSuffix(name, "_total") {
			name += "_total"
		}
		fmt.Fprintf(&b, "# HELP %s Cumulative count of %s events.\n", name, c.Name)
		fmt.Fprintf(&b, "# TYPE %s counter\n", name)
		fmt.Fprintf(&b, "%s %d\n", name, c.Value)
	}
	for _, g := range snap.Gauges {
		name := promName(g.Name)
		help := g.Help
		if help == "" {
			help = "Gauge " + g.Name + "."
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(help))
		fmt.Fprintf(&b, "# TYPE %s gauge\n", name)
		fmt.Fprintf(&b, "%s %s\n", name, formatFloat(g.Value))
	}
	for _, h := range snap.Histograms {
		name := promName(h.Name) + "_seconds"
		fmt.Fprintf(&b, "# HELP %s Latency distribution of %s.\n", name, h.Name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, formatFloat(float64(bound)/1e9), cum)
		}
		cum += h.Counts[len(h.Counts)-1]
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(&b, "%s_sum %s\n", name, formatFloat(float64(h.Sum)/1e9))
		fmt.Fprintf(&b, "%s_count %d\n", name, cum)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promName maps an internal metric name ("lp.pivots", "request/e2e") onto
// a valid Prometheus metric name: separators become underscores and the
// operon_ namespace prefix is added, except for go_* runtime gauges which
// are idiomatic unprefixed.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	s := b.String()
	if strings.HasPrefix(s, "go_") {
		return s
	}
	return "operon_" + s
}

// escapeHelp escapes the characters the exposition format requires escaped
// in # HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients conventionally do:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
