package obs

import (
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Span("x", LaneFlow, I("k", 1))
	if d := sp.End(F("v", 2)); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
	tr.Event("e", LaneFlow, S("s", "v"))
	c := tr.Counter("c")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 || c.Name() != "" {
		t.Fatal("nil counter accumulated state")
	}
	if snap := tr.Snapshot(); snap != nil {
		t.Fatalf("nil snapshot = %v", snap)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCounterConcurrent(t *testing.T) {
	tr := New(Nop{})
	c := tr.Counter("n")
	if again := tr.Counter("n"); again != c {
		t.Fatal("counter pointer not stable")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

func TestSnapshotSorted(t *testing.T) {
	tr := New(Nop{})
	tr.Counter("zz").Add(1)
	tr.Counter("aa").Add(2)
	tr.Counter("mm").Add(3)
	snap := tr.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %v", snap)
		}
	}
	if snap[0].Name != "aa" || snap[0].Value != 2 {
		t.Fatalf("snapshot[0] = %v", snap[0])
	}
}

func TestCollectorRecordsSpansEventsCounters(t *testing.T) {
	col := &Collector{}
	tr := New(col)
	sp := tr.Span("outer", LaneFlow, S("design", "d"))
	inner := tr.Span("inner", WorkerLane(0), I("net", 3))
	time.Sleep(time.Millisecond)
	if d := inner.End(I("cands", 4)); d <= 0 {
		t.Fatalf("inner duration = %v", d)
	}
	sp.End()
	tr.Event("iterate", LaneFlow, F("power", 1.5))
	tr.Counter("pivots").Add(42)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	spans := col.Spans()
	if len(spans) != 2 {
		t.Fatalf("%d spans recorded", len(spans))
	}
	// inner ends first; its merged attrs carry both start and end entries.
	if spans[0].Name != "inner" || len(spans[0].Attrs) != 2 {
		t.Fatalf("inner span = %+v", spans[0])
	}
	if spans[0].Lane != WorkerLane(0) {
		t.Fatalf("inner lane = %d", spans[0].Lane)
	}
	if got := col.SpansNamed("outer"); len(got) != 1 || got[0].Dur < spans[0].Dur {
		t.Fatalf("outer span wrong: %+v", got)
	}
	if evs := col.EventsNamed("iterate"); len(evs) != 1 || !evs[0].Attrs[0].IsNum {
		t.Fatalf("events = %+v", evs)
	}
	cvs := col.CounterValues()
	if len(cvs) != 1 || cvs[0].Name != "pivots" || cvs[0].Value != 42 {
		t.Fatalf("counters = %v", cvs)
	}
	if lanes := col.Lanes(); len(lanes) != 2 || lanes[0] != LaneFlow || lanes[1] != WorkerLane(0) {
		t.Fatalf("lanes = %v", lanes)
	}
	if col.TotalDur("inner") != spans[0].Dur {
		t.Fatal("TotalDur mismatch")
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := &Collector{}, &Collector{}
	tr := New(Multi(a, b))
	tr.Span("s", LaneFlow).End()
	tr.Counter("c").Inc()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	for i, col := range []*Collector{a, b} {
		if len(col.Spans()) != 1 || len(col.CounterValues()) != 1 {
			t.Fatalf("sink %d missed records", i)
		}
	}
	// Close is idempotent.
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLaneNames(t *testing.T) {
	if LaneName(LaneFlow) != "flow" {
		t.Fatalf("flow lane name = %q", LaneName(LaneFlow))
	}
	if LaneName(WorkerLane(0)) != "worker-0" {
		t.Fatalf("worker lane name = %q", LaneName(WorkerLane(0)))
	}
	if LaneName(WorkerLane(12)) != "worker-12" {
		t.Fatalf("worker lane name = %q", LaneName(WorkerLane(12)))
	}
}
