package obs

import (
	"runtime"
	"runtime/metrics"
	"sort"
	"sync"
)

// GaugeValue is one gauge's sampled value.
type GaugeValue struct {
	// Name is the gauge's registered name.
	Name string `json:"name"`
	// Help is the one-line description emitted as Prometheus # HELP.
	Help string `json:"help,omitempty"`
	// Value is the sample taken at snapshot time.
	Value float64 `json:"value"`
}

// gauge is one registered sampling callback.
type gauge struct {
	name, help string
	fn         func() float64
}

// Registry unifies the three telemetry families behind one snapshot API:
// the counters and histograms of a Tracer plus sampled gauges (queue depth,
// in-flight solves, runtime heap). The serving layer snapshots it for both
// the Prometheus and the JSON metrics endpoints. Nil-safe like the rest of
// the package: a nil *Registry snapshots to the zero value and ignores
// registrations, and gauges are only sampled at snapshot time, so an idle
// registry costs nothing on any hot path.
type Registry struct {
	tracer *Tracer

	mu     sync.Mutex
	gauges []gauge
}

// NewRegistry returns a registry drawing counters and histograms from t
// (which may be nil — the registry then serves gauges only).
func NewRegistry(t *Tracer) *Registry { return &Registry{tracer: t} }

// Tracer returns the registry's counter/histogram source (nil for a nil
// registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Gauge registers a sampling callback under name. fn runs on every
// Snapshot and must be safe for concurrent use. Registering the same name
// twice replaces the earlier callback.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.gauges {
		if r.gauges[i].name == name {
			r.gauges[i] = gauge{name, help, fn}
			return
		}
	}
	r.gauges = append(r.gauges, gauge{name, help, fn})
}

// RegistrySnapshot is one consistent-enough view of the registry: counters
// and histograms are atomic snapshots, gauges are point samples taken
// during the call.
type RegistrySnapshot struct {
	// Counters is the name-sorted counter snapshot.
	Counters []CounterValue `json:"counters"`
	// Gauges is the name-sorted gauge sample set.
	Gauges []GaugeValue `json:"gauges,omitempty"`
	// Histograms is the name-sorted histogram snapshot set.
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot samples every gauge and snapshots the tracer's counters and
// histograms. Safe for concurrent use with recording.
func (r *Registry) Snapshot() RegistrySnapshot {
	if r == nil {
		return RegistrySnapshot{}
	}
	snap := RegistrySnapshot{
		Counters:   r.tracer.Snapshot(),
		Histograms: r.tracer.HistogramSnapshots(),
	}
	r.mu.Lock()
	gs := append([]gauge(nil), r.gauges...)
	r.mu.Unlock()
	for _, g := range gs {
		snap.Gauges = append(snap.Gauges, GaugeValue{Name: g.name, Help: g.help, Value: g.fn()})
	}
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	return snap
}

// Names of the runtime/metrics samples RuntimeGauges reads per snapshot.
const (
	metricHeapLive   = "/memory/classes/heap/objects:bytes"
	metricGoroutines = "/sched/goroutines:goroutines"
)

// RuntimeGauges registers the Go runtime health gauges on r: live heap
// bytes and goroutine count via runtime/metrics, and the cumulative GC
// stop-the-world pause total via runtime.ReadMemStats (runtime/metrics
// exposes pause distributions, not an exact total — MemStats does). All
// three are sampled only at snapshot (scrape) time.
func RuntimeGauges(r *Registry) {
	if r == nil {
		return
	}
	r.Gauge("go_heap_live_bytes", "live heap memory (runtime/metrics heap objects)", func() float64 {
		return readRuntimeMetric(metricHeapLive)
	})
	r.Gauge("go_goroutines", "current goroutine count", func() float64 {
		return readRuntimeMetric(metricGoroutines)
	})
	r.Gauge("go_gc_pause_total_seconds", "cumulative GC stop-the-world pause time", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.PauseTotalNs) / 1e9
	})
}

// readRuntimeMetric samples one runtime/metrics value as a float64,
// returning 0 for kinds it does not understand (future runtimes may change
// a metric's type; a gauge reading 0 beats a crash at scrape time).
func readRuntimeMetric(name string) float64 {
	sample := []metrics.Sample{{Name: name}}
	metrics.Read(sample)
	switch sample[0].Value.Kind() {
	case metrics.KindUint64:
		return float64(sample[0].Value.Uint64())
	case metrics.KindFloat64:
		return sample[0].Value.Float64()
	default:
		return 0
	}
}
