package obs

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bound latency histogram: log-linear bucket bounds
// chosen once at registration (so snapshots from different processes or
// different runs are always merge-able and byte-comparable), lock-free
// atomic recording, and quantile estimation over the snapshot. Values are
// nanoseconds. A nil *Histogram (from a nil Tracer) is valid: Record is a
// no-op and Snapshot returns the zero snapshot, so instrumented hot paths
// record unconditionally without branching on the tracer — the same
// contract as Counter.
type Histogram struct {
	name   string
	bounds []int64 // ascending upper bounds; bucket i covers (bounds[i-1], bounds[i]]
	counts []atomic.Int64
	sum    atomic.Int64
}

// NewHistogram builds a standalone histogram (outside any Tracer — the BPM
// package keeps a process-global one this way). bounds must be ascending
// and non-empty; the histogram gets one overflow bucket past the last
// bound.
func NewHistogram(name string, bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBounds()
	}
	return &Histogram{
		name:   name,
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// LatencyBounds returns the default log-linear latency bounds: five linear
// sub-buckets per decade from 10 µs to 100 s (36 bounds plus the overflow
// bucket). The range covers everything the flow produces, from a cached
// BPM hit to a mega-case mega-solve; resolution tracks magnitude, so p99
// estimation error stays proportional everywhere. The slice is freshly
// allocated and deterministic.
func LatencyBounds() []int64 {
	bounds := []int64{10_000} // 10 µs
	for decade := int64(10_000); decade <= 10_000_000_000; decade *= 10 {
		for _, m := range []int64{2, 4, 6, 8, 10} {
			bounds = append(bounds, decade*m)
		}
	}
	return bounds
}

// Record adds one observation (nanoseconds; negative values clamp to 0).
// Lock-free: a binary search over the fixed bounds plus two atomic adds.
func (h *Histogram) Record(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	// sort.Search over the tiny fixed bounds slice; idx is the first bound
	// >= ns, len(bounds) for overflow.
	idx := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= ns })
	h.counts[idx].Add(1)
	h.sum.Add(ns)
}

// RecordDuration records d as nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Name returns the histogram's registered name ("" for nil).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Snapshot captures the current state. Concurrent Records may land between
// the bucket loads — the snapshot is then a momentary interleaving, never
// corrupt: Count is derived from the bucket counts so the cumulative-bucket
// invariant (+Inf bucket == Count) holds exactly, while Sum may be off by
// the in-flight observations. A nil histogram snapshots to the zero value.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Name:   h.name,
		Bounds: h.bounds, // fixed at registration; shared, never mutated
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// Merge folds a snapshot's observations into the histogram — the receiving
// end of cross-source aggregation (the flow folds the process-global BPM
// histogram's per-run delta into the run tracer this way). The bounds must
// match; mismatched bounds return an error and fold nothing.
func (h *Histogram) Merge(s HistogramSnapshot) error {
	if h == nil || s.Count == 0 && s.Sum == 0 {
		return nil
	}
	if len(s.Counts) != len(h.counts) || !boundsEqual(h.bounds, s.Bounds) {
		return fmt.Errorf("obs: merge into %q: bucket bounds differ", h.name)
	}
	for i, c := range s.Counts {
		if c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.sum.Add(s.Sum)
	return nil
}

// boundsEqual compares two bound slices.
func boundsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	// Name is the histogram's registered name.
	Name string `json:"name"`
	// Bounds are the ascending bucket upper bounds in nanoseconds; the
	// final (overflow) bucket has no bound.
	Bounds []int64 `json:"bounds"`
	// Counts are the per-bucket (non-cumulative) observation counts;
	// len(Counts) == len(Bounds)+1.
	Counts []int64 `json:"counts"`
	// Count is the total number of observations (the sum of Counts).
	Count int64 `json:"count"`
	// Sum is the sum of all recorded values in nanoseconds.
	Sum int64 `json:"sum"`
}

// Sub returns the snapshot minus a base taken earlier from the same
// histogram — the per-window delta used to attribute a shared (e.g.
// process-global) histogram's traffic to one run. Bounds must match; on
// mismatch the receiver is returned unchanged (callers diff snapshots of
// the same histogram, where bounds are fixed by construction).
func (s HistogramSnapshot) Sub(base HistogramSnapshot) HistogramSnapshot {
	if len(base.Counts) != len(s.Counts) || !boundsEqual(s.Bounds, base.Bounds) {
		return s
	}
	out := HistogramSnapshot{
		Name:   s.Name,
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count - base.Count,
		Sum:    s.Sum - base.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] - base.Counts[i]
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) in nanoseconds by linear
// interpolation inside the bucket holding the target rank. Observations in
// the overflow bucket report the last bound (a deliberate under-estimate:
// the histogram cannot resolve beyond its range). Returns 0 for an empty
// snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			if i >= len(s.Bounds) {
				return float64(s.Bounds[len(s.Bounds)-1])
			}
			lo := 0.0
			if i > 0 {
				lo = float64(s.Bounds[i-1])
			}
			hi := float64(s.Bounds[i])
			frac := (target - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}

// Mean returns the mean observation in nanoseconds (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
