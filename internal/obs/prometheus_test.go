package obs

import (
	"strings"
	"testing"
)

// testSnapshot builds a registry snapshot covering all three families.
func testSnapshot() RegistrySnapshot {
	tr := New(Nop{})
	tr.Counter("lp.pivots").Add(42)
	tr.Counter("http.requests").Add(3)
	h := tr.Histogram("request/e2e")
	h.Record(5_000_000)   // 5 ms
	h.Record(150_000_000) // 150 ms
	reg := NewRegistry(tr)
	reg.Gauge("queue_depth", "jobs waiting in the bounded queue", func() float64 { return 2 })
	reg.Gauge("go_goroutines", "current goroutine count", func() float64 { return 11 })
	return reg.Snapshot()
}

// TestWritePrometheusRoundTrip renders a full snapshot and validates it
// with the line-by-line linter — the writer and the schema gate must agree
// on the format.
func TestWritePrometheusRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := LintExposition([]byte(out)); err != nil {
		t.Fatalf("writer output fails lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE operon_lp_pivots_total counter",
		"operon_lp_pivots_total 42",
		"# TYPE operon_queue_depth gauge",
		"operon_queue_depth 2",
		"# TYPE go_goroutines gauge", // runtime gauges keep the go_ prefix
		"# TYPE operon_request_e2e_seconds histogram",
		`operon_request_e2e_seconds_bucket{le="+Inf"} 2`,
		"operon_request_e2e_seconds_count 2",
		"operon_request_e2e_seconds_sum 0.155",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets: the 10 ms bucket holds only the 5 ms sample, the
	// 200 ms bucket both.
	if !strings.Contains(out, `operon_request_e2e_seconds_bucket{le="0.01"} 1`) {
		t.Fatalf("10 ms bucket not cumulative-1:\n%s", out)
	}
	if !strings.Contains(out, `operon_request_e2e_seconds_bucket{le="0.2"} 2`) {
		t.Fatalf("200 ms bucket not cumulative-2:\n%s", out)
	}
}

// TestWritePrometheusDeterministic pins byte-stable output for a fixed
// snapshot (the exposition is diffable across scrapes).
func TestWritePrometheusDeterministic(t *testing.T) {
	snap := testSnapshot()
	var a, b strings.Builder
	if err := WritePrometheus(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("exposition not deterministic for a fixed snapshot")
	}
}

// TestPromName pins the name mapping.
func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"lp.pivots":    "operon_lp_pivots",
		"request/e2e":  "operon_request_e2e",
		"stage/wdm":    "operon_stage_wdm",
		"go_heap":      "go_heap",
		"ws.worker.9x": "operon_ws_worker_9x",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestLintExpositionRejects feeds the linter malformed documents; each must
// fail.
func TestLintExpositionRejects(t *testing.T) {
	for name, doc := range map[string]string{
		"no TYPE":           "operon_x_total 1\n",
		"bad type":          "# TYPE operon_x woble\noperon_x 1\n",
		"bad value":         "# TYPE operon_x gauge\noperon_x one\n",
		"bad name":          "# TYPE operon_x gauge\n0peron 1\n",
		"negative counter":  "# TYPE operon_x_total counter\noperon_x_total -4\n",
		"no inf bucket":     "# TYPE operon_h histogram\noperon_h_bucket{le=\"1\"} 1\noperon_h_sum 1\noperon_h_count 1\n",
		"non-cumulative":    "# TYPE operon_h histogram\noperon_h_bucket{le=\"1\"} 5\noperon_h_bucket{le=\"+Inf\"} 3\noperon_h_sum 1\noperon_h_count 3\n",
		"count mismatch":    "# TYPE operon_h histogram\noperon_h_bucket{le=\"+Inf\"} 3\noperon_h_sum 1\noperon_h_count 4\n",
		"missing sum":       "# TYPE operon_h histogram\noperon_h_bucket{le=\"+Inf\"} 3\noperon_h_count 3\n",
		"unquoted le":       "# TYPE operon_h histogram\noperon_h_bucket{le=1} 1\noperon_h_bucket{le=\"+Inf\"} 1\noperon_h_sum 1\noperon_h_count 1\n",
		"descending bounds": "# TYPE operon_h histogram\noperon_h_bucket{le=\"2\"} 1\noperon_h_bucket{le=\"1\"} 2\noperon_h_bucket{le=\"+Inf\"} 2\noperon_h_sum 1\noperon_h_count 2\n",
	} {
		if err := LintExposition([]byte(doc)); err == nil {
			t.Errorf("%s: lint accepted malformed document:\n%s", name, doc)
		}
	}
}
