package obs

import "time"

// SpanRecord is a completed span as delivered to a Sink. Start and Dur are
// offsets from the tracer epoch.
type SpanRecord struct {
	// Name is the span name ("stage/process", "net/candidates", ...).
	Name string
	// Lane is the display lane (LaneFlow or a WorkerLane).
	Lane int
	// Start is the span's start offset from the tracer epoch.
	Start time.Duration
	// Dur is the span's duration.
	Dur time.Duration
	// Attrs carries the merged start- and end-time attributes.
	Attrs []Attr
}

// EventRecord is an instant event as delivered to a Sink.
type EventRecord struct {
	// Name is the event name ("lr/iterate", "ilp/node", ...).
	Name string
	// Lane is the display lane (LaneFlow or a WorkerLane).
	Lane int
	// Ts is the event's offset from the tracer epoch.
	Ts time.Duration
	// Attrs carries the event attributes.
	Attrs []Attr
}

// CounterValue is one counter's snapshot.
type CounterValue struct {
	// Name is the counter's registered name.
	Name string `json:"name"`
	// Value is the count at snapshot time.
	Value int64 `json:"value"`
}

// Sink receives the tracer's records. Implementations must be safe for
// concurrent use: worker-pool goroutines deliver spans concurrently.
// Counters is called once, with the final sorted snapshot, when the tracer
// is closed. A sink additionally implementing io.Closer is closed by
// Tracer.Close after the counter flush.
type Sink interface {
	// Span receives a completed span.
	Span(SpanRecord)
	// Event receives an instant event.
	Event(EventRecord)
	// Counters receives the final counter snapshot at tracer close.
	Counters([]CounterValue)
}

// Nop is the discard sink: spans and events vanish, and only the tracer's
// own counter registry accumulates state. It is the cheapest way to collect
// a counter snapshot (cmd/bench) without retaining the trace.
type Nop struct{}

// Span implements Sink.
func (Nop) Span(SpanRecord) {}

// Event implements Sink.
func (Nop) Event(EventRecord) {}

// Counters implements Sink.
func (Nop) Counters([]CounterValue) {}

// multi fans records out to several sinks in order.
type multi []Sink

// Multi returns a Sink delivering every record to each of sinks in order.
// Closing the tracer closes every sink that implements io.Closer; the first
// error wins.
func Multi(sinks ...Sink) Sink { return multi(sinks) }

// Span implements Sink.
func (m multi) Span(s SpanRecord) {
	for _, sk := range m {
		sk.Span(s)
	}
}

// Event implements Sink.
func (m multi) Event(e EventRecord) {
	for _, sk := range m {
		sk.Event(e)
	}
}

// Counters implements Sink.
func (m multi) Counters(cs []CounterValue) {
	for _, sk := range m {
		sk.Counters(cs)
	}
}

// Close implements io.Closer.
func (m multi) Close() error {
	var first error
	for _, sk := range m {
		if c, ok := sk.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
