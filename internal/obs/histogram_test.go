package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistogramNilSafe pins the nil contract: a nil tracer yields a nil
// histogram whose every method is a safe no-op.
func TestHistogramNilSafe(t *testing.T) {
	var tr *Tracer
	h := tr.Histogram("request/e2e")
	if h != nil {
		t.Fatalf("nil tracer returned non-nil histogram")
	}
	h.Record(123)
	h.RecordDuration(time.Second)
	if err := h.Merge(HistogramSnapshot{Count: 1}); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
	if s := h.Snapshot(); s.Count != 0 || s.Name != "" {
		t.Fatalf("nil snapshot = %+v, want zero", s)
	}
	if got := tr.HistogramSnapshots(); got != nil {
		t.Fatalf("nil tracer snapshots = %v, want nil", got)
	}
}

// TestHistogramBasic checks counts, sum, and bucket placement against the
// documented bound semantics (bucket i covers (bounds[i-1], bounds[i]]).
func TestHistogramBasic(t *testing.T) {
	h := NewHistogram("t", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 999, 1000, 1001, -3} {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	// -3 clamps to 0. Buckets: <=10: {5,10,0}=3; <=100: {11,100}=2;
	// <=1000: {999,1000}=2; overflow: {1001}=1.
	want := []int64{3, 2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if wantSum := int64(5 + 10 + 11 + 100 + 999 + 1000 + 1001); s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
}

// TestLatencyBoundsShape pins the default bounds: deterministic, ascending,
// log-linear from 10 µs to 100 s.
func TestLatencyBoundsShape(t *testing.T) {
	b := LatencyBounds()
	if len(b) != 36 {
		t.Fatalf("len = %d, want 36", len(b))
	}
	if b[0] != 10_000 || b[len(b)-1] != 100_000_000_000 {
		t.Fatalf("range = [%d, %d], want [10µs, 100s]", b[0], b[len(b)-1])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %d <= %d", i, b[i], b[i-1])
		}
	}
	// Registration-time determinism: two calls agree.
	if !boundsEqual(b, LatencyBounds()) {
		t.Fatal("LatencyBounds not deterministic")
	}
}

// TestHistogramQuantileOracle drives random workloads through a histogram
// and compares its quantile estimates against the exact sorted-slice
// quantile; the estimate must land within the width of the bucket holding
// the true value (the histogram's resolution limit).
func TestHistogramQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		h := NewHistogram("q", LatencyBounds())
		n := 100 + rng.Intn(2000)
		vals := make([]int64, n)
		for i := range vals {
			// Log-uniform over the histogram range so every decade gets
			// traffic.
			exp := 4 + rng.Float64()*6 // 10^4 .. 10^10 ns
			v := int64(pow10(exp))
			vals[i] = v
			h.Record(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := h.Snapshot()
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			idx := int(q * float64(n-1))
			exact := float64(vals[idx])
			got := s.Quantile(q)
			lo, hi := bucketRangeOf(s, exact)
			if got < lo || got > hi {
				t.Fatalf("trial %d q%.2f: estimate %.0f outside oracle bucket [%.0f, %.0f] (exact %.0f)",
					trial, q, got, lo, hi, exact)
			}
		}
	}
}

// pow10 is a float 10^x without importing math for one call site.
func pow10(x float64) float64 {
	r := 1.0
	for x >= 1 {
		r *= 10
		x--
	}
	// Linear blend for the fractional part is accurate enough for test
	// input generation (we only need log-ish spread, not exact powers).
	return r * (1 + 9*x/10)
}

// bucketRangeOf returns the [lo, hi] bounds of the bucket containing v.
func bucketRangeOf(s HistogramSnapshot, v float64) (float64, float64) {
	lo := 0.0
	for _, b := range s.Bounds {
		if v <= float64(b) {
			return lo, float64(b)
		}
		lo = float64(b)
	}
	return lo, float64(s.Bounds[len(s.Bounds)-1])
}

// TestHistogramConcurrent hammers Record from many goroutines while
// snapshots are taken concurrently; run under -race via make race. The
// final snapshot must account for every observation, and intermediate
// snapshots must always satisfy Count == sum(Counts).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("c", LatencyBounds())
	const goroutines = 8
	const perG = 5000

	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() { // concurrent snapshotter
		defer close(snapDone)
		for {
			s := h.Snapshot()
			var total int64
			for _, c := range s.Counts {
				total += c
			}
			if total != s.Count {
				t.Errorf("torn snapshot: Count %d != sum(Counts) %d", s.Count, total)
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.Record(int64(rng.Intn(1_000_000_000)))
			}
		}(int64(g))
	}
	wg.Wait()
	close(stop)
	<-snapDone

	if s := h.Snapshot(); s.Count != goroutines*perG {
		t.Fatalf("final count %d, want %d", s.Count, goroutines*perG)
	}
}

// TestHistogramMergeSub pins the delta/merge cycle used to attribute the
// process-global BPM histogram to individual runs: snapshot, record,
// snapshot, Sub, Merge into a fresh histogram — the merged state must equal
// the delta exactly.
func TestHistogramMergeSub(t *testing.T) {
	src := NewHistogram("src", LatencyBounds())
	src.Record(50_000)
	base := src.Snapshot()
	src.Record(2_000_000)
	src.Record(70_000_000)
	delta := src.Snapshot().Sub(base)
	if delta.Count != 2 || delta.Sum != 72_000_000 {
		t.Fatalf("delta = count %d sum %d, want 2 / 72ms", delta.Count, delta.Sum)
	}

	dst := NewHistogram("dst", LatencyBounds())
	dst.Record(1)
	if err := dst.Merge(delta); err != nil {
		t.Fatal(err)
	}
	s := dst.Snapshot()
	if s.Count != 3 || s.Sum != 72_000_001 {
		t.Fatalf("merged = count %d sum %d, want 3 / 72ms+1", s.Count, s.Sum)
	}

	// Mismatched bounds must refuse.
	odd := NewHistogram("odd", []int64{1, 2, 3})
	if err := odd.Merge(delta); err == nil {
		t.Fatal("merge across mismatched bounds did not error")
	}
}

// TestTracerHistogramRegistry pins stable pointers, name sorting, and the
// empty-histogram filter of HistogramSnapshots.
func TestTracerHistogramRegistry(t *testing.T) {
	tr := New(Nop{})
	h1 := tr.Histogram("b/second")
	h2 := tr.Histogram("a/first")
	if tr.Histogram("b/second") != h1 {
		t.Fatal("histogram pointer not stable")
	}
	tr.Histogram("c/empty") // never records; must not appear
	h1.Record(100)
	h2.Record(200)
	snaps := tr.HistogramSnapshots()
	if len(snaps) != 2 || snaps[0].Name != "a/first" || snaps[1].Name != "b/second" {
		names := make([]string, len(snaps))
		for i, s := range snaps {
			names[i] = s.Name
		}
		t.Fatalf("snapshots = %v, want [a/first b/second]", names)
	}
}

// TestRegistrySnapshot wires counters, gauges, and histograms through one
// Registry and checks the unified snapshot (including nil-registry safety
// and gauge replacement).
func TestRegistrySnapshot(t *testing.T) {
	var nilReg *Registry
	nilReg.Gauge("x", "", func() float64 { return 1 })
	if s := nilReg.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}

	tr := New(Nop{})
	tr.Counter("lp.pivots").Add(7)
	tr.Histogram("request/e2e").Record(5_000_000)
	reg := NewRegistry(tr)
	reg.Gauge("queue_depth", "jobs waiting", func() float64 { return 3 })
	reg.Gauge("queue_depth", "jobs waiting", func() float64 { return 4 }) // replaces
	RuntimeGauges(reg)

	s := reg.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Name != "lp.pivots" || s.Counters[0].Value != 7 {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Count != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
	byName := map[string]float64{}
	for _, g := range s.Gauges {
		byName[g.Name] = g.Value
	}
	if byName["queue_depth"] != 4 {
		t.Fatalf("queue_depth = %v, want replaced value 4", byName["queue_depth"])
	}
	if byName["go_heap_live_bytes"] <= 0 {
		t.Fatalf("go_heap_live_bytes = %v, want > 0", byName["go_heap_live_bytes"])
	}
	if _, ok := byName["go_goroutines"]; !ok {
		t.Fatal("go_goroutines gauge missing")
	}
	// Gauges sorted by name.
	for i := 1; i < len(s.Gauges); i++ {
		if s.Gauges[i].Name < s.Gauges[i-1].Name {
			t.Fatalf("gauges not sorted: %q after %q", s.Gauges[i].Name, s.Gauges[i-1].Name)
		}
	}
}
