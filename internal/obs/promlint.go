package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// LintExposition validates a Prometheus text exposition document line by
// line — the schema gate for the /metrics endpoint, in the same spirit as
// cmd/tracecheck for Chrome traces. Checks:
//
//   - every line is a # HELP / # TYPE comment or a `name[{labels}] value`
//     sample with a valid metric name and a parseable float value;
//   - every sample's family was declared by a preceding # TYPE with a
//     known type (counter, gauge, histogram, summary, untyped);
//   - histogram families carry _bucket series with parseable le labels in
//     ascending order, cumulative non-decreasing counts, a final
//     le="+Inf" bucket, and _sum/_count series with _count equal to the
//     +Inf bucket;
//   - counter and gauge samples are finite numbers (counters additionally
//     non-negative).
//
// Returns nil for a valid document; the error names the first offending
// line.
func LintExposition(data []byte) error {
	types := map[string]string{}
	type bucket struct {
		le  float64
		inf bool
		val float64
	}
	buckets := map[string][]bucket{}
	sums := map[string]bool{}
	counts := map[string]float64{}

	lines := strings.Split(string(data), "\n")
	for n, line := range lines {
		ctx := fmt.Sprintf("line %d %q", n+1, line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("obs: %s: comment is neither # HELP nor # TYPE", ctx)
			}
			if !validMetricName(fields[2]) {
				return fmt.Errorf("obs: %s: invalid metric name %q", ctx, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("obs: %s: # TYPE without a type", ctx)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("obs: %s: unknown type %q", ctx, fields[3])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("obs: %s: %v", ctx, err)
		}
		family, series := familyOf(name, types)
		typ, ok := types[family]
		if !ok {
			return fmt.Errorf("obs: %s: sample %q has no preceding # TYPE", ctx, name)
		}
		switch typ {
		case "counter":
			if value < 0 {
				return fmt.Errorf("obs: %s: negative counter value", ctx)
			}
		case "histogram":
			switch series {
			case "bucket":
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("obs: %s: histogram bucket without le label", ctx)
				}
				b := bucket{val: value}
				if le == "+Inf" {
					b.inf = true
				} else if b.le, err = strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("obs: %s: unparseable le %q", ctx, le)
				}
				buckets[family] = append(buckets[family], b)
			case "sum":
				sums[family] = true
			case "count":
				counts[family] = value
			default:
				return fmt.Errorf("obs: %s: histogram sample %q is not _bucket/_sum/_count", ctx, name)
			}
		}
	}

	// Cross-series histogram invariants.
	fams := make([]string, 0, len(types))
	for f, t := range types {
		if t == "histogram" {
			fams = append(fams, f)
		}
	}
	sort.Strings(fams)
	for _, f := range fams {
		bs := buckets[f]
		if len(bs) == 0 {
			return fmt.Errorf("obs: histogram %s has no _bucket series", f)
		}
		if !bs[len(bs)-1].inf {
			return fmt.Errorf("obs: histogram %s does not end with le=\"+Inf\"", f)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].val < bs[i-1].val {
				return fmt.Errorf("obs: histogram %s buckets not cumulative at index %d", f, i)
			}
			if !bs[i].inf && bs[i].le <= bs[i-1].le {
				return fmt.Errorf("obs: histogram %s le bounds not ascending at index %d", f, i)
			}
		}
		if !sums[f] {
			return fmt.Errorf("obs: histogram %s has no _sum series", f)
		}
		cnt, ok := counts[f]
		if !ok {
			return fmt.Errorf("obs: histogram %s has no _count series", f)
		}
		if inf := bs[len(bs)-1].val; cnt != inf {
			return fmt.Errorf("obs: histogram %s _count %g != +Inf bucket %g", f, cnt, inf)
		}
	}
	return nil
}

// parseSample splits a sample line into metric name, label map, and value.
func parseSample(line string) (string, map[string]string, float64, error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	var name string
	labels := map[string]string{}
	if brace >= 0 {
		name = rest[:brace]
		end := strings.IndexByte(rest, '}')
		if end < brace {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		for _, pair := range strings.Split(rest[brace+1:end], ",") {
			if pair == "" {
				continue
			}
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("label %q without =", pair)
			}
			val, err := strconv.Unquote(strings.TrimSpace(pair[eq+1:]))
			if err != nil {
				return "", nil, 0, fmt.Errorf("label %q value not quoted", pair)
			}
			labels[strings.TrimSpace(pair[:eq])] = val
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample without value")
		}
		name, rest = rest[:sp], strings.TrimSpace(rest[sp+1:])
	}
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	// The value may be followed by an optional timestamp; take field 0.
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", nil, 0, fmt.Errorf("sample without value")
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q", fields[0])
	}
	return name, labels, v, nil
}

// familyOf resolves a sample name to its declared family: histogram
// samples use the family name plus a _bucket/_sum/_count suffix, others
// are their own family. Returns the family and the stripped suffix ("" for
// a plain sample).
func familyOf(name string, types map[string]string) (family, series string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
				return base, suf[1:]
			}
		}
	}
	return name, ""
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
