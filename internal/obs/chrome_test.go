package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// decodeTrace parses a trace produced by ChromeWriter and returns the raw
// events keyed loosely (the schema cmd/tracecheck validates in full).
func decodeTrace(t *testing.T, buf []byte) []map[string]any {
	t.Helper()
	var evs []map[string]any
	if err := json.Unmarshal(buf, &evs); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, buf)
	}
	return evs
}

func TestChromeWriterProducesLoadableTrace(t *testing.T) {
	var buf bytes.Buffer
	cw := NewChromeWriter(&buf)
	tr := New(cw)

	outer := tr.Span("stage/process", LaneFlow)
	w0 := tr.Span("net/candidates", WorkerLane(0), I("net", 0))
	w1 := tr.Span("net/candidates", WorkerLane(1), I("net", 1))
	time.Sleep(time.Millisecond)
	w0.End(I("cands", 3))
	w1.End(I("cands", 2))
	outer.End()
	tr.Event("lr/iterate", LaneFlow, F("power_mw", 12.5), I("violations", 0))
	tr.Counter("lp.pivots").Add(99)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	evs := decodeTrace(t, buf.Bytes())
	var haveX, haveI, haveC, haveProcMeta int
	laneNames := map[float64]string{}
	for _, e := range evs {
		ph, _ := e["ph"].(string)
		name, _ := e["name"].(string)
		switch ph {
		case "X":
			haveX++
			if e["dur"] == nil || e["ts"] == nil {
				t.Fatalf("X event missing ts/dur: %v", e)
			}
			if d := e["dur"].(float64); d < 0 {
				t.Fatalf("negative duration: %v", e)
			}
		case "i":
			haveI++
			if name != "lr/iterate" {
				t.Fatalf("unexpected instant event %q", name)
			}
			args := e["args"].(map[string]any)
			if args["power_mw"].(float64) != 12.5 {
				t.Fatalf("instant args = %v", args)
			}
		case "C":
			haveC++
			if name != "lp.pivots" {
				t.Fatalf("counter event %q", name)
			}
			if v := e["args"].(map[string]any)["value"].(float64); v != 99 {
				t.Fatalf("counter value = %v", v)
			}
		case "M":
			switch name {
			case "process_name":
				haveProcMeta++
			case "thread_name":
				laneNames[e["tid"].(float64)] = e["args"].(map[string]any)["name"].(string)
			}
		default:
			t.Fatalf("unknown phase %q", ph)
		}
	}
	if haveX != 3 || haveI != 1 || haveC != 1 || haveProcMeta != 1 {
		t.Fatalf("event counts X=%d i=%d C=%d M(proc)=%d", haveX, haveI, haveC, haveProcMeta)
	}
	// The three lanes used must each have thread metadata.
	for lane, want := range map[float64]string{0: "flow", 1: "worker-0", 2: "worker-1"} {
		if laneNames[lane] != want {
			t.Fatalf("lane %v named %q, want %q", lane, laneNames[lane], want)
		}
	}
}

func TestChromeWriterEmptyTraceIsValid(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewChromeWriter(&buf))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, buf.Bytes())
	// Metadata only, still a loadable array.
	for _, e := range evs {
		if e["ph"].(string) != "M" {
			t.Fatalf("unexpected event in empty trace: %v", e)
		}
	}
}
